package ntt

// Stats accumulates arithmetic-operation counts for the Table II analytics:
// the tradeoff between modular reductions avoided by fusion and the extra
// multiplications/additions it introduces.
type Stats struct {
	Mults        int64 // modular or raw twiddle multiplications
	Adds         int64 // additions/subtractions
	Reductions   int64 // TAM-convention reduction slots (one per butterfly output)
	TwiddleLoads int64 // twiddle factors fetched from storage

	// Deferred counts reduction slots the lazy kernels skipped (residues
	// left in their [0,2q)/[0,4q) band); Normalizations counts band-edge
	// reductions actually performed. For every kernel,
	// Reductions == Deferred + Normalizations, so Reductions remains
	// directly comparable with the paper's Table II convention while the
	// pair reports what the lazy schedule really executed.
	Deferred       int64
	Normalizations int64

	// FusedPasses counts full sweeps over the coefficient vector executed by
	// fused-plan kernels — the memory-traffic side of the Fig-10 tradeoff
	// (ceil(logN/k) per transform instead of logN).
	FusedPasses int64
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.Mults += o.Mults
	s.Adds += o.Adds
	s.Reductions += o.Reductions
	s.TwiddleLoads += o.TwiddleLoads
	s.Deferred += o.Deferred
	s.Normalizations += o.Normalizations
	s.FusedPasses += o.FusedPasses
}

// BlockCosts are the per-fused-block operation counts underlying Table II
// of the paper. A block processes 2^k operands through k butterfly stages.
type BlockCosts struct {
	K          int
	Twiddles   int // W: distinct twiddle factors the block must store
	Mults      int
	Adds       int
	Reductions int
}

// UnfusedBlockCosts returns the conventional-NTT per-block costs for radix
// 2^k. Each of the k stages performs 2^(k-1) butterflies producing two TAM
// outputs each, so mults = adds = reductions = k·2^k; the distinct twiddle
// count per block is 2^(k-1) under the paper's convention (the final
// stage's butterflies dominate).
func UnfusedBlockCosts(k int) BlockCosts {
	return BlockCosts{
		K:          k,
		Twiddles:   1 << uint(k-1),
		Mults:      k << uint(k),
		Adds:       k << uint(k),
		Reductions: k << uint(k),
	}
}

// FusedBlockCosts returns the NTT-fusion per-block costs for radix 2^k:
// every output is a dot product against a dense 2^k-row, so one deferred
// reduction per output (2^k total), 2^k·(2^k−1) multiplications and
// additions (the identity column is free). The twiddle count is the
// paper's published figure; see EXPERIMENTS.md for the empirical
// per-implementation count exposed by FusedPlan.DistinctTwiddles.
func FusedBlockCosts(k int) BlockCosts {
	return BlockCosts{
		K:          k,
		Twiddles:   paperFusedTwiddles(k),
		Mults:      (1 << uint(k)) * ((1 << uint(k)) - 1),
		Adds:       (1 << uint(k)) * ((1 << uint(k)) - 1),
		Reductions: 1 << uint(k),
	}
}

// paperFusedTwiddles reproduces the W(fused) column of Table II.
func paperFusedTwiddles(k int) int {
	switch k {
	case 1:
		return 1
	case 2:
		return 2
	case 3:
		return 5
	case 4:
		return 13
	case 5:
		return 34
	case 6:
		return 85
	default:
		// Outside the published range fall back to the dense-matrix bound.
		return (1 << uint(k)) * ((1 << uint(k)) - 1)
	}
}

// AccessStride returns the BRAM index offset between consecutive operands
// loaded by one core at iteration iter (1-based), for fusion degree k —
// the pattern of Table III / Fig 5. Conventional NTT corresponds to k=1.
func AccessStride(iter, k int) int {
	return 1 << uint(k*(iter-1))
}

// Iterations returns the number of NTT phases for transform length n under
// fusion degree k: ceil(log2(n)/k).
func Iterations(logN, k int) int {
	return (logN + k - 1) / k
}
