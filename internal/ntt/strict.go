package ntt

import "fmt"

// Strict (fully reduced) reference kernels. Every butterfly output receives
// its full modular reduction immediately — one conditional correction per
// Add/Sub and per Shoup multiply — exactly the schedule the paper's
// unfused TAM row of Table II prices. The lazy Harvey kernels in ntt.go are
// the production path; these remain as the bit-identity reference for the
// differential suite, the before/after baseline for BENCH_kernels.json,
// and the execution mode selected by ring.SetStrictKernels.

// ForwardStrict computes the in-place negacyclic NTT with per-butterfly
// reductions. Output is bit-identical to Forward.
func (t *Table) ForwardStrict(a []uint64) {
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: length %d != N=%d", len(a), t.N))
	}
	mod := t.Mod
	span := t.N
	for m := 1; m < t.N; m <<= 1 {
		span >>= 1
		for i := 0; i < m; i++ {
			w := t.psiBR[m+i]
			ws := t.psiBRShoup[m+i]
			base := 2 * i * span
			for j := base; j < base+span; j++ {
				u := a[j]
				v := mod.MulShoup(a[j+span], w, ws)
				a[j] = mod.Add(u, v)
				a[j+span] = mod.Sub(u, v)
			}
		}
	}
}

// InverseStrict computes the in-place inverse negacyclic NTT with
// per-butterfly reductions and a separate N^-1 scaling pass. Output is
// bit-identical to Inverse.
func (t *Table) InverseStrict(a []uint64) {
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: length %d != N=%d", len(a), t.N))
	}
	mod := t.Mod
	span := 1
	for m := t.N >> 1; m >= 1; m >>= 1 {
		for i := 0; i < m; i++ {
			w := t.psiInvBR[m+i]
			ws := t.psiInvBRShoup[m+i]
			base := 2 * i * span
			for j := base; j < base+span; j++ {
				u := a[j]
				v := a[j+span]
				a[j] = mod.Add(u, v)
				a[j+span] = mod.MulShoup(mod.Sub(u, v), w, ws)
			}
		}
		span <<= 1
	}
	for j := range a {
		a[j] = mod.MulShoup(a[j], t.nInv, t.nInvShoup)
	}
}
