package ntt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"poseidon/internal/numeric"
)

func mustTable(t *testing.T, n int, bitSize int) *Table {
	t.Helper()
	logN := log2(n)
	ps, err := numeric.GenerateNTTPrimes(bitSize, logN, 1)
	if err != nil {
		t.Fatalf("prime gen: %v", err)
	}
	tab, err := NewTable(n, ps[0])
	if err != nil {
		t.Fatalf("NewTable: %v", err)
	}
	return tab
}

func randomPoly(rng *rand.Rand, n int, q uint64) []uint64 {
	a := make([]uint64, n)
	for i := range a {
		a[i] = rng.Uint64() % q
	}
	return a
}

func TestNewTableErrors(t *testing.T) {
	if _, err := NewTable(3, 97); err == nil {
		t.Error("non-power-of-two length should error")
	}
	if _, err := NewTable(8, 15); err == nil {
		t.Error("composite modulus should error")
	}
	if _, err := NewTable(8, 19); err == nil {
		t.Error("q != 1 mod 2N should error")
	}
}

func TestForwardInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{2, 4, 8, 64, 256, 1024} {
		for _, bitSize := range []int{30, 45, 59} {
			tab := mustTable(t, n, bitSize)
			a := randomPoly(rng, n, tab.Mod.Q)
			orig := append([]uint64(nil), a...)
			tab.Forward(a)
			tab.Inverse(a)
			for i := range a {
				if a[i] != orig[i] {
					t.Fatalf("n=%d bits=%d: round trip mismatch at %d: %d != %d",
						n, bitSize, i, a[i], orig[i])
				}
			}
		}
	}
}

func TestConvolutionTheorem(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{4, 16, 128} {
		tab := mustTable(t, n, 40)
		a := randomPoly(rng, n, tab.Mod.Q)
		b := randomPoly(rng, n, tab.Mod.Q)
		want := tab.NegacyclicConvolution(a, b)

		fa := append([]uint64(nil), a...)
		fb := append([]uint64(nil), b...)
		tab.Forward(fa)
		tab.Forward(fb)
		c := make([]uint64, n)
		tab.MulEval(c, fa, fb)
		tab.Inverse(c)
		for i := range c {
			if c[i] != want[i] {
				t.Fatalf("n=%d: convolution mismatch at %d", n, i)
			}
		}
	}
}

// The NTT of a monomial X^j has evaluation values psi^(j(2·brv(i)+1));
// testing against direct evaluation of the polynomial at the odd psi powers
// pins down both ordering and the negacyclic twist.
func TestForwardMatchesDirectEvaluation(t *testing.T) {
	n := 16
	tab := mustTable(t, n, 30)
	rng := rand.New(rand.NewSource(12))
	a := randomPoly(rng, n, tab.Mod.Q)

	// Direct evaluation at roots psi^(2r+1) for r = 0..n-1.
	direct := make([]uint64, n)
	for r := 0; r < n; r++ {
		x := tab.PsiPower(2*r + 1)
		acc := uint64(0)
		pw := uint64(1)
		for j := 0; j < n; j++ {
			acc = tab.Mod.Add(acc, tab.Mod.Mul(a[j], pw))
			pw = tab.Mod.Mul(pw, x)
		}
		direct[r] = acc
	}

	f := append([]uint64(nil), a...)
	tab.Forward(f)
	// Forward output index i holds evaluation at psi^(2·brv(i)+1).
	for i := 0; i < n; i++ {
		r := brv(i, tab.LogN)
		if f[i] != direct[r] {
			t.Fatalf("output %d != direct evaluation %d", i, r)
		}
	}
}

func brv(x, bits int) int {
	r := 0
	for i := 0; i < bits; i++ {
		r = (r << 1) | (x & 1)
		x >>= 1
	}
	return r
}

func TestForwardLinearityProperty(t *testing.T) {
	tab := mustTable(t, 64, 45)
	q := tab.Mod.Q
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomPoly(rng, 64, q)
		b := randomPoly(rng, 64, q)
		sum := make([]uint64, 64)
		for i := range sum {
			sum[i] = tab.Mod.Add(a[i], b[i])
		}
		tab.Forward(a)
		tab.Forward(b)
		tab.Forward(sum)
		for i := range sum {
			if sum[i] != tab.Mod.Add(a[i], b[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFusedMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{8, 64, 512, 4096} {
		for _, bitSize := range []int{30, 59} {
			tab := mustTable(t, n, bitSize)
			for k := 1; k <= 6; k++ {
				plan, err := NewFusedPlan(tab, k)
				if err != nil {
					t.Fatalf("NewFusedPlan(k=%d): %v", k, err)
				}
				a := randomPoly(rng, n, tab.Mod.Q)
				want := append([]uint64(nil), a...)
				tab.Forward(want)
				plan.Forward(a)
				for i := range a {
					if a[i] != want[i] {
						t.Fatalf("n=%d bits=%d k=%d: fused mismatch at %d", n, bitSize, k, i)
					}
				}
			}
		}
	}
}

func TestFusedPlanErrors(t *testing.T) {
	tab := mustTable(t, 8, 30)
	if _, err := NewFusedPlan(tab, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := NewFusedPlan(tab, 7); err == nil {
		t.Error("k=7 should error")
	}
}

func TestFusedPassCount(t *testing.T) {
	tab := mustTable(t, 4096, 30)
	for k := 1; k <= 6; k++ {
		plan, err := NewFusedPlan(tab, k)
		if err != nil {
			t.Fatal(err)
		}
		want := Iterations(tab.LogN, k)
		if got := plan.Passes(); got != want {
			t.Errorf("k=%d: passes=%d want %d", k, got, want)
		}
	}
}

// Fusion reduces reduction slots (and memory passes) by ~k× without adding
// arithmetic: the register-blocked kernel executes the same butterfly
// network as radix-2, so Mults/Adds match the plain transform exactly while
// Reductions shrinks from one slot per stage to one per pass — the software
// reading of the Table II tradeoff (the hardware TAM's mult inflation stays
// modeled in FusedBlockCosts).
func TestFusionReductionTradeoff(t *testing.T) {
	tab := mustTable(t, 4096, 30)
	rng := rand.New(rand.NewSource(14))

	var plain Stats
	a := randomPoly(rng, tab.N, tab.Mod.Q)
	tab.forwardCounted(append([]uint64(nil), a...), &plain)

	plan, err := NewFusedPlan(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	var fused Stats
	plan.ForwardCounted(append([]uint64(nil), a...), &fused)

	if fused.Reductions >= plain.Reductions {
		t.Errorf("fusion should cut reductions: fused=%d plain=%d",
			fused.Reductions, plain.Reductions)
	}
	// k=3 fuses 3 stages → roughly 3× fewer reduction slots (logN=12 → 4 passes).
	ratio := float64(plain.Reductions) / float64(fused.Reductions)
	if ratio < 2.0 || ratio > 4.0 {
		t.Errorf("reduction ratio %.2f outside expected [2,4] for k=3", ratio)
	}
	if fused.Mults != plain.Mults || fused.Adds != plain.Adds {
		t.Errorf("register-blocked fusion must not add arithmetic: fused M/A=%d/%d plain=%d/%d",
			fused.Mults, fused.Adds, plain.Mults, plain.Adds)
	}
	if want := int64(Iterations(tab.LogN, 3)); fused.FusedPasses != want {
		t.Errorf("fused passes=%d want %d", fused.FusedPasses, want)
	}
	if plain.FusedPasses != 0 {
		t.Errorf("plain kernel recorded %d fused passes, want 0", plain.FusedPasses)
	}
}

func TestBlockCostsMatchTableII(t *testing.T) {
	// The analytic per-block costs must reproduce the paper's Table II.
	wantUnfusedMA := map[int]int{2: 8, 3: 24, 4: 64, 5: 160, 6: 384}
	wantFusedMA := map[int]int{2: 12, 3: 56, 4: 240, 5: 992}
	wantUnfusedW := map[int]int{2: 2, 3: 4, 4: 8, 5: 16, 6: 32}
	wantFusedW := map[int]int{2: 2, 3: 5, 4: 13, 5: 34, 6: 85}
	for k := 2; k <= 6; k++ {
		u := UnfusedBlockCosts(k)
		f := FusedBlockCosts(k)
		if u.Mults != wantUnfusedMA[k] || u.Adds != wantUnfusedMA[k] {
			t.Errorf("k=%d: unfused M/A=%d/%d want %d", k, u.Mults, u.Adds, wantUnfusedMA[k])
		}
		if k <= 5 && (f.Mults != wantFusedMA[k] || f.Adds != wantFusedMA[k]) {
			t.Errorf("k=%d: fused M/A=%d/%d want %d", k, f.Mults, f.Adds, wantFusedMA[k])
		}
		if u.Twiddles != wantUnfusedW[k] {
			t.Errorf("k=%d: unfused W=%d want %d", k, u.Twiddles, wantUnfusedW[k])
		}
		if f.Twiddles != wantFusedW[k] {
			t.Errorf("k=%d: fused W=%d want %d", k, f.Twiddles, wantFusedW[k])
		}
		if f.Reductions != 1<<uint(k) {
			t.Errorf("k=%d: fused reductions=%d want %d", k, f.Reductions, 1<<uint(k))
		}
		if u.Reductions != k<<uint(k) {
			t.Errorf("k=%d: unfused reductions=%d want %d", k, u.Reductions, k<<uint(k))
		}
	}
}

func TestAccessStride(t *testing.T) {
	// Fig 5 / Table III: with k=3, iteration strides are 1, 8, 64, ...
	for iter, want := range map[int]int{1: 1, 2: 8, 3: 64, 4: 512} {
		if got := AccessStride(iter, 3); got != want {
			t.Errorf("AccessStride(%d,3)=%d want %d", iter, got, want)
		}
	}
	// Conventional NTT (k=1): strides 1, 2, 4, ...
	for iter, want := range map[int]int{1: 1, 2: 2, 3: 4, 4: 8} {
		if got := AccessStride(iter, 1); got != want {
			t.Errorf("AccessStride(%d,1)=%d want %d", iter, got, want)
		}
	}
	if got := Iterations(12, 3); got != 4 {
		t.Errorf("Iterations(12,3)=%d want 4", got)
	}
	if got := Iterations(12, 1); got != 12 {
		t.Errorf("Iterations(12,1)=%d want 12", got)
	}
	if got := Iterations(16, 3); got != 6 {
		t.Errorf("Iterations(16,3)=%d want 6", got)
	}
}

// The register-blocked plan stores each stage twiddle exactly once — with
// Shoup duals that is 4(N−1) words for any k, forward and inverse alike —
// unlike the hardware TAM's dense matrices whose k-dependent growth stays
// modeled in FusedBlockCosts(k).Twiddles.
func TestTwiddleStorageConstantInK(t *testing.T) {
	tab := mustTable(t, 1024, 30)
	want := 4 * (tab.N - 1)
	for k := 1; k <= 6; k++ {
		plan, err := NewFusedPlan(tab, k)
		if err != nil {
			t.Fatal(err)
		}
		inv, err := NewInverseFusedPlan(tab, k)
		if err != nil {
			t.Fatal(err)
		}
		if st := plan.TwiddleStorage() + inv.TwiddleStorage(); st != want {
			t.Errorf("k=%d: twiddle storage %d words, want %d", k, st, want)
		}
	}
}

func TestDistinctTwiddles(t *testing.T) {
	tab := mustTable(t, 64, 30)
	plan, err := NewFusedPlan(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range plan.DistinctTwiddles() {
		if d <= 0 {
			t.Errorf("pass %d: distinct twiddles %d, want > 0", i, d)
		}
		if d > 64*64 {
			t.Errorf("pass %d: distinct twiddles %d exceeds matrix size", i, d)
		}
	}
}

func BenchmarkForwardRadix2(b *testing.B) {
	for _, n := range []int{4096, 16384, 65536} {
		b.Run(sizeName(n), func(b *testing.B) {
			tab := benchTable(b, n)
			a := randomPoly(rand.New(rand.NewSource(1)), n, tab.Mod.Q)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tab.Forward(a)
			}
		})
	}
}

func BenchmarkForwardFusedK3(b *testing.B) {
	for _, n := range []int{4096, 16384} {
		b.Run(sizeName(n), func(b *testing.B) {
			tab := benchTable(b, n)
			plan, err := NewFusedPlan(tab, 3)
			if err != nil {
				b.Fatal(err)
			}
			a := randomPoly(rand.New(rand.NewSource(1)), n, tab.Mod.Q)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan.Forward(a)
			}
		})
	}
}

func benchTable(b *testing.B, n int) *Table {
	b.Helper()
	ps, err := numeric.GenerateNTTPrimes(59, log2(n), 1)
	if err != nil {
		b.Fatal(err)
	}
	tab, err := NewTable(n, ps[0])
	if err != nil {
		b.Fatal(err)
	}
	return tab
}

func sizeName(n int) string {
	switch n {
	case 4096:
		return "N=4096"
	case 16384:
		return "N=16384"
	case 65536:
		return "N=65536"
	}
	return "N"
}
