package ntt

import (
	"math/rand"
	"testing"
)

// The fused plans must be zero-allocation on the hot path: all twiddle and
// pass state is precomputed at plan construction, the generic kernel's
// block buffer lives on the stack, and the specialized kernels touch only
// their operand slices. This is the ntt-level half of the evaluator's
// zero-alloc chain gate.
func TestFusedZeroAlloc(t *testing.T) {
	tab := mustTable(t, 1<<10, 59)
	a := randomPoly(rand.New(rand.NewSource(3)), tab.N, tab.Mod.Q)
	for k := 1; k <= 6; k++ {
		fwd, err := NewFusedPlan(tab, k)
		if err != nil {
			t.Fatal(err)
		}
		inv, err := NewInverseFusedPlan(tab, k)
		if err != nil {
			t.Fatal(err)
		}
		// Warm-up transform pair, then measure.
		fwd.Forward(a)
		inv.Inverse(a)
		if allocs := testing.AllocsPerRun(10, func() { fwd.Forward(a) }); allocs != 0 {
			t.Errorf("k=%d: Forward allocates %.1f/op, want 0", k, allocs)
		}
		if allocs := testing.AllocsPerRun(10, func() { inv.Inverse(a) }); allocs != 0 {
			t.Errorf("k=%d: Inverse allocates %.1f/op, want 0", k, allocs)
		}
	}
}

// FuzzFusedNTTRoundTrip drives the fused kernels with fuzzer-chosen
// coefficients and fusion degree: the fused forward must match the radix-2
// forward bit-for-bit, and fused forward → fused inverse must reproduce the
// input exactly (the N^-1 fold undoing the transform).
func FuzzFusedNTTRoundTrip(f *testing.F) {
	tab, err := NewTable(256, 7681)
	if err != nil {
		f.Fatal(err)
	}
	big, err := NewTable(256, 1152921504606830593)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint64(1), uint8(3))
	f.Add(uint64(42), uint8(1))
	f.Add(uint64(7), uint8(6))
	f.Fuzz(func(t *testing.T, seed uint64, kRaw uint8) {
		k := int(kRaw)%6 + 1
		for _, tb := range []*Table{tab, big} {
			fwd, err := NewFusedPlan(tb, k)
			if err != nil {
				t.Fatal(err)
			}
			inv, err := NewInverseFusedPlan(tb, k)
			if err != nil {
				t.Fatal(err)
			}
			a := randomPoly(rand.New(rand.NewSource(int64(seed))), tb.N, tb.Mod.Q)
			orig := append([]uint64(nil), a...)

			want := append([]uint64(nil), a...)
			tb.Forward(want)
			fwd.Forward(a)
			for i := range a {
				if a[i] != want[i] {
					t.Fatalf("q=%d k=%d: fused forward differs from radix-2 at %d", tb.Mod.Q, k, i)
				}
			}
			inv.Inverse(a)
			for i := range a {
				if a[i] != orig[i] {
					t.Fatalf("q=%d k=%d: round trip differs from input at %d", tb.Mod.Q, k, i)
				}
			}
		}
	})
}
