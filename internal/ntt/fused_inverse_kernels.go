package ntt

import (
	"math/bits"

	"poseidon/internal/numeric"
)

// Specialized inverse fused-pass kernels, mirroring fused_kernels.go for the
// Gentleman-Sande direction. Residues stay in the [0, 2q) lazy band: each
// butterfly's sum output takes one conditional 2q-correction and its
// difference output is a lazy Shoup product of u−v+2q. The fold kernels run
// the final pass: their last stage multiplies sums by N^-1 and differences
// by N^-1·psiInv through exact Shoup products, leaving outputs fully
// reduced.

// --- inverse, κ=3 -----------------------------------------------------------

// invPass8First runs the first 8-point pass: stride is 1 by construction,
// so blocks are contiguous.
func invPass8First(mod numeric.Modulus, a, tw []uint64, segs int) {
	q := mod.Q
	twoQ := q << 1
	for seg := 0; seg < segs; seg++ {
		t := tw[seg*14 : seg*14+14 : seg*14+14]
		w1, s1 := t[0], t[1]
		w2, s2 := t[2], t[3]
		w3, s3 := t[4], t[5]
		w4, s4 := t[6], t[7]
		w5, s5 := t[8], t[9]
		w6, s6 := t[10], t[11]
		w7, s7 := t[12], t[13]
		x := a[seg*8 : seg*8+8 : seg*8+8]
		a0, a1, a2, a3 := x[0], x[1], x[2], x[3]
		a4, a5, a6, a7 := x[4], x[5], x[6], x[7]

		// Stage 1 (span 1): (0,1)×w1 (2,3)×w2 (4,5)×w3 (6,7)×w4.
		s := a0 + a1
		if s >= twoQ {
			s -= twoQ
		}
		d := a0 + twoQ - a1
		h, _ := bits.Mul64(d, s1)
		a0, a1 = s, d*w1-h*q
		s = a2 + a3
		if s >= twoQ {
			s -= twoQ
		}
		d = a2 + twoQ - a3
		h, _ = bits.Mul64(d, s2)
		a2, a3 = s, d*w2-h*q
		s = a4 + a5
		if s >= twoQ {
			s -= twoQ
		}
		d = a4 + twoQ - a5
		h, _ = bits.Mul64(d, s3)
		a4, a5 = s, d*w3-h*q
		s = a6 + a7
		if s >= twoQ {
			s -= twoQ
		}
		d = a6 + twoQ - a7
		h, _ = bits.Mul64(d, s4)
		a6, a7 = s, d*w4-h*q

		// Stage 2 (span 2): (0,2)(1,3)×w5; (4,6)(5,7)×w6.
		s = a0 + a2
		if s >= twoQ {
			s -= twoQ
		}
		d = a0 + twoQ - a2
		h, _ = bits.Mul64(d, s5)
		a0, a2 = s, d*w5-h*q
		s = a1 + a3
		if s >= twoQ {
			s -= twoQ
		}
		d = a1 + twoQ - a3
		h, _ = bits.Mul64(d, s5)
		a1, a3 = s, d*w5-h*q
		s = a4 + a6
		if s >= twoQ {
			s -= twoQ
		}
		d = a4 + twoQ - a6
		h, _ = bits.Mul64(d, s6)
		a4, a6 = s, d*w6-h*q
		s = a5 + a7
		if s >= twoQ {
			s -= twoQ
		}
		d = a5 + twoQ - a7
		h, _ = bits.Mul64(d, s6)
		a5, a7 = s, d*w6-h*q

		// Stage 3 (span 4): (0,4)(1,5)(2,6)(3,7)×w7.
		s = a0 + a4
		if s >= twoQ {
			s -= twoQ
		}
		d = a0 + twoQ - a4
		h, _ = bits.Mul64(d, s7)
		a0, a4 = s, d*w7-h*q
		s = a1 + a5
		if s >= twoQ {
			s -= twoQ
		}
		d = a1 + twoQ - a5
		h, _ = bits.Mul64(d, s7)
		a1, a5 = s, d*w7-h*q
		s = a2 + a6
		if s >= twoQ {
			s -= twoQ
		}
		d = a2 + twoQ - a6
		h, _ = bits.Mul64(d, s7)
		a2, a6 = s, d*w7-h*q
		s = a3 + a7
		if s >= twoQ {
			s -= twoQ
		}
		d = a3 + twoQ - a7
		h, _ = bits.Mul64(d, s7)
		a3, a7 = s, d*w7-h*q

		x[0], x[1], x[2], x[3] = a0, a1, a2, a3
		x[4], x[5], x[6], x[7] = a4, a5, a6, a7
	}
}

// invPass8 runs a middle 8-point pass at the given stride.
func invPass8(mod numeric.Modulus, a, tw []uint64, stride, segs int) {
	q := mod.Q
	twoQ := q << 1
	segLen := stride << 3
	for seg := 0; seg < segs; seg++ {
		t := tw[seg*14 : seg*14+14 : seg*14+14]
		w1, s1 := t[0], t[1]
		w2, s2 := t[2], t[3]
		w3, s3 := t[4], t[5]
		w4, s4 := t[6], t[7]
		w5, s5 := t[8], t[9]
		w6, s6 := t[10], t[11]
		w7, s7 := t[12], t[13]
		base := seg * segLen
		x0 := a[base : base+stride : base+stride]
		x1 := a[base+stride : base+2*stride : base+2*stride]
		x2 := a[base+2*stride : base+3*stride : base+3*stride]
		x3 := a[base+3*stride : base+4*stride : base+4*stride]
		x4 := a[base+4*stride : base+5*stride : base+5*stride]
		x5 := a[base+5*stride : base+6*stride : base+6*stride]
		x6 := a[base+6*stride : base+7*stride : base+7*stride]
		x7 := a[base+7*stride : base+8*stride : base+8*stride]
		for j := 0; j < stride; j++ {
			a0, a1, a2, a3 := x0[j], x1[j], x2[j], x3[j]
			a4, a5, a6, a7 := x4[j], x5[j], x6[j], x7[j]

			s := a0 + a1
			if s >= twoQ {
				s -= twoQ
			}
			d := a0 + twoQ - a1
			h, _ := bits.Mul64(d, s1)
			a0, a1 = s, d*w1-h*q
			s = a2 + a3
			if s >= twoQ {
				s -= twoQ
			}
			d = a2 + twoQ - a3
			h, _ = bits.Mul64(d, s2)
			a2, a3 = s, d*w2-h*q
			s = a4 + a5
			if s >= twoQ {
				s -= twoQ
			}
			d = a4 + twoQ - a5
			h, _ = bits.Mul64(d, s3)
			a4, a5 = s, d*w3-h*q
			s = a6 + a7
			if s >= twoQ {
				s -= twoQ
			}
			d = a6 + twoQ - a7
			h, _ = bits.Mul64(d, s4)
			a6, a7 = s, d*w4-h*q

			s = a0 + a2
			if s >= twoQ {
				s -= twoQ
			}
			d = a0 + twoQ - a2
			h, _ = bits.Mul64(d, s5)
			a0, a2 = s, d*w5-h*q
			s = a1 + a3
			if s >= twoQ {
				s -= twoQ
			}
			d = a1 + twoQ - a3
			h, _ = bits.Mul64(d, s5)
			a1, a3 = s, d*w5-h*q
			s = a4 + a6
			if s >= twoQ {
				s -= twoQ
			}
			d = a4 + twoQ - a6
			h, _ = bits.Mul64(d, s6)
			a4, a6 = s, d*w6-h*q
			s = a5 + a7
			if s >= twoQ {
				s -= twoQ
			}
			d = a5 + twoQ - a7
			h, _ = bits.Mul64(d, s6)
			a5, a7 = s, d*w6-h*q

			s = a0 + a4
			if s >= twoQ {
				s -= twoQ
			}
			d = a0 + twoQ - a4
			h, _ = bits.Mul64(d, s7)
			a0, a4 = s, d*w7-h*q
			s = a1 + a5
			if s >= twoQ {
				s -= twoQ
			}
			d = a1 + twoQ - a5
			h, _ = bits.Mul64(d, s7)
			a1, a5 = s, d*w7-h*q
			s = a2 + a6
			if s >= twoQ {
				s -= twoQ
			}
			d = a2 + twoQ - a6
			h, _ = bits.Mul64(d, s7)
			a2, a6 = s, d*w7-h*q
			s = a3 + a7
			if s >= twoQ {
				s -= twoQ
			}
			d = a3 + twoQ - a7
			h, _ = bits.Mul64(d, s7)
			a3, a7 = s, d*w7-h*q

			x0[j], x1[j], x2[j], x3[j] = a0, a1, a2, a3
			x4[j], x5[j], x6[j], x7[j] = a4, a5, a6, a7
		}
	}
}

// invPass8Fold runs the final 8-point pass (one segment spanning the whole
// vector): stages 1–2 stay lazy, stage 3 folds N^-1 through exact Shoup
// products so every output is fully reduced.
func invPass8Fold(mod numeric.Modulus, a, tw []uint64, stride int, nInv, nInvShoup uint64) {
	q := mod.Q
	twoQ := q << 1
	t := tw[0:14:14]
	w1, s1 := t[0], t[1]
	w2, s2 := t[2], t[3]
	w3, s3 := t[4], t[5]
	w4, s4 := t[6], t[7]
	w5, s5 := t[8], t[9]
	w6, s6 := t[10], t[11]
	w7, s7 := t[12], t[13]
	x0 := a[0:stride:stride]
	x1 := a[stride : 2*stride : 2*stride]
	x2 := a[2*stride : 3*stride : 3*stride]
	x3 := a[3*stride : 4*stride : 4*stride]
	x4 := a[4*stride : 5*stride : 5*stride]
	x5 := a[5*stride : 6*stride : 6*stride]
	x6 := a[6*stride : 7*stride : 7*stride]
	x7 := a[7*stride : 8*stride : 8*stride]
	for j := 0; j < stride; j++ {
		a0, a1, a2, a3 := x0[j], x1[j], x2[j], x3[j]
		a4, a5, a6, a7 := x4[j], x5[j], x6[j], x7[j]

		s := a0 + a1
		if s >= twoQ {
			s -= twoQ
		}
		d := a0 + twoQ - a1
		h, _ := bits.Mul64(d, s1)
		a0, a1 = s, d*w1-h*q
		s = a2 + a3
		if s >= twoQ {
			s -= twoQ
		}
		d = a2 + twoQ - a3
		h, _ = bits.Mul64(d, s2)
		a2, a3 = s, d*w2-h*q
		s = a4 + a5
		if s >= twoQ {
			s -= twoQ
		}
		d = a4 + twoQ - a5
		h, _ = bits.Mul64(d, s3)
		a4, a5 = s, d*w3-h*q
		s = a6 + a7
		if s >= twoQ {
			s -= twoQ
		}
		d = a6 + twoQ - a7
		h, _ = bits.Mul64(d, s4)
		a6, a7 = s, d*w4-h*q

		s = a0 + a2
		if s >= twoQ {
			s -= twoQ
		}
		d = a0 + twoQ - a2
		h, _ = bits.Mul64(d, s5)
		a0, a2 = s, d*w5-h*q
		s = a1 + a3
		if s >= twoQ {
			s -= twoQ
		}
		d = a1 + twoQ - a3
		h, _ = bits.Mul64(d, s5)
		a1, a3 = s, d*w5-h*q
		s = a4 + a6
		if s >= twoQ {
			s -= twoQ
		}
		d = a4 + twoQ - a6
		h, _ = bits.Mul64(d, s6)
		a4, a6 = s, d*w6-h*q
		s = a5 + a7
		if s >= twoQ {
			s -= twoQ
		}
		d = a5 + twoQ - a7
		h, _ = bits.Mul64(d, s6)
		a5, a7 = s, d*w6-h*q

		// Folding stage: sums × nInv, differences × (nInv·psiInv) = w7.
		x0[j] = mulShoupExact(a0+a4, nInv, nInvShoup, q)
		x4[j] = mulShoupExact(a0+twoQ-a4, w7, s7, q)
		x1[j] = mulShoupExact(a1+a5, nInv, nInvShoup, q)
		x5[j] = mulShoupExact(a1+twoQ-a5, w7, s7, q)
		x2[j] = mulShoupExact(a2+a6, nInv, nInvShoup, q)
		x6[j] = mulShoupExact(a2+twoQ-a6, w7, s7, q)
		x3[j] = mulShoupExact(a3+a7, nInv, nInvShoup, q)
		x7[j] = mulShoupExact(a3+twoQ-a7, w7, s7, q)
	}
}

// mulShoupExact is Modulus.MulShoup with the modulus already in a register.
func mulShoupExact(a, w, ws, q uint64) uint64 {
	hi, _ := bits.Mul64(a, ws)
	r := a*w - hi*q
	if r >= q {
		r -= q
	}
	return r
}

// --- inverse, κ=2 -----------------------------------------------------------

func invPass4First(mod numeric.Modulus, a, tw []uint64, segs int) {
	q := mod.Q
	twoQ := q << 1
	for seg := 0; seg < segs; seg++ {
		t := tw[seg*6 : seg*6+6 : seg*6+6]
		w1, s1 := t[0], t[1]
		w2, s2 := t[2], t[3]
		w3, s3 := t[4], t[5]
		x := a[seg*4 : seg*4+4 : seg*4+4]
		a0, a1, a2, a3 := x[0], x[1], x[2], x[3]

		// Stage 1 (span 1): (0,1)×w1 (2,3)×w2.
		s := a0 + a1
		if s >= twoQ {
			s -= twoQ
		}
		d := a0 + twoQ - a1
		h, _ := bits.Mul64(d, s1)
		a0, a1 = s, d*w1-h*q
		s = a2 + a3
		if s >= twoQ {
			s -= twoQ
		}
		d = a2 + twoQ - a3
		h, _ = bits.Mul64(d, s2)
		a2, a3 = s, d*w2-h*q

		// Stage 2 (span 2): (0,2)(1,3)×w3.
		s = a0 + a2
		if s >= twoQ {
			s -= twoQ
		}
		d = a0 + twoQ - a2
		h, _ = bits.Mul64(d, s3)
		a0, a2 = s, d*w3-h*q
		s = a1 + a3
		if s >= twoQ {
			s -= twoQ
		}
		d = a1 + twoQ - a3
		h, _ = bits.Mul64(d, s3)
		a1, a3 = s, d*w3-h*q

		x[0], x[1], x[2], x[3] = a0, a1, a2, a3
	}
}

func invPass4(mod numeric.Modulus, a, tw []uint64, stride, segs int) {
	q := mod.Q
	twoQ := q << 1
	segLen := stride << 2
	for seg := 0; seg < segs; seg++ {
		t := tw[seg*6 : seg*6+6 : seg*6+6]
		w1, s1 := t[0], t[1]
		w2, s2 := t[2], t[3]
		w3, s3 := t[4], t[5]
		base := seg * segLen
		x0 := a[base : base+stride : base+stride]
		x1 := a[base+stride : base+2*stride : base+2*stride]
		x2 := a[base+2*stride : base+3*stride : base+3*stride]
		x3 := a[base+3*stride : base+4*stride : base+4*stride]
		for j := 0; j < stride; j++ {
			a0, a1, a2, a3 := x0[j], x1[j], x2[j], x3[j]

			s := a0 + a1
			if s >= twoQ {
				s -= twoQ
			}
			d := a0 + twoQ - a1
			h, _ := bits.Mul64(d, s1)
			a0, a1 = s, d*w1-h*q
			s = a2 + a3
			if s >= twoQ {
				s -= twoQ
			}
			d = a2 + twoQ - a3
			h, _ = bits.Mul64(d, s2)
			a2, a3 = s, d*w2-h*q

			s = a0 + a2
			if s >= twoQ {
				s -= twoQ
			}
			d = a0 + twoQ - a2
			h, _ = bits.Mul64(d, s3)
			a0, a2 = s, d*w3-h*q
			s = a1 + a3
			if s >= twoQ {
				s -= twoQ
			}
			d = a1 + twoQ - a3
			h, _ = bits.Mul64(d, s3)
			a1, a3 = s, d*w3-h*q

			x0[j], x1[j], x2[j], x3[j] = a0, a1, a2, a3
		}
	}
}

func invPass4Fold(mod numeric.Modulus, a, tw []uint64, stride int, nInv, nInvShoup uint64) {
	q := mod.Q
	twoQ := q << 1
	t := tw[0:6:6]
	w1, s1 := t[0], t[1]
	w2, s2 := t[2], t[3]
	w3, s3 := t[4], t[5]
	x0 := a[0:stride:stride]
	x1 := a[stride : 2*stride : 2*stride]
	x2 := a[2*stride : 3*stride : 3*stride]
	x3 := a[3*stride : 4*stride : 4*stride]
	for j := 0; j < stride; j++ {
		a0, a1, a2, a3 := x0[j], x1[j], x2[j], x3[j]

		s := a0 + a1
		if s >= twoQ {
			s -= twoQ
		}
		d := a0 + twoQ - a1
		h, _ := bits.Mul64(d, s1)
		a0, a1 = s, d*w1-h*q
		s = a2 + a3
		if s >= twoQ {
			s -= twoQ
		}
		d = a2 + twoQ - a3
		h, _ = bits.Mul64(d, s2)
		a2, a3 = s, d*w2-h*q

		x0[j] = mulShoupExact(a0+a2, nInv, nInvShoup, q)
		x2[j] = mulShoupExact(a0+twoQ-a2, w3, s3, q)
		x1[j] = mulShoupExact(a1+a3, nInv, nInvShoup, q)
		x3[j] = mulShoupExact(a1+twoQ-a3, w3, s3, q)
	}
}

// --- inverse, κ=1 -----------------------------------------------------------

func invPass2First(mod numeric.Modulus, a, tw []uint64, segs int) {
	q := mod.Q
	twoQ := q << 1
	for seg := 0; seg < segs; seg++ {
		w, ws := tw[seg*2], tw[seg*2+1]
		x := a[seg*2 : seg*2+2 : seg*2+2]
		u, v := x[0], x[1]
		s := u + v
		if s >= twoQ {
			s -= twoQ
		}
		d := u + twoQ - v
		hi, _ := bits.Mul64(d, ws)
		x[0] = s
		x[1] = d*w - hi*q
	}
}

func invPass2(mod numeric.Modulus, a, tw []uint64, stride, segs int) {
	q := mod.Q
	twoQ := q << 1
	for seg := 0; seg < segs; seg++ {
		w, ws := tw[seg*2], tw[seg*2+1]
		base := seg * stride * 2
		x0 := a[base : base+stride : base+stride]
		x1 := a[base+stride : base+2*stride : base+2*stride]
		for j := 0; j < stride; j++ {
			u, v := x0[j], x1[j]
			s := u + v
			if s >= twoQ {
				s -= twoQ
			}
			d := u + twoQ - v
			hi, _ := bits.Mul64(d, ws)
			x0[j] = s
			x1[j] = d*w - hi*q
		}
	}
}

func invPass2Fold(mod numeric.Modulus, a, tw []uint64, stride int, nInv, nInvShoup uint64) {
	q := mod.Q
	twoQ := q << 1
	w, ws := tw[0], tw[1]
	x0 := a[0:stride:stride]
	x1 := a[stride : 2*stride : 2*stride]
	for j := 0; j < stride; j++ {
		u, v := x0[j], x1[j]
		x0[j] = mulShoupExact(u+v, nInv, nInvShoup, q)
		x1[j] = mulShoupExact(u+twoQ-v, w, ws, q)
	}
}
