package ntt

import (
	"math/rand"
	"testing"
)

func TestInverseFusedMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for _, n := range []int{8, 64, 512, 4096} {
		for _, bitSize := range []int{30, 59} {
			tab := mustTable(t, n, bitSize)
			for k := 1; k <= 6; k++ {
				plan, err := NewInverseFusedPlan(tab, k)
				if err != nil {
					t.Fatalf("NewInverseFusedPlan(k=%d): %v", k, err)
				}
				a := randomPoly(rng, n, tab.Mod.Q)
				want := append([]uint64(nil), a...)
				tab.Inverse(want)
				plan.Inverse(a)
				for i := range a {
					if a[i] != want[i] {
						t.Fatalf("n=%d bits=%d k=%d: fused inverse mismatch at %d",
							n, bitSize, k, i)
					}
				}
			}
		}
	}
}

func TestInverseFusedRoundTrip(t *testing.T) {
	tab := mustTable(t, 256, 45)
	fwd, err := NewFusedPlan(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := NewInverseFusedPlan(tab, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(51))
	a := randomPoly(rng, tab.N, tab.Mod.Q)
	orig := append([]uint64(nil), a...)
	fwd.Forward(a)
	inv.Inverse(a)
	for i := range a {
		if a[i] != orig[i] {
			t.Fatalf("fused round trip mismatch at %d", i)
		}
	}
}

func TestInverseFusedErrors(t *testing.T) {
	tab := mustTable(t, 16, 30)
	if _, err := NewInverseFusedPlan(tab, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := NewInverseFusedPlan(tab, 7); err == nil {
		t.Error("k=7 should error")
	}
	plan, _ := NewInverseFusedPlan(tab, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	plan.Inverse(make([]uint64, 8))
}

func TestInverseFusedPassCount(t *testing.T) {
	tab := mustTable(t, 4096, 30)
	for k := 1; k <= 6; k++ {
		plan, err := NewInverseFusedPlan(tab, k)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := plan.Passes(), Iterations(tab.LogN, k); got != want {
			t.Errorf("k=%d: passes=%d want %d", k, got, want)
		}
	}
}

func TestInverseFusedReductionSavings(t *testing.T) {
	tab := mustTable(t, 1024, 30)
	rng := rand.New(rand.NewSource(52))
	a := randomPoly(rng, tab.N, tab.Mod.Q)

	plan1, _ := NewInverseFusedPlan(tab, 1)
	plan3, _ := NewInverseFusedPlan(tab, 3)
	var s1, s3 Stats
	plan1.InverseCounted(append([]uint64(nil), a...), &s1)
	plan3.InverseCounted(append([]uint64(nil), a...), &s3)
	if s3.Reductions >= s1.Reductions {
		t.Errorf("k=3 should reduce reductions: %d vs %d", s3.Reductions, s1.Reductions)
	}
}
