package ntt

import (
	"fmt"
	"math/bits"
)

// FusedPlan is a radix-2^k execution plan for the forward NTT of one Table —
// the software form of the paper's "fused TAM" (§IV-B). Each pass fuses up
// to k consecutive radix-2 stages into one sweep over the coefficient
// vector: a block of 2^κ operands is gathered into registers, pushed through
// κ Harvey butterfly stages without touching memory in between, and written
// back once. Intermediate residues stay in the lazy [0, 4q) band the whole
// transform; the single deferred normalization per coefficient happens in
// the final pass, so the number of memory passes drops from log2(N) to
// ceil(log2(N)/k) and every in-block reduction slot is deferred by
// construction rather than checked per butterfly.
//
// Where the hardware TAM pays for fusion with precomputed twiddle-product
// storage (the dense matrices of Table II, modeled by FusedBlockCosts), the
// CPU kernel pays with register pressure and code size: the per-pass
// twiddles are the ordinary stage twiddles, re-laid-out per segment so the
// inner loop reads them from a handful of locals. Plans are immutable after
// construction and safe for concurrent use; Forward/Inverse allocate
// nothing.
type FusedPlan struct {
	Table *Table
	K     int

	passes []fusedPass
}

// fusedPass is one stage-group sweep. For the forward plan m0 is the first
// stage parameter of the group; for the inverse plan it is the group's
// starting span. Blocks gather 2^kappa elements at spacing stride; segments
// (segLen = stride·2^kappa) share one twiddle set of 2^kappa−1 factors.
type fusedPass struct {
	kappa  int
	m0     int
	stride int
	segLen int
	segs   int

	// tw holds (w, wShoup) pairs, (2^kappa − 1) per segment, stage-major
	// within the segment, so one segment's twiddles are a single contiguous
	// read hoisted into locals before its inner loop.
	tw []uint64
}

// NewFusedPlan constructs the radix-2^k plan. k must be in [1, 6]; values
// above log2(N) are clamped to a single full-width pass. When log2(N) is
// not a multiple of k, the remainder runs as a shorter first pass (where
// strides are largest and per-segment overhead amortizes best); all
// remaining passes fuse exactly k stages.
func NewFusedPlan(t *Table, k int) (*FusedPlan, error) {
	if k < 1 || k > 6 {
		return nil, fmt.Errorf("ntt: fusion degree k=%d out of range [1,6]", k)
	}
	p := &FusedPlan{Table: t, K: k}

	n := t.N
	numPasses := (t.LogN + k - 1) / k
	first := t.LogN - k*(numPasses-1) // in [1, k]
	m0 := 1
	for pi := 0; pi < numPasses; pi++ {
		kappa := k
		if pi == 0 {
			kappa = first
		}
		pass := fusedPass{kappa: kappa, m0: m0}
		pass.stride = n / (m0 << uint(kappa))
		pass.segLen = pass.stride << uint(kappa)
		pass.segs = m0
		pass.tw = p.buildPassTwiddles(pass)
		p.passes = append(p.passes, pass)
		m0 <<= uint(kappa)
	}
	return p, nil
}

func log2(x int) int { return bits.Len(uint(x)) - 1 }

// buildPassTwiddles lays out the pass's stage twiddles segment-major: for
// segment g, stage s of the group (global stage parameter m0·2^s)
// contributes the 2^s factors psiBR[m0·2^s + g·2^s + c], c < 2^s, each
// stored with its Shoup dual.
func (p *FusedPlan) buildPassTwiddles(pass fusedPass) []uint64 {
	t := p.Table
	pairs := (1 << uint(pass.kappa)) - 1
	tw := make([]uint64, 2*pairs*pass.segs)
	for g := 0; g < pass.segs; g++ {
		off := 2 * pairs * g
		for s := 0; s < pass.kappa; s++ {
			m := pass.m0 << uint(s)
			for c := 0; c < 1<<uint(s); c++ {
				idx := m + (g << uint(s)) + c
				tw[off] = t.psiBR[idx]
				tw[off+1] = t.psiBRShoup[idx]
				off += 2
			}
		}
	}
	return tw
}

// Forward computes the forward negacyclic NTT of a via the fused plan.
// Output is bit-identical to Table.Forward (bit-reversed order, fully
// reduced). Zero allocations.
func (p *FusedPlan) Forward(a []uint64) {
	t := p.Table
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: length %d != N=%d", len(a), t.N))
	}
	mod := t.Mod
	last := len(p.passes) - 1
	for pi := range p.passes {
		pass := &p.passes[pi]
		if pi == last {
			// The final pass always lands on stride 1 (contiguous blocks)
			// and performs the one deferred normalization per coefficient.
			switch pass.kappa {
			case 3:
				fwdPass8Last(mod, a, pass.tw, pass.segs)
			case 2:
				fwdPass4Last(mod, a, pass.tw, pass.segs)
			case 1:
				fwdPass2Last(mod, a, pass.tw, pass.segs)
			default:
				p.runPassGeneric(a, pass, true, nil)
			}
			continue
		}
		switch pass.kappa {
		case 3:
			fwdPass8(mod, a, pass.tw, pass.stride, pass.segs)
		case 2:
			fwdPass4(mod, a, pass.tw, pass.stride, pass.segs)
		case 1:
			fwdPass2(mod, a, pass.tw, pass.stride, pass.segs)
		default:
			p.runPassGeneric(a, pass, false, nil)
		}
	}
}

// ForwardCounted is Forward with operation accounting into s. The counted
// run executes the generic (non-specialized) kernels, which are bit-identical
// to the fast path; counting follows the TAM convention of Stats — one
// reduction slot per block output per pass, so fusion's deferral shows up as
// a Reductions total of N per pass instead of N per stage.
func (p *FusedPlan) ForwardCounted(a []uint64, s *Stats) {
	t := p.Table
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: length %d != N=%d", len(a), t.N))
	}
	if s == nil {
		p.Forward(a)
		return
	}
	last := len(p.passes) - 1
	for pi := range p.passes {
		p.runPassGeneric(a, &p.passes[pi], pi == last, s)
	}
}

// runPassGeneric executes one fused pass through a stack block buffer —
// the reference path for arbitrary kappa (up to 6), also used for counted
// runs. Bit-identical to the specialized kernels.
func (p *FusedPlan) runPassGeneric(a []uint64, pass *fusedPass, final bool, st *Stats) {
	mod := p.Table.Mod
	q := mod.Q
	twoQ := q << 1
	size := 1 << uint(pass.kappa)
	pairs := size - 1
	var buf [64]uint64
	for seg := 0; seg < pass.segs; seg++ {
		tw := pass.tw[seg*2*pairs : (seg+1)*2*pairs]
		base := seg * pass.segLen
		for r := 0; r < pass.stride; r++ {
			for tt := 0; tt < size; tt++ {
				buf[tt] = a[base+r+tt*pass.stride]
			}
			twOff := 0
			for s := 0; s < pass.kappa; s++ {
				groups := 1 << uint(s)
				span := size >> uint(s+1)
				for c := 0; c < groups; c++ {
					w, ws := tw[2*(twOff+c)], tw[2*(twOff+c)+1]
					lb := c * 2 * span
					for lj := lb; lj < lb+span; lj++ {
						u := buf[lj]
						if u >= twoQ {
							u -= twoQ
						}
						x := buf[lj+span]
						hi, _ := bits.Mul64(x, ws)
						v := x*w - hi*q
						buf[lj] = u + v
						buf[lj+span] = u + twoQ - v
					}
				}
				twOff += groups
			}
			if final {
				for tt := 0; tt < size; tt++ {
					a[base+r+tt*pass.stride] = mod.ReduceFourQ(buf[tt])
				}
			} else {
				for tt := 0; tt < size; tt++ {
					a[base+r+tt*pass.stride] = buf[tt]
				}
			}
		}
	}
	if st != nil {
		n := int64(p.Table.N)
		kappa := int64(pass.kappa)
		// TAM convention: two mult/add slots per butterfly (one per output),
		// size/2 butterflies per block per stage.
		st.Mults += n * kappa
		st.Adds += n * kappa
		// One reduction slot per block output per pass; only the final
		// pass's band-edge normalizations are performed.
		st.Reductions += n
		if final {
			st.Normalizations += n
		} else {
			st.Deferred += n
		}
		st.TwiddleLoads += int64(pairs * pass.segs)
		st.FusedPasses++
	}
}

// DistinctTwiddles returns the number of distinct non-trivial (≠0, ≠1)
// twiddle values held by each pass — the empirical counterpart of the
// paper's W column in Table II.
func (p *FusedPlan) DistinctTwiddles() []int {
	res := make([]int, len(p.passes))
	for i := range p.passes {
		res[i] = distinctTwiddles(p.passes[i].tw)
	}
	return res
}

func distinctTwiddles(tw []uint64) int {
	set := map[uint64]struct{}{}
	for i := 0; i < len(tw); i += 2 {
		if w := tw[i]; w != 0 && w != 1 {
			set[w] = struct{}{}
		}
	}
	return len(set)
}

// Passes returns the number of fused passes (the paper's "iterations":
// ceil(logN / k)).
func (p *FusedPlan) Passes() int { return len(p.passes) }

// TwiddleStorage returns the total number of uint64 words of precomputed
// twiddle state held by the plan (factors plus Shoup duals). The register
// kernel stores each stage twiddle exactly once — 2(N−1) pairs across all
// passes regardless of k — unlike the hardware TAM's dense matrices, whose
// modeled k-dependent growth is FusedBlockCosts(k).Twiddles.
func (p *FusedPlan) TwiddleStorage() int {
	total := 0
	for i := range p.passes {
		total += len(p.passes[i].tw)
	}
	return total
}
