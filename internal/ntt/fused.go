package ntt

import (
	"fmt"
	"math/bits"
)

// FusedPlan is a radix-2^k execution plan for the forward NTT of one Table.
// Each "pass" fuses up to k consecutive radix-2 stages into dense
// 2^κ-point kernels ("fused TAM" in the paper): every kernel output is a
// dot product of the 2^κ gathered inputs against a precomputed twiddle
// matrix, accumulated in 128 bits and reduced once, so the number of
// modular reductions drops from κ·2^κ to 2^κ per block at the cost of
// 2^κ·(2^κ-1) twiddle multiplications.
type FusedPlan struct {
	Table *Table
	K     int

	passes []fusedPass

	// lazy reports whether 128-bit accumulation without intermediate
	// reduction is safe: 2^κ products of two (<q) residues must fit.
	lazy bool
}

type fusedPass struct {
	kappa  int // stages fused in this pass (≤ K)
	m0     int // first stage parameter of the pass
	stride int // distance between gathered elements (= final-stage span)
	segLen int // 2^kappa · stride
	// mats[block] is the 2^kappa × 2^kappa twiddle matrix, row-major,
	// indexed by [seg*stridePerSeg + r].
	mats [][]uint64
}

// NewFusedPlan constructs the radix-2^k plan. k must be in [1, 6]; values
// above log2(N) are clamped by shorter trailing passes.
func NewFusedPlan(t *Table, k int) (*FusedPlan, error) {
	if k < 1 || k > 6 {
		return nil, fmt.Errorf("ntt: fusion degree k=%d out of range [1,6]", k)
	}
	p := &FusedPlan{Table: t, K: k}
	// Safe lazy accumulation: 2^κ · (q-1)^2 < 2^128.
	p.lazy = uint(k)+2*uint(t.Mod.Bits) <= 128

	n := t.N
	for m0 := 1; m0 < n; {
		kappa := k
		// Remaining stages: stage parameters m0, 2m0, ... while < n.
		remaining := t.LogN - log2(m0)
		if kappa > remaining {
			kappa = remaining
		}
		pass := fusedPass{kappa: kappa, m0: m0}
		pass.stride = n / (m0 << uint(kappa))
		pass.segLen = pass.stride << uint(kappa)
		pass.mats = p.buildPassMatrices(pass)
		p.passes = append(p.passes, pass)
		m0 <<= uint(kappa)
	}
	return p, nil
}

func log2(x int) int { return bits.Len(uint(x)) - 1 }

// buildPassMatrices derives every block's dense twiddle matrix by pushing
// unit vectors through the pass's constituent radix-2 stages with the exact
// global twiddles, guaranteeing bit-exact agreement with Table.Forward.
func (p *FusedPlan) buildPassMatrices(pass fusedPass) [][]uint64 {
	t := p.Table
	n := t.N
	size := 1 << uint(pass.kappa)
	numBlocks := n / size
	mats := make([][]uint64, numBlocks)

	col := make([]uint64, size)
	for b := 0; b < numBlocks; b++ {
		seg := b / pass.stride
		r := b % pass.stride
		base := seg*pass.segLen + r
		mat := make([]uint64, size*size)
		for j := 0; j < size; j++ {
			for i := range col {
				col[i] = 0
			}
			col[j] = 1
			p.applyLocalStages(pass, base, col)
			for i := 0; i < size; i++ {
				mat[i*size+j] = col[i]
			}
		}
		mats[b] = mat
	}
	return mats
}

// applyLocalStages runs the pass's radix-2 stages on the local vector v,
// where v[t] mirrors global index base + t·stride.
func (p *FusedPlan) applyLocalStages(pass fusedPass, base int, v []uint64) {
	t := p.Table
	mod := t.Mod
	size := len(v)
	for s := 0; s < pass.kappa; s++ {
		m := pass.m0 << uint(s)
		span := t.N / (2 * m)
		localSpan := size >> uint(s+1) // span / stride
		for lb := 0; lb < size; lb += 2 * localSpan {
			for lj := lb; lj < lb+localSpan; lj++ {
				gj := base + lj*pass.stride
				i := gj / (2 * span)
				w := t.psiBR[m+i]
				u := v[lj]
				x := mod.Mul(v[lj+localSpan], w)
				v[lj] = mod.Add(u, x)
				v[lj+localSpan] = mod.Sub(u, x)
			}
		}
	}
}

// Forward computes the forward negacyclic NTT of a via the fused plan.
// Output matches Table.Forward exactly (bit-reversed order).
func (p *FusedPlan) Forward(a []uint64) {
	p.ForwardCounted(a, nil)
}

// ForwardCounted is Forward with optional operation accounting into s.
func (p *FusedPlan) ForwardCounted(a []uint64, s *Stats) {
	t := p.Table
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: length %d != N=%d", len(a), t.N))
	}
	size0 := 0
	_ = size0
	in := make([]uint64, 1<<uint(p.K))
	out := make([]uint64, 1<<uint(p.K))
	for _, pass := range p.passes {
		size := 1 << uint(pass.kappa)
		numBlocks := t.N / size
		for b := 0; b < numBlocks; b++ {
			seg := b / pass.stride
			r := b % pass.stride
			base := seg*pass.segLen + r
			for tt := 0; tt < size; tt++ {
				in[tt] = a[base+tt*pass.stride]
			}
			p.applyMatrix(pass.mats[b], in[:size], out[:size], s)
			for tt := 0; tt < size; tt++ {
				a[base+tt*pass.stride] = out[tt]
			}
		}
	}
}

// applyMatrix computes out = M·in via the shared fused-TAM kernel, adding
// the twiddle-load accounting the forward direction reports.
func (p *FusedPlan) applyMatrix(mat, in, out []uint64, s *Stats) {
	applyDenseMatrix(p.Table.Mod, mat, in, out, s, p.lazy)
	if s != nil {
		s.TwiddleLoads += int64(countNontrivial(mat))
	}
}

func countNontrivial(mat []uint64) int {
	n := 0
	for _, w := range mat {
		if w != 0 && w != 1 {
			n++
		}
	}
	return n
}

// DistinctTwiddles returns the number of distinct non-trivial (≠0, ≠1)
// twiddle values in the first block's matrix of each pass. This is the
// empirical counterpart of the paper's W column in Table II.
func (p *FusedPlan) DistinctTwiddles() []int {
	res := make([]int, len(p.passes))
	for i, pass := range p.passes {
		set := map[uint64]struct{}{}
		for _, w := range pass.mats[0] {
			if w != 0 && w != 1 {
				set[w] = struct{}{}
			}
		}
		res[i] = len(set)
	}
	return res
}

// Passes returns the number of fused passes (the paper's "iterations":
// ceil(logN / k)).
func (p *FusedPlan) Passes() int { return len(p.passes) }

// TwiddleStorage returns the total number of twiddle-matrix entries held by
// the plan — the storage overhead fusion pays for fewer reductions.
func (p *FusedPlan) TwiddleStorage() int {
	total := 0
	for _, pass := range p.passes {
		for _, m := range pass.mats {
			total += len(m)
		}
	}
	return total
}
