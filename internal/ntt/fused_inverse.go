package ntt

import (
	"fmt"
	"math/bits"
)

// InverseFusedPlan is the radix-2^k execution plan for the inverse
// (Gentleman-Sande) transform — the mirror of FusedPlan. GS stages run with
// growing span (1, 2, 4, …, N/2), so the plan groups them from the bottom:
// the first pass is always contiguous (stride 1) and any remainder group
// runs last, where strides are largest. The N^-1 scaling is folded into the
// final stage of the final pass via exact Shoup products (nInv on the sum
// output, nInv·psiInv on the difference output), so the inverse costs no
// separate scaling sweep and the output is fully reduced — bit-identical to
// Table.Inverse. Plans are immutable after construction and safe for
// concurrent use; Inverse allocates nothing.
type InverseFusedPlan struct {
	Table *Table
	K     int

	passes []fusedPass
}

// NewInverseFusedPlan constructs the inverse plan for fusion degree k in
// [1, 6]. When log2(N) is not a multiple of k the remainder runs as a
// shorter final pass; all earlier passes fuse exactly k stages.
func NewInverseFusedPlan(t *Table, k int) (*InverseFusedPlan, error) {
	if k < 1 || k > 6 {
		return nil, fmt.Errorf("ntt: fusion degree k=%d out of range [1,6]", k)
	}
	p := &InverseFusedPlan{Table: t, K: k}

	n := t.N
	numPasses := (t.LogN + k - 1) / k
	s0 := 1 // starting span of the pass (m0 field reused as span)
	for pi := 0; pi < numPasses; pi++ {
		kappa := k
		if pi == numPasses-1 {
			kappa = t.LogN - k*(numPasses-1) // remainder in [1, k]
		}
		pass := fusedPass{kappa: kappa, m0: s0, stride: s0}
		pass.segLen = s0 << uint(kappa)
		pass.segs = n / pass.segLen
		pass.tw = p.buildPassTwiddles(pass, pi == numPasses-1)
		p.passes = append(p.passes, pass)
		s0 <<= uint(kappa)
	}
	return p, nil
}

// buildPassTwiddles lays out the pass's GS stage twiddles segment-major:
// for segment g, stage s of the group (global span m0·2^s, stage parameter
// m = N/(2·m0·2^s)) contributes the 2^(kappa−1−s) factors
// psiInvBR[m + g·2^(kappa−1−s) + c], each with its Shoup dual. For the
// final (folding) pass, the last stage's single twiddle is replaced by
// nInv·psiInv so the difference outputs absorb the N^-1 scaling in place.
func (p *InverseFusedPlan) buildPassTwiddles(pass fusedPass, fold bool) []uint64 {
	t := p.Table
	pairs := (1 << uint(pass.kappa)) - 1
	tw := make([]uint64, 2*pairs*pass.segs)
	for g := 0; g < pass.segs; g++ {
		off := 2 * pairs * g
		for s := 0; s < pass.kappa; s++ {
			m := t.N / (2 * (pass.m0 << uint(s)))
			cnt := 1 << uint(pass.kappa-1-s)
			for c := 0; c < cnt; c++ {
				idx := m + g*cnt + c
				w, ws := t.psiInvBR[idx], t.psiInvBRShoup[idx]
				if fold && s == pass.kappa-1 {
					w, ws = t.nInvPsiInv, t.nInvPsiInvShoup
				}
				tw[off] = w
				tw[off+1] = ws
				off += 2
			}
		}
	}
	return tw
}

// Inverse computes the inverse negacyclic NTT of a (input bit-reversed,
// output natural order, scaled by N^-1) via the fused plan. Output is
// bit-identical to Table.Inverse. Zero allocations.
func (p *InverseFusedPlan) Inverse(a []uint64) {
	t := p.Table
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: length %d != N=%d", len(a), t.N))
	}
	mod := t.Mod
	last := len(p.passes) - 1
	for pi := range p.passes {
		pass := &p.passes[pi]
		if pi == last {
			// The final pass carries the N^-1 fold on its last stage.
			switch pass.kappa {
			case 3:
				invPass8Fold(mod, a, pass.tw, pass.stride, t.nInv, t.nInvShoup)
			case 2:
				invPass4Fold(mod, a, pass.tw, pass.stride, t.nInv, t.nInvShoup)
			case 1:
				invPass2Fold(mod, a, pass.tw, pass.stride, t.nInv, t.nInvShoup)
			default:
				p.runPassGeneric(a, pass, true, nil)
			}
			continue
		}
		if pi == 0 {
			// The first pass always lands on stride 1: contiguous blocks.
			switch pass.kappa {
			case 3:
				invPass8First(mod, a, pass.tw, pass.segs)
			case 2:
				invPass4First(mod, a, pass.tw, pass.segs)
			case 1:
				invPass2First(mod, a, pass.tw, pass.segs)
			default:
				p.runPassGeneric(a, pass, false, nil)
			}
			continue
		}
		switch pass.kappa {
		case 3:
			invPass8(mod, a, pass.tw, pass.stride, pass.segs)
		case 2:
			invPass4(mod, a, pass.tw, pass.stride, pass.segs)
		case 1:
			invPass2(mod, a, pass.tw, pass.stride, pass.segs)
		default:
			p.runPassGeneric(a, pass, false, nil)
		}
	}
}

// InverseCounted is Inverse with operation accounting into s, following the
// same TAM convention as FusedPlan.ForwardCounted: one reduction slot per
// block output per pass. The counted run executes the generic kernels,
// which are bit-identical to the fast path.
func (p *InverseFusedPlan) InverseCounted(a []uint64, s *Stats) {
	t := p.Table
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: length %d != N=%d", len(a), t.N))
	}
	if s == nil {
		p.Inverse(a)
		return
	}
	last := len(p.passes) - 1
	for pi := range p.passes {
		p.runPassGeneric(a, &p.passes[pi], pi == last, s)
	}
}

// runPassGeneric executes one fused GS pass through a stack block buffer —
// the reference path for arbitrary kappa (up to 6), also used for counted
// runs. Bit-identical to the specialized kernels.
func (p *InverseFusedPlan) runPassGeneric(a []uint64, pass *fusedPass, fold bool, st *Stats) {
	t := p.Table
	mod := t.Mod
	q := mod.Q
	twoQ := q << 1
	size := 1 << uint(pass.kappa)
	pairs := size - 1
	nI, nIS := t.nInv, t.nInvShoup
	var buf [64]uint64
	for seg := 0; seg < pass.segs; seg++ {
		tw := pass.tw[seg*2*pairs : (seg+1)*2*pairs]
		base := seg * pass.segLen
		for r := 0; r < pass.stride; r++ {
			for tt := 0; tt < size; tt++ {
				buf[tt] = a[base+r+tt*pass.stride]
			}
			twOff := 0
			for s := 0; s < pass.kappa; s++ {
				span := 1 << uint(s)
				cnt := size >> uint(s+1)
				lastStage := fold && s == pass.kappa-1
				for c := 0; c < cnt; c++ {
					w, ws := tw[2*(twOff+c)], tw[2*(twOff+c)+1]
					lb := c * 2 * span
					for lj := lb; lj < lb+span; lj++ {
						u, v := buf[lj], buf[lj+span]
						if lastStage {
							// Exact Shoup products fold N^-1 and fully reduce.
							buf[lj] = mod.MulShoup(u+v, nI, nIS)
							buf[lj+span] = mod.MulShoup(u+twoQ-v, w, ws)
							continue
						}
						xx := u + v
						if xx >= twoQ {
							xx -= twoQ
						}
						buf[lj] = xx
						d := u + twoQ - v
						hi, _ := bits.Mul64(d, ws)
						buf[lj+span] = d*w - hi*q
					}
				}
				twOff += cnt
			}
			for tt := 0; tt < size; tt++ {
				a[base+r+tt*pass.stride] = buf[tt]
			}
		}
	}
	if st != nil {
		n := int64(t.N)
		kappa := int64(pass.kappa)
		st.Mults += n * kappa
		st.Adds += n * kappa
		st.Reductions += n
		if fold {
			st.Normalizations += n
		} else {
			st.Deferred += n
		}
		st.TwiddleLoads += int64(pairs * pass.segs)
		st.FusedPasses++
	}
}

// Passes returns the number of fused passes (ceil(logN / k)).
func (p *InverseFusedPlan) Passes() int { return len(p.passes) }

// TwiddleStorage returns the total uint64 words of precomputed twiddle
// state held by the plan (factors plus Shoup duals); like the forward plan
// this is 2(N−1) pairs regardless of k.
func (p *InverseFusedPlan) TwiddleStorage() int {
	total := 0
	for i := range p.passes {
		total += len(p.passes[i].tw)
	}
	return total
}
