package ntt

import (
	"fmt"
	"math/bits"

	"poseidon/internal/numeric"
)

// InverseFusedPlan is the radix-2^k plan for the inverse (Gentleman-Sande)
// transform: the same fused-TAM construction as the forward plan, with the
// N^-1 scaling folded into the final pass's matrices so the inverse costs
// no extra multiplication sweep.
type InverseFusedPlan struct {
	Table *Table
	K     int

	passes []fusedPass
	lazy   bool
}

// NewInverseFusedPlan constructs the inverse plan for fusion degree k.
func NewInverseFusedPlan(t *Table, k int) (*InverseFusedPlan, error) {
	if k < 1 || k > 6 {
		return nil, fmt.Errorf("ntt: fusion degree k=%d out of range [1,6]", k)
	}
	p := &InverseFusedPlan{Table: t, K: k}
	p.lazy = uint(k)+2*uint(t.Mod.Bits) <= 128

	// GS stages run with increasing span: m = N/2 … 1, span = N/(2m).
	// Group κ consecutive stages; the group starting at span t couples
	// indices base + t·{0..2^κ−1} within segments of length 2^κ·t.
	n := t.N
	span := 1
	for span < n {
		kappa := k
		remaining := t.LogN - log2(span)
		if kappa > remaining {
			kappa = remaining
		}
		pass := fusedPass{kappa: kappa, m0: span /* reuse field as start span */}
		pass.stride = span
		pass.segLen = span << uint(kappa)
		last := span<<uint(kappa) == n // final pass gets the N^-1 fold
		pass.mats = p.buildPassMatrices(pass, last)
		p.passes = append(p.passes, pass)
		span <<= uint(kappa)
	}
	return p, nil
}

// buildPassMatrices pushes unit vectors through the local GS stages.
func (p *InverseFusedPlan) buildPassMatrices(pass fusedPass, fold bool) [][]uint64 {
	t := p.Table
	n := t.N
	size := 1 << uint(pass.kappa)
	numBlocks := n / size
	mats := make([][]uint64, numBlocks)

	col := make([]uint64, size)
	for b := 0; b < numBlocks; b++ {
		seg := b / pass.stride
		r := b % pass.stride
		base := seg*pass.segLen + r
		mat := make([]uint64, size*size)
		for j := 0; j < size; j++ {
			for i := range col {
				col[i] = 0
			}
			col[j] = 1
			p.applyLocalStages(pass, base, col)
			for i := 0; i < size; i++ {
				v := col[i]
				if fold {
					v = t.Mod.Mul(v, t.nInv)
				}
				mat[i*size+j] = v
			}
		}
		mats[b] = mat
	}
	return mats
}

// applyLocalStages runs the pass's GS stages on the local vector.
func (p *InverseFusedPlan) applyLocalStages(pass fusedPass, base int, v []uint64) {
	t := p.Table
	mod := t.Mod
	size := len(v)
	for s := 0; s < pass.kappa; s++ {
		span := pass.m0 << uint(s) // global span of this stage
		m := t.N / (2 * span)
		localSpan := 1 << uint(s)
		for lb := 0; lb < size; lb += 2 * localSpan {
			for lj := lb; lj < lb+localSpan; lj++ {
				gj := base + lj*pass.stride
				i := gj / (2 * span)
				w := t.psiInvBR[m+i]
				u := v[lj]
				x := v[lj+localSpan]
				v[lj] = mod.Add(u, x)
				v[lj+localSpan] = mod.Mul(mod.Sub(u, x), w)
			}
		}
	}
}

// Inverse computes the inverse NTT via the fused plan; output matches
// Table.Inverse exactly.
func (p *InverseFusedPlan) Inverse(a []uint64) {
	p.InverseCounted(a, nil)
}

// InverseCounted is Inverse with operation accounting.
func (p *InverseFusedPlan) InverseCounted(a []uint64, s *Stats) {
	t := p.Table
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: length %d != N=%d", len(a), t.N))
	}
	in := make([]uint64, 1<<uint(p.K))
	out := make([]uint64, 1<<uint(p.K))
	for _, pass := range p.passes {
		size := 1 << uint(pass.kappa)
		numBlocks := t.N / size
		for b := 0; b < numBlocks; b++ {
			seg := b / pass.stride
			r := b % pass.stride
			base := seg*pass.segLen + r
			for tt := 0; tt < size; tt++ {
				in[tt] = a[base+tt*pass.stride]
			}
			applyDenseMatrix(t.Mod, pass.mats[b], in[:size], out[:size], s, p.lazy)
			for tt := 0; tt < size; tt++ {
				a[base+tt*pass.stride] = out[tt]
			}
		}
	}
}

// Passes returns the number of fused passes.
func (p *InverseFusedPlan) Passes() int { return len(p.passes) }

// applyDenseMatrix is the shared fused-TAM kernel: out = M·in with one
// deferred Barrett reduction per output under lazy accumulation.
func applyDenseMatrix(mod numeric.Modulus, mat, in, out []uint64, s *Stats, lazy bool) {
	size := len(in)
	if lazy {
		for i := 0; i < size; i++ {
			var hi, lo uint64
			row := mat[i*size : (i+1)*size]
			for j, w := range row {
				if w == 0 || in[j] == 0 {
					continue
				}
				if w == 1 {
					var c uint64
					lo, c = bits.Add64(lo, in[j], 0)
					hi += c
				} else {
					hi, lo = numeric.MACWide(hi, lo, in[j], w)
					if s != nil {
						s.Mults++
					}
				}
				if s != nil {
					s.Adds++
				}
			}
			out[i] = mod.ReduceWide(hi, lo)
			if s != nil {
				// The fused kernel's one reduction per output is performed,
				// not deferred — its deferral relative to the unfused
				// schedule is already expressed by the smaller Reductions
				// total (FusedBlockCosts).
				s.Reductions++
				s.Normalizations++
			}
		}
		return
	}
	for i := 0; i < size; i++ {
		var acc uint64
		row := mat[i*size : (i+1)*size]
		for j, w := range row {
			if w == 0 {
				continue
			}
			term := in[j]
			if w != 1 {
				term = mod.Mul(in[j], w)
				if s != nil {
					s.Mults++
					s.Reductions++
					s.Normalizations++
				}
			}
			acc = mod.Add(acc, term)
			if s != nil {
				s.Adds++
			}
		}
		out[i] = acc
	}
}
