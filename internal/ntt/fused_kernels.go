package ntt

import (
	"math/bits"

	"poseidon/internal/numeric"
)

// Specialized fused-pass kernels: the production inner loops of FusedPlan
// and InverseFusedPlan for block widths 2, 4 and 8 (κ = 1, 2, 3). Each
// kernel keeps its whole block in registers across the fused stages —
// [8]uint64-shaped register blocks for the κ=3 kernels — with the segment's
// twiddles hoisted into locals and every slice pre-cut to its exact extent
// so the inner loops carry no bounds checks, no twiddle reloads, and no
// per-butterfly reduction beyond the single conditional band correction the
// Harvey schedule requires. The Shoup products are written out inline
// (hi,_ := bits.Mul64(x, ws); v := x*w − hi*q) because the scalar method
// form is the one call the compiler must not fail to flatten.
//
// Band discipline matches Table.Forward/Inverse exactly: forward residues
// live in [0, 4q) with one conditional 2q-correction on each butterfly's u
// operand, inverse residues in [0, 2q) with one correction on the sum;
// the forward final pass performs the deferred ReduceFourQ per coefficient
// and the inverse final pass folds N^-1 through exact Shoup products, so
// outputs are fully reduced and bit-identical to the radix-2 kernels.

// --- forward, κ=3 -----------------------------------------------------------

// fwdPass8 runs one non-final 8-point fused pass: blocks gathered at
// `stride`, segments of 8·stride sharing the 7 hoisted twiddles.
func fwdPass8(mod numeric.Modulus, a, tw []uint64, stride, segs int) {
	q := mod.Q
	twoQ := q << 1
	segLen := stride << 3
	for seg := 0; seg < segs; seg++ {
		t := tw[seg*14 : seg*14+14 : seg*14+14]
		w1, s1 := t[0], t[1]
		w2, s2 := t[2], t[3]
		w3, s3 := t[4], t[5]
		w4, s4 := t[6], t[7]
		w5, s5 := t[8], t[9]
		w6, s6 := t[10], t[11]
		w7, s7 := t[12], t[13]
		base := seg * segLen
		x0 := a[base : base+stride : base+stride]
		x1 := a[base+stride : base+2*stride : base+2*stride]
		x2 := a[base+2*stride : base+3*stride : base+3*stride]
		x3 := a[base+3*stride : base+4*stride : base+4*stride]
		x4 := a[base+4*stride : base+5*stride : base+5*stride]
		x5 := a[base+5*stride : base+6*stride : base+6*stride]
		x6 := a[base+6*stride : base+7*stride : base+7*stride]
		x7 := a[base+7*stride : base+8*stride : base+8*stride]
		for j := 0; j < stride; j++ {
			a0, a1, a2, a3 := x0[j], x1[j], x2[j], x3[j]
			a4, a5, a6, a7 := x4[j], x5[j], x6[j], x7[j]

			// Stage 1: (0,4) (1,5) (2,6) (3,7) × w1.
			if a0 >= twoQ {
				a0 -= twoQ
			}
			if a1 >= twoQ {
				a1 -= twoQ
			}
			if a2 >= twoQ {
				a2 -= twoQ
			}
			if a3 >= twoQ {
				a3 -= twoQ
			}
			h4, _ := bits.Mul64(a4, s1)
			v4 := a4*w1 - h4*q
			h5, _ := bits.Mul64(a5, s1)
			v5 := a5*w1 - h5*q
			h6, _ := bits.Mul64(a6, s1)
			v6 := a6*w1 - h6*q
			h7, _ := bits.Mul64(a7, s1)
			v7 := a7*w1 - h7*q
			a0, a4 = a0+v4, a0+twoQ-v4
			a1, a5 = a1+v5, a1+twoQ-v5
			a2, a6 = a2+v6, a2+twoQ-v6
			a3, a7 = a3+v7, a3+twoQ-v7

			// Stage 2: (0,2) (1,3) × w2; (4,6) (5,7) × w3.
			if a0 >= twoQ {
				a0 -= twoQ
			}
			if a1 >= twoQ {
				a1 -= twoQ
			}
			if a4 >= twoQ {
				a4 -= twoQ
			}
			if a5 >= twoQ {
				a5 -= twoQ
			}
			h2, _ := bits.Mul64(a2, s2)
			v2 := a2*w2 - h2*q
			h3, _ := bits.Mul64(a3, s2)
			v3 := a3*w2 - h3*q
			h6, _ = bits.Mul64(a6, s3)
			v6 = a6*w3 - h6*q
			h7, _ = bits.Mul64(a7, s3)
			v7 = a7*w3 - h7*q
			a0, a2 = a0+v2, a0+twoQ-v2
			a1, a3 = a1+v3, a1+twoQ-v3
			a4, a6 = a4+v6, a4+twoQ-v6
			a5, a7 = a5+v7, a5+twoQ-v7

			// Stage 3: (0,1)×w4 (2,3)×w5 (4,5)×w6 (6,7)×w7.
			if a0 >= twoQ {
				a0 -= twoQ
			}
			if a2 >= twoQ {
				a2 -= twoQ
			}
			if a4 >= twoQ {
				a4 -= twoQ
			}
			if a6 >= twoQ {
				a6 -= twoQ
			}
			h1, _ := bits.Mul64(a1, s4)
			v1 := a1*w4 - h1*q
			h3, _ = bits.Mul64(a3, s5)
			v3 = a3*w5 - h3*q
			h5, _ = bits.Mul64(a5, s6)
			v5 = a5*w6 - h5*q
			h7, _ = bits.Mul64(a7, s7)
			v7 = a7*w7 - h7*q
			a0, a1 = a0+v1, a0+twoQ-v1
			a2, a3 = a2+v3, a2+twoQ-v3
			a4, a5 = a4+v5, a4+twoQ-v5
			a6, a7 = a6+v7, a6+twoQ-v7

			x0[j], x1[j], x2[j], x3[j] = a0, a1, a2, a3
			x4[j], x5[j], x6[j], x7[j] = a4, a5, a6, a7
		}
	}
}

// fwdPass8Last runs the final 8-point pass: stride is 1 by construction
// (blocks are contiguous), and each output takes its single deferred
// normalization before the store.
func fwdPass8Last(mod numeric.Modulus, a, tw []uint64, segs int) {
	q := mod.Q
	twoQ := q << 1
	for seg := 0; seg < segs; seg++ {
		t := tw[seg*14 : seg*14+14 : seg*14+14]
		w1, s1 := t[0], t[1]
		w2, s2 := t[2], t[3]
		w3, s3 := t[4], t[5]
		w4, s4 := t[6], t[7]
		w5, s5 := t[8], t[9]
		w6, s6 := t[10], t[11]
		w7, s7 := t[12], t[13]
		x := a[seg*8 : seg*8+8 : seg*8+8]
		a0, a1, a2, a3 := x[0], x[1], x[2], x[3]
		a4, a5, a6, a7 := x[4], x[5], x[6], x[7]

		if a0 >= twoQ {
			a0 -= twoQ
		}
		if a1 >= twoQ {
			a1 -= twoQ
		}
		if a2 >= twoQ {
			a2 -= twoQ
		}
		if a3 >= twoQ {
			a3 -= twoQ
		}
		h4, _ := bits.Mul64(a4, s1)
		v4 := a4*w1 - h4*q
		h5, _ := bits.Mul64(a5, s1)
		v5 := a5*w1 - h5*q
		h6, _ := bits.Mul64(a6, s1)
		v6 := a6*w1 - h6*q
		h7, _ := bits.Mul64(a7, s1)
		v7 := a7*w1 - h7*q
		a0, a4 = a0+v4, a0+twoQ-v4
		a1, a5 = a1+v5, a1+twoQ-v5
		a2, a6 = a2+v6, a2+twoQ-v6
		a3, a7 = a3+v7, a3+twoQ-v7

		if a0 >= twoQ {
			a0 -= twoQ
		}
		if a1 >= twoQ {
			a1 -= twoQ
		}
		if a4 >= twoQ {
			a4 -= twoQ
		}
		if a5 >= twoQ {
			a5 -= twoQ
		}
		h2, _ := bits.Mul64(a2, s2)
		v2 := a2*w2 - h2*q
		h3, _ := bits.Mul64(a3, s2)
		v3 := a3*w2 - h3*q
		h6, _ = bits.Mul64(a6, s3)
		v6 = a6*w3 - h6*q
		h7, _ = bits.Mul64(a7, s3)
		v7 = a7*w3 - h7*q
		a0, a2 = a0+v2, a0+twoQ-v2
		a1, a3 = a1+v3, a1+twoQ-v3
		a4, a6 = a4+v6, a4+twoQ-v6
		a5, a7 = a5+v7, a5+twoQ-v7

		if a0 >= twoQ {
			a0 -= twoQ
		}
		if a2 >= twoQ {
			a2 -= twoQ
		}
		if a4 >= twoQ {
			a4 -= twoQ
		}
		if a6 >= twoQ {
			a6 -= twoQ
		}
		h1, _ := bits.Mul64(a1, s4)
		v1 := a1*w4 - h1*q
		h3, _ = bits.Mul64(a3, s5)
		v3 = a3*w5 - h3*q
		h5, _ = bits.Mul64(a5, s6)
		v5 = a5*w6 - h5*q
		h7, _ = bits.Mul64(a7, s7)
		v7 = a7*w7 - h7*q
		a0, a1 = a0+v1, a0+twoQ-v1
		a2, a3 = a2+v3, a2+twoQ-v3
		a4, a5 = a4+v5, a4+twoQ-v5
		a6, a7 = a6+v7, a6+twoQ-v7

		x[0] = reduceFourQ(a0, q, twoQ)
		x[1] = reduceFourQ(a1, q, twoQ)
		x[2] = reduceFourQ(a2, q, twoQ)
		x[3] = reduceFourQ(a3, q, twoQ)
		x[4] = reduceFourQ(a4, q, twoQ)
		x[5] = reduceFourQ(a5, q, twoQ)
		x[6] = reduceFourQ(a6, q, twoQ)
		x[7] = reduceFourQ(a7, q, twoQ)
	}
}

// reduceFourQ is Modulus.ReduceFourQ with the constants already in
// registers — the deferred normalization from [0, 4q) to [0, q).
func reduceFourQ(x, q, twoQ uint64) uint64 {
	if x >= twoQ {
		x -= twoQ
	}
	if x >= q {
		x -= q
	}
	return x
}

// --- forward, κ=2 -----------------------------------------------------------

func fwdPass4(mod numeric.Modulus, a, tw []uint64, stride, segs int) {
	q := mod.Q
	twoQ := q << 1
	segLen := stride << 2
	for seg := 0; seg < segs; seg++ {
		t := tw[seg*6 : seg*6+6 : seg*6+6]
		w1, s1 := t[0], t[1]
		w2, s2 := t[2], t[3]
		w3, s3 := t[4], t[5]
		base := seg * segLen
		x0 := a[base : base+stride : base+stride]
		x1 := a[base+stride : base+2*stride : base+2*stride]
		x2 := a[base+2*stride : base+3*stride : base+3*stride]
		x3 := a[base+3*stride : base+4*stride : base+4*stride]
		for j := 0; j < stride; j++ {
			a0, a1, a2, a3 := x0[j], x1[j], x2[j], x3[j]

			// Stage 1: (0,2) (1,3) × w1.
			if a0 >= twoQ {
				a0 -= twoQ
			}
			if a1 >= twoQ {
				a1 -= twoQ
			}
			h2, _ := bits.Mul64(a2, s1)
			v2 := a2*w1 - h2*q
			h3, _ := bits.Mul64(a3, s1)
			v3 := a3*w1 - h3*q
			a0, a2 = a0+v2, a0+twoQ-v2
			a1, a3 = a1+v3, a1+twoQ-v3

			// Stage 2: (0,1)×w2 (2,3)×w3.
			if a0 >= twoQ {
				a0 -= twoQ
			}
			if a2 >= twoQ {
				a2 -= twoQ
			}
			h1, _ := bits.Mul64(a1, s2)
			v1 := a1*w2 - h1*q
			h3, _ = bits.Mul64(a3, s3)
			v3 = a3*w3 - h3*q
			a0, a1 = a0+v1, a0+twoQ-v1
			a2, a3 = a2+v3, a2+twoQ-v3

			x0[j], x1[j], x2[j], x3[j] = a0, a1, a2, a3
		}
	}
}

func fwdPass4Last(mod numeric.Modulus, a, tw []uint64, segs int) {
	q := mod.Q
	twoQ := q << 1
	for seg := 0; seg < segs; seg++ {
		t := tw[seg*6 : seg*6+6 : seg*6+6]
		w1, s1 := t[0], t[1]
		w2, s2 := t[2], t[3]
		w3, s3 := t[4], t[5]
		x := a[seg*4 : seg*4+4 : seg*4+4]
		a0, a1, a2, a3 := x[0], x[1], x[2], x[3]

		if a0 >= twoQ {
			a0 -= twoQ
		}
		if a1 >= twoQ {
			a1 -= twoQ
		}
		h2, _ := bits.Mul64(a2, s1)
		v2 := a2*w1 - h2*q
		h3, _ := bits.Mul64(a3, s1)
		v3 := a3*w1 - h3*q
		a0, a2 = a0+v2, a0+twoQ-v2
		a1, a3 = a1+v3, a1+twoQ-v3

		if a0 >= twoQ {
			a0 -= twoQ
		}
		if a2 >= twoQ {
			a2 -= twoQ
		}
		h1, _ := bits.Mul64(a1, s2)
		v1 := a1*w2 - h1*q
		h3, _ = bits.Mul64(a3, s3)
		v3 = a3*w3 - h3*q
		a0, a1 = a0+v1, a0+twoQ-v1
		a2, a3 = a2+v3, a2+twoQ-v3

		x[0] = reduceFourQ(a0, q, twoQ)
		x[1] = reduceFourQ(a1, q, twoQ)
		x[2] = reduceFourQ(a2, q, twoQ)
		x[3] = reduceFourQ(a3, q, twoQ)
	}
}

// --- forward, κ=1 -----------------------------------------------------------

// fwdPass2 is a single radix-2 stage in fused-pass clothing — the remainder
// pass when log2(N) is not a multiple of k (run first, where the stride and
// the inner loop are longest).
func fwdPass2(mod numeric.Modulus, a, tw []uint64, stride, segs int) {
	q := mod.Q
	twoQ := q << 1
	for seg := 0; seg < segs; seg++ {
		w, ws := tw[seg*2], tw[seg*2+1]
		base := seg * stride * 2
		x0 := a[base : base+stride : base+stride]
		x1 := a[base+stride : base+2*stride : base+2*stride]
		for j := 0; j < stride; j++ {
			u := x0[j]
			if u >= twoQ {
				u -= twoQ
			}
			y := x1[j]
			hi, _ := bits.Mul64(y, ws)
			v := y*w - hi*q
			x0[j] = u + v
			x1[j] = u + twoQ - v
		}
	}
}

func fwdPass2Last(mod numeric.Modulus, a, tw []uint64, segs int) {
	q := mod.Q
	twoQ := q << 1
	for seg := 0; seg < segs; seg++ {
		w, ws := tw[seg*2], tw[seg*2+1]
		x := a[seg*2 : seg*2+2 : seg*2+2]
		u := x[0]
		if u >= twoQ {
			u -= twoQ
		}
		y := x[1]
		hi, _ := bits.Mul64(y, ws)
		v := y*w - hi*q
		x[0] = reduceFourQ(u+v, q, twoQ)
		x[1] = reduceFourQ(u+twoQ-v, q, twoQ)
	}
}
