package ntt

import (
	"math/rand"
	"testing"
)

// edgePolys builds inputs that pin the lazy kernels' band edges: all-zero,
// all-one, all q−1, alternating {0, q−1}, and a few random vectors.
func edgePolys(rng *rand.Rand, n int, q uint64) [][]uint64 {
	fill := func(v uint64) []uint64 {
		a := make([]uint64, n)
		for i := range a {
			a[i] = v
		}
		return a
	}
	alt := make([]uint64, n)
	for i := range alt {
		if i%2 == 1 {
			alt[i] = q - 1
		}
	}
	polys := [][]uint64{fill(0), fill(1), fill(q - 1), alt}
	for i := 0; i < 4; i++ {
		polys = append(polys, randomPoly(rng, n, q))
	}
	return polys
}

// The lazy Harvey forward kernel must be bit-identical to the strict
// reference on every size (exercising the n=2 special case, the n=4
// no-middle-stage case, and deep transforms) at every band edge.
func TestForwardLazyMatchesStrict(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{2, 4, 8, 16, 256, 1024} {
		for _, bitSize := range []int{30, 45, 59, 61} {
			tab := mustTable(t, n, bitSize)
			for pi, p := range edgePolys(rng, n, tab.Mod.Q) {
				lazy := append([]uint64(nil), p...)
				strict := append([]uint64(nil), p...)
				tab.Forward(lazy)
				tab.ForwardStrict(strict)
				for i := range lazy {
					if lazy[i] != strict[i] {
						t.Fatalf("n=%d bits=%d poly=%d: Forward diverges from strict at %d: %d != %d",
							n, bitSize, pi, i, lazy[i], strict[i])
					}
					if lazy[i] >= tab.Mod.Q {
						t.Fatalf("n=%d bits=%d: Forward output %d not fully reduced", n, bitSize, lazy[i])
					}
				}
			}
		}
	}
}

// The lazy GS inverse (with N^-1 folded into the last stage) must be
// bit-identical to the strict reference with its separate scaling pass.
func TestInverseLazyMatchesStrict(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, n := range []int{2, 4, 8, 16, 256, 1024} {
		for _, bitSize := range []int{30, 45, 59, 61} {
			tab := mustTable(t, n, bitSize)
			for pi, p := range edgePolys(rng, n, tab.Mod.Q) {
				lazy := append([]uint64(nil), p...)
				strict := append([]uint64(nil), p...)
				tab.Inverse(lazy)
				tab.InverseStrict(strict)
				for i := range lazy {
					if lazy[i] != strict[i] {
						t.Fatalf("n=%d bits=%d poly=%d: Inverse diverges from strict at %d: %d != %d",
							n, bitSize, pi, i, lazy[i], strict[i])
					}
					if lazy[i] >= tab.Mod.Q {
						t.Fatalf("n=%d bits=%d: Inverse output %d not fully reduced", n, bitSize, lazy[i])
					}
				}
			}
		}
	}
}

// MulEval now routes through the Montgomery path; it must keep matching the
// Barrett product bit-for-bit.
func TestMulEvalMontgomeryMatchesBarrett(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tab := mustTable(t, 64, 61)
	q := tab.Mod.Q
	a := randomPoly(rng, 64, q)
	b := randomPoly(rng, 64, q)
	a[0], b[0] = 0, q-1
	a[1], b[1] = q-1, q-1
	a[2], b[2] = 1, q-1
	c := make([]uint64, 64)
	tab.MulEval(c, a, b)
	for i := range c {
		if want := tab.Mod.Mul(a[i], b[i]); c[i] != want {
			t.Fatalf("MulEval[%d]=%d want %d", i, c[i], want)
		}
	}
}

// The lazy kernel's accounting must keep the TAM-convention Reductions total
// (N·logN) while splitting it exactly into Deferred + Normalizations, with
// one performed normalization per output coefficient.
func TestLazyStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, n := range []int{2, 4, 8, 256, 4096} {
		tab := mustTable(t, n, 59)
		a := randomPoly(rng, n, tab.Mod.Q)
		var s Stats
		tab.forwardCounted(a, &s)
		logN := int64(log2(n))
		if want := int64(n) * logN; s.Reductions != want {
			t.Errorf("n=%d: Reductions=%d want %d", n, s.Reductions, want)
		}
		if s.Reductions != s.Deferred+s.Normalizations {
			t.Errorf("n=%d: Reductions=%d != Deferred=%d + Normalizations=%d",
				n, s.Reductions, s.Deferred, s.Normalizations)
		}
		if s.Normalizations != int64(n) {
			t.Errorf("n=%d: Normalizations=%d want %d (one per coefficient)", n, s.Normalizations, n)
		}
		if want := int64(n) * logN; s.Mults != want || s.Adds != want {
			t.Errorf("n=%d: Mults=%d Adds=%d want %d", n, s.Mults, s.Adds, want)
		}
	}
}

// The fused plans must also satisfy the Deferred/Normalizations invariant so
// the table-2 report can compare executed reductions across kernels.
func TestFusedStatsInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	tab := mustTable(t, 256, 59)
	for _, k := range []int{1, 2, 3, 4} {
		p, err := NewFusedPlan(tab, k)
		if err != nil {
			t.Fatal(err)
		}
		a := randomPoly(rng, 256, tab.Mod.Q)
		var s Stats
		p.ForwardCounted(a, &s)
		if s.Reductions != s.Deferred+s.Normalizations {
			t.Errorf("k=%d: Reductions=%d != Deferred=%d + Normalizations=%d",
				k, s.Reductions, s.Deferred, s.Normalizations)
		}
	}
}

const benchN = 1 << 13 // N = 2^13, the paper-relevant microbenchmark size

func benchPoly(tab *Table) []uint64 {
	rng := rand.New(rand.NewSource(42))
	return randomPoly(rng, tab.N, tab.Mod.Q)
}

func BenchmarkForwardLazy(b *testing.B) {
	tab := benchTable(b, benchN)
	a := benchPoly(tab)
	b.SetBytes(int64(8 * tab.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Forward(a)
	}
}

func BenchmarkForwardStrict(b *testing.B) {
	tab := benchTable(b, benchN)
	a := benchPoly(tab)
	b.SetBytes(int64(8 * tab.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.ForwardStrict(a)
	}
}

func BenchmarkInverseLazy(b *testing.B) {
	tab := benchTable(b, benchN)
	a := benchPoly(tab)
	b.SetBytes(int64(8 * tab.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Inverse(a)
	}
}

func BenchmarkInverseStrict(b *testing.B) {
	tab := benchTable(b, benchN)
	a := benchPoly(tab)
	b.SetBytes(int64(8 * tab.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.InverseStrict(a)
	}
}

func BenchmarkMulEvalMontgomery(b *testing.B) {
	tab := benchTable(b, benchN)
	x := benchPoly(tab)
	y := benchPoly(tab)
	c := make([]uint64, tab.N)
	b.SetBytes(int64(8 * tab.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.MulEval(c, x, y)
	}
}

func BenchmarkMulEvalBarrett(b *testing.B) {
	tab := benchTable(b, benchN)
	x := benchPoly(tab)
	y := benchPoly(tab)
	c := make([]uint64, tab.N)
	mod := tab.Mod
	b.SetBytes(int64(8 * tab.N))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range c {
			c[j] = mod.Mul(x[j], y[j])
		}
	}
}
