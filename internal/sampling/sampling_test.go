package sampling

import (
	"math"
	"testing"

	"poseidon/internal/numeric"
	"poseidon/internal/ring"
)

func testRing(t testing.TB, n, limbs int) *ring.Ring {
	t.Helper()
	logN := 0
	for 1<<uint(logN) < n {
		logN++
	}
	ps, err := numeric.GenerateNTTPrimes(45, logN, limbs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := ring.NewRing(n, ps, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestUniformInRange(t *testing.T) {
	r := testRing(t, 256, 3)
	s := NewSampler(r, 1)
	p := s.Uniform(3)
	if !p.IsNTT {
		t.Error("uniform polynomial should be flagged NTT-domain")
	}
	for i := range p.Coeffs {
		q := r.Moduli[i].Q
		for j, v := range p.Coeffs[i] {
			if v >= q {
				t.Fatalf("limb %d coeff %d: %d ≥ q", i, j, v)
			}
		}
	}
}

func TestUniformLooksUniform(t *testing.T) {
	r := testRing(t, 4096, 1)
	s := NewSampler(r, 2)
	p := s.Uniform(1)
	q := float64(r.Moduli[0].Q)
	// Mean of uniform [0,q) is q/2; stderr of the mean over 4096 samples is
	// q/sqrt(12·4096) ≈ 0.0045·q. Accept ±4σ.
	sum := 0.0
	for _, v := range p.Coeffs[0] {
		sum += float64(v)
	}
	mean := sum / 4096
	if math.Abs(mean-q/2) > 0.02*q {
		t.Errorf("uniform mean %.3g too far from q/2=%.3g", mean, q/2)
	}
}

func TestTernaryValues(t *testing.T) {
	r := testRing(t, 1024, 2)
	s := NewSampler(r, 3)
	p := s.Ternary(2)
	if p.IsNTT {
		t.Error("ternary polynomial should be coefficient-domain")
	}
	counts := map[int64]int{}
	for j := 0; j < r.N; j++ {
		c := r.Moduli[0].Centered(p.Coeffs[0][j])
		if c < -1 || c > 1 {
			t.Fatalf("coeff %d: value %d not ternary", j, c)
		}
		counts[c]++
		// Cross-limb consistency: the same small integer in every limb.
		if r.Moduli[1].ReduceSigned(c) != p.Coeffs[1][j] {
			t.Fatalf("coeff %d: limbs disagree", j)
		}
	}
	// Each symbol should appear roughly 1/3 of the time (±6σ ≈ ±90).
	for _, v := range []int64{-1, 0, 1} {
		if counts[v] < 220 || counts[v] > 460 {
			t.Errorf("symbol %d appeared %d/1024 times, expected ~341", v, counts[v])
		}
	}
}

func TestGaussianShape(t *testing.T) {
	r := testRing(t, 4096, 2)
	s := NewSampler(r, 4)
	p := s.Gaussian(2)
	if p.IsNTT {
		t.Error("gaussian polynomial should be coefficient-domain")
	}
	sum, sumSq := 0.0, 0.0
	for j := 0; j < r.N; j++ {
		c := float64(r.Moduli[0].Centered(p.Coeffs[0][j]))
		if math.Abs(c) > 6*DefaultSigma+1 {
			t.Fatalf("coeff %d: %v exceeds the 6σ truncation", j, c)
		}
		sum += c
		sumSq += c * c
	}
	n := float64(r.N)
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.4 {
		t.Errorf("gaussian mean %.3f too far from 0", mean)
	}
	if std < DefaultSigma*0.85 || std > DefaultSigma*1.15 {
		t.Errorf("gaussian std %.3f, want ≈ %.1f", std, DefaultSigma)
	}
}

func TestSamplerDeterministic(t *testing.T) {
	r := testRing(t, 128, 2)
	a := NewSampler(r, 7).Uniform(2)
	b := NewSampler(r, 7).Uniform(2)
	if !a.Equal(b) {
		t.Error("same seed must reproduce the same sample")
	}
	c := NewSampler(r, 8).Uniform(2)
	if a.Equal(c) {
		t.Error("different seeds should differ")
	}
}
