// Package sampling provides the randomness sources of the CKKS substrate:
// uniform ring elements, ternary secrets, and rounded-Gaussian errors.
// Samplers are deterministic given a seed so that tests and experiments are
// reproducible; this reproduction is a research artifact, not a hardened
// cryptographic implementation.
package sampling

import (
	"math"
	"math/rand"

	"poseidon/internal/ring"
)

// Sampler draws ring elements from the distributions CKKS needs.
type Sampler struct {
	rng   *rand.Rand
	ring  *ring.Ring
	sigma float64
}

// DefaultSigma is the standard deviation of the error distribution,
// the value used throughout the FHE literature.
const DefaultSigma = 3.2

// NewSampler creates a sampler over r seeded with seed.
func NewSampler(r *ring.Ring, seed int64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed)), ring: r, sigma: DefaultSigma}
}

// Uniform fills a fresh polynomial with independently uniform residues per
// limb (a uniform element of R_Q in either domain; domain is set to NTT
// because uniform residues are uniform in both domains).
func (s *Sampler) Uniform(limbs int) *ring.Poly {
	p := s.ring.NewPoly(limbs)
	for i := range p.Coeffs {
		q := s.ring.Moduli[i].Q
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = s.uniformUint64(q)
		}
	}
	p.IsNTT = true
	return p
}

// uniformUint64 draws uniformly from [0, q) without modulo bias.
func (s *Sampler) uniformUint64(q uint64) uint64 {
	// Rejection sample from the largest multiple of q below 2^64.
	bound := (^uint64(0) / q) * q
	for {
		v := s.rng.Uint64()
		if v < bound {
			return v % q
		}
	}
}

// Ternary samples a polynomial with coefficients in {−1, 0, 1}, each
// nonzero with probability density (2/3 by default convention: P(−1) =
// P(1) = 1/3). The same integer coefficient is embedded in every limb.
// The result is in the coefficient domain.
func (s *Sampler) Ternary(limbs int) *ring.Poly {
	p := s.ring.NewPoly(limbs)
	for j := 0; j < s.ring.N; j++ {
		var c int64
		switch s.rng.Intn(3) {
		case 0:
			c = -1
		case 1:
			c = 0
		case 2:
			c = 1
		}
		for i := range p.Coeffs {
			p.Coeffs[i][j] = s.ring.Moduli[i].ReduceSigned(c)
		}
	}
	p.IsNTT = false
	return p
}

// Gaussian samples a polynomial with coefficients drawn from a rounded
// Gaussian of standard deviation sigma (DefaultSigma), truncated at 6σ,
// embedded in every limb. The result is in the coefficient domain.
func (s *Sampler) Gaussian(limbs int) *ring.Poly {
	p := s.ring.NewPoly(limbs)
	bound := 6 * s.sigma
	for j := 0; j < s.ring.N; j++ {
		var g float64
		for {
			g = s.rng.NormFloat64() * s.sigma
			if math.Abs(g) <= bound {
				break
			}
		}
		c := int64(math.Round(g))
		for i := range p.Coeffs {
			p.Coeffs[i][j] = s.ring.Moduli[i].ReduceSigned(c)
		}
	}
	p.IsNTT = false
	return p
}
