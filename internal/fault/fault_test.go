package fault

import (
	"testing"

	"poseidon/internal/numeric"
)

func testModulus(t *testing.T) numeric.Modulus {
	t.Helper()
	ps, err := numeric.GenerateNTTPrimes(50, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	return numeric.NewModulus(ps[0])
}

func testLimb(mod numeric.Modulus, n int) []uint64 {
	c := make([]uint64, n)
	for j := range c {
		c[j] = (uint64(j)*2654435761 + 12345) % mod.Q
	}
	return c
}

// Every class must actually change the limb, and the injector must fire at
// exactly the armed visit, once.
func TestInjectorFiresAtArmedVisit(t *testing.T) {
	mod := testModulus(t)
	for _, class := range []Class{BitFlip, MultiBitFlip, StuckLane, DroppedTwiddle} {
		in := NewInjector(7)
		in.ArmAt(SiteNTT, class, 3)
		ref := testLimb(mod, 256)
		for v := 0; v < 6; v++ {
			c := testLimb(mod, 256)
			in.OnLimbRead(SiteNTT, 0, c)
			changed := false
			for j := range c {
				if c[j] != ref[j] {
					changed = true
					break
				}
			}
			if (v == 3) != changed {
				t.Fatalf("%v: visit %d changed=%v, want fire only at visit 3", class, v, changed)
			}
		}
		st := in.Stats()
		if st.Injected != 1 || st.VisitsAt(SiteNTT) != 6 {
			t.Fatalf("%v: stats = %+v, want 1 injection over 6 visits", class, st)
		}
		log := in.Injections()
		if len(log) != 1 || log[0].Class != class || log[0].Visit != 3 {
			t.Fatalf("%v: injection log %+v", class, log)
		}
	}
}

// The same seed and arming schedule must corrupt identically.
func TestInjectorDeterministic(t *testing.T) {
	mod := testModulus(t)
	run := func() []uint64 {
		in := NewInjector(99)
		in.ArmAt(SiteHBM, MultiBitFlip, 0)
		c := testLimb(mod, 128)
		in.OnLimbRead(SiteHBM, 2, c)
		return c
	}
	a, b := run(), run()
	for j := range a {
		if a[j] != b[j] {
			t.Fatalf("corruption not deterministic at coeff %d", j)
		}
	}
}

// Sites count independently; an armed fault on one site never fires on
// another.
func TestInjectorSiteIsolation(t *testing.T) {
	mod := testModulus(t)
	in := NewInjector(1)
	in.ArmAt(SiteHBM, BitFlip, 0)
	c := testLimb(mod, 64)
	ref := testLimb(mod, 64)
	in.OnLimbRead(SiteNTT, 0, c)
	in.OnLimbRead(SiteINTT, 0, c)
	for j := range c {
		if c[j] != ref[j] {
			t.Fatal("fault armed for hbm fired on another site")
		}
	}
	in.OnLimbRead(SiteHBM, 0, c)
	if in.Stats().Injected != 1 {
		t.Fatal("armed hbm fault did not fire on hbm visit 0")
	}
}

// The Panic class must raise at the armed visit.
func TestInjectorPanicClass(t *testing.T) {
	mod := testModulus(t)
	in := NewInjector(5)
	in.ArmAt(SiteNTT, Panic, 1)
	c := testLimb(mod, 64)
	in.OnLimbRead(SiteNTT, 0, c)
	defer func() {
		if recover() == nil {
			t.Fatal("injected panic did not fire")
		}
		if in.Stats().Injected != 1 {
			t.Fatal("panic injection not counted")
		}
	}()
	in.OnLimbRead(SiteNTT, 0, c)
}

// A single-bit flip anywhere in the limb must change the sum-mod-q
// checksum: 2^b mod q is nonzero for every odd prime q and b < 64.
func TestChecksumDetectsEverySingleBitFlip(t *testing.T) {
	mod := testModulus(t)
	c := testLimb(mod, 64)
	base := Checksum(mod, c)
	for j := 0; j < len(c); j++ {
		for b := 0; b < 64; b++ {
			c[j] ^= 1 << uint(b)
			if Checksum(mod, c) == base {
				t.Fatalf("flip of coeff %d bit %d not detected", j, b)
			}
			c[j] ^= 1 << uint(b)
		}
	}
	if Checksum(mod, c) != base {
		t.Fatal("checksum not restored after un-flipping")
	}
}

// ResetVisits re-zeroes the site counters so trial k addresses visits from
// zero again.
func TestResetVisits(t *testing.T) {
	mod := testModulus(t)
	in := NewInjector(3)
	c := testLimb(mod, 32)
	in.OnLimbRead(SiteHBM, 0, c)
	in.OnLimbRead(SiteHBM, 0, c)
	in.ResetVisits()
	if got := in.Stats().VisitsAt(SiteHBM); got != 0 {
		t.Fatalf("visits after reset = %d, want 0", got)
	}
	in.ArmAt(SiteHBM, BitFlip, 0)
	in.OnLimbRead(SiteHBM, 0, c)
	if in.Stats().Injected != 1 {
		t.Fatal("post-reset visit 0 did not fire")
	}
}

// A transient fault must stay visible for exactly `decay` further reads of
// the corrupted limb, then heal in place: the next read sees the original
// words again.
func TestTransientFaultHealsAfterDecay(t *testing.T) {
	mod := testModulus(t)
	in := NewInjector(11)
	in.ArmAtMode(SiteHBM, BitFlip, 0, Transient, 2)
	ref := testLimb(mod, 128)
	c := testLimb(mod, 128)

	corrupted := func() bool {
		for j := range c {
			if c[j] != ref[j] {
				return true
			}
		}
		return false
	}

	in.OnLimbRead(SiteHBM, 0, c) // fires
	if !corrupted() {
		t.Fatal("armed transient fault did not corrupt")
	}
	for r := 0; r < 2; r++ { // decay window: still corrupted
		in.OnLimbRead(SiteHBM, 0, c)
		if !corrupted() {
			t.Fatalf("read %d inside decay window already healed", r+1)
		}
	}
	in.OnLimbRead(SiteHBM, 0, c) // window elapsed: heals
	if corrupted() {
		t.Fatal("transient fault did not heal after decay window")
	}
	if st := in.Stats(); st.Healed != 1 || st.Injected != 1 {
		t.Fatalf("stats = %+v, want 1 injection and 1 heal", st)
	}
}

// Sticky is the default and must never heal, no matter how many re-reads.
func TestStickyFaultNeverHeals(t *testing.T) {
	mod := testModulus(t)
	in := NewInjector(12)
	in.ArmAtMode(SiteHBM, BitFlip, 0, Sticky, 0)
	ref := testLimb(mod, 128)
	c := testLimb(mod, 128)
	for v := 0; v < 8; v++ {
		in.OnLimbRead(SiteHBM, 0, c)
	}
	same := true
	for j := range c {
		if c[j] != ref[j] {
			same = false
		}
	}
	if same {
		t.Fatal("sticky fault vanished")
	}
	if st := in.Stats(); st.Healed != 0 {
		t.Fatalf("sticky fault healed: %+v", st)
	}
}

// If the corrupted storage is rewritten before the decay window elapses,
// the heal record must be dropped without restoring: writing the old words
// over fresh data would itself be a corruption (arena storage is reused).
func TestTransientHealDroppedOnRewrite(t *testing.T) {
	mod := testModulus(t)
	in := NewInjector(13)
	in.ArmAtMode(SiteHBM, BitFlip, 0, Transient, 0)
	c := testLimb(mod, 128)
	in.OnLimbRead(SiteHBM, 0, c) // fires; next matching read would heal

	// Rewrite the limb in place (same backing array — the arena-reuse case).
	fresh := make([]uint64, len(c))
	for j := range fresh {
		fresh[j] = uint64(j) * 31
	}
	copy(c, fresh)

	in.OnLimbRead(SiteHBM, 0, c)
	for j := range c {
		if c[j] != fresh[j] {
			t.Fatalf("heal restored stale words over rewritten data at coeff %d", j)
		}
	}
	if st := in.Stats(); st.Healed != 0 {
		t.Fatalf("dropped record counted as healed: %+v", st)
	}
}

// ArmWithin must arm relative to the live visit counter and fire inside the
// window — the primitive chaos campaigns use against a running system.
func TestArmWithinFiresInsideWindow(t *testing.T) {
	mod := testModulus(t)
	in := NewInjector(14)
	c := testLimb(mod, 64)
	for v := 0; v < 10; v++ { // advance the live counter past zero
		in.OnLimbRead(SiteHBM, 0, c)
	}
	v := in.ArmWithin(SiteHBM, BitFlip, 5, Transient, 1)
	if v < 10 || v >= 15 {
		t.Fatalf("ArmWithin chose visit %d, want within [10, 15)", v)
	}
	for i := 0; i < 5; i++ {
		in.OnLimbRead(SiteHBM, 0, c)
	}
	if in.Stats().Injected != 1 {
		t.Fatal("ArmWithin fault did not fire inside its window")
	}
	if in.Pending() {
		t.Fatal("injector still pending after firing")
	}
}

// The event sink must see one "injected" event per applied fault and one
// "healed" event per transient restore, delivered outside the injector
// lock (the sink calls Stats, which would deadlock if delivered inside).
func TestEventSinkReportsInjectionsAndHeals(t *testing.T) {
	mod := testModulus(t)
	in := NewInjector(11)
	var events []Event
	in.SetEventSink(func(ev Event) {
		_ = in.Stats() // must not deadlock: sink runs outside the lock
		events = append(events, ev)
	})
	in.ArmAtMode(SiteHBM, BitFlip, 1, Transient, 0)
	c := testLimb(mod, 128)
	in.OnLimbRead(SiteHBM, 4, c) // visit 0: counts only
	in.OnLimbRead(SiteHBM, 4, c) // visit 1: injects
	in.OnLimbRead(SiteHBM, 4, c) // decay 0: heals on next read
	if len(events) != 2 {
		t.Fatalf("got %d events, want injected+healed: %+v", len(events), events)
	}
	inj, heal := events[0], events[1]
	if inj.Kind != "injected" || inj.Site != "hbm" || inj.Class != "bitflip" ||
		inj.Mode != "transient" || inj.Visit != 1 || inj.Limb != 4 {
		t.Fatalf("injected event malformed: %+v", inj)
	}
	if heal.Kind != "healed" || heal.Site != "hbm" || heal.Class != "bitflip" ||
		heal.Mode != "transient" || heal.Visit != 1 || heal.Limb != 4 {
		t.Fatalf("healed event malformed: %+v", heal)
	}
	in.SetEventSink(nil)
	in.ArmAt(SiteHBM, BitFlip, 3)
	in.OnLimbRead(SiteHBM, 0, c)
	if len(events) != 2 {
		t.Fatal("removed sink still receiving events")
	}
}

// A Panic-class fault must reach the sink before the panic unwinds.
func TestEventSinkSeesPanicBeforeUnwind(t *testing.T) {
	mod := testModulus(t)
	in := NewInjector(5)
	var got []Event
	in.SetEventSink(func(ev Event) { got = append(got, ev) })
	in.ArmAt(SiteNTT, Panic, 0)
	c := testLimb(mod, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("injected panic did not fire")
		}
		if len(got) != 1 || got[0].Kind != "injected" || got[0].Class != "panic" {
			t.Fatalf("sink missed the panic injection: %+v", got)
		}
	}()
	in.OnLimbRead(SiteNTT, 0, c)
}
