// Package fault is the fault-injection and integrity substrate of the
// fault-tolerance layer: a deterministic, seedable injector that models the
// hardware fault classes the paper's platform (an Alveo U280 with HBM)
// exposes, plus the residue-checksum primitive the runtime guards verify at
// operator boundaries.
//
// The injector is hooked behind zero-cost-when-disabled injection points: a
// nil *Injector adds exactly one pointer compare to the hot paths (see
// ring.Ring.SetFaultInjector), so the production configuration pays nothing.
// When armed, the injector counts every visit to an injection site and
// corrupts the data of one pre-selected visit, which makes campaigns exactly
// reproducible: the same seed and arming schedule corrupt the same bit of
// the same coefficient of the same limb on every run.
//
// Fault classes and the hardware events they model:
//
//	BitFlip        — a single-bit upset in an HBM word or datapath register
//	MultiBitFlip   — a burst error corrupting several bits of one word
//	StuckLane      — one SIMD lane of the 512-lane datapath repeating a
//	                 stale value across a whole limb
//	DroppedTwiddle — a twiddle-factor load that never arrived, zeroing the
//	                 contribution of one butterfly constant (a strided
//	                 subset of the limb)
//	Panic          — a software stand-in for an abort mid-operation, used
//	                 to prove scratch-arena and error-boundary hygiene
package fault

import (
	"fmt"
	"math/rand"
	"sync"

	"poseidon/internal/numeric"
)

// Class enumerates the modeled hardware fault classes.
type Class int

const (
	// BitFlip flips one uniformly chosen bit of one coefficient.
	BitFlip Class = iota
	// MultiBitFlip flips 2–8 bits of one coefficient.
	MultiBitFlip
	// StuckLane overwrites every coefficient of one lane (index ≡ lane mod
	// LaneWidth) with the bitwise complement of the lane's first value —
	// guaranteed to change the limb.
	StuckLane
	// DroppedTwiddle zeroes the strided subset of coefficients one twiddle
	// constant feeds (stride 2^k for a random stage k).
	DroppedTwiddle
	// Panic raises a runtime panic at the injection site instead of
	// corrupting data, exercising panic-recovery and scratch-release paths.
	Panic
	numClasses
)

// String names the class for reports.
func (c Class) String() string {
	switch c {
	case BitFlip:
		return "bitflip"
	case MultiBitFlip:
		return "multibitflip"
	case StuckLane:
		return "stucklane"
	case DroppedTwiddle:
		return "droppedtwiddle"
	case Panic:
		return "panic"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Site identifies a family of injection points.
type Site int

const (
	// SiteHBM is the storage boundary: a polynomial limb read back from
	// (modeled) HBM at the start of a guarded operation. Corruption here is
	// what the residue checksums catch.
	SiteHBM Site = iota
	// SiteNTT is the datapath load feeding a forward NTT limb transform.
	SiteNTT
	// SiteINTT is the datapath load feeding an inverse NTT limb transform.
	SiteINTT
	numSites
)

// String names the site for reports.
func (s Site) String() string {
	switch s {
	case SiteHBM:
		return "hbm"
	case SiteNTT:
		return "ntt"
	case SiteINTT:
		return "intt"
	}
	return fmt.Sprintf("Site(%d)", int(s))
}

// LaneWidth is the modeled datapath lane count (the paper's 512-lane
// operator cores); StuckLane faults repeat with this stride.
const LaneWidth = 512

// Persistence classifies how injected corruption behaves on subsequent
// reads of the same data — the property that decides whether op-level
// re-execution can ever succeed.
type Persistence int

const (
	// Sticky corruption stays in the (modeled) memory cell: every re-read
	// of the corrupted limb sees the corrupted words until something
	// rewrites them. A retry from the same inputs is doomed. This is the
	// latched-error model and the behavior of ArmAt.
	Sticky Persistence = iota
	// Transient corruption clears on re-read: after the corrupted limb has
	// been read `decay` further times, the injector restores the original
	// words — a single-event upset scrubbed by the next refresh cycle.
	// decay bounds how many re-executions still observe the fault, so a
	// retry budget larger than decay recovers and a smaller one does not.
	Transient
)

// String names the persistence mode for reports.
func (p Persistence) String() string {
	if p == Transient {
		return "transient"
	}
	return "sticky"
}

// healRecord tracks one pending transient corruption: the slice identity
// (arena storage is reused, so &c[0] plus the corrupted values pin the
// match), the indices touched, and both the original and corrupted words.
// The record heals — restores orig — once remaining matching reads have
// elapsed, and is dropped without healing if the data was rewritten in the
// meantime (the corruption is gone; restoring stale words would itself be
// a corruption).
type healRecord struct {
	site      Site
	class     Class // fault class, carried so the heal event names it
	visit     uint64
	limb      int
	ptr       *uint64
	idx       []int
	orig      []uint64
	cur       []uint64
	remaining int
}

// matches reports whether a read of c at site/limb addresses this record's
// still-corrupted data.
func (h *healRecord) matches(site Site, limb int, c []uint64) bool {
	if site != h.site || limb != h.limb || len(c) == 0 || &c[0] != h.ptr {
		return false
	}
	for k, j := range h.idx {
		if j >= len(c) || c[j] != h.cur[k] {
			return false
		}
	}
	return true
}

// Event reports one injector action to the campaign event sink: a fault
// applied ("injected") or a transient corruption restored ("healed").
// Campaign drivers serialize these as JSONL and join them against the
// server's flight recorder and retry events by timestamp and site.
type Event struct {
	Kind  string `json:"kind"` // "injected" or "healed"
	Site  string `json:"site"`
	Class string `json:"class"`
	Mode  string `json:"mode"` // persistence: "sticky" or "transient"
	Visit uint64 `json:"visit"`
	Limb  int    `json:"limb"`
}

// Injection records one applied fault, for campaign attribution.
type Injection struct {
	Site  Site
	Class Class
	Visit uint64 // site-local visit index the fault fired at
	Limb  int    // limb index passed by the injection point
	Coeff int    // first corrupted coefficient
	Bit   int    // flipped bit (BitFlip only, else -1)
}

// Stats is a snapshot of the injector's counters.
type Stats struct {
	Visits   [numSites]uint64 // per-site injection-point visits
	Injected uint64           // faults actually applied
	Healed   uint64           // transient corruptions restored after decay
}

// VisitsAt returns the visit count recorded for one site.
func (s Stats) VisitsAt(site Site) uint64 { return s.Visits[site] }

// Injector deterministically corrupts data at injection points. The zero
// value is not usable; construct with NewInjector. All methods are safe for
// concurrent use (the hot path takes a mutex only when the injector is
// installed, which production configurations never do).
type Injector struct {
	mu  sync.Mutex
	rng *rand.Rand

	visits [numSites]uint64

	armed      bool
	armSite    Site
	armClass   Class
	armVisit   uint64 // fire when the site counter reaches this value
	armMode    Persistence
	armDecay   int
	injected   uint64
	healed     uint64
	injections []Injection
	heals      []*healRecord // pending transient corruptions awaiting decay

	// sink, when set, observes every injection and heal. Events are
	// collected under the mutex but delivered after it is released, so a
	// sink may call back into the injector (Stats, Pending) or block on
	// I/O without deadlocking the injection point.
	sink func(Event)
}

// NewInjector creates an injector whose corruption choices (coefficient,
// bit, lane, stride) derive deterministically from seed.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// ResetVisits zeroes the per-site visit counters (arming state and
// injection log are preserved), so each campaign trial addresses visits
// from zero. Pending transient heal records are dropped: a new trial
// rebuilds its data, and stale undo records must never touch reused arena
// storage.
func (in *Injector) ResetVisits() {
	in.mu.Lock()
	in.visits = [numSites]uint64{}
	in.heals = nil
	in.mu.Unlock()
}

// ArmAt schedules one Sticky fault of the given class at the visit-th
// upcoming visit of site (counting from the current ResetVisits). The
// injector disarms after firing.
func (in *Injector) ArmAt(site Site, class Class, visit uint64) {
	in.ArmAtMode(site, class, visit, Sticky, 0)
}

// ArmAtMode is ArmAt with an explicit persistence mode. decay only applies
// to Transient faults: the corruption self-heals after the corrupted limb
// has been re-read decay further times (decay 0 heals on the very next
// re-read).
func (in *Injector) ArmAtMode(site Site, class Class, visit uint64, mode Persistence, decay int) {
	in.mu.Lock()
	in.armed = true
	in.armSite = site
	in.armClass = class
	in.armVisit = visit
	in.armMode = mode
	in.armDecay = decay
	in.mu.Unlock()
}

// ArmRandom arms one Sticky fault of the given class at a uniformly random
// visit in [0, totalVisits) of site, and returns the chosen visit.
func (in *Injector) ArmRandom(site Site, class Class, totalVisits uint64) uint64 {
	in.mu.Lock()
	var v uint64
	if totalVisits > 0 {
		v = uint64(in.rng.Int63n(int64(totalVisits)))
	}
	in.armed = true
	in.armSite = site
	in.armClass = class
	in.armVisit = v
	in.armMode = Sticky
	in.armDecay = 0
	in.mu.Unlock()
	return v
}

// ArmWithin arms one fault at a uniformly random visit within the next
// `window` visits of site, counting from the live visit counter — the
// arming primitive for chaos campaigns against a running system, where
// visit counts grow monotonically and arming relative to zero would never
// fire. Returns the chosen absolute visit.
func (in *Injector) ArmWithin(site Site, class Class, window uint64, mode Persistence, decay int) uint64 {
	in.mu.Lock()
	v := in.visits[site]
	if window > 0 {
		v += uint64(in.rng.Int63n(int64(window)))
	}
	in.armed = true
	in.armSite = site
	in.armClass = class
	in.armVisit = v
	in.armMode = mode
	in.armDecay = decay
	in.mu.Unlock()
	return v
}

// SetEventSink installs fn as the injector's event observer (nil removes
// it). fn is invoked once per applied fault and once per transient heal,
// outside the injector lock, on the goroutine whose read triggered the
// action — it must be safe for concurrent use when the injector is shared.
func (in *Injector) SetEventSink(fn func(Event)) {
	in.mu.Lock()
	in.sink = fn
	in.mu.Unlock()
}

// Pending reports whether a fault is armed and has not fired yet.
func (in *Injector) Pending() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.armed
}

// Disarm cancels any pending fault.
func (in *Injector) Disarm() {
	in.mu.Lock()
	in.armed = false
	in.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return Stats{Visits: in.visits, Injected: in.injected, Healed: in.healed}
}

// Injections returns the applied-fault log.
func (in *Injector) Injections() []Injection {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Injection, len(in.injections))
	copy(out, in.injections)
	return out
}

// OnLimbRead is the injection point: ring and guard code call it whenever a
// limb's coefficients are (conceptually) read from HBM or fed into a
// datapath. When counting only, it increments the site counter; when the
// armed visit is reached it corrupts c in place (or panics, for the Panic
// class) and disarms.
func (in *Injector) OnLimbRead(site Site, limb int, c []uint64) {
	in.mu.Lock()
	v := in.visits[site]
	in.visits[site]++
	var healEv Event
	var didHeal bool
	if len(in.heals) > 0 {
		healEv, didHeal = in.decayHeals(site, limb, c)
	}
	fire := in.armed && site == in.armSite && v == in.armVisit
	if !fire {
		sink := in.sink
		in.mu.Unlock()
		if didHeal && sink != nil {
			sink(healEv)
		}
		return
	}
	in.armed = false
	class := in.armClass
	mode := in.armMode
	sink := in.sink
	injEv := Event{
		Kind: "injected", Site: site.String(), Class: class.String(),
		Mode: mode.String(), Visit: v, Limb: limb,
	}
	if class == Panic {
		in.injected++
		in.injections = append(in.injections, Injection{
			Site: site, Class: class, Visit: v, Limb: limb, Coeff: -1, Bit: -1,
		})
		in.mu.Unlock()
		// Deliver before panicking: the unwind may never return control
		// to the campaign driver's loop, and an unreported panic fault is
		// exactly the event the JSONL log exists to attribute.
		if didHeal && sink != nil {
			sink(healEv)
		}
		if sink != nil {
			sink(injEv)
		}
		panic(fmt.Sprintf("fault: injected panic at %s visit %d (limb %d)", site, v, limb))
	}
	var h *healRecord
	if in.armMode == Transient {
		h = &healRecord{site: site, class: class, visit: v, limb: limb, remaining: in.armDecay}
		if len(c) > 0 {
			h.ptr = &c[0]
		}
	}
	rec := in.corrupt(class, c, h)
	rec.Site, rec.Class, rec.Visit, rec.Limb = site, class, v, limb
	if h != nil && len(h.idx) > 0 {
		in.heals = append(in.heals, h)
	}
	in.injected++
	in.injections = append(in.injections, rec)
	in.mu.Unlock()
	if didHeal && sink != nil {
		sink(healEv)
	}
	if sink != nil {
		sink(injEv)
	}
}

// decayHeals walks the pending transient corruptions for one that matches
// this read. A match still within its decay window stays corrupted for
// this read; one whose window has elapsed is restored in place (the caller
// reads clean data). Records whose data was rewritten since injection are
// dropped without touching memory. Caller holds the lock; a heal is
// reported as an Event for the caller to deliver after unlock.
func (in *Injector) decayHeals(site Site, limb int, c []uint64) (Event, bool) {
	for i := 0; i < len(in.heals); i++ {
		h := in.heals[i]
		if !h.matches(site, limb, c) {
			if site == h.site && limb == h.limb && len(c) > 0 && &c[0] == h.ptr {
				// Same storage, different words: the corruption was
				// overwritten by new data. The fault is gone; forget it.
				in.heals = append(in.heals[:i], in.heals[i+1:]...)
				i--
			}
			continue
		}
		if h.remaining > 0 {
			h.remaining--
			return Event{}, false
		}
		for k, j := range h.idx {
			c[j] = h.orig[k]
		}
		in.healed++
		in.heals = append(in.heals[:i], in.heals[i+1:]...)
		return Event{
			Kind: "healed", Site: h.site.String(), Class: h.class.String(),
			Mode: Transient.String(), Visit: h.visit, Limb: h.limb,
		}, true
	}
	return Event{}, false
}

// corrupt applies one fault of the given class to c, recording undo
// information into h when the fault is transient. Caller holds the lock.
func (in *Injector) corrupt(class Class, c []uint64, h *healRecord) Injection {
	rec := Injection{Coeff: -1, Bit: -1}
	if len(c) == 0 {
		return rec
	}
	note := func(j int) {
		if h != nil {
			h.idx = append(h.idx, j)
			h.orig = append(h.orig, c[j])
		}
	}
	wrote := func(j int) {
		if h != nil {
			h.cur = append(h.cur, c[j])
		}
	}
	switch class {
	case BitFlip:
		j := in.rng.Intn(len(c))
		b := in.rng.Intn(64)
		note(j)
		c[j] ^= 1 << uint(b)
		wrote(j)
		rec.Coeff, rec.Bit = j, b
	case MultiBitFlip:
		j := in.rng.Intn(len(c))
		k := 2 + in.rng.Intn(7) // 2..8 bits
		note(j)
		for i := 0; i < k; i++ {
			c[j] ^= 1 << uint(in.rng.Intn(64))
		}
		wrote(j)
		rec.Coeff = j
	case StuckLane:
		width := LaneWidth
		if width > len(c) {
			width = len(c)
		}
		lane := in.rng.Intn(width)
		stuck := ^c[lane] // complement guarantees the limb changes
		for j := lane; j < len(c); j += width {
			note(j)
			c[j] = stuck
			wrote(j)
		}
		rec.Coeff = lane
	case DroppedTwiddle:
		// One twiddle constant feeds every 2^k-th butterfly: zero that
		// strided subset, as if its load never completed.
		maxK := 1
		for 1<<uint(maxK+1) < len(c) {
			maxK++
		}
		stride := 1 << uint(1+in.rng.Intn(maxK))
		off := in.rng.Intn(stride)
		for j := off; j < len(c); j += stride {
			note(j)
			c[j] = 0
			wrote(j)
		}
		rec.Coeff = off
	}
	return rec
}

// Checksum returns the sum-mod-q residue checksum of one limb. Values are
// Barrett-reduced before summing, so the checksum is well defined even for
// corrupted words ≥ q, and any single-bit flip changes it: the flip alters
// the word by ±2^b, and 2^b mod q is never zero for an odd prime q.
func Checksum(mod numeric.Modulus, c []uint64) uint64 {
	var s uint64
	for _, v := range c {
		s = mod.Add(s, mod.Reduce(v))
	}
	return s
}
