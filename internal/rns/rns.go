// Package rns implements the residue-number-system conversions at the heart
// of RNS-CKKS keyswitching and rescaling — the paper's Eq. 1–3:
//
//	RNSconv: approximate CRT basis extension of a value from basis B to
//	         basis C (a chain of fused MA/MM operations in hardware);
//	ModUp:   extension of a_Q to the enlarged basis Q ∪ P;
//	ModDown: exact division by P after keyswitching;
//	Rescale: division by the last prime of the chain with rounding.
//
// All routines operate limb-wise on raw residue slices so both the CKKS
// evaluator and the accelerator's functional model can drive them.
package rns

import (
	"fmt"
	"math"
	"sync"

	"poseidon/internal/numeric"
)

// Extender performs CRT basis extension from a source subset of a global
// modulus list to any other subset. The float-assisted correction makes the
// extension exact for inputs bounded away from ±B/2 (the standard
// HPS-style conversion); without correction the result may exceed the true
// value by a small multiple of B, which hybrid keyswitching tolerates.
type Extender struct {
	src []numeric.Modulus // source basis B
	dst []numeric.Modulus // destination moduli C (any set)

	bHatInv      []uint64   // [ (B/b_j)^-1 ]_{b_j}
	bHatInvShoup []uint64   // Shoup duals of bHatInv
	bHatModC     [][]uint64 // [i][j] = (B/b_j) mod c_i
	bModC        []uint64   // B mod c_i
	invB         []float64  // 1 / b_j, for the rounding estimate
}

// NewExtender builds the extension tables from basis src to moduli dst.
func NewExtender(src, dst []numeric.Modulus) *Extender {
	if len(src) == 0 {
		panic("rns: empty source basis")
	}
	e := &Extender{src: src, dst: dst}
	l := len(src)
	e.bHatInv = make([]uint64, l)
	e.bHatInvShoup = make([]uint64, l)
	e.invB = make([]float64, l)
	for j := 0; j < l; j++ {
		bj := src[j]
		// (B/b_j) mod b_j = product of all other primes mod b_j.
		prod := uint64(1)
		for t := 0; t < l; t++ {
			if t != j {
				prod = bj.Mul(prod, bj.Reduce(src[t].Q))
			}
		}
		e.bHatInv[j] = bj.Inv(prod)
		e.bHatInvShoup[j] = bj.ShoupConstant(e.bHatInv[j])
		e.invB[j] = 1.0 / float64(bj.Q)
	}
	e.bHatModC = make([][]uint64, len(dst))
	e.bModC = make([]uint64, len(dst))
	for i, ci := range dst {
		e.bHatModC[i] = make([]uint64, l)
		bMod := uint64(1)
		for t := 0; t < l; t++ {
			bMod = ci.Mul(bMod, ci.Reduce(src[t].Q))
		}
		e.bModC[i] = bMod
		for j := 0; j < l; j++ {
			prod := uint64(1)
			for t := 0; t < l; t++ {
				if t != j {
					prod = ci.Mul(prod, ci.Reduce(src[t].Q))
				}
			}
			e.bHatModC[i][j] = prod
		}
	}
	return e
}

// Extend converts the residue vectors in[j][·] (one slice per source prime)
// into out[i][·] (one slice per destination modulus). Residues are treated
// as centered values in (−B/2, B/2]; the float correction removes the
// overflow multiples of B, making the conversion exact for |x| < B/2·(1−ε).
func (e *Extender) Extend(out, in [][]uint64) {
	l := len(e.src)
	if len(in) != l {
		panic(fmt.Sprintf("rns: %d input limbs, want %d", len(in), l))
	}
	if len(out) != len(e.dst) {
		panic(fmt.Sprintf("rns: %d output limbs, want %d", len(out), len(e.dst)))
	}
	n := len(in[0])
	// Digit bases are tiny (≤ a handful of primes), so the per-coefficient
	// y_j staging lives in a stack array — no heap traffic per call.
	var ysArr [maxStackBasis]uint64
	var ys []uint64
	if l <= maxStackBasis {
		ys = ysArr[:l]
	} else {
		ys = make([]uint64, l)
	}
	for t := 0; t < n; t++ {
		// y_j = [x_j · (B/b_j)^-1]_{b_j}; v estimates the overflow count.
		v := 0.0
		for j := 0; j < l; j++ {
			y := e.src[j].MulShoup(in[j][t], e.bHatInv[j], e.bHatInvShoup[j])
			ys[j] = y
			v += float64(y) * e.invB[j]
		}
		k := uint64(math.Round(v))
		for i := range e.dst {
			ci := e.dst[i]
			acc := uint64(0)
			row := e.bHatModC[i]
			for j := 0; j < l; j++ {
				acc = ci.Add(acc, ci.Mul(ys[j], row[j]))
			}
			// Subtract k·B to cancel the CRT overflow.
			acc = ci.Sub(acc, ci.Mul(ci.Reduce(k), e.bModC[i]))
			out[i][t] = acc
		}
	}
}

// maxStackBasis bounds the source-basis size for which Extend stages its
// per-coefficient y_j values on the stack. Real digit bases (alpha primes)
// are far smaller.
const maxStackBasis = 32

// scratchStack is a mutex-guarded free list of limbs×n residue matrices —
// the rns layer's private arena for conversion scratch. Deterministic
// (never GC-cleared) and boxing-free, so steady-state ModDown and
// DecomposeAndExtend calls perform no heap allocation.
type scratchStack struct {
	mu   sync.Mutex
	free [][][]uint64
}

// get returns a limbs×n matrix with unspecified contents (every entry is
// overwritten by the conversions that use it).
func (s *scratchStack) get(limbs, n int) [][]uint64 {
	s.mu.Lock()
	for i := len(s.free) - 1; i >= 0; i-- {
		m := s.free[i]
		if len(m) == limbs && len(m[0]) == n {
			s.free[i] = s.free[len(s.free)-1]
			s.free[len(s.free)-1] = nil
			s.free = s.free[:len(s.free)-1]
			s.mu.Unlock()
			return m
		}
	}
	s.mu.Unlock()
	backing := make([]uint64, limbs*n)
	m := make([][]uint64, limbs)
	for i := range m {
		m[i] = backing[i*n : (i+1)*n]
	}
	return m
}

func (s *scratchStack) put(m [][]uint64) {
	s.mu.Lock()
	s.free = append(s.free, m)
	s.mu.Unlock()
}

// ModDownParams precomputes the constants for exact division by the special
// basis P over the main basis Q.
type ModDownParams struct {
	Q, P    []numeric.Modulus
	ext     *Extender // P → Q
	pInvQ   []uint64  // [P^-1]_{q_i}
	pInvQSh []uint64
	scratch scratchStack // recycled conv matrices
}

// NewModDownParams builds ModDown tables for main basis Q and special
// basis P.
func NewModDownParams(q, p []numeric.Modulus) *ModDownParams {
	m := &ModDownParams{Q: q, P: p, ext: NewExtender(p, q)}
	m.pInvQ = make([]uint64, len(q))
	m.pInvQSh = make([]uint64, len(q))
	for i, qi := range q {
		prod := uint64(1)
		for _, pj := range p {
			prod = qi.Mul(prod, qi.Reduce(pj.Q))
		}
		m.pInvQ[i] = qi.Inv(prod)
		m.pInvQSh[i] = qi.ShoupConstant(m.pInvQ[i])
	}
	return m
}

// ModDown computes out_i = (aQ_i − conv(aP)_i) · P^{-1} mod q_i — Eq. 2 of
// the paper — realizing rounding division of the Q∪P value by P.
// aQ has len(Q) limbs, aP has len(P) limbs; out has len(Q) limbs and may
// alias aQ.
func (m *ModDownParams) ModDown(out, aQ, aP [][]uint64) {
	n := len(aQ[0])
	conv := m.scratch.get(len(m.Q), n)
	m.ext.Extend(conv, aP)
	for i, qi := range m.Q {
		o, a, c := out[i], aQ[i], conv[i]
		inv, invSh := m.pInvQ[i], m.pInvQSh[i]
		for t := range o {
			o[t] = qi.MulShoup(qi.Sub(a[t], c[t]), inv, invSh)
		}
	}
	m.scratch.put(conv)
}

// Rescaler divides by the last prime of a chain with rounding — the CKKS
// Rescale operation.
type Rescaler struct {
	moduli []numeric.Modulus
}

// NewRescaler builds a rescaler over the full modulus chain.
func NewRescaler(moduli []numeric.Modulus) *Rescaler {
	return &Rescaler{moduli: moduli}
}

// Rescale computes out_i = q_l^{-1} · (a_i − a_l) mod q_i for i < l, where
// a_l is re-centered before reduction so the implicit division rounds to
// nearest. in has l+1 limbs; out receives l limbs and may alias in.
func (r *Rescaler) Rescale(out, in [][]uint64) {
	l := len(in) - 1
	if l < 1 {
		panic("rns: rescale needs at least two limbs")
	}
	ql := r.moduli[l]
	half := ql.Q >> 1
	for i := 0; i < l; i++ {
		qi := r.moduli[i]
		qlInv := qi.Inv(qi.Reduce(ql.Q))
		qlInvSh := qi.ShoupConstant(qlInv)
		qlModQi := qi.Reduce(ql.Q)
		o, a, last := out[i], in[i], in[l]
		for t := range o {
			// Centered representative of a_l modulo q_i.
			c := qi.Reduce(last[t])
			if last[t] > half {
				c = qi.Sub(c, qlModQi)
			}
			o[t] = qi.MulShoup(qi.Sub(a[t], c), qlInv, qlInvSh)
		}
	}
}

// Decomposer splits a level-l polynomial over Q into hybrid-keyswitching
// digits: digit d covers the primes with indices [d·alpha, (d+1)·alpha) of
// Q, and each digit is CRT-extended to the full active basis Q_l ∪ P.
type Decomposer struct {
	Q, P  []numeric.Modulus
	Alpha int

	// extenders[d][size-1] extends digit d (of `size` primes) to all
	// moduli (Q then P); built lazily under mu so concurrent (and
	// limb-parallel) keyswitches can share one decomposer.
	mu        sync.Mutex
	extenders map[[2]int]*Extender
	scratch   scratchStack // recycled full-basis extension matrices
}

// NewDecomposer creates a decomposer for main basis Q, special basis P and
// digit width alpha (typically len(P)).
func NewDecomposer(q, p []numeric.Modulus, alpha int) *Decomposer {
	if alpha < 1 {
		panic("rns: alpha must be ≥ 1")
	}
	return &Decomposer{Q: q, P: p, Alpha: alpha, extenders: map[[2]int]*Extender{}}
}

// Digits returns the number of digits at level l: ceil((l+1)/alpha).
func (d *Decomposer) Digits(level int) int {
	return (level + d.Alpha) / d.Alpha
}

// DigitRange returns the [lo, hi) prime-index range of digit dig at level l.
func (d *Decomposer) DigitRange(level, dig int) (lo, hi int) {
	lo = dig * d.Alpha
	hi = lo + d.Alpha
	if hi > level+1 {
		hi = level + 1
	}
	return lo, hi
}

// DecomposeAndExtend extracts digit dig of the level-l input (limbs over Q,
// coefficient domain) and extends it to the active basis: out must have
// level+1+len(P) limbs ordered Q_0..Q_level, P_0..P_{alpha-1}. Digit-own
// limbs are copied verbatim; the rest are produced by RNSconv.
func (d *Decomposer) DecomposeAndExtend(level, dig int, in, out [][]uint64) {
	lo, hi := d.DigitRange(level, dig)
	size := hi - lo
	key := [2]int{dig, size}
	d.mu.Lock()
	ext, ok := d.extenders[key]
	if !ok {
		src := d.Q[lo:hi]
		dst := make([]numeric.Modulus, 0, len(d.Q)+len(d.P))
		dst = append(dst, d.Q...)
		dst = append(dst, d.P...)
		ext = NewExtender(src, dst)
		d.extenders[key] = ext
	}
	d.mu.Unlock()

	nQP := level + 1 + len(d.P)
	if len(out) != nQP {
		panic(fmt.Sprintf("rns: out has %d limbs, want %d", len(out), nQP))
	}
	n := len(in[0])
	// Full extension into a scratch covering all |Q|+|P| moduli, then copy
	// out the active ones. (The extender targets the full list so one table
	// serves every level.) Scratch is recycled across calls.
	scratch := d.scratch.get(len(d.Q)+len(d.P), n)
	ext.Extend(scratch, in[lo:hi])
	for i := 0; i <= level; i++ {
		if i >= lo && i < hi {
			copy(out[i], in[i])
		} else {
			copy(out[i], scratch[i])
		}
	}
	for j := 0; j < len(d.P); j++ {
		copy(out[level+1+j], scratch[len(d.Q)+j])
	}
	d.scratch.put(scratch)
}
