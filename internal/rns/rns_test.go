package rns

import (
	"math/big"
	"math/rand"
	"testing"

	"poseidon/internal/numeric"
)

func moduliOf(ps []uint64) []numeric.Modulus {
	ms := make([]numeric.Modulus, len(ps))
	for i, p := range ps {
		ms[i] = numeric.NewModulus(p)
	}
	return ms
}

func primes(t testing.TB, bits, logN, count int) []numeric.Modulus {
	t.Helper()
	ps, err := numeric.GenerateNTTPrimes(bits, logN, count)
	if err != nil {
		t.Fatal(err)
	}
	return moduliOf(ps)
}

func productOf(ms []numeric.Modulus) *big.Int {
	p := big.NewInt(1)
	for _, m := range ms {
		p.Mul(p, new(big.Int).SetUint64(m.Q))
	}
	return p
}

// residues encodes v (possibly negative) into the given basis.
func residues(v *big.Int, ms []numeric.Modulus, t int, out [][]uint64) {
	tmp := new(big.Int)
	for i, m := range ms {
		q := new(big.Int).SetUint64(m.Q)
		tmp.Mod(v, q)
		if tmp.Sign() < 0 {
			tmp.Add(tmp, q)
		}
		out[i][t] = tmp.Uint64()
	}
}

func compose(ms []numeric.Modulus, in [][]uint64, t int) *big.Int {
	prod := productOf(ms)
	acc := new(big.Int)
	tmp := new(big.Int)
	for i, m := range ms {
		qi := new(big.Int).SetUint64(m.Q)
		Qi := new(big.Int).Div(prod, qi)
		inv := new(big.Int).ModInverse(Qi, qi)
		tmp.SetUint64(in[i][t])
		tmp.Mul(tmp, inv).Mod(tmp, qi).Mul(tmp, Qi)
		acc.Add(acc, tmp)
	}
	acc.Mod(acc, prod)
	half := new(big.Int).Rsh(prod, 1)
	if acc.Cmp(half) > 0 {
		acc.Sub(acc, prod)
	}
	return acc
}

func allocLimbs(limbs, n int) [][]uint64 {
	backing := make([]uint64, limbs*n)
	out := make([][]uint64, limbs)
	for i := range out {
		out[i] = backing[i*n : (i+1)*n]
	}
	return out
}

func TestExtenderExactForCenteredValues(t *testing.T) {
	src := primes(t, 30, 10, 3)
	dst := primes(t, 45, 10, 4)
	e := NewExtender(src, dst)

	n := 64
	in := allocLimbs(len(src), n)
	out := allocLimbs(len(dst), n)

	B := productOf(src)
	halfB := new(big.Int).Rsh(B, 2) // stay well inside ±B/2
	rng := rand.New(rand.NewSource(1))
	wants := make([]*big.Int, n)
	for t2 := 0; t2 < n; t2++ {
		v := new(big.Int).Rand(rng, halfB)
		if t2%2 == 1 {
			v.Neg(v)
		}
		wants[t2] = v
		residues(v, src, t2, in)
	}
	e.Extend(out, in)
	for t2 := 0; t2 < n; t2++ {
		got := compose(dst, out, t2)
		if got.Cmp(wants[t2]) != 0 {
			t.Fatalf("coeff %d: extended %v want %v", t2, got, wants[t2])
		}
	}
}

func TestExtenderEdgeValues(t *testing.T) {
	src := primes(t, 30, 8, 2)
	dst := primes(t, 45, 8, 3)
	e := NewExtender(src, dst)
	B := productOf(src)

	cases := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(-1),
		new(big.Int).Div(B, big.NewInt(4)),
		new(big.Int).Neg(new(big.Int).Div(B, big.NewInt(4))),
	}
	in := allocLimbs(len(src), len(cases))
	out := allocLimbs(len(dst), len(cases))
	for i, v := range cases {
		residues(v, src, i, in)
	}
	e.Extend(out, in)
	for i, v := range cases {
		if got := compose(dst, out, i); got.Cmp(v) != 0 {
			t.Errorf("case %d: got %v want %v", i, got, v)
		}
	}
}

func TestModDownDividesByP(t *testing.T) {
	q := primes(t, 45, 10, 4)
	p := primes(t, 46, 10, 2)
	md := NewModDownParams(q, p)

	n := 32
	P := productOf(p)
	Q := productOf(q)
	rng := rand.New(rand.NewSource(2))

	aQ := allocLimbs(len(q), n)
	aP := allocLimbs(len(p), n)
	out := allocLimbs(len(q), n)

	// x = P·y + r with |y| < Q/4 and small r; ModDown must return ≈ y.
	wants := make([]*big.Int, n)
	for t2 := 0; t2 < n; t2++ {
		y := new(big.Int).Rand(rng, new(big.Int).Rsh(Q, 2))
		if t2%2 == 0 {
			y.Neg(y)
		}
		r := big.NewInt(int64(rng.Intn(100)))
		x := new(big.Int).Mul(P, y)
		x.Add(x, r)
		wants[t2] = y
		residues(x, q, t2, aQ)
		residues(x, p, t2, aP)
	}
	md.ModDown(out, aQ, aP)
	for t2 := 0; t2 < n; t2++ {
		got := compose(q, out, t2)
		diff := new(big.Int).Sub(got, wants[t2])
		if diff.CmpAbs(big.NewInt(1)) > 0 {
			t.Fatalf("coeff %d: ModDown error %v", t2, diff)
		}
	}
}

func TestRescaleRoundsToNearest(t *testing.T) {
	ms := primes(t, 45, 10, 3)
	rs := NewRescaler(ms)
	n := 32
	in := allocLimbs(3, n)
	out := allocLimbs(2, n)

	ql := new(big.Int).SetUint64(ms[2].Q)
	Q2 := new(big.Int).Mul(new(big.Int).SetUint64(ms[0].Q), new(big.Int).SetUint64(ms[1].Q))
	rng := rand.New(rand.NewSource(3))
	wants := make([]*big.Int, n)
	for t2 := 0; t2 < n; t2++ {
		// x = ql·y + r, rescale yields y + round(r/ql) ∈ {y, y±1}.
		y := new(big.Int).Rand(rng, new(big.Int).Rsh(Q2, 2))
		if t2%3 == 0 {
			y.Neg(y)
		}
		r := big.NewInt(int64(rng.Intn(1000)))
		x := new(big.Int).Mul(ql, y)
		x.Add(x, r)
		wants[t2] = y
		residues(x, ms, t2, in)
	}
	rs.Rescale(out, in)
	for t2 := 0; t2 < n; t2++ {
		got := compose(ms[:2], out, t2)
		diff := new(big.Int).Sub(got, wants[t2])
		if diff.CmpAbs(big.NewInt(1)) > 0 {
			t.Fatalf("coeff %d: rescale error %v", t2, diff)
		}
	}
}

func TestRescalePanicsOnSingleLimb(t *testing.T) {
	ms := primes(t, 30, 8, 1)
	rs := NewRescaler(ms)
	defer func() {
		if recover() == nil {
			t.Fatal("single-limb rescale should panic")
		}
	}()
	rs.Rescale(allocLimbs(0, 4), allocLimbs(1, 4))
}

func TestDecomposerDigitRanges(t *testing.T) {
	q := primes(t, 40, 10, 6)
	p := primes(t, 41, 10, 2)
	d := NewDecomposer(q, p, 2)
	if got := d.Digits(5); got != 3 {
		t.Errorf("Digits(5)=%d want 3", got)
	}
	if got := d.Digits(4); got != 3 {
		t.Errorf("Digits(4)=%d want 3", got)
	}
	if got := d.Digits(1); got != 1 {
		t.Errorf("Digits(1)=%d want 1", got)
	}
	lo, hi := d.DigitRange(4, 2)
	if lo != 4 || hi != 5 {
		t.Errorf("DigitRange(4,2)=[%d,%d) want [4,5)", lo, hi)
	}
}

// The decomposition identity: sum over digits of u_d · Q̂_d · [Q̂_d^{-1}]_{D_d}
// must equal the original value modulo every active prime.
func TestDecomposeReconstruction(t *testing.T) {
	q := primes(t, 40, 10, 6)
	p := primes(t, 41, 10, 2)
	alpha := 2
	d := NewDecomposer(q, p, alpha)
	bigQ := productOf(q)

	for _, level := range []int{5, 4, 3, 1} {
		n := 8
		in := allocLimbs(level+1, n)
		rng := rand.New(rand.NewSource(int64(level)))
		origVals := make([]*big.Int, n)
		activeQ := q[:level+1]
		Qlvl := productOf(activeQ)
		for t2 := 0; t2 < n; t2++ {
			v := new(big.Int).Rand(rng, Qlvl)
			origVals[t2] = v
			residues(v, activeQ, t2, in)
		}

		digits := d.Digits(level)
		acc := make([]*big.Int, n)
		for i := range acc {
			acc[i] = new(big.Int)
		}
		out := allocLimbs(level+1+len(p), n)
		for dig := 0; dig < digits; dig++ {
			d.DecomposeAndExtend(level, dig, in, out)
			// Digit-own limbs must be verbatim copies.
			lo, hi := d.DigitRange(level, dig)
			for i := lo; i < hi; i++ {
				for t2 := 0; t2 < n; t2++ {
					if out[i][t2] != in[i][t2] {
						t.Fatalf("level %d digit %d: limb %d not copied", level, dig, i)
					}
				}
			}
			// Full-group reconstruction factor B_d = Q̂_d·[Q̂_d^{-1}]_{D_d}
			// computed with the *full* chain Q (keys are level-agnostic).
			gLo := dig * alpha
			gHi := gLo + alpha
			if gHi > len(q) {
				gHi = len(q)
			}
			Dd := productOf(q[gLo:gHi])
			Qhat := new(big.Int).Div(bigQ, Dd)
			tD := new(big.Int).ModInverse(new(big.Int).Mod(Qhat, Dd), Dd)
			Bd := new(big.Int).Mul(Qhat, tD)
			// u_d from the extended limbs (compose over active basis; the
			// extension is exact in that basis by construction).
			for t2 := 0; t2 < n; t2++ {
				// The extender produces the centered representative of the
				// digit value; recover it the same way from the digit-own
				// limbs. (Centered vs non-negative differ by D_d, which is
				// annihilated by B_d modulo Q.)
				ud := compose(q[lo:hi], sliceRange(in, lo, hi), t2)
				term := new(big.Int).Mul(ud, Bd)
				acc[t2].Add(acc[t2], term)

				// And the extended limbs must be consistent with ud modulo
				// every active modulus.
				for i := 0; i <= level; i++ {
					want := new(big.Int).Mod(ud, new(big.Int).SetUint64(q[i].Q)).Uint64()
					if out[i][t2] != want {
						t.Fatalf("level %d digit %d limb %d coeff %d: extension %d want %d",
							level, dig, i, t2, out[i][t2], want)
					}
				}
				for j := range p {
					want := new(big.Int).Mod(ud, new(big.Int).SetUint64(p[j].Q)).Uint64()
					if out[level+1+j][t2] != want {
						t.Fatalf("level %d digit %d P-limb %d: extension mismatch", level, dig, j)
					}
				}
			}
		}
		// Σ_d u_d·B_d ≡ original mod every active prime.
		for t2 := 0; t2 < n; t2++ {
			for i := 0; i <= level; i++ {
				qi := new(big.Int).SetUint64(q[i].Q)
				got := new(big.Int).Mod(acc[t2], qi)
				want := new(big.Int).Mod(origVals[t2], qi)
				if got.Cmp(want) != 0 {
					t.Fatalf("level %d coeff %d limb %d: reconstruction %v want %v",
						level, t2, i, got, want)
				}
			}
		}
	}
}

func sliceRange(in [][]uint64, lo, hi int) [][]uint64 { return in[lo:hi] }
