package ckks

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// Differential suite for the lazy-reduction kernels: every evaluator
// operation must be BIT-IDENTICAL between the strict reference kernels
// (fully reduced after every butterfly/multiply, reduce-then-add digit
// sums) and the lazy production kernels (Harvey butterflies, Montgomery
// elementwise path, fused 128-bit inner-product accumulation). The two
// modes run on ONE Parameters instance toggled via SetStrictKernels, so
// keys, encryption randomness, and inputs are literally the same objects —
// any coefficient difference is a kernel bug, not setup noise.

// withStrictCkks runs f under the requested kernel mode and restores the
// previous mode afterwards.
func withStrictCkks(params *Parameters, strict bool, f func()) {
	prev := params.StrictKernels()
	params.SetStrictKernels(strict)
	defer params.SetStrictKernels(prev)
	f()
}

// TestStrictLazyEvaluatorOps is the differential table: every op × every
// parameter set, strict output bit-compared against lazy output on shared
// inputs, serially and at GOMAXPROCS workers.
func TestStrictLazyEvaluatorOps(t *testing.T) {
	workerCounts := []int{1, runtime.GOMAXPROCS(0)}
	for pname, params := range diffParamSets(t) {
		dc := newDiffContext(t, params)
		ct1, ct2, pt := dc.freshInputs(17)
		for _, op := range diffOps {
			var want *Ciphertext
			withStrictCkks(params, true, func() {
				want = op.run(dc.serial, ct1, ct2, pt, dc)
			})
			for _, w := range workerCounts {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", pname, op.name, w), func(t *testing.T) {
					var got *Ciphertext
					withStrictCkks(params, false, func() {
						got = op.run(dc.serial.WithWorkers(w), ct1, ct2, pt, dc)
					})
					requireCtEqual(t, got, want, op.name)
				})
			}
		}
	}
}

// TestStrictLazyRotateHoisted pins the hoisted path (shared decomposition,
// per-rotation fused digit sums) to its strict replay.
func TestStrictLazyRotateHoisted(t *testing.T) {
	steps := []int{0, 1, -1, 2}
	for pname, params := range diffParamSets(t) {
		dc := newDiffContext(t, params)
		ct1, _, _ := dc.freshInputs(19)
		var want map[int]*Ciphertext
		withStrictCkks(params, true, func() {
			want = dc.serial.RotateHoisted(ct1, steps)
		})
		var got map[int]*Ciphertext
		withStrictCkks(params, false, func() {
			got = dc.serial.RotateHoisted(ct1, steps)
		})
		for _, s := range steps {
			requireCtEqual(t, got[s], want[s], fmt.Sprintf("%s: hoisted step %d", pname, s))
		}
	}
}

// traceCounter tallies observed operations per opcode.
type traceCounter map[string]int

func (tc traceCounter) Observe(op string, level int) { tc[op]++ }

// TestStrictLazyLinearTransform runs a BSGS linear transform whose
// giant-step groups hold several diagonals each, so the fused mulPlainSum
// path (k-term lazy digit sums) is exercised. Checks three things: lazy
// output is bit-identical to strict, both emit identical operator traces
// (the fused sum must not change what the accelerator model prices), and
// the result still decrypts to M·z.
func TestStrictLazyLinearTransform(t *testing.T) {
	params := diffParamSets(t)["LogN8-L2"]
	n := params.Slots

	// Matrix from a handful of generalized diagonals spanning two
	// giant-step groups (n1=16): d ∈ {0,1,2} → j=0, d ∈ {17,18} → j=16.
	rng := rand.New(rand.NewSource(23))
	diags := map[int][]complex128{}
	for _, d := range []int{0, 1, 2, 17, 18} {
		v := make([]complex128, n)
		for i := range v {
			v[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
		diags[d] = v
	}
	m := make([][]complex128, n)
	for r := range m {
		m[r] = make([]complex128, n)
		for d, v := range diags {
			m[r][(r+d)%n] = v[r]
		}
	}

	enc := NewEncoder(params)
	lt, err := NewLinearTransform(enc, m, params.MaxLevel(), params.Scale)
	if err != nil {
		t.Fatal(err)
	}

	kgen := NewKeyGenerator(params, 42)
	sk := kgen.GenSecretKey()
	rlk := kgen.GenRelinearizationKey(sk)
	rtk := kgen.GenRotationKeys(sk, lt.Rotations(), false)
	ev := NewEvaluator(params, rlk, rtk)

	pk := kgen.GenPublicKey(sk)
	encr := NewEncryptor(params, pk, 29)
	z := randomComplex(rng, n, 1.0)
	ct := encr.Encrypt(enc.Encode(z, params.MaxLevel(), params.Scale))

	var want, got *Ciphertext
	strictTrace, lazyTrace := traceCounter{}, traceCounter{}
	withStrictCkks(params, true, func() {
		ev.SetObserver(strictTrace)
		want = ev.EvaluateLinearTransform(ct, lt)
	})
	withStrictCkks(params, false, func() {
		ev.SetObserver(lazyTrace)
		got = ev.EvaluateLinearTransform(ct, lt)
	})
	ev.SetObserver(nil)

	requireCtEqual(t, got, want, "linear transform strict vs lazy")

	if len(strictTrace) == 0 {
		t.Fatal("strict run emitted no operator trace")
	}
	for op, c := range strictTrace {
		if lazyTrace[op] != c {
			t.Errorf("trace parity: op %s strict=%d lazy=%d", op, c, lazyTrace[op])
		}
	}
	for op := range lazyTrace {
		if _, ok := strictTrace[op]; !ok {
			t.Errorf("trace parity: lazy emitted %s, strict did not", op)
		}
	}

	// Semantics: decrypt and compare against M·z.
	expect := make([]complex128, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			expect[r] += m[r][c] * z[c]
		}
	}
	decr := NewDecryptor(params, sk)
	assertClose(t, enc.Decode(decr.Decrypt(ev.Rescale(got))), expect, 1e-3, "linear transform decrypts to M·z")
}

// TestStrictKernelsLiteralFlag checks the ParametersLiteral plumbing and
// that a strict-from-birth instance produces the same ciphertext bits as a
// lazy instance toggled strict (kernels are a pure execution detail).
func TestStrictKernelsLiteralFlag(t *testing.T) {
	lit := ParametersLiteral{
		LogN:          8,
		LogQ:          []int{50, 40, 40},
		LogP:          []int{51},
		LogScale:      40,
		StrictKernels: true,
	}
	params, err := NewParameters(lit)
	if err != nil {
		t.Fatal(err)
	}
	if !params.StrictKernels() {
		t.Fatal("StrictKernels literal flag not applied")
	}
	params.SetStrictKernels(false)
	if params.StrictKernels() {
		t.Fatal("SetStrictKernels(false) did not clear the flag")
	}
}
