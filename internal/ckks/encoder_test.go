package ckks

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func smallParams(t testing.TB) *Parameters {
	t.Helper()
	p, err := NewParameters(ParametersLiteral{
		LogN:     8,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func randomComplex(rng *rand.Rand, n int, bound float64) []complex128 {
	z := make([]complex128, n)
	for i := range z {
		z[i] = complex((rng.Float64()*2-1)*bound, (rng.Float64()*2-1)*bound)
	}
	return z
}

func maxErr(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := smallParams(t)
	enc := NewEncoder(p)
	rng := rand.New(rand.NewSource(1))
	z := randomComplex(rng, p.Slots, 1.0)
	pt := enc.Encode(z, p.MaxLevel(), p.Scale)
	got := enc.Decode(pt)
	if e := maxErr(z, got); e > 1e-8 {
		t.Errorf("round-trip error %g too large", e)
	}
}

func TestEncodeDecodePartialVector(t *testing.T) {
	p := smallParams(t)
	enc := NewEncoder(p)
	z := []complex128{1 + 2i, -3, 0.5i}
	pt := enc.EncodeReal([]float64{1, -3, 0.5}, p.MaxLevel(), p.Scale)
	_ = z
	got := enc.Decode(pt)
	want := []float64{1, -3, 0.5}
	for i, w := range want {
		if math.Abs(real(got[i])-w) > 1e-8 || math.Abs(imag(got[i])) > 1e-8 {
			t.Errorf("slot %d: got %v want %v", i, got[i], w)
		}
	}
	for i := len(want); i < p.Slots; i++ {
		if cmplx.Abs(got[i]) > 1e-8 {
			t.Errorf("slot %d should be ~0, got %v", i, got[i])
		}
	}
}

// The embedding must be the canonical one: slot i of the decoded vector
// equals m(ζ^{5^i}) for ζ = e^{iπ/N}, evaluated directly on the centered
// coefficients.
func TestDecodeMatchesDirectEvaluation(t *testing.T) {
	p := smallParams(t)
	enc := NewEncoder(p)
	rng := rand.New(rand.NewSource(2))
	z := randomComplex(rng, p.Slots, 1.0)
	pt := enc.Encode(z, p.MaxLevel(), p.Scale)

	// Gather centered integer coefficients.
	poly := pt.Value.CopyNew()
	p.RingQ.INTT(poly)
	coeffs := make([]float64, p.N)
	for j := 0; j < p.N; j++ {
		coeffs[j] = bigToFloat(p.RingQ.ToBigCentered(poly, j))
	}

	// Direct evaluation at ζ^{5^i}.
	m := 2 * p.N
	for i := 0; i < p.Slots; i += 17 { // sample a few slots
		e := enc.rotGroup[i]
		root := cmplx.Exp(complex(0, 2*math.Pi*float64(e)/float64(m)))
		acc := complex(0, 0)
		x := complex(1, 0)
		for j := 0; j < p.N; j++ {
			acc += complex(coeffs[j], 0) * x
			x *= root
		}
		acc /= complex(pt.Scale, 0)
		if cmplx.Abs(acc-z[i]) > 1e-6 {
			t.Errorf("slot %d: direct evaluation %v, encoded %v", i, acc, z[i])
		}
	}
}

// Encoding must be additively homomorphic at the coefficient level.
func TestEncodeAdditive(t *testing.T) {
	p := smallParams(t)
	enc := NewEncoder(p)
	rng := rand.New(rand.NewSource(3))
	z1 := randomComplex(rng, p.Slots, 1.0)
	z2 := randomComplex(rng, p.Slots, 1.0)
	sum := make([]complex128, p.Slots)
	for i := range sum {
		sum[i] = z1[i] + z2[i]
	}
	pt1 := enc.Encode(z1, p.MaxLevel(), p.Scale)
	pt2 := enc.Encode(z2, p.MaxLevel(), p.Scale)
	p.RingQ.Add(pt1.Value, pt1.Value, pt2.Value)
	got := enc.Decode(pt1)
	if e := maxErr(sum, got); e > 1e-7 {
		t.Errorf("additive homomorphism error %g", e)
	}
}

// Multiplying encodings as ring elements must multiply slots element-wise
// (scale becomes Δ²).
func TestEncodeMultiplicative(t *testing.T) {
	p := smallParams(t)
	enc := NewEncoder(p)
	rng := rand.New(rand.NewSource(4))
	z1 := randomComplex(rng, p.Slots, 1.0)
	z2 := randomComplex(rng, p.Slots, 1.0)
	prod := make([]complex128, p.Slots)
	for i := range prod {
		prod[i] = z1[i] * z2[i]
	}
	pt1 := enc.Encode(z1, p.MaxLevel(), p.Scale)
	pt2 := enc.Encode(z2, p.MaxLevel(), p.Scale)
	out := p.RingQ.NewPoly(p.MaxLevel() + 1)
	p.RingQ.MulCoeffwise(out, pt1.Value, pt2.Value)
	ptOut := &Plaintext{Value: out, Scale: pt1.Scale * pt2.Scale, Level: p.MaxLevel()}
	got := enc.Decode(ptOut)
	if e := maxErr(prod, got); e > 1e-6 {
		t.Errorf("multiplicative homomorphism error %g", e)
	}
}

// Applying the Galois automorphism with element 5 must cyclically shift the
// slot vector by one position.
func TestAutomorphismShiftsSlots(t *testing.T) {
	p := smallParams(t)
	enc := NewEncoder(p)
	rng := rand.New(rand.NewSource(5))
	z := randomComplex(rng, p.Slots, 1.0)
	pt := enc.Encode(z, p.MaxLevel(), p.Scale)

	poly := pt.Value.CopyNew()
	p.RingQ.INTT(poly)
	rot := p.RingQ.NewPoly(p.MaxLevel() + 1)
	p.RingQ.Automorphism(rot, poly, 5)
	p.RingQ.NTT(rot)
	got := enc.Decode(&Plaintext{Value: rot, Scale: pt.Scale, Level: pt.Level})

	want := make([]complex128, p.Slots)
	for i := range want {
		want[i] = z[(i+1)%p.Slots]
	}
	if e := maxErr(want, got); e > 1e-7 {
		t.Errorf("rotation semantics error %g", e)
	}
}

// Conjugation element 2N−1 must conjugate every slot.
func TestAutomorphismConjugates(t *testing.T) {
	p := smallParams(t)
	enc := NewEncoder(p)
	rng := rand.New(rand.NewSource(6))
	z := randomComplex(rng, p.Slots, 1.0)
	pt := enc.Encode(z, p.MaxLevel(), p.Scale)

	poly := pt.Value.CopyNew()
	p.RingQ.INTT(poly)
	conj := p.RingQ.NewPoly(p.MaxLevel() + 1)
	p.RingQ.Automorphism(conj, poly, uint64(2*p.N-1))
	p.RingQ.NTT(conj)
	got := enc.Decode(&Plaintext{Value: conj, Scale: pt.Scale, Level: pt.Level})
	for i := range z {
		if cmplx.Abs(got[i]-cmplx.Conj(z[i])) > 1e-7 {
			t.Fatalf("slot %d: conjugation mismatch", i)
		}
	}
}
