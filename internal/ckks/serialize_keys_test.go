package ckks

import (
	"math/rand"
	"testing"
)

func TestRelinearizationKeySerialization(t *testing.T) {
	tc := newTestContext(t)
	data, err := tc.rlk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back RelinearizationKey
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(back.B) != len(tc.rlk.B) {
		t.Fatalf("digit count changed: %d vs %d", len(back.B), len(tc.rlk.B))
	}
	for d := range back.B {
		if !back.B[d].Q.Equal(tc.rlk.B[d].Q) || !back.B[d].P.Equal(tc.rlk.B[d].P) ||
			!back.A[d].Q.Equal(tc.rlk.A[d].Q) || !back.A[d].P.Equal(tc.rlk.A[d].P) {
			t.Fatalf("digit %d changed across serialization", d)
		}
	}

	// The deserialized key must actually relinearize.
	ev := NewEvaluator(tc.params, &back, nil)
	rng := rand.New(rand.NewSource(130))
	z := randomComplex(rng, tc.params.Slots, 1.0)
	ct := tc.encryptVec(z)
	prod := ev.Rescale(ev.MulRelin(ct, ct))
	got := tc.decryptVec(prod)
	want := make([]complex128, len(z))
	for i := range want {
		want[i] = z[i] * z[i]
	}
	assertClose(t, got, want, 1e-4, "CMult with deserialized rlk")
}

func TestRotationKeySetSerialization(t *testing.T) {
	tc := newTestContext(t)
	steps := []int{1, -2, 7}
	rtks := tc.kgen.GenRotationKeys(tc.sk, steps, true)

	data, err := rtks.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back RotationKeySet
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if len(back.Keys) != len(rtks.Keys) {
		t.Fatalf("key count changed: %d vs %d", len(back.Keys), len(rtks.Keys))
	}

	// Rotations must work with the deserialized set.
	ev := NewEvaluator(tc.params, nil, &back)
	rng := rand.New(rand.NewSource(131))
	z := randomComplex(rng, tc.params.Slots, 1.0)
	ct := tc.encryptVec(z)
	n := tc.params.Slots
	for _, s := range steps {
		want := make([]complex128, n)
		for i := range want {
			want[i] = z[((i+s)%n+n)%n]
		}
		got := tc.decryptVec(ev.Rotate(ct, s))
		assertClose(t, got, want, 1e-4, "rotation with deserialized keys")
	}
}

func TestKeySerializationErrors(t *testing.T) {
	tc := newTestContext(t)
	data, _ := tc.rlk.MarshalBinary()

	var swk SwitchingKey
	if err := swk.UnmarshalBinary(data[:40]); err == nil {
		t.Error("truncated key should error")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if err := swk.UnmarshalBinary(bad); err == nil {
		t.Error("bad magic should error")
	}
	if err := swk.UnmarshalBinary(append(data, 1)); err == nil {
		t.Error("trailing bytes should error")
	}

	var set RotationKeySet
	if err := set.UnmarshalBinary(data); err == nil {
		t.Error("kind confusion should error")
	}
	if err := set.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Error("tiny payload should error")
	}

	empty := &SwitchingKey{}
	if _, err := empty.MarshalBinary(); err == nil {
		t.Error("empty key should refuse to marshal")
	}
}
