package ckks

import (
	"encoding/binary"
	"fmt"
)

// Serialization for evaluation-key material. Switching keys are the bulk of
// any deployment's key payload (the paper streams them from HBM on every
// keyswitch), so the wire format mirrors that layout: per digit, the two
// key components over Q then P.

const (
	kindSwitchingKey   = 4
	kindRotationKeySet = 5
)

// MarshalBinary encodes the switching key (all digits, both components).
func (swk *SwitchingKey) MarshalBinary() ([]byte, error) {
	if len(swk.B) == 0 {
		return nil, fmt.Errorf("ckks: MarshalBinary: empty switching key")
	}
	limbsQ := len(swk.B[0].Q.Coeffs)
	limbsP := len(swk.B[0].P.Coeffs)
	n := len(swk.B[0].Q.Coeffs[0])
	digits := len(swk.B)

	buf := make([]byte, 0, headerWords*8+16+digits*2*(limbsQ+limbsP)*n*8)
	buf = putHeader(buf, header{
		kind: kindSwitchingKey, scale: 1, level: limbsQ - 1, limbs: limbsQ, n: n, isNTT: true,
	})
	buf = binary.LittleEndian.AppendUint64(buf, uint64(digits))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(limbsP))
	for d := 0; d < digits; d++ {
		buf = putPoly(buf, swk.B[d].Q)
		buf = putPoly(buf, swk.B[d].P)
		buf = putPoly(buf, swk.A[d].Q)
		buf = putPoly(buf, swk.A[d].P)
	}
	return buf, nil
}

// UnmarshalBinary decodes into swk.
func (swk *SwitchingKey) UnmarshalBinary(data []byte) error {
	h, rest, err := parseHeader(data)
	if err != nil {
		return err
	}
	if h.kind != kindSwitchingKey {
		return corruptErr("expected switching key, found kind %d", h.kind)
	}
	if len(rest) < 16 {
		return corruptErr("switching key truncated")
	}
	digits := int(binary.LittleEndian.Uint64(rest))
	limbsP := int(binary.LittleEndian.Uint64(rest[8:]))
	rest = rest[16:]
	if digits < 1 || digits > 1<<10 || limbsP < 1 || limbsP > 1<<10 {
		return corruptErr("implausible key geometry digits=%d limbsP=%d", digits, limbsP)
	}
	swk.B = make([]PolyQP, digits)
	swk.A = make([]PolyQP, digits)
	for d := 0; d < digits; d++ {
		bq, r1, err := parsePoly(rest, h.limbs, h.n, true)
		if err != nil {
			return err
		}
		bp, r2, err := parsePoly(r1, limbsP, h.n, true)
		if err != nil {
			return err
		}
		aq, r3, err := parsePoly(r2, h.limbs, h.n, true)
		if err != nil {
			return err
		}
		ap, r4, err := parsePoly(r3, limbsP, h.n, true)
		if err != nil {
			return err
		}
		swk.B[d] = PolyQP{Q: bq, P: bp}
		swk.A[d] = PolyQP{Q: aq, P: ap}
		rest = r4
	}
	if len(rest) != 0 {
		return corruptErr("%d trailing bytes", len(rest))
	}
	return nil
}

// MarshalBinary encodes the relinearization key.
func (rlk *RelinearizationKey) MarshalBinary() ([]byte, error) {
	return rlk.SwitchingKey.MarshalBinary()
}

// UnmarshalBinary decodes the relinearization key.
func (rlk *RelinearizationKey) UnmarshalBinary(data []byte) error {
	return rlk.SwitchingKey.UnmarshalBinary(data)
}

// MarshalBinary encodes the rotation key set: a count followed by
// (galois element, switching key) pairs.
func (set *RotationKeySet) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0)
	buf = binary.LittleEndian.AppendUint64(buf, serialMagic)
	buf = binary.LittleEndian.AppendUint64(buf, serialVersion)
	buf = binary.LittleEndian.AppendUint64(buf, kindRotationKeySet)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(set.Keys)))
	for g, swk := range set.Keys {
		kb, err := swk.MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint64(buf, g)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(len(kb)))
		buf = append(buf, kb...)
	}
	return buf, nil
}

// UnmarshalBinary decodes into set.
func (set *RotationKeySet) UnmarshalBinary(data []byte) error {
	if len(data) < 32 {
		return corruptErr("rotation key set truncated")
	}
	if binary.LittleEndian.Uint64(data) != serialMagic {
		return corruptErr("bad magic")
	}
	if binary.LittleEndian.Uint64(data[8:]) != serialVersion {
		return corruptErr("unsupported version")
	}
	if binary.LittleEndian.Uint64(data[16:]) != kindRotationKeySet {
		return corruptErr("expected rotation key set")
	}
	count := binary.LittleEndian.Uint64(data[24:])
	if count > 1<<16 {
		return corruptErr("implausible key count %d", count)
	}
	rest := data[32:]
	set.Keys = make(map[uint64]*SwitchingKey, count)
	for i := uint64(0); i < count; i++ {
		if len(rest) < 16 {
			return corruptErr("rotation key %d truncated", i)
		}
		g := binary.LittleEndian.Uint64(rest)
		size := binary.LittleEndian.Uint64(rest[8:])
		rest = rest[16:]
		if uint64(len(rest)) < size {
			return corruptErr("rotation key %d payload truncated", i)
		}
		var swk SwitchingKey
		if err := swk.UnmarshalBinary(rest[:size]); err != nil {
			return fmt.Errorf("ckks: rotation key %d: %w", i, err)
		}
		set.Keys[g] = &swk
		rest = rest[size:]
	}
	if len(rest) != 0 {
		return corruptErr("%d trailing bytes", len(rest))
	}
	return nil
}
