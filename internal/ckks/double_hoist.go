package ckks

import (
	"fmt"
	"time"

	"poseidon/internal/numeric"
	"poseidon/internal/ring"
)

// Double-hoisted linear transforms.
//
// The per-rotation BSGS schedule pays one full keyswitch — digit MACs plus
// an inverse-NTT sweep and a ModDown — for every baby-step rotation AND
// every giant-step group. Hoisting (hoisting.go) already shares the digit
// decomposition across the baby steps; double-hoisting additionally defers
// every basis reduction to the group boundary:
//
//   - each baby rotation is kept lazy: the accumulate-only keyswitch replay
//     (rotateHoistedAccum) plus the P·σ_g(c0) correction leave the rotation
//     as NTT-domain residues of P·rot_g(ct) over the extended basis Q_l ∪ P
//     — no inverse NTT, no ModDown;
//   - a giant-step group MACs its plaintext diagonals against those lazy
//     images into 128-bit columns over the full extended basis, then spends
//     exactly ONE ModDown (and one inverse-NTT sweep) on the group's c1 to
//     re-enter the Q basis for the giant rotation's own keyswitch, whose
//     MACs accumulate straight into the output residues;
//   - the output accumulator is itself kept in the extended basis until the
//     very end: one inverse-NTT sweep and two ModDowns close the whole
//     transform.
//
// For a transform with b baby steps and g giant-step groups the per-rotation
// schedule runs 2·(b+g) ModDown sweeps; the double-hoisted schedule runs
// g+1 (j≠0 groups plus the final close, +1 when a j=0 group exists). The
// digit-MAC arithmetic is identical — the win is entirely in basis
// reductions and (inverse-)NTT passes, which is what LinTransStats makes
// visible and cmd/poseidon benchlinalg gates on.
//
// Numerically the two schedules are NOT bit-identical: ModDown rounds once
// per reduction, so regrouping the reductions shifts the rounding noise by
// O(1) units — far below the encoding noise floor. Within the
// double-hoisted path, strict and lazy kernels compute the same exact
// modular sums and agree bit-for-bit; the differential tests pin both
// properties.

// qpAccum is a ciphertext-component accumulator over the extended basis
// Q_l ∪ P: NTT-domain residue polys for the c0 and c1 rows of both the Q
// and the P half.
type qpAccum struct {
	c0Q, c1Q *ring.Poly // qLimbs rows over RingQ
	c0P, c1P *ring.Poly // alpha rows over RingP
}

// row0 returns the c0 row of extended limb i (Q rows first, then P).
func (a *qpAccum) row0(qLimbs, i int) []uint64 {
	if i < qLimbs {
		return a.c0Q.Coeffs[i]
	}
	return a.c0P.Coeffs[i-qLimbs]
}

// row1 returns the c1 row of extended limb i.
func (a *qpAccum) row1(qLimbs, i int) []uint64 {
	if i < qLimbs {
		return a.c1Q.Coeffs[i]
	}
	return a.c1P.Coeffs[i-qLimbs]
}

// addVec accumulates a into out modulo mod, element-wise.
func addVec(mod numeric.Modulus, out, a []uint64) {
	for j := range out {
		out[j] = mod.Add(out[j], a[j])
	}
}

// ltState bundles the double-hoisted engine's per-call state so every stage
// runs either as a plain serial loop over its methods (no closures, no
// allocations) or fanned out across the worker pool. Records are recycled
// through the Parameters free list (getLtState/putLtState) and keep their
// slice capacities across checkouts, so a steady-state transform loop
// allocates nothing beyond the result ciphertext.
type ltState struct {
	ev   *Evaluator
	plan *LinearTransformPlan

	level  int
	qLimbs int
	alpha  int
	ext1   int // extended limb count qLimbs + alpha
	n      int
	strict bool
	serial bool

	hd hoistedDecomposition // shared baby-step digit decomposition

	// ctP0/ctP1 hold P·ct over the Q rows (NTT domain) — the lazy QP image
	// of the identity rotation; its P rows are identically zero, which the
	// MAC stage exploits by skipping identity terms on P limbs.
	ctP0, ctP1 *ring.Poly

	babies []qpAccum // lazy QP rotations, one per plan baby step

	out qpAccum // running transform result over the extended basis

	grp   qpAccum    // per-group staging (strict residues / reduction target)
	c1Std *ring.Poly // group c1 after its single ModDown (coeff domain, Q)
	ext   [][]uint64 // extended digit scratch for the group keyswitch

	wideG *wideAcc // 128-bit columns for the group's plaintext MACs
	wideK *wideAcc // 128-bit columns for the group's key-switch MACs

	// current-group / current-baby context for the stage methods
	terms        []ltPlanTerm
	permQ, permP []int
	key          *SwitchingKey
	d            int
	srcC0        *ring.Poly
	cur          qpAccum

	dst0, dst1 *ring.Poly // final destination rows

	stats LinTransStats
}

// reset binds the record to one evaluation; acquire draws the scratch.
func (st *ltState) reset(ev *Evaluator, plan *LinearTransformPlan, level int) {
	params := ev.params
	st.ev = ev
	st.plan = plan
	st.level = level
	st.qLimbs = level + 1
	st.alpha = params.Alpha()
	st.ext1 = st.qLimbs + st.alpha
	st.n = params.N
	st.strict = params.RingQ.StrictKernels()
	st.serial = ev.pool.Workers() <= 1
	st.stats = LinTransStats{}
}

func (st *ltState) acquire() {
	params := st.ev.params
	rq, rp := params.RingQ, params.RingP
	st.ctP0 = rq.GetPolyDirty(st.qLimbs)
	st.ctP1 = rq.GetPolyDirty(st.qLimbs)
	// Accumulators start zeroed: the output sum and (under strict kernels)
	// the per-baby and per-group residues are built by modular adds.
	st.out = qpAccum{c0Q: rq.GetPoly(st.qLimbs), c1Q: rq.GetPoly(st.qLimbs), c0P: rp.GetPoly(st.alpha), c1P: rp.GetPoly(st.alpha)}
	st.grp = qpAccum{c0Q: rq.GetPoly(st.qLimbs), c1Q: rq.GetPoly(st.qLimbs), c0P: rp.GetPoly(st.alpha), c1P: rp.GetPoly(st.alpha)}
	st.c1Std = rq.GetPolyDirty(st.qLimbs)
	st.ext = params.getExt(st.ext1)
	for range st.plan.babySteps {
		st.babies = append(st.babies, qpAccum{c0Q: rq.GetPoly(st.qLimbs), c1Q: rq.GetPoly(st.qLimbs), c0P: rp.GetPoly(st.alpha), c1P: rp.GetPoly(st.alpha)})
	}
}

func (st *ltState) putAccum(a *qpAccum) {
	rq, rp := st.ev.params.RingQ, st.ev.params.RingP
	if a.c0Q != nil {
		rq.PutPoly(a.c0Q)
	}
	if a.c1Q != nil {
		rq.PutPoly(a.c1Q)
	}
	if a.c0P != nil {
		rp.PutPoly(a.c0P)
	}
	if a.c1P != nil {
		rp.PutPoly(a.c1P)
	}
	*a = qpAccum{}
}

// release returns every borrowed buffer and recycles the record. Nil-safe
// field by field, so it doubles as the panic-path sweep (deferred by the
// driver); slice capacities are kept for the next checkout.
func (st *ltState) release() {
	params := st.ev.params
	rq := params.RingQ
	for i, ext := range st.hd.digits {
		if ext != nil {
			params.putExt(ext)
		}
		st.hd.digits[i] = nil
	}
	st.hd.digits = st.hd.digits[:0]
	if st.hd.c0 != nil {
		rq.PutPoly(st.hd.c0)
		st.hd.c0 = nil
	}
	if st.ctP0 != nil {
		rq.PutPoly(st.ctP0)
		st.ctP0 = nil
	}
	if st.ctP1 != nil {
		rq.PutPoly(st.ctP1)
		st.ctP1 = nil
	}
	for k := range st.babies {
		st.putAccum(&st.babies[k])
	}
	st.babies = st.babies[:0]
	st.putAccum(&st.out)
	st.putAccum(&st.grp)
	if st.c1Std != nil {
		rq.PutPoly(st.c1Std)
		st.c1Std = nil
	}
	if st.ext != nil {
		params.putExt(st.ext)
		st.ext = nil
	}
	if st.wideG != nil {
		params.putWide(st.wideG)
		st.wideG = nil
	}
	if st.wideK != nil {
		params.putWide(st.wideK)
		st.wideK = nil
	}
	st.terms = nil
	st.permQ, st.permP = nil, nil
	st.key = nil
	st.plan = nil
	st.srcC0 = nil
	st.cur = qpAccum{}
	st.dst0, st.dst1 = nil, nil
	ev := st.ev
	st.ev = nil
	ev.params.putLtState(st)
}

// EvaluateLinearTransform applies lt to ct with the double-hoisted schedule
// described at the top of this file: shared baby-step decomposition, lazy
// extended-basis baby rotations, one ModDown per giant-step group, one
// final close. The result encrypts M·slots(ct) with scale
// ct.Scale·lt.Scale (rescale afterwards). Requires rotation keys for
// lt.Plan().GaloisElements(). The result is decrypt-equivalent to — but not
// bit-identical with — EvaluateLinearTransformPerRotation (ModDown rounding
// is regrouped; the difference is O(1) ring units, far below the noise
// floor).
func (ev *Evaluator) EvaluateLinearTransform(ct *Ciphertext, lt *LinearTransform) *Ciphertext {
	out := NewCiphertext(ev.params, lt.Level)
	ev.evalDoubleHoisted(out, ct, lt)
	return out
}

// EvaluateLinearTransformInto is EvaluateLinearTransform writing into dst
// (resliced to the transform level; dst may alias ct). Returns dst.
func (ev *Evaluator) EvaluateLinearTransformInto(dst, ct *Ciphertext, lt *LinearTransform) *Ciphertext {
	ev.evalDoubleHoisted(dst, ct, lt)
	return dst
}

// EvaluateLinearTransformWithStats is EvaluateLinearTransform returning the
// per-call work counters (counted inline by the engine, not estimated).
func (ev *Evaluator) EvaluateLinearTransformWithStats(ct *Ciphertext, lt *LinearTransform) (*Ciphertext, LinTransStats) {
	out := NewCiphertext(ev.params, lt.Level)
	stats := ev.evalDoubleHoisted(out, ct, lt)
	return out, stats
}

// phaseSpan reports a timed engine sub-phase ("LinTrans/hoist", …) to the
// installed SpanObserver. Phase names carry a '/' so kind-based consumers
// (the trace recorder) can tell them apart from basic ops; the telemetry
// collector files them into its phase table. No observer, no work.
func (ev *Evaluator) phaseSpan(op string, level int, start time.Time) {
	if ev.spans != nil {
		ev.spans.ObserveSpan(op, level, time.Since(start), nil)
	}
}

// phaseStart timestamps a sub-phase only when someone is listening.
func (ev *Evaluator) phaseStart() (t time.Time) {
	if ev.spans != nil {
		t = time.Now()
	}
	return
}

// evalDoubleHoisted is the engine driver. One timed "LinTrans" op is
// reported per giant-step group — matching the accelerator model, whose
// trace.LinTrans profile prices one group — plus the '/'-tagged phase spans
// when a SpanObserver is installed.
func (ev *Evaluator) evalDoubleHoisted(dst, ct *Ciphertext, lt *LinearTransform) LinTransStats {
	if ct.Level < lt.Level {
		panic(fmt.Sprintf("ckks: transform needs level %d, ciphertext at %d", lt.Level, ct.Level))
	}
	if ct.Level > lt.Level {
		ct = ev.DropLevel(ct, lt.Level)
	}
	plan := lt.Plan()
	params := ev.params
	level := lt.Level
	scale := ct.Scale * lt.Scale

	if len(plan.groups) == 0 {
		// All-zero matrix: write a zero ciphertext without staging a copy.
		reshapeCt(dst, level)
		for i := range dst.C0.Coeffs {
			clear(dst.C0.Coeffs[i])
			clear(dst.C1.Coeffs[i])
		}
		dst.C0.IsNTT, dst.C1.IsNTT = true, true
		dst.Scale = scale
		return LinTransStats{BabySteps: 0, GiantSteps: 0}
	}
	if len(plan.galois) > 0 && ev.rtks == nil {
		panic("ckks: rotation requires rotation keys")
	}

	st := params.getLtState()
	defer st.release()
	st.reset(ev, plan, level)
	st.acquire()
	st.stats.BabySteps = len(plan.babySteps)
	st.stats.GiantSteps = len(plan.groups)

	t := ev.phaseStart()
	st.hoist(ct)
	ev.phaseSpan("LinTrans/hoist", level, t)

	t = ev.phaseStart()
	st.babyPhase(ct)
	ev.phaseSpan("LinTrans/baby", level, t)

	t = ev.phaseStart()
	st.giantPhase()
	ev.phaseSpan("LinTrans/giant", level, t)

	t = ev.phaseStart()
	st.finish(dst, scale)
	ev.phaseSpan("LinTrans/finish", level, t)

	return st.stats
}

// hoist runs the shared phase: the baby-step digit decomposition of ct.C1
// (skipped when the plan has no baby steps) and the scalar lift
// ctP0/ctP1 = P·ct over the Q rows — the lazy QP image of the identity
// rotation.
func (st *ltState) hoist(ct *Ciphertext) {
	ev := st.ev
	params := ev.params
	if len(st.plan.babySteps) > 0 {
		ev.decomposeHoistedInto(&st.hd, ct, false)
		st.stats.InverseNTTLimbs += st.qLimbs
		st.stats.NTTLimbs += params.Digits(st.level) * st.ext1
	}
	params.RingQ.MulScalarRNSParallel(st.ctP0, ct.C0, params.pModQ[:st.qLimbs], ev.pool)
	params.RingQ.MulScalarRNSParallel(st.ctP1, ct.C1, params.pModQ[:st.qLimbs], ev.pool)
	st.ctP0.IsNTT, st.ctP1.IsNTT = true, true
}

// babyPhase materializes each baby step as a lazy extended-basis rotation:
// the accumulate-only keyswitch replay, then the P·σ_g(c0) correction
// (NTT-domain Galois permutation of the raw c0 limb, multiply-added by the
// per-limb scalar [P]_{q_i}). P rows need no correction — P·x vanishes mod
// every p_j.
func (st *ltState) babyPhase(ct *Ciphertext) {
	ev := st.ev
	plan := st.plan
	if len(plan.babySteps) == 0 {
		return
	}
	rq := ev.params.RingQ
	st.srcC0 = ct.C0
	for k := range plan.babySteps {
		g := plan.babyGal[k]
		key, ok := ev.rtks.Keys[g]
		if !ok {
			panic(fmt.Sprintf("ckks: no rotation key for step %d (g=%d)", plan.babySteps[k], g))
		}
		ev.rotateHoistedAccum(&st.hd, g, key, st.babies[k])
		st.stats.KeySwitches++
		st.permQ = rq.NTTGaloisPermutation(g)
		st.cur = st.babies[k]
		if st.serial {
			for l := 0; l < st.qLimbs; l++ {
				st.babyC0Stage(l)
			}
		} else {
			ev.pool.ForEach(st.qLimbs, st.babyC0Stage)
		}
	}
	st.srcC0 = nil
	st.cur = qpAccum{}
}

func (st *ltState) babyC0Stage(l int) {
	params := st.ev.params
	rq := params.RingQ
	buf := rq.GetVec()
	ring.ApplyPermutationNTT(buf, st.srcC0.Coeffs[l], st.permQ)
	rq.Moduli[l].VecMulShoupAdd(st.cur.c0Q.Coeffs[l], buf, params.pModQ[l], params.pModQShoup[l])
	rq.PutVec(buf)
}

// giantPhase evaluates the groups in plan order. Each group MACs its
// diagonals against the lazy rotations over the full extended basis; a j=0
// group folds straight into the output accumulator, while a j≠0 group
// spends its single ModDown on the group c1, runs the giant rotation's
// keyswitch MACs into the output residues, and permute-adds the group c0.
func (st *ltState) giantPhase() {
	ev := st.ev
	params := ev.params
	rq, rp := params.RingQ, params.RingP
	digits := params.Digits(st.level)
	for gi := range st.plan.groups {
		g := &st.plan.groups[gi]
		sp := ev.beginOp("LinTrans")
		st.terms = g.terms
		st.stats.PlainMACs += len(g.terms)
		if st.strict {
			if st.serial {
				for i := 0; i < st.ext1; i++ {
					st.clearGrpStage(i)
				}
			} else {
				ev.pool.ForEach(st.ext1, st.clearGrpStage)
			}
		} else {
			st.wideG = params.getWide(2 * st.ext1)
		}
		if st.serial {
			for i := 0; i < st.ext1; i++ {
				st.groupMacStage(i)
			}
		} else {
			ev.pool.ForEach(st.ext1, st.groupMacStage)
		}

		if g.j == 0 {
			if st.serial {
				for i := 0; i < st.ext1; i++ {
					st.groupAddStage(i)
				}
			} else {
				ev.pool.ForEach(st.ext1, st.groupAddStage)
			}
		} else {
			key, ok := ev.rtks.Keys[g.gal]
			if !ok {
				panic(fmt.Sprintf("ckks: no rotation key for step %d (g=%d)", g.j, g.gal))
			}
			st.key = key
			st.permQ = rq.NTTGaloisPermutation(g.gal)
			st.permP = rp.NTTGaloisPermutation(g.gal)

			// Close the group c1 and leave the extended basis — the ONE
			// ModDown this group pays.
			if st.serial {
				for i := 0; i < st.ext1; i++ {
					st.groupC1Stage(i)
				}
				st.groupModDownChunk(0, st.n)
			} else {
				ev.pool.ForEach(st.ext1, st.groupC1Stage)
				ev.pool.ForEachChunk(st.n, st.groupModDownChunk)
			}
			st.stats.InverseNTTLimbs += st.ext1
			st.stats.ModDownSweeps++

			// Giant rotation: decompose the group c1 digit by digit, forward
			// transform, permute by σ_j, MAC against the rotation key —
			// accumulating straight into the output residues.
			if !st.strict {
				st.wideK = params.getWide(2 * st.ext1)
			}
			for d := 0; d < digits; d++ {
				st.d = d
				if st.wideK != nil && d > 0 && d%(numeric.MaxLazyProducts-1) == 0 {
					if st.serial {
						for i := 0; i < st.ext1; i++ {
							st.groupKsFoldStage(i)
						}
					} else {
						ev.pool.ForEach(st.ext1, st.groupKsFoldStage)
					}
				}
				if st.serial {
					st.groupDecomposeChunk(0, st.n)
					for i := 0; i < st.ext1; i++ {
						st.groupKsMacStage(i)
					}
				} else {
					ev.pool.ForEachChunk(st.n, st.groupDecomposeChunk)
					ev.pool.ForEach(st.ext1, st.groupKsMacStage)
				}
			}
			st.stats.NTTLimbs += digits * st.ext1
			st.stats.KeySwitches++
			if st.wideK != nil {
				if st.serial {
					for i := 0; i < st.ext1; i++ {
						st.groupKsAddStage(i)
					}
				} else {
					ev.pool.ForEach(st.ext1, st.groupKsAddStage)
				}
				params.putWide(st.wideK)
				st.wideK = nil
			}

			// The group c0 rides along as σ_j(c0_group) added in the
			// extended basis — no keyswitch, just the permutation.
			if st.serial {
				for i := 0; i < st.ext1; i++ {
					st.groupC0Stage(i)
				}
			} else {
				ev.pool.ForEach(st.ext1, st.groupC0Stage)
			}
		}
		if st.wideG != nil {
			params.putWide(st.wideG)
			st.wideG = nil
		}
		st.terms = nil
		ev.endOp("LinTrans", st.level, sp)
	}
}

func (st *ltState) clearGrpStage(i int) {
	clear(st.grp.row0(st.qLimbs, i))
	clear(st.grp.row1(st.qLimbs, i))
}

// ltMacBlock is the column-block width of the lazy plaintext-MAC loop: the
// four 128-bit accumulator half-rows of a block (hi/lo × c0/c1) occupy
// 4·ltMacBlock·8 B = 16 KiB, which stays L1-resident while the group's
// diagonals stream through it.
const ltMacBlock = 512

// resolveTerm returns the plaintext and lazy-rotation rows of term t on
// extended limb i, or ok=false for the nothing-to-add case (identity term,
// P limb).
func (st *ltState) resolveTerm(t *ltPlanTerm, i int) (ptc, r0, r1 []uint64, ok bool) {
	if i < st.qLimbs {
		ptc = t.pt.Value.Coeffs[i]
		if t.babyIdx < 0 {
			return ptc, st.ctP0.Coeffs[i], st.ctP1.Coeffs[i], true
		}
		b := &st.babies[t.babyIdx]
		return ptc, b.c0Q.Coeffs[i], b.c1Q.Coeffs[i], true
	}
	if t.babyIdx < 0 {
		return nil, nil, nil, false
	}
	r := i - st.qLimbs
	b := &st.babies[t.babyIdx]
	return t.ptP.Coeffs[r], b.c0P.Coeffs[r], b.c1P.Coeffs[r], true
}

// groupMacStage MACs every diagonal of the current group on extended limb
// i: lazy 128-bit columns in production (rows i for c0, ext1+i for c1),
// exact residues in st.grp under strict kernels. Identity terms read the
// precomputed P·ct image and contribute nothing on P limbs.
func (st *ltState) groupMacStage(i int) {
	params := st.ev.params
	mod := extModulus(params.RingQ, params.RingP, st.qLimbs, i)
	if st.strict {
		for k := range st.terms {
			ptc, r0, r1, ok := st.resolveTerm(&st.terms[k], i)
			if !ok {
				continue
			}
			macLimb(st.grp.row0(st.qLimbs, i), r0, ptc, mod)
			macLimb(st.grp.row1(st.qLimbs, i), r1, ptc, mod)
		}
		return
	}
	// Lazy path: column-blocked loop interchange. Streaming the full
	// accumulator rows (hi+lo, read+write, both ciphertext components) per
	// diagonal made the MAC phase memory-bound — roughly 4× the compulsory
	// traffic. Walking column blocks instead keeps the accumulator block
	// L1-resident across all of the group's diagonals, and the paired MAC
	// kernel loads each diagonal's plaintext block once for both ciphertext
	// rows. The per-coefficient MAC/fold sequence is unchanged, so the
	// result is bit-identical.
	hi0, lo0 := st.wideG.hi[i], st.wideG.lo[i]
	hi1, lo1 := st.wideG.hi[st.ext1+i], st.wideG.lo[st.ext1+i]
	for jlo := 0; jlo < st.n; jlo += ltMacBlock {
		jhi := jlo + ltMacBlock
		if jhi > st.n {
			jhi = st.n
		}
		bh0, bl0 := hi0[jlo:jhi], lo0[jlo:jhi]
		bh1, bl1 := hi1[jlo:jhi], lo1[jlo:jhi]
		cnt := 0
		for k := range st.terms {
			ptc, r0, r1, ok := st.resolveTerm(&st.terms[k], i)
			if !ok {
				continue
			}
			if cnt > 0 && cnt%(numeric.MaxLazyProducts-1) == 0 {
				mod.VecFoldWide(bh0, bl0)
				mod.VecFoldWide(bh1, bl1)
			}
			numeric.VecMACWidePair(bh0, bl0, bh1, bl1, r0[jlo:jhi], r1[jlo:jhi], ptc[jlo:jhi])
			cnt++
		}
	}
}

// groupAddStage folds a j=0 group straight into the output accumulator.
func (st *ltState) groupAddStage(i int) {
	params := st.ev.params
	mod := extModulus(params.RingQ, params.RingP, st.qLimbs, i)
	o0, o1 := st.out.row0(st.qLimbs, i), st.out.row1(st.qLimbs, i)
	if st.strict {
		addVec(mod, o0, st.grp.row0(st.qLimbs, i))
		addVec(mod, o1, st.grp.row1(st.qLimbs, i))
	} else {
		mod.VecReduceWideAdd(o0, st.wideG.hi[i], st.wideG.lo[i])
		mod.VecReduceWideAdd(o1, st.wideG.hi[st.ext1+i], st.wideG.lo[st.ext1+i])
	}
}

// groupC1Stage closes the group c1 on extended limb i and returns it to
// the coefficient domain, feeding the group's single ModDown.
func (st *ltState) groupC1Stage(i int) {
	params := st.ev.params
	rq, rp := params.RingQ, params.RingP
	dst := st.grp.row1(st.qLimbs, i)
	if !st.strict {
		st.wideG.reduce(extModulus(rq, rp, st.qLimbs, i), st.ext1+i, dst)
	}
	if i < st.qLimbs {
		rq.InverseLimb(i, dst)
	} else {
		rp.InverseLimb(i-st.qLimbs, dst)
	}
}

func (st *ltState) groupModDownChunk(lo, hi int) {
	md := st.ev.params.modDown[st.level]
	md.ModDown(rangeView(st.c1Std.Coeffs, lo, hi), rangeView(st.grp.c1Q.Coeffs, lo, hi), rangeView(st.grp.c1P.Coeffs, lo, hi))
}

func (st *ltState) groupDecomposeChunk(lo, hi int) {
	st.ev.params.decomposer.DecomposeAndExtend(
		st.level, st.d, rangeView(st.c1Std.Coeffs, lo, hi), rangeView(st.ext, lo, hi))
}

func (st *ltState) groupKsFoldStage(i int) {
	mod := extModulus(st.ev.params.RingQ, st.ev.params.RingP, st.qLimbs, i)
	st.wideK.fold(mod, i)
	st.wideK.fold(mod, st.ext1+i)
}

// groupKsMacStage processes extended limb i of the current digit of the
// giant rotation's keyswitch: forward NTT of the decomposed limb, Galois
// permutation through an arena staging vector, MAC against the digit keys.
// Strict kernels accumulate exact residues directly into the output rows;
// the lazy path defers through wideK.
func (st *ltState) groupKsMacStage(i int) {
	params := st.ev.params
	rq, rp := params.RingQ, params.RingP
	bd, ad := st.key.B[st.d], st.key.A[st.d]
	src := st.ext[i]
	buf := rq.GetVec()
	if i < st.qLimbs {
		rq.ForwardLimb(i, src)
		ring.ApplyPermutationNTT(buf, src, st.permQ)
		if st.strict {
			mod := rq.Moduli[i]
			macLimb(st.out.c0Q.Coeffs[i], buf, bd.Q.Coeffs[i], mod)
			macLimb(st.out.c1Q.Coeffs[i], buf, ad.Q.Coeffs[i], mod)
		} else {
			st.wideK.macPair(i, st.ext1+i, bd.Q.Coeffs[i], ad.Q.Coeffs[i], buf)
		}
	} else {
		j := i - st.qLimbs
		rp.ForwardLimb(j, src)
		ring.ApplyPermutationNTT(buf, src, st.permP)
		if st.strict {
			mod := rp.Moduli[j]
			macLimb(st.out.c0P.Coeffs[j], buf, bd.P.Coeffs[j], mod)
			macLimb(st.out.c1P.Coeffs[j], buf, ad.P.Coeffs[j], mod)
		} else {
			st.wideK.macPair(i, st.ext1+i, bd.P.Coeffs[j], ad.P.Coeffs[j], buf)
		}
	}
	rq.PutVec(buf)
}

// groupKsAddStage closes the lazy keyswitch columns of extended limb i into
// the output accumulator (one deferred Barrett reduction + modular add).
func (st *ltState) groupKsAddStage(i int) {
	params := st.ev.params
	mod := extModulus(params.RingQ, params.RingP, st.qLimbs, i)
	mod.VecReduceWideAdd(st.out.row0(st.qLimbs, i), st.wideK.hi[i], st.wideK.lo[i])
	mod.VecReduceWideAdd(st.out.row1(st.qLimbs, i), st.wideK.hi[st.ext1+i], st.wideK.lo[st.ext1+i])
}

// groupC0Stage closes the group c0 on extended limb i, permutes it by the
// giant rotation's Galois element, and adds it to the output accumulator.
func (st *ltState) groupC0Stage(i int) {
	params := st.ev.params
	rq, rp := params.RingQ, params.RingP
	mod := extModulus(rq, rp, st.qLimbs, i)
	src := st.grp.row0(st.qLimbs, i)
	if !st.strict {
		st.wideG.reduce(mod, i, src)
	}
	buf := rq.GetVec()
	if i < st.qLimbs {
		ring.ApplyPermutationNTT(buf, src, st.permQ)
	} else {
		ring.ApplyPermutationNTT(buf, src, st.permP)
	}
	addVec(mod, st.out.row0(st.qLimbs, i), buf)
	rq.PutVec(buf)
}

// finish closes the output accumulator: one inverse-NTT sweep over the
// extended basis, two ModDowns (c0, c1) into the destination, and the
// forward transforms of the result.
func (st *ltState) finish(dst *Ciphertext, scale float64) {
	ev := st.ev
	reshapeCt(dst, st.level)
	st.dst0, st.dst1 = dst.C0, dst.C1
	if st.serial {
		for t := 0; t < 2*st.ext1; t++ {
			st.finishInttStage(t)
		}
		st.finishModDownChunk(0, st.n)
		for t := 0; t < 2*st.qLimbs; t++ {
			st.finishNttStage(t)
		}
	} else {
		ev.pool.ForEach(2*st.ext1, st.finishInttStage)
		ev.pool.ForEachChunk(st.n, st.finishModDownChunk)
		ev.pool.ForEach(2*st.qLimbs, st.finishNttStage)
	}
	st.stats.InverseNTTLimbs += 2 * st.ext1
	st.stats.ModDownSweeps += 2
	st.stats.NTTLimbs += 2 * st.qLimbs
	dst.C0.IsNTT, dst.C1.IsNTT = true, true
	dst.Scale = scale
	st.dst0, st.dst1 = nil, nil
}

func (st *ltState) finishInttStage(t int) {
	params := st.ev.params
	rq, rp := params.RingQ, params.RingP
	c, i := t/st.ext1, t%st.ext1
	var row []uint64
	if c == 0 {
		row = st.out.row0(st.qLimbs, i)
	} else {
		row = st.out.row1(st.qLimbs, i)
	}
	if i < st.qLimbs {
		rq.InverseLimb(i, row)
	} else {
		rp.InverseLimb(i-st.qLimbs, row)
	}
}

func (st *ltState) finishModDownChunk(lo, hi int) {
	md := st.ev.params.modDown[st.level]
	md.ModDown(rangeView(st.dst0.Coeffs, lo, hi), rangeView(st.out.c0Q.Coeffs, lo, hi), rangeView(st.out.c0P.Coeffs, lo, hi))
	md.ModDown(rangeView(st.dst1.Coeffs, lo, hi), rangeView(st.out.c1Q.Coeffs, lo, hi), rangeView(st.out.c1P.Coeffs, lo, hi))
}

func (st *ltState) finishNttStage(t int) {
	rq := st.ev.params.RingQ
	if t < st.qLimbs {
		rq.ForwardLimb(t, st.dst0.Coeffs[t])
	} else {
		rq.ForwardLimb(t-st.qLimbs, st.dst1.Coeffs[t-st.qLimbs])
	}
}
