package ckks

import (
	"math/rand"
	"testing"
)

func TestCiphertextSerializationRoundTrip(t *testing.T) {
	tc := newTestContext(t)
	rng := rand.New(rand.NewSource(20))
	z := randomComplex(rng, tc.params.Slots, 1.0)
	ct := tc.encryptVec(z)

	data, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Ciphertext
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Level != ct.Level || back.Scale != ct.Scale {
		t.Error("metadata changed across serialization")
	}
	if !back.C0.Equal(ct.C0) || !back.C1.Equal(ct.C1) {
		t.Error("polynomial data changed across serialization")
	}
	// The deserialized ciphertext must decrypt to the same values.
	got := tc.enc.Decode(tc.decr.Decrypt(&back))
	assertClose(t, got, z, 1e-6, "decrypt after round trip")
}

func TestPlaintextSerializationRoundTrip(t *testing.T) {
	tc := newTestContext(t)
	rng := rand.New(rand.NewSource(21))
	z := randomComplex(rng, tc.params.Slots, 1.0)
	pt := tc.enc.Encode(z, tc.params.MaxLevel(), tc.params.Scale)

	data, err := pt.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Plaintext
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !back.Value.Equal(pt.Value) || back.Scale != pt.Scale || back.Level != pt.Level {
		t.Error("plaintext changed across serialization")
	}
	got := tc.enc.Decode(&back)
	assertClose(t, got, z, 1e-7, "decode after round trip")
}

func TestSecretKeySerializationRoundTrip(t *testing.T) {
	tc := newTestContext(t)
	data, err := tc.sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back SecretKey
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !back.Value.Q.Equal(tc.sk.Value.Q) || !back.Value.P.Equal(tc.sk.Value.P) {
		t.Error("secret key changed across serialization")
	}
	// A decryptor built from the deserialized key must work.
	rng := rand.New(rand.NewSource(22))
	z := randomComplex(rng, tc.params.Slots, 1.0)
	ct := tc.encryptVec(z)
	d2 := NewDecryptor(tc.params, &back)
	got := tc.enc.Decode(d2.Decrypt(ct))
	assertClose(t, got, z, 1e-6, "decrypt with deserialized key")
}

func TestSerializationErrors(t *testing.T) {
	tc := newTestContext(t)
	ct := tc.encr.EncryptZero(2, tc.params.Scale)
	data, _ := ct.MarshalBinary()

	var back Ciphertext
	if err := back.UnmarshalBinary(data[:10]); err == nil {
		t.Error("truncated header should error")
	}
	bad := append([]byte(nil), data...)
	bad[0] ^= 0xFF
	if err := back.UnmarshalBinary(bad); err == nil {
		t.Error("bad magic should error")
	}
	if err := back.UnmarshalBinary(data[:len(data)-8]); err == nil {
		t.Error("truncated payload should error")
	}
	if err := back.UnmarshalBinary(append(data, 0)); err == nil {
		t.Error("trailing bytes should error")
	}
	// Kind confusion: plaintext bytes into a ciphertext.
	pt := tc.enc.Encode(nil, 2, tc.params.Scale)
	pdata, _ := pt.MarshalBinary()
	if err := back.UnmarshalBinary(pdata); err == nil {
		t.Error("kind mismatch should error")
	}
}
