package ckks

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// Concurrency tests for the shared-evaluator contract. These are designed to
// FAIL UNDER `go test -race` if any shared state is written without
// synchronization: the lazily built caches (HFAuto maps, NTT Galois
// permutations, RNS digit extenders), the sync.Pool scratch allocators, and
// the worker pool's admission path. Without -race they also assert
// bit-identical results, so an unsynchronized cache that corrupts data (not
// just races benignly) fails everywhere.

// raceContext: one parameter set + one fully keyed evaluator, shared by all
// goroutines — the documented concurrent-use pattern.
type raceContext struct {
	params *Parameters
	enc    *Encoder
	encr   *Encryptor
	decr   *Decryptor
	ev     *Evaluator
}

func newRaceContext(t testing.TB) *raceContext {
	t.Helper()
	// Small ring so -race's ~10× slowdown stays tolerable; two special
	// primes so keyswitching has multiple digits.
	params, err := NewParameters(ParametersLiteral{
		LogN:     8,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	kgen := NewKeyGenerator(params, 42)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	rlk := kgen.GenRelinearizationKey(sk)
	rtk := kgen.GenRotationKeys(sk, []int{1, -1, 2, -2}, true)
	return &raceContext{
		params: params,
		enc:    NewEncoder(params),
		encr:   NewEncryptor(params, pk, 43),
		decr:   NewDecryptor(params, sk),
		ev:     NewEvaluator(params, rlk, rtk),
	}
}

// TestConcurrentEvaluationsShareEvaluator runs the full op mix on one
// evaluator from many goroutines, each against a serially precomputed
// expected result. Exercises: concurrent NTT table reads, concurrent lazy
// HFAuto/permutation cache fills (first touch of each Galois element races
// on purpose), pool reuse under contention, and the keyswitch scratch pools.
func TestConcurrentEvaluationsShareEvaluator(t *testing.T) {
	rc := newRaceContext(t)
	const goroutines = 8

	type job struct {
		ct   *Ciphertext
		want *Ciphertext
		name string
	}
	serial := rc.ev.WithWorkers(1)
	jobs := make([]job, goroutines)
	for i := range jobs {
		rng := rand.New(rand.NewSource(int64(100 + i)))
		z := randomComplex(rng, rc.params.Slots, 1.0)
		ct := rc.encr.Encrypt(rc.enc.Encode(z, rc.params.MaxLevel(), rc.params.Scale))
		step := []int{1, -1, 2, -2}[i%4]
		// Precompute the expected result serially, before any concurrency.
		x := serial.Rescale(serial.MulRelin(ct, ct))
		x = serial.Add(x, serial.Rotate(x, step))
		x = serial.Conjugate(x)
		jobs[i] = job{ct: ct, want: x, name: fmt.Sprintf("job%d/step%d", i, step)}
	}

	// Fresh evaluator so every lazy cache starts cold and the first fills
	// happen concurrently.
	ev := serial.WithWorkers(runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := range jobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j := jobs[i]
			step := []int{1, -1, 2, -2}[i%4]
			x := ev.Rescale(ev.MulRelin(j.ct, j.ct))
			x = ev.Add(x, ev.Rotate(x, step))
			x = ev.Conjugate(x)
			if x.Level != j.want.Level || x.Scale != j.want.Scale || !x.C0.Equal(j.want.C0) || !x.C1.Equal(j.want.C1) {
				errs[i] = fmt.Errorf("%s: concurrent result differs from serial precompute", j.name)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestConcurrentHoistedRotations hits the hoisting path — the heaviest user
// of pooled scratch (digit buffers, permutation vectors, accumulators) —
// from many goroutines at once on one shared evaluator.
func TestConcurrentHoistedRotations(t *testing.T) {
	rc := newRaceContext(t)
	steps := []int{1, -1, 2}
	rng := rand.New(rand.NewSource(21))
	z := randomComplex(rng, rc.params.Slots, 1.0)
	ct := rc.encr.Encrypt(rc.enc.Encode(z, rc.params.MaxLevel(), rc.params.Scale))
	want := rc.ev.WithWorkers(1).RotateHoisted(ct, steps)

	const goroutines = 6
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got := rc.ev.RotateHoisted(ct, steps)
			for _, s := range steps {
				g, w := got[s], want[s]
				if !g.C0.Equal(w.C0) || !g.C1.Equal(w.C1) {
					errs[i] = fmt.Errorf("goroutine %d: hoisted step %d differs", i, s)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestConcurrentEvaluatorVariants runs differently-configured views of the
// SAME underlying params/keys (WithWorkers shares everything but the pool)
// concurrently — the shape a server takes when it sizes pools per request
// class. All variants must agree bit-for-bit.
func TestConcurrentEvaluatorVariants(t *testing.T) {
	rc := newRaceContext(t)
	rng := rand.New(rand.NewSource(31))
	z := randomComplex(rng, rc.params.Slots, 1.0)
	ct := rc.encr.Encrypt(rc.enc.Encode(z, rc.params.MaxLevel(), rc.params.Scale))
	want := rc.ev.WithWorkers(1).Rescale(rc.ev.WithWorkers(1).MulRelin(ct, ct))

	workerCounts := []int{1, 2, 3, runtime.GOMAXPROCS(0), 16}
	var wg sync.WaitGroup
	errs := make([]error, len(workerCounts))
	for i, w := range workerCounts {
		wg.Add(1)
		go func(i, w int) {
			defer wg.Done()
			ev := rc.ev.WithWorkers(w)
			got := ev.Rescale(ev.MulRelin(ct, ct))
			if !got.C0.Equal(want.C0) || !got.C1.Equal(want.C1) {
				errs[i] = fmt.Errorf("workers=%d: result differs", w)
			}
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestConcurrentEncodeEvaluate mixes encoding (NTT on fresh polys) with
// evaluation on the same params object, checking the params-level scratch
// pools (extended-digit buffers) under cross-operation contention.
func TestConcurrentEncodeEvaluate(t *testing.T) {
	rc := newRaceContext(t)
	rng := rand.New(rand.NewSource(41))
	z := randomComplex(rng, rc.params.Slots, 1.0)
	ct := rc.encr.Encrypt(rc.enc.Encode(z, rc.params.MaxLevel(), rc.params.Scale))

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			local := rand.New(rand.NewSource(int64(50 + i)))
			for k := 0; k < 3; k++ {
				zz := randomComplex(local, rc.params.Slots, 1.0)
				pt := rc.enc.Encode(zz, rc.params.MaxLevel(), rc.params.Scale)
				_ = rc.ev.Rescale(rc.ev.MulPlain(ct, pt))
				_ = rc.ev.Rotate(ct, 2)
			}
		}(i)
	}
	wg.Wait()
}
