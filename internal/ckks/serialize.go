package ckks

import (
	"encoding/binary"
	"fmt"
	"math"

	"poseidon/internal/ring"
)

// Binary serialization for ciphertexts, plaintexts and secret keys: a
// little-endian framing with a magic/version header, suitable for moving
// encrypted data between the client and the (simulated) accelerator host.
//
// Layout (all little-endian uint64 unless noted):
//
//	magic | version | kind | scale(bits) | level | limbs | N | payload...
//
// Keys and parameters are regenerable from seeds, so only the data-plane
// objects are serialized.

const (
	serialMagic   = 0x504f534549444f4e // "POSEIDON"
	serialVersion = 1

	kindCiphertext = 1
	kindPlaintext  = 2
	kindSecretKey  = 3
)

// corruptErr builds a deserialization error wrapping ErrCorrupt, so every
// structural rejection — bad magic, truncation, implausible geometry — is
// matchable with errors.Is(err, ErrCorrupt) regardless of the detail text.
func corruptErr(format string, args ...any) error {
	return fmt.Errorf("ckks: %w: "+format, append([]any{ErrCorrupt}, args...)...)
}

type header struct {
	kind  uint64
	scale float64
	level int
	limbs int
	n     int
	isNTT bool
}

func putHeader(buf []byte, h header) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, serialMagic)
	buf = binary.LittleEndian.AppendUint64(buf, serialVersion)
	buf = binary.LittleEndian.AppendUint64(buf, h.kind)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(h.scale))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(h.level))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(h.limbs))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(h.n))
	ntt := uint64(0)
	if h.isNTT {
		ntt = 1
	}
	buf = binary.LittleEndian.AppendUint64(buf, ntt)
	return buf
}

const headerWords = 8

func parseHeader(data []byte) (header, []byte, error) {
	if len(data) < headerWords*8 {
		return header{}, nil, corruptErr("serialized object truncated (%d bytes)", len(data))
	}
	get := func(i int) uint64 { return binary.LittleEndian.Uint64(data[i*8:]) }
	if get(0) != serialMagic {
		return header{}, nil, corruptErr("bad magic %#x", get(0))
	}
	if get(1) != serialVersion {
		return header{}, nil, corruptErr("unsupported version %d", get(1))
	}
	h := header{
		kind:  get(2),
		scale: math.Float64frombits(get(3)),
		level: int(get(4)),
		limbs: int(get(5)),
		n:     int(get(6)),
		isNTT: get(7) == 1,
	}
	// Bound the geometry so hostile headers cannot trigger huge
	// allocations or integer overflow downstream.
	const maxN, maxLimbs = 1 << 20, 1 << 10
	if h.n < 1 || h.n > maxN || h.limbs < 1 || h.limbs > maxLimbs {
		return header{}, nil, corruptErr("implausible geometry n=%d limbs=%d", h.n, h.limbs)
	}
	if h.level < 0 || h.level >= maxLimbs {
		return header{}, nil, corruptErr("implausible level %d", h.level)
	}
	if math.IsNaN(h.scale) || math.IsInf(h.scale, 0) || h.scale <= 0 {
		return header{}, nil, corruptErr("invalid scale")
	}
	return h, data[headerWords*8:], nil
}

func putPoly(buf []byte, p *ring.Poly) []byte {
	for _, limb := range p.Coeffs {
		for _, v := range limb {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
	}
	return buf
}

func parsePoly(data []byte, limbs, n int, isNTT bool) (*ring.Poly, []byte, error) {
	need := limbs * n * 8
	if len(data) < need {
		return nil, nil, corruptErr("polynomial payload truncated")
	}
	backing := make([]uint64, limbs*n)
	p := &ring.Poly{Coeffs: make([][]uint64, limbs), IsNTT: isNTT}
	for i := 0; i < limbs; i++ {
		p.Coeffs[i] = backing[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			p.Coeffs[i][j] = binary.LittleEndian.Uint64(data[(i*n+j)*8:])
		}
	}
	return p, data[need:], nil
}

// MarshalBinary encodes the ciphertext.
func (ct *Ciphertext) MarshalBinary() ([]byte, error) {
	limbs := len(ct.C0.Coeffs)
	n := len(ct.C0.Coeffs[0])
	buf := make([]byte, 0, headerWords*8+2*limbs*n*8)
	buf = putHeader(buf, header{
		kind: kindCiphertext, scale: ct.Scale, level: ct.Level,
		limbs: limbs, n: n, isNTT: ct.C0.IsNTT,
	})
	buf = putPoly(buf, ct.C0)
	buf = putPoly(buf, ct.C1)
	return buf, nil
}

// UnmarshalBinary decodes into ct (overwriting it).
func (ct *Ciphertext) UnmarshalBinary(data []byte) error {
	h, rest, err := parseHeader(data)
	if err != nil {
		return err
	}
	if h.kind != kindCiphertext {
		return corruptErr("expected ciphertext, found kind %d", h.kind)
	}
	c0, rest, err := parsePoly(rest, h.limbs, h.n, h.isNTT)
	if err != nil {
		return err
	}
	c1, rest, err := parsePoly(rest, h.limbs, h.n, h.isNTT)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return corruptErr("%d trailing bytes", len(rest))
	}
	ct.C0, ct.C1, ct.Scale, ct.Level = c0, c1, h.scale, h.level
	return nil
}

// MarshalBinary encodes the plaintext.
func (pt *Plaintext) MarshalBinary() ([]byte, error) {
	limbs := len(pt.Value.Coeffs)
	n := len(pt.Value.Coeffs[0])
	buf := make([]byte, 0, headerWords*8+limbs*n*8)
	buf = putHeader(buf, header{
		kind: kindPlaintext, scale: pt.Scale, level: pt.Level,
		limbs: limbs, n: n, isNTT: pt.Value.IsNTT,
	})
	return putPoly(buf, pt.Value), nil
}

// UnmarshalBinary decodes into pt.
func (pt *Plaintext) UnmarshalBinary(data []byte) error {
	h, rest, err := parseHeader(data)
	if err != nil {
		return err
	}
	if h.kind != kindPlaintext {
		return corruptErr("expected plaintext, found kind %d", h.kind)
	}
	v, rest, err := parsePoly(rest, h.limbs, h.n, h.isNTT)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return corruptErr("%d trailing bytes", len(rest))
	}
	pt.Value, pt.Scale, pt.Level = v, h.scale, h.level
	return nil
}

// MarshalBinary encodes the secret key (both basis parts).
func (sk *SecretKey) MarshalBinary() ([]byte, error) {
	limbsQ := len(sk.Value.Q.Coeffs)
	limbsP := len(sk.Value.P.Coeffs)
	n := len(sk.Value.Q.Coeffs[0])
	buf := make([]byte, 0, headerWords*8+8+(limbsQ+limbsP)*n*8)
	buf = putHeader(buf, header{
		kind: kindSecretKey, scale: 1, level: limbsQ - 1, limbs: limbsQ, n: n, isNTT: true,
	})
	buf = binary.LittleEndian.AppendUint64(buf, uint64(limbsP))
	buf = putPoly(buf, sk.Value.Q)
	buf = putPoly(buf, sk.Value.P)
	return buf, nil
}

// UnmarshalBinary decodes into sk.
func (sk *SecretKey) UnmarshalBinary(data []byte) error {
	h, rest, err := parseHeader(data)
	if err != nil {
		return err
	}
	if h.kind != kindSecretKey {
		return corruptErr("expected secret key, found kind %d", h.kind)
	}
	if len(rest) < 8 {
		return corruptErr("secret key truncated")
	}
	limbsP := int(binary.LittleEndian.Uint64(rest))
	rest = rest[8:]
	// limbsP rides outside the validated header, so it gets the same
	// plausibility bound: an attacker-chosen value must not be able to
	// overflow the size arithmetic in parsePoly or drive a huge make().
	if limbsP < 1 || limbsP > 1<<10 {
		return corruptErr("implausible secret key limbsP=%d", limbsP)
	}
	q, rest, err := parsePoly(rest, h.limbs, h.n, true)
	if err != nil {
		return err
	}
	p, rest, err := parsePoly(rest, limbsP, h.n, true)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return corruptErr("%d trailing bytes", len(rest))
	}
	sk.Value = PolyQP{Q: q, P: p}
	return nil
}
