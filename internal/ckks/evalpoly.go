package ckks

import (
	"fmt"
	"math"
)

// EvalPoly evaluates a polynomial Σ coeffs[k]·x^k (standard power basis,
// real coefficients) on every slot of ct, using a balanced product tree
// with exact scale management. Depth is ~2·ceil(log2 degree) levels; for
// high degrees or wide input ranges prefer EvalChebyshev, which is better
// conditioned.
func (ev *Evaluator) EvalPoly(ct *Ciphertext, coeffs []float64) *Ciphertext {
	degree := len(coeffs) - 1
	for degree > 0 && coeffs[degree] == 0 {
		degree--
	}
	coeffs = coeffs[:degree+1]
	if degree == 0 {
		out := ev.MulConstRescale(ct, 0)
		return ev.AddConst(out, complex(coeffs[0], 0))
	}
	e := &polyEval{ev: ev, target: ct.Scale, pow: map[int]*Ciphertext{1: ct}}
	return e.eval(coeffs)
}

// polyEval shares the power basis x, x², x⁴, … across the product tree.
type polyEval struct {
	ev     *Evaluator
	target float64
	pow    map[int]*Ciphertext
}

// power returns x^k, built by halving (keeps depth logarithmic).
func (e *polyEval) power(k int) *Ciphertext {
	if p, ok := e.pow[k]; ok {
		return p
	}
	ha := k / 2
	hb := k - ha
	p := e.mulExact(e.power(ha), e.power(hb))
	e.pow[k] = p
	return p
}

// mulExact multiplies two ciphertexts back to the canonical scale
// (two levels, same construction as the Chebyshev evaluator).
func (e *polyEval) mulExact(a, b *Ciphertext) *Ciphertext {
	ev := e.ev
	p := ev.MulRelin(a, b)
	if p.Level < 2 {
		panic(fmt.Sprintf("ckks: EvalPoly out of levels at level %d", p.Level))
	}
	ql := float64(ev.params.Q[p.Level])
	ql1 := float64(ev.params.Q[p.Level-1])
	cscale := e.target * ql * ql1 / p.Scale
	pt := ev.encodeConst(1, p.Level, cscale)
	// Destination-passing chain: p is fresh (owned here), so the correction
	// multiply and both rescales run in place without fresh ciphertexts.
	ev.MulPlainInto(p, p, pt)
	ev.RescaleInto(p, p)
	ev.RescaleInto(p, p)
	p.Scale = e.target
	return p
}

// eval evaluates by splitting at the largest power of two ≤ degree:
// p(x) = q(x)·x^m + r(x).
func (e *polyEval) eval(coeffs []float64) *Ciphertext {
	deg := len(coeffs) - 1
	for deg > 0 && math.Abs(coeffs[deg]) < 1e-300 {
		deg--
	}
	coeffs = coeffs[:deg+1]

	if deg <= 1 {
		if deg == 0 || coeffs[1] == 0 {
			out := e.ev.MulConstRescale(e.pow[1], 0)
			out.Scale = e.target
			return e.ev.AddConst(out, complex(coeffs[0], 0))
		}
		out := e.ev.MulConstRescale(e.pow[1], complex(coeffs[1], 0))
		out.Scale = e.target
		return e.ev.AddConst(out, complex(coeffs[0], 0))
	}
	m := 1
	for m*2 <= deg {
		m *= 2
	}
	q := coeffs[m:]
	r := coeffs[:m]
	qc := e.eval(append([]float64(nil), q...))
	rc := e.eval(append([]float64(nil), r...))
	out := e.mulExact(qc, e.power(m))
	return e.ev.Add(out, rc)
}
