package ckks

import (
	"fmt"
	"math"
)

// BootstrapConfig tunes the packed bootstrapping pipeline.
type BootstrapConfig struct {
	// K bounds the modular-overflow count |I| of the raised ciphertext;
	// the sine approximation covers [−K, K]. Larger K is safer but needs a
	// higher degree.
	K int
	// Degree of the Chebyshev expansion of sin(2πx)/(2π). Zero selects
	// ceil(2πK) + 40.
	Degree int
}

// Bootstrapper refreshes exhausted ciphertexts: ModRaise → CoeffToSlot →
// EvalMod (scaled sine) → SlotToCoeff, the paper's packed bootstrapping
// [30]. One Bootstrapper owns the two encoded DFT transforms and the
// evaluation keys they need.
type Bootstrapper struct {
	params *Parameters
	enc    *Encoder
	ev     *Evaluator
	cfg    BootstrapConfig

	ctsLT  *LinearTransform // E^{-1}/2, applied at the top level
	stcLT  *LinearTransform // E, applied after EvalMod
	coeffs []float64        // Chebyshev expansion of sin(2πx)/(2π)
}

// NewBootstrapper builds the transforms and generates the rotation keys the
// pipeline needs (using kgen/sk). The relinearization key is generated here
// too; the internal evaluator owns all key material.
func NewBootstrapper(params *Parameters, enc *Encoder, kgen *KeyGenerator, sk *SecretKey, cfg BootstrapConfig) (*Bootstrapper, error) {
	if cfg.K <= 0 {
		cfg.K = 40
	}
	if cfg.Degree == 0 {
		cfg.Degree = int(math.Ceil(2*math.Pi*float64(cfg.K))) + 40
	}
	b := &Bootstrapper{params: params, enc: enc, cfg: cfg}

	n := params.Slots
	// E: v ↦ slots (the decode FFT); E^{-1}: its inverse. Built by pushing
	// unit vectors through the encoder transforms.
	e := make([][]complex128, n)
	einv := make([][]complex128, n)
	for c := 0; c < n; c++ {
		unit := make([]complex128, n)
		unit[c] = 1
		fw := append([]complex128(nil), unit...)
		enc.specialFFT(fw)
		bw := append([]complex128(nil), unit...)
		enc.specialIFFT(bw)
		for r := 0; r < n; r++ {
			if e[r] == nil {
				e[r] = make([]complex128, n)
				einv[r] = make([]complex128, n)
			}
			e[r][c] = fw[r]
			einv[r][c] = bw[r] / 2 // fold the ½ of Re/Im extraction
		}
	}

	top := params.MaxLevel()
	var err error
	// Encode CtS diagonals at scale q_top so its rescale is scale-neutral.
	b.ctsLT, err = NewLinearTransform(enc, einv, top, float64(params.Q[top]))
	if err != nil {
		return nil, err
	}
	// StC level is only known at run time (depends on EvalMod's depth), so
	// encode at a safe low level and let evaluation drop to it; we pick
	// level 3 and require EvalMod to finish at ≥ 3.
	const stcLevel = 3
	b.stcLT, err = NewLinearTransform(enc, e, stcLevel, float64(params.Q[stcLevel]))
	if err != nil {
		return nil, err
	}

	b.coeffs = ChebyshevCoefficients(func(x float64) float64 {
		return math.Sin(2*math.Pi*x) / (2 * math.Pi)
	}, -float64(cfg.K), float64(cfg.K), cfg.Degree)

	// Keys: union of both transforms' rotations plus conjugation.
	rotSet := map[int]bool{}
	for _, r := range b.ctsLT.Rotations() {
		rotSet[r] = true
	}
	for _, r := range b.stcLT.Rotations() {
		rotSet[r] = true
	}
	rots := make([]int, 0, len(rotSet))
	for r := range rotSet {
		rots = append(rots, r)
	}
	rtks := kgen.GenRotationKeys(sk, rots, true)
	rlk := kgen.GenRelinearizationKey(sk)
	b.ev = NewEvaluator(params, rlk, rtks)
	return b, nil
}

// MinLevelBudget is the approximate number of levels the pipeline consumes.
func (b *Bootstrapper) MinLevelBudget() int {
	return 2*int(math.Ceil(math.Log2(float64(b.cfg.Degree)))) + 6
}

// ModRaise reinterprets a level-0 ciphertext modulo the full chain: the
// underlying plaintext becomes m + q0·I for a small integer polynomial I.
func (b *Bootstrapper) ModRaise(ct *Ciphertext) *Ciphertext {
	if ct.Level != 0 {
		ct = b.ev.DropLevel(ct, 0)
	}
	rq := b.params.RingQ
	c0 := ct.C0.CopyNew()
	c1 := ct.C1.CopyNew()
	rq.INTT(c0)
	rq.INTT(c1)

	top := b.params.MaxLevel()
	out := &Ciphertext{C0: rq.NewPoly(top + 1), C1: rq.NewPoly(top + 1), Scale: ct.Scale, Level: top}
	q0 := rq.Moduli[0]
	for j := 0; j < b.params.N; j++ {
		v0 := q0.Centered(c0.Coeffs[0][j])
		v1 := q0.Centered(c1.Coeffs[0][j])
		for i := 0; i <= top; i++ {
			out.C0.Coeffs[i][j] = rq.Moduli[i].ReduceSigned(v0)
			out.C1.Coeffs[i][j] = rq.Moduli[i].ReduceSigned(v1)
		}
	}
	rq.NTT(out.C0)
	rq.NTT(out.C1)
	return out
}

// CoeffToSlot moves the raised coefficients into slots, returning two
// ciphertexts holding the real coefficient halves (slot values M_j/Δ and
// M_{j+n}/Δ at scale Δ).
func (b *Bootstrapper) CoeffToSlot(ct *Ciphertext) (ct0, ct1 *Ciphertext) {
	ev := b.ev
	v := ev.EvaluateLinearTransform(ct, b.ctsLT)
	ev.RescaleInto(v, v) // scale returns to Δ (diagonals encoded at q_top); v is owned here
	vc := ev.Conjugate(v)
	ct0 = ev.Add(v, vc)            // Re(v)·2·(1/2) = M₀ part
	ct1 = ev.MulByI(ev.Sub(vc, v)) // Im(v) part: −i(v−v̄)/... = M₁
	return ct0, ct1
}

// EvalMod applies the scaled-sine approximation slot-wise, removing the
// q0·I overflow: input slots M/Δ at scale s, output slots (M mod q0)/Δ.
func (b *Bootstrapper) EvalMod(ct *Ciphertext) *Ciphertext {
	q0 := float64(b.params.Q[0])
	delta := b.params.Scale
	// Reinterpret so slots become x = M/q0 (free scale change).
	in := ct.CopyNew()
	in.Scale = ct.Scale * q0 / delta
	// g(x) = sin(2πx)/(2π) ≈ (M mod q0)/q0 for |m| ≪ q0.
	out := b.ev.EvalChebyshev(in, b.coeffs, -float64(b.cfg.K), float64(b.cfg.K))
	// Reinterpret back: slots (M mod q0)/q0 → (M mod q0)/Δ.
	out.Scale = out.Scale * delta / q0
	return out
}

// SlotToCoeff moves slot values back into coefficients: the result's
// coefficient vector is (slots(ct0), slots(ct1))·Δ.
func (b *Bootstrapper) SlotToCoeff(ct0, ct1 *Ciphertext) *Ciphertext {
	ev := b.ev
	v := ev.Add(ct0, ev.MulByI(ct1))
	out := ev.EvaluateLinearTransform(v, b.stcLT)
	return ev.RescaleInto(out, out) // out is owned here
}

// Bootstrap refreshes ct (level 0, scale Δ) to a high-level ciphertext
// encrypting the same plaintext. The output level is
// stcLevel−1 ≥ 2 fresh multiplicative levels.
func (b *Bootstrapper) Bootstrap(ct *Ciphertext) (*Ciphertext, error) {
	if !sameScale(ct.Scale, b.params.Scale) {
		return nil, fmt.Errorf("ckks: bootstrap expects scale Δ=%g, got %g", b.params.Scale, ct.Scale)
	}
	raised := b.ModRaise(ct)
	ct0, ct1 := b.CoeffToSlot(raised)
	ct0 = b.EvalMod(ct0)
	ct1 = b.EvalMod(ct1)
	if ct0.Level < b.stcLT.Level || ct1.Level < b.stcLT.Level {
		return nil, fmt.Errorf("ckks: EvalMod exhausted levels (at %d, need ≥ %d) — lengthen the chain",
			ct0.Level, b.stcLT.Level)
	}
	out := b.SlotToCoeff(ct0, ct1)
	out.Scale = b.params.Scale // residual bookkeeping drift is below noise
	return out, nil
}

// Evaluator exposes the bootstrapper's key-loaded evaluator (for chaining
// computation after a refresh in examples and tests).
func (b *Bootstrapper) Evaluator() *Evaluator { return b.ev }

// SetWorkers re-routes the bootstrapper's internal evaluator through a
// limb-parallel pool of n workers (see Evaluator.WithWorkers). Bootstrapping
// results are bit-identical for every worker count.
func (b *Bootstrapper) SetWorkers(n int) { b.ev = b.ev.WithWorkers(n) }
