package ckks

// OpObserver receives a callback for every basic operation the evaluator
// executes, with the level it ran at. Observers let application code be
// profiled into operation traces that the accelerator model can price —
// write the FHE program once, run it functionally, and cost it on the
// modeled hardware.
type OpObserver interface {
	Observe(op string, level int)
}

// SetObserver installs (or clears, with nil) the evaluator's observer.
func (ev *Evaluator) SetObserver(o OpObserver) { ev.observer = o }

func (ev *Evaluator) observe(op string, level int) {
	if ev.observer != nil {
		ev.observer.Observe(op, level)
	}
}
