package ckks

import (
	"context"
	rttrace "runtime/trace"
	"time"
)

// OpObserver receives a callback for every basic operation the evaluator
// executes, with the level it ran at. Observers let application code be
// profiled into operation traces that the accelerator model can price —
// write the FHE program once, run it functionally, and cost it on the
// modeled hardware.
type OpObserver interface {
	Observe(op string, level int)
}

// SpanObserver widens OpObserver to timed spans: the evaluator reports the
// measured wall time of each basic op, plus the error outcome for ops
// executed through the Try* surface (dur 0 for failed or count-only
// observations). Installing a SpanObserver via SetObserver switches the
// evaluator into timed mode: every basic op is wrapped in a nanosecond
// timestamp pair and a runtime/trace region named after the op, so
// execution traces (`go tool trace`) attribute time to FHE operators
// instead of Go internals. When no SpanObserver is installed, the timing
// path is a nil check — the zero-allocation gates in alloc_test.go run with
// observers off and still hold with a span observer on (after warm-up).
type SpanObserver interface {
	OpObserver
	ObserveSpan(op string, level int, dur time.Duration, err error)
}

// SetObserver installs (or clears, with nil) the evaluator's observer. An
// observer that also implements SpanObserver receives timed spans; a plain
// OpObserver keeps the legacy count-only callbacks.
func (ev *Evaluator) SetObserver(o OpObserver) {
	ev.observer = o
	ev.spans, _ = o.(SpanObserver)
}

// Observer returns the currently installed observer (nil if none) — so
// callers layering telemetry on top of an existing recorder can preserve it
// through Fanout.
func (ev *Evaluator) Observer() OpObserver { return ev.observer }

func (ev *Evaluator) observe(op string, level int) {
	if ev.observer != nil {
		ev.observer.Observe(op, level)
	}
}

// opSpan carries the per-op timing state between beginOp and endOp: the
// start timestamp and the runtime/trace region. It is a stack value — the
// span path performs zero heap allocations (StartRegion returns a shared
// no-op region while tracing is off).
type opSpan struct {
	start  time.Time
	region *rttrace.Region
}

// beginOp opens a timed span when a SpanObserver is installed; otherwise it
// is two nil checks and returns the zero span.
func (ev *Evaluator) beginOp(op string) (s opSpan) {
	if ev.spans != nil {
		s.region = rttrace.StartRegion(context.Background(), op)
		s.start = time.Now()
	}
	return
}

// endOp closes the span and reports it: a timed ObserveSpan when a
// SpanObserver opened the span, the legacy count-only Observe otherwise.
func (ev *Evaluator) endOp(op string, level int, s opSpan) {
	if sp := ev.spans; sp != nil && s.region != nil {
		d := time.Since(s.start)
		s.region.End()
		sp.ObserveSpan(op, level, d, nil)
		return
	}
	if o := ev.observer; o != nil {
		o.Observe(op, level)
	}
}

// observeTryErr reports a failed Try* operation to the span observer as a
// zero-duration errored span. Deferred (before recoverOp, so it runs after
// the panic→error translation) by every Try*Into method.
func (ev *Evaluator) observeTryErr(op string, level int, err *error) {
	if *err == nil {
		return
	}
	if sp := ev.spans; sp != nil {
		sp.ObserveSpan(op, level, 0, *err)
	}
}

// spanAdapter lifts a plain OpObserver to the SpanObserver interface by
// dropping the duration and error — the backward-compatible shim for code
// that needs a SpanObserver but holds a legacy observer.
type spanAdapter struct{ OpObserver }

func (a spanAdapter) ObserveSpan(op string, level int, _ time.Duration, _ error) {
	a.Observe(op, level)
}

// AsSpanObserver adapts any OpObserver to SpanObserver: observers that
// already implement it are returned unchanged, legacy observers are wrapped
// so they keep receiving count-only callbacks.
func AsSpanObserver(o OpObserver) SpanObserver {
	if s, ok := o.(SpanObserver); ok {
		return s
	}
	return spanAdapter{o}
}

// fanout broadcasts observations to several observers; it implements
// SpanObserver so that one timed measurement feeds a trace recorder and a
// telemetry collector simultaneously.
type fanout struct{ obs []OpObserver }

func (f *fanout) Observe(op string, level int) {
	for _, o := range f.obs {
		o.Observe(op, level)
	}
}

// ObserveRecovery forwards recovery outcomes to every member that
// implements RecoveryObserver. Without this, fanning a request-trace sink
// next to the telemetry collector would silently sever the collector's
// recovery feed — the evaluator type-asserts RecoveryObserver on whatever
// single observer is installed.
func (f *fanout) ObserveRecovery(op string, retries int, recovered bool, dur time.Duration) {
	for _, o := range f.obs {
		if r, ok := o.(RecoveryObserver); ok {
			r.ObserveRecovery(op, retries, recovered, dur)
		}
	}
}

func (f *fanout) ObserveSpan(op string, level int, dur time.Duration, err error) {
	for _, o := range f.obs {
		if s, ok := o.(SpanObserver); ok {
			s.ObserveSpan(op, level, dur, err)
		} else {
			o.Observe(op, level)
		}
	}
}

// Fanout combines observers into one: spans are timed once and delivered to
// every SpanObserver in the list, while plain OpObservers receive the legacy
// count-only callback. Nil entries are skipped; a single non-nil observer is
// returned as-is.
func Fanout(obs ...OpObserver) OpObserver {
	kept := make([]OpObserver, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &fanout{obs: kept}
}
