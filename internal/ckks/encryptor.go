package ckks

import (
	"fmt"
	"math/rand"

	"poseidon/internal/ring"
)

// Ciphertext is a degree-1 RNS-CKKS ciphertext in the NTT domain:
// decryption is C0 + C1·s.
type Ciphertext struct {
	C0, C1 *ring.Poly
	Scale  float64
	Level  int

	// seal holds the per-limb residue checksums recorded by
	// Evaluator.SealIntegrity; nil when the ciphertext is unsealed.
	// Invalidated whenever the ciphertext is used as an *Into destination.
	seal *integritySeal
}

// CopyNew deep-copies the ciphertext. The integrity seal, if any, is not
// carried over: seal the copy explicitly if it needs one.
func (ct *Ciphertext) CopyNew() *Ciphertext {
	return &Ciphertext{C0: ct.C0.CopyNew(), C1: ct.C1.CopyNew(), Scale: ct.Scale, Level: ct.Level}
}

// NewCiphertext allocates a zero ciphertext shell at the given level —
// the destination container for the *Into evaluator API. Scale is left 0;
// every Into method overwrites it.
func NewCiphertext(params *Parameters, level int) *Ciphertext {
	rq := params.RingQ
	return &Ciphertext{C0: rq.NewPoly(level + 1), C1: rq.NewPoly(level + 1), Level: level}
}

// prefix returns a view of the first `limbs` limbs of p (shared backing).
// At full width it returns p itself, so fixed-level operation chains never
// allocate view headers.
func prefix(p *ring.Poly, limbs int) *ring.Poly {
	if limbs == len(p.Coeffs) {
		return p
	}
	return &ring.Poly{Coeffs: p.Coeffs[:limbs], IsNTT: p.IsNTT}
}

// Encryptor encrypts plaintexts under a public key.
type Encryptor struct {
	params *Parameters
	pk     *PublicKey
	rng    *rand.Rand
}

// NewEncryptor creates an encryptor; seed fixes the encryption randomness.
func NewEncryptor(params *Parameters, pk *PublicKey, seed int64) *Encryptor {
	return &Encryptor{params: params, pk: pk, rng: rand.New(rand.NewSource(seed))}
}

func (e *Encryptor) smallPoly(limbs int, ternary bool) *ring.Poly {
	rq := e.params.RingQ
	coeffs := make([]int64, e.params.N)
	for i := range coeffs {
		if ternary {
			coeffs[i] = int64(e.rng.Intn(3)) - 1
		} else {
			g := e.rng.NormFloat64() * 3.2
			coeffs[i] = int64(g)
		}
	}
	p := embed(rq, coeffs, limbs)
	rq.NTT(p)
	return p
}

// Encrypt produces a fresh encryption of pt at pt.Level.
func (e *Encryptor) Encrypt(pt *Plaintext) *Ciphertext {
	rq := e.params.RingQ
	limbs := pt.Level + 1
	u := e.smallPoly(limbs, true)
	e0 := e.smallPoly(limbs, false)
	e1 := e.smallPoly(limbs, false)

	ct := &Ciphertext{
		C0:    rq.NewPoly(limbs),
		C1:    rq.NewPoly(limbs),
		Scale: pt.Scale,
		Level: pt.Level,
	}
	ct.C0.IsNTT, ct.C1.IsNTT = true, true
	rq.MulCoeffwise(ct.C0, prefix(e.pk.B, limbs), u)
	rq.Add(ct.C0, ct.C0, e0)
	rq.Add(ct.C0, ct.C0, pt.Value)
	rq.MulCoeffwise(ct.C1, prefix(e.pk.A, limbs), u)
	rq.Add(ct.C1, ct.C1, e1)
	return ct
}

// EncryptZero returns an encryption of zero at the given level and scale.
func (e *Encryptor) EncryptZero(level int, scale float64) *Ciphertext {
	pt := &Plaintext{Value: e.params.RingQ.NewPoly(level + 1), Scale: scale, Level: level}
	pt.Value.IsNTT = true
	return e.Encrypt(pt)
}

// Decryptor recovers plaintexts with the secret key.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewDecryptor creates a decryptor.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// Decrypt computes C0 + C1·s.
func (d *Decryptor) Decrypt(ct *Ciphertext) *Plaintext {
	rq := d.params.RingQ
	limbs := ct.Level + 1
	if len(ct.C0.Coeffs) != limbs {
		panic(fmt.Sprintf("ckks: ciphertext limbs %d != level+1 %d", len(ct.C0.Coeffs), limbs))
	}
	m := rq.NewPoly(limbs)
	m.IsNTT = true
	rq.MulCoeffwise(m, ct.C1, prefix(d.sk.Value.Q, limbs))
	rq.Add(m, m, ct.C0)
	return &Plaintext{Value: m, Scale: ct.Scale, Level: ct.Level}
}
