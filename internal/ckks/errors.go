package ckks

import (
	"errors"
	"fmt"
)

// Sentinel errors of the typed error surface. The Try* evaluator methods
// (safe.go) and the kit-level wrappers return these — wrapped in an *OpError
// carrying operation and limb context — instead of panicking, so callers
// dispatch with errors.Is:
//
//	if errors.Is(err, ckks.ErrIntegrity) { retry the batch }
var (
	// ErrLevelExhausted reports that the modulus chain cannot absorb the
	// operation: a rescale at level 0, or a scale that no longer fits under
	// the active chain product (the noise-budget guard fired).
	ErrLevelExhausted = errors.New("level exhausted")

	// ErrScaleMismatch reports operands whose scales differ where the
	// operation requires them equal (Add/Sub/AddPlain).
	ErrScaleMismatch = errors.New("scale mismatch")

	// ErrAliasedDestination reports a destination that shares storage with
	// an operand of an operation that cannot tolerate it (MulRelinInto).
	ErrAliasedDestination = errors.New("aliased destination")

	// ErrIntegrity reports a runtime integrity-guard failure: a residue
	// checksum that no longer matches its seal, or a redundant-limb
	// spot-check whose recomputation disagrees — the software analogue of a
	// detected hardware fault.
	ErrIntegrity = errors.New("integrity check failed")

	// ErrKeyMissing reports an operation that needs key material the
	// evaluator was not built with (relinearization or rotation keys).
	ErrKeyMissing = errors.New("required key missing")

	// ErrInvalidInput reports a malformed argument: nil ciphertext, a Level
	// inconsistent with the limb count, an undersized destination, a
	// non-power-of-two InnerSum width.
	ErrInvalidInput = errors.New("invalid input")

	// ErrCorrupt reports serialized bytes that fail structural validation
	// (bad magic, truncation, geometry outside the parameter caps).
	ErrCorrupt = errors.New("corrupt serialized data")

	// ErrInternal wraps a panic recovered at the Try* boundary that does not
	// map to a known sentinel — a bug, not a usage error.
	ErrInternal = errors.New("internal error")
)

// OpError is the typed error surface's carrier: which operation failed, at
// what level, on which limb (−1 when not limb-specific), wrapping the
// sentinel that classifies the failure.
type OpError struct {
	Op     string // operation name as observed in traces ("CMult", "Rescale", …)
	Level  int
	Limb   int // -1 when the failure is not limb-specific
	Err    error
	Detail string
}

// Error formats as "ckks: <op>: <sentinel> (<detail>) [level l, limb i]",
// dropping the level/limb clauses when they carry no information (-1).
func (e *OpError) Error() string {
	msg := fmt.Sprintf("ckks: %s: %v", e.Op, e.Err)
	if e.Detail != "" {
		msg += " (" + e.Detail + ")"
	}
	if e.Limb >= 0 {
		return fmt.Sprintf("%s [level %d, limb %d]", msg, e.Level, e.Limb)
	}
	if e.Level >= 0 {
		return fmt.Sprintf("%s [level %d]", msg, e.Level)
	}
	return msg
}

// Unwrap exposes the sentinel for errors.Is.
func (e *OpError) Unwrap() error { return e.Err }

// opErr builds an *OpError without limb context.
func opErr(op string, level int, sentinel error, format string, args ...any) *OpError {
	return &OpError{Op: op, Level: level, Limb: -1, Err: sentinel, Detail: fmt.Sprintf(format, args...)}
}

// recoverOp is the recovery boundary deferred by every Try* method: a panic
// raised anywhere in the operation body is translated into a returned error
// — an *OpError passes through as-is, anything else wraps ErrInternal — so
// the Try API never panics on malformed input. The panicking path of the
// direct *Into API is unaffected.
func recoverOp(op string, level int, err *error) {
	if r := recover(); r != nil {
		if oe, ok := r.(*OpError); ok {
			*err = oe
			return
		}
		*err = &OpError{Op: op, Level: level, Limb: -1, Err: ErrInternal, Detail: fmt.Sprint(r)}
	}
}
