package ckks

import (
	"math"
	"math/rand"
	"testing"
)

func TestNoiseEstimatorFreshCiphertext(t *testing.T) {
	tc := newTestContext(t)
	ne := NewNoiseEstimator(tc.params, tc.sk)
	rng := rand.New(rand.NewSource(40))
	z := randomComplex(rng, tc.params.Slots, 1.0)
	ct := tc.encryptVec(z)

	stats := ne.Measure(ct, z)
	if stats.MaxErr > 1e-6 {
		t.Errorf("fresh ciphertext error %g too large", stats.MaxErr)
	}
	if stats.MinBits < 20 {
		t.Errorf("fresh ciphertext precision %.1f bits, want ≥ 20", stats.MinBits)
	}
	if stats.AvgBits < stats.MinBits {
		t.Error("average precision cannot be worse than worst-case")
	}
	if stats.AvgErr > stats.MaxErr {
		t.Error("average error cannot exceed max error")
	}
}

func TestNoiseGrowsWithDepth(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, tc.rlk, nil)
	ne := NewNoiseEstimator(tc.params, tc.sk)
	rng := rand.New(rand.NewSource(41))
	z := randomComplex(rng, tc.params.Slots, 1.0)

	ct := tc.encryptVec(z)
	want := append([]complex128(nil), z...)
	prevBits := ne.Measure(ct, want).MinBits
	for d := 0; d < 3; d++ {
		ct = ev.Rescale(ev.MulRelin(ct, ct))
		for i := range want {
			want[i] *= want[i]
		}
		bits := ne.Measure(ct, want).MinBits
		if bits > prevBits+2 {
			t.Errorf("depth %d: precision improved from %.1f to %.1f bits (noise must grow)",
				d+1, prevBits, bits)
		}
		prevBits = bits
	}
	if prevBits < 5 {
		t.Errorf("depth-3 circuit retained only %.1f bits", prevBits)
	}
}

func TestBudgetBits(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, tc.rlk, nil)
	ct := tc.encr.EncryptZero(tc.params.MaxLevel(), tc.params.Scale)

	full := BudgetBits(tc.params, ct)
	if full <= 0 {
		t.Fatalf("fresh budget %.1f bits should be positive", full)
	}
	low := BudgetBits(tc.params, ev.DropLevel(ct, 0))
	if low >= full {
		t.Error("budget must shrink as levels drop")
	}
	// At level 0 with scale ≈ q0 the budget is nearly exhausted.
	if low > 15 {
		t.Errorf("level-0 budget %.1f bits unexpectedly high", low)
	}
	if math.IsNaN(full) || math.IsNaN(low) {
		t.Error("budget must be finite")
	}
}

func TestNoiseEstimatorEmptyReference(t *testing.T) {
	tc := newTestContext(t)
	ne := NewNoiseEstimator(tc.params, tc.sk)
	ct := tc.encr.EncryptZero(tc.params.MaxLevel(), tc.params.Scale)
	stats := ne.Measure(ct, nil)
	if stats.MaxErr != 0 || stats.AvgErr != 0 {
		t.Error("empty reference should yield zero stats")
	}
}
