package ckks

import (
	"math/rand"
	"testing"
)

// Zero-allocation gates for the steady-state loop the arena exists for: a
// serial evaluator running destination-passing ops at a fixed level must
// touch the Go heap zero times per op. testing.AllocsPerRun runs each op
// once as warm-up (lazy pool growth, Montgomery memoization, NTT Galois
// permutation tables all land there) and then demands exact zero.
//
// These gates are the PR's contract. If a change reintroduces a per-op
// allocation — a closure capturing loop state, a slice header escaping, a
// forgotten scratch Get without a pooled Put — this test names the op.

type allocFixture struct {
	params *Parameters
	ev     *Evaluator
	swk    *SwitchingKey
	ct1    *Ciphertext
	ct2    *Ciphertext
	pt     *Plaintext
}

// newAllocFixture builds a serial (Workers: 1) evaluator with all key
// material, two ciphertexts, and a plaintext at the top level.
func newAllocFixture(t testing.TB) *allocFixture {
	t.Helper()
	params, err := NewParameters(ParametersLiteral{
		LogN:     9,
		LogQ:     []int{55, 45, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	kgen := NewKeyGenerator(params, 42)
	sk := kgen.GenSecretKey()
	sk2 := kgen.GenSecretKey()
	rlk := kgen.GenRelinearizationKey(sk)
	rtk := kgen.GenRotationKeys(sk, []int{1}, true)
	swk := kgen.genSwitchingKey(sk.Value.Q, sk2)
	ev := NewEvaluator(params, rlk, rtk)

	rng := rand.New(rand.NewSource(17))
	enc := NewEncoder(params)
	pk := kgen.GenPublicKey(sk)
	encr := NewEncryptor(params, pk, 18)
	level := params.MaxLevel()
	ct1 := encr.Encrypt(enc.Encode(randomComplex(rng, params.Slots, 1.0), level, params.Scale))
	ct2 := encr.Encrypt(enc.Encode(randomComplex(rng, params.Slots, 1.0), level, params.Scale))
	pt := enc.Encode(randomComplex(rng, params.Slots, 1.0), level, params.Scale)
	return &allocFixture{params: params, ev: ev, swk: swk, ct1: ct1, ct2: ct2, pt: pt}
}

// TestZeroAllocSteadyState gates every destination-passing op at 0 heap
// allocations per run on a serial evaluator at fixed level.
func TestZeroAllocSteadyState(t *testing.T) {
	fx := newAllocFixture(t)
	ev, params := fx.ev, fx.params
	level := params.MaxLevel()

	out := NewCiphertext(params, level)
	outLow := NewCiphertext(params, level-1)
	mulIn := ev.MulPlain(fx.ct1, fx.pt) // fixed higher-scale input for RescaleInto

	cases := []struct {
		name string
		f    func()
	}{
		{"AddInto", func() { ev.AddInto(out, fx.ct1, fx.ct2) }},
		{"SubInto", func() { ev.SubInto(out, fx.ct1, fx.ct2) }},
		{"NegInto", func() { ev.NegInto(out, fx.ct1) }},
		{"AddPlainInto", func() { ev.AddPlainInto(out, fx.ct1, fx.pt) }},
		{"MulPlainInto", func() { ev.MulPlainInto(out, fx.ct1, fx.pt) }},
		{"MulRelinInto", func() { ev.MulRelinInto(out, fx.ct1, fx.ct2) }},
		{"RescaleInto", func() { ev.RescaleInto(outLow, mulIn) }},
		{"RotateInto", func() { ev.RotateInto(out, fx.ct1, 1) }},
		{"ConjugateInto", func() { ev.ConjugateInto(out, fx.ct1) }},
		{"KeySwitchInto", func() { ev.KeySwitchInto(out, fx.ct1, fx.swk) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if allocs := testing.AllocsPerRun(10, c.f); allocs != 0 {
				t.Errorf("%s: %v allocs/op, want 0", c.name, allocs)
			}
		})
	}
}

// TestZeroAllocChain gates the composed fixed-level loop (the benchalloc
// chain shape): multiply-relinearize, rescale, rotate, accumulate — all in
// pre-created containers.
func TestZeroAllocChain(t *testing.T) {
	fx := newAllocFixture(t)
	ev, params := fx.ev, fx.params
	level := params.MaxLevel()

	prod := NewCiphertext(params, level)
	dropped := NewCiphertext(params, level-1)
	rot := NewCiphertext(params, level-1)
	acc := NewCiphertext(params, level-1)
	chain := func() {
		ev.MulRelinInto(prod, fx.ct1, fx.ct2)
		ev.RescaleInto(dropped, prod)
		ev.RotateInto(rot, dropped, 1)
		ev.AddInto(acc, dropped, rot)
	}
	if allocs := testing.AllocsPerRun(10, chain); allocs != 0 {
		t.Errorf("MulRelin+Rescale+Rotate+Add chain: %v allocs/op, want 0", allocs)
	}
}

// TestArenaSteadyState checks the arena-level view of the same property:
// after warm-up, repeated ops are all recycles — no new arena slabs
// (Misses, BytesAllocated frozen) and no leaks (BytesInUse returns to its
// pre-op value).
func TestArenaSteadyState(t *testing.T) {
	fx := newAllocFixture(t)
	ev, params := fx.ev, fx.params
	out := NewCiphertext(params, params.MaxLevel())

	ev.MulRelinInto(out, fx.ct1, fx.ct2) // warm-up populates the free lists
	before := params.ArenaStats()
	for i := 0; i < 8; i++ {
		ev.MulRelinInto(out, fx.ct1, fx.ct2)
		ev.RotateInto(out, fx.ct1, 1)
		ev.KeySwitchInto(out, fx.ct1, fx.swk)
	}
	after := params.ArenaStats()
	if after.Misses != before.Misses {
		t.Errorf("arena misses grew %d → %d in steady state", before.Misses, after.Misses)
	}
	if after.BytesAllocated != before.BytesAllocated {
		t.Errorf("arena footprint grew %d → %d bytes in steady state", before.BytesAllocated, after.BytesAllocated)
	}
	if after.BytesInUse != before.BytesInUse {
		t.Errorf("arena leak: BytesInUse %d → %d", before.BytesInUse, after.BytesInUse)
	}
}
