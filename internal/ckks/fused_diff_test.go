package ckks

import (
	"fmt"
	"testing"
)

// Differential suite for the fused radix-2^k NTT kernels: every evaluator
// operation must be BIT-IDENTICAL between the plain radix-2 kernels (k=0,
// lazy and strict) and the fused plans at every supported degree. The modes
// run on ONE Parameters instance toggled via SetFusionDegree, so keys,
// encryption randomness, and inputs are literally the same objects — any
// coefficient difference is a kernel bug, not setup noise. This is the
// license for flipping fusion degrees freely in production: like worker
// counts and strictness, the fusion degree is an execution detail, never a
// numerical one.

// fusedDiffDegrees are the fusion degrees checked against the k=0 reference.
// k=3 is the dispatch sweet spot; k=4 exercises the generic (non-specialized)
// kernel path; k=1 degenerates to per-stage passes.
var fusedDiffDegrees = []int{1, 2, 3, 4}

// withFusionCkks runs f under fusion degree k and restores degree 0.
func withFusionCkks(t testing.TB, params *Parameters, k int, f func()) {
	t.Helper()
	if err := params.SetFusionDegree(k); err != nil {
		t.Fatalf("SetFusionDegree(%d): %v", k, err)
	}
	defer func() {
		if err := params.SetFusionDegree(0); err != nil {
			t.Fatalf("SetFusionDegree(0): %v", err)
		}
	}()
	f()
}

// TestFusedDiffEvaluatorOps is the differential table: every op × both
// parameter sets × k ∈ {1,2,3,4}, bit-compared against the k=0 lazy
// reference — which is itself pinned to the strict reference first, so the
// fused outputs are transitively proven against the fully reduced kernels.
func TestFusedDiffEvaluatorOps(t *testing.T) {
	for pname, params := range diffParamSets(t) {
		dc := newDiffContext(t, params)
		ct1, ct2, pt := dc.freshInputs(31)
		for _, op := range diffOps {
			want := op.run(dc.serial, ct1, ct2, pt, dc)
			var strict *Ciphertext
			withStrictCkks(params, true, func() {
				strict = op.run(dc.serial, ct1, ct2, pt, dc)
			})
			requireCtEqual(t, want, strict, op.name+" lazy vs strict baseline")
			for _, k := range fusedDiffDegrees {
				t.Run(fmt.Sprintf("%s/%s/k=%d", pname, op.name, k), func(t *testing.T) {
					var got *Ciphertext
					withFusionCkks(t, params, k, func() {
						got = op.run(dc.serial, ct1, ct2, pt, dc)
					})
					requireCtEqual(t, got, want, op.name)
				})
			}
		}
	}
}

// TestFusedDiffStrictPrecedence pins the dispatch priority: while strict
// kernels are selected, a nonzero fusion degree must not change the
// execution (strict > fused > lazy), and the flag must survive the round
// trip.
func TestFusedDiffStrictPrecedence(t *testing.T) {
	params := diffParamSets(t)["LogN8-L2"]
	dc := newDiffContext(t, params)
	ct1, ct2, pt := dc.freshInputs(37)

	var want *Ciphertext
	withStrictCkks(params, true, func() {
		want = dc.serial.MulRelin(ct1, ct2)
	})
	var got *Ciphertext
	withStrictCkks(params, true, func() {
		withFusionCkks(t, params, 3, func() {
			if params.FusionDegree() != 3 {
				t.Fatal("FusionDegree not reported while strict")
			}
			got = dc.serial.MulRelin(ct1, ct2)
		})
	})
	requireCtEqual(t, got, want, "strict+fused MulRelin")
	_ = pt
}

// TestFusedDiffIntoDirtyAndAliased runs the destination-passing forms under
// fusion: a dirty max-level destination (garbage residues, wrong
// bookkeeping) and an in-place aliased destination (out == a's copy) must
// both reproduce the k=0 allocating output bit-for-bit.
func TestFusedDiffIntoDirtyAndAliased(t *testing.T) {
	for pname, params := range diffParamSets(t) {
		dc := newDiffContext(t, params)
		ct1, ct2, pt := dc.freshInputs(41)
		for _, op := range intoOps {
			want := op.alloc(dc.serial, ct1, ct2, pt, dc)
			for _, k := range fusedDiffDegrees {
				t.Run(fmt.Sprintf("%s/%s/k=%d/dirty", pname, op.name, k), func(t *testing.T) {
					withFusionCkks(t, params, k, func() {
						out := dirtyDest(params, int64(1000+k))
						got := op.into(dc.serial, out, ct1, ct2, pt, dc)
						requireCtEqual(t, got, want, op.name+" into dirty dest")
					})
				})
				if op.name == "MulRelin" {
					continue // out aliasing an operand is the one forbidden mode
				}
				t.Run(fmt.Sprintf("%s/%s/k=%d/aliased", pname, op.name, k), func(t *testing.T) {
					withFusionCkks(t, params, k, func() {
						alias := ct1.CopyNew()
						got := op.into(dc.serial, alias, alias, ct2, pt, dc)
						requireCtEqual(t, got, want, op.name+" into aliased dest")
					})
				})
			}
		}
	}
}

// TestFusedDecryptIdentity is the end-to-end acceptance check: a multi-op
// chain evaluated under every fusion degree must decrypt to the exact same
// slot values as the radix-2 chain (the ciphertexts are bit-identical, so
// the decoded complex values must match exactly, not just approximately).
func TestFusedDecryptIdentity(t *testing.T) {
	for pname, params := range diffParamSets(t) {
		dc := newDiffContext(t, params)
		ct1, ct2, pt := dc.freshInputs(43)
		decr := NewDecryptor(params, dc.sk)

		chain := func(ev *Evaluator) *Ciphertext {
			x := ev.Rescale(ev.MulRelin(ct1, ct2))
			x = ev.Add(x, ev.Rotate(x, 1))
			_ = pt
			return ev.Rescale(ev.MulConst(x, complex(0.5, -0.5)))
		}

		wantCt := chain(dc.serial)
		want := dc.enc.Decode(decr.Decrypt(wantCt))
		for _, k := range fusedDiffDegrees {
			t.Run(fmt.Sprintf("%s/k=%d", pname, k), func(t *testing.T) {
				withFusionCkks(t, params, k, func() {
					gotCt := chain(dc.serial)
					requireCtEqual(t, gotCt, wantCt, "fused chain ciphertext")
					got := dc.enc.Decode(decr.Decrypt(gotCt))
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("slot %d: fused decrypt %v != plain %v", i, got[i], want[i])
						}
					}
				})
			})
		}
	}
}

// TestFusionDegreeLiteralFlag checks the ParametersLiteral plumbing, the
// range validation, and that a fused-from-birth instance produces the same
// ciphertext bits as one toggled after construction.
func TestFusionDegreeLiteralFlag(t *testing.T) {
	lit := ParametersLiteral{
		LogN:         8,
		LogQ:         []int{50, 40, 40},
		LogP:         []int{51},
		LogScale:     40,
		FusionDegree: 3,
	}
	params, err := NewParameters(lit)
	if err != nil {
		t.Fatal(err)
	}
	if params.FusionDegree() != 3 {
		t.Fatalf("FusionDegree literal flag not applied: got %d", params.FusionDegree())
	}
	if err := params.SetFusionDegree(0); err != nil {
		t.Fatal(err)
	}
	if params.FusionDegree() != 0 {
		t.Fatal("SetFusionDegree(0) did not clear the degree")
	}
	if err := params.SetFusionDegree(7); err == nil {
		t.Fatal("SetFusionDegree(7) should error")
	}
	if err := params.SetFusionDegree(-1); err == nil {
		t.Fatal("SetFusionDegree(-1) should error")
	}

	lit.FusionDegree = 9
	if _, err := NewParameters(lit); err == nil {
		t.Fatal("literal FusionDegree=9 should fail construction")
	}
}
