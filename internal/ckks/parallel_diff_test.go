package ckks

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// Differential suite for the limb-parallel execution engine: every evaluator
// operation must be BIT-IDENTICAL across worker counts. The workers=1
// evaluator is the reference; parallel evaluators (2 workers, GOMAXPROCS,
// and an oversubscribed pool) must reproduce its exact ciphertext
// coefficients, not just decrypt to close values. This is what licenses
// flipping worker counts freely in production: parallelism is an execution
// detail, never a numerical one.

// diffParamSets returns the parameter sets the differential table runs on:
// a shallow 3-limb set and a deeper, larger-ring set with two special primes
// (so the keyswitch digit loop has ≥2 digits and ModDown drops α=2 limbs).
func diffParamSets(t testing.TB) map[string]*Parameters {
	t.Helper()
	sets := map[string]ParametersLiteral{
		"LogN8-L2": {
			LogN:     8,
			LogQ:     []int{50, 40, 40},
			LogP:     []int{51},
			LogScale: 40,
		},
		"LogN9-L4-alpha2": {
			LogN:     9,
			LogQ:     []int{55, 45, 45, 45, 45},
			LogP:     []int{58, 58},
			LogScale: 45,
		},
	}
	out := map[string]*Parameters{}
	for name, lit := range sets {
		params, err := NewParameters(lit)
		if err != nil {
			t.Fatalf("params %s: %v", name, err)
		}
		out[name] = params
	}
	return out
}

// diffWorkerCounts are the parallel configurations checked against the
// serial reference: minimal parallelism, the shared default pool, and an
// oversubscribed pool (more workers than limbs, exercising the early-return
// and partial-claim paths).
func diffWorkerCounts() []int {
	return []int{2, runtime.GOMAXPROCS(0), 2*runtime.GOMAXPROCS(0) + 3}
}

// diffContext is the keyed setup shared by every differential case.
type diffContext struct {
	params *Parameters
	enc    *Encoder
	sk     *SecretKey
	swk    *SwitchingKey // switches to a fresh secret; exercises KeySwitch
	serial *Evaluator    // workers=1 reference
}

func newDiffContext(t testing.TB, params *Parameters) *diffContext {
	t.Helper()
	kgen := NewKeyGenerator(params, 42)
	sk := kgen.GenSecretKey()
	sk2 := kgen.GenSecretKey()
	rlk := kgen.GenRelinearizationKey(sk)
	rtk := kgen.GenRotationKeys(sk, []int{1, -1, 2}, true)
	return &diffContext{
		params: params,
		enc:    NewEncoder(params),
		sk:     sk,
		swk:    kgen.genSwitchingKey(sk.Value.Q, sk2),
		serial: NewEvaluator(params, rlk, rtk).WithWorkers(1),
	}
}

// freshInputs deterministically builds the operand ciphertexts/plaintext.
// Encryption itself is not under test, so inputs are built once and shared;
// operations never mutate their operands.
func (dc *diffContext) freshInputs(seed int64) (ct1, ct2 *Ciphertext, pt *Plaintext) {
	rng := rand.New(rand.NewSource(seed))
	kgen := NewKeyGenerator(dc.params, 42)
	pk := kgen.GenPublicKey(dc.sk)
	encr := NewEncryptor(dc.params, pk, seed+1)
	z1 := randomComplex(rng, dc.params.Slots, 1.0)
	z2 := randomComplex(rng, dc.params.Slots, 1.0)
	ct1 = encr.Encrypt(dc.enc.Encode(z1, dc.params.MaxLevel(), dc.params.Scale))
	ct2 = encr.Encrypt(dc.enc.Encode(z2, dc.params.MaxLevel(), dc.params.Scale))
	pt = dc.enc.Encode(randomComplex(rng, dc.params.Slots, 1.0), dc.params.MaxLevel(), dc.params.Scale)
	return ct1, ct2, pt
}

func requireCtEqual(t *testing.T, got, want *Ciphertext, msg string) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("%s: nil ciphertext (got=%v want=%v)", msg, got != nil, want != nil)
	}
	if got.Level != want.Level {
		t.Fatalf("%s: level %d != %d", msg, got.Level, want.Level)
	}
	if got.Scale != want.Scale {
		t.Fatalf("%s: scale %v != %v", msg, got.Scale, want.Scale)
	}
	if !got.C0.Equal(want.C0) {
		t.Fatalf("%s: C0 coefficients differ from serial reference", msg)
	}
	if !got.C1.Equal(want.C1) {
		t.Fatalf("%s: C1 coefficients differ from serial reference", msg)
	}
}

// diffOps is the operation table: each entry runs one evaluator op on fixed
// inputs. Each must be a pure function of (ev, inputs).
var diffOps = []struct {
	name string
	run  func(ev *Evaluator, ct1, ct2 *Ciphertext, pt *Plaintext, dc *diffContext) *Ciphertext
}{
	{"Add", func(ev *Evaluator, a, b *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
		return ev.Add(a, b)
	}},
	{"Sub", func(ev *Evaluator, a, b *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
		return ev.Sub(a, b)
	}},
	{"Neg", func(ev *Evaluator, a, _ *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
		return ev.Neg(a)
	}},
	{"AddPlain", func(ev *Evaluator, a, _ *Ciphertext, pt *Plaintext, _ *diffContext) *Ciphertext {
		return ev.AddPlain(a, pt)
	}},
	{"MulPlain", func(ev *Evaluator, a, _ *Ciphertext, pt *Plaintext, _ *diffContext) *Ciphertext {
		return ev.MulPlain(a, pt)
	}},
	{"MulRelin", func(ev *Evaluator, a, b *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
		return ev.MulRelin(a, b)
	}},
	{"Rescale", func(ev *Evaluator, a, _ *Ciphertext, pt *Plaintext, _ *diffContext) *Ciphertext {
		return ev.Rescale(ev.MulPlain(a, pt))
	}},
	{"Rotate+1", func(ev *Evaluator, a, _ *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
		return ev.Rotate(a, 1)
	}},
	{"Rotate-1", func(ev *Evaluator, a, _ *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
		return ev.Rotate(a, -1)
	}},
	{"Conjugate", func(ev *Evaluator, a, _ *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
		return ev.Conjugate(a)
	}},
	{"KeySwitch", func(ev *Evaluator, a, _ *Ciphertext, _ *Plaintext, dc *diffContext) *Ciphertext {
		return ev.KeySwitch(a, dc.swk)
	}},
	{"MulConst", func(ev *Evaluator, a, _ *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
		return ev.MulConst(a, complex(0.75, -1.25))
	}},
	{"MulConstRescale", func(ev *Evaluator, a, _ *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
		return ev.MulConstRescale(a, complex(-2.5, 0.5))
	}},
	{"AddConst", func(ev *Evaluator, a, _ *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
		return ev.AddConst(a, complex(1.5, -0.25))
	}},
	{"MulByI", func(ev *Evaluator, a, _ *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
		return ev.MulByI(a)
	}},
	{"MulRelinRescale", func(ev *Evaluator, a, b *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
		return ev.Rescale(ev.MulRelin(a, b))
	}},
	{"DeepChain", func(ev *Evaluator, a, b *Ciphertext, pt *Plaintext, _ *diffContext) *Ciphertext {
		// A multi-op chain: divergence anywhere surfaces at the end.
		x := ev.Rescale(ev.MulRelin(a, b))
		x = ev.Add(x, ev.Rotate(x, 1))
		return ev.Rescale(ev.MulConst(x, complex(0.5, 0.5)))
	}},
}

// TestParallelDiffEvaluatorOps is the differential table: every op × every
// parameter set × every worker count, bit-compared against workers=1.
func TestParallelDiffEvaluatorOps(t *testing.T) {
	for pname, params := range diffParamSets(t) {
		dc := newDiffContext(t, params)
		ct1, ct2, pt := dc.freshInputs(7)
		for _, op := range diffOps {
			want := op.run(dc.serial, ct1, ct2, pt, dc)
			for _, w := range diffWorkerCounts() {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", pname, op.name, w), func(t *testing.T) {
					ev := dc.serial.WithWorkers(w)
					got := op.run(ev, ct1, ct2, pt, dc)
					requireCtEqual(t, got, want, op.name)
				})
			}
		}
	}
}

// TestParallelDiffRotateHoisted checks the hoisted path (shared digit
// decomposition + per-rotation NTT-domain permutation) bit-for-bit against
// both the serial hoisted path and the serial one-shot Rotate.
func TestParallelDiffRotateHoisted(t *testing.T) {
	steps := []int{0, 1, -1, 2}
	for pname, params := range diffParamSets(t) {
		dc := newDiffContext(t, params)
		ct1, _, _ := dc.freshInputs(11)
		want := dc.serial.RotateHoisted(ct1, steps)
		for _, w := range diffWorkerCounts() {
			t.Run(fmt.Sprintf("%s/workers=%d", pname, w), func(t *testing.T) {
				got := dc.serial.WithWorkers(w).RotateHoisted(ct1, steps)
				if len(got) != len(want) {
					t.Fatalf("result count %d != %d", len(got), len(want))
				}
				for _, s := range steps {
					requireCtEqual(t, got[s], want[s], fmt.Sprintf("hoisted step %d", s))
				}
			})
		}
		// Hoisted must also agree with the plain per-rotation path.
		for _, s := range steps {
			requireCtEqual(t, want[s], dc.serial.Rotate(ct1, s), fmt.Sprintf("%s: hoisted vs Rotate(%d)", pname, s))
		}
	}
}

// TestParallelDiffDecrypts ties bit-identity back to semantics: the parallel
// evaluator's output decrypts to the same plaintext (trivially, since the
// ciphertexts are equal — this guards against a bug making both paths
// identically wrong in a way the scheme tests would catch).
func TestParallelDiffDecrypts(t *testing.T) {
	params := diffParamSets(t)["LogN8-L2"]
	dc := newDiffContext(t, params)
	ct1, ct2, _ := dc.freshInputs(13)
	decr := NewDecryptor(params, dc.sk)

	ev := dc.serial.WithWorkers(runtime.GOMAXPROCS(0))
	got := ev.Rescale(ev.MulRelin(ct1, ct2))

	rng := rand.New(rand.NewSource(13))
	z1 := randomComplex(rng, params.Slots, 1.0)
	z2 := randomComplex(rng, params.Slots, 1.0)
	want := make([]complex128, len(z1))
	for i := range want {
		want[i] = z1[i] * z2[i]
	}
	assertClose(t, dc.enc.Decode(decr.Decrypt(got)), want, 1e-4, "parallel MulRelin+Rescale decrypts")
}

// TestParametersWorkersOption checks the ParametersLiteral.Workers plumbing:
// an evaluator inherits the params' pool, and results remain bit-identical
// to the default-pool configuration.
func TestParametersWorkersOption(t *testing.T) {
	base := ParametersLiteral{
		LogN:     8,
		LogQ:     []int{50, 40, 40},
		LogP:     []int{51},
		LogScale: 40,
	}
	for _, workers := range []int{1, 2, 5} {
		lit := base
		lit.Workers = workers
		params, err := NewParameters(lit)
		if err != nil {
			t.Fatal(err)
		}
		if got := params.Workers(); got != workers {
			t.Fatalf("params.Workers()=%d want %d", got, workers)
		}
		kgen := NewKeyGenerator(params, 42)
		sk := kgen.GenSecretKey()
		rlk := kgen.GenRelinearizationKey(sk)
		ev := NewEvaluator(params, rlk, nil)
		if got := ev.Workers(); got != workers {
			t.Fatalf("evaluator inherited %d workers, want %d", got, workers)
		}

		pk := kgen.GenPublicKey(sk)
		encr := NewEncryptor(params, pk, 99)
		enc := NewEncoder(params)
		rng := rand.New(rand.NewSource(5))
		z := randomComplex(rng, params.Slots, 1.0)
		ct := encr.Encrypt(enc.Encode(z, params.MaxLevel(), params.Scale))
		got := ev.Rescale(ev.MulRelin(ct, ct))
		want := ev.WithWorkers(1).Rescale(ev.WithWorkers(1).MulRelin(ct, ct))
		requireCtEqual(t, got, want, fmt.Sprintf("params-level workers=%d", workers))
	}
}
