package ckks

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestChebyshevCoefficients(t *testing.T) {
	// Degree-1 fit of f(x)=x on [-1,1] is exactly T_1.
	cs := ChebyshevCoefficients(func(x float64) float64 { return x }, -1, 1, 3)
	if math.Abs(cs[1]-1) > 1e-12 || math.Abs(cs[0]) > 1e-12 || math.Abs(cs[3]) > 1e-12 {
		t.Errorf("linear fit coefficients wrong: %v", cs)
	}
	// sin fit must evaluate accurately.
	cs = ChebyshevCoefficients(math.Sin, -3, 3, 31)
	for _, x := range []float64{-3, -1.5, 0, 0.7, 2.9} {
		if got := EvalChebyshevScalar(cs, -3, 3, x); math.Abs(got-math.Sin(x)) > 1e-10 {
			t.Errorf("sin(%g): cheb %g want %g", x, got, math.Sin(x))
		}
	}
}

func TestChebDivIdentity(t *testing.T) {
	// Verify p(u) = q(u)·T_m(u) + r(u) numerically for random coefficients.
	rng := rand.New(rand.NewSource(1))
	coeffs := make([]float64, 23)
	for i := range coeffs {
		coeffs[i] = rng.Float64()*2 - 1
	}
	m := 8
	q, r := chebDiv(coeffs, m)
	for _, u := range []float64{-0.99, -0.5, 0, 0.3, 0.98} {
		lhs := EvalChebyshevScalar(coeffs, -1, 1, u)
		tm := math.Cos(float64(m) * math.Acos(u))
		rhs := EvalChebyshevScalar(q, -1, 1, u)*tm + EvalChebyshevScalar(r, -1, 1, u)
		if math.Abs(lhs-rhs) > 1e-9 {
			t.Errorf("u=%g: p=%g, q·T_m+r=%g", u, lhs, rhs)
		}
	}
}

func TestEvalChebyshevHomomorphic(t *testing.T) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     9,
		LogQ:     []int{55, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45},
		LogP:     []int{52, 52, 52},
		LogScale: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(params)
	kgen := NewKeyGenerator(params, 7)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	rlk := kgen.GenRelinearizationKey(sk)
	ev := NewEvaluator(params, rlk, nil)
	encr := NewEncryptor(params, pk, 8)
	decr := NewDecryptor(params, sk)

	// Evaluate sin on [-3, 3] with a degree-23 expansion (depth ~10).
	coeffs := ChebyshevCoefficients(math.Sin, -3, 3, 23)
	rng := rand.New(rand.NewSource(9))
	z := make([]complex128, params.Slots)
	for i := range z {
		z[i] = complex(rng.Float64()*6-3, 0)
	}
	pt := enc.Encode(z, params.MaxLevel(), params.Scale)
	ct := encr.Encrypt(pt)
	out := ev.EvalChebyshev(ct, coeffs, -3, 3)

	got := enc.Decode(decr.Decrypt(out))
	worst := 0.0
	for i := range z {
		want := math.Sin(real(z[i]))
		if e := cmplx.Abs(got[i] - complex(want, 0)); e > worst {
			worst = e
		}
	}
	if worst > 1e-4 {
		t.Errorf("homomorphic sin error %g", worst)
	}
}

func bootstrapParams(t testing.TB) *Parameters {
	t.Helper()
	logQ := []int{55}
	for i := 0; i < 27; i++ {
		logQ = append(logQ, 45)
	}
	params, err := NewParameters(ParametersLiteral{
		LogN:     9,
		LogQ:     logQ,
		LogP:     []int{52, 52, 52, 52, 52},
		LogScale: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	return params
}

func TestBootstrap(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrapping test is expensive")
	}
	params := bootstrapParams(t)
	enc := NewEncoder(params)
	kgen := NewKeyGenerator(params, 11)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	encr := NewEncryptor(params, pk, 12)
	decr := NewDecryptor(params, sk)

	boot, err := NewBootstrapper(params, enc, kgen, sk, BootstrapConfig{K: 28})
	if err != nil {
		t.Fatal(err)
	}

	// Message at level 0 — exhausted, needs a refresh.
	rng := rand.New(rand.NewSource(13))
	z := make([]complex128, params.Slots)
	for i := range z {
		z[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	pt := enc.Encode(z, 0, params.Scale)
	ct := encr.Encrypt(pt)

	refreshed, err := boot.Bootstrap(ct)
	if err != nil {
		t.Fatal(err)
	}
	if refreshed.Level < 2 {
		t.Errorf("refreshed level %d, want ≥ 2", refreshed.Level)
	}

	got := enc.Decode(decr.Decrypt(refreshed))
	worst := 0.0
	for i := range z {
		if e := cmplx.Abs(got[i] - z[i]); e > worst {
			worst = e
		}
	}
	t.Logf("bootstrap precision: max slot error %.3e (~%.1f bits)", worst, -math.Log2(worst))
	if worst > 1e-2 {
		t.Errorf("bootstrap error %g too large", worst)
	}

	// The refreshed ciphertext must support further multiplications.
	ev := boot.Evaluator()
	sq := ev.Rescale(ev.MulRelin(refreshed, refreshed))
	got2 := enc.Decode(decr.Decrypt(sq))
	worst2 := 0.0
	for i := range z {
		if e := cmplx.Abs(got2[i] - z[i]*z[i]); e > worst2 {
			worst2 = e
		}
	}
	if worst2 > 5e-2 {
		t.Errorf("post-bootstrap squaring error %g", worst2)
	}
}

func TestModRaisePreservesPlaintext(t *testing.T) {
	params := bootstrapParams(t)
	enc := NewEncoder(params)
	kgen := NewKeyGenerator(params, 14)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	encr := NewEncryptor(params, pk, 15)
	decr := NewDecryptor(params, sk)
	boot, err := NewBootstrapper(params, enc, kgen, sk, BootstrapConfig{K: 28, Degree: 20})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(16))
	z := randomComplex(rng, params.Slots, 1.0)
	pt := enc.Encode(z, 0, params.Scale)
	ct := encr.Encrypt(pt)
	raised := boot.ModRaise(ct)
	if raised.Level != params.MaxLevel() {
		t.Fatalf("raised level %d want %d", raised.Level, params.MaxLevel())
	}

	// Decrypting the raised ciphertext and reducing coefficients mod q0
	// must recover the original plaintext.
	dec := decr.Decrypt(raised)
	poly := dec.Value.CopyNew()
	params.RingQ.INTT(poly)
	q0 := params.RingQ.Moduli[0]
	level0 := params.RingQ.NewPoly(1)
	for j := 0; j < params.N; j++ {
		level0.Coeffs[0][j] = q0.Reduce(poly.Coeffs[0][j])
	}
	params.RingQ.NTT(level0)
	got := enc.Decode(&Plaintext{Value: level0, Scale: params.Scale, Level: 0})
	worst := 0.0
	for i := range z {
		if e := cmplx.Abs(got[i] - z[i]); e > worst {
			worst = e
		}
	}
	if worst > 1e-4 {
		t.Errorf("mod-raise round trip error %g", worst)
	}
}
