package ckks

import (
	"math"

	"poseidon/internal/ring"
)

// encodeConst builds a plaintext whose every slot equals c, at the given
// level. The returned plaintext's Scale is the *realized* integer scale so
// downstream bookkeeping stays consistent with the actual coefficients.
// A constant needs no FFT: slots all c ⇔ polynomial Re(c) + Im(c)·X^{N/2}.
func (ev *Evaluator) encodeConst(c complex128, level int, scale float64) *Plaintext {
	rq := ev.params.RingQ
	n := ev.params.Slots
	// Ephemeral: evaluator-internal constants are used once, so memoizing
	// their Montgomery image would be pure overhead.
	pt := &Plaintext{Value: rq.NewPoly(level + 1), Scale: scale, Level: level, ephemeral: true}
	re := int64(math.Round(real(c) * scale))
	im := int64(math.Round(imag(c) * scale))
	for i := 0; i <= level; i++ {
		pt.Value.Coeffs[i][0] = rq.Moduli[i].ReduceSigned(re)
		pt.Value.Coeffs[i][n] = rq.Moduli[i].ReduceSigned(im)
	}
	rq.NTTParallel(pt.Value, ev.pool)
	return pt
}

// MulConst multiplies every slot by the constant c. The constant is encoded
// at the next prime's size so a following Rescale restores the input scale;
// the returned ciphertext has scale ct.Scale·q_level and must be rescaled
// by the caller (or use MulConstRescale).
func (ev *Evaluator) MulConst(ct *Ciphertext, c complex128) *Ciphertext {
	constScale := float64(ev.params.Q[ct.Level])
	pt := ev.encodeConst(c, ct.Level, constScale)
	return ev.MulPlain(ct, pt)
}

// MulConstRescale multiplies by a constant and rescales, returning a
// ciphertext at level−1 with (approximately) the input scale.
func (ev *Evaluator) MulConstRescale(ct *Ciphertext, c complex128) *Ciphertext {
	return ev.Rescale(ev.MulConst(ct, c))
}

// MulConstToScale multiplies every slot by c and rescales so the result
// lands exactly on targetScale — the standard way to align the scales of
// two evaluation branches before adding them. The constant is encoded at
// scale targetScale·q_level/ct.Scale, which must be ≥ 1.
func (ev *Evaluator) MulConstToScale(ct *Ciphertext, c complex128, targetScale float64) *Ciphertext {
	cscale := targetScale * float64(ev.params.Q[ct.Level]) / ct.Scale
	if cscale < 1 {
		panic("ckks: MulConstToScale target too small for this level")
	}
	pt := ev.encodeConst(c, ct.Level, cscale)
	out := ev.Rescale(ev.MulPlain(ct, pt))
	out.Scale = targetScale
	return out
}

// AddConst adds the constant c to every slot without consuming a level.
func (ev *Evaluator) AddConst(ct *Ciphertext, c complex128) *Ciphertext {
	pt := ev.encodeConst(c, ct.Level, ct.Scale)
	pt.Scale = ct.Scale
	return ev.AddPlain(ct, pt)
}

// MulByI multiplies every slot by the imaginary unit i — a multiplication
// by the monomial X^{N/2}, which is a noise-free negacyclic coefficient
// shift: no scale change, no level consumed.
func (ev *Evaluator) MulByI(ct *Ciphertext) *Ciphertext {
	out := ct.CopyNew()
	rq := ev.params.RingQ
	rq.INTTParallel(out.C0, ev.pool)
	rq.INTTParallel(out.C1, ev.pool)
	ev.mulByMonomial(out.C0, ev.params.N/2)
	ev.mulByMonomial(out.C1, ev.params.N/2)
	rq.NTTParallel(out.C0, ev.pool)
	rq.NTTParallel(out.C1, ev.pool)
	return out
}

// mulByMonomial multiplies a coefficient-domain polynomial by X^k
// (0 ≤ k < 2N) in place, with negacyclic wraparound, one limb per task.
func (ev *Evaluator) mulByMonomial(p *ring.Poly, k int) {
	rq := ev.params.RingQ
	n := ev.params.N
	k = ((k % (2 * n)) + 2*n) % (2 * n)
	ev.pool.ForEach(len(p.Coeffs), func(i int) {
		mod := rq.Moduli[i]
		src := p.Coeffs[i]
		dst := rq.GetVec()
		for j := 0; j < n; j++ {
			t := j + k
			neg := false
			if t >= 2*n {
				t -= 2 * n
			}
			if t >= n {
				t -= n
				neg = true
			}
			if neg {
				dst[t] = mod.Neg(src[j])
			} else {
				dst[t] = src[j]
			}
		}
		copy(src, dst)
		rq.PutVec(dst)
	})
}
