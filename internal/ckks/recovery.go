package ckks

import (
	"errors"
	"sync/atomic"
	"time"
)

// Op-level fault recovery: the detect→recover half of the fault-tolerance
// story. PR 4's guards *detect* corruption (residue checksums at operator
// boundaries, the redundant-limb spot-check) and surface it as
// ErrIntegrity; with a RecoveryPolicy installed the evaluator additionally
// *re-executes* the failed operation from its inputs, which recovers every
// transient fault — an HBM word that scrubs clean on re-read, a datapath
// glitch that corrupted one attempt's scratch — while sticky corruption
// still fails after the attempt budget and propagates to the caller.
//
// Correctness rests on transactional destination semantics: with recovery
// armed, every attempt executes into arena scratch and the caller's
// destination is written only from a verified attempt. A failed attempt
// therefore never leaves a partially-written destination, and a
// destination that aliases an input never destroys the operand a retry
// needs. The scratch follows PR 3/4's panic-leak discipline: it is
// released on every exit path, including attempts that die in an injected
// panic.
//
// With no policy installed (the default) the Try* methods run exactly the
// pre-recovery direct path — no scratch, no copies, zero additional heap
// allocations — so the alloc gates hold unchanged.

// RecoveryPolicy configures transparent re-execution of Try* operations
// that fail with ErrIntegrity.
type RecoveryPolicy struct {
	// MaxAttempts is the total execution budget per operation, first try
	// included. Values ≤ 1 disable recovery.
	MaxAttempts int
	// OnRetry, when set, is called before each re-execution with the op
	// name, the attempt number about to run (2-based: the first retry is
	// attempt 2) and the error that failed the previous attempt.
	OnRetry func(op string, attempt int, err error)
}

// RecoveryStats counts recovery activity, exported into traces and the
// chaos campaign report.
type RecoveryStats struct {
	Attempts      uint64 // re-executions performed (first tries not counted)
	Recovered     uint64 // ops that succeeded after ≥1 re-execution
	Unrecoverable uint64 // ops that exhausted the budget still failing integrity
}

// RecoveryObserver extends the observer surface with op-level recovery
// outcomes: retries is the number of re-executions performed, recovered
// whether the op eventually succeeded, dur the wall time from first
// failure to final outcome. telemetry.Collector implements it.
type RecoveryObserver interface {
	ObserveRecovery(op string, retries int, recovered bool, dur time.Duration)
}

// recoveryState is shared by evaluators derived via WithWorkers (pointer
// copy), like guardState; a nil *recoveryState means recovery is off.
type recoveryState struct {
	policy                             RecoveryPolicy
	attempts, recovered, unrecoverable atomic.Uint64
}

// SetRecoveryPolicy installs (or, with nil or MaxAttempts ≤ 1, removes)
// the evaluator's recovery policy. The policy is shared with evaluators
// later derived via WithWorkers.
func (ev *Evaluator) SetRecoveryPolicy(p *RecoveryPolicy) {
	if p == nil || p.MaxAttempts <= 1 {
		ev.recovery = nil
		return
	}
	ev.recovery = &recoveryState{policy: *p}
}

// RecoveryPolicy returns a copy of the installed policy, or nil when
// recovery is off.
func (ev *Evaluator) RecoveryPolicy() *RecoveryPolicy {
	if ev.recovery == nil {
		return nil
	}
	p := ev.recovery.policy
	return &p
}

// RecoveryStats returns a snapshot of the recovery counters (zero value
// when recovery is off).
func (ev *Evaluator) RecoveryStats() RecoveryStats {
	r := ev.recovery
	if r == nil {
		return RecoveryStats{}
	}
	return RecoveryStats{
		Attempts:      r.attempts.Load(),
		Recovered:     r.recovered.Load(),
		Unrecoverable: r.unrecoverable.Load(),
	}
}

// observeRecovery reports one recovery outcome to the observer when it
// implements RecoveryObserver.
func (ev *Evaluator) observeRecovery(op string, retries int, recovered bool, dur time.Duration) {
	if ro, ok := ev.observer.(RecoveryObserver); ok {
		ro.ObserveRecovery(op, retries, recovered, dur)
	}
}

// attemptFunc is one guarded execution of an op into dst: input-boundary
// guard, the *Into kernel, and the spot-check. The caller owns sealing dst
// and the panic→error boundary around the call.
type attemptFunc func(dst *Ciphertext) error

// runAttempt executes one attempt inside its own recovery boundary, so an
// injected panic fails the attempt instead of the whole Try* call — the
// retry loop can inspect the error and re-execute.
func (ev *Evaluator) runAttempt(op string, level int, dst *Ciphertext, run attemptFunc) (err error) {
	defer recoverOp(op, level, &err)
	return run(dst)
}

// execTry is the shared tail of every Try*Into method: run the guarded
// attempt (with re-execution per the recovery policy), seal the verified
// result, and return it. level is the result level; out is the caller's
// destination.
func (ev *Evaluator) execTry(op string, level int, out *Ciphertext, run attemptFunc) (*Ciphertext, error) {
	rec := ev.recovery
	if rec == nil {
		// Direct path: execute straight into the caller's destination.
		if err := ev.runAttempt(op, level, out, run); err != nil {
			return nil, err
		}
		ev.guardSeal(out)
		return out, nil
	}
	return ev.execTryRecover(op, level, out, run)
}

// execTryRecover is the transactional retry path. Every attempt executes
// into arena scratch; only a verified attempt is copied into out.
func (ev *Evaluator) execTryRecover(op string, level int, out *Ciphertext, run attemptFunc) (res *Ciphertext, err error) {
	rec := ev.recovery
	rq := ev.params.RingQ
	scratch := &Ciphertext{C0: rq.GetPolyDirty(level + 1), C1: rq.GetPolyDirty(level + 1), Level: level}
	defer func() {
		rq.PutPoly(scratch.C0)
		rq.PutPoly(scratch.C1)
	}()

	var start time.Time
	for attempt := 1; ; attempt++ {
		err = ev.runAttempt(op, level, scratch, run)
		if err == nil {
			ev.commitScratch(out, scratch)
			ev.guardSeal(out)
			if attempt > 1 {
				rec.recovered.Add(1)
				ev.observeRecovery(op, attempt-1, true, time.Since(start))
			}
			return out, nil
		}
		if !errors.Is(err, ErrIntegrity) {
			return nil, err // not a fault-detection failure: retry cannot help
		}
		if attempt >= rec.policy.MaxAttempts {
			rec.unrecoverable.Add(1)
			if attempt > 1 {
				ev.observeRecovery(op, attempt-1, false, time.Since(start))
			}
			return nil, err
		}
		if attempt == 1 {
			start = time.Now()
		}
		rec.attempts.Add(1)
		if h := rec.policy.OnRetry; h != nil {
			h(op, attempt+1, err)
		}
	}
}

// commitScratch copies a verified attempt's result into the caller's
// destination. Sized writes through reshapeCt, like every *Into kernel;
// the seal is recomputed by the caller over the destination's own storage
// so it vouches for the copy, not the discarded scratch.
func (ev *Evaluator) commitScratch(out, scratch *Ciphertext) {
	reshapeCt(out, scratch.Level)
	for i := 0; i <= scratch.Level; i++ {
		copy(out.C0.Coeffs[i], scratch.C0.Coeffs[i])
		copy(out.C1.Coeffs[i], scratch.C1.Coeffs[i])
	}
	out.C0.IsNTT = scratch.C0.IsNTT
	out.C1.IsNTT = scratch.C1.IsNTT
	out.Scale = scratch.Scale
}

// retryVerify re-runs the input-boundary verification of ct under the
// recovery policy — the recovery path for operations whose failure mode is
// a corrupted *input* read rather than a corrupted execution (TryHoist's
// shared decomposition). Each re-verification re-reads every limb through
// the HBM hooks, which is exactly the read that lets a transient fault
// decay. firstErr is the verification failure that triggered the retry.
func (ev *Evaluator) retryVerify(op string, ct *Ciphertext, firstErr error) error {
	rec := ev.recovery
	if rec == nil || !errors.Is(firstErr, ErrIntegrity) {
		return firstErr
	}
	start := time.Now()
	err := firstErr
	for attempt := 2; attempt <= rec.policy.MaxAttempts; attempt++ {
		rec.attempts.Add(1)
		if h := rec.policy.OnRetry; h != nil {
			h(op, attempt, err)
		}
		if err = ev.verifySealed(op, ct); err == nil {
			rec.recovered.Add(1)
			ev.observeRecovery(op, attempt-1, true, time.Since(start))
			return nil
		}
		if !errors.Is(err, ErrIntegrity) {
			return err
		}
	}
	rec.unrecoverable.Add(1)
	ev.observeRecovery(op, rec.policy.MaxAttempts-1, false, time.Since(start))
	return err
}
