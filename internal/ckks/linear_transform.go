package ckks

import (
	"fmt"
	"math/cmplx"

	"poseidon/internal/numeric"
)

// LinearTransform is an encoded n×n slot-wise matrix multiplication,
// evaluated with the baby-step/giant-step diagonal method: the matrix is
// stored as its generalized diagonals, pre-rotated so evaluation needs only
// ~2·√n rotations.
type LinearTransform struct {
	N1    int // baby-step width
	Level int // evaluation level (input must be at this level)
	Scale float64

	// diag[d] is the plaintext of diagonal d (already rotated by −(d/N1)·N1
	// for the giant-step regrouping); nil for all-zero diagonals.
	diag map[int]*Plaintext
}

// Rotations returns the rotation steps required to evaluate the transform.
func (lt *LinearTransform) Rotations() []int {
	n1 := lt.N1
	seen := map[int]bool{}
	var rots []int
	for d := range lt.diag {
		i := d % n1
		j := d - i
		if i != 0 && !seen[i] {
			seen[i] = true
			rots = append(rots, i)
		}
		if j != 0 && !seen[j] {
			seen[j] = true
			rots = append(rots, j)
		}
	}
	return rots
}

// NewLinearTransform encodes matrix M (row-major, n×n with n = Slots) for
// evaluation at the given level. scale is the plaintext scale of the
// diagonals (the evaluation multiplies the ciphertext scale by it; rescale
// afterwards). Zero diagonals are skipped.
func NewLinearTransform(enc *Encoder, m [][]complex128, level int, scale float64) (*LinearTransform, error) {
	n := enc.params.Slots
	if len(m) != n {
		return nil, fmt.Errorf("ckks: matrix has %d rows, want %d", len(m), n)
	}
	n1 := 1
	for n1*n1 < n {
		n1 <<= 1
	}
	lt := &LinearTransform{N1: n1, Level: level, Scale: scale, diag: map[int]*Plaintext{}}

	diagVec := make([]complex128, n)
	for d := 0; d < n; d++ {
		nonZero := false
		for t := 0; t < n; t++ {
			v := m[t][(t+d)%n]
			diagVec[t] = v
			if cmplx.Abs(v) > 1e-14 {
				nonZero = true
			}
		}
		if !nonZero {
			continue
		}
		// Pre-rotate by −j·n1 for the giant-step factorization.
		j := (d / n1) * n1
		rot := make([]complex128, n)
		for t := 0; t < n; t++ {
			rot[t] = diagVec[((t-j)%n+n)%n]
		}
		lt.diag[d] = enc.Encode(rot, level, scale)
	}
	return lt, nil
}

// EvaluateLinearTransform applies lt to ct: the result encrypts M·slots(ct)
// with scale ct.Scale·lt.Scale (rescale afterwards). Requires the rotation
// keys reported by lt.Rotations().
func (ev *Evaluator) EvaluateLinearTransform(ct *Ciphertext, lt *LinearTransform) *Ciphertext {
	if ct.Level < lt.Level {
		panic(fmt.Sprintf("ckks: transform needs level %d, ciphertext at %d", lt.Level, ct.Level))
	}
	if ct.Level > lt.Level {
		ct = ev.DropLevel(ct, lt.Level)
	}
	n1 := lt.N1

	// Baby steps: rot_i(ct) for every inner index in use, computed with a
	// single hoisted decomposition of ct.
	var babySteps []int
	seen := map[int]bool{}
	for d := range lt.diag {
		i := d % n1
		if i != 0 && !seen[i] {
			seen[i] = true
			babySteps = append(babySteps, i)
		}
	}
	inner := map[int]*Ciphertext{0: ct}
	if len(babySteps) > 0 {
		for i, r := range ev.RotateHoisted(ct, babySteps) {
			inner[i] = r
		}
	}

	// Giant steps: group by j, multiply-accumulate, rotate group sums. Each
	// group sum Σ_i rot_i(ct)·diag_{j+i} is a fused lazy inner product (see
	// mulPlainSum); under StrictKernels it runs as the reference
	// MulPlain/Add chain. Both are bit-identical and report the same
	// operator counts.
	members := map[int][]ltTerm{}
	for d, pt := range lt.diag {
		i := d % n1
		j := d - i
		members[j] = append(members[j], ltTerm{ct: inner[i], pt: pt})
	}
	groups := map[int]*Ciphertext{}
	for j, terms := range members {
		groups[j] = ev.mulPlainSum(terms)
	}

	var out *Ciphertext
	for j, acc := range groups {
		if j != 0 {
			acc = ev.Rotate(acc, j)
		}
		if out == nil {
			out = acc
		} else {
			out = ev.Add(out, acc)
		}
	}
	if out == nil {
		// All-zero matrix: return an encryption-of-zero shaped result.
		z := ct.CopyNew()
		for i := range z.C0.Coeffs {
			for j := range z.C0.Coeffs[i] {
				z.C0.Coeffs[i][j] = 0
				z.C1.Coeffs[i][j] = 0
			}
		}
		z.Scale = ct.Scale * lt.Scale
		return z
	}
	return out
}

// ltTerm is one diagonal's contribution to a giant-step group sum.
type ltTerm struct {
	ct *Ciphertext
	pt *Plaintext
}

// mulPlainSum computes Σ_m terms[m].ct · terms[m].pt (a PMult digit sum).
// All terms must share one level and one ciphertext scale — the giant-step
// groups of a linear transform satisfy this by construction.
//
// The lazy path accumulates every product limb-wise into 128-bit columns
// and spends a single Barrett reduction per coefficient on the whole sum,
// instead of one reduction plus modular add per term; groups deeper than
// numeric.MaxLazyProducts fold mid-sum. Under StrictKernels it is the
// literal MulPlain/Add reference chain. Both paths emit identical operator
// traces: k PMult and k−1 HAdd for a k-term group.
func (ev *Evaluator) mulPlainSum(terms []ltTerm) *Ciphertext {
	rq := ev.params.RingQ
	if rq.StrictKernels() || len(terms) == 1 {
		out := ev.MulPlain(terms[0].ct, terms[0].pt)
		for _, t := range terms[1:] {
			out = ev.Add(out, ev.MulPlain(t.ct, t.pt))
		}
		return out
	}

	level := terms[0].ct.Level
	if terms[0].pt.Level < level {
		level = terms[0].pt.Level
	}
	qLimbs := level + 1
	scale := terms[0].ct.Scale * terms[0].pt.Scale
	out := &Ciphertext{C0: rq.NewPoly(qLimbs), C1: rq.NewPoly(qLimbs), Scale: scale, Level: level}

	// Rows [0, qLimbs) accumulate C0, rows [qLimbs, 2·qLimbs) C1. The
	// accumulator bank is recycled through the parameter set's free list.
	wide := ev.params.getWide(2 * qLimbs)
	ev.pool.ForEach(qLimbs, func(l int) {
		mod := rq.Moduli[l]
		for m, t := range terms {
			if m > 0 && m%(numeric.MaxLazyProducts-1) == 0 {
				wide.fold(mod, l)
				wide.fold(mod, qLimbs+l)
			}
			ptc := t.pt.Value.Coeffs[l]
			wide.mac(l, t.ct.C0.Coeffs[l], ptc)
			wide.mac(qLimbs+l, t.ct.C1.Coeffs[l], ptc)
		}
		wide.reduce(mod, l, out.C0.Coeffs[l])
		wide.reduce(mod, qLimbs+l, out.C1.Coeffs[l])
	})
	ev.params.putWide(wide)
	out.C0.IsNTT, out.C1.IsNTT = true, true

	// Operator-trace parity with the strict MulPlain/Add chain.
	for range terms {
		ev.observe("PMult", level)
	}
	for i := 1; i < len(terms); i++ {
		ev.observe("HAdd", level)
	}
	return out
}
