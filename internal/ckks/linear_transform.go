package ckks

import (
	"fmt"
	"math/cmplx"
	"sort"
	"sync"

	"poseidon/internal/numeric"
	"poseidon/internal/ring"
)

// LinearTransform is an encoded n×n slot-wise matrix multiplication,
// evaluated with the baby-step/giant-step diagonal method: the matrix is
// stored as its generalized diagonals, pre-rotated so evaluation needs only
// ~2·√n rotations. Diagonals are encoded over the extended basis Q·P as
// well, so the double-hoisted evaluation path can multiply them against
// lazy (not-yet-ModDowned) baby-step rotations; see double_hoist.go.
type LinearTransform struct {
	N1    int // baby-step width
	Level int // evaluation level (input must be at this level)
	Scale float64

	n int // ring degree, fixed at construction

	// diag[d] is the plaintext of diagonal d (already rotated by −(d/N1)·N1
	// for the giant-step regrouping); absent for all-zero diagonals.
	// diagP[d] is the same message encoded over the special primes P.
	diag  map[int]*Plaintext
	diagP map[int]*ring.Poly

	// plan caches the evaluation plan (diagonal grouping, Galois elements,
	// key layout), built once on first use.
	planMu sync.Mutex
	plan   *LinearTransformPlan
}

// LinearTransformPlan is the precomputed evaluation schedule of one
// transform: baby steps and giant-step groups in deterministic (sorted)
// order, with the Galois element of every rotation resolved once. Both
// evaluation paths (double-hoisted and per-rotation) run off the plan, so
// operator traces and telemetry spans are reproducible run-to-run.
type LinearTransformPlan struct {
	lt *LinearTransform
	n1 int

	babySteps []int    // sorted nonzero inner rotation steps
	babyGal   []uint64 // Galois element per baby step

	groups []ltGroup // giant-step groups, sorted by outer step j

	rotations []int    // all rotation steps, sorted ascending
	galois    []uint64 // distinct non-identity Galois elements, sorted
}

// ltGroup is one giant-step group: the diagonals sharing outer step j.
type ltGroup struct {
	j     int
	gal   uint64 // Galois element of the giant rotation (1 when j == 0)
	terms []ltPlanTerm
}

// ltPlanTerm is one diagonal's contribution to a group sum.
type ltPlanTerm struct {
	i       int // inner (baby) step
	babyIdx int // index into babySteps; −1 for i == 0 (the input itself)
	pt      *Plaintext
	ptP     *ring.Poly
}

// Plan returns the transform's cached evaluation plan, building it on first
// use. Safe for concurrent use.
func (lt *LinearTransform) Plan() *LinearTransformPlan {
	lt.planMu.Lock()
	defer lt.planMu.Unlock()
	if lt.plan == nil {
		lt.plan = lt.buildPlan()
	}
	return lt.plan
}

func (lt *LinearTransform) buildPlan() *LinearTransformPlan {
	n1 := lt.N1
	ds := make([]int, 0, len(lt.diag))
	for d := range lt.diag {
		ds = append(ds, d)
	}
	sort.Ints(ds)

	p := &LinearTransformPlan{lt: lt, n1: n1}

	// Baby steps, sorted, with a step → slot index for the group terms.
	seenBaby := map[int]bool{}
	for _, d := range ds {
		if i := d % n1; i != 0 && !seenBaby[i] {
			seenBaby[i] = true
			p.babySteps = append(p.babySteps, i)
		}
	}
	sort.Ints(p.babySteps)
	babyIdx := make(map[int]int, len(p.babySteps))
	p.babyGal = make([]uint64, len(p.babySteps))
	for k, s := range p.babySteps {
		babyIdx[s] = k
		p.babyGal[k] = galoisForRotation(s, lt.n)
	}

	// Giant-step groups: ds is sorted, so j = ⌊d/n1⌋·n1 is nondecreasing
	// and the terms of each group arrive in ascending inner-step order.
	for _, d := range ds {
		i := d % n1
		j := d - i
		if len(p.groups) == 0 || p.groups[len(p.groups)-1].j != j {
			p.groups = append(p.groups, ltGroup{j: j, gal: galoisForRotation(j, lt.n)})
		}
		g := &p.groups[len(p.groups)-1]
		bi := -1
		if i != 0 {
			bi = babyIdx[i]
		}
		g.terms = append(g.terms, ltPlanTerm{i: i, babyIdx: bi, pt: lt.diag[d], ptP: lt.diagP[d]})
	}

	p.rotations = append(p.rotations, p.babySteps...)
	for _, g := range p.groups {
		if g.j != 0 {
			p.rotations = append(p.rotations, g.j)
		}
	}
	sort.Ints(p.rotations)
	for _, s := range p.rotations {
		if g := galoisForRotation(s, lt.n); g != 1 {
			p.galois = append(p.galois, g)
		}
	}
	sort.Slice(p.galois, func(a, b int) bool { return p.galois[a] < p.galois[b] })
	return p
}

// Rotations returns the rotation steps the plan needs, sorted ascending.
func (p *LinearTransformPlan) Rotations() []int {
	return append([]int(nil), p.rotations...)
}

// GaloisElements returns the distinct non-identity Galois elements the plan
// needs keys for, sorted ascending — the exact key set a serving tenant
// should upload before submitting transform evaluations.
func (p *LinearTransformPlan) GaloisElements() []uint64 {
	return append([]uint64(nil), p.galois...)
}

// Rotations returns the rotation steps required to evaluate the transform,
// sorted ascending (delegates to the cached plan, so repeated calls are
// cheap and the order is reproducible).
func (lt *LinearTransform) Rotations() []int {
	return lt.Plan().Rotations()
}

// NewLinearTransform encodes matrix M (row-major, n×n with n = Slots) for
// evaluation at the given level, with the baby-step width chosen as the
// smallest power of two whose square covers the slot count. scale is the
// plaintext scale of the diagonals (the evaluation multiplies the
// ciphertext scale by it; rescale afterwards). Zero diagonals are skipped.
func NewLinearTransform(enc *Encoder, m [][]complex128, level int, scale float64) (*LinearTransform, error) {
	return NewLinearTransformBSGS(enc, m, level, scale, 0)
}

// NewLinearTransformBSGS is NewLinearTransform with an explicit baby-step
// width n1 (a power of two in [1, Slots]; 0 selects the default √n split).
// The double-hoisted path's baby steps cost no transforms, so widths above
// √n often win there — benchlinalg sweeps this.
func NewLinearTransformBSGS(enc *Encoder, m [][]complex128, level int, scale float64, n1 int) (*LinearTransform, error) {
	n := enc.params.Slots
	if len(m) != n {
		return nil, fmt.Errorf("ckks: matrix has %d rows, want %d", len(m), n)
	}
	for t := range m {
		if len(m[t]) != n {
			return nil, fmt.Errorf("ckks: matrix row %d has %d columns, want %d", t, len(m[t]), n)
		}
	}
	if n1 == 0 {
		n1 = 1
		for n1*n1 < n {
			n1 <<= 1
		}
	}
	if n1 < 1 || n1 > n || n1&(n1-1) != 0 {
		return nil, fmt.Errorf("ckks: baby-step width %d must be a power of two in [1, %d]", n1, n)
	}
	lt := &LinearTransform{
		N1: n1, Level: level, Scale: scale, n: enc.params.N,
		diag:  map[int]*Plaintext{},
		diagP: map[int]*ring.Poly{},
	}

	// One scratch vector serves every diagonal: the pre-rotation by −j·n1
	// is folded into the gather itself (rot[t] = diag_d[t−j]), so nothing
	// is copied — j=0 diagonals included — and all-zero diagonals cost one
	// scan. encodeQP clobbers the scratch in place; it is refilled each
	// iteration.
	rot := make([]complex128, n)
	for d := 0; d < n; d++ {
		j := (d / n1) * n1
		nonZero := false
		for t := 0; t < n; t++ {
			src := t - j
			if src < 0 {
				src += n
			}
			v := m[src][(src+d)%n]
			rot[t] = v
			if cmplx.Abs(v) > 1e-14 {
				nonZero = true
			}
		}
		if !nonZero {
			continue
		}
		pt, ptP := enc.encodeQP(rot, level, scale)
		lt.diag[d] = pt
		lt.diagP[d] = ptP
	}
	return lt, nil
}

// LinTransStats counts the work one linear-transform evaluation performed —
// the observable behind the benchlinalg gate. KeySwitches counts key-switch
// MAC pipelines (digit inner products against a switching key); the
// double-hoisted path runs the same number of MACs as the per-rotation
// baseline but collapses their basis reductions, which ModDownSweeps (one
// per rns.ModDown invocation) and the NTT limb counts make visible.
// PlainMACs counts per-diagonal plaintext multiply-accumulates (each one
// touches both ciphertext components).
type LinTransStats struct {
	BabySteps       int
	GiantSteps      int
	KeySwitches     int
	ModDownSweeps   int
	NTTLimbs        int
	InverseNTTLimbs int
	PlainMACs       int
}

// EvaluateLinearTransformPerRotation applies lt to ct with the per-rotation
// reference schedule: hoisted baby steps, then one full keyswitch (Rotate)
// per giant-step group. The result encrypts M·slots(ct) with scale
// ct.Scale·lt.Scale (rescale afterwards). Requires the rotation keys
// reported by lt.Rotations(). EvaluateLinearTransform is the double-hoisted
// production path; this one is kept as the differential baseline and for
// level-0 edge cases where the extended-basis traffic does not pay off.
func (ev *Evaluator) EvaluateLinearTransformPerRotation(ct *Ciphertext, lt *LinearTransform) *Ciphertext {
	out, _ := ev.evalPerRotation(ct, lt)
	return out
}

// EvaluateLinearTransformPerRotationWithStats is
// EvaluateLinearTransformPerRotation returning the per-call work counters.
func (ev *Evaluator) EvaluateLinearTransformPerRotationWithStats(ct *Ciphertext, lt *LinearTransform) (*Ciphertext, LinTransStats) {
	return ev.evalPerRotation(ct, lt)
}

func (ev *Evaluator) evalPerRotation(ct *Ciphertext, lt *LinearTransform) (*Ciphertext, LinTransStats) {
	if ct.Level < lt.Level {
		panic(fmt.Sprintf("ckks: transform needs level %d, ciphertext at %d", lt.Level, ct.Level))
	}
	if ct.Level > lt.Level {
		ct = ev.DropLevel(ct, lt.Level)
	}
	plan := lt.Plan()
	params := ev.params
	level := lt.Level
	qLimbs := level + 1
	ext1 := qLimbs + params.Alpha()
	digits := params.Digits(level)

	var stats LinTransStats
	stats.BabySteps = len(plan.babySteps)
	stats.GiantSteps = len(plan.groups)

	if len(plan.groups) == 0 {
		// All-zero matrix: a zero ciphertext is the result — fresh
		// containers are zero by construction, no copy-and-clear needed.
		z := NewCiphertext(params, level)
		z.C0.IsNTT, z.C1.IsNTT = true, true
		z.Scale = ct.Scale * lt.Scale
		return z, stats
	}

	// Baby steps in sorted order through one shared hoisted decomposition.
	inner := make([]*Ciphertext, len(plan.babySteps))
	if len(plan.babySteps) > 0 {
		h := ev.Hoist(ct)
		for k, s := range plan.babySteps {
			inner[k] = h.Rotate(s)
		}
		h.Release()
		// Shared phase: INTT of C0 and C1 copies, digit forward NTTs.
		stats.InverseNTTLimbs += 2 * qLimbs
		stats.NTTLimbs += digits * ext1
		// Per rotation: close accumulators, ModDown, transform out.
		nb := len(plan.babySteps)
		stats.KeySwitches += nb
		stats.ModDownSweeps += 2 * nb
		stats.InverseNTTLimbs += nb * 2 * ext1
		stats.NTTLimbs += nb * 3 * qLimbs
	}

	// Giant steps in sorted order: multiply-accumulate each group, rotate
	// its sum, add into the running result.
	var out *Ciphertext
	terms := make([]ltTerm, 0, len(plan.groups[0].terms))
	for _, g := range plan.groups {
		terms = terms[:0]
		for _, t := range g.terms {
			c := ct
			if t.babyIdx >= 0 {
				c = inner[t.babyIdx]
			}
			terms = append(terms, ltTerm{ct: c, pt: t.pt})
		}
		stats.PlainMACs += len(terms)
		acc := ev.mulPlainSum(terms)
		if g.j != 0 {
			acc = ev.Rotate(acc, g.j)
			// A full keyswitch per giant step: INTT both components,
			// per-digit decompose + forward NTT, close, ModDown, NTT out.
			stats.KeySwitches++
			stats.ModDownSweeps += 2
			stats.InverseNTTLimbs += 2*qLimbs + 2*ext1
			stats.NTTLimbs += digits*ext1 + 3*qLimbs
		}
		if out == nil {
			out = acc
		} else {
			out = ev.Add(out, acc)
		}
	}
	return out, stats
}

// ltTerm is one diagonal's contribution to a giant-step group sum.
type ltTerm struct {
	ct *Ciphertext
	pt *Plaintext
}

// mulPlainSum computes Σ_m terms[m].ct · terms[m].pt (a PMult digit sum).
// All terms must share one level and one ciphertext scale — the giant-step
// groups of a linear transform satisfy this by construction.
//
// The lazy path accumulates every product limb-wise into 128-bit columns
// and spends a single Barrett reduction per coefficient on the whole sum,
// instead of one reduction plus modular add per term; groups deeper than
// numeric.MaxLazyProducts fold mid-sum. Under StrictKernels it is the
// literal MulPlain/Add reference chain. Both paths emit identical operator
// traces: k PMult and k−1 HAdd for a k-term group.
func (ev *Evaluator) mulPlainSum(terms []ltTerm) *Ciphertext {
	rq := ev.params.RingQ
	if rq.StrictKernels() || len(terms) == 1 {
		out := ev.MulPlain(terms[0].ct, terms[0].pt)
		for _, t := range terms[1:] {
			out = ev.Add(out, ev.MulPlain(t.ct, t.pt))
		}
		return out
	}

	level := terms[0].ct.Level
	if terms[0].pt.Level < level {
		level = terms[0].pt.Level
	}
	qLimbs := level + 1
	scale := terms[0].ct.Scale * terms[0].pt.Scale
	out := &Ciphertext{C0: rq.NewPoly(qLimbs), C1: rq.NewPoly(qLimbs), Scale: scale, Level: level}

	// Rows [0, qLimbs) accumulate C0, rows [qLimbs, 2·qLimbs) C1. The
	// accumulator bank is recycled through the parameter set's free list.
	wide := ev.params.getWide(2 * qLimbs)
	ev.pool.ForEach(qLimbs, func(l int) {
		mod := rq.Moduli[l]
		for m, t := range terms {
			if m > 0 && m%(numeric.MaxLazyProducts-1) == 0 {
				wide.fold(mod, l)
				wide.fold(mod, qLimbs+l)
			}
			ptc := t.pt.Value.Coeffs[l]
			wide.macPair(l, qLimbs+l, t.ct.C0.Coeffs[l], t.ct.C1.Coeffs[l], ptc)
		}
		wide.reduce(mod, l, out.C0.Coeffs[l])
		wide.reduce(mod, qLimbs+l, out.C1.Coeffs[l])
	})
	ev.params.putWide(wide)
	out.C0.IsNTT, out.C1.IsNTT = true, true

	// Operator-trace parity with the strict MulPlain/Add chain.
	for range terms {
		ev.observe("PMult", level)
	}
	for i := 1; i < len(terms); i++ {
		ev.observe("HAdd", level)
	}
	return out
}
