package ckks

import "fmt"

// Sparse packing: encode a short vector of m slots (m a power of two
// dividing N/2) replicated across the full slot space. Rotations by
// multiples of m act within every copy simultaneously, and the replication
// makes rotate-and-sum reductions on short vectors cheap — the layout the
// workloads' sparse bootstraps assume.

// EncodeSparse embeds values (len ≤ m) replicated N/(2m) times.
func (e *Encoder) EncodeSparse(values []complex128, m, level int, scale float64) *Plaintext {
	n := e.params.Slots
	if m < 1 || m > n || m&(m-1) != 0 {
		panic(fmt.Sprintf("ckks: sparse slot count %d must be a power of two ≤ %d", m, n))
	}
	if len(values) > m {
		panic("ckks: more values than sparse slots")
	}
	full := make([]complex128, n)
	for c := 0; c < n/m; c++ {
		copy(full[c*m:], values)
	}
	return e.Encode(full, level, scale)
}

// DecodeSparse averages the replicas back into an m-slot vector, which
// also averages away independent per-replica noise.
func (e *Encoder) DecodeSparse(pt *Plaintext, m int) []complex128 {
	n := e.params.Slots
	if m < 1 || m > n || m&(m-1) != 0 {
		panic(fmt.Sprintf("ckks: sparse slot count %d must be a power of two ≤ %d", m, n))
	}
	full := e.Decode(pt)
	out := make([]complex128, m)
	copies := n / m
	for i := 0; i < m; i++ {
		var acc complex128
		for c := 0; c < copies; c++ {
			acc += full[c*m+i]
		}
		out[i] = acc / complex(float64(copies), 0)
	}
	return out
}

// Replicate spreads slot 0 of ct to every slot within each m-aligned block
// (a log2(m)-rotation broadcast), assuming slots 1..m-1 are zero — the
// inverse of the rotate-and-sum reduction. Requires rotation keys for the
// negative powers of two below m.
func (ev *Evaluator) Replicate(ct *Ciphertext, m int) *Ciphertext {
	if m < 1 || m&(m-1) != 0 {
		panic("ckks: replicate width must be a power of two")
	}
	acc := ct
	for s := 1; s < m; s <<= 1 {
		acc = ev.Add(acc, ev.Rotate(acc, -s))
	}
	return acc
}
