package ckks

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

// testContext bundles everything a scheme test needs.
type testContext struct {
	params *Parameters
	enc    *Encoder
	kgen   *KeyGenerator
	sk     *SecretKey
	pk     *PublicKey
	rlk    *RelinearizationKey
	encr   *Encryptor
	decr   *Decryptor
}

func newTestContext(t testing.TB) *testContext {
	t.Helper()
	params, err := NewParameters(ParametersLiteral{
		LogN:     10,
		LogQ:     []int{55, 45, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc := &testContext{params: params}
	tc.enc = NewEncoder(params)
	tc.kgen = NewKeyGenerator(params, 42)
	tc.sk = tc.kgen.GenSecretKey()
	tc.pk = tc.kgen.GenPublicKey(tc.sk)
	tc.rlk = tc.kgen.GenRelinearizationKey(tc.sk)
	tc.encr = NewEncryptor(params, tc.pk, 43)
	tc.decr = NewDecryptor(params, tc.sk)
	return tc
}

func (tc *testContext) encryptVec(z []complex128) *Ciphertext {
	pt := tc.enc.Encode(z, tc.params.MaxLevel(), tc.params.Scale)
	return tc.encr.Encrypt(pt)
}

func (tc *testContext) decryptVec(ct *Ciphertext) []complex128 {
	return tc.enc.Decode(tc.decr.Decrypt(ct))
}

func assertClose(t *testing.T, got, want []complex128, tol float64, msg string) {
	t.Helper()
	worst := 0.0
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > worst {
			worst = e
		}
	}
	if worst > tol {
		t.Errorf("%s: max error %g > %g", msg, worst, tol)
	}
}

func TestEncryptDecrypt(t *testing.T) {
	tc := newTestContext(t)
	rng := rand.New(rand.NewSource(1))
	z := randomComplex(rng, tc.params.Slots, 1.0)
	got := tc.decryptVec(tc.encryptVec(z))
	assertClose(t, got, z, 1e-6, "encrypt/decrypt")
}

func TestEncryptZero(t *testing.T) {
	tc := newTestContext(t)
	ct := tc.encr.EncryptZero(tc.params.MaxLevel(), tc.params.Scale)
	got := tc.decryptVec(ct)
	zero := make([]complex128, tc.params.Slots)
	assertClose(t, got, zero, 1e-6, "encrypt zero")
}

func TestHAddCiphertext(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, tc.rlk, nil)
	rng := rand.New(rand.NewSource(2))
	z1 := randomComplex(rng, tc.params.Slots, 1.0)
	z2 := randomComplex(rng, tc.params.Slots, 1.0)
	want := make([]complex128, len(z1))
	for i := range want {
		want[i] = z1[i] + z2[i]
	}
	got := tc.decryptVec(ev.Add(tc.encryptVec(z1), tc.encryptVec(z2)))
	assertClose(t, got, want, 1e-6, "HAdd ct+ct")

	// Sub and Neg as well.
	for i := range want {
		want[i] = z1[i] - z2[i]
	}
	got = tc.decryptVec(ev.Sub(tc.encryptVec(z1), tc.encryptVec(z2)))
	assertClose(t, got, want, 1e-6, "HSub")

	for i := range want {
		want[i] = -z1[i]
	}
	got = tc.decryptVec(ev.Neg(tc.encryptVec(z1)))
	assertClose(t, got, want, 1e-6, "Neg")
}

func TestHAddPlain(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, nil, nil)
	rng := rand.New(rand.NewSource(3))
	z1 := randomComplex(rng, tc.params.Slots, 1.0)
	z2 := randomComplex(rng, tc.params.Slots, 1.0)
	want := make([]complex128, len(z1))
	for i := range want {
		want[i] = z1[i] + z2[i]
	}
	pt := tc.enc.Encode(z2, tc.params.MaxLevel(), tc.params.Scale)
	got := tc.decryptVec(ev.AddPlain(tc.encryptVec(z1), pt))
	assertClose(t, got, want, 1e-6, "HAdd ct+pt")
}

func TestPMultAndRescale(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, nil, nil)
	rng := rand.New(rand.NewSource(4))
	z1 := randomComplex(rng, tc.params.Slots, 1.0)
	z2 := randomComplex(rng, tc.params.Slots, 1.0)
	want := make([]complex128, len(z1))
	for i := range want {
		want[i] = z1[i] * z2[i]
	}
	pt := tc.enc.Encode(z2, tc.params.MaxLevel(), tc.params.Scale)
	prod := ev.MulPlain(tc.encryptVec(z1), pt)
	if prod.Scale <= tc.params.Scale {
		t.Error("PMult should square the scale")
	}
	res := ev.Rescale(prod)
	if res.Level != tc.params.MaxLevel()-1 {
		t.Errorf("rescale level=%d want %d", res.Level, tc.params.MaxLevel()-1)
	}
	got := tc.decryptVec(res)
	assertClose(t, got, want, 1e-5, "PMult+Rescale")
}

func TestCMultRelin(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, tc.rlk, nil)
	rng := rand.New(rand.NewSource(5))
	z1 := randomComplex(rng, tc.params.Slots, 1.0)
	z2 := randomComplex(rng, tc.params.Slots, 1.0)
	want := make([]complex128, len(z1))
	for i := range want {
		want[i] = z1[i] * z2[i]
	}
	prod := ev.MulRelin(tc.encryptVec(z1), tc.encryptVec(z2))
	res := ev.Rescale(prod)
	got := tc.decryptVec(res)
	assertClose(t, got, want, 1e-4, "CMult+Relin+Rescale")
}

func TestMultiplicativeDepth(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, tc.rlk, nil)
	rng := rand.New(rand.NewSource(6))
	z := randomComplex(rng, tc.params.Slots, 1.0)

	// Square repeatedly: z^(2^d) for d = chain depth − 1.
	ct := tc.encryptVec(z)
	want := append([]complex128(nil), z...)
	for d := 0; d < 3; d++ {
		ct = ev.Rescale(ev.MulRelin(ct, ct))
		for i := range want {
			want[i] *= want[i]
		}
	}
	got := tc.decryptVec(ct)
	assertClose(t, got, want, 1e-2, "depth-3 squaring")
}

func TestRotation(t *testing.T) {
	tc := newTestContext(t)
	steps := []int{1, 2, 7, -1, tc.params.Slots / 2}
	rtks := tc.kgen.GenRotationKeys(tc.sk, steps, false)
	ev := NewEvaluator(tc.params, nil, rtks)
	rng := rand.New(rand.NewSource(7))
	z := randomComplex(rng, tc.params.Slots, 1.0)
	ct := tc.encryptVec(z)

	n := tc.params.Slots
	for _, s := range steps {
		want := make([]complex128, n)
		for i := range want {
			want[i] = z[((i+s)%n+n)%n]
		}
		got := tc.decryptVec(ev.Rotate(ct, s))
		assertClose(t, got, want, 1e-4, "rotation")
	}
}

func TestConjugate(t *testing.T) {
	tc := newTestContext(t)
	rtks := tc.kgen.GenRotationKeys(tc.sk, nil, true)
	ev := NewEvaluator(tc.params, nil, rtks)
	rng := rand.New(rand.NewSource(8))
	z := randomComplex(rng, tc.params.Slots, 1.0)
	want := make([]complex128, len(z))
	for i := range want {
		want[i] = cmplx.Conj(z[i])
	}
	got := tc.decryptVec(ev.Conjugate(tc.encryptVec(z)))
	assertClose(t, got, want, 1e-4, "conjugate")
}

func TestRotationAtLowerLevel(t *testing.T) {
	tc := newTestContext(t)
	rtks := tc.kgen.GenRotationKeys(tc.sk, []int{3}, false)
	ev := NewEvaluator(tc.params, tc.rlk, rtks)
	rng := rand.New(rand.NewSource(9))
	z := randomComplex(rng, tc.params.Slots, 1.0)

	// Burn two levels, then rotate: keys must work at any level.
	ct := tc.encryptVec(z)
	pt := tc.enc.Encode(onesVec(tc.params.Slots), ct.Level, tc.params.Scale)
	ct = ev.Rescale(ev.MulPlain(ct, pt))
	pt = tc.enc.Encode(onesVec(tc.params.Slots), ct.Level, ct.Scale)
	ct2 := ev.MulPlain(ct, pt)
	ct2.Scale = ct.Scale * ct.Scale // treat as Δ² for rescale bookkeeping
	ct = ev.Rescale(ct2)

	n := tc.params.Slots
	want := make([]complex128, n)
	for i := range want {
		want[i] = z[(i+3)%n]
	}
	got := tc.decryptVec(ev.Rotate(ct, 3))
	assertClose(t, got, want, 1e-3, "rotation at reduced level")
}

func onesVec(n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

func TestKeySwitchToFreshKey(t *testing.T) {
	// Switch a ciphertext from sk to sk2 and decrypt under sk2.
	tc := newTestContext(t)
	sk2 := tc.kgen.GenSecretKey()
	// Key encrypting P·s (old secret) under s2.
	swk := tc.kgen.genSwitchingKey(tc.sk.Value.Q, sk2)
	ev := NewEvaluator(tc.params, nil, nil)
	rng := rand.New(rand.NewSource(10))
	z := randomComplex(rng, tc.params.Slots, 1.0)
	ct := tc.encryptVec(z)

	// The generic KeySwitch assumes the key target matches ct's C1 secret,
	// but genSwitchingKey encrypts under the *generator's* secret argument:
	// we built swk = Enc_{s2}(P·s), so the switched ciphertext decrypts
	// under sk2.
	swct := ev.KeySwitch(ct, swk)
	dec2 := NewDecryptor(tc.params, sk2)
	got := tc.enc.Decode(dec2.Decrypt(swct))
	assertClose(t, got, z, 1e-4, "keyswitch to fresh key")
}

func TestDropLevelAndAlign(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, nil, nil)
	rng := rand.New(rand.NewSource(11))
	z1 := randomComplex(rng, tc.params.Slots, 1.0)
	z2 := randomComplex(rng, tc.params.Slots, 1.0)
	ct1 := tc.encryptVec(z1)
	ct2 := ev.DropLevel(tc.encryptVec(z2), 2)
	sum := ev.Add(ct1, ct2)
	if sum.Level != 2 {
		t.Errorf("aligned level=%d want 2", sum.Level)
	}
	want := make([]complex128, len(z1))
	for i := range want {
		want[i] = z1[i] + z2[i]
	}
	assertClose(t, tc.decryptVec(sum), want, 1e-6, "add after drop")
}

func TestScaleMismatchPanics(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, nil, nil)
	ct1 := tc.encr.EncryptZero(tc.params.MaxLevel(), tc.params.Scale)
	ct2 := tc.encr.EncryptZero(tc.params.MaxLevel(), tc.params.Scale*2)
	defer func() {
		if recover() == nil {
			t.Fatal("scale mismatch should panic")
		}
	}()
	ev.Add(ct1, ct2)
}
