package ckks

import (
	"poseidon/internal/automorph"
	"poseidon/internal/numeric"
)

// Try* evaluator API: error-returning variants of the destination-passing
// operations. Each method validates its arguments up front (returning
// sentinel errors wrapped in *OpError instead of panicking), then hands an
// attempt closure — input-boundary integrity guard, the *Into kernel, the
// spot-check — to execTry (recovery.go), which executes it inside the
// recovery boundary (so an internal panic — including one injected by the
// fault harness — comes back as an error, never takes the process down),
// re-executes on ErrIntegrity when a RecoveryPolicy is installed, and
// seals the output when guards are enabled.
//
// The direct *Into methods keep their panicking contract for hot loops that
// have already validated; the Try* forms are the public, fallible surface
// kit-level code builds on.

func lvlOf(ct *Ciphertext) int {
	if ct == nil {
		return -1
	}
	return ct.Level
}

// aliasCt reports whether the destination shares storage with an operand.
func aliasCt(out, in *Ciphertext) bool {
	return out == in || aliases(out.C0, in.C0) || aliases(out.C1, in.C1)
}

// validIn checks a ciphertext operand for structural sanity: non-nil, level
// within the modulus chain, enough limbs for its level, rows of length N.
func (ev *Evaluator) validIn(op string, ct *Ciphertext) error {
	if ct == nil || ct.C0 == nil || ct.C1 == nil {
		return opErr(op, lvlOf(ct), ErrInvalidInput, "nil ciphertext")
	}
	if ct.Level < 0 || ct.Level > ev.params.MaxLevel() {
		return opErr(op, ct.Level, ErrInvalidInput, "level %d outside [0, %d]", ct.Level, ev.params.MaxLevel())
	}
	limbs := ct.Level + 1
	if len(ct.C0.Coeffs) < limbs || len(ct.C1.Coeffs) < limbs {
		return opErr(op, ct.Level, ErrInvalidInput,
			"polynomial holds %d limbs, level %d needs %d",
			min(len(ct.C0.Coeffs), len(ct.C1.Coeffs)), ct.Level, limbs)
	}
	for i := 0; i < limbs; i++ {
		if len(ct.C0.Coeffs[i]) != ev.params.N || len(ct.C1.Coeffs[i]) != ev.params.N {
			return opErr(op, ct.Level, ErrInvalidInput, "limb %d length != N=%d", i, ev.params.N)
		}
	}
	return nil
}

// validPt checks a plaintext operand.
func (ev *Evaluator) validPt(op string, pt *Plaintext) error {
	if pt == nil || pt.Value == nil {
		return opErr(op, -1, ErrInvalidInput, "nil plaintext")
	}
	if pt.Level < 0 || pt.Level > ev.params.MaxLevel() {
		return opErr(op, pt.Level, ErrInvalidInput, "plaintext level %d outside [0, %d]", pt.Level, ev.params.MaxLevel())
	}
	if len(pt.Value.Coeffs) < pt.Level+1 {
		return opErr(op, pt.Level, ErrInvalidInput,
			"plaintext holds %d limbs, level %d needs %d", len(pt.Value.Coeffs), pt.Level, pt.Level+1)
	}
	return nil
}

// validDest checks that the destination can hold a level-`level` result
// through its capacity.
func (ev *Evaluator) validDest(op string, out *Ciphertext, level int) error {
	if out == nil || out.C0 == nil || out.C1 == nil {
		return opErr(op, level, ErrInvalidInput, "nil destination")
	}
	if cap(out.C0.Coeffs) < level+1 || cap(out.C1.Coeffs) < level+1 {
		return opErr(op, level, ErrInvalidInput,
			"destination capacity %d limbs, result needs %d — create it at a higher level",
			min(cap(out.C0.Coeffs), cap(out.C1.Coeffs)), level+1)
	}
	return nil
}

// TryAddInto computes out = a + b, returning typed errors instead of
// panicking. out may alias a or b.
func (ev *Evaluator) TryAddInto(out, a, b *Ciphertext) (res *Ciphertext, err error) {
	const op = "HAdd"
	defer ev.observeTryErr(op, lvlOf(a), &err)
	defer recoverOp(op, lvlOf(a), &err)
	if err := ev.validIn(op, a); err != nil {
		return nil, err
	}
	if err := ev.validIn(op, b); err != nil {
		return nil, err
	}
	level := min(a.Level, b.Level)
	if err := ev.validDest(op, out, level); err != nil {
		return nil, err
	}
	if !sameScale(a.Scale, b.Scale) {
		return nil, opErr(op, level, ErrScaleMismatch, "scales %g vs %g", a.Scale, b.Scale)
	}
	return ev.execTry(op, level, out, func(dst *Ciphertext) error {
		if err := ev.guardInputs(op, a, b); err != nil {
			return err
		}
		aliased := aliasCt(dst, a) || aliasCt(dst, b)
		aa, bb := ev.alignLevels(a, b)
		ev.AddInto(dst, a, b)
		if !aliased {
			ev.spotElementwise(op, level, func(mod numeric.Modulus, i int) bool {
				o0, o1 := dst.C0.Coeffs[i], dst.C1.Coeffs[i]
				a0, a1 := aa.C0.Coeffs[i], aa.C1.Coeffs[i]
				b0, b1 := bb.C0.Coeffs[i], bb.C1.Coeffs[i]
				for j := range o0 {
					if o0[j] != mod.Add(a0[j], b0[j]) || o1[j] != mod.Add(a1[j], b1[j]) {
						return false
					}
				}
				return true
			})
		}
		return nil
	})
}

// TrySubInto computes out = a − b. out may alias a or b.
func (ev *Evaluator) TrySubInto(out, a, b *Ciphertext) (res *Ciphertext, err error) {
	const op = "HAdd"
	defer ev.observeTryErr(op, lvlOf(a), &err)
	defer recoverOp(op, lvlOf(a), &err)
	if err := ev.validIn(op, a); err != nil {
		return nil, err
	}
	if err := ev.validIn(op, b); err != nil {
		return nil, err
	}
	level := min(a.Level, b.Level)
	if err := ev.validDest(op, out, level); err != nil {
		return nil, err
	}
	if !sameScale(a.Scale, b.Scale) {
		return nil, opErr(op, level, ErrScaleMismatch, "scales %g vs %g", a.Scale, b.Scale)
	}
	return ev.execTry(op, level, out, func(dst *Ciphertext) error {
		if err := ev.guardInputs(op, a, b); err != nil {
			return err
		}
		aliased := aliasCt(dst, a) || aliasCt(dst, b)
		aa, bb := ev.alignLevels(a, b)
		ev.SubInto(dst, a, b)
		if !aliased {
			ev.spotElementwise(op, level, func(mod numeric.Modulus, i int) bool {
				o0, o1 := dst.C0.Coeffs[i], dst.C1.Coeffs[i]
				a0, a1 := aa.C0.Coeffs[i], aa.C1.Coeffs[i]
				b0, b1 := bb.C0.Coeffs[i], bb.C1.Coeffs[i]
				for j := range o0 {
					if o0[j] != mod.Sub(a0[j], b0[j]) || o1[j] != mod.Sub(a1[j], b1[j]) {
						return false
					}
				}
				return true
			})
		}
		return nil
	})
}

// TryNegInto computes out = −a. out may alias a.
func (ev *Evaluator) TryNegInto(out, a *Ciphertext) (res *Ciphertext, err error) {
	const op = "HNeg"
	defer ev.observeTryErr(op, lvlOf(a), &err)
	defer recoverOp(op, lvlOf(a), &err)
	if err := ev.validIn(op, a); err != nil {
		return nil, err
	}
	if err := ev.validDest(op, out, a.Level); err != nil {
		return nil, err
	}
	return ev.execTry(op, a.Level, out, func(dst *Ciphertext) error {
		if err := ev.guardInputs(op, a); err != nil {
			return err
		}
		aliased := aliasCt(dst, a)
		ev.NegInto(dst, a)
		if !aliased {
			ev.spotElementwise(op, a.Level, func(mod numeric.Modulus, i int) bool {
				o0, o1 := dst.C0.Coeffs[i], dst.C1.Coeffs[i]
				a0, a1 := a.C0.Coeffs[i], a.C1.Coeffs[i]
				for j := range o0 {
					if o0[j] != mod.Neg(a0[j]) || o1[j] != mod.Neg(a1[j]) {
						return false
					}
				}
				return true
			})
		}
		return nil
	})
}

// TryAddPlainInto computes out = ct + pt. out may alias ct.
func (ev *Evaluator) TryAddPlainInto(out *Ciphertext, ct *Ciphertext, pt *Plaintext) (res *Ciphertext, err error) {
	const op = "HAddPlain"
	defer ev.observeTryErr(op, lvlOf(ct), &err)
	defer recoverOp(op, lvlOf(ct), &err)
	if err := ev.validIn(op, ct); err != nil {
		return nil, err
	}
	if err := ev.validPt(op, pt); err != nil {
		return nil, err
	}
	level := min(ct.Level, pt.Level)
	if err := ev.validDest(op, out, level); err != nil {
		return nil, err
	}
	if !sameScale(ct.Scale, pt.Scale) {
		return nil, opErr(op, level, ErrScaleMismatch, "scales %g vs %g", ct.Scale, pt.Scale)
	}
	return ev.execTry(op, level, out, func(dst *Ciphertext) error {
		if err := ev.guardInputs(op, ct); err != nil {
			return err
		}
		aliased := aliasCt(dst, ct)
		ev.AddPlainInto(dst, ct, pt)
		if !aliased {
			ev.spotElementwise(op, level, func(mod numeric.Modulus, i int) bool {
				o0 := dst.C0.Coeffs[i]
				c0, pv := ct.C0.Coeffs[i], pt.Value.Coeffs[i]
				for j := range o0 {
					if o0[j] != mod.Add(c0[j], pv[j]) {
						return false
					}
				}
				return true
			})
		}
		return nil
	})
}

// TryMulPlainInto computes out = ct · pt. out may alias ct. The noise guard
// flags a product scale the active modulus chain cannot hold.
func (ev *Evaluator) TryMulPlainInto(out *Ciphertext, ct *Ciphertext, pt *Plaintext) (res *Ciphertext, err error) {
	const op = "PMult"
	defer ev.observeTryErr(op, lvlOf(ct), &err)
	defer recoverOp(op, lvlOf(ct), &err)
	if err := ev.validIn(op, ct); err != nil {
		return nil, err
	}
	if err := ev.validPt(op, pt); err != nil {
		return nil, err
	}
	level := min(ct.Level, pt.Level)
	if err := ev.validDest(op, out, level); err != nil {
		return nil, err
	}
	if err := ev.guardNoise(op, level, ct.Scale*pt.Scale); err != nil {
		return nil, err
	}
	return ev.execTry(op, level, out, func(dst *Ciphertext) error {
		if err := ev.guardInputs(op, ct); err != nil {
			return err
		}
		aliased := aliasCt(dst, ct)
		ev.MulPlainInto(dst, ct, pt)
		if !aliased {
			// The recompute uses the strict Barrett product — a genuinely
			// different kernel from the memoized Montgomery path, proven
			// bit-identical by the differential suites.
			ev.spotElementwise(op, level, func(mod numeric.Modulus, i int) bool {
				o0, o1 := dst.C0.Coeffs[i], dst.C1.Coeffs[i]
				c0, c1 := ct.C0.Coeffs[i], ct.C1.Coeffs[i]
				pv := pt.Value.Coeffs[i]
				for j := range o0 {
					if o0[j] != mod.Mul(c0[j], pv[j]) || o1[j] != mod.Mul(c1[j], pv[j]) {
						return false
					}
				}
				return true
			})
		}
		return nil
	})
}

// TryMulRelinInto computes out = a·b with relinearization. out must not
// alias an operand (ErrAliasedDestination); a missing relinearization key is
// ErrKeyMissing; a product scale the chain cannot hold is ErrLevelExhausted.
func (ev *Evaluator) TryMulRelinInto(out, a, b *Ciphertext) (res *Ciphertext, err error) {
	const op = "CMult"
	defer ev.observeTryErr(op, lvlOf(a), &err)
	defer recoverOp(op, lvlOf(a), &err)
	if err := ev.validIn(op, a); err != nil {
		return nil, err
	}
	if err := ev.validIn(op, b); err != nil {
		return nil, err
	}
	level := min(a.Level, b.Level)
	if err := ev.validDest(op, out, level); err != nil {
		return nil, err
	}
	if ev.rlk == nil {
		return nil, opErr(op, level, ErrKeyMissing, "relinearization key not loaded")
	}
	if aliasCt(out, a) || aliasCt(out, b) {
		return nil, opErr(op, level, ErrAliasedDestination, "MulRelin destination must not alias an operand")
	}
	if err := ev.guardNoise(op, level, a.Scale*b.Scale); err != nil {
		return nil, err
	}
	return ev.execTry(op, level, out, func(dst *Ciphertext) error {
		if err := ev.guardInputs(op, a, b); err != nil {
			return err
		}
		ev.MulRelinInto(dst, a, b)
		return nil
	})
}

// TryRescaleInto divides ct by the last active prime into out. A rescale at
// level 0 is ErrLevelExhausted. out may alias ct.
func (ev *Evaluator) TryRescaleInto(out *Ciphertext, ct *Ciphertext) (res *Ciphertext, err error) {
	const op = "Rescale"
	defer ev.observeTryErr(op, lvlOf(ct), &err)
	defer recoverOp(op, lvlOf(ct), &err)
	if err := ev.validIn(op, ct); err != nil {
		return nil, err
	}
	if ct.Level == 0 {
		return nil, opErr(op, 0, ErrLevelExhausted, "cannot rescale at level 0")
	}
	if err := ev.validDest(op, out, ct.Level-1); err != nil {
		return nil, err
	}
	return ev.execTry(op, ct.Level-1, out, func(dst *Ciphertext) error {
		if err := ev.guardInputs(op, ct); err != nil {
			return err
		}
		ev.RescaleInto(dst, ct)
		return nil
	})
}

// TryRotateInto rotates the slot vector by steps into out. A missing
// rotation key is ErrKeyMissing. out may alias ct.
func (ev *Evaluator) TryRotateInto(out *Ciphertext, ct *Ciphertext, steps int) (res *Ciphertext, err error) {
	const op = "Rotation"
	defer ev.observeTryErr(op, lvlOf(ct), &err)
	defer recoverOp(op, lvlOf(ct), &err)
	if err := ev.validIn(op, ct); err != nil {
		return nil, err
	}
	if err := ev.validDest(op, out, ct.Level); err != nil {
		return nil, err
	}
	if g := automorph.GaloisElementForRotation(steps, ev.params.N); g != 1 {
		if ev.rtks == nil {
			return nil, opErr(op, ct.Level, ErrKeyMissing, "rotation keys not loaded")
		}
		if _, ok := ev.rtks.Keys[g]; !ok {
			return nil, opErr(op, ct.Level, ErrKeyMissing, "no rotation key for step %d (Galois element %d)", steps, g)
		}
	}
	return ev.execTry(op, ct.Level, out, func(dst *Ciphertext) error {
		if err := ev.guardInputs(op, ct); err != nil {
			return err
		}
		ev.RotateInto(dst, ct, steps)
		return nil
	})
}

// TryConjugateInto conjugates every slot into out. out may alias ct.
func (ev *Evaluator) TryConjugateInto(out *Ciphertext, ct *Ciphertext) (res *Ciphertext, err error) {
	const op = "Rotation"
	defer ev.observeTryErr(op, lvlOf(ct), &err)
	defer recoverOp(op, lvlOf(ct), &err)
	if err := ev.validIn(op, ct); err != nil {
		return nil, err
	}
	if err := ev.validDest(op, out, ct.Level); err != nil {
		return nil, err
	}
	if g := automorph.GaloisElementConjugate(ev.params.N); g != 1 {
		if ev.rtks == nil {
			return nil, opErr(op, ct.Level, ErrKeyMissing, "rotation keys not loaded")
		}
		if _, ok := ev.rtks.Keys[g]; !ok {
			return nil, opErr(op, ct.Level, ErrKeyMissing, "no conjugation key (Galois element %d)", g)
		}
	}
	return ev.execTry(op, ct.Level, out, func(dst *Ciphertext) error {
		if err := ev.guardInputs(op, ct); err != nil {
			return err
		}
		ev.ConjugateInto(dst, ct)
		return nil
	})
}

// TryKeySwitchInto re-encrypts ct under swk into out. out may alias ct.
func (ev *Evaluator) TryKeySwitchInto(out *Ciphertext, ct *Ciphertext, swk *SwitchingKey) (res *Ciphertext, err error) {
	const op = "Keyswitch"
	defer ev.observeTryErr(op, lvlOf(ct), &err)
	defer recoverOp(op, lvlOf(ct), &err)
	if err := ev.validIn(op, ct); err != nil {
		return nil, err
	}
	if err := ev.validDest(op, out, ct.Level); err != nil {
		return nil, err
	}
	if swk == nil || len(swk.B) == 0 || len(swk.A) == 0 {
		return nil, opErr(op, ct.Level, ErrKeyMissing, "nil or empty switching key")
	}
	return ev.execTry(op, ct.Level, out, func(dst *Ciphertext) error {
		if err := ev.guardInputs(op, ct); err != nil {
			return err
		}
		ev.KeySwitchInto(dst, ct, swk)
		return nil
	})
}

// Allocating conveniences over the Try* destination-passing forms.

// TryAdd returns a + b or a typed error.
func (ev *Evaluator) TryAdd(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.validIn("HAdd", a); err != nil {
		return nil, err
	}
	if err := ev.validIn("HAdd", b); err != nil {
		return nil, err
	}
	return ev.TryAddInto(NewCiphertext(ev.params, min(a.Level, b.Level)), a, b)
}

// TrySub returns a − b or a typed error.
func (ev *Evaluator) TrySub(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.validIn("HAdd", a); err != nil {
		return nil, err
	}
	if err := ev.validIn("HAdd", b); err != nil {
		return nil, err
	}
	return ev.TrySubInto(NewCiphertext(ev.params, min(a.Level, b.Level)), a, b)
}

// TryMulRelin returns a·b with relinearization or a typed error.
func (ev *Evaluator) TryMulRelin(a, b *Ciphertext) (*Ciphertext, error) {
	if err := ev.validIn("CMult", a); err != nil {
		return nil, err
	}
	if err := ev.validIn("CMult", b); err != nil {
		return nil, err
	}
	return ev.TryMulRelinInto(NewCiphertext(ev.params, min(a.Level, b.Level)), a, b)
}

// TryRescale returns ct rescaled one level down or a typed error.
func (ev *Evaluator) TryRescale(ct *Ciphertext) (*Ciphertext, error) {
	if err := ev.validIn("Rescale", ct); err != nil {
		return nil, err
	}
	if ct.Level == 0 {
		return nil, opErr("Rescale", 0, ErrLevelExhausted, "cannot rescale at level 0")
	}
	return ev.TryRescaleInto(NewCiphertext(ev.params, ct.Level-1), ct)
}

// TryRotate returns the slot vector rotated by steps or a typed error.
func (ev *Evaluator) TryRotate(ct *Ciphertext, steps int) (*Ciphertext, error) {
	if err := ev.validIn("Rotation", ct); err != nil {
		return nil, err
	}
	return ev.TryRotateInto(NewCiphertext(ev.params, ct.Level), ct, steps)
}

// TryConjugate returns the slot-wise conjugate or a typed error.
func (ev *Evaluator) TryConjugate(ct *Ciphertext) (*Ciphertext, error) {
	if err := ev.validIn("Rotation", ct); err != nil {
		return nil, err
	}
	return ev.TryConjugateInto(NewCiphertext(ev.params, ct.Level), ct)
}
