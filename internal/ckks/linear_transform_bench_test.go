package ckks

import (
	"math/rand"
	"testing"
)

// Benchmarks at the cmd/poseidon benchlinalg configuration (LogN=13, dense
// 4096×4096, both schedules), mainly for profiling the engines:
//
//	go test ./internal/ckks -run xx -bench LinearTransformDense/double-hoisted/n1=128 \
//	    -benchtime 3x -cpuprofile cpu.out
func BenchmarkLinearTransformDense(b *testing.B) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     13,
		LogQ:     []int{55, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
	})
	if err != nil {
		b.Fatal(err)
	}
	n := params.Slots
	level := params.MaxLevel()
	enc := NewEncoder(params)
	rng := rand.New(rand.NewSource(9))
	dense := make([][]complex128, n)
	for r := range dense {
		row := make([]complex128, n)
		for c := range row {
			row[c] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
		dense[r] = row
	}
	for _, n1 := range []int{64, 128, 256} {
		lt, err := NewLinearTransformBSGS(enc, dense, level, params.Scale, n1)
		if err != nil {
			b.Fatal(err)
		}
		fx := newLtFixture(b, params, lt, enc, rng)
		dst := NewCiphertext(params, lt.Level)
		b.Run("double-hoisted/n1="+itoa(n1), func(b *testing.B) {
			fx.ev.EvaluateLinearTransformInto(dst, fx.ct, lt)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fx.ev.EvaluateLinearTransformInto(dst, fx.ct, lt)
			}
		})
		b.Run("per-rotation/n1="+itoa(n1), func(b *testing.B) {
			fx.ev.EvaluateLinearTransformPerRotation(fx.ct, lt)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fx.ev.EvaluateLinearTransformPerRotation(fx.ct, lt)
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
