package ckks

import (
	"errors"
	"math/rand"
	"testing"

	"poseidon/internal/fault"
)

// guardContext builds a small instance with every key loaded, a serial
// evaluator, and deterministic operand ciphertexts.
type guardContext struct {
	params *Parameters
	ev     *Evaluator
	enc    *Encoder
	sk     *SecretKey
}

func newGuardContext(t testing.TB) *guardContext {
	t.Helper()
	params, err := NewParameters(ParametersLiteral{
		LogN:     8,
		LogQ:     []int{50, 40, 40},
		LogP:     []int{51},
		LogScale: 40,
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	kgen := NewKeyGenerator(params, 42)
	sk := kgen.GenSecretKey()
	rlk := kgen.GenRelinearizationKey(sk)
	rtk := kgen.GenRotationKeys(sk, []int{1, -1, 2}, true)
	return &guardContext{
		params: params,
		ev:     NewEvaluator(params, rlk, rtk),
		enc:    NewEncoder(params),
		sk:     sk,
	}
}

func (gc *guardContext) inputs(t testing.TB, seed int64, level int) (*Ciphertext, *Ciphertext, *Plaintext) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	kgen := NewKeyGenerator(gc.params, 42)
	encr := NewEncryptor(gc.params, kgen.GenPublicKey(gc.sk), seed+1)
	a := encr.Encrypt(gc.enc.Encode(randomComplex(rng, gc.params.Slots, 1.0), level, gc.params.Scale))
	b := encr.Encrypt(gc.enc.Encode(randomComplex(rng, gc.params.Slots, 1.0), level, gc.params.Scale))
	pt := gc.enc.Encode(randomComplex(rng, gc.params.Slots, 1.0), level, gc.params.Scale)
	return a, b, pt
}

// With guards and the spot-check enabled, every Try operation on clean
// inputs must return no error (zero false positives) and produce results
// bit-identical to the direct Into API.
func TestTryOpsCleanNoFalsePositives(t *testing.T) {
	gc := newGuardContext(t)
	ev := gc.ev
	ev.EnableGuards(7)
	ev.EnableSpotCheck()
	a, b, pt := gc.inputs(t, 1, gc.params.MaxLevel())
	ev.SealIntegrity(a)
	ev.SealIntegrity(b)

	ref := NewEvaluator(gc.params, ev.rlk, ev.rtks) // guards off

	cases := []struct {
		name string
		try  func() (*Ciphertext, error)
		want func() *Ciphertext
	}{
		{"Add", func() (*Ciphertext, error) { return ev.TryAdd(a, b) },
			func() *Ciphertext { return ref.Add(a, b) }},
		{"Sub", func() (*Ciphertext, error) { return ev.TrySub(a, b) },
			func() *Ciphertext { return ref.Sub(a, b) }},
		{"Neg", func() (*Ciphertext, error) { return ev.TryNegInto(NewCiphertext(gc.params, a.Level), a) },
			func() *Ciphertext { return ref.Neg(a) }},
		{"AddPlain", func() (*Ciphertext, error) {
			return ev.TryAddPlainInto(NewCiphertext(gc.params, a.Level), a, pt)
		}, func() *Ciphertext { return ref.AddPlain(a, pt) }},
		{"MulPlain", func() (*Ciphertext, error) {
			return ev.TryMulPlainInto(NewCiphertext(gc.params, a.Level), a, pt)
		}, func() *Ciphertext { return ref.MulPlain(a, pt) }},
		{"MulRelin", func() (*Ciphertext, error) { return ev.TryMulRelin(a, b) },
			func() *Ciphertext { return ref.MulRelin(a, b) }},
		{"Rescale", func() (*Ciphertext, error) { return ev.TryRescale(ref.MulRelin(a, b)) },
			func() *Ciphertext { return ref.Rescale(ref.MulRelin(a, b)) }},
		{"Rotate", func() (*Ciphertext, error) { return ev.TryRotate(a, 1) },
			func() *Ciphertext { return ref.Rotate(a, 1) }},
		{"Conjugate", func() (*Ciphertext, error) { return ev.TryConjugate(a) },
			func() *Ciphertext { return ref.Conjugate(a) }},
	}
	for _, tc := range cases {
		got, err := tc.try()
		if err != nil {
			t.Fatalf("%s: unexpected error on clean inputs: %v", tc.name, err)
		}
		requireCtEqual(t, got, tc.want(), tc.name)
		if got.seal == nil {
			t.Fatalf("%s: output not sealed with guards enabled", tc.name)
		}
	}
	st := ev.GuardStats()
	if st.IntegrityFaults != 0 || st.NoiseFlags != 0 {
		t.Fatalf("clean run raised guard flags: %+v", st)
	}
	if st.Verifies == 0 || st.Seals == 0 || st.SpotChecks == 0 {
		t.Fatalf("guards did not run: %+v", st)
	}
}

// Each misuse maps to its sentinel, via errors.Is, without panicking.
func TestTrySentinels(t *testing.T) {
	gc := newGuardContext(t)
	ev := gc.ev
	a, b, pt := gc.inputs(t, 2, gc.params.MaxLevel())
	out := NewCiphertext(gc.params, gc.params.MaxLevel())

	bad := b.CopyNew()
	bad.Scale *= 3
	if _, err := ev.TryAddInto(out, a, bad); !errors.Is(err, ErrScaleMismatch) {
		t.Fatalf("scale mismatch: got %v", err)
	}
	badPt := &Plaintext{Value: pt.Value, Scale: pt.Scale * 2, Level: pt.Level}
	if _, err := ev.TryAddPlainInto(out, a, badPt); !errors.Is(err, ErrScaleMismatch) {
		t.Fatalf("plain scale mismatch: got %v", err)
	}

	low := ev.DropLevel(a, 0)
	if _, err := ev.TryRescale(low); !errors.Is(err, ErrLevelExhausted) {
		t.Fatalf("rescale at level 0: got %v", err)
	}

	if _, err := ev.TryMulRelinInto(a, a, b); !errors.Is(err, ErrAliasedDestination) {
		t.Fatalf("aliased MulRelin dest: got %v", err)
	}

	noKeys := NewEvaluator(gc.params, nil, nil)
	if _, err := noKeys.TryMulRelin(a, b); !errors.Is(err, ErrKeyMissing) {
		t.Fatalf("missing rlk: got %v", err)
	}
	if _, err := noKeys.TryRotate(a, 1); !errors.Is(err, ErrKeyMissing) {
		t.Fatalf("missing rotation key: got %v", err)
	}
	if _, err := ev.TryRotate(a, 7); !errors.Is(err, ErrKeyMissing) {
		t.Fatalf("ungenerated rotation step: got %v", err)
	}
	if _, err := ev.TryKeySwitchInto(out, a, nil); !errors.Is(err, ErrKeyMissing) {
		t.Fatalf("nil switching key: got %v", err)
	}

	if _, err := ev.TryAddInto(out, nil, b); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("nil operand: got %v", err)
	}
	mangled := a.CopyNew()
	mangled.Level = 99
	if _, err := ev.TryAdd(mangled, b); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("absurd level: got %v", err)
	}
	small := NewCiphertext(gc.params, 0)
	if _, err := ev.TryAddInto(small, a, b); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("undersized destination: got %v", err)
	}

	var oe *OpError
	_, err := ev.TryMulRelinInto(a, a, b)
	if !errors.As(err, &oe) || oe.Op != "CMult" {
		t.Fatalf("error lacks op context: %v", err)
	}
}

// A manually flipped bit in a sealed ciphertext is caught by
// VerifyIntegrity and by the next Try operation's input boundary.
func TestSealDetectsCorruption(t *testing.T) {
	gc := newGuardContext(t)
	ev := gc.ev
	ev.EnableGuards(3)
	a, b, _ := gc.inputs(t, 3, gc.params.MaxLevel())
	ev.SealIntegrity(a)
	ev.SealIntegrity(b)
	if err := ev.VerifyIntegrity(a); err != nil {
		t.Fatalf("clean verify: %v", err)
	}

	a.C1.Coeffs[1][17] ^= 1 << 44
	err := ev.VerifyIntegrity(a)
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("verify after flip: got %v, want ErrIntegrity", err)
	}
	var oe *OpError
	if !errors.As(err, &oe) || oe.Limb != 1 {
		t.Fatalf("error does not name the corrupted limb: %v", err)
	}

	out := NewCiphertext(gc.params, gc.params.MaxLevel())
	if _, err := ev.TryAddInto(out, a, b); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("op input boundary after flip: got %v, want ErrIntegrity", err)
	}
	if ev.GuardStats().IntegrityFaults < 2 {
		t.Fatalf("integrity faults not counted: %+v", ev.GuardStats())
	}
}

// An injector-driven single-bit HBM fault during an operation's input
// read-back surfaces as ErrIntegrity — an error, not a panic.
func TestInjectedHBMFaultDetected(t *testing.T) {
	gc := newGuardContext(t)
	ev := gc.ev
	ev.EnableGuards(5)
	a, b, _ := gc.inputs(t, 4, gc.params.MaxLevel())
	ev.SealIntegrity(a)
	ev.SealIntegrity(b)

	in := fault.NewInjector(99)
	gc.params.RingQ.SetFaultInjector(in)
	defer gc.params.RingQ.SetFaultInjector(nil)

	// Clean pass to count HBM read-back visits — also the false-positive
	// check: a disarmed injector must not trip the guard.
	out := NewCiphertext(gc.params, gc.params.MaxLevel())
	if _, err := ev.TryAddInto(out, a, b); err != nil {
		t.Fatalf("clean pass errored: %v", err)
	}
	visits := in.Stats().VisitsAt(fault.SiteHBM)
	if visits == 0 {
		t.Fatal("no HBM read-back visits recorded")
	}

	for v := uint64(0); v < visits; v++ {
		in.ResetVisits()
		in.ArmAt(fault.SiteHBM, fault.BitFlip, v)
		_, err := ev.TryAddInto(out, a, b)
		if !errors.Is(err, ErrIntegrity) {
			t.Fatalf("visit %d: got %v, want ErrIntegrity", v, err)
		}
		// Repair for the next trial: re-apply the recorded flip and re-seal.
		// The read-back hooks interleave C0/C1 per limb, a's visits first.
		inj := in.Injections()
		last := inj[len(inj)-1]
		perCt := uint64(2 * (a.Level + 1))
		target, local := a, last.Visit
		if local >= perCt {
			target, local = b, local-perCt
		}
		poly := target.C0
		if local%2 == 1 {
			poly = target.C1
		}
		poly.Coeffs[last.Limb][last.Coeff] ^= 1 << uint(last.Bit)
		ev.SealIntegrity(a)
		ev.SealIntegrity(b)
	}
}

// The NTT spot-check catches a datapath fault injected into the forward
// transform of a rescale output (deterministic here: the level-0 output has
// a single limb, so the sampled limb is always the corrupted one).
func TestSpotCheckDetectsNTTFault(t *testing.T) {
	gc := newGuardContext(t)
	ev := gc.ev
	ev.EnableGuards(11)
	ev.EnableSpotCheck()
	a, _, _ := gc.inputs(t, 5, 1)

	in := fault.NewInjector(7)
	gc.params.RingQ.SetFaultInjector(in)
	defer gc.params.RingQ.SetFaultInjector(nil)

	in.ArmAt(fault.SiteNTT, fault.StuckLane, 0)
	_, err := ev.TryRescale(a)
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("got %v, want ErrIntegrity from the NTT spot-check", err)
	}
	if in.Stats().Injected != 1 {
		t.Fatal("fault did not fire")
	}
	if ev.GuardStats().SpotChecks == 0 {
		t.Fatal("spot check did not run")
	}
}

// The noise guard flags a product scale the active chain cannot represent.
func TestNoiseGuardFlagsExhaustion(t *testing.T) {
	gc := newGuardContext(t)
	ev := gc.ev
	ev.EnableGuards(13)
	a, b, pt := gc.inputs(t, 6, gc.params.MaxLevel())

	if nb := ev.NoiseBudget(a); nb <= 0 {
		t.Fatalf("fresh ciphertext has non-positive budget %f", nb)
	}

	// At level 0 the chain holds ~2^50; a squared scale of 2^80 cannot fit.
	la, lb := ev.DropLevel(a, 0), ev.DropLevel(b, 0)
	out := NewCiphertext(gc.params, 0)
	if _, err := ev.TryMulRelinInto(out, la, lb); !errors.Is(err, ErrLevelExhausted) {
		t.Fatalf("exhausted MulRelin: got %v, want ErrLevelExhausted", err)
	}
	lpt := &Plaintext{Value: pt.Value, Scale: pt.Scale, Level: 0}
	if _, err := ev.TryMulPlainInto(out, la, lpt); !errors.Is(err, ErrLevelExhausted) {
		t.Fatalf("exhausted MulPlain: got %v, want ErrLevelExhausted", err)
	}
	if ev.GuardStats().NoiseFlags != 2 {
		t.Fatalf("noise flags = %d, want 2", ev.GuardStats().NoiseFlags)
	}
}

// An injected mid-operation panic (the Panic fault class) is converted by
// the recovery boundary into an ErrInternal-wrapped error; the process — and
// the arena — survive.
func TestInjectedPanicRecovered(t *testing.T) {
	gc := newGuardContext(t)
	ev := gc.ev
	ev.EnableGuards(17)
	a, b, _ := gc.inputs(t, 7, gc.params.MaxLevel())

	in := fault.NewInjector(1)
	gc.params.RingQ.SetFaultInjector(in)
	defer gc.params.RingQ.SetFaultInjector(nil)

	base := gc.params.ArenaStats().BytesInUse
	in.ArmAt(fault.SiteNTT, fault.Panic, 2)
	_, err := ev.TryMulRelin(a, b)
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("got %v, want ErrInternal wrap of injected panic", err)
	}
	if got := gc.params.ArenaStats().BytesInUse; got != base {
		t.Fatalf("arena leaked across recovered panic: in-use %d, baseline %d", got, base)
	}
}
