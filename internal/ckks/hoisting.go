package ckks

import (
	"fmt"

	"poseidon/internal/numeric"
	"poseidon/internal/ring"
)

// Rotation hoisting (Halevi–Shoup): when one ciphertext feeds many
// rotations — the BSGS linear transform and every matrix-heavy workload —
// the expensive part of each keyswitch (digit decomposition, basis
// extension and the forward NTTs of the extended digits) depends only on
// the input, not on the Galois element. RotateHoisted performs that work
// once and replays it per rotation as a cheap NTT-domain permutation,
// because the decomposition commutes with the automorphism.
//
// Both phases run on the evaluator's worker pool: the shared decomposition
// chunks across coefficients and fans limbs out per digit, and each
// rotation's permuted multiply-accumulate replays through the pooled
// keyswitch state (ksState with hoisted=true), with per-task permutation
// buffers drawn from the ring arena. All per-rotation scratch — extended
// digits, accumulators, 128-bit columns — is recycled, so the steady-state
// cost of a hoisted batch is the output ciphertexts themselves.

// hoistedDecomposition caches the shared per-input keyswitch state. The
// digit matrices are borrowed from the parameter set's free list; call
// release when every rotation has been evaluated.
type hoistedDecomposition struct {
	level  int
	digits [][][]uint64 // [digit][limb][coeff], NTT domain over Q_l ∪ P
	c0     *ring.Poly   // coefficient-domain copy of C0
}

// release returns the borrowed digit matrices and the C0 copy. Nil-safe so
// it can double as the panic-path sweep of a partially built decomposition.
func (hd *hoistedDecomposition) release(params *Parameters) {
	for _, ext := range hd.digits {
		if ext != nil {
			params.putExt(ext)
		}
	}
	hd.digits = nil
	if hd.c0 != nil {
		params.RingQ.PutPoly(hd.c0)
		hd.c0 = nil
	}
}

// decomposeHoisted performs the shared phase on ct.C1. On a panic anywhere
// in the decomposition, every digit matrix acquired so far and both arena
// copies are returned before the panic propagates.
func (ev *Evaluator) decomposeHoisted(ct *Ciphertext) (hdOut *hoistedDecomposition) {
	hd := &hoistedDecomposition{digits: make([][][]uint64, 0, ev.params.Digits(ct.Level))}
	defer func() {
		if hdOut == nil {
			hd.release(ev.params)
		}
	}()
	ev.decomposeHoistedInto(hd, ct, true)
	return hd
}

// decomposeHoistedInto performs the shared phase on ct.C1 into a
// caller-owned record, reusing hd.digits capacity across calls — the
// zero-allocation entry the pooled linear-transform state uses. withC0
// controls whether the coefficient-domain C0 copy is taken: the
// double-hoisted path permutes C0 in the NTT domain and skips it, saving
// qLimbs inverse transforms. The caller owns the release of hd (panic paths
// included); the c1 scratch acquired here is swept locally.
func (ev *Evaluator) decomposeHoistedInto(hd *hoistedDecomposition, ct *Ciphertext, withC0 bool) {
	params := ev.params
	pool := ev.pool
	serial := pool.Workers() <= 1
	rq, rp := params.RingQ, params.RingP
	level := ct.Level
	alpha := params.Alpha()
	digits := params.Digits(level)
	n := params.N
	qLimbs := level + 1
	extLimbs := qLimbs + alpha

	hd.level = level
	hd.digits = hd.digits[:0]
	// c1 is captured by the worker-pool closures below, so it is never
	// reassigned (a reassignment would force a by-reference capture and a
	// heap move); the panic sweep tracks its release through c1Live, which
	// only the non-escaping defer closure touches.
	var c1Live *ring.Poly
	defer func() {
		if c1Live != nil {
			rq.PutPoly(c1Live)
		}
	}()
	c1 := ev.inttCopy(ct.C1)
	c1Live = c1
	if withC0 {
		hd.c0 = ev.inttCopy(ct.C0)
	}

	decomposer := params.decomposer
	for d := 0; d < digits; d++ {
		ext := params.getExt(extLimbs)
		hd.digits = append(hd.digits, ext)
		if serial {
			decomposer.DecomposeAndExtend(level, d, c1.Coeffs, ext)
			for i := 0; i < extLimbs; i++ {
				if i < qLimbs {
					rq.ForwardLimb(i, ext[i])
				} else {
					rp.ForwardLimb(i-qLimbs, ext[i])
				}
			}
		} else {
			pool.ForEachChunk(n, func(lo, hi int) {
				decomposer.DecomposeAndExtend(level, d, rangeView(c1.Coeffs, lo, hi), rangeView(ext, lo, hi))
			})
			pool.ForEach(extLimbs, func(i int) {
				if i < qLimbs {
					rq.ForwardLimb(i, ext[i])
				} else {
					rp.ForwardLimb(i-qLimbs, ext[i])
				}
			})
		}
	}
	rq.PutPoly(c1)
	c1Live = nil
}

// Hoisted is a reusable handle over one ciphertext's shared keyswitch
// decomposition — the batch-friendly entry point to rotation hoisting.
// Where RotateHoisted fixes the step set up front, a Hoisted handle lets a
// caller (the serving layer's batch scheduler, a BSGS loop discovering its
// steps incrementally) pay the decomposition once and request rotations one
// at a time, possibly interleaved with other work. The handle borrows digit
// matrices from the parameter set's free lists: call Release when done, or
// the arena reports the bytes as permanently in use. A Hoisted is bound to
// the evaluator that created it and is not safe for concurrent use.
type Hoisted struct {
	ev *Evaluator
	ct *Ciphertext
	hd *hoistedDecomposition
}

// Hoist performs the shared decomposition phase for ct and returns the
// handle. Panics on malformed input; TryHoist is the error-returning form.
func (ev *Evaluator) Hoist(ct *Ciphertext) *Hoisted {
	if ev.rtks == nil {
		panic("ckks: rotation requires rotation keys")
	}
	return &Hoisted{ev: ev, ct: ct, hd: ev.decomposeHoisted(ct)}
}

// TryHoist is Hoist with input validation, guard verification of ct, and
// panic recovery — the serving layer's entry point, where ciphertexts
// arrive from the wire.
func (ev *Evaluator) TryHoist(ct *Ciphertext) (h *Hoisted, err error) {
	const op = "Rotation"
	defer recoverOp(op, lvlOf(ct), &err)
	if err := ev.validIn(op, ct); err != nil {
		return nil, err
	}
	if ev.rtks == nil {
		return nil, opErr(op, ct.Level, ErrKeyMissing, "rotation keys not loaded")
	}
	if err := ev.guardInputs(op, ct); err != nil {
		// A corrupted input read is the recoverable failure mode here: each
		// re-verification re-reads every limb through the HBM hooks, which
		// is the read a transient fault decays on. Failures *inside* a
		// hoisted rotation are recovered one level up, by the scheduler's
		// job retry (a re-enqueue rebuilds the decomposition).
		if err = ev.retryVerify(op, ct, err); err != nil {
			return nil, err
		}
	}
	return &Hoisted{ev: ev, ct: ct, hd: ev.decomposeHoisted(ct)}, nil
}

// Level reports the level the decomposition was taken at.
func (h *Hoisted) Level() int { return h.hd.level }

// Rotate applies one rotation through the shared decomposition. Panics on
// a missing key or a released handle; TryRotate is the error-returning
// form.
func (h *Hoisted) Rotate(steps int) *Ciphertext {
	if h.hd == nil {
		panic("ckks: Rotate on a released Hoisted handle")
	}
	ev := h.ev
	g := galoisForRotation(steps, ev.params.N)
	if g == 1 {
		return h.ct.CopyNew()
	}
	key, ok := ev.rtks.Keys[g]
	if !ok {
		panic(fmt.Sprintf("ckks: no rotation key for step %d (g=%d)", steps, g))
	}
	return ev.rotateHoistedOne(h.hd, h.ct, g, key)
}

// TryRotate applies one rotation through the shared decomposition with the
// Try* error contract: a missing key is ErrKeyMissing, a released handle
// is ErrInvalidInput, internal panics surface as typed errors, and the
// result is sealed when integrity guards are on.
func (h *Hoisted) TryRotate(steps int) (res *Ciphertext, err error) {
	const op = "Rotation"
	ev := h.ev
	level := lvlOf(h.ct)
	defer ev.observeTryErr(op, level, &err)
	defer recoverOp(op, level, &err)
	if h.hd == nil {
		return nil, opErr(op, level, ErrInvalidInput, "hoisted handle already released")
	}
	g := galoisForRotation(steps, ev.params.N)
	if g == 1 {
		out := h.ct.CopyNew()
		ev.guardSeal(out)
		return out, nil
	}
	key, ok := ev.rtks.Keys[g]
	if !ok {
		return nil, opErr(op, level, ErrKeyMissing, "no rotation key for step %d (Galois element %d)", steps, g)
	}
	out := ev.rotateHoistedOne(h.hd, h.ct, g, key)
	ev.guardSeal(out)
	return out, nil
}

// Release returns the borrowed digit matrices to the parameter free lists.
// Safe to call more than once; the handle rejects rotations afterwards.
func (h *Hoisted) Release() {
	if h.hd != nil {
		h.hd.release(h.ev.params)
		h.hd = nil
	}
}

// RotateHoisted rotates ct by every step in steps, sharing one digit
// decomposition across all of them. Returns a map from step to result.
// Requires rotation keys for every step.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, steps []int) map[int]*Ciphertext {
	h := ev.Hoist(ct)
	defer h.Release()
	out := make(map[int]*Ciphertext, len(steps))
	for _, step := range steps {
		out[step] = h.Rotate(step)
	}
	return out
}

// rotateHoistedOne replays the shared decomposition through the keyswitch
// pipeline for one Galois element: the mac stage permutes each cached
// NTT-domain digit limb by the rotation's Galois permutation instead of
// decomposing again. Same accumulator discipline as keySwitchCoreInto —
// raw 128-bit MACs per digit, one deferred Barrett reduction per
// coefficient folded into the inverse-NTT pass (strict kernels run macLimb
// instead). Scratch is released by the deferred sweeps on every exit,
// panic paths included; the borrowed digit matrices stay owned by hd.
func (ev *Evaluator) rotateHoistedOne(hd *hoistedDecomposition, ct *Ciphertext, g uint64, key *SwitchingKey) *Ciphertext {
	sp := ev.beginOp("Rotation")
	params := ev.params
	pool := ev.pool
	serial := pool.Workers() <= 1
	rq, rp := params.RingQ, params.RingP
	level := hd.level
	qLimbs := level + 1

	s := params.getKsState()
	defer ev.ksRelease(s)
	s.ev = ev
	s.level = level
	s.qLimbs = qLimbs
	s.alpha = params.Alpha()
	s.ext1 = qLimbs + s.alpha
	s.n = params.N
	s.strict = rq.StrictKernels()
	s.key = key
	s.hoisted = true
	s.permQ = rq.NTTGaloisPermutation(g)
	s.permP = rp.NTTGaloisPermutation(g)

	s.acc0Q = rq.GetPoly(qLimbs)
	s.acc1Q = rq.GetPoly(qLimbs)
	s.acc0P = rp.GetPoly(s.alpha)
	s.acc1P = rp.GetPoly(s.alpha)
	s.acc0Q.IsNTT, s.acc1Q.IsNTT, s.acc0P.IsNTT, s.acc1P.IsNTT = true, true, true, true
	if !s.strict {
		s.wide = params.getWide(2 * s.ext1)
	}

	res := NewCiphertext(params, level)
	res.Scale = ct.Scale
	var p0 *ring.Poly
	defer func() {
		if p0 != nil {
			rq.PutPoly(p0)
		}
	}()
	p0 = rq.GetPolyDirty(qLimbs)
	s.p0, s.p1 = p0, res.C1

	for di := range hd.digits {
		s.d = di
		s.ext = hd.digits[di]
		if s.wide != nil && di > 0 && di%(numeric.MaxLazyProducts-1) == 0 {
			if serial {
				for i := 0; i < s.ext1; i++ {
					s.foldStage(i)
				}
			} else {
				pool.ForEach(s.ext1, s.foldStage)
			}
		}
		if serial {
			for i := 0; i < s.ext1; i++ {
				s.macStage(i)
			}
		} else {
			pool.ForEach(s.ext1, s.macStage)
		}
	}
	s.ext = nil // borrowed from hd — not the pipeline's to release

	rq.AutomorphismParallel(res.C0, hd.c0, g, pool)
	ev.ksFinish(s, serial)
	rq.NTTParallel(res.C0, pool)
	rq.AddParallel(res.C0, res.C0, p0, pool)
	rq.PutPoly(p0)
	p0 = nil
	ev.endOp("Rotation", level, sp)
	return res
}

// rotateHoistedAccum is the group-level sibling of rotateHoistedOne: it
// replays the shared decomposition for one Galois element in accumulate-only
// mode, leaving the key-switch MACs as NTT-domain residues over the extended
// basis Q_l ∪ P in the caller-owned accumulator acc — no inverse NTT, no
// ModDown. Together with the P·σ_g(c0) correction (which the caller folds in
// via the parameter set's pModQ scalars) the residues form the lazy QP-basis
// image P·rot_g(ct) that double-hoisted giant-step groups multiply
// plaintext diagonals against, deferring the entire basis reduction to one
// ModDown per group.
func (ev *Evaluator) rotateHoistedAccum(hd *hoistedDecomposition, g uint64, key *SwitchingKey, acc qpAccum) {
	params := ev.params
	pool := ev.pool
	serial := pool.Workers() <= 1
	rq, rp := params.RingQ, params.RingP
	level := hd.level
	qLimbs := level + 1

	s := params.getKsState()
	defer ev.ksRelease(s)
	s.ev = ev
	s.level = level
	s.qLimbs = qLimbs
	s.alpha = params.Alpha()
	s.ext1 = qLimbs + s.alpha
	s.n = params.N
	s.strict = rq.StrictKernels()
	s.key = key
	s.hoisted = true
	s.accumOnly = true
	s.permQ = rq.NTTGaloisPermutation(g)
	s.permP = rp.NTTGaloisPermutation(g)

	// Caller-owned destinations (zeroed by the caller): under strict kernels
	// the mac stage accumulates exact residues directly into them; on the
	// lazy path they receive the deferred reductions of the wide columns.
	s.acc0Q, s.acc1Q = acc.c0Q, acc.c1Q
	s.acc0P, s.acc1P = acc.c0P, acc.c1P
	if !s.strict {
		s.wide = params.getWide(2 * s.ext1)
	}

	for di := range hd.digits {
		s.d = di
		s.ext = hd.digits[di]
		if s.wide != nil && di > 0 && di%(numeric.MaxLazyProducts-1) == 0 {
			if serial {
				for i := 0; i < s.ext1; i++ {
					s.foldStage(i)
				}
			} else {
				pool.ForEach(s.ext1, s.foldStage)
			}
		}
		if serial {
			for i := 0; i < s.ext1; i++ {
				s.macStage(i)
			}
		} else {
			pool.ForEach(s.ext1, s.macStage)
		}
	}
	s.ext = nil // borrowed from hd

	if serial {
		for i := 0; i < s.ext1; i++ {
			s.reduceResidueStage(i)
		}
	} else {
		pool.ForEach(s.ext1, s.reduceResidueStage)
	}
	acc.c0Q.IsNTT, acc.c1Q.IsNTT, acc.c0P.IsNTT, acc.c1P.IsNTT = true, true, true, true
}

// galoisForRotation mirrors automorph.GaloisElementForRotation without the
// import cycle risk growing (kept local for clarity).
func galoisForRotation(steps, n int) uint64 {
	half := n / 2
	s := ((steps % half) + half) % half
	twoN := uint64(2 * n)
	g := uint64(1)
	base := uint64(5)
	for e := s; e > 0; e >>= 1 {
		if e&1 == 1 {
			g = g * base % twoN
		}
		base = base * base % twoN
	}
	return g
}
