package ckks

import (
	"fmt"

	"poseidon/internal/ring"
)

// Rotation hoisting (Halevi–Shoup): when one ciphertext feeds many
// rotations — the BSGS linear transform and every matrix-heavy workload —
// the expensive part of each keyswitch (digit decomposition, basis
// extension and the forward NTTs of the extended digits) depends only on
// the input, not on the Galois element. RotateHoisted performs that work
// once and replays it per rotation as a cheap NTT-domain permutation,
// because the decomposition commutes with the automorphism.

// hoistedDecomposition caches the shared per-input keyswitch state.
type hoistedDecomposition struct {
	level  int
	digits [][][]uint64 // [digit][limb][coeff], NTT domain over Q_l ∪ P
	c0     *ring.Poly   // coefficient-domain copy of C0
}

// decomposeHoisted performs the shared phase on ct.C1.
func (ev *Evaluator) decomposeHoisted(ct *Ciphertext) *hoistedDecomposition {
	params := ev.params
	rq, rp := params.RingQ, params.RingP
	level := ct.Level
	alpha := params.Alpha()
	digits := params.Digits(level)
	n := params.N

	c1 := ct.C1.CopyNew()
	rq.INTT(c1)
	c0 := ct.C0.CopyNew()
	rq.INTT(c0)

	hd := &hoistedDecomposition{level: level, c0: c0}
	extLimbs := level + 1 + alpha
	for d := 0; d < digits; d++ {
		ext := make([][]uint64, extLimbs)
		backing := make([]uint64, extLimbs*n)
		for i := range ext {
			ext[i] = backing[i*n : (i+1)*n]
		}
		params.decomposer.DecomposeAndExtend(level, d, c1.Coeffs, ext)
		for i := 0; i <= level; i++ {
			rq.Tables[i].Forward(ext[i])
		}
		for j := 0; j < alpha; j++ {
			rp.Tables[j].Forward(ext[level+1+j])
		}
		hd.digits = append(hd.digits, ext)
	}
	return hd
}

// RotateHoisted rotates ct by every step in steps, sharing one digit
// decomposition across all of them. Returns a map from step to result.
// Requires rotation keys for every step.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, steps []int) map[int]*Ciphertext {
	if ev.rtks == nil {
		panic("ckks: rotation requires rotation keys")
	}
	params := ev.params
	rq, rp := params.RingQ, params.RingP
	level := ct.Level
	alpha := params.Alpha()
	n := params.N

	hd := ev.decomposeHoisted(ct)
	out := make(map[int]*Ciphertext, len(steps))
	permBuf := make([]uint64, n)

	for _, step := range steps {
		g := galoisForRotation(step, params.N)
		if g == 1 {
			out[step] = ct.CopyNew()
			continue
		}
		key, ok := ev.rtks.Keys[g]
		if !ok {
			panic(fmt.Sprintf("ckks: no rotation key for step %d (g=%d)", step, g))
		}
		permQ := rq.NTTGaloisPermutation(g)
		permP := rp.NTTGaloisPermutation(g)

		acc0Q := rq.NewPoly(level + 1)
		acc1Q := rq.NewPoly(level + 1)
		acc0P := rp.NewPoly(alpha)
		acc1P := rp.NewPoly(alpha)
		acc0Q.IsNTT, acc1Q.IsNTT, acc0P.IsNTT, acc1P.IsNTT = true, true, true, true

		for d, ext := range hd.digits {
			bd, ad := key.B[d], key.A[d]
			for i := 0; i <= level; i++ {
				mod := rq.Moduli[i]
				ring.ApplyPermutationNTT(permBuf, ext[i], permQ)
				macLimb(acc0Q.Coeffs[i], permBuf, bd.Q.Coeffs[i], mod)
				macLimb(acc1Q.Coeffs[i], permBuf, ad.Q.Coeffs[i], mod)
			}
			for j := 0; j < alpha; j++ {
				mod := rp.Moduli[j]
				ring.ApplyPermutationNTT(permBuf, ext[level+1+j], permP)
				macLimb(acc0P.Coeffs[j], permBuf, bd.P.Coeffs[j], mod)
				macLimb(acc1P.Coeffs[j], permBuf, ad.P.Coeffs[j], mod)
			}
		}

		rq.INTT(acc0Q)
		rq.INTT(acc1Q)
		rp.INTT(acc0P)
		rp.INTT(acc1P)
		p0 := rq.NewPoly(level + 1)
		p1 := rq.NewPoly(level + 1)
		md := params.modDown[level]
		md.ModDown(p0.Coeffs, acc0Q.Coeffs, acc0P.Coeffs)
		md.ModDown(p1.Coeffs, acc1Q.Coeffs, acc1P.Coeffs)
		rq.NTT(p0)
		rq.NTT(p1)

		a0 := rq.NewPoly(level + 1)
		rq.Automorphism(a0, hd.c0, g)
		rq.NTT(a0)
		res := &Ciphertext{C0: a0, C1: p1, Scale: ct.Scale, Level: level}
		rq.Add(res.C0, res.C0, p0)
		ev.observe("Rotation", level)
		out[step] = res
	}
	return out
}

// galoisForRotation mirrors automorph.GaloisElementForRotation without the
// import cycle risk growing (kept local for clarity).
func galoisForRotation(steps, n int) uint64 {
	half := n / 2
	s := ((steps % half) + half) % half
	twoN := uint64(2 * n)
	g := uint64(1)
	base := uint64(5)
	for e := s; e > 0; e >>= 1 {
		if e&1 == 1 {
			g = g * base % twoN
		}
		base = base * base % twoN
	}
	return g
}
