package ckks

import (
	"fmt"

	"poseidon/internal/numeric"
	"poseidon/internal/ring"
)

// Rotation hoisting (Halevi–Shoup): when one ciphertext feeds many
// rotations — the BSGS linear transform and every matrix-heavy workload —
// the expensive part of each keyswitch (digit decomposition, basis
// extension and the forward NTTs of the extended digits) depends only on
// the input, not on the Galois element. RotateHoisted performs that work
// once and replays it per rotation as a cheap NTT-domain permutation,
// because the decomposition commutes with the automorphism.
//
// Both phases run on the evaluator's worker pool: the shared decomposition
// chunks across coefficients and fans limbs out per digit, and each
// rotation's permuted multiply-accumulate runs one limb per task with
// per-task permutation buffers drawn from the ring's scratch pool.

// hoistedDecomposition caches the shared per-input keyswitch state.
type hoistedDecomposition struct {
	level  int
	digits [][][]uint64 // [digit][limb][coeff], NTT domain over Q_l ∪ P
	c0     *ring.Poly   // coefficient-domain copy of C0
}

// decomposeHoisted performs the shared phase on ct.C1.
func (ev *Evaluator) decomposeHoisted(ct *Ciphertext) *hoistedDecomposition {
	params := ev.params
	pool := ev.pool
	rq, rp := params.RingQ, params.RingP
	level := ct.Level
	alpha := params.Alpha()
	digits := params.Digits(level)
	n := params.N
	qLimbs := level + 1
	extLimbs := qLimbs + alpha

	c1 := ev.inttCopy(ct.C1)
	c0 := ev.inttCopy(ct.C0)

	hd := &hoistedDecomposition{level: level, c0: c0}
	decomposer := params.decomposer
	for d := 0; d < digits; d++ {
		ext := make([][]uint64, extLimbs)
		backing := make([]uint64, extLimbs*n)
		for i := range ext {
			ext[i] = backing[i*n : (i+1)*n]
		}
		pool.ForEachChunk(n, func(lo, hi int) {
			decomposer.DecomposeAndExtend(level, d, rangeView(c1.Coeffs, lo, hi), rangeView(ext, lo, hi))
		})
		pool.ForEach(extLimbs, func(i int) {
			if i < qLimbs {
				rq.ForwardLimb(i, ext[i])
			} else {
				rp.ForwardLimb(i-qLimbs, ext[i])
			}
		})
		hd.digits = append(hd.digits, ext)
	}
	rq.PutPoly(c1)
	return hd
}

// RotateHoisted rotates ct by every step in steps, sharing one digit
// decomposition across all of them. Returns a map from step to result.
// Requires rotation keys for every step.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, steps []int) map[int]*Ciphertext {
	if ev.rtks == nil {
		panic("ckks: rotation requires rotation keys")
	}
	params := ev.params
	pool := ev.pool
	rq, rp := params.RingQ, params.RingP
	level := ct.Level
	alpha := params.Alpha()
	n := params.N
	qLimbs := level + 1
	extLimbs := qLimbs + alpha
	strict := rq.StrictKernels()

	hd := ev.decomposeHoisted(ct)
	out := make(map[int]*Ciphertext, len(steps))

	for _, step := range steps {
		g := galoisForRotation(step, params.N)
		if g == 1 {
			out[step] = ct.CopyNew()
			continue
		}
		key, ok := ev.rtks.Keys[g]
		if !ok {
			panic(fmt.Sprintf("ckks: no rotation key for step %d (g=%d)", step, g))
		}
		permQ := rq.NTTGaloisPermutation(g)
		permP := rp.NTTGaloisPermutation(g)

		acc0Q := rq.GetPoly(qLimbs)
		acc1Q := rq.GetPoly(qLimbs)
		acc0P := rp.GetPoly(alpha)
		acc1P := rp.GetPoly(alpha)
		acc0Q.IsNTT, acc1Q.IsNTT, acc0P.IsNTT, acc1P.IsNTT = true, true, true, true

		// Fused lazy digit sum, same accumulator discipline as
		// keySwitchCore: raw 128-bit MACs per digit, one deferred Barrett
		// reduction per coefficient folded into the inverse-NTT pass.
		var wide *wideAcc
		if !strict {
			wide = newWideAcc(2*extLimbs, n)
		}

		for di, ext := range hd.digits {
			if wide != nil && di > 0 && di%(numeric.MaxLazyProducts-1) == 0 {
				pool.ForEach(extLimbs, func(i int) {
					mod := extModulus(rq, rp, qLimbs, i)
					wide.fold(mod, i)
					wide.fold(mod, extLimbs+i)
				})
			}
			bd, ad := key.B[di], key.A[di]
			pool.ForEach(extLimbs, func(i int) {
				permBuf := rq.GetVec()
				if i < qLimbs {
					ring.ApplyPermutationNTT(permBuf, ext[i], permQ)
					if strict {
						mod := rq.Moduli[i]
						macLimb(acc0Q.Coeffs[i], permBuf, bd.Q.Coeffs[i], mod)
						macLimb(acc1Q.Coeffs[i], permBuf, ad.Q.Coeffs[i], mod)
					} else {
						wide.mac(i, permBuf, bd.Q.Coeffs[i])
						wide.mac(extLimbs+i, permBuf, ad.Q.Coeffs[i])
					}
				} else {
					j := i - qLimbs
					ring.ApplyPermutationNTT(permBuf, ext[i], permP)
					if strict {
						mod := rp.Moduli[j]
						macLimb(acc0P.Coeffs[j], permBuf, bd.P.Coeffs[j], mod)
						macLimb(acc1P.Coeffs[j], permBuf, ad.P.Coeffs[j], mod)
					} else {
						wide.mac(i, permBuf, bd.P.Coeffs[j])
						wide.mac(extLimbs+i, permBuf, ad.P.Coeffs[j])
					}
				}
				rq.PutVec(permBuf)
			})
		}

		accQ := [2]*ring.Poly{acc0Q, acc1Q}
		accP := [2]*ring.Poly{acc0P, acc1P}
		pool.ForEach(2*qLimbs+2*alpha, func(t int) {
			if t < 2*qLimbs {
				c, i := t/qLimbs, t%qLimbs
				if wide != nil {
					wide.reduce(rq.Moduli[i], c*extLimbs+i, accQ[c].Coeffs[i])
				}
				rq.InverseLimb(i, accQ[c].Coeffs[i])
			} else {
				t -= 2 * qLimbs
				c, j := t/alpha, t%alpha
				if wide != nil {
					wide.reduce(rp.Moduli[j], c*extLimbs+qLimbs+j, accP[c].Coeffs[j])
				}
				rp.InverseLimb(j, accP[c].Coeffs[j])
			}
		})
		acc0Q.IsNTT, acc1Q.IsNTT, acc0P.IsNTT, acc1P.IsNTT = false, false, false, false

		p0 := rq.NewPoly(qLimbs)
		p1 := rq.NewPoly(qLimbs)
		md := params.modDown[level]
		pool.ForEachChunk(n, func(lo, hi int) {
			md.ModDown(rangeView(p0.Coeffs, lo, hi), rangeView(acc0Q.Coeffs, lo, hi), rangeView(acc0P.Coeffs, lo, hi))
			md.ModDown(rangeView(p1.Coeffs, lo, hi), rangeView(acc1Q.Coeffs, lo, hi), rangeView(acc1P.Coeffs, lo, hi))
		})
		rq.PutPoly(acc0Q)
		rq.PutPoly(acc1Q)
		rp.PutPoly(acc0P)
		rp.PutPoly(acc1P)

		a0 := rq.NewPoly(qLimbs)
		rq.AutomorphismParallel(a0, hd.c0, g, pool)
		pool.ForEach(3*qLimbs, func(t int) {
			switch {
			case t < qLimbs:
				rq.ForwardLimb(t, p0.Coeffs[t])
			case t < 2*qLimbs:
				rq.ForwardLimb(t-qLimbs, p1.Coeffs[t-qLimbs])
			default:
				rq.ForwardLimb(t-2*qLimbs, a0.Coeffs[t-2*qLimbs])
			}
		})
		p0.IsNTT, p1.IsNTT, a0.IsNTT = true, true, true

		res := &Ciphertext{C0: a0, C1: p1, Scale: ct.Scale, Level: level}
		rq.AddParallel(res.C0, res.C0, p0, pool)
		ev.observe("Rotation", level)
		out[step] = res
	}
	rq.PutPoly(hd.c0)
	return out
}

// galoisForRotation mirrors automorph.GaloisElementForRotation without the
// import cycle risk growing (kept local for clarity).
func galoisForRotation(steps, n int) uint64 {
	half := n / 2
	s := ((steps % half) + half) % half
	twoN := uint64(2 * n)
	g := uint64(1)
	base := uint64(5)
	for e := s; e > 0; e >>= 1 {
		if e&1 == 1 {
			g = g * base % twoN
		}
		base = base * base % twoN
	}
	return g
}
