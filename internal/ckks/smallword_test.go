package ckks

import (
	"math/rand"
	"testing"
)

// The paper limits RNS limbs to 32-bit words to normalize HBM accesses.
// The scheme must function correctly on such a chain: ~30-bit primes with
// a 25-bit scale, the "small word" configuration the accelerator streams
// at 4 bytes per limb.
func TestSmallWordParameters(t *testing.T) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     10,
		LogQ:     []int{32, 28, 28, 28, 28, 28},
		LogP:     []int{33, 33, 33},
		LogScale: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range params.Q {
		if q >= 1<<32 {
			t.Fatalf("prime %d exceeds 32 bits", q)
		}
	}

	kgen := NewKeyGenerator(params, 110)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	rlk := kgen.GenRelinearizationKey(sk)
	rtks := kgen.GenRotationKeys(sk, []int{1}, false)
	enc := NewEncoder(params)
	encr := NewEncryptor(params, pk, 111)
	decr := NewDecryptor(params, sk)
	ev := NewEvaluator(params, rlk, rtks)

	rng := rand.New(rand.NewSource(112))
	z := randomComplex(rng, params.Slots, 1.0)
	ct := encr.Encrypt(enc.Encode(z, params.MaxLevel(), params.Scale))

	// Round trip at reduced precision (25-bit scale → ~14 usable bits).
	got := enc.Decode(decr.Decrypt(ct))
	assertClose(t, got, z, 1e-3, "32-bit-word encrypt/decrypt")

	// One multiplication with rescale.
	prod := ev.Rescale(ev.MulRelin(ct, ct))
	want := make([]complex128, len(z))
	for i := range want {
		want[i] = z[i] * z[i]
	}
	got = enc.Decode(decr.Decrypt(prod))
	assertClose(t, got, want, 5e-2, "32-bit-word CMult")

	// And a rotation.
	rot := ev.Rotate(ct, 1)
	for i := range want {
		want[i] = z[(i+1)%params.Slots]
	}
	got = enc.Decode(decr.Decrypt(rot))
	assertClose(t, got, want, 5e-2, "32-bit-word rotation")
}
