package ckks

import (
	"fmt"
	"math"

	"poseidon/internal/automorph"
	"poseidon/internal/numeric"
	"poseidon/internal/ring"
)

// Evaluator executes homomorphic operations. It holds the evaluation keys
// and scratch state; create one per goroutine.
type Evaluator struct {
	params   *Parameters
	rlk      *RelinearizationKey
	rtks     *RotationKeySet
	observer OpObserver
}

// NewEvaluator creates an evaluator. rlk may be nil if Mul is never
// relinearized; rtks may be nil if no rotations are performed.
func NewEvaluator(params *Parameters, rlk *RelinearizationKey, rtks *RotationKeySet) *Evaluator {
	return &Evaluator{params: params, rlk: rlk, rtks: rtks}
}

// Params returns the evaluator's parameter set.
func (ev *Evaluator) Params() *Parameters { return ev.params }

func sameScale(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// alignLevels drops limbs from the deeper ciphertext so both operands live
// at the same level, returning aligned views.
func (ev *Evaluator) alignLevels(a, b *Ciphertext) (*Ciphertext, *Ciphertext) {
	if a.Level == b.Level {
		return a, b
	}
	if a.Level > b.Level {
		a = &Ciphertext{C0: prefix(a.C0, b.Level+1), C1: prefix(a.C1, b.Level+1), Scale: a.Scale, Level: b.Level}
	} else {
		b = &Ciphertext{C0: prefix(b.C0, a.Level+1), C1: prefix(b.C1, a.Level+1), Scale: b.Scale, Level: a.Level}
	}
	return a, b
}

// DropLevel returns a view of ct at the lower level newLevel.
func (ev *Evaluator) DropLevel(ct *Ciphertext, newLevel int) *Ciphertext {
	if newLevel > ct.Level {
		panic("ckks: DropLevel cannot raise level")
	}
	return &Ciphertext{
		C0:    prefix(ct.C0, newLevel+1),
		C1:    prefix(ct.C1, newLevel+1),
		Scale: ct.Scale,
		Level: newLevel,
	}
}

// Add returns a + b (HAdd, ciphertext-ciphertext). Operand scales must
// match; levels are aligned automatically.
func (ev *Evaluator) Add(a, b *Ciphertext) *Ciphertext {
	a, b = ev.alignLevels(a, b)
	if !sameScale(a.Scale, b.Scale) {
		panic(fmt.Sprintf("ckks: Add scale mismatch %g vs %g", a.Scale, b.Scale))
	}
	rq := ev.params.RingQ
	out := &Ciphertext{C0: rq.NewPoly(a.Level + 1), C1: rq.NewPoly(a.Level + 1), Scale: a.Scale, Level: a.Level}
	rq.Add(out.C0, a.C0, b.C0)
	rq.Add(out.C1, a.C1, b.C1)
	ev.observe("HAdd", a.Level)
	return out
}

// Sub returns a − b.
func (ev *Evaluator) Sub(a, b *Ciphertext) *Ciphertext {
	a, b = ev.alignLevels(a, b)
	if !sameScale(a.Scale, b.Scale) {
		panic(fmt.Sprintf("ckks: Sub scale mismatch %g vs %g", a.Scale, b.Scale))
	}
	rq := ev.params.RingQ
	out := &Ciphertext{C0: rq.NewPoly(a.Level + 1), C1: rq.NewPoly(a.Level + 1), Scale: a.Scale, Level: a.Level}
	rq.Sub(out.C0, a.C0, b.C0)
	rq.Sub(out.C1, a.C1, b.C1)
	ev.observe("HAdd", a.Level)
	return out
}

// Neg returns −a.
func (ev *Evaluator) Neg(a *Ciphertext) *Ciphertext {
	rq := ev.params.RingQ
	out := &Ciphertext{C0: rq.NewPoly(a.Level + 1), C1: rq.NewPoly(a.Level + 1), Scale: a.Scale, Level: a.Level}
	rq.Neg(out.C0, a.C0)
	rq.Neg(out.C1, a.C1)
	return out
}

// AddPlain returns ct + pt (HAdd, ciphertext-plaintext): only C0 changes.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	if !sameScale(ct.Scale, pt.Scale) {
		panic(fmt.Sprintf("ckks: AddPlain scale mismatch %g vs %g", ct.Scale, pt.Scale))
	}
	level := ct.Level
	if pt.Level < level {
		level = pt.Level
	}
	rq := ev.params.RingQ
	out := &Ciphertext{C0: rq.NewPoly(level + 1), C1: rq.NewPoly(level + 1), Scale: ct.Scale, Level: level}
	rq.Add(out.C0, prefix(ct.C0, level+1), prefix(pt.Value, level+1))
	copyInto(out.C1, prefix(ct.C1, level+1))
	ev.observe("HAddPlain", level)
	return out
}

func copyInto(dst, src *ring.Poly) {
	for i := range dst.Coeffs {
		copy(dst.Coeffs[i], src.Coeffs[i])
	}
	dst.IsNTT = src.IsNTT
}

// MulPlain returns ct · pt (PMult). The output scale is the product of the
// operand scales; follow with Rescale to restore Δ.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	level := ct.Level
	if pt.Level < level {
		level = pt.Level
	}
	rq := ev.params.RingQ
	out := &Ciphertext{C0: rq.NewPoly(level + 1), C1: rq.NewPoly(level + 1), Scale: ct.Scale * pt.Scale, Level: level}
	rq.MulCoeffwise(out.C0, prefix(ct.C0, level+1), prefix(pt.Value, level+1))
	rq.MulCoeffwise(out.C1, prefix(ct.C1, level+1), prefix(pt.Value, level+1))
	ev.observe("PMult", level)
	return out
}

// MulRelin returns a·b with relinearization (CMult): the degree-2 term d2
// is switched back to degree 1 with the relinearization key. The output
// scale is the product of the operand scales.
func (ev *Evaluator) MulRelin(a, b *Ciphertext) *Ciphertext {
	if ev.rlk == nil {
		panic("ckks: MulRelin requires a relinearization key")
	}
	a, b = ev.alignLevels(a, b)
	level := a.Level
	rq := ev.params.RingQ

	d0 := rq.NewPoly(level + 1)
	d1 := rq.NewPoly(level + 1)
	d2 := rq.NewPoly(level + 1)
	rq.MulCoeffwise(d0, a.C0, b.C0)
	rq.MulCoeffwise(d1, a.C0, b.C1)
	rq.MulCoeffwiseAdd(d1, a.C1, b.C0)
	rq.MulCoeffwise(d2, a.C1, b.C1)

	// Keyswitch d2: contributes (p0, p1) ≈ (d2·s² − p1·s, p1).
	d2c := d2
	rq.INTT(d2c)
	p0, p1 := ev.keySwitchCore(level, d2c, &ev.rlk.SwitchingKey)

	out := &Ciphertext{C0: d0, C1: d1, Scale: a.Scale * b.Scale, Level: level}
	rq.Add(out.C0, out.C0, p0)
	rq.Add(out.C1, out.C1, p1)
	ev.observe("CMult", level)
	return out
}

// Rescale divides the ciphertext by the last active prime, dropping one
// level (the Rescale basic operation).
func (ev *Evaluator) Rescale(ct *Ciphertext) *Ciphertext {
	if ct.Level == 0 {
		panic("ckks: cannot rescale at level 0")
	}
	rq := ev.params.RingQ
	level := ct.Level
	c0 := ct.C0.CopyNew()
	c1 := ct.C1.CopyNew()
	rq.INTT(c0)
	rq.INTT(c1)

	out := &Ciphertext{
		C0:    rq.NewPoly(level),
		C1:    rq.NewPoly(level),
		Scale: ct.Scale / float64(ev.params.Q[level]),
		Level: level - 1,
	}
	ev.params.rescaler.Rescale(out.C0.Coeffs, c0.Coeffs)
	ev.params.rescaler.Rescale(out.C1.Coeffs, c1.Coeffs)
	rq.NTT(out.C0)
	rq.NTT(out.C1)
	ev.observe("Rescale", level)
	return out
}

// Rotate rotates the slot vector by `steps` positions (Rotation =
// automorphism + keyswitch). Requires the corresponding rotation key.
func (ev *Evaluator) Rotate(ct *Ciphertext, steps int) *Ciphertext {
	g := automorph.GaloisElementForRotation(steps, ev.params.N)
	return ev.automorphismKS(ct, g)
}

// Conjugate conjugates every slot.
func (ev *Evaluator) Conjugate(ct *Ciphertext) *Ciphertext {
	g := automorph.GaloisElementConjugate(ev.params.N)
	return ev.automorphismKS(ct, g)
}

func (ev *Evaluator) automorphismKS(ct *Ciphertext, g uint64) *Ciphertext {
	if g == 1 {
		return ct.CopyNew()
	}
	if ev.rtks == nil {
		panic("ckks: rotation requires rotation keys")
	}
	key, ok := ev.rtks.Keys[g]
	if !ok {
		panic(fmt.Sprintf("ckks: no rotation key for Galois element %d", g))
	}
	rq := ev.params.RingQ
	level := ct.Level

	c0 := ct.C0.CopyNew()
	c1 := ct.C1.CopyNew()
	rq.INTT(c0)
	rq.INTT(c1)
	a0 := rq.NewPoly(level + 1)
	a1 := rq.NewPoly(level + 1)
	rq.Automorphism(a0, c0, g)
	rq.Automorphism(a1, c1, g)

	// Keyswitch σ_g(c1) from σ_g(s) to s.
	p0, p1 := ev.keySwitchCore(level, a1, key)
	rq.NTT(a0)
	out := &Ciphertext{C0: a0, C1: p1, Scale: ct.Scale, Level: level}
	rq.Add(out.C0, out.C0, p0)
	ev.observe("Rotation", level)
	return out
}

// KeySwitch re-encrypts ct from the key underlying swk's target to s —
// exposed for tests and for the trace generator.
func (ev *Evaluator) KeySwitch(ct *Ciphertext, swk *SwitchingKey) *Ciphertext {
	rq := ev.params.RingQ
	c1 := ct.C1.CopyNew()
	rq.INTT(c1)
	p0, p1 := ev.keySwitchCore(ct.Level, c1, swk)
	out := &Ciphertext{C0: ct.C0.CopyNew(), C1: p1, Scale: ct.Scale, Level: ct.Level}
	rq.Add(out.C0, out.C0, p0)
	return out
}

// keySwitchCore is the paper's Keyswitch pipeline: decompose cx (coeff
// domain, level limbs over Q) into digits, RNSconv/ModUp each digit to
// Q_l ∪ P, inner-product with the key digits in the NTT domain, then
// ModDown by P. Returns (p0, p1) in NTT domain at the input level.
func (ev *Evaluator) keySwitchCore(level int, cx *ring.Poly, key *SwitchingKey) (p0, p1 *ring.Poly) {
	params := ev.params
	rq, rp := params.RingQ, params.RingP
	alpha := params.Alpha()
	digits := params.Digits(level)
	n := params.N

	// Accumulators over Q_l and P, NTT domain.
	acc0Q := rq.NewPoly(level + 1)
	acc1Q := rq.NewPoly(level + 1)
	acc0P := rp.NewPoly(alpha)
	acc1P := rp.NewPoly(alpha)
	acc0Q.IsNTT, acc1Q.IsNTT, acc0P.IsNTT, acc1P.IsNTT = true, true, true, true

	// Scratch for one extended digit.
	extLimbs := level + 1 + alpha
	ext := make([][]uint64, extLimbs)
	backing := make([]uint64, extLimbs*n)
	for i := range ext {
		ext[i] = backing[i*n : (i+1)*n]
	}

	for d := 0; d < digits; d++ {
		params.decomposer.DecomposeAndExtend(level, d, cx.Coeffs, ext)
		// NTT the extended digit limb-wise: Q limbs with ringQ tables, P
		// limbs with ringP tables.
		for i := 0; i <= level; i++ {
			rq.Tables[i].Forward(ext[i])
		}
		for j := 0; j < alpha; j++ {
			rp.Tables[j].Forward(ext[level+1+j])
		}
		// Multiply-accumulate against the key digit.
		bd, ad := key.B[d], key.A[d]
		for i := 0; i <= level; i++ {
			mod := rq.Moduli[i]
			macLimb(acc0Q.Coeffs[i], ext[i], bd.Q.Coeffs[i], mod)
			macLimb(acc1Q.Coeffs[i], ext[i], ad.Q.Coeffs[i], mod)
		}
		for j := 0; j < alpha; j++ {
			mod := rp.Moduli[j]
			macLimb(acc0P.Coeffs[j], ext[level+1+j], bd.P.Coeffs[j], mod)
			macLimb(acc1P.Coeffs[j], ext[level+1+j], ad.P.Coeffs[j], mod)
		}
	}

	// ModDown: back to coefficient domain, divide by P, return to NTT.
	rq.INTT(acc0Q)
	rq.INTT(acc1Q)
	rp.INTT(acc0P)
	rp.INTT(acc1P)
	p0 = rq.NewPoly(level + 1)
	p1 = rq.NewPoly(level + 1)
	md := params.modDown[level]
	md.ModDown(p0.Coeffs, acc0Q.Coeffs, acc0P.Coeffs)
	md.ModDown(p1.Coeffs, acc1Q.Coeffs, acc1P.Coeffs)
	rq.NTT(p0)
	rq.NTT(p1)
	return p0, p1
}

// macLimb computes acc[j] += a[j]·b[j] mod q over one limb.
func macLimb(acc, a, b []uint64, mod numeric.Modulus) {
	for j := range acc {
		acc[j] = mod.Add(acc[j], mod.Mul(a[j], b[j]))
	}
}
