package ckks

import (
	"math"

	"poseidon/internal/numeric"
	"poseidon/internal/ring"
)

// Evaluator executes homomorphic operations, fanning independent RNS limbs
// (and coefficient ranges) out across a bounded worker pool — the software
// counterpart of the accelerator time-multiplexing its operator cores'
// 512-lane datapath over limbs. Results are bit-identical for every worker
// count; the differential suite in parallel_diff_test.go enforces this.
//
// Every operation exists in two forms: an allocating method (Add, MulRelin,
// Rescale, …) that returns a fresh ciphertext, and a destination-passing
// *Into variant (AddInto, MulRelinInto, RescaleInto, …) that writes into a
// caller-owned ciphertext. The allocating methods are thin wrappers over the
// *Into forms. All internal scratch is drawn from the ring arena, so a
// steady-state *Into loop at fixed level performs zero heap allocations at
// workers=1 (the alloc gates in alloc_test.go enforce this); see
// evaluator_into.go.
//
// Concurrency: an Evaluator is safe for concurrent use by multiple
// goroutines — keys and parameters are read-only, per-operation scratch is
// checked out of mutex-guarded arenas (each checkout is exclusively owned
// until returned), and the shared caches (HFAuto routing maps, NTT-domain
// permutations, keyswitch digit extenders) are internally locked — provided
// any installed OpObserver is itself safe (TraceRecorder is). Evaluators
// derived via WithWorkers share keys but not pools.
type Evaluator struct {
	params   *Parameters
	rlk      *RelinearizationKey
	rtks     *RotationKeySet
	observer OpObserver
	// spans is the observer re-typed when it also implements SpanObserver:
	// non-nil switches every basic op into timed-span mode (see observer.go).
	// Kept as a separate field so the per-op gate is a single nil check.
	spans SpanObserver
	pool  *ring.Pool

	// guards, when non-nil, activates the runtime integrity guards
	// (residue-checksum seals, noise-budget checks, the opt-in
	// redundant-limb spot-check) used by the Try* API; see guard.go. Shared
	// by pointer with evaluators derived via WithWorkers.
	guards *guardState

	// recovery, when non-nil, re-executes Try* operations that fail with
	// ErrIntegrity, transactionally (attempts run into arena scratch; the
	// destination is only written from a verified attempt); see
	// recovery.go. Shared by pointer with evaluators derived via
	// WithWorkers, like guards.
	recovery *recoveryState
}

// NewEvaluator creates an evaluator. rlk may be nil if Mul is never
// relinearized; rtks may be nil if no rotations are performed. The
// evaluator executes on the parameter set's worker pool.
func NewEvaluator(params *Parameters, rlk *RelinearizationKey, rtks *RotationKeySet) *Evaluator {
	return &Evaluator{params: params, rlk: rlk, rtks: rtks, pool: params.pool}
}

// Params returns the evaluator's parameter set.
func (ev *Evaluator) Params() *Parameters { return ev.params }

// Workers reports the evaluator's limb-parallel worker bound.
func (ev *Evaluator) Workers() int { return ev.pool.Workers() }

// WithWorkers returns an evaluator sharing this one's keys and parameters
// but executing on its own pool of n workers (n ≤ 0 selects the shared
// GOMAXPROCS-sized default pool, n == 1 is fully serial). Outputs are
// bit-identical across worker counts.
func (ev *Evaluator) WithWorkers(n int) *Evaluator {
	e2 := *ev
	if n <= 0 {
		e2.pool = ring.DefaultPool()
	} else {
		e2.pool = ring.NewPool(n)
	}
	return &e2
}

func sameScale(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// alignLevels drops limbs from the deeper ciphertext so both operands live
// at the same level, returning aligned views. At equal levels the inputs
// are returned unchanged (no view allocation).
func (ev *Evaluator) alignLevels(a, b *Ciphertext) (*Ciphertext, *Ciphertext) {
	if a.Level == b.Level {
		return a, b
	}
	if a.Level > b.Level {
		a = &Ciphertext{C0: prefix(a.C0, b.Level+1), C1: prefix(a.C1, b.Level+1), Scale: a.Scale, Level: b.Level}
	} else {
		b = &Ciphertext{C0: prefix(b.C0, a.Level+1), C1: prefix(b.C1, a.Level+1), Scale: b.Scale, Level: a.Level}
	}
	return a, b
}

// DropLevel returns a view of ct at the lower level newLevel.
func (ev *Evaluator) DropLevel(ct *Ciphertext, newLevel int) *Ciphertext {
	if newLevel > ct.Level {
		panic("ckks: DropLevel cannot raise level")
	}
	return &Ciphertext{
		C0:    prefix(ct.C0, newLevel+1),
		C1:    prefix(ct.C1, newLevel+1),
		Scale: ct.Scale,
		Level: newLevel,
	}
}

// Add returns a + b (HAdd, ciphertext-ciphertext). Operand scales must
// match; levels are aligned automatically.
func (ev *Evaluator) Add(a, b *Ciphertext) *Ciphertext {
	return ev.AddInto(NewCiphertext(ev.params, min(a.Level, b.Level)), a, b)
}

// Sub returns a − b.
func (ev *Evaluator) Sub(a, b *Ciphertext) *Ciphertext {
	return ev.SubInto(NewCiphertext(ev.params, min(a.Level, b.Level)), a, b)
}

// Neg returns −a.
func (ev *Evaluator) Neg(a *Ciphertext) *Ciphertext {
	return ev.NegInto(NewCiphertext(ev.params, a.Level), a)
}

// AddPlain returns ct + pt (HAdd, ciphertext-plaintext): only C0 changes.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	return ev.AddPlainInto(NewCiphertext(ev.params, min(ct.Level, pt.Level)), ct, pt)
}

func copyInto(dst, src *ring.Poly) {
	for i := range dst.Coeffs {
		copy(dst.Coeffs[i], src.Coeffs[i])
	}
	dst.IsNTT = src.IsNTT
}

// MulPlain returns ct · pt (PMult). The output scale is the product of the
// operand scales; follow with Rescale to restore Δ.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	return ev.MulPlainInto(NewCiphertext(ev.params, min(ct.Level, pt.Level)), ct, pt)
}

// MulRelin returns a·b with relinearization (CMult): the degree-2 term d2
// is switched back to degree 1 with the relinearization key. The output
// scale is the product of the operand scales.
func (ev *Evaluator) MulRelin(a, b *Ciphertext) *Ciphertext {
	return ev.MulRelinInto(NewCiphertext(ev.params, min(a.Level, b.Level)), a, b)
}

// Rescale divides the ciphertext by the last active prime, dropping one
// level (the Rescale basic operation).
func (ev *Evaluator) Rescale(ct *Ciphertext) *Ciphertext {
	if ct.Level == 0 {
		panic("ckks: cannot rescale at level 0")
	}
	return ev.RescaleInto(NewCiphertext(ev.params, ct.Level-1), ct)
}

// inttCopy returns an arena copy of the NTT-domain polynomial p,
// transformed to the coefficient domain, with copy and inverse transform
// fused into one limb-parallel pass. Release with RingQ.PutPoly. If the
// transform panics mid-way (a worker fault, an injected abort), the scratch
// is returned to the arena before the panic propagates.
func (ev *Evaluator) inttCopy(p *ring.Poly) (out *ring.Poly) {
	dst := ev.params.RingQ.GetPolyDirty(len(p.Coeffs))
	defer func() {
		if out == nil {
			ev.params.RingQ.PutPoly(dst)
		}
	}()
	ev.inttCopyInto(dst, p)
	return dst
}

// inttCopyInto writes the coefficient-domain image of the NTT-domain
// polynomial p into dst (same limb count, fully overwritten).
func (ev *Evaluator) inttCopyInto(dst, p *ring.Poly) {
	rq := ev.params.RingQ
	if !p.IsNTT {
		panic("ckks: inttCopy requires NTT-domain input")
	}
	limbs := len(p.Coeffs)
	if ev.pool.Workers() <= 1 {
		for i := 0; i < limbs; i++ {
			copy(dst.Coeffs[i], p.Coeffs[i])
			rq.InverseLimb(i, dst.Coeffs[i])
		}
	} else {
		ev.pool.ForEach(limbs, func(i int) {
			copy(dst.Coeffs[i], p.Coeffs[i])
			rq.InverseLimb(i, dst.Coeffs[i])
		})
	}
	dst.IsNTT = false
}

// rangeView returns per-limb subslice views of the coefficient range
// [lo, hi) — how coefficient-chunked stages address disjoint work. The
// full range returns the input itself, so serial (single-chunk) execution
// allocates no view headers.
func rangeView(coeffs [][]uint64, lo, hi int) [][]uint64 {
	if lo == 0 && hi == len(coeffs[0]) {
		return coeffs
	}
	v := make([][]uint64, len(coeffs))
	for i, c := range coeffs {
		v[i] = c[lo:hi]
	}
	return v
}

// Rotate rotates the slot vector by `steps` positions (Rotation =
// automorphism + keyswitch). Requires the corresponding rotation key.
func (ev *Evaluator) Rotate(ct *Ciphertext, steps int) *Ciphertext {
	return ev.RotateInto(NewCiphertext(ev.params, ct.Level), ct, steps)
}

// Conjugate conjugates every slot.
func (ev *Evaluator) Conjugate(ct *Ciphertext) *Ciphertext {
	return ev.ConjugateInto(NewCiphertext(ev.params, ct.Level), ct)
}

// KeySwitch re-encrypts ct from the key underlying swk's target to s —
// exposed for tests and for the trace generator.
func (ev *Evaluator) KeySwitch(ct *Ciphertext, swk *SwitchingKey) *Ciphertext {
	return ev.KeySwitchInto(NewCiphertext(ev.params, ct.Level), ct, swk)
}

// ksState bundles the keyswitch pipeline's per-call state so each stage can
// run either as a plain serial loop (no closure, no allocation) or as a
// method value fanned out across the worker pool. Records are recycled
// through the Parameters free list; every field is (re)assigned per call.
type ksState struct {
	ev     *Evaluator
	level  int
	qLimbs int
	alpha  int
	ext1   int // extLimbs = qLimbs + alpha
	n      int
	strict bool

	cx  *ring.Poly    // coefficient-domain input (non-hoisted path)
	key *SwitchingKey // digit key material
	d   int           // current digit

	acc0Q, acc1Q *ring.Poly
	acc0P, acc1P *ring.Poly
	wide         *wideAcc   // nil under strict kernels
	ext          [][]uint64 // current extended digit (NTT domain after mac)

	p0, p1 *ring.Poly // destinations (qLimbs limbs each)

	// Hoisted replay: when hoisted is true, ext already holds the
	// NTT-domain shared decomposition and the mac stage permutes it through
	// permQ/permP instead of decomposing and transforming.
	hoisted      bool
	permQ, permP []int

	// accumOnly marks an accumulate-only run: the pipeline stops after
	// reducing the digit MACs to NTT-domain residues over the extended
	// basis (reduceResidueStage) — no inverse NTT, no ModDown. The acc
	// polys are then caller-owned accumulator destinations, and neither
	// ksFinish nor ksRelease may touch them. The double-hoisted
	// linear-transform engine runs baby-step rotations in this mode.
	accumOnly bool
}

// foldStage folds accumulator columns to residues, restarting the lazy
// 128-bit product budget (rows i and extLimbs+i for extended limb i).
func (s *ksState) foldStage(i int) {
	mod := extModulus(s.ev.params.RingQ, s.ev.params.RingP, s.qLimbs, i)
	s.wide.fold(mod, i)
	s.wide.fold(mod, s.ext1+i)
}

// decomposeChunk performs the RNSconv/ModUp of the current digit on the
// coefficient range [lo, hi) — every coefficient's basis extension is
// self-contained.
func (s *ksState) decomposeChunk(lo, hi int) {
	s.ev.params.decomposer.DecomposeAndExtend(
		s.level, s.d, rangeView(s.cx.Coeffs, lo, hi), rangeView(s.ext, lo, hi))
}

// macStage processes extended limb i of the current digit: forward NTT
// (or, hoisted, the NTT-domain Galois permutation through an arena staging
// vector) followed by the multiply-accumulate against the digit keys —
// fused lazy 128-bit columns in production, reduce-then-add under strict.
func (s *ksState) macStage(i int) {
	rq, rp := s.ev.params.RingQ, s.ev.params.RingP
	bd, ad := s.key.B[s.d], s.key.A[s.d]
	src := s.ext[i]
	var permBuf []uint64
	if s.hoisted {
		permBuf = rq.GetVec()
		if i < s.qLimbs {
			ring.ApplyPermutationNTT(permBuf, src, s.permQ)
		} else {
			ring.ApplyPermutationNTT(permBuf, src, s.permP)
		}
		src = permBuf
	}
	if i < s.qLimbs {
		if !s.hoisted {
			rq.ForwardLimb(i, src)
		}
		if s.strict {
			mod := rq.Moduli[i]
			macLimb(s.acc0Q.Coeffs[i], src, bd.Q.Coeffs[i], mod)
			macLimb(s.acc1Q.Coeffs[i], src, ad.Q.Coeffs[i], mod)
		} else {
			s.wide.macPair(i, s.ext1+i, bd.Q.Coeffs[i], ad.Q.Coeffs[i], src)
		}
	} else {
		j := i - s.qLimbs
		if !s.hoisted {
			rp.ForwardLimb(j, src)
		}
		if s.strict {
			mod := rp.Moduli[j]
			macLimb(s.acc0P.Coeffs[j], src, bd.P.Coeffs[j], mod)
			macLimb(s.acc1P.Coeffs[j], src, ad.P.Coeffs[j], mod)
		} else {
			s.wide.macPair(i, s.ext1+i, bd.P.Coeffs[j], ad.P.Coeffs[j], src)
		}
	}
	if permBuf != nil {
		rq.PutVec(permBuf)
	}
}

// reduceResidueStage closes the accumulator columns of extended limb i to
// NTT-domain residues in the acc polys without leaving the extended basis —
// the accumulate-only pipeline tail. Under strict kernels the mac stage
// already maintained exact residues in the acc polys, so there is nothing
// to reduce; both paths leave identical values (the lazy columns hold the
// exact same modular sum, closed by one deferred Barrett reduction).
func (s *ksState) reduceResidueStage(i int) {
	if s.wide == nil {
		return
	}
	mod := extModulus(s.ev.params.RingQ, s.ev.params.RingP, s.qLimbs, i)
	if i < s.qLimbs {
		s.wide.reduce(mod, i, s.acc0Q.Coeffs[i])
		s.wide.reduce(mod, s.ext1+i, s.acc1Q.Coeffs[i])
	} else {
		j := i - s.qLimbs
		s.wide.reduce(mod, i, s.acc0P.Coeffs[j])
		s.wide.reduce(mod, s.ext1+i, s.acc1P.Coeffs[j])
	}
}

// inttReduceStage closes accumulator row t (2·qLimbs Q rows then 2·alpha P
// rows): the lazy path's single deferred Barrett reduction per coefficient,
// fused with the inverse transform of the same limb.
func (s *ksState) inttReduceStage(t int) {
	rq, rp := s.ev.params.RingQ, s.ev.params.RingP
	if t < 2*s.qLimbs {
		c, i := t/s.qLimbs, t%s.qLimbs
		acc := s.acc0Q
		if c == 1 {
			acc = s.acc1Q
		}
		if s.wide != nil {
			s.wide.reduce(rq.Moduli[i], c*s.ext1+i, acc.Coeffs[i])
		}
		rq.InverseLimb(i, acc.Coeffs[i])
	} else {
		t -= 2 * s.qLimbs
		c, j := t/s.alpha, t%s.alpha
		acc := s.acc0P
		if c == 1 {
			acc = s.acc1P
		}
		if s.wide != nil {
			s.wide.reduce(rp.Moduli[j], c*s.ext1+s.qLimbs+j, acc.Coeffs[j])
		}
		rp.InverseLimb(j, acc.Coeffs[j])
	}
}

// modDownChunk divides the accumulated (Q, P) pair by P on coefficient
// range [lo, hi), writing the Q-basis results into p0/p1.
func (s *ksState) modDownChunk(lo, hi int) {
	md := s.ev.params.modDown[s.level]
	md.ModDown(rangeView(s.p0.Coeffs, lo, hi), rangeView(s.acc0Q.Coeffs, lo, hi), rangeView(s.acc0P.Coeffs, lo, hi))
	md.ModDown(rangeView(s.p1.Coeffs, lo, hi), rangeView(s.acc1Q.Coeffs, lo, hi), rangeView(s.acc1P.Coeffs, lo, hi))
}

// nttOutStage returns output limb t (p0 rows first, then p1) to the NTT
// domain.
func (s *ksState) nttOutStage(t int) {
	rq := s.ev.params.RingQ
	if t < s.qLimbs {
		rq.ForwardLimb(t, s.p0.Coeffs[t])
	} else {
		rq.ForwardLimb(t-s.qLimbs, s.p1.Coeffs[t-s.qLimbs])
	}
}

// keySwitchCoreInto is the paper's Keyswitch pipeline: decompose cx (coeff
// domain, level limbs over Q) into digits, RNSconv/ModUp each digit to
// Q_l ∪ P, inner-product with the key digits in the NTT domain, then
// ModDown by P. Writes (p0, p1) — NTT domain, qLimbs limbs, fully
// overwritten — into the caller-provided destinations.
//
// The digit inner product is the fused lazy accumulation: each extended
// limb keeps a 128-bit (hi, lo) column pair per coefficient, every digit's
// product is a raw multiply-accumulate (VecMACWide), and one Barrett
// reduction per coefficient (VecReduceWide) closes the sum — instead of a
// full reduction plus modular add per digit. ReduceWide is valid for any
// 128-bit value and q < 2^61 bounds each product below 2^122, so up to
// numeric.MaxLazyProducts digits accumulate safely; deeper chains fold the
// accumulator to a residue and continue. Under StrictKernels the per-digit
// reduce-then-add reference path (macLimb) runs instead; both are
// bit-identical.
//
// Parallel structure: the RNSconv/ModUp of a digit chunks across
// coefficients; the forward NTT and multiply-accumulate of its extended
// limbs fan out limb-wise (each limb is one independent lane group);
// ModDown chunks across coefficients again. Digits run sequentially so the
// accumulator update order — hence every bit of the result — matches the
// serial schedule. At workers=1 every stage runs as a plain loop over the
// pooled ksState's methods: no closures, no allocations — all scratch
// (accumulators, wide columns, extended digits, the state record itself)
// is recycled through the arena and the Parameters free lists.
func (ev *Evaluator) keySwitchCoreInto(p0, p1 *ring.Poly, level int, cx *ring.Poly, key *SwitchingKey) {
	params := ev.params
	pool := ev.pool
	serial := pool.Workers() <= 1
	rq, rp := params.RingQ, params.RingP
	digits := params.Digits(level)

	s := params.getKsState()
	// Leak-proof discipline: every piece of scratch attached to s is
	// released by this deferred call whether the pipeline completes (fields
	// already nilled by the eager Puts in ksFinish) or panics mid-digit.
	defer ev.ksRelease(s)
	s.ev = ev
	s.level = level
	s.qLimbs = level + 1
	s.alpha = params.Alpha()
	s.ext1 = s.qLimbs + s.alpha
	s.n = params.N
	s.strict = rq.StrictKernels()
	s.cx = cx
	s.key = key
	s.p0, s.p1 = p0, p1

	// Accumulators over Q_l and P, NTT domain, drawn zeroed from the arena.
	s.acc0Q = rq.GetPoly(s.qLimbs)
	s.acc1Q = rq.GetPoly(s.qLimbs)
	s.acc0P = rp.GetPoly(s.alpha)
	s.acc1P = rp.GetPoly(s.alpha)
	s.acc0Q.IsNTT, s.acc1Q.IsNTT, s.acc0P.IsNTT, s.acc1P.IsNTT = true, true, true, true

	// Lazy path: 128-bit accumulator columns, rows [0, extLimbs) for the
	// b-key sum and [extLimbs, 2·extLimbs) for the a-key sum.
	if !s.strict {
		s.wide = params.getWide(2 * s.ext1)
	}
	s.ext = params.getExt(s.ext1)

	for d := 0; d < digits; d++ {
		s.d = d
		if s.wide != nil && d > 0 && d%(numeric.MaxLazyProducts-1) == 0 {
			// Deep digit chains: fold each column to its residue so the
			// next MaxLazyProducts−1 products cannot overflow 128 bits.
			if serial {
				for i := 0; i < s.ext1; i++ {
					s.foldStage(i)
				}
			} else {
				pool.ForEach(s.ext1, s.foldStage)
			}
		}
		if serial {
			s.decomposeChunk(0, s.n)
			for i := 0; i < s.ext1; i++ {
				s.macStage(i)
			}
		} else {
			pool.ForEachChunk(s.n, s.decomposeChunk)
			pool.ForEach(s.ext1, s.macStage)
		}
	}

	ev.ksFinish(s, serial)
}

// ksFinish runs the tail of the keyswitch pipeline shared by the direct and
// hoisted paths: close the accumulators (deferred reduction + inverse NTT),
// ModDown by P into (p0, p1), return them to the NTT domain, and release
// every piece of scratch.
func (ev *Evaluator) ksFinish(s *ksState, serial bool) {
	params := ev.params
	pool := ev.pool
	rq, rp := params.RingQ, params.RingP

	if serial {
		for t := 0; t < 2*s.qLimbs+2*s.alpha; t++ {
			s.inttReduceStage(t)
		}
	} else {
		pool.ForEach(2*s.qLimbs+2*s.alpha, s.inttReduceStage)
	}
	s.acc0Q.IsNTT, s.acc1Q.IsNTT, s.acc0P.IsNTT, s.acc1P.IsNTT = false, false, false, false

	if serial {
		s.modDownChunk(0, s.n)
	} else {
		pool.ForEachChunk(s.n, s.modDownChunk)
	}
	// Eager accumulator release (shrinks peak arena use before the output
	// NTTs); fields are nilled so the caller's deferred ksRelease — which
	// handles the remaining scratch and the state record — never double-Puts.
	rq.PutPoly(s.acc0Q)
	rq.PutPoly(s.acc1Q)
	rp.PutPoly(s.acc0P)
	rp.PutPoly(s.acc1P)
	s.acc0Q, s.acc1Q, s.acc0P, s.acc1P = nil, nil, nil, nil

	if serial {
		for t := 0; t < 2*s.qLimbs; t++ {
			s.nttOutStage(t)
		}
	} else {
		pool.ForEach(2*s.qLimbs, s.nttOutStage)
	}
	s.p0.IsNTT, s.p1.IsNTT = true, true
}

// ksRelease returns every piece of scratch still attached to s to its arena
// or free list and recycles the state record. Safe to run after a normal
// ksFinish (completed stages nil their fields) and after a panic anywhere in
// the pipeline; hoisted replays never release s.ext here because the digits
// are borrowed from the shared hoistedDecomposition.
func (ev *Evaluator) ksRelease(s *ksState) {
	params := ev.params
	rq, rp := params.RingQ, params.RingP
	if s.accumOnly {
		// Accumulate-only runs borrow caller-owned accumulator polys; the
		// caller's own deferred sweep releases them (a Put here would
		// double-free on the panic path).
		s.acc0Q, s.acc1Q, s.acc0P, s.acc1P = nil, nil, nil, nil
	}
	if s.acc0Q != nil {
		rq.PutPoly(s.acc0Q)
		s.acc0Q = nil
	}
	if s.acc1Q != nil {
		rq.PutPoly(s.acc1Q)
		s.acc1Q = nil
	}
	if s.acc0P != nil {
		rp.PutPoly(s.acc0P)
		s.acc0P = nil
	}
	if s.acc1P != nil {
		rp.PutPoly(s.acc1P)
		s.acc1P = nil
	}
	if s.ext != nil && !s.hoisted {
		params.putExt(s.ext)
	}
	s.ext = nil
	if s.wide != nil {
		params.putWide(s.wide)
		s.wide = nil
	}
	params.putKsState(s)
}

// extModulus resolves extended-limb index i to its modulus: Q limbs first,
// then P limbs.
func extModulus(rq, rp *ring.Ring, qLimbs, i int) numeric.Modulus {
	if i < qLimbs {
		return rq.Moduli[i]
	}
	return rp.Moduli[i-qLimbs]
}

// wideAcc is a bank of 128-bit accumulator columns: rows of N (hi, lo)
// pairs backing the fused lazy inner products of the keyswitch and
// linear-transform pipelines. Rows are touched by at most one worker at a
// time (the parallel loops partition by row), so no locking is needed.
// Banks are recycled through the Parameters free list (getWide/putWide).
type wideAcc struct {
	hi [][]uint64
	lo [][]uint64
}

// newWideAcc allocates rows×n zeroed accumulator columns in two slabs.
func newWideAcc(rows, n int) *wideAcc {
	hiSlab := make([]uint64, rows*n)
	loSlab := make([]uint64, rows*n)
	w := &wideAcc{hi: make([][]uint64, rows), lo: make([][]uint64, rows)}
	for r := 0; r < rows; r++ {
		w.hi[r] = hiSlab[r*n : (r+1)*n]
		w.lo[r] = loSlab[r*n : (r+1)*n]
	}
	return w
}

// mac accumulates a[j]·b[j] onto row r.
func (w *wideAcc) mac(r int, a, b []uint64) {
	numeric.VecMACWide(w.hi[r], w.lo[r], a, b)
}

// macPair accumulates a0[j]·b[j] onto row r0 and a1[j]·b[j] onto row r1 in
// one pass over the shared multiplicand b (see numeric.VecMACWidePair).
func (w *wideAcc) macPair(r0, r1 int, a0, a1, b []uint64) {
	numeric.VecMACWidePair(w.hi[r0], w.lo[r0], w.hi[r1], w.lo[r1], a0, a1, b)
}

// fold reduces row r to residues, restarting the lazy-product budget.
func (w *wideAcc) fold(mod numeric.Modulus, r int) {
	mod.VecFoldWide(w.hi[r], w.lo[r])
}

// reduce closes row r with the single deferred Barrett reduction per
// coefficient, writing residues into out.
func (w *wideAcc) reduce(mod numeric.Modulus, r int, out []uint64) {
	mod.VecReduceWide(out, w.hi[r], w.lo[r])
}

// macLimb computes acc[j] += a[j]·b[j] mod q over one limb — the strict
// reference schedule (one full reduction and modular add per digit).
func macLimb(acc, a, b []uint64, mod numeric.Modulus) {
	for j := range acc {
		acc[j] = mod.Add(acc[j], mod.Mul(a[j], b[j]))
	}
}
