package ckks

import (
	"fmt"
	"math"

	"poseidon/internal/automorph"
	"poseidon/internal/numeric"
	"poseidon/internal/ring"
)

// Evaluator executes homomorphic operations, fanning independent RNS limbs
// (and coefficient ranges) out across a bounded worker pool — the software
// counterpart of the accelerator time-multiplexing its operator cores'
// 512-lane datapath over limbs. Results are bit-identical for every worker
// count; the differential suite in parallel_diff_test.go enforces this.
//
// Concurrency: an Evaluator is safe for concurrent use by multiple
// goroutines — keys and parameters are read-only, per-operation scratch is
// drawn from sync.Pool allocators, and the shared caches (HFAuto routing
// maps, NTT-domain permutations, keyswitch digit extenders) are internally
// locked — provided any installed OpObserver is itself safe (TraceRecorder
// is). Evaluators derived via WithWorkers share keys but not pools.
type Evaluator struct {
	params   *Parameters
	rlk      *RelinearizationKey
	rtks     *RotationKeySet
	observer OpObserver
	pool     *ring.Pool
}

// NewEvaluator creates an evaluator. rlk may be nil if Mul is never
// relinearized; rtks may be nil if no rotations are performed. The
// evaluator executes on the parameter set's worker pool.
func NewEvaluator(params *Parameters, rlk *RelinearizationKey, rtks *RotationKeySet) *Evaluator {
	return &Evaluator{params: params, rlk: rlk, rtks: rtks, pool: params.pool}
}

// Params returns the evaluator's parameter set.
func (ev *Evaluator) Params() *Parameters { return ev.params }

// Workers reports the evaluator's limb-parallel worker bound.
func (ev *Evaluator) Workers() int { return ev.pool.Workers() }

// WithWorkers returns an evaluator sharing this one's keys and parameters
// but executing on its own pool of n workers (n ≤ 0 selects the shared
// GOMAXPROCS-sized default pool, n == 1 is fully serial). Outputs are
// bit-identical across worker counts.
func (ev *Evaluator) WithWorkers(n int) *Evaluator {
	e2 := *ev
	if n <= 0 {
		e2.pool = ring.DefaultPool()
	} else {
		e2.pool = ring.NewPool(n)
	}
	return &e2
}

func sameScale(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// alignLevels drops limbs from the deeper ciphertext so both operands live
// at the same level, returning aligned views.
func (ev *Evaluator) alignLevels(a, b *Ciphertext) (*Ciphertext, *Ciphertext) {
	if a.Level == b.Level {
		return a, b
	}
	if a.Level > b.Level {
		a = &Ciphertext{C0: prefix(a.C0, b.Level+1), C1: prefix(a.C1, b.Level+1), Scale: a.Scale, Level: b.Level}
	} else {
		b = &Ciphertext{C0: prefix(b.C0, a.Level+1), C1: prefix(b.C1, a.Level+1), Scale: b.Scale, Level: a.Level}
	}
	return a, b
}

// DropLevel returns a view of ct at the lower level newLevel.
func (ev *Evaluator) DropLevel(ct *Ciphertext, newLevel int) *Ciphertext {
	if newLevel > ct.Level {
		panic("ckks: DropLevel cannot raise level")
	}
	return &Ciphertext{
		C0:    prefix(ct.C0, newLevel+1),
		C1:    prefix(ct.C1, newLevel+1),
		Scale: ct.Scale,
		Level: newLevel,
	}
}

// Add returns a + b (HAdd, ciphertext-ciphertext). Operand scales must
// match; levels are aligned automatically.
func (ev *Evaluator) Add(a, b *Ciphertext) *Ciphertext {
	a, b = ev.alignLevels(a, b)
	if !sameScale(a.Scale, b.Scale) {
		panic(fmt.Sprintf("ckks: Add scale mismatch %g vs %g", a.Scale, b.Scale))
	}
	rq := ev.params.RingQ
	out := &Ciphertext{C0: rq.NewPoly(a.Level + 1), C1: rq.NewPoly(a.Level + 1), Scale: a.Scale, Level: a.Level}
	rq.AddParallel(out.C0, a.C0, b.C0, ev.pool)
	rq.AddParallel(out.C1, a.C1, b.C1, ev.pool)
	ev.observe("HAdd", a.Level)
	return out
}

// Sub returns a − b.
func (ev *Evaluator) Sub(a, b *Ciphertext) *Ciphertext {
	a, b = ev.alignLevels(a, b)
	if !sameScale(a.Scale, b.Scale) {
		panic(fmt.Sprintf("ckks: Sub scale mismatch %g vs %g", a.Scale, b.Scale))
	}
	rq := ev.params.RingQ
	out := &Ciphertext{C0: rq.NewPoly(a.Level + 1), C1: rq.NewPoly(a.Level + 1), Scale: a.Scale, Level: a.Level}
	rq.SubParallel(out.C0, a.C0, b.C0, ev.pool)
	rq.SubParallel(out.C1, a.C1, b.C1, ev.pool)
	ev.observe("HAdd", a.Level)
	return out
}

// Neg returns −a.
func (ev *Evaluator) Neg(a *Ciphertext) *Ciphertext {
	rq := ev.params.RingQ
	out := &Ciphertext{C0: rq.NewPoly(a.Level + 1), C1: rq.NewPoly(a.Level + 1), Scale: a.Scale, Level: a.Level}
	rq.NegParallel(out.C0, a.C0, ev.pool)
	rq.NegParallel(out.C1, a.C1, ev.pool)
	return out
}

// AddPlain returns ct + pt (HAdd, ciphertext-plaintext): only C0 changes.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	if !sameScale(ct.Scale, pt.Scale) {
		panic(fmt.Sprintf("ckks: AddPlain scale mismatch %g vs %g", ct.Scale, pt.Scale))
	}
	level := ct.Level
	if pt.Level < level {
		level = pt.Level
	}
	rq := ev.params.RingQ
	out := &Ciphertext{C0: rq.NewPoly(level + 1), C1: rq.NewPoly(level + 1), Scale: ct.Scale, Level: level}
	rq.AddParallel(out.C0, prefix(ct.C0, level+1), prefix(pt.Value, level+1), ev.pool)
	copyInto(out.C1, prefix(ct.C1, level+1))
	ev.observe("HAddPlain", level)
	return out
}

func copyInto(dst, src *ring.Poly) {
	for i := range dst.Coeffs {
		copy(dst.Coeffs[i], src.Coeffs[i])
	}
	dst.IsNTT = src.IsNTT
}

// MulPlain returns ct · pt (PMult). The output scale is the product of the
// operand scales; follow with Rescale to restore Δ.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	level := ct.Level
	if pt.Level < level {
		level = pt.Level
	}
	rq := ev.params.RingQ
	out := &Ciphertext{C0: rq.NewPoly(level + 1), C1: rq.NewPoly(level + 1), Scale: ct.Scale * pt.Scale, Level: level}
	rq.MulCoeffwiseParallel(out.C0, prefix(ct.C0, level+1), prefix(pt.Value, level+1), ev.pool)
	rq.MulCoeffwiseParallel(out.C1, prefix(ct.C1, level+1), prefix(pt.Value, level+1), ev.pool)
	ev.observe("PMult", level)
	return out
}

// MulRelin returns a·b with relinearization (CMult): the degree-2 term d2
// is switched back to degree 1 with the relinearization key. The output
// scale is the product of the operand scales.
func (ev *Evaluator) MulRelin(a, b *Ciphertext) *Ciphertext {
	if ev.rlk == nil {
		panic("ckks: MulRelin requires a relinearization key")
	}
	a, b = ev.alignLevels(a, b)
	level := a.Level
	rq := ev.params.RingQ

	d0 := rq.NewPoly(level + 1)
	d1 := rq.NewPoly(level + 1)
	d2 := rq.GetPolyDirty(level + 1)
	// One limb-parallel pass computes the whole degree-2 product:
	// d0 = a0·b0, d1 = a0·b1 + a1·b0, d2 = a1·b1 (all NTT-domain,
	// element-wise — the paper's batched MM operator across limbs).
	strict := rq.StrictKernels()
	ev.pool.ForEach(level+1, func(i int) {
		mod := rq.Moduli[i]
		a0, a1 := a.C0.Coeffs[i], a.C1.Coeffs[i]
		b0, b1 := b.C0.Coeffs[i], b.C1.Coeffs[i]
		o0, o1, o2 := d0.Coeffs[i], d1.Coeffs[i], d2.Coeffs[i]
		if strict {
			for j := range o0 {
				o0[j] = mod.Mul(a0[j], b0[j])
				o1[j] = mod.Add(mod.Mul(a0[j], b1[j]), mod.Mul(a1[j], b0[j]))
				o2[j] = mod.Mul(a1[j], b1[j])
			}
		} else {
			// Montgomery squares plus the fused cross term: the two cross
			// products accumulate in 128 bits and take one Barrett
			// reduction per coefficient instead of two plus an add.
			mod.VecMontMul(o0, a0, b0)
			mod.VecMulPairSum(o1, a0, b1, a1, b0)
			mod.VecMontMul(o2, a1, b1)
		}
	})
	d0.IsNTT, d1.IsNTT, d2.IsNTT = true, true, true

	// Keyswitch d2: contributes (p0, p1) ≈ (d2·s² − p1·s, p1).
	rq.INTTParallel(d2, ev.pool)
	p0, p1 := ev.keySwitchCore(level, d2, &ev.rlk.SwitchingKey)
	rq.PutPoly(d2)

	out := &Ciphertext{C0: d0, C1: d1, Scale: a.Scale * b.Scale, Level: level}
	rq.AddParallel(out.C0, out.C0, p0, ev.pool)
	rq.AddParallel(out.C1, out.C1, p1, ev.pool)
	ev.observe("CMult", level)
	return out
}

// Rescale divides the ciphertext by the last active prime, dropping one
// level (the Rescale basic operation).
func (ev *Evaluator) Rescale(ct *Ciphertext) *Ciphertext {
	if ct.Level == 0 {
		panic("ckks: cannot rescale at level 0")
	}
	rq := ev.params.RingQ
	level := ct.Level
	c0 := ev.inttCopy(ct.C0)
	c1 := ev.inttCopy(ct.C1)

	out := &Ciphertext{
		C0:    rq.NewPoly(level),
		C1:    rq.NewPoly(level),
		Scale: ct.Scale / float64(ev.params.Q[level]),
		Level: level - 1,
	}
	// The rescale of each coefficient is self-contained, so it chunks
	// across the pool without changing a single bit of the output.
	rescaler := ev.params.rescaler
	ev.pool.ForEachChunk(ev.params.N, func(lo, hi int) {
		rescaler.Rescale(rangeView(out.C0.Coeffs, lo, hi), rangeView(c0.Coeffs, lo, hi))
		rescaler.Rescale(rangeView(out.C1.Coeffs, lo, hi), rangeView(c1.Coeffs, lo, hi))
	})
	rq.PutPoly(c0)
	rq.PutPoly(c1)
	rq.NTTParallel(out.C0, ev.pool)
	rq.NTTParallel(out.C1, ev.pool)
	ev.observe("Rescale", level)
	return out
}

// inttCopy returns a scratch-pool copy of the NTT-domain polynomial p,
// transformed to the coefficient domain, with copy and inverse transform
// fused into one limb-parallel pass. Release with RingQ.PutPoly.
func (ev *Evaluator) inttCopy(p *ring.Poly) *ring.Poly {
	rq := ev.params.RingQ
	if !p.IsNTT {
		panic("ckks: inttCopy requires NTT-domain input")
	}
	limbs := len(p.Coeffs)
	dst := rq.GetPolyDirty(limbs)
	ev.pool.ForEach(limbs, func(i int) {
		copy(dst.Coeffs[i], p.Coeffs[i])
		rq.InverseLimb(i, dst.Coeffs[i])
	})
	dst.IsNTT = false
	return dst
}

// rangeView returns per-limb subslice views of the coefficient range
// [lo, hi) — how coefficient-chunked stages address disjoint work.
func rangeView(coeffs [][]uint64, lo, hi int) [][]uint64 {
	v := make([][]uint64, len(coeffs))
	for i, c := range coeffs {
		v[i] = c[lo:hi]
	}
	return v
}

// Rotate rotates the slot vector by `steps` positions (Rotation =
// automorphism + keyswitch). Requires the corresponding rotation key.
func (ev *Evaluator) Rotate(ct *Ciphertext, steps int) *Ciphertext {
	g := automorph.GaloisElementForRotation(steps, ev.params.N)
	return ev.automorphismKS(ct, g)
}

// Conjugate conjugates every slot.
func (ev *Evaluator) Conjugate(ct *Ciphertext) *Ciphertext {
	g := automorph.GaloisElementConjugate(ev.params.N)
	return ev.automorphismKS(ct, g)
}

func (ev *Evaluator) automorphismKS(ct *Ciphertext, g uint64) *Ciphertext {
	if g == 1 {
		return ct.CopyNew()
	}
	if ev.rtks == nil {
		panic("ckks: rotation requires rotation keys")
	}
	key, ok := ev.rtks.Keys[g]
	if !ok {
		panic(fmt.Sprintf("ckks: no rotation key for Galois element %d", g))
	}
	rq := ev.params.RingQ
	level := ct.Level

	c0 := ev.inttCopy(ct.C0)
	c1 := ev.inttCopy(ct.C1)
	a0 := rq.NewPoly(level + 1)
	a1 := rq.GetPolyDirty(level + 1)
	a1.IsNTT = false
	rq.AutomorphismParallel(a0, c0, g, ev.pool)
	rq.AutomorphismParallel(a1, c1, g, ev.pool)
	rq.PutPoly(c0)
	rq.PutPoly(c1)

	// Keyswitch σ_g(c1) from σ_g(s) to s.
	p0, p1 := ev.keySwitchCore(level, a1, key)
	rq.PutPoly(a1)
	rq.NTTParallel(a0, ev.pool)
	out := &Ciphertext{C0: a0, C1: p1, Scale: ct.Scale, Level: level}
	rq.AddParallel(out.C0, out.C0, p0, ev.pool)
	ev.observe("Rotation", level)
	return out
}

// KeySwitch re-encrypts ct from the key underlying swk's target to s —
// exposed for tests and for the trace generator.
func (ev *Evaluator) KeySwitch(ct *Ciphertext, swk *SwitchingKey) *Ciphertext {
	rq := ev.params.RingQ
	c1 := ev.inttCopy(ct.C1)
	p0, p1 := ev.keySwitchCore(ct.Level, c1, swk)
	rq.PutPoly(c1)
	out := &Ciphertext{C0: ct.C0.CopyNew(), C1: p1, Scale: ct.Scale, Level: ct.Level}
	rq.AddParallel(out.C0, out.C0, p0, ev.pool)
	return out
}

// keySwitchCore is the paper's Keyswitch pipeline: decompose cx (coeff
// domain, level limbs over Q) into digits, RNSconv/ModUp each digit to
// Q_l ∪ P, inner-product with the key digits in the NTT domain, then
// ModDown by P. Returns (p0, p1) in NTT domain at the input level.
//
// The digit inner product is the fused lazy accumulation: each extended
// limb keeps a 128-bit (hi, lo) column pair per coefficient, every digit's
// product is a raw multiply-accumulate (VecMACWide), and one Barrett
// reduction per coefficient (VecReduceWide) closes the sum — instead of a
// full reduction plus modular add per digit. ReduceWide is valid for any
// 128-bit value and q < 2^61 bounds each product below 2^122, so up to
// numeric.MaxLazyProducts digits accumulate safely; deeper chains fold the
// accumulator to a residue and continue. Under StrictKernels the per-digit
// reduce-then-add reference path (macLimb) runs instead; both are
// bit-identical.
//
// Parallel structure: the RNSconv/ModUp of a digit chunks across
// coefficients; the forward NTT and multiply-accumulate of its extended
// limbs fan out limb-wise (each limb is one independent lane group);
// ModDown chunks across coefficients again. Digits run sequentially so the
// accumulator update order — hence every bit of the result — matches the
// serial schedule.
func (ev *Evaluator) keySwitchCore(level int, cx *ring.Poly, key *SwitchingKey) (p0, p1 *ring.Poly) {
	params := ev.params
	pool := ev.pool
	rq, rp := params.RingQ, params.RingP
	alpha := params.Alpha()
	digits := params.Digits(level)
	n := params.N
	qLimbs := level + 1
	extLimbs := qLimbs + alpha
	strict := rq.StrictKernels()

	// Accumulators over Q_l and P, NTT domain, drawn zeroed from the
	// ring scratch pools.
	acc0Q := rq.GetPoly(qLimbs)
	acc1Q := rq.GetPoly(qLimbs)
	acc0P := rp.GetPoly(alpha)
	acc1P := rp.GetPoly(alpha)
	acc0Q.IsNTT, acc1Q.IsNTT, acc0P.IsNTT, acc1P.IsNTT = true, true, true, true

	// Lazy path: 128-bit accumulator columns, rows [0, extLimbs) for the
	// b-key sum and [extLimbs, 2·extLimbs) for the a-key sum.
	var wide *wideAcc
	if !strict {
		wide = newWideAcc(2*extLimbs, n)
	}

	// Scratch for one extended digit.
	ext := params.getExt(extLimbs)
	defer params.putExt(ext)

	for d := 0; d < digits; d++ {
		if wide != nil && d > 0 && d%(numeric.MaxLazyProducts-1) == 0 {
			// Deep digit chains: fold each column to its residue so the
			// next MaxLazyProducts−1 products cannot overflow 128 bits.
			pool.ForEach(extLimbs, func(i int) {
				mod := extModulus(rq, rp, qLimbs, i)
				wide.fold(mod, i)
				wide.fold(mod, extLimbs+i)
			})
		}
		// RNSconv/ModUp: every coefficient's basis extension is
		// self-contained, so the digit decomposes across chunks.
		decomposer := params.decomposer
		pool.ForEachChunk(n, func(lo, hi int) {
			decomposer.DecomposeAndExtend(level, d, rangeView(cx.Coeffs, lo, hi), rangeView(ext, lo, hi))
		})
		// Forward NTT + multiply-accumulate, one task per extended limb
		// (Q limbs against ringQ tables, P limbs against ringP tables).
		bd, ad := key.B[d], key.A[d]
		pool.ForEach(extLimbs, func(i int) {
			if i < qLimbs {
				rq.ForwardLimb(i, ext[i])
				if strict {
					mod := rq.Moduli[i]
					macLimb(acc0Q.Coeffs[i], ext[i], bd.Q.Coeffs[i], mod)
					macLimb(acc1Q.Coeffs[i], ext[i], ad.Q.Coeffs[i], mod)
				} else {
					wide.mac(i, ext[i], bd.Q.Coeffs[i])
					wide.mac(extLimbs+i, ext[i], ad.Q.Coeffs[i])
				}
			} else {
				j := i - qLimbs
				rp.ForwardLimb(j, ext[i])
				if strict {
					mod := rp.Moduli[j]
					macLimb(acc0P.Coeffs[j], ext[i], bd.P.Coeffs[j], mod)
					macLimb(acc1P.Coeffs[j], ext[i], ad.P.Coeffs[j], mod)
				} else {
					wide.mac(i, ext[i], bd.P.Coeffs[j])
					wide.mac(extLimbs+i, ext[i], ad.P.Coeffs[j])
				}
			}
		})
	}

	// ModDown: back to coefficient domain (all 2·(level+1)+2·α inverse
	// transforms are independent), divide by P, return to NTT. The lazy
	// path's single deferred reduction per coefficient lands here, fused
	// with the inverse transform of the same limb.
	accQ := [2]*ring.Poly{acc0Q, acc1Q}
	accP := [2]*ring.Poly{acc0P, acc1P}
	pool.ForEach(2*qLimbs+2*alpha, func(t int) {
		if t < 2*qLimbs {
			c, i := t/qLimbs, t%qLimbs
			if wide != nil {
				wide.reduce(rq.Moduli[i], c*extLimbs+i, accQ[c].Coeffs[i])
			}
			rq.InverseLimb(i, accQ[c].Coeffs[i])
		} else {
			t -= 2 * qLimbs
			c, j := t/alpha, t%alpha
			if wide != nil {
				wide.reduce(rp.Moduli[j], c*extLimbs+qLimbs+j, accP[c].Coeffs[j])
			}
			rp.InverseLimb(j, accP[c].Coeffs[j])
		}
	})
	acc0Q.IsNTT, acc1Q.IsNTT, acc0P.IsNTT, acc1P.IsNTT = false, false, false, false

	p0 = rq.NewPoly(qLimbs)
	p1 = rq.NewPoly(qLimbs)
	md := params.modDown[level]
	pool.ForEachChunk(n, func(lo, hi int) {
		md.ModDown(rangeView(p0.Coeffs, lo, hi), rangeView(acc0Q.Coeffs, lo, hi), rangeView(acc0P.Coeffs, lo, hi))
		md.ModDown(rangeView(p1.Coeffs, lo, hi), rangeView(acc1Q.Coeffs, lo, hi), rangeView(acc1P.Coeffs, lo, hi))
	})
	rq.PutPoly(acc0Q)
	rq.PutPoly(acc1Q)
	rp.PutPoly(acc0P)
	rp.PutPoly(acc1P)
	pool.ForEach(2*qLimbs, func(t int) {
		if t < qLimbs {
			rq.ForwardLimb(t, p0.Coeffs[t])
		} else {
			rq.ForwardLimb(t-qLimbs, p1.Coeffs[t-qLimbs])
		}
	})
	p0.IsNTT, p1.IsNTT = true, true
	return p0, p1
}

// extModulus resolves extended-limb index i to its modulus: Q limbs first,
// then P limbs.
func extModulus(rq, rp *ring.Ring, qLimbs, i int) numeric.Modulus {
	if i < qLimbs {
		return rq.Moduli[i]
	}
	return rp.Moduli[i-qLimbs]
}

// wideAcc is a bank of 128-bit accumulator columns: rows of N (hi, lo)
// pairs backing the fused lazy inner products of the keyswitch and
// linear-transform pipelines. Rows are touched by at most one worker at a
// time (the parallel loops partition by row), so no locking is needed.
type wideAcc struct {
	hi [][]uint64
	lo [][]uint64
}

// newWideAcc allocates rows×n zeroed accumulator columns in two slabs.
func newWideAcc(rows, n int) *wideAcc {
	hiSlab := make([]uint64, rows*n)
	loSlab := make([]uint64, rows*n)
	w := &wideAcc{hi: make([][]uint64, rows), lo: make([][]uint64, rows)}
	for r := 0; r < rows; r++ {
		w.hi[r] = hiSlab[r*n : (r+1)*n]
		w.lo[r] = loSlab[r*n : (r+1)*n]
	}
	return w
}

// mac accumulates a[j]·b[j] onto row r.
func (w *wideAcc) mac(r int, a, b []uint64) {
	numeric.VecMACWide(w.hi[r], w.lo[r], a, b)
}

// fold reduces row r to residues, restarting the lazy-product budget.
func (w *wideAcc) fold(mod numeric.Modulus, r int) {
	mod.VecFoldWide(w.hi[r], w.lo[r])
}

// reduce closes row r with the single deferred Barrett reduction per
// coefficient, writing residues into out.
func (w *wideAcc) reduce(mod numeric.Modulus, r int, out []uint64) {
	mod.VecReduceWide(out, w.hi[r], w.lo[r])
}

// macLimb computes acc[j] += a[j]·b[j] mod q over one limb — the strict
// reference schedule (one full reduction and modular add per digit).
func macLimb(acc, a, b []uint64, mod numeric.Modulus) {
	for j := range acc {
		acc[j] = mod.Add(acc[j], mod.Mul(a[j], b[j]))
	}
}
