package ckks

import (
	"fmt"
	"math/rand"
	"testing"

	"poseidon/internal/ring"
)

// Differential suite for the destination-passing API: every *Into method
// must be BIT-IDENTICAL to its allocating counterpart — including when the
// destination is a dirty, previously used container created at a higher
// level (exercising the reshape path), when the destination aliases the
// input, and under both kernel schedules. The allocating methods are thin
// wrappers over *Into, so the comparison pins the wrapper contract: a
// destination's prior contents, scale, level, and domain flags must be
// fully overwritten.

// dirtyDest builds a max-level destination full of garbage residues with
// deliberately wrong bookkeeping, so any state leaking through an Into
// method shows up as a bit difference.
func dirtyDest(params *Parameters, seed int64) *Ciphertext {
	out := NewCiphertext(params, params.MaxLevel())
	rng := rand.New(rand.NewSource(seed))
	for _, p := range []*ring.Poly{out.C0, out.C1} {
		for i := range p.Coeffs {
			for j := range p.Coeffs[i] {
				p.Coeffs[i][j] = rng.Uint64() % params.Q[i]
			}
		}
		p.IsNTT = true
	}
	out.Scale = 12345.678
	return out
}

// intoOps pairs each allocating op with its destination-passing form.
var intoOps = []struct {
	name  string
	alloc func(ev *Evaluator, a, b *Ciphertext, pt *Plaintext, dc *diffContext) *Ciphertext
	into  func(ev *Evaluator, out *Ciphertext, a, b *Ciphertext, pt *Plaintext, dc *diffContext) *Ciphertext
}{
	{"Add",
		func(ev *Evaluator, a, b *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext { return ev.Add(a, b) },
		func(ev *Evaluator, out, a, b *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
			return ev.AddInto(out, a, b)
		}},
	{"Sub",
		func(ev *Evaluator, a, b *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext { return ev.Sub(a, b) },
		func(ev *Evaluator, out, a, b *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
			return ev.SubInto(out, a, b)
		}},
	{"Neg",
		func(ev *Evaluator, a, _ *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext { return ev.Neg(a) },
		func(ev *Evaluator, out, a, _ *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
			return ev.NegInto(out, a)
		}},
	{"AddPlain",
		func(ev *Evaluator, a, _ *Ciphertext, pt *Plaintext, _ *diffContext) *Ciphertext { return ev.AddPlain(a, pt) },
		func(ev *Evaluator, out, a, _ *Ciphertext, pt *Plaintext, _ *diffContext) *Ciphertext {
			return ev.AddPlainInto(out, a, pt)
		}},
	{"MulPlain",
		func(ev *Evaluator, a, _ *Ciphertext, pt *Plaintext, _ *diffContext) *Ciphertext { return ev.MulPlain(a, pt) },
		func(ev *Evaluator, out, a, _ *Ciphertext, pt *Plaintext, _ *diffContext) *Ciphertext {
			return ev.MulPlainInto(out, a, pt)
		}},
	{"MulRelin",
		func(ev *Evaluator, a, b *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext { return ev.MulRelin(a, b) },
		func(ev *Evaluator, out, a, b *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
			return ev.MulRelinInto(out, a, b)
		}},
	{"Rescale",
		func(ev *Evaluator, a, _ *Ciphertext, pt *Plaintext, _ *diffContext) *Ciphertext {
			return ev.Rescale(ev.MulPlain(a, pt))
		},
		func(ev *Evaluator, out, a, _ *Ciphertext, pt *Plaintext, _ *diffContext) *Ciphertext {
			return ev.RescaleInto(out, ev.MulPlain(a, pt))
		}},
	{"Rotate+1",
		func(ev *Evaluator, a, _ *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext { return ev.Rotate(a, 1) },
		func(ev *Evaluator, out, a, _ *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
			return ev.RotateInto(out, a, 1)
		}},
	{"Rotate0",
		func(ev *Evaluator, a, _ *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext { return ev.Rotate(a, 0) },
		func(ev *Evaluator, out, a, _ *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
			return ev.RotateInto(out, a, 0)
		}},
	{"Conjugate",
		func(ev *Evaluator, a, _ *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext { return ev.Conjugate(a) },
		func(ev *Evaluator, out, a, _ *Ciphertext, _ *Plaintext, _ *diffContext) *Ciphertext {
			return ev.ConjugateInto(out, a)
		}},
	{"KeySwitch",
		func(ev *Evaluator, a, _ *Ciphertext, _ *Plaintext, dc *diffContext) *Ciphertext {
			return ev.KeySwitch(a, dc.swk)
		},
		func(ev *Evaluator, out, a, _ *Ciphertext, _ *Plaintext, dc *diffContext) *Ciphertext {
			return ev.KeySwitchInto(out, a, dc.swk)
		}},
}

// TestIntoMatchesAllocating reuses ONE dirty destination across every op in
// sequence — the steady-state pattern the API exists for — and bit-compares
// each result against the allocating form, under both kernel schedules and
// on both parameter sets.
func TestIntoMatchesAllocating(t *testing.T) {
	for pname, params := range diffParamSets(t) {
		dc := newDiffContext(t, params)
		ct1, ct2, pt := dc.freshInputs(41)
		for _, strict := range []bool{false, true} {
			out := dirtyDest(params, 7)
			for _, op := range intoOps {
				t.Run(fmt.Sprintf("%s/%s/strict=%v", pname, op.name, strict), func(t *testing.T) {
					var want, got *Ciphertext
					withStrictCkks(params, strict, func() {
						want = op.alloc(dc.serial, ct1, ct2, pt, dc)
						got = op.into(dc.serial, out, ct1, ct2, pt, dc)
					})
					requireCtEqual(t, got, want, op.name)
					if got != out {
						t.Fatalf("%s: Into did not return its destination", op.name)
					}
				})
			}
		}
	}
}

// TestIntoMatchesAllocatingParallel repeats the destination-reuse sweep on
// a parallel evaluator: fan-out must not change what lands in the
// destination.
func TestIntoMatchesAllocatingParallel(t *testing.T) {
	params := diffParamSets(t)["LogN9-L4-alpha2"]
	dc := newDiffContext(t, params)
	ct1, ct2, pt := dc.freshInputs(43)
	ev := dc.serial.WithWorkers(3)
	out := dirtyDest(params, 11)
	for _, op := range intoOps {
		t.Run(op.name, func(t *testing.T) {
			want := op.alloc(dc.serial, ct1, ct2, pt, dc)
			got := op.into(ev, out, ct1, ct2, pt, dc)
			requireCtEqual(t, got, want, op.name)
		})
	}
}

// TestIntoInPlace checks the documented aliasing contract: out == input is
// legal for everything except MulRelinInto.
func TestIntoInPlace(t *testing.T) {
	for pname, params := range diffParamSets(t) {
		dc := newDiffContext(t, params)
		ct1, ct2, pt := dc.freshInputs(47)
		cases := []struct {
			name string
			want func() *Ciphertext
			run  func(x *Ciphertext) *Ciphertext // x is a private copy of ct1
		}{
			{"AddInto", func() *Ciphertext { return dc.serial.Add(ct1, ct2) },
				func(x *Ciphertext) *Ciphertext { return dc.serial.AddInto(x, x, ct2) }},
			{"SubInto", func() *Ciphertext { return dc.serial.Sub(ct1, ct2) },
				func(x *Ciphertext) *Ciphertext { return dc.serial.SubInto(x, x, ct2) }},
			{"NegInto", func() *Ciphertext { return dc.serial.Neg(ct1) },
				func(x *Ciphertext) *Ciphertext { return dc.serial.NegInto(x, x) }},
			{"AddPlainInto", func() *Ciphertext { return dc.serial.AddPlain(ct1, pt) },
				func(x *Ciphertext) *Ciphertext { return dc.serial.AddPlainInto(x, x, pt) }},
			{"MulPlainInto", func() *Ciphertext { return dc.serial.MulPlain(ct1, pt) },
				func(x *Ciphertext) *Ciphertext { return dc.serial.MulPlainInto(x, x, pt) }},
			{"RescaleInto", func() *Ciphertext { return dc.serial.Rescale(dc.serial.MulPlain(ct1, pt)) },
				func(x *Ciphertext) *Ciphertext {
					dc.serial.MulPlainInto(x, x, pt)
					return dc.serial.RescaleInto(x, x)
				}},
			{"RotateInto", func() *Ciphertext { return dc.serial.Rotate(ct1, 1) },
				func(x *Ciphertext) *Ciphertext { return dc.serial.RotateInto(x, x, 1) }},
			{"ConjugateInto", func() *Ciphertext { return dc.serial.Conjugate(ct1) },
				func(x *Ciphertext) *Ciphertext { return dc.serial.ConjugateInto(x, x) }},
			{"KeySwitchInto", func() *Ciphertext { return dc.serial.KeySwitch(ct1, dc.swk) },
				func(x *Ciphertext) *Ciphertext { return dc.serial.KeySwitchInto(x, x, dc.swk) }},
		}
		for _, c := range cases {
			t.Run(fmt.Sprintf("%s/%s", pname, c.name), func(t *testing.T) {
				want := c.want()
				got := c.run(ct1.CopyNew())
				requireCtEqual(t, got, want, c.name)
			})
		}
	}
}

// TestMulRelinIntoAliasPanics pins the one forbidden aliasing mode.
func TestMulRelinIntoAliasPanics(t *testing.T) {
	params := diffParamSets(t)["LogN8-L2"]
	dc := newDiffContext(t, params)
	ct1, ct2, _ := dc.freshInputs(53)
	defer func() {
		if recover() == nil {
			t.Fatal("MulRelinInto with out aliasing an operand did not panic")
		}
	}()
	x := ct1.CopyNew()
	dc.serial.MulRelinInto(x, x, ct2)
}

// TestIntoDestinationReuseAcrossLevels drives one destination down the
// modulus chain and back up: reshape must preserve the backing rows, so a
// container created once serves the whole computation.
func TestIntoDestinationReuseAcrossLevels(t *testing.T) {
	params := diffParamSets(t)["LogN9-L4-alpha2"]
	dc := newDiffContext(t, params)
	ct1, ct2, pt := dc.freshInputs(59)

	out := dirtyDest(params, 13)
	// Down: multiply and rescale twice.
	dc.serial.MulPlainInto(out, ct1, pt)
	dc.serial.RescaleInto(out, out)
	want1 := dc.serial.Rescale(dc.serial.MulPlain(ct1, pt))
	requireCtEqual(t, out, want1, "first descent")
	dc.serial.MulRelinInto(out, want1, dc.serial.DropLevel(ct2, want1.Level))
	dc.serial.RescaleInto(out, out)
	want2 := dc.serial.Rescale(dc.serial.MulRelin(want1, dc.serial.DropLevel(ct2, want1.Level)))
	requireCtEqual(t, out, want2, "second descent")
	// Back up: the same container must host a top-level result again.
	dc.serial.AddInto(out, ct1, ct2)
	requireCtEqual(t, out, dc.serial.Add(ct1, ct2), "reuse at top level")
}
