package ckks

import (
	"errors"
	"testing"
	"time"

	"poseidon/internal/fault"
)

// armRecovery wires a guarded context to a fault injector and installs a
// recovery policy, returning the injector and a hook-call log.
func armRecovery(t *testing.T, gc *guardContext, maxAttempts int) (*fault.Injector, *[]int) {
	t.Helper()
	gc.ev.EnableGuards(21)
	in := fault.NewInjector(101)
	gc.params.RingQ.SetFaultInjector(in)
	t.Cleanup(func() { gc.params.RingQ.SetFaultInjector(nil) })
	var retries []int
	gc.ev.SetRecoveryPolicy(&RecoveryPolicy{
		MaxAttempts: maxAttempts,
		OnRetry:     func(op string, attempt int, err error) { retries = append(retries, attempt) },
	})
	return in, &retries
}

// A transient HBM fault that decays on re-read must be recovered by one
// re-execution: the Try call succeeds, the result matches the clean
// reference, and the counters attribute exactly one retry.
func TestRecoveryTransientFaultRecovered(t *testing.T) {
	gc := newGuardContext(t)
	ev := gc.ev
	a, b, _ := gc.inputs(t, 11, gc.params.MaxLevel())
	ref := NewEvaluator(gc.params, ev.rlk, ev.rtks)
	want := ref.Add(a, b) // clean reference before any corruption

	in, retries := armRecovery(t, gc, 3)
	ev.SealIntegrity(a)
	ev.SealIntegrity(b)

	// Fires on the first limb read of the input verification; decay 0 means
	// the retry's re-read scrubs it clean.
	in.ArmAtMode(fault.SiteHBM, fault.BitFlip, 0, fault.Transient, 0)

	out := NewCiphertext(gc.params, a.Level)
	got, err := ev.TryAddInto(out, a, b)
	if err != nil {
		t.Fatalf("transient fault not recovered: %v", err)
	}
	requireCtEqual(t, got, want, "recovered Add")
	if got.seal == nil {
		t.Fatal("recovered result not sealed")
	}

	st := ev.RecoveryStats()
	if st.Attempts != 1 || st.Recovered != 1 || st.Unrecoverable != 0 {
		t.Fatalf("stats = %+v, want 1 attempt, 1 recovered", st)
	}
	if len(*retries) != 1 || (*retries)[0] != 2 {
		t.Fatalf("OnRetry calls = %v, want one call announcing attempt 2", *retries)
	}
	if in.Stats().Healed != 1 {
		t.Fatalf("injector stats %+v: transient fault did not heal", in.Stats())
	}
}

// A sticky fault survives every re-read, so the retry budget must exhaust:
// the call fails with ErrIntegrity and the op counts as unrecoverable.
func TestRecoveryStickyFaultExhaustsBudget(t *testing.T) {
	gc := newGuardContext(t)
	ev := gc.ev
	a, b, _ := gc.inputs(t, 12, gc.params.MaxLevel())
	in, retries := armRecovery(t, gc, 3)
	ev.SealIntegrity(a)
	ev.SealIntegrity(b)

	in.ArmAtMode(fault.SiteHBM, fault.BitFlip, 0, fault.Sticky, 0)

	out := NewCiphertext(gc.params, a.Level)
	_, err := ev.TryAddInto(out, a, b)
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("got %v, want ErrIntegrity after budget exhaustion", err)
	}
	st := ev.RecoveryStats()
	if st.Attempts != 2 || st.Recovered != 0 || st.Unrecoverable != 1 {
		t.Fatalf("stats = %+v, want 2 attempts, 1 unrecoverable", st)
	}
	if got := len(*retries); got != 2 {
		t.Fatalf("OnRetry called %d times, want 2", got)
	}
}

// Transactional semantics: a failed Try must not leave a partially-written
// destination. The destination's words are bit-identical before and after
// the failed call.
func TestRecoveryFailureLeavesDestinationUntouched(t *testing.T) {
	gc := newGuardContext(t)
	ev := gc.ev
	a, b, _ := gc.inputs(t, 13, gc.params.MaxLevel())
	in, _ := armRecovery(t, gc, 2)
	ev.SealIntegrity(a)
	ev.SealIntegrity(b)

	// A recognizable destination payload: a fresh ciphertext with a pattern.
	out := NewCiphertext(gc.params, a.Level)
	for i := range out.C0.Coeffs {
		for j := range out.C0.Coeffs[i] {
			out.C0.Coeffs[i][j] = uint64(i + j)
			out.C1.Coeffs[i][j] = uint64(i * 3)
		}
	}
	snap := out.CopyNew()

	in.ArmAtMode(fault.SiteHBM, fault.BitFlip, 0, fault.Sticky, 0)
	if _, err := ev.TryAddInto(out, a, b); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("got %v, want ErrIntegrity", err)
	}
	for i := range snap.C0.Coeffs {
		for j := range snap.C0.Coeffs[i] {
			if out.C0.Coeffs[i][j] != snap.C0.Coeffs[i][j] || out.C1.Coeffs[i][j] != snap.C1.Coeffs[i][j] {
				t.Fatalf("failed attempt wrote destination at limb %d coeff %d", i, j)
			}
		}
	}
}

// With recovery off (nil policy or MaxAttempts ≤ 1) the evaluator reports
// no policy and the Try path behaves exactly as before.
func TestRecoveryPolicyInstallAndClear(t *testing.T) {
	gc := newGuardContext(t)
	ev := gc.ev
	if ev.RecoveryPolicy() != nil {
		t.Fatal("fresh evaluator has a recovery policy")
	}
	ev.SetRecoveryPolicy(&RecoveryPolicy{MaxAttempts: 4})
	if p := ev.RecoveryPolicy(); p == nil || p.MaxAttempts != 4 {
		t.Fatalf("policy not installed: %+v", p)
	}
	ev.SetRecoveryPolicy(&RecoveryPolicy{MaxAttempts: 1})
	if ev.RecoveryPolicy() != nil {
		t.Fatal("MaxAttempts 1 should clear the policy")
	}
	ev.SetRecoveryPolicy(&RecoveryPolicy{MaxAttempts: 4})
	ev.SetRecoveryPolicy(nil)
	if ev.RecoveryPolicy() != nil {
		t.Fatal("nil should clear the policy")
	}
}

// recoveryObserver records ObserveRecovery notifications alongside the
// base OpObserver surface.
type recoveryObserver struct {
	ops       []string
	recovered []bool
	retries   []int
}

func (r *recoveryObserver) Observe(op string, level int) {}
func (r *recoveryObserver) ObserveRecovery(op string, retries int, recovered bool, dur time.Duration) {
	r.ops = append(r.ops, op)
	r.retries = append(r.retries, retries)
	r.recovered = append(r.recovered, recovered)
}

// An observer implementing RecoveryObserver receives one notification per
// recovery episode — the wire telemetry.Collector rides into /metrics.
func TestRecoveryObserverNotified(t *testing.T) {
	gc := newGuardContext(t)
	ev := gc.ev
	a, b, _ := gc.inputs(t, 14, gc.params.MaxLevel())
	obs := &recoveryObserver{}
	ev.SetObserver(obs)
	in, _ := armRecovery(t, gc, 3)
	ev.SealIntegrity(a)
	ev.SealIntegrity(b)

	in.ArmAtMode(fault.SiteHBM, fault.BitFlip, 0, fault.Transient, 0)
	out := NewCiphertext(gc.params, a.Level)
	if _, err := ev.TryAddInto(out, a, b); err != nil {
		t.Fatalf("recovered call failed: %v", err)
	}
	if len(obs.ops) != 1 || !obs.recovered[0] || obs.retries[0] != 1 {
		t.Fatalf("observer saw %v/%v/%v, want one recovered episode with 1 retry",
			obs.ops, obs.retries, obs.recovered)
	}
}

// A fanout must forward recovery notifications to every member that
// implements RecoveryObserver — the serving layer installs
// Fanout(collector, traceSink) on tenant evaluators and both sides need
// the recovery feed.
func TestFanoutForwardsRecovery(t *testing.T) {
	gc := newGuardContext(t)
	ev := gc.ev
	a, b, _ := gc.inputs(t, 14, gc.params.MaxLevel())
	first, second := &recoveryObserver{}, &recoveryObserver{}
	ev.SetObserver(Fanout(first, second))
	in, _ := armRecovery(t, gc, 3)
	ev.SealIntegrity(a)
	ev.SealIntegrity(b)

	in.ArmAtMode(fault.SiteHBM, fault.BitFlip, 0, fault.Transient, 0)
	out := NewCiphertext(gc.params, a.Level)
	if _, err := ev.TryAddInto(out, a, b); err != nil {
		t.Fatalf("recovered call failed: %v", err)
	}
	for i, obs := range []*recoveryObserver{first, second} {
		if len(obs.ops) != 1 || !obs.recovered[0] {
			t.Fatalf("fanout member %d saw %v/%v, want one recovered episode", i, obs.ops, obs.recovered)
		}
	}
}
