package ckks

import (
	"encoding/binary"
	"testing"
)

// Unmarshal must reject arbitrary byte strings with errors, never panics
// or oversized allocations.
func FuzzCiphertextUnmarshal(f *testing.F) {
	// Seed with a valid ciphertext and a few mutations.
	params, err := NewParameters(ParametersLiteral{
		LogN:     8,
		LogQ:     []int{50, 40},
		LogP:     []int{51},
		LogScale: 40,
	})
	if err != nil {
		f.Fatal(err)
	}
	kgen := NewKeyGenerator(params, 100)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	encr := NewEncryptor(params, pk, 101)
	ct := encr.EncryptZero(params.MaxLevel(), params.Scale)
	valid, err := ct.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:32])
	f.Add([]byte{})
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(huge[6*8:], 1<<40) // absurd N
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		var back Ciphertext
		_ = back.UnmarshalBinary(data) // must not panic
		var pt Plaintext
		_ = pt.UnmarshalBinary(data)
		var key SecretKey
		_ = key.UnmarshalBinary(data)
	})
}

// A valid ciphertext must survive the fuzz-exercised path unchanged.
func TestFuzzSeedRoundTrip(t *testing.T) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     8,
		LogQ:     []int{50, 40},
		LogP:     []int{51},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	kgen := NewKeyGenerator(params, 102)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	encr := NewEncryptor(params, pk, 103)
	ct := encr.EncryptZero(params.MaxLevel(), params.Scale)
	data, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Ciphertext
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !back.C0.Equal(ct.C0) {
		t.Error("round trip mutated the ciphertext")
	}
}
