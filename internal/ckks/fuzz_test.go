package ckks

import (
	"encoding/binary"
	"errors"
	"testing"
)

// Unmarshal must reject arbitrary byte strings with errors, never panics
// or oversized allocations.
func FuzzCiphertextUnmarshal(f *testing.F) {
	// Seed with a valid ciphertext and a few mutations.
	params, err := NewParameters(ParametersLiteral{
		LogN:     8,
		LogQ:     []int{50, 40},
		LogP:     []int{51},
		LogScale: 40,
	})
	if err != nil {
		f.Fatal(err)
	}
	kgen := NewKeyGenerator(params, 100)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	encr := NewEncryptor(params, pk, 101)
	ct := encr.EncryptZero(params.MaxLevel(), params.Scale)
	valid, err := ct.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:32])
	f.Add([]byte{})
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(huge[6*8:], 1<<40) // absurd N
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		var back Ciphertext
		_ = back.UnmarshalBinary(data) // must not panic
		var pt Plaintext
		_ = pt.UnmarshalBinary(data)
		var key SecretKey
		_ = key.UnmarshalBinary(data)
	})
}

// Key material deserializers must reject arbitrary byte strings with
// errors wrapping ErrCorrupt — never a panic, never an allocation sized by
// attacker-controlled geometry. Switching keys carry two length fields
// (digits, limbsP) outside the validated header and the rotation key set
// nests switching keys behind per-entry size prefixes, so they get their
// own target.
func FuzzKeyUnmarshal(f *testing.F) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     8,
		LogQ:     []int{50, 40},
		LogP:     []int{51},
		LogScale: 40,
	})
	if err != nil {
		f.Fatal(err)
	}
	kgen := NewKeyGenerator(params, 104)
	sk := kgen.GenSecretKey()
	rlk := kgen.GenRelinearizationKey(sk)
	rtk := kgen.GenRotationKeys(sk, []int{1}, false)

	swkBytes, err := rlk.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	setBytes, err := rtk.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	skBytes, err := sk.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(swkBytes)
	f.Add(setBytes)
	f.Add(skBytes)
	f.Add(swkBytes[:48])
	f.Add(setBytes[:33])
	f.Add([]byte{})
	// Absurd digit count / limbsP in an otherwise valid switching key.
	hostile := append([]byte(nil), swkBytes...)
	binary.LittleEndian.PutUint64(hostile[headerWords*8:], 1<<50)
	f.Add(hostile)
	hostile2 := append([]byte(nil), skBytes...)
	binary.LittleEndian.PutUint64(hostile2[headerWords*8:], 1<<60) // absurd limbsP
	f.Add(hostile2)

	f.Fuzz(func(t *testing.T, data []byte) {
		var swk SwitchingKey
		if err := swk.UnmarshalBinary(data); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("switching key rejection not wrapping ErrCorrupt: %v", err)
		}
		var set RotationKeySet
		if err := set.UnmarshalBinary(data); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("rotation key set rejection not wrapping ErrCorrupt: %v", err)
		}
		var sk SecretKey
		if err := sk.UnmarshalBinary(data); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("secret key rejection not wrapping ErrCorrupt: %v", err)
		}
	})
}

// Every deserializer must report corruption through the ErrCorrupt
// sentinel so callers can distinguish bad bytes from I/O failures.
func TestDeserializeErrorsWrapErrCorrupt(t *testing.T) {
	garbage := []byte("not a poseidon object, definitely")
	targets := []struct {
		name string
		f    func([]byte) error
	}{
		{"Ciphertext", func(b []byte) error { var x Ciphertext; return x.UnmarshalBinary(b) }},
		{"Plaintext", func(b []byte) error { var x Plaintext; return x.UnmarshalBinary(b) }},
		{"SecretKey", func(b []byte) error { var x SecretKey; return x.UnmarshalBinary(b) }},
		{"SwitchingKey", func(b []byte) error { var x SwitchingKey; return x.UnmarshalBinary(b) }},
		{"RotationKeySet", func(b []byte) error { var x RotationKeySet; return x.UnmarshalBinary(b) }},
	}
	for _, tc := range targets {
		if err := tc.f(garbage); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: garbage rejection %v does not wrap ErrCorrupt", tc.name, err)
		}
		if err := tc.f(nil); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: empty-input rejection %v does not wrap ErrCorrupt", tc.name, err)
		}
	}
}

// A valid ciphertext must survive the fuzz-exercised path unchanged.
func TestFuzzSeedRoundTrip(t *testing.T) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     8,
		LogQ:     []int{50, 40},
		LogP:     []int{51},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	kgen := NewKeyGenerator(params, 102)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	encr := NewEncryptor(params, pk, 103)
	ct := encr.EncryptZero(params.MaxLevel(), params.Scale)
	data, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Ciphertext
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !back.C0.Equal(ct.C0) {
		t.Error("round trip mutated the ciphertext")
	}
}
