package ckks

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestEvalPolyQuadratic(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, tc.rlk, nil)
	rng := rand.New(rand.NewSource(60))
	z := randomComplex(rng, tc.params.Slots, 1.0)
	ct := tc.encryptVec(z)

	// p(x) = 0.5 − x + 2x²
	coeffs := []float64{0.5, -1, 2}
	out := ev.EvalPoly(ct, coeffs)
	got := tc.decryptVec(out)
	want := make([]complex128, len(z))
	for i, x := range z {
		want[i] = 0.5 - x + 2*x*x
	}
	assertClose(t, got, want, 1e-4, "quadratic EvalPoly")
}

// deepTestContext provides an 11-level chain for depth-hungry evaluations.
func deepTestContext(t testing.TB) *testContext {
	t.Helper()
	params, err := NewParameters(ParametersLiteral{
		LogN:     10,
		LogQ:     []int{55, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	tc := &testContext{params: params}
	tc.enc = NewEncoder(params)
	tc.kgen = NewKeyGenerator(params, 61)
	tc.sk = tc.kgen.GenSecretKey()
	tc.pk = tc.kgen.GenPublicKey(tc.sk)
	tc.rlk = tc.kgen.GenRelinearizationKey(tc.sk)
	tc.encr = NewEncryptor(params, tc.pk, 62)
	tc.decr = NewDecryptor(params, tc.sk)
	return tc
}

func TestEvalPolyDegreeSeven(t *testing.T) {
	tc := deepTestContext(t)
	ev := NewEvaluator(tc.params, tc.rlk, nil)
	rng := rand.New(rand.NewSource(61))
	// Keep inputs small so x^7 stays well-conditioned.
	z := randomComplex(rng, tc.params.Slots, 0.8)
	ct := tc.encryptVec(z)

	coeffs := []float64{0.1, 0.3, 0, -0.5, 0.2, 0, 0.05, -0.02}
	out := ev.EvalPoly(ct, coeffs)
	got := tc.decryptVec(out)
	want := make([]complex128, len(z))
	for i, x := range z {
		acc := complex(0, 0)
		pw := complex(1, 0)
		for _, c := range coeffs {
			acc += complex(c, 0) * pw
			pw *= x
		}
		want[i] = acc
	}
	assertClose(t, got, want, 1e-3, "degree-7 EvalPoly")
}

func TestEvalPolyConstantAndLinear(t *testing.T) {
	tc := newTestContext(t)
	ev := NewEvaluator(tc.params, tc.rlk, nil)
	rng := rand.New(rand.NewSource(62))
	z := randomComplex(rng, tc.params.Slots, 1.0)
	ct := tc.encryptVec(z)

	got := tc.decryptVec(ev.EvalPoly(ct, []float64{0.75}))
	want := make([]complex128, len(z))
	for i := range want {
		want[i] = 0.75
	}
	assertClose(t, got, want, 1e-5, "constant EvalPoly")

	got = tc.decryptVec(ev.EvalPoly(ct, []float64{-0.25, 3}))
	for i, x := range z {
		want[i] = complex(-0.25, 0) + 3*x
	}
	assertClose(t, got, want, 1e-4, "linear EvalPoly")
}

func TestEvalPolyAgainstChebyshev(t *testing.T) {
	// Both evaluators must agree on the same underlying function.
	tc := deepTestContext(t)
	ev := NewEvaluator(tc.params, tc.rlk, nil)
	rng := rand.New(rand.NewSource(63))
	z := make([]complex128, tc.params.Slots)
	for i := range z {
		z[i] = complex(rng.Float64()*2-1, 0)
	}
	ct := tc.encryptVec(z)

	// f(x) = x³ − 0.5x on [-1, 1].
	power := ev.EvalPoly(ct, []float64{0, -0.5, 0, 1})
	cheb := ev.EvalChebyshev(ct, ChebyshevCoefficients(func(x float64) float64 {
		return x*x*x - 0.5*x
	}, -1, 1, 7), -1, 1)

	gp := tc.decryptVec(power)
	gc := tc.decryptVec(cheb)
	worst := 0.0
	for i := range gp {
		if e := cmplx.Abs(gp[i] - gc[i]); e > worst {
			worst = e
		}
	}
	if worst > 1e-3 {
		t.Errorf("power vs Chebyshev disagreement %g", worst)
	}
}
