package ckks

import (
	"fmt"

	"poseidon/internal/automorph"
	"poseidon/internal/ring"
)

// Destination-passing evaluator API. Every *Into method writes its result
// into a caller-owned ciphertext (created with NewCiphertext, typically at
// the operand level or above) and returns it, so fixed-level operation
// chains reuse the same containers instead of allocating fresh ones. The
// destination is reshaped to the output level through its slice capacity —
// a ciphertext created at level l can host any result at level ≤ l — and
// its Scale/Level/IsNTT bookkeeping is fully overwritten.
//
// Aliasing: the destination may alias an operand for every method except
// MulRelinInto (whose degree-2 product reads both operands while writing
// the destination limb by limb); Rescale/Rotate/Conjugate/KeySwitch copy
// their inputs into arena scratch before touching the destination, and the
// remaining methods are elementwise. MulRelinInto panics on aliasing.
//
// Together with the ring arena these methods make the steady state
// allocation-free: at a fixed level with workers=1, AddInto, MulPlainInto
// (memoized plaintext), MulRelinInto, RescaleInto, RotateInto and
// KeySwitchInto perform zero heap allocations per call (enforced by
// alloc_test.go).

// reshapePoly re-slices p to `limbs` limbs through its capacity. The
// backing rows persist across down/up reshapes, so a destination created at
// a high level can be reused down the modulus chain and back.
func reshapePoly(p *ring.Poly, limbs int) {
	if limbs <= cap(p.Coeffs) {
		p.Coeffs = p.Coeffs[:limbs]
		return
	}
	panic(fmt.Sprintf("ckks: destination holds %d limbs, result needs %d — create it at a higher level", cap(p.Coeffs), limbs))
}

// reshapeCt shapes the destination to the given output level. Any integrity
// seal on the destination is invalidated: its contents are about to be
// overwritten, and the producing operation re-seals when guards are on.
func reshapeCt(out *Ciphertext, level int) {
	reshapePoly(out.C0, level+1)
	reshapePoly(out.C1, level+1)
	out.Level = level
	out.seal = nil
}

// aliases reports whether two polynomials share backing storage (including
// prefix views of each other).
func aliases(a, b *ring.Poly) bool {
	return a == b || &a.Coeffs[0][0] == &b.Coeffs[0][0]
}

// AddInto computes out = a + b (HAdd). out may alias a or b.
func (ev *Evaluator) AddInto(out *Ciphertext, a, b *Ciphertext) *Ciphertext {
	sp := ev.beginOp("HAdd")
	a, b = ev.alignLevels(a, b)
	if !sameScale(a.Scale, b.Scale) {
		panic(fmt.Sprintf("ckks: Add scale mismatch %g vs %g", a.Scale, b.Scale))
	}
	reshapeCt(out, a.Level)
	rq := ev.params.RingQ
	rq.AddParallel(out.C0, a.C0, b.C0, ev.pool)
	rq.AddParallel(out.C1, a.C1, b.C1, ev.pool)
	out.Scale = a.Scale
	ev.endOp("HAdd", a.Level, sp)
	return out
}

// SubInto computes out = a − b. out may alias a or b.
func (ev *Evaluator) SubInto(out *Ciphertext, a, b *Ciphertext) *Ciphertext {
	sp := ev.beginOp("HAdd")
	a, b = ev.alignLevels(a, b)
	if !sameScale(a.Scale, b.Scale) {
		panic(fmt.Sprintf("ckks: Sub scale mismatch %g vs %g", a.Scale, b.Scale))
	}
	reshapeCt(out, a.Level)
	rq := ev.params.RingQ
	rq.SubParallel(out.C0, a.C0, b.C0, ev.pool)
	rq.SubParallel(out.C1, a.C1, b.C1, ev.pool)
	out.Scale = a.Scale
	ev.endOp("HAdd", a.Level, sp)
	return out
}

// NegInto computes out = −a. out may alias a.
func (ev *Evaluator) NegInto(out *Ciphertext, a *Ciphertext) *Ciphertext {
	reshapeCt(out, a.Level)
	rq := ev.params.RingQ
	rq.NegParallel(out.C0, a.C0, ev.pool)
	rq.NegParallel(out.C1, a.C1, ev.pool)
	out.Scale = a.Scale
	return out
}

// AddPlainInto computes out = ct + pt (only C0 changes). out may alias ct.
func (ev *Evaluator) AddPlainInto(out *Ciphertext, ct *Ciphertext, pt *Plaintext) *Ciphertext {
	sp := ev.beginOp("HAddPlain")
	if !sameScale(ct.Scale, pt.Scale) {
		panic(fmt.Sprintf("ckks: AddPlain scale mismatch %g vs %g", ct.Scale, pt.Scale))
	}
	level := min(ct.Level, pt.Level)
	reshapeCt(out, level)
	rq := ev.params.RingQ
	rq.AddParallel(out.C0, prefix(ct.C0, level+1), prefix(pt.Value, level+1), ev.pool)
	if !aliases(out.C1, ct.C1) {
		copyInto(out.C1, prefix(ct.C1, level+1))
	}
	out.Scale = ct.Scale
	ev.endOp("HAddPlain", level, sp)
	return out
}

// MulPlainInto computes out = ct · pt (PMult). out may alias ct. On the
// lazy-kernel path the plaintext's Montgomery image is memoized on first
// use (see Plaintext.montImage), so repeated multiplications by the same
// plaintext skip the per-element lift and run only the REDC tail —
// bit-identical to the unmemoized product.
func (ev *Evaluator) MulPlainInto(out *Ciphertext, ct *Ciphertext, pt *Plaintext) *Ciphertext {
	sp := ev.beginOp("PMult")
	level := min(ct.Level, pt.Level)
	limbs := level + 1
	reshapeCt(out, level)
	rq := ev.params.RingQ
	c0, c1 := prefix(ct.C0, limbs), prefix(ct.C1, limbs)

	var mont *ring.Poly
	if !rq.StrictKernels() {
		mont = pt.montImage(rq)
	}
	if mont != nil {
		if !c0.IsNTT || !c1.IsNTT || !mont.IsNTT {
			panic("ckks: MulPlain: operands must be in NTT domain")
		}
		if ev.pool.Workers() <= 1 {
			for i := 0; i < limbs; i++ {
				mod := rq.Moduli[i]
				mod.VecMRed(out.C0.Coeffs[i], c0.Coeffs[i], mont.Coeffs[i])
				mod.VecMRed(out.C1.Coeffs[i], c1.Coeffs[i], mont.Coeffs[i])
			}
		} else {
			ev.pool.ForEach(limbs, func(i int) {
				mod := rq.Moduli[i]
				mod.VecMRed(out.C0.Coeffs[i], c0.Coeffs[i], mont.Coeffs[i])
				mod.VecMRed(out.C1.Coeffs[i], c1.Coeffs[i], mont.Coeffs[i])
			})
		}
		out.C0.IsNTT, out.C1.IsNTT = true, true
	} else {
		pv := prefix(pt.Value, limbs)
		rq.MulCoeffwiseParallel(out.C0, c0, pv, ev.pool)
		rq.MulCoeffwiseParallel(out.C1, c1, pv, ev.pool)
	}
	out.Scale = ct.Scale * pt.Scale
	ev.endOp("PMult", level, sp)
	return out
}

// mulRelinLimb computes limb i of the degree-2 product: o0 = a0·b0,
// o1 = a0·b1 + a1·b0, o2 = a1·b1 (all NTT-domain, element-wise — the
// paper's batched MM operator across limbs).
func mulRelinLimb(rq *ring.Ring, i int, a, b, out *Ciphertext, d2 *ring.Poly, strict bool) {
	mod := rq.Moduli[i]
	a0, a1 := a.C0.Coeffs[i], a.C1.Coeffs[i]
	b0, b1 := b.C0.Coeffs[i], b.C1.Coeffs[i]
	o0, o1, o2 := out.C0.Coeffs[i], out.C1.Coeffs[i], d2.Coeffs[i]
	if strict {
		for j := range o0 {
			o0[j] = mod.Mul(a0[j], b0[j])
			o1[j] = mod.Add(mod.Mul(a0[j], b1[j]), mod.Mul(a1[j], b0[j]))
			o2[j] = mod.Mul(a1[j], b1[j])
		}
	} else {
		// Montgomery squares plus the fused cross term: the two cross
		// products accumulate in 128 bits and take one Barrett
		// reduction per coefficient instead of two plus an add.
		mod.VecMontMul(o0, a0, b0)
		mod.VecMulPairSum(o1, a0, b1, a1, b0)
		mod.VecMontMul(o2, a1, b1)
	}
}

// MulRelinInto computes out = a·b with relinearization (CMult). out must
// NOT alias a or b (the degree-2 product writes the destination while still
// reading both operands); it panics if it does.
func (ev *Evaluator) MulRelinInto(out *Ciphertext, a, b *Ciphertext) *Ciphertext {
	if ev.rlk == nil {
		panic("ckks: MulRelin requires a relinearization key")
	}
	sp := ev.beginOp("CMult")
	a, b = ev.alignLevels(a, b)
	level := a.Level
	reshapeCt(out, level)
	if aliases(out.C0, a.C0) || aliases(out.C0, b.C0) || aliases(out.C1, a.C1) || aliases(out.C1, b.C1) {
		panic("ckks: MulRelinInto destination must not alias an operand")
	}
	rq := ev.params.RingQ

	// Scratch is released by the deferred sweep on every exit — including a
	// panic inside the keyswitch pipeline — and eagerly as soon as each
	// piece is done, so the defer is a no-op on the happy path. The sweep
	// tracks releases through d2Live rather than nil-ing d2 itself: d2 is
	// captured by the worker-pool closure below, and reassigning it would
	// force a by-reference capture that moves it to the heap (breaking the
	// zero-alloc gates). Only the non-escaping defer closure sees d2Live.
	d2 := rq.GetPolyDirty(level + 1)
	d2Live := d2
	var p0, p1 *ring.Poly
	defer func() {
		if d2Live != nil {
			rq.PutPoly(d2Live)
		}
		if p0 != nil {
			rq.PutPoly(p0)
		}
		if p1 != nil {
			rq.PutPoly(p1)
		}
	}()
	strict := rq.StrictKernels()
	if ev.pool.Workers() <= 1 {
		for i := 0; i <= level; i++ {
			mulRelinLimb(rq, i, a, b, out, d2, strict)
		}
	} else {
		ev.pool.ForEach(level+1, func(i int) {
			mulRelinLimb(rq, i, a, b, out, d2, strict)
		})
	}
	out.C0.IsNTT, out.C1.IsNTT, d2.IsNTT = true, true, true

	// Keyswitch d2: contributes (p0, p1) ≈ (d2·s² − p1·s, p1).
	rq.INTTParallel(d2, ev.pool)
	p0 = rq.GetPolyDirty(level + 1)
	p1 = rq.GetPolyDirty(level + 1)
	ev.keySwitchCoreInto(p0, p1, level, d2, &ev.rlk.SwitchingKey)
	rq.PutPoly(d2)
	d2Live = nil

	rq.AddParallel(out.C0, out.C0, p0, ev.pool)
	rq.AddParallel(out.C1, out.C1, p1, ev.pool)
	rq.PutPoly(p0)
	p0 = nil
	rq.PutPoly(p1)
	p1 = nil
	out.Scale = a.Scale * b.Scale
	ev.endOp("CMult", level, sp)
	return out
}

// RescaleInto divides ct by the last active prime, writing the level−1
// result into out. out may alias ct (the inputs are copied to arena scratch
// before the destination is reshaped).
func (ev *Evaluator) RescaleInto(out *Ciphertext, ct *Ciphertext) *Ciphertext {
	if ct.Level == 0 {
		panic("ckks: cannot rescale at level 0")
	}
	sp := ev.beginOp("Rescale")
	rq := ev.params.RingQ
	level := ct.Level
	// c0/c1 are never reassigned once acquired so the worker-pool closure
	// below captures them by value; the panic sweep tracks releases through
	// the *Live shadows, which only the non-escaping defer closure touches
	// (reassigning c0/c1 directly would move them to the heap and break the
	// zero-alloc gates).
	c0 := ev.inttCopy(ct.C0)
	c0Live := c0
	var c1Live *ring.Poly
	defer func() {
		if c0Live != nil {
			rq.PutPoly(c0Live)
		}
		if c1Live != nil {
			rq.PutPoly(c1Live)
		}
	}()
	c1 := ev.inttCopy(ct.C1)
	c1Live = c1

	reshapeCt(out, level-1)
	// The rescale of each coefficient is self-contained, so it chunks
	// across the pool without changing a single bit of the output.
	rescaler := ev.params.rescaler
	if ev.pool.Workers() <= 1 {
		rescaler.Rescale(out.C0.Coeffs, c0.Coeffs)
		rescaler.Rescale(out.C1.Coeffs, c1.Coeffs)
	} else {
		ev.pool.ForEachChunk(ev.params.N, func(lo, hi int) {
			rescaler.Rescale(rangeView(out.C0.Coeffs, lo, hi), rangeView(c0.Coeffs, lo, hi))
			rescaler.Rescale(rangeView(out.C1.Coeffs, lo, hi), rangeView(c1.Coeffs, lo, hi))
		})
	}
	rq.PutPoly(c0)
	c0Live = nil
	rq.PutPoly(c1)
	c1Live = nil
	out.C0.IsNTT, out.C1.IsNTT = false, false
	ev.nttParallelGuarded("Rescale", out.C0)
	ev.nttParallelGuarded("Rescale", out.C1)
	out.Scale = ct.Scale / float64(ev.params.Q[level])
	ev.endOp("Rescale", level, sp)
	return out
}

// RotateInto rotates the slot vector by `steps`, writing into out. out may
// alias ct.
func (ev *Evaluator) RotateInto(out *Ciphertext, ct *Ciphertext, steps int) *Ciphertext {
	g := automorph.GaloisElementForRotation(steps, ev.params.N)
	return ev.automorphismKSInto(out, ct, g)
}

// ConjugateInto conjugates every slot, writing into out. out may alias ct.
func (ev *Evaluator) ConjugateInto(out *Ciphertext, ct *Ciphertext) *Ciphertext {
	g := automorph.GaloisElementConjugate(ev.params.N)
	return ev.automorphismKSInto(out, ct, g)
}

func (ev *Evaluator) automorphismKSInto(out *Ciphertext, ct *Ciphertext, g uint64) *Ciphertext {
	level := ct.Level
	if g == 1 {
		reshapeCt(out, level)
		if !aliases(out.C0, ct.C0) {
			copyInto(out.C0, ct.C0)
			copyInto(out.C1, ct.C1)
		}
		out.Scale = ct.Scale
		return out
	}
	if ev.rtks == nil {
		panic("ckks: rotation requires rotation keys")
	}
	key, ok := ev.rtks.Keys[g]
	if !ok {
		panic(fmt.Sprintf("ckks: no rotation key for Galois element %d", g))
	}
	sp := ev.beginOp("Rotation")
	rq := ev.params.RingQ

	c0 := ev.inttCopy(ct.C0)
	var c1, a1, p0 *ring.Poly
	defer func() {
		if c0 != nil {
			rq.PutPoly(c0)
		}
		if c1 != nil {
			rq.PutPoly(c1)
		}
		if a1 != nil {
			rq.PutPoly(a1)
		}
		if p0 != nil {
			rq.PutPoly(p0)
		}
	}()
	c1 = ev.inttCopy(ct.C1)
	reshapeCt(out, level)
	a1 = rq.GetPolyDirty(level + 1)
	a1.IsNTT = false
	rq.AutomorphismParallel(out.C0, c0, g, ev.pool)
	rq.AutomorphismParallel(a1, c1, g, ev.pool)
	rq.PutPoly(c0)
	c0 = nil
	rq.PutPoly(c1)
	c1 = nil

	// Keyswitch σ_g(c1) from σ_g(s) to s; p1 lands directly in out.C1.
	p0 = rq.GetPolyDirty(level + 1)
	ev.keySwitchCoreInto(p0, out.C1, level, a1, key)
	rq.PutPoly(a1)
	a1 = nil
	ev.nttParallelGuarded("Rotation", out.C0)
	rq.AddParallel(out.C0, out.C0, p0, ev.pool)
	rq.PutPoly(p0)
	p0 = nil
	out.Scale = ct.Scale
	ev.endOp("Rotation", level, sp)
	return out
}

// KeySwitchInto re-encrypts ct under swk, writing into out. out may alias
// ct.
func (ev *Evaluator) KeySwitchInto(out *Ciphertext, ct *Ciphertext, swk *SwitchingKey) *Ciphertext {
	sp := ev.beginOp("Keyswitch")
	rq := ev.params.RingQ
	level := ct.Level
	c1 := ev.inttCopy(ct.C1)
	var p0 *ring.Poly
	defer func() {
		if c1 != nil {
			rq.PutPoly(c1)
		}
		if p0 != nil {
			rq.PutPoly(p0)
		}
	}()
	reshapeCt(out, level)
	p0 = rq.GetPolyDirty(level + 1)
	ev.keySwitchCoreInto(p0, out.C1, level, c1, swk)
	rq.PutPoly(c1)
	c1 = nil
	rq.AddParallel(out.C0, ct.C0, p0, ev.pool)
	rq.PutPoly(p0)
	p0 = nil
	out.Scale = ct.Scale
	ev.endOp("Keyswitch", level, sp)
	return out
}
