package ckks

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestSparseEncodeDecodeRoundTrip(t *testing.T) {
	tc := newTestContext(t)
	rng := rand.New(rand.NewSource(120))
	for _, m := range []int{1, 4, 32, tc.params.Slots} {
		z := randomComplex(rng, m, 1.0)
		pt := tc.enc.EncodeSparse(z, m, tc.params.MaxLevel(), tc.params.Scale)
		got := tc.enc.DecodeSparse(pt, m)
		for i := range z {
			if cmplx.Abs(got[i]-z[i]) > 1e-8 {
				t.Fatalf("m=%d slot %d: %v != %v", m, i, got[i], z[i])
			}
		}
	}
}

func TestSparseReplication(t *testing.T) {
	tc := newTestContext(t)
	m := 8
	z := []complex128{1, 2, 3, 4, 5, 6, 7, 8}
	pt := tc.enc.EncodeSparse(z, m, tc.params.MaxLevel(), tc.params.Scale)
	full := tc.enc.Decode(pt)
	// Every m-block must carry the same values.
	for c := 0; c < tc.params.Slots/m; c++ {
		for i := 0; i < m; i++ {
			if cmplx.Abs(full[c*m+i]-z[i]) > 1e-7 {
				t.Fatalf("copy %d slot %d: replication broken", c, i)
			}
		}
	}
}

// Rotation by m steps maps each replica onto the next, so a sparse
// ciphertext is invariant under it.
func TestSparseRotationInvariance(t *testing.T) {
	tc := newTestContext(t)
	m := 16
	rtks := tc.kgen.GenRotationKeys(tc.sk, []int{m}, false)
	ev := NewEvaluator(tc.params, nil, rtks)
	rng := rand.New(rand.NewSource(121))
	z := randomComplex(rng, m, 1.0)
	pt := tc.enc.EncodeSparse(z, m, tc.params.MaxLevel(), tc.params.Scale)
	ct := tc.encr.Encrypt(pt)

	rot := ev.Rotate(ct, m)
	got := tc.enc.DecodeSparse(tc.decr.Decrypt(rot), m)
	for i := range z {
		if cmplx.Abs(got[i]-z[i]) > 1e-4 {
			t.Fatalf("slot %d: rotation by the replica stride should be identity", i)
		}
	}
}

func TestReplicateBroadcastsSlotZero(t *testing.T) {
	tc := newTestContext(t)
	m := 8
	steps := []int{-1, -2, -4}
	rtks := tc.kgen.GenRotationKeys(tc.sk, steps, false)
	ev := NewEvaluator(tc.params, nil, rtks)

	// A vector with value only in slot 0 of each m-block.
	full := make([]complex128, tc.params.Slots)
	for c := 0; c < tc.params.Slots/m; c++ {
		full[c*m] = 2.5
	}
	pt := tc.enc.Encode(full, tc.params.MaxLevel(), tc.params.Scale)
	ct := tc.encr.Encrypt(pt)

	rep := ev.Replicate(ct, m)
	got := tc.enc.Decode(tc.decr.Decrypt(rep))
	for i := 0; i < 4*m; i++ {
		if cmplx.Abs(got[i]-2.5) > 1e-4 {
			t.Fatalf("slot %d: replicate gave %v want 2.5", i, got[i])
		}
	}
}

func TestSparsePanics(t *testing.T) {
	tc := newTestContext(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-power-of-two m should panic")
			}
		}()
		tc.enc.EncodeSparse(nil, 3, 1, tc.params.Scale)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("too many values should panic")
			}
		}()
		tc.enc.EncodeSparse(make([]complex128, 8), 4, 1, tc.params.Scale)
	}()
}
