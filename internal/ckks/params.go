// Package ckks implements the RNS-CKKS approximate homomorphic encryption
// scheme — the FHE substrate the Poseidon accelerator executes. It provides
// encoding via the canonical embedding, key generation, encryption, and an
// evaluator covering every basic operation the paper decomposes into
// operators: HAdd, PMult, CMult with relinearization, Rescale, Keyswitch
// (RNSconv/ModUp/ModDown), Rotation, conjugation, and packed bootstrapping.
package ckks

import (
	"fmt"
	"math"
	"sync"

	"poseidon/internal/numeric"
	"poseidon/internal/ring"
	"poseidon/internal/rns"
)

// Parameters fixes a CKKS instance: ring degree, modulus chain Q, special
// (keyswitching) modulus chain P, and the default encoding scale.
// Parameters are immutable after construction and safe to share.
type Parameters struct {
	LogN  int
	N     int
	Slots int // N/2 complex slots

	Q []uint64 // ciphertext modulus chain, level l uses Q[0..l]
	P []uint64 // special primes for hybrid keyswitching

	Scale float64 // default encoding scale Δ

	RingQ *ring.Ring
	RingP *ring.Ring

	decomposer *rns.Decomposer
	rescaler   *rns.Rescaler
	modDown    []*rns.ModDownParams // per level, built eagerly

	// pool is the limb-parallel execution engine evaluators built from
	// these parameters inherit (overridable per evaluator via WithWorkers).
	pool *ring.Pool

	// pModQ[i] = Π_j p_j mod q_i (with Shoup constants): the scalar that
	// lifts a Q-basis polynomial x to the value P·x the extended-basis
	// accumulators of hoisted keyswitching hold before ModDown. The
	// double-hoisted linear-transform engine uses it to fold the identity
	// rotation and the baby-step c0 corrections into the lazy QP basis.
	pModQ      []uint64
	pModQShoup []uint64

	// Deterministic scratch free lists for the keyswitch pipeline. Like the
	// ring arena these are mutex-guarded typed stacks, not sync.Pools: they
	// are never cleared by the GC and pushing onto them does not box, so a
	// steady-state evaluator loop checks the same buffers in and out with
	// zero heap allocations.
	scratchMu sync.Mutex
	extFree   [][][]uint64 // full (|Q|+|P|)-row extended-digit matrices
	wideFree  []*wideAcc   // full-capacity 128-bit accumulator banks
	ksFree    []*ksState   // keyswitch pipeline state records
	ltFree    []*ltState   // double-hoisted linear-transform state records
}

// getExt returns a `limbs`-row extended-digit scratch buffer (each row N
// words, contents unspecified) from the parameter set's free list. The
// underlying matrix always spans |Q|+|P| rows, so one free list serves
// every level; putExt recovers the full matrix through the slice capacity.
func (p *Parameters) getExt(limbs int) [][]uint64 {
	p.scratchMu.Lock()
	if n := len(p.extFree); n > 0 {
		m := p.extFree[n-1]
		p.extFree[n-1] = nil
		p.extFree = p.extFree[:n-1]
		p.scratchMu.Unlock()
		return m[:limbs]
	}
	p.scratchMu.Unlock()
	rows := len(p.Q) + len(p.P)
	backing := make([]uint64, rows*p.N)
	m := make([][]uint64, rows)
	for i := range m {
		m[i] = backing[i*p.N : (i+1)*p.N]
	}
	return m[:limbs]
}

// putExt returns a getExt buffer to the free list.
func (p *Parameters) putExt(ext [][]uint64) {
	if cap(ext) == 0 {
		return
	}
	p.scratchMu.Lock()
	p.extFree = append(p.extFree, ext[:cap(ext)])
	p.scratchMu.Unlock()
}

// getWide returns a wideAcc with the first `rows` accumulator rows zeroed
// (capacity always covers 2·(|Q|+|P|) rows, the deepest consumer).
func (p *Parameters) getWide(rows int) *wideAcc {
	p.scratchMu.Lock()
	var w *wideAcc
	if n := len(p.wideFree); n > 0 {
		w = p.wideFree[n-1]
		p.wideFree[n-1] = nil
		p.wideFree = p.wideFree[:n-1]
	}
	p.scratchMu.Unlock()
	if w == nil {
		w = newWideAcc(2*(len(p.Q)+len(p.P)), p.N)
		return w // fresh slabs are already zero
	}
	for r := 0; r < rows; r++ {
		clear(w.hi[r])
		clear(w.lo[r])
	}
	return w
}

// putWide returns a wideAcc to the free list.
func (p *Parameters) putWide(w *wideAcc) {
	if w == nil {
		return
	}
	p.scratchMu.Lock()
	p.wideFree = append(p.wideFree, w)
	p.scratchMu.Unlock()
}

// getKsState returns a (possibly recycled) keyswitch pipeline state record.
func (p *Parameters) getKsState() *ksState {
	p.scratchMu.Lock()
	var s *ksState
	if n := len(p.ksFree); n > 0 {
		s = p.ksFree[n-1]
		p.ksFree[n-1] = nil
		p.ksFree = p.ksFree[:n-1]
	}
	p.scratchMu.Unlock()
	if s == nil {
		s = &ksState{}
	}
	return s
}

// putKsState clears and recycles a keyswitch state record.
func (p *Parameters) putKsState(s *ksState) {
	*s = ksState{}
	p.scratchMu.Lock()
	p.ksFree = append(p.ksFree, s)
	p.scratchMu.Unlock()
}

// getLtState returns a (possibly recycled) double-hoisted linear-transform
// state record. Unlike ksState records, ltState keeps its slice capacities
// across checkouts — the per-call reset happens in ltState.reset — so the
// baby-step tables never reallocate in steady state.
func (p *Parameters) getLtState() *ltState {
	p.scratchMu.Lock()
	var s *ltState
	if n := len(p.ltFree); n > 0 {
		s = p.ltFree[n-1]
		p.ltFree[n-1] = nil
		p.ltFree = p.ltFree[:n-1]
	}
	p.scratchMu.Unlock()
	if s == nil {
		s = &ltState{}
	}
	return s
}

// putLtState recycles a linear-transform state record (already reset by its
// release path).
func (p *Parameters) putLtState(s *ltState) {
	p.scratchMu.Lock()
	p.ltFree = append(p.ltFree, s)
	p.scratchMu.Unlock()
}

// ArenaStats aggregates the scratch-arena counters of both rings — the
// observable for the memory model: in a steady-state evaluator loop
// BytesAllocated stops growing and Misses stays flat while Gets climbs.
func (p *Parameters) ArenaStats() ring.ArenaStats {
	q := p.RingQ.Arena().Stats()
	r := p.RingP.Arena().Stats()
	return ring.ArenaStats{
		Gets:           q.Gets + r.Gets,
		Puts:           q.Puts + r.Puts,
		Misses:         q.Misses + r.Misses,
		BytesAllocated: q.BytesAllocated + r.BytesAllocated,
		BytesInUse:     q.BytesInUse + r.BytesInUse,
		PeakBytes:      q.PeakBytes + r.PeakBytes,
	}
}

// ParametersLiteral is the user-facing specification: prime bit sizes
// rather than concrete primes.
type ParametersLiteral struct {
	LogN     int
	LogQ     []int // bit size of each chain prime, q0 first
	LogP     []int // bit sizes of the special primes
	LogScale int   // Δ = 2^LogScale
	LaneC    int   // HFAuto sub-vector width; 0 = default min(512, N)

	// Workers bounds the limb-parallel worker pool evaluators run on:
	// 0 shares the package-level pool sized by runtime.GOMAXPROCS,
	// 1 forces fully serial execution, n > 1 creates a dedicated pool of
	// that width. Results are bit-identical for every setting.
	Workers int

	// StrictKernels starts the instance on the fully reduced reference
	// kernels instead of the lazy-reduction production kernels. Outputs are
	// bit-identical either way; the flag exists for differential testing
	// and before/after benchmarking (see Parameters.SetStrictKernels).
	StrictKernels bool

	// FusionDegree starts the instance on the fused radix-2^k NTT kernels:
	// k in [1, 6] fuses k butterfly stages per memory pass (0 = plain
	// radix-2). Outputs are bit-identical for every setting; k=3 is the
	// measured sweet spot (see Parameters.SetFusionDegree).
	FusionDegree int
}

// NewParameters instantiates the literal: generates distinct NTT-friendly
// primes of the requested sizes and builds the rings and RNS tooling.
func NewParameters(lit ParametersLiteral) (*Parameters, error) {
	if lit.LogN < 3 || lit.LogN > 17 {
		return nil, fmt.Errorf("ckks: LogN=%d out of range [3,17]", lit.LogN)
	}
	if len(lit.LogQ) == 0 {
		return nil, fmt.Errorf("ckks: empty modulus chain")
	}
	if len(lit.LogP) == 0 {
		return nil, fmt.Errorf("ckks: hybrid keyswitching requires ≥1 special prime")
	}

	// Generate enough distinct primes per bit size in one pass so repeated
	// sizes never collide.
	need := map[int]int{}
	for _, b := range lit.LogQ {
		need[b]++
	}
	for _, b := range lit.LogP {
		need[b]++
	}
	pool := map[int][]uint64{}
	for b, cnt := range need {
		ps, err := numeric.GenerateNTTPrimes(b, lit.LogN, cnt)
		if err != nil {
			return nil, fmt.Errorf("ckks: %v", err)
		}
		pool[b] = ps
	}
	take := func(b int) uint64 {
		ps := pool[b]
		q := ps[0]
		pool[b] = ps[1:]
		return q
	}

	p := &Parameters{
		LogN:  lit.LogN,
		N:     1 << uint(lit.LogN),
		Slots: 1 << uint(lit.LogN-1),
		Scale: math.Exp2(float64(lit.LogScale)),
	}
	for _, b := range lit.LogQ {
		p.Q = append(p.Q, take(b))
	}
	for _, b := range lit.LogP {
		p.P = append(p.P, take(b))
	}

	var err error
	if p.RingQ, err = ring.NewRing(p.N, p.Q, lit.LaneC); err != nil {
		return nil, err
	}
	if p.RingP, err = ring.NewRing(p.N, p.P, lit.LaneC); err != nil {
		return nil, err
	}

	p.pModQ = make([]uint64, len(p.Q))
	p.pModQShoup = make([]uint64, len(p.Q))
	for i, qi := range p.RingQ.Moduli {
		prod := uint64(1)
		for _, pj := range p.RingP.Moduli {
			prod = qi.Mul(prod, qi.Reduce(pj.Q))
		}
		p.pModQ[i] = prod
		p.pModQShoup[i] = qi.ShoupConstant(prod)
	}

	alpha := len(p.P)
	p.decomposer = rns.NewDecomposer(p.RingQ.Moduli, p.RingP.Moduli, alpha)
	p.rescaler = rns.NewRescaler(p.RingQ.Moduli)
	p.modDown = make([]*rns.ModDownParams, len(p.Q))
	for l := 0; l < len(p.Q); l++ {
		p.modDown[l] = rns.NewModDownParams(p.RingQ.Moduli[:l+1], p.RingP.Moduli)
	}
	if lit.Workers == 0 {
		p.pool = ring.DefaultPool()
	} else {
		p.pool = ring.NewPool(lit.Workers)
	}
	p.SetStrictKernels(lit.StrictKernels)
	if err := p.SetFusionDegree(lit.FusionDegree); err != nil {
		return nil, err
	}
	return p, nil
}

// SetStrictKernels switches both rings (and the evaluator paths keyed off
// them) between the lazy production kernels (false, default) and the strict
// reference kernels (true). Outputs are bit-identical; see
// ring.Ring.SetStrictKernels for the concurrency caveat.
func (p *Parameters) SetStrictKernels(strict bool) {
	p.RingQ.SetStrictKernels(strict)
	p.RingP.SetStrictKernels(strict)
}

// StrictKernels reports whether the strict reference kernels are selected.
func (p *Parameters) StrictKernels() bool { return p.RingQ.StrictKernels() }

// SetFusionDegree switches both rings onto the fused radix-2^k NTT kernels
// (k in [1, 6]; 0 restores plain radix-2). Plans are built once per (ring,
// k) and cached, shared by every evaluator on these parameters; outputs are
// bit-identical for every setting and strict mode takes precedence while
// set. See ring.Ring.SetFusionDegree for the concurrency caveat.
func (p *Parameters) SetFusionDegree(k int) error {
	if err := p.RingQ.SetFusionDegree(k); err != nil {
		return err
	}
	return p.RingP.SetFusionDegree(k)
}

// FusionDegree reports the selected fusion degree (0 = plain radix-2).
func (p *Parameters) FusionDegree() int { return p.RingQ.FusionDegree() }

// Workers reports the limb-parallel worker bound evaluators inherit from
// these parameters.
func (p *Parameters) Workers() int { return p.pool.Workers() }

// MaxLevel is the highest ciphertext level (len(Q)−1).
func (p *Parameters) MaxLevel() int { return len(p.Q) - 1 }

// Alpha is the number of special primes (the digit width of hybrid
// keyswitching).
func (p *Parameters) Alpha() int { return len(p.P) }

// Digits returns the digit count at the given level.
func (p *Parameters) Digits(level int) int { return p.decomposer.Digits(level) }

// QAtLevel returns the product of the active chain primes as a float, used
// for bound checks and bootstrapping scaling.
func (p *Parameters) QAtLevel(level int) float64 {
	prod := 1.0
	for i := 0; i <= level; i++ {
		prod *= float64(p.Q[i])
	}
	return prod
}

// DefaultScale returns Δ.
func (p *Parameters) DefaultScale() float64 { return p.Scale }

// TestParameters returns a small, fast instance for unit tests:
// N=2^12, 6-level chain of 45-bit primes under a 40-bit scale.
func TestParameters() (*Parameters, error) {
	return NewParameters(ParametersLiteral{
		LogN:     12,
		LogQ:     []int{55, 45, 45, 45, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
	})
}
