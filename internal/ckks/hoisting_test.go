package ckks

import (
	"math/rand"
	"testing"
)

// The NTT-domain automorphism permutation must agree with the
// coefficient-domain automorphism path.
func TestAutomorphismNTTMatchesCoeffDomain(t *testing.T) {
	tc := newTestContext(t)
	rq := tc.params.RingQ
	rng := rand.New(rand.NewSource(30))

	p := rq.NewPoly(3)
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = rng.Uint64() % rq.Moduli[i].Q
		}
	}
	for _, g := range []uint64{5, 25, uint64(2*tc.params.N - 1)} {
		// Path 1: coefficient-domain automorphism, then NTT.
		want := rq.NewPoly(3)
		rq.Automorphism(want, p, g)
		rq.NTT(want)

		// Path 2: NTT first, then the evaluation-domain permutation.
		src := p.CopyNew()
		rq.NTT(src)
		got := rq.NewPoly(3)
		rq.AutomorphismNTT(got, src, g)

		if !got.Equal(want) {
			t.Fatalf("g=%d: NTT-domain automorphism disagrees with coefficient path", g)
		}
	}
}

func TestAutomorphismNTTPanics(t *testing.T) {
	tc := newTestContext(t)
	rq := tc.params.RingQ
	p := rq.NewPoly(1)
	func() {
		defer func() { _ = recover() }()
		rq.AutomorphismNTT(rq.NewPoly(1), p, 5) // coeff domain input
		t.Error("coefficient-domain input should panic")
	}()
	p.IsNTT = true
	func() {
		defer func() { _ = recover() }()
		rq.AutomorphismNTT(rq.NewPoly(1), p, 4) // even Galois element
		t.Error("even Galois element should panic")
	}()
}

// RotateHoisted must agree with individual Rotate calls on every step.
func TestRotateHoistedMatchesRotate(t *testing.T) {
	tc := newTestContext(t)
	steps := []int{1, 2, 5, -3, 0}
	rtks := tc.kgen.GenRotationKeys(tc.sk, steps, false)
	ev := NewEvaluator(tc.params, tc.rlk, rtks)
	rng := rand.New(rand.NewSource(31))
	z := randomComplex(rng, tc.params.Slots, 1.0)
	ct := tc.encryptVec(z)

	hoisted := ev.RotateHoisted(ct, steps)
	n := tc.params.Slots
	for _, s := range steps {
		want := make([]complex128, n)
		for i := range want {
			want[i] = z[((i+s)%n+n)%n]
		}
		got := tc.decryptVec(hoisted[s])
		assertClose(t, got, want, 1e-4, "hoisted rotation")

		// And against the plain path.
		plain := tc.decryptVec(ev.Rotate(ct, s))
		assertClose(t, got, plain, 1e-4, "hoisted vs plain rotation")
	}
}

func TestRotateHoistedAtLowerLevel(t *testing.T) {
	tc := newTestContext(t)
	steps := []int{4, -4}
	rtks := tc.kgen.GenRotationKeys(tc.sk, steps, false)
	ev := NewEvaluator(tc.params, tc.rlk, rtks)
	rng := rand.New(rand.NewSource(32))
	z := randomComplex(rng, tc.params.Slots, 1.0)
	ct := ev.DropLevel(tc.encryptVec(z), 1)

	hoisted := ev.RotateHoisted(ct, steps)
	n := tc.params.Slots
	for _, s := range steps {
		want := make([]complex128, n)
		for i := range want {
			want[i] = z[((i+s)%n+n)%n]
		}
		assertClose(t, tc.decryptVec(hoisted[s]), want, 1e-4, "hoisted rotation at level 1")
	}
}

func TestRotateHoistedMissingKeyPanics(t *testing.T) {
	tc := newTestContext(t)
	rtks := tc.kgen.GenRotationKeys(tc.sk, []int{1}, false)
	ev := NewEvaluator(tc.params, nil, rtks)
	ct := tc.encr.EncryptZero(tc.params.MaxLevel(), tc.params.Scale)
	defer func() {
		if recover() == nil {
			t.Fatal("missing key should panic")
		}
	}()
	ev.RotateHoisted(ct, []int{7})
}
