package ckks

import (
	"errors"
	"math/rand"
	"testing"
)

// The NTT-domain automorphism permutation must agree with the
// coefficient-domain automorphism path.
func TestAutomorphismNTTMatchesCoeffDomain(t *testing.T) {
	tc := newTestContext(t)
	rq := tc.params.RingQ
	rng := rand.New(rand.NewSource(30))

	p := rq.NewPoly(3)
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = rng.Uint64() % rq.Moduli[i].Q
		}
	}
	for _, g := range []uint64{5, 25, uint64(2*tc.params.N - 1)} {
		// Path 1: coefficient-domain automorphism, then NTT.
		want := rq.NewPoly(3)
		rq.Automorphism(want, p, g)
		rq.NTT(want)

		// Path 2: NTT first, then the evaluation-domain permutation.
		src := p.CopyNew()
		rq.NTT(src)
		got := rq.NewPoly(3)
		rq.AutomorphismNTT(got, src, g)

		if !got.Equal(want) {
			t.Fatalf("g=%d: NTT-domain automorphism disagrees with coefficient path", g)
		}
	}
}

func TestAutomorphismNTTPanics(t *testing.T) {
	tc := newTestContext(t)
	rq := tc.params.RingQ
	p := rq.NewPoly(1)
	func() {
		defer func() { _ = recover() }()
		rq.AutomorphismNTT(rq.NewPoly(1), p, 5) // coeff domain input
		t.Error("coefficient-domain input should panic")
	}()
	p.IsNTT = true
	func() {
		defer func() { _ = recover() }()
		rq.AutomorphismNTT(rq.NewPoly(1), p, 4) // even Galois element
		t.Error("even Galois element should panic")
	}()
}

// RotateHoisted must agree with individual Rotate calls on every step.
func TestRotateHoistedMatchesRotate(t *testing.T) {
	tc := newTestContext(t)
	steps := []int{1, 2, 5, -3, 0}
	rtks := tc.kgen.GenRotationKeys(tc.sk, steps, false)
	ev := NewEvaluator(tc.params, tc.rlk, rtks)
	rng := rand.New(rand.NewSource(31))
	z := randomComplex(rng, tc.params.Slots, 1.0)
	ct := tc.encryptVec(z)

	hoisted := ev.RotateHoisted(ct, steps)
	n := tc.params.Slots
	for _, s := range steps {
		want := make([]complex128, n)
		for i := range want {
			want[i] = z[((i+s)%n+n)%n]
		}
		got := tc.decryptVec(hoisted[s])
		assertClose(t, got, want, 1e-4, "hoisted rotation")

		// And against the plain path.
		plain := tc.decryptVec(ev.Rotate(ct, s))
		assertClose(t, got, plain, 1e-4, "hoisted vs plain rotation")
	}
}

func TestRotateHoistedAtLowerLevel(t *testing.T) {
	tc := newTestContext(t)
	steps := []int{4, -4}
	rtks := tc.kgen.GenRotationKeys(tc.sk, steps, false)
	ev := NewEvaluator(tc.params, tc.rlk, rtks)
	rng := rand.New(rand.NewSource(32))
	z := randomComplex(rng, tc.params.Slots, 1.0)
	ct := ev.DropLevel(tc.encryptVec(z), 1)

	hoisted := ev.RotateHoisted(ct, steps)
	n := tc.params.Slots
	for _, s := range steps {
		want := make([]complex128, n)
		for i := range want {
			want[i] = z[((i+s)%n+n)%n]
		}
		assertClose(t, tc.decryptVec(hoisted[s]), want, 1e-4, "hoisted rotation at level 1")
	}
}

func TestRotateHoistedMissingKeyPanics(t *testing.T) {
	tc := newTestContext(t)
	rtks := tc.kgen.GenRotationKeys(tc.sk, []int{1}, false)
	ev := NewEvaluator(tc.params, nil, rtks)
	ct := tc.encr.EncryptZero(tc.params.MaxLevel(), tc.params.Scale)
	defer func() {
		if recover() == nil {
			t.Fatal("missing key should panic")
		}
	}()
	ev.RotateHoisted(ct, []int{7})
}

// The incremental Hoisted handle must agree with the plain rotation path
// and with RotateHoisted, one step at a time.
func TestHoistedHandleMatchesRotate(t *testing.T) {
	tc := newTestContext(t)
	steps := []int{1, 3, -2, 0}
	rtks := tc.kgen.GenRotationKeys(tc.sk, steps, false)
	ev := NewEvaluator(tc.params, tc.rlk, rtks)
	rng := rand.New(rand.NewSource(33))
	z := randomComplex(rng, tc.params.Slots, 1.0)
	ct := tc.encryptVec(z)

	h := ev.Hoist(ct)
	defer h.Release()
	if h.Level() != ct.Level {
		t.Fatalf("Level() = %d, want %d", h.Level(), ct.Level)
	}
	n := tc.params.Slots
	for _, s := range steps {
		got := tc.decryptVec(h.Rotate(s))
		want := make([]complex128, n)
		for i := range want {
			want[i] = z[((i+s)%n+n)%n]
		}
		assertClose(t, got, want, 1e-4, "hoisted handle rotation")
	}
}

// TryHoist/TryRotate carry the Try* error contract: missing keys are
// ErrKeyMissing, a released handle is ErrInvalidInput, and valid inputs
// round-trip. Releasing twice is safe, and releasing must return every
// borrowed buffer to the arena and free lists.
func TestHoistedHandleTryAndRelease(t *testing.T) {
	tc := newTestContext(t)
	rtks := tc.kgen.GenRotationKeys(tc.sk, []int{1}, false)
	ev := NewEvaluator(tc.params, tc.rlk, rtks)
	rng := rand.New(rand.NewSource(34))
	z := randomComplex(rng, tc.params.Slots, 1.0)
	ct := tc.encryptVec(z)

	if _, err := ev.TryHoist(nil); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("TryHoist(nil) = %v, want ErrInvalidInput", err)
	}
	evNoKeys := NewEvaluator(tc.params, tc.rlk, nil)
	if _, err := evNoKeys.TryHoist(ct); !errors.Is(err, ErrKeyMissing) {
		t.Fatalf("TryHoist without keys = %v, want ErrKeyMissing", err)
	}

	base := tc.params.ArenaStats().BytesInUse

	h, err := ev.TryHoist(ct)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.TryRotate(7); !errors.Is(err, ErrKeyMissing) {
		t.Fatalf("TryRotate missing key = %v, want ErrKeyMissing", err)
	}
	out, err := h.TryRotate(1)
	if err != nil {
		t.Fatal(err)
	}
	n := tc.params.Slots
	want := make([]complex128, n)
	for i := range want {
		want[i] = z[(i+1)%n]
	}
	assertClose(t, tc.decryptVec(out), want, 1e-4, "TryRotate")

	h.Release()
	h.Release() // idempotent
	if _, err := h.TryRotate(1); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("TryRotate after Release = %v, want ErrInvalidInput", err)
	}
	if inUse := tc.params.ArenaStats().BytesInUse; inUse != base {
		t.Fatalf("arena bytes in use %d != baseline %d after Release", inUse, base)
	}
}
