package ckks

import (
	"fmt"
	"math"
)

// ChebyshevCoefficients interpolates f on [a, b] with a degree-`degree`
// Chebyshev expansion (coefficients in the Chebyshev basis of the
// normalized variable u ∈ [−1, 1]).
func ChebyshevCoefficients(f func(float64) float64, a, b float64, degree int) []float64 {
	m := degree + 1
	nodes := make([]float64, m)
	vals := make([]float64, m)
	for j := 0; j < m; j++ {
		theta := math.Pi * (float64(j) + 0.5) / float64(m)
		nodes[j] = math.Cos(theta)
		x := 0.5*(b-a)*nodes[j] + 0.5*(b+a)
		vals[j] = f(x)
	}
	coeffs := make([]float64, m)
	for k := 0; k < m; k++ {
		s := 0.0
		for j := 0; j < m; j++ {
			theta := math.Pi * (float64(j) + 0.5) / float64(m)
			s += vals[j] * math.Cos(float64(k)*theta)
		}
		coeffs[k] = 2 * s / float64(m)
	}
	coeffs[0] /= 2
	return coeffs
}

// EvalChebyshevScalar evaluates the expansion at a point (reference for
// tests).
func EvalChebyshevScalar(coeffs []float64, a, b, x float64) float64 {
	u := (2*x - a - b) / (b - a)
	// Clenshaw recurrence.
	var b1, b2 float64
	for k := len(coeffs) - 1; k >= 1; k-- {
		b1, b2 = 2*u*b1-b2+coeffs[k], b1
	}
	return u*b1 - b2 + coeffs[0]
}

// EvalChebyshev homomorphically evaluates the Chebyshev expansion on every
// slot of ct, whose values must lie in [a, b]. The evaluation uses
// baby-step/giant-step Paterson–Stockmeyer over the Chebyshev basis with
// exact scale management: the result keeps ct's scale. Consumes roughly
// 2·log2(degree) levels.
func (ev *Evaluator) EvalChebyshev(ct *Ciphertext, coeffs []float64, a, b float64) *Ciphertext {
	degree := len(coeffs) - 1
	for degree > 0 && coeffs[degree] == 0 {
		degree--
	}
	if degree == 0 {
		out := ev.MulConstRescale(ct, 0)
		return ev.AddConst(out, complex(coeffs[0], 0))
	}
	target := ct.Scale

	// u = (2x − (a+b)) / (b − a), same scale as ct (one level).
	u := ev.MulConstRescale(ct, complex(2/(b-a), 0))
	u = ev.AddConst(u, complex(-(a+b)/(b-a), 0))

	// Baby-step width: power of two near √degree.
	n1 := 1
	for n1*n1 < degree {
		n1 <<= 1
	}
	if n1 > 32 {
		n1 = 32
	}

	c := &chebyEval{ev: ev, target: target, T: map[int]*Ciphertext{1: u}}
	for k := 2; k <= n1; k++ {
		c.power(k)
	}
	for m := 2 * n1; m <= degree; m *= 2 {
		c.power(m)
	}
	return c.eval(coeffs[:degree+1], n1)
}

// chebyEval carries the shared Chebyshev basis ciphertexts T_k.
type chebyEval struct {
	ev     *Evaluator
	target float64
	T      map[int]*Ciphertext
}

// power materializes T_k from smaller powers via
// T_{a+b} = 2·T_a·T_b − T_{|a−b|}.
func (c *chebyEval) power(k int) *Ciphertext {
	if t, ok := c.T[k]; ok {
		return t
	}
	ha := k / 2
	hb := k - ha
	ta := c.power(ha)
	tb := c.power(hb)
	// 2·T_ha·T_hb at exact target scale.
	t := c.mulExact(ta, tb, 2)
	if ha == hb {
		t = c.ev.AddConst(t, -1) // T_{2a} = 2T_a² − T_0
	} else {
		d := hb - ha
		t = c.subAligned(t, c.power(d))
	}
	c.T[k] = t
	return t
}

// mulExact returns factor·a·b at exactly the target scale, consuming two
// levels: the correction constant is folded into a plaintext multiplication
// so the two rescales land on target.
func (c *chebyEval) mulExact(a, b *Ciphertext, factor float64) *Ciphertext {
	ev := c.ev
	p := ev.MulRelin(a, b)
	if p.Level < 2 {
		panic(fmt.Sprintf("ckks: chebyshev out of levels at level %d", p.Level))
	}
	ql := float64(ev.params.Q[p.Level])
	ql1 := float64(ev.params.Q[p.Level-1])
	cscale := c.target * ql * ql1 / p.Scale
	pt := ev.encodeConst(complex(factor, 0), p.Level, cscale)
	// Destination-passing chain: p is fresh (owned here), so the correction
	// multiply and both rescales run in place without fresh ciphertexts.
	ev.MulPlainInto(p, p, pt)
	ev.RescaleInto(p, p)
	ev.RescaleInto(p, p)
	p.Scale = c.target // bookkeeping is exact by construction
	return p
}

// subAligned subtracts with level alignment (scales already equal).
func (c *chebyEval) subAligned(a, b *Ciphertext) *Ciphertext {
	return c.ev.Sub(a, b)
}

// eval evaluates the Chebyshev-basis polynomial recursively:
// p = q·T_m + r for the largest available giant step m ≤ deg(p).
func (c *chebyEval) eval(coeffs []float64, n1 int) *Ciphertext {
	deg := len(coeffs) - 1
	for deg > 0 && math.Abs(coeffs[deg]) < 1e-14 {
		deg--
	}
	coeffs = coeffs[:deg+1]

	if deg < n1 {
		return c.evalBase(coeffs)
	}
	m := n1
	for m*2 <= deg {
		m *= 2
	}
	q, r := chebDiv(coeffs, m)
	qc := c.eval(q, n1)
	rc := c.eval(r, n1)
	out := c.mulExact(qc, c.T[m], 1)
	return c.ev.Add(out, rc)
}

// evalBase evaluates a low-degree expansion directly against the baby-step
// basis: Σ c_k·T_k via constant multiplications.
func (c *chebyEval) evalBase(coeffs []float64) *Ciphertext {
	ev := c.ev
	var acc *Ciphertext
	for k := len(coeffs) - 1; k >= 1; k-- {
		if math.Abs(coeffs[k]) < 1e-14 {
			continue
		}
		term := ev.MulConstRescale(c.T[k], complex(coeffs[k], 0))
		term.Scale = c.target
		if acc == nil {
			acc = term
		} else {
			acc = ev.Add(acc, term)
		}
	}
	if acc == nil {
		// Constant polynomial: anchor on T_1 scaled by zero.
		acc = ev.MulConstRescale(c.T[1], 0)
		acc.Scale = c.target
	}
	return ev.AddConst(acc, complex(coeffs[0], 0))
}

// chebDiv divides a Chebyshev-basis polynomial by T_m:
// p = q·T_m + r with deg(r) < m, using T_k = 2·T_m·T_{k−m} − T_{|k−2m|}.
func chebDiv(coeffs []float64, m int) (q, r []float64) {
	c := append([]float64(nil), coeffs...)
	d := len(c) - 1
	q = make([]float64, d-m+1)
	for k := d; k > m; k-- {
		if c[k] == 0 {
			continue
		}
		q[k-m] += 2 * c[k]
		idx := k - 2*m
		if idx < 0 {
			idx = -idx
		}
		c[idx] -= c[k]
		c[k] = 0
	}
	q[0] += c[m]
	r = c[:m]
	return q, r
}
