package ckks

import (
	"math"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"

	"poseidon/internal/fault"
	"poseidon/internal/numeric"
	"poseidon/internal/ring"
)

// Runtime integrity guards: the software counterpart of the redundancy a
// hardware accelerator needs once HBM bit flips and datapath lane faults are
// on the table. Three mechanisms, all opt-in (EnableGuards) and all free
// when off — the hot paths pay one nil pointer compare:
//
//   - Residue checksums: SealIntegrity records a sum-mod-q checksum per limb
//     of each ciphertext polynomial; every Try* operation re-verifies its
//     sealed inputs at the operator boundary (modeling the read-back from
//     HBM, which is also where the fault injector's SiteHBM hook fires) and
//     seals its output. A single-bit flip anywhere in a sealed limb is
//     detected with certainty: the flip changes the word by ±2^b and 2^b is
//     never ≡ 0 mod an odd prime q.
//   - Noise-budget guard: flags level/scale exhaustion (a product scale that
//     no longer fits under the active modulus chain, a rescale at level 0)
//     as ErrLevelExhausted before results silently degrade into noise.
//   - Redundant-limb spot-check (EnableSpotCheck): recomputes one random
//     limb of each elementwise output with the strict reference kernels,
//     and one random limb of each final forward NTT (Rescale, Rotation)
//     from its saved coefficient-domain pre-image — catching datapath
//     faults (stuck lanes, dropped twiddles) checksums sealed earlier
//     cannot see. Probabilistic by design: it samples one limb per
//     operation.
//
// Guard failures surface as ErrIntegrity through the Try API; a direct
// *Into call with guards enabled panics with the same *OpError.

// GuardStats counts guard activity, exported into traces and the fault
// campaign report.
type GuardStats struct {
	Seals           uint64 // limb checksum sets recorded
	Verifies        uint64 // sealed inputs re-verified at operator boundaries
	SpotChecks      uint64 // redundant limb recomputations performed
	IntegrityFaults uint64 // checksum or spot-check mismatches detected
	NoiseFlags      uint64 // noise-budget exhaustion flags raised
}

// guardState is shared by evaluators derived via WithWorkers (pointer copy);
// a nil *guardState on the Evaluator means guards are off. The counters are
// atomics, not a mutex-guarded struct: noteSeal/noteVerify fire on every
// operator boundary of every worker, and a shared lock there would
// serialize exactly the multi-worker batches the scheduler fuses. (The
// single-worker faultcampaign overhead — ~15%, see BENCH_fault.json — is
// checksum and spot-check arithmetic, the same under either variant.) Only
// the spot-check's limb sampling keeps a lock, and only because
// math/rand.Rand is not concurrency-safe.
type guardState struct {
	rngMu sync.Mutex
	rng   *rand.Rand
	spot  bool

	seals, verifies, spots, faults, noise atomic.Uint64
}

func (g *guardState) pickLimb(limbs int) int {
	g.rngMu.Lock()
	i := g.rng.Intn(limbs)
	g.rngMu.Unlock()
	return i
}

func (g *guardState) noteSeal()    { g.seals.Add(1) }
func (g *guardState) noteVerify()  { g.verifies.Add(1) }
func (g *guardState) noteSpot()    { g.spots.Add(1) }
func (g *guardState) noteFault()   { g.faults.Add(1) }
func (g *guardState) noteNoise()   { g.noise.Add(1) }
func (g *guardState) spotOn() bool { return g != nil && g.spot }
func (g *guardState) snapshot() GuardStats {
	return GuardStats{
		Seals:           g.seals.Load(),
		Verifies:        g.verifies.Load(),
		SpotChecks:      g.spots.Load(),
		IntegrityFaults: g.faults.Load(),
		NoiseFlags:      g.noise.Load(),
	}
}

// integritySeal stores the per-limb residue checksums of a ciphertext's two
// polynomials. Seals are attached by SealIntegrity / the Try* output
// boundary and invalidated whenever a destination is reshaped.
type integritySeal struct {
	c0, c1 []uint64
}

// EnableGuards turns the runtime integrity guards on: Try* operations
// verify sealed inputs, seal outputs, and run the noise-budget check. The
// seed fixes the spot-check's limb sampling. Guards are shared with
// evaluators later derived via WithWorkers.
func (ev *Evaluator) EnableGuards(seed int64) {
	ev.guards = &guardState{rng: rand.New(rand.NewSource(seed))}
}

// EnableSpotCheck additionally arms the redundant-limb spot-check (requires
// EnableGuards first; no-op otherwise).
func (ev *Evaluator) EnableSpotCheck() {
	if ev.guards != nil {
		ev.guards.spot = true
	}
}

// DisableGuards turns the guards off for this evaluator.
func (ev *Evaluator) DisableGuards() { ev.guards = nil }

// GuardsEnabled reports whether the integrity guards are active.
func (ev *Evaluator) GuardsEnabled() bool { return ev.guards != nil }

// GuardStats returns a snapshot of the guard counters (zero value when
// guards are off).
func (ev *Evaluator) GuardStats() GuardStats {
	if ev.guards == nil {
		return GuardStats{}
	}
	return ev.guards.snapshot()
}

// NoiseBudget estimates the remaining headroom, in bits, between the active
// modulus chain and the ciphertext scale: log2(Q_l) − log2(scale). When it
// reaches zero the plaintext magnitude no longer fits and decryption
// degrades into noise.
func (ev *Evaluator) NoiseBudget(ct *Ciphertext) float64 {
	return math.Log2(ev.params.QAtLevel(ct.Level)) - math.Log2(ct.Scale)
}

// SealIntegrity records per-limb residue checksums for ct, arming the
// checksum guard: every subsequent Try* operation consuming ct re-verifies
// the seal at its input boundary. Re-sealing an already-sealed ciphertext
// reuses the seal storage.
func (ev *Evaluator) SealIntegrity(ct *Ciphertext) {
	limbs := ct.Level + 1
	s := ct.seal
	if s == nil || cap(s.c0) < limbs {
		s = &integritySeal{c0: make([]uint64, limbs), c1: make([]uint64, limbs)}
	}
	s.c0, s.c1 = s.c0[:limbs], s.c1[:limbs]
	mods := ev.params.RingQ.Moduli
	for i := 0; i < limbs; i++ {
		s.c0[i] = fault.Checksum(mods[i], ct.C0.Coeffs[i])
		s.c1[i] = fault.Checksum(mods[i], ct.C1.Coeffs[i])
	}
	ct.seal = s
	if ev.guards != nil {
		ev.guards.noteSeal()
	}
}

// VerifyIntegrity models the read-back of ct from (possibly faulty) HBM and
// re-verifies its seal: the fault injector's SiteHBM hook fires on every
// limb first, then each limb's residue checksum is compared against the
// seal. Returns nil for unsealed ciphertexts (after still firing the
// hooks); a mismatch returns an *OpError wrapping ErrIntegrity naming the
// first corrupted limb. Never panics.
func (ev *Evaluator) VerifyIntegrity(ct *Ciphertext) (err error) {
	defer recoverOp("VerifyIntegrity", ct.Level, &err)
	return ev.verifySealed("VerifyIntegrity", ct)
}

// verifySealed is the input-boundary guard shared by VerifyIntegrity and
// the Try* methods: fire the HBM read-back injection hooks, then check the
// seal if one is attached.
func (ev *Evaluator) verifySealed(op string, ct *Ciphertext) error {
	rq := ev.params.RingQ
	if in := rq.FaultInjector(); in != nil {
		for i := 0; i <= ct.Level; i++ {
			in.OnLimbRead(fault.SiteHBM, i, ct.C0.Coeffs[i])
			in.OnLimbRead(fault.SiteHBM, i, ct.C1.Coeffs[i])
		}
	}
	s := ct.seal
	if s == nil || len(s.c0) != ct.Level+1 {
		return nil
	}
	if ev.guards != nil {
		ev.guards.noteVerify()
	}
	for i := 0; i <= ct.Level; i++ {
		mod := rq.Moduli[i]
		if fault.Checksum(mod, ct.C0.Coeffs[i]) != s.c0[i] || fault.Checksum(mod, ct.C1.Coeffs[i]) != s.c1[i] {
			if ev.guards != nil {
				ev.guards.noteFault()
			}
			return &OpError{Op: op, Level: ct.Level, Limb: i, Err: ErrIntegrity,
				Detail: "residue checksum does not match seal"}
		}
	}
	return nil
}

// guardInputs runs the input-boundary guard over each operand of a Try*
// operation.
func (ev *Evaluator) guardInputs(op string, cts ...*Ciphertext) error {
	if ev.guards == nil {
		return nil
	}
	for _, ct := range cts {
		if err := ev.verifySealed(op, ct); err != nil {
			return err
		}
	}
	return nil
}

// guardSeal is the output-boundary guard: seal the freshly produced result
// so the next operation's input boundary can vouch for it.
func (ev *Evaluator) guardSeal(out *Ciphertext) {
	if ev.guards == nil {
		return
	}
	ev.SealIntegrity(out)
}

// guardNoise flags noise-budget exhaustion for a result about to be
// produced at the given level and scale.
func (ev *Evaluator) guardNoise(op string, level int, scale float64) error {
	if ev.guards == nil || scale <= 0 {
		return nil
	}
	if budget := math.Log2(ev.params.QAtLevel(level)) - math.Log2(scale); budget <= 0 {
		ev.guards.noteNoise()
		return opErr(op, level, ErrLevelExhausted,
			"noise budget exhausted: scale 2^%.1f exceeds chain product 2^%.1f",
			math.Log2(scale), math.Log2(ev.params.QAtLevel(level)))
	}
	return nil
}

// spotElementwise recomputes one random limb of an elementwise result with
// the strict reference arithmetic and panics with ErrIntegrity on mismatch
// (the Try* recovery boundary converts this to a returned error). check
// returns whether limb i agrees with its recomputation.
func (ev *Evaluator) spotElementwise(op string, level int, check func(mod numeric.Modulus, i int) bool) {
	g := ev.guards
	if !g.spotOn() {
		return
	}
	i := g.pickLimb(level + 1)
	ok := check(ev.params.RingQ.Moduli[i], i)
	g.noteSpot()
	if !ok {
		g.noteFault()
		panic(&OpError{Op: op, Level: level, Limb: i, Err: ErrIntegrity,
			Detail: "redundant limb recomputation mismatch"})
	}
}

// nttParallelGuarded transforms p to the NTT domain like ring.NTTParallel
// while, when the spot-check is armed, redundantly recomputing one random
// limb: the coefficient-domain pre-image of the chosen limb is saved, the
// strict reference transform is applied to the copy, and the two NTT images
// must agree bit for bit (the strict and lazy kernels are proven
// bit-identical by the differential suites, so any disagreement is a
// datapath fault, not a rounding artifact).
func (ev *Evaluator) nttParallelGuarded(op string, p *ring.Poly) {
	rq := ev.params.RingQ
	g := ev.guards
	if !g.spotOn() {
		rq.NTTParallel(p, ev.pool)
		return
	}
	i := g.pickLimb(len(p.Coeffs))
	n := len(p.Coeffs[i])
	buf := rq.GetVec()
	copy(buf[:n], p.Coeffs[i])
	rq.NTTParallel(p, ev.pool)
	rq.Tables[i].ForwardStrict(buf[:n])
	ok := slices.Equal(buf[:n], p.Coeffs[i])
	rq.PutVec(buf)
	g.noteSpot()
	if !ok {
		g.noteFault()
		panic(&OpError{Op: op, Level: len(p.Coeffs) - 1, Limb: i, Err: ErrIntegrity,
			Detail: "redundant NTT limb recomputation mismatch"})
	}
}
