package ckks

import (
	"strings"
	"testing"

	"poseidon/internal/fault"
)

// Mid-op panic injection: every destination-passing op acquires arena
// scratch, and the deferred sweeps must return all of it even when the op
// panics halfway through. These tests arm the fault injector's Panic class
// at every NTT/INTT visit of every op and assert that after the recovered
// panic the arena's BytesInUse is back at its pre-op baseline — with poison
// mode on, so a double-Put on the unwind path (a sweep racing an eager
// release) fails loudly instead of silently corrupting the free lists.

type panicLeakFixture struct {
	params *Parameters
	ev     *Evaluator
	swk    *SwitchingKey
	ct1    *Ciphertext
	ct2    *Ciphertext
	inj    *fault.Injector
}

func newPanicLeakFixture(t testing.TB) *panicLeakFixture {
	t.Helper()
	params, err := NewParameters(ParametersLiteral{
		LogN:     8,
		LogQ:     []int{50, 40, 40},
		LogP:     []int{51},
		LogScale: 40,
		Workers:  1, // serial: visit numbering is deterministic
	})
	if err != nil {
		t.Fatal(err)
	}
	kgen := NewKeyGenerator(params, 421)
	sk := kgen.GenSecretKey()
	sk2 := kgen.GenSecretKey()
	rlk := kgen.GenRelinearizationKey(sk)
	rtk := kgen.GenRotationKeys(sk, []int{1}, true)
	swk := kgen.genSwitchingKey(sk.Value.Q, sk2)
	ev := NewEvaluator(params, rlk, rtk)

	pk := kgen.GenPublicKey(sk)
	encr := NewEncryptor(params, pk, 422)
	level := params.MaxLevel()
	ct1 := encr.EncryptZero(level, params.Scale)
	ct2 := encr.EncryptZero(level, params.Scale)

	inj := fault.NewInjector(423)
	params.RingQ.SetFaultInjector(inj)
	params.RingP.SetFaultInjector(inj)
	params.RingQ.Arena().SetPoison(true)
	params.RingP.Arena().SetPoison(true)
	t.Cleanup(func() {
		params.RingQ.SetFaultInjector(nil)
		params.RingP.SetFaultInjector(nil)
	})
	return &panicLeakFixture{params: params, ev: ev, swk: swk, ct1: ct1, ct2: ct2, inj: inj}
}

// panicLeakOps enumerates every op that owns arena scratch mid-flight.
// Each closure gets fresh output containers so a half-written destination
// from an aborted run never feeds the next one.
func (fx *panicLeakFixture) ops() []struct {
	name string
	f    func()
} {
	ev, params := fx.ev, fx.params
	level := fx.ct1.Level
	return []struct {
		name string
		f    func()
	}{
		{"MulRelinInto", func() { ev.MulRelinInto(NewCiphertext(params, level), fx.ct1, fx.ct2) }},
		{"RescaleInto", func() { ev.RescaleInto(NewCiphertext(params, level-1), fx.ct1) }},
		{"RotateInto", func() { ev.RotateInto(NewCiphertext(params, level), fx.ct1, 1) }},
		{"ConjugateInto", func() { ev.ConjugateInto(NewCiphertext(params, level), fx.ct1) }},
		{"KeySwitchInto", func() { ev.KeySwitchInto(NewCiphertext(params, level), fx.ct1, fx.swk) }},
		{"RotateHoisted", func() { ev.RotateHoisted(fx.ct1, []int{0, 1}) }},
	}
}

// runWithInjectedPanic executes f once with the injector armed to panic at
// the given visit of the given site, recovers, and returns the recovered
// value (nil when the visit number was past the op's last visit, in which
// case the injector stays armed and is disarmed here).
func (fx *panicLeakFixture) runWithInjectedPanic(site fault.Site, visit uint64, f func()) (recovered any) {
	fx.inj.ResetVisits()
	fx.inj.ArmAt(site, fault.Panic, visit)
	defer fx.inj.Disarm()
	defer func() { recovered = recover() }()
	f()
	return nil
}

// TestMidOpPanicArenaBaseline sweeps every NTT/INTT visit of every
// scratch-owning op, injecting a panic there, and requires (a) the
// recovered value is the injected panic — not a poison-mode double-Put
// tripped on the unwind path — and (b) the arena returns to its pre-op
// BytesInUse baseline.
func TestMidOpPanicArenaBaseline(t *testing.T) {
	fx := newPanicLeakFixture(t)
	for _, op := range fx.ops() {
		t.Run(op.name, func(t *testing.T) {
			op.f() // warm-up: free lists populated, no injector visits armed
			for _, site := range []fault.Site{fault.SiteNTT, fault.SiteINTT} {
				fx.inj.ResetVisits()
				op.f() // clean run counts this op's visits at the site
				visits := fx.inj.Stats().VisitsAt(site)
				if visits == 0 {
					continue
				}
				baseline := fx.params.ArenaStats().BytesInUse
				for v := uint64(0); v < visits; v++ {
					rec := fx.runWithInjectedPanic(site, v, op.f)
					if rec == nil {
						t.Fatalf("%s: armed panic at %v visit %d/%d never fired", op.name, site, v, visits)
					}
					msg, ok := rec.(string)
					if !ok || !strings.Contains(msg, "fault: injected panic") {
						t.Fatalf("%s: %v visit %d: recovered %v, want the injected panic (a secondary panic on the unwind path?)", op.name, site, v, rec)
					}
					if inUse := fx.params.ArenaStats().BytesInUse; inUse != baseline {
						t.Fatalf("%s: %v visit %d: arena leaked across panic: in-use %d, baseline %d", op.name, site, v, inUse, baseline)
					}
				}
			}
		})
	}
}

// FuzzMidOpPanicArena is the randomized version of the sweep above: the
// fuzzer picks the op, the site, and the visit. Out-of-range visits are
// legal — the panic simply never fires and the op must complete cleanly,
// still returning to baseline.
func FuzzMidOpPanicArena(f *testing.F) {
	f.Add(uint8(0), false, uint16(0))
	f.Add(uint8(1), true, uint16(1))
	f.Add(uint8(2), false, uint16(3))
	f.Add(uint8(3), true, uint16(2))
	f.Add(uint8(4), false, uint16(7))
	f.Add(uint8(5), false, uint16(65535))

	fx := newPanicLeakFixture(f)
	ops := fx.ops()
	for _, op := range ops {
		op.f() // warm-up outside the fuzz loop
	}

	f.Fuzz(func(t *testing.T, opIdx uint8, inverse bool, visit uint16) {
		op := ops[int(opIdx)%len(ops)]
		site := fault.SiteNTT
		if inverse {
			site = fault.SiteINTT
		}
		baseline := fx.params.ArenaStats().BytesInUse
		rec := fx.runWithInjectedPanic(site, uint64(visit), op.f)
		if rec != nil {
			if msg, ok := rec.(string); !ok || !strings.Contains(msg, "fault: injected panic") {
				t.Fatalf("%s: %v visit %d: recovered %v, want the injected panic", op.name, site, visit, rec)
			}
		}
		if inUse := fx.params.ArenaStats().BytesInUse; inUse != baseline {
			t.Fatalf("%s: %v visit %d: arena leaked: in-use %d, baseline %d (panicked: %v)", op.name, site, visit, inUse, baseline, rec != nil)
		}
	})
}
