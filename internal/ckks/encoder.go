package ckks

import (
	"math"
	"math/big"
	"math/cmplx"
	"sync"

	"poseidon/internal/ring"
)

// Encoder maps complex slot vectors to ring plaintexts and back via the
// canonical embedding: slot i holds m(ζ^{5^i}) for ζ = e^{iπ/N}, the
// ordering under which the Galois element 5 realizes a cyclic slot shift.
type Encoder struct {
	params *Parameters

	rotGroup []int        // 5^i mod 2N
	ksiPows  []complex128 // e^{2πi·j/2N}
}

// NewEncoder builds the FFT tables for the parameter set.
func NewEncoder(params *Parameters) *Encoder {
	n := params.Slots
	m := 2 * params.N
	e := &Encoder{params: params}
	e.rotGroup = make([]int, n)
	five := 1
	for i := 0; i < n; i++ {
		e.rotGroup[i] = five
		five = five * 5 % m
	}
	e.ksiPows = make([]complex128, m+1)
	for j := 0; j <= m; j++ {
		angle := 2 * math.Pi * float64(j) / float64(m)
		e.ksiPows[j] = cmplx.Exp(complex(0, angle))
	}
	return e
}

// Plaintext is an encoded message: an RNS polynomial with its scale and
// level.
type Plaintext struct {
	Value *ring.Poly
	Scale float64
	Level int

	// ephemeral marks single-use plaintexts (evaluator-internal constants)
	// for which memoizing the Montgomery image would be pure overhead.
	ephemeral bool

	// mont memoizes the lazy Montgomery lift of Value (limb i holds
	// Value.Coeffs[i]·2^64 mod q_i, entries < 2q_i) so repeated plaintext
	// multiplications — the BSGS inner loop — skip the per-element lift
	// inside VecMontMul and run the cheaper VecMRed tail instead. Built on
	// first use, guarded by montMu, invalidated when Value's limb count
	// changes (level drop) or via Invalidate.
	montMu    sync.Mutex
	mont      *ring.Poly
	montLimbs int
}

// Invalidate drops the memoized Montgomery image. Call after mutating Value
// in place; level changes are detected automatically.
func (pt *Plaintext) Invalidate() {
	pt.montMu.Lock()
	pt.mont = nil
	pt.montLimbs = 0
	pt.montMu.Unlock()
}

// montImage returns the memoized lazy Montgomery lift of pt.Value, building
// (or rebuilding, after a level drop) it on first use. Returns nil for
// ephemeral plaintexts. The composition VecMFormLazy + VecMRed is
// bit-identical to VecMontMul — it is the same arithmetic split at the same
// intermediate value — so multiplying against the memo changes no output
// bit. Safe for concurrent use.
func (pt *Plaintext) montImage(rq *ring.Ring) *ring.Poly {
	if pt.ephemeral {
		return nil
	}
	limbs := len(pt.Value.Coeffs)
	pt.montMu.Lock()
	defer pt.montMu.Unlock()
	if pt.mont != nil && pt.montLimbs == limbs {
		return pt.mont
	}
	m := pt.mont
	if m == nil || len(m.Coeffs) < limbs {
		m = rq.NewPoly(limbs)
	}
	m.Coeffs = m.Coeffs[:limbs]
	m.IsNTT = pt.Value.IsNTT
	for i := 0; i < limbs; i++ {
		rq.Moduli[i].VecMFormLazy(m.Coeffs[i], pt.Value.Coeffs[i])
	}
	pt.mont = m
	pt.montLimbs = limbs
	return m
}

// Encode embeds up to Slots complex values into a fresh plaintext at the
// given level and scale. Shorter inputs are zero-padded.
func (e *Encoder) Encode(values []complex128, level int, scale float64) *Plaintext {
	n := e.params.Slots
	if len(values) > n {
		panic("ckks: too many values to encode")
	}
	vals := make([]complex128, n)
	copy(vals, values)
	e.specialIFFT(vals)

	pt := &Plaintext{
		Value: e.params.RingQ.NewPoly(level + 1),
		Scale: scale,
		Level: level,
	}
	rq := e.params.RingQ
	for j := 0; j < n; j++ {
		re := int64(math.Round(real(vals[j]) * scale))
		im := int64(math.Round(imag(vals[j]) * scale))
		for i := 0; i <= level; i++ {
			pt.Value.Coeffs[i][j] = rq.Moduli[i].ReduceSigned(re)
			pt.Value.Coeffs[i][j+n] = rq.Moduli[i].ReduceSigned(im)
		}
	}
	rq.NTT(pt.Value)
	return pt
}

// encodeQP is Encode extended to the keyswitching basis: alongside the
// Q-basis plaintext it reduces the same rounded message integers over the
// special primes P and transforms them — the image double-hoisted linear
// transforms multiply against lazy (QP-basis) baby-step rotations. The
// input slice is clobbered in place by the IFFT, so callers can reuse one
// scratch vector across many diagonals; it must span exactly Slots values.
func (e *Encoder) encodeQP(values []complex128, level int, scale float64) (*Plaintext, *ring.Poly) {
	n := e.params.Slots
	if len(values) != n {
		panic("ckks: encodeQP requires a full slot vector")
	}
	e.specialIFFT(values)

	rq, rp := e.params.RingQ, e.params.RingP
	alpha := e.params.Alpha()
	pt := &Plaintext{
		Value: rq.NewPoly(level + 1),
		Scale: scale,
		Level: level,
	}
	ptP := rp.NewPoly(alpha)
	for j := 0; j < n; j++ {
		re := int64(math.Round(real(values[j]) * scale))
		im := int64(math.Round(imag(values[j]) * scale))
		for i := 0; i <= level; i++ {
			pt.Value.Coeffs[i][j] = rq.Moduli[i].ReduceSigned(re)
			pt.Value.Coeffs[i][j+n] = rq.Moduli[i].ReduceSigned(im)
		}
		for i := 0; i < alpha; i++ {
			ptP.Coeffs[i][j] = rp.Moduli[i].ReduceSigned(re)
			ptP.Coeffs[i][j+n] = rp.Moduli[i].ReduceSigned(im)
		}
	}
	rq.NTT(pt.Value)
	rp.NTT(ptP)
	return pt, ptP
}

// EncodeReal embeds real values (convenience wrapper).
func (e *Encoder) EncodeReal(values []float64, level int, scale float64) *Plaintext {
	cs := make([]complex128, len(values))
	for i, v := range values {
		cs[i] = complex(v, 0)
	}
	return e.Encode(cs, level, scale)
}

// Decode recovers the slot vector from a plaintext. Coefficients are
// CRT-reconstructed and centered, so the result is exact up to the
// encoding/evaluation noise.
func (e *Encoder) Decode(pt *Plaintext) []complex128 {
	n := e.params.Slots
	rq := e.params.RingQ
	p := pt.Value
	if p.IsNTT {
		p = p.CopyNew()
		rq.INTT(p)
	}
	vals := make([]complex128, n)
	for j := 0; j < n; j++ {
		re := bigToFloat(rq.ToBigCentered(p, j)) / pt.Scale
		im := bigToFloat(rq.ToBigCentered(p, j+n)) / pt.Scale
		vals[j] = complex(re, im)
	}
	e.specialFFT(vals)
	return vals
}

func bigToFloat(v *big.Int) float64 {
	f, _ := new(big.Float).SetInt(v).Float64()
	return f
}

// specialIFFT is the encoding-direction transform (HEAAN's fftSpecialInv):
// it inverts the canonical embedding restricted to the 5-power orbit.
func (e *Encoder) specialIFFT(vals []complex128) {
	n := len(vals)
	m := 2 * e.params.N
	for length := n; length >= 2; length >>= 1 {
		lenh := length >> 1
		lenq := length << 2
		for i := 0; i < n; i += length {
			for j := 0; j < lenh; j++ {
				idx := (lenq - e.rotGroup[j]%lenq) % lenq * (m / lenq)
				u := vals[i+j] + vals[i+j+lenh]
				v := (vals[i+j] - vals[i+j+lenh]) * e.ksiPows[idx]
				vals[i+j] = u
				vals[i+j+lenh] = v
			}
		}
	}
	bitReverseInPlace(vals)
	inv := complex(1/float64(n), 0)
	for i := range vals {
		vals[i] *= inv
	}
}

// specialFFT is the decoding-direction transform (HEAAN's fftSpecial).
func (e *Encoder) specialFFT(vals []complex128) {
	n := len(vals)
	m := 2 * e.params.N
	bitReverseInPlace(vals)
	for length := 2; length <= n; length <<= 1 {
		lenh := length >> 1
		lenq := length << 2
		for i := 0; i < n; i += length {
			for j := 0; j < lenh; j++ {
				idx := e.rotGroup[j] % lenq * (m / lenq)
				u := vals[i+j]
				v := vals[i+j+lenh] * e.ksiPows[idx]
				vals[i+j] = u + v
				vals[i+j+lenh] = u - v
			}
		}
	}
}

func bitReverseInPlace(vals []complex128) {
	n := len(vals)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j >= bit; bit >>= 1 {
			j -= bit
		}
		j += bit
		if i < j {
			vals[i], vals[j] = vals[j], vals[i]
		}
	}
}
