package ckks

import (
	"math"
	"math/cmplx"
)

// Noise diagnostics: measure how far a ciphertext's decryption drifts from
// a known reference, in bits of slot precision. Used by tests and by
// parameter-tuning experiments; the accelerator paper's workloads all
// depend on noise budgets holding through deep circuits.

// NoiseEstimator measures slot-level precision against references.
type NoiseEstimator struct {
	enc  *Encoder
	decr *Decryptor
}

// NewNoiseEstimator builds an estimator from the secret key.
func NewNoiseEstimator(params *Parameters, sk *SecretKey) *NoiseEstimator {
	return &NoiseEstimator{enc: NewEncoder(params), decr: NewDecryptor(params, sk)}
}

// PrecisionStats summarizes the slot error distribution.
type PrecisionStats struct {
	MaxErr  float64 // worst absolute slot error
	AvgErr  float64 // mean absolute slot error
	MinBits float64 // −log2(MaxErr): guaranteed bits of precision
	AvgBits float64 // −log2(AvgErr)
}

// Measure decrypts ct and compares it slot-wise with want.
func (ne *NoiseEstimator) Measure(ct *Ciphertext, want []complex128) PrecisionStats {
	got := ne.enc.Decode(ne.decr.Decrypt(ct))
	var stats PrecisionStats
	n := len(want)
	if n == 0 {
		return stats
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		e := cmplx.Abs(got[i] - want[i])
		if e > stats.MaxErr {
			stats.MaxErr = e
		}
		sum += e
	}
	stats.AvgErr = sum / float64(n)
	stats.MinBits = safeNegLog2(stats.MaxErr)
	stats.AvgBits = safeNegLog2(stats.AvgErr)
	return stats
}

func safeNegLog2(x float64) float64 {
	if x <= 0 {
		return math.Inf(1)
	}
	return -math.Log2(x)
}

// BudgetBits estimates the remaining multiplicative noise budget of ct: the
// log2 ratio between the active modulus and the current scale, minus a
// safety margin per remaining level. A non-positive budget means further
// multiplications will destroy the plaintext.
func BudgetBits(params *Parameters, ct *Ciphertext) float64 {
	logQ := 0.0
	for i := 0; i <= ct.Level; i++ {
		logQ += math.Log2(float64(params.Q[i]))
	}
	return logQ - math.Log2(ct.Scale) - 10 // ~10 bits of headroom for noise
}
