package ckks

import (
	"math/rand"

	"poseidon/internal/automorph"
	"poseidon/internal/ring"
)

// PolyQP is a polynomial over the extended basis Q·P, stored as its Q part
// and P part (both NTT domain for key material).
type PolyQP struct {
	Q *ring.Poly
	P *ring.Poly
}

// SecretKey is the ternary secret embedded over the full Q·P basis,
// NTT domain.
type SecretKey struct {
	Value PolyQP
}

// PublicKey is an encryption of zero under the secret key over Q,
// NTT domain: B = −A·s + e.
type PublicKey struct {
	B, A *ring.Poly
}

// SwitchingKey re-encrypts a target secret w under s: digit d holds
// (B_d, A_d) over Q·P with B_d = −A_d·s + e_d + P·w on the digit's own Q
// limbs (the hybrid-keyswitching gadget).
type SwitchingKey struct {
	B, A []PolyQP // one entry per digit
}

// RelinearizationKey switches s² → s.
type RelinearizationKey struct {
	SwitchingKey
}

// RotationKeySet maps Galois elements to their switching keys
// (σ_g(s) → s).
type RotationKeySet struct {
	Keys map[uint64]*SwitchingKey
}

// KeyGenerator samples key material. Deterministic given the seed.
type KeyGenerator struct {
	params *Parameters
	rng    *rand.Rand
}

// NewKeyGenerator creates a key generator with the given seed.
func NewKeyGenerator(params *Parameters, seed int64) *KeyGenerator {
	return &KeyGenerator{params: params, rng: rand.New(rand.NewSource(seed))}
}

// ternaryCoeffs samples N coefficients from {−1, 0, 1}.
func (kg *KeyGenerator) ternaryCoeffs() []int64 {
	cs := make([]int64, kg.params.N)
	for i := range cs {
		cs[i] = int64(kg.rng.Intn(3)) - 1
	}
	return cs
}

// gaussianCoeffs samples N rounded-Gaussian coefficients (σ = 3.2).
func (kg *KeyGenerator) gaussianCoeffs() []int64 {
	cs := make([]int64, kg.params.N)
	for i := range cs {
		g := kg.rng.NormFloat64() * 3.2
		if g > 19.2 {
			g = 19.2
		} else if g < -19.2 {
			g = -19.2
		}
		cs[i] = int64(g + 0.5)
		if g < 0 {
			cs[i] = -int64(-g + 0.5)
		}
	}
	return cs
}

// embed writes small integer coefficients into a fresh coefficient-domain
// polynomial over r with the given limb count.
func embed(r *ring.Ring, coeffs []int64, limbs int) *ring.Poly {
	p := r.NewPoly(limbs)
	for i := 0; i < limbs; i++ {
		mod := r.Moduli[i]
		for j, c := range coeffs {
			p.Coeffs[i][j] = mod.ReduceSigned(c)
		}
	}
	return p
}

// uniformPoly samples a uniform NTT-domain polynomial over r.
func (kg *KeyGenerator) uniformPoly(r *ring.Ring, limbs int) *ring.Poly {
	p := r.NewPoly(limbs)
	for i := 0; i < limbs; i++ {
		q := r.Moduli[i].Q
		bound := (^uint64(0) / q) * q
		for j := range p.Coeffs[i] {
			for {
				v := kg.rng.Uint64()
				if v < bound {
					p.Coeffs[i][j] = v % q
					break
				}
			}
		}
	}
	p.IsNTT = true
	return p
}

// GenSecretKey samples a ternary secret and embeds it over Q·P.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	coeffs := kg.ternaryCoeffs()
	skQ := embed(kg.params.RingQ, coeffs, len(kg.params.Q))
	skP := embed(kg.params.RingP, coeffs, len(kg.params.P))
	kg.params.RingQ.NTT(skQ)
	kg.params.RingP.NTT(skP)
	return &SecretKey{Value: PolyQP{Q: skQ, P: skP}}
}

// GenPublicKey produces (−a·s + e, a) over the full Q chain.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	rq := kg.params.RingQ
	limbs := len(kg.params.Q)
	a := kg.uniformPoly(rq, limbs)
	e := embed(rq, kg.gaussianCoeffs(), limbs)
	rq.NTT(e)
	b := rq.NewPoly(limbs)
	rq.MulCoeffwise(b, a, sk.Value.Q)
	rq.Neg(b, b)
	rq.Add(b, b, e)
	return &PublicKey{B: b, A: a}
}

// genSwitchingKey builds a key switching target → s, where target is an
// NTT-domain polynomial over the full Q chain (e.g. s² or σ_g(s)).
func (kg *KeyGenerator) genSwitchingKey(target *ring.Poly, sk *SecretKey) *SwitchingKey {
	params := kg.params
	rq, rp := params.RingQ, params.RingP
	limbsQ, limbsP := len(params.Q), len(params.P)
	alpha := params.Alpha()
	digits := (limbsQ + alpha - 1) / alpha

	// [P]_{q_i}: the factor applied to the target on digit-own limbs
	// (precomputed once on the parameter set).
	pModQ := params.pModQ

	swk := &SwitchingKey{
		B: make([]PolyQP, digits),
		A: make([]PolyQP, digits),
	}
	for d := 0; d < digits; d++ {
		aQ := kg.uniformPoly(rq, limbsQ)
		aP := kg.uniformPoly(rp, limbsP)
		eCoeffs := kg.gaussianCoeffs()
		eQ := embed(rq, eCoeffs, limbsQ)
		eP := embed(rp, eCoeffs, limbsP)
		rq.NTT(eQ)
		rp.NTT(eP)

		bQ := rq.NewPoly(limbsQ)
		rq.MulCoeffwise(bQ, aQ, sk.Value.Q)
		rq.Neg(bQ, bQ)
		rq.Add(bQ, bQ, eQ)

		bP := rp.NewPoly(limbsP)
		rp.MulCoeffwise(bP, aP, sk.Value.P)
		rp.Neg(bP, bP)
		rp.Add(bP, bP, eP)

		// Add P·target on the digit's own Q limbs.
		lo := d * alpha
		hi := lo + alpha
		if hi > limbsQ {
			hi = limbsQ
		}
		for i := lo; i < hi; i++ {
			mod := rq.Moduli[i]
			f := pModQ[i]
			fs := mod.ShoupConstant(f)
			bc, tc := bQ.Coeffs[i], target.Coeffs[i]
			for j := range bc {
				bc[j] = mod.Add(bc[j], mod.MulShoup(tc[j], f, fs))
			}
		}
		swk.B[d] = PolyQP{Q: bQ, P: bP}
		swk.A[d] = PolyQP{Q: aQ, P: aP}
	}
	return swk
}

// GenRelinearizationKey builds the s² → s key.
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *RelinearizationKey {
	rq := kg.params.RingQ
	s2 := rq.NewPoly(len(kg.params.Q))
	rq.MulCoeffwise(s2, sk.Value.Q, sk.Value.Q)
	return &RelinearizationKey{SwitchingKey: *kg.genSwitchingKey(s2, sk)}
}

// GenRotationKeys builds switching keys for the given rotation steps (and
// optionally conjugation).
func (kg *KeyGenerator) GenRotationKeys(sk *SecretKey, steps []int, conjugate bool) *RotationKeySet {
	set := &RotationKeySet{Keys: map[uint64]*SwitchingKey{}}
	gs := make([]uint64, 0, len(steps)+1)
	for _, s := range steps {
		gs = append(gs, automorph.GaloisElementForRotation(s, kg.params.N))
	}
	if conjugate {
		gs = append(gs, automorph.GaloisElementConjugate(kg.params.N))
	}
	for _, g := range gs {
		if _, ok := set.Keys[g]; ok {
			continue
		}
		set.Keys[g] = kg.genGaloisKey(sk, g)
	}
	return set
}

// GenGaloisKeys builds switching keys for exactly the given Galois
// elements — the companion to LinearTransformPlan.GaloisElements, letting a
// tenant provision precisely the rotation keys one transform needs instead
// of guessing a power-of-two ladder. Duplicates and the identity element
// are skipped.
func (kg *KeyGenerator) GenGaloisKeys(sk *SecretKey, galEls []uint64) *RotationKeySet {
	set := &RotationKeySet{Keys: map[uint64]*SwitchingKey{}}
	for _, g := range galEls {
		if g == 1 {
			continue
		}
		if _, ok := set.Keys[g]; ok {
			continue
		}
		set.Keys[g] = kg.genGaloisKey(sk, g)
	}
	return set
}

func (kg *KeyGenerator) genGaloisKey(sk *SecretKey, g uint64) *SwitchingKey {
	rq := kg.params.RingQ
	sCoeff := sk.Value.Q.CopyNew()
	rq.INTT(sCoeff)
	sG := rq.NewPoly(len(kg.params.Q))
	rq.Automorphism(sG, sCoeff, g)
	rq.NTT(sG)
	return kg.genSwitchingKey(sG, sk)
}
