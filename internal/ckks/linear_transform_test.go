package ckks

import (
	"math/rand"
	"reflect"
	"testing"
)

// Differential and structural suite for the double-hoisted linear-transform
// engine (double_hoist.go). The per-rotation schedule is the semantic
// reference: the double-hoisted result is decrypt-equivalent but not
// bit-identical (ModDown rounding is regrouped), so cross-path checks go
// through decryption while within-path checks (strict vs lazy kernels,
// fused vs radix-2 NTTs, dirty/aliased destinations) demand exact
// coefficient equality.

// ltMatFromDiags assembles a row-major n×n matrix from its generalized
// diagonals: m[r][(r+d)%n] = diags[d][r].
func ltMatFromDiags(n int, diags map[int][]complex128) [][]complex128 {
	m := make([][]complex128, n)
	for r := range m {
		m[r] = make([]complex128, n)
		for d, v := range diags {
			m[r][(r+d)%n] = v[r]
		}
	}
	return m
}

// ltMatVec is the plaintext ground truth M·z.
func ltMatVec(m [][]complex128, z []complex128) []complex128 {
	out := make([]complex128, len(m))
	for r := range m {
		for c, v := range m[r] {
			out[r] += v * z[c]
		}
	}
	return out
}

// ltRandDiags fills the listed diagonal indices with deterministic random
// values bounded away from the encoder's zero threshold.
func ltRandDiags(rng *rand.Rand, n int, ds []int) map[int][]complex128 {
	diags := map[int][]complex128{}
	for _, d := range ds {
		v := make([]complex128, n)
		for i := range v {
			v[i] = complex(rng.Float64()-0.5, rng.Float64()-0.5)
		}
		diags[d] = v
	}
	return diags
}

// ltFixture is the keyed setup for one transform: keys cover exactly the
// plan's rotations, the evaluator is fresh, and z/ct are the test vector.
type ltFixture struct {
	enc  *Encoder
	sk   *SecretKey
	ev   *Evaluator
	decr *Decryptor
	z    []complex128
	ct   *Ciphertext
}

func newLtFixture(t testing.TB, params *Parameters, lt *LinearTransform, enc *Encoder, rng *rand.Rand) *ltFixture {
	t.Helper()
	kgen := NewKeyGenerator(params, 42)
	sk := kgen.GenSecretKey()
	rlk := kgen.GenRelinearizationKey(sk)
	rtk := kgen.GenRotationKeys(sk, lt.Rotations(), false)
	encr := NewEncryptor(params, kgen.GenPublicKey(sk), 29)
	z := randomComplex(rng, params.Slots, 1.0)
	ct := encr.Encrypt(enc.Encode(z, params.MaxLevel(), params.Scale))
	return &ltFixture{
		enc:  enc,
		sk:   sk,
		ev:   NewEvaluator(params, rlk, rtk),
		decr: NewDecryptor(params, sk),
		z:    z,
		ct:   ct,
	}
}

// TestDoubleHoistedLinearTransform runs a dense random matrix on both
// differential parameter sets and checks, per set:
//   - double-hoisted output is bit-identical across strict/lazy kernels,
//     fused (k=3) vs radix-2 NTTs, and dirty or input-aliased destinations;
//   - both evaluation paths decrypt to the plaintext ground truth M·z.
func TestDoubleHoistedLinearTransform(t *testing.T) {
	for name, params := range diffParamSets(t) {
		t.Run(name, func(t *testing.T) {
			n := params.Slots
			rng := rand.New(rand.NewSource(31))
			m := make([][]complex128, n)
			for r := range m {
				m[r] = randomComplex(rng, n, 1.0)
			}
			enc := NewEncoder(params)
			lt, err := NewLinearTransform(enc, m, params.MaxLevel(), params.Scale)
			if err != nil {
				t.Fatal(err)
			}
			fx := newLtFixture(t, params, lt, enc, rng)
			ev := fx.ev

			var strictOut, lazyOut *Ciphertext
			withStrictCkks(params, true, func() { strictOut = ev.EvaluateLinearTransform(fx.ct, lt) })
			withStrictCkks(params, false, func() { lazyOut = ev.EvaluateLinearTransform(fx.ct, lt) })
			requireCtEqual(t, lazyOut, strictOut, "double-hoisted strict vs lazy")

			if err := params.SetFusionDegree(3); err != nil {
				t.Fatal(err)
			}
			fused := ev.EvaluateLinearTransform(fx.ct, lt)
			if err := params.SetFusionDegree(0); err != nil {
				t.Fatal(err)
			}
			requireCtEqual(t, fused, lazyOut, "double-hoisted fused k=3 vs radix-2")

			// A destination full of stale coefficients must be fully
			// overwritten, including the implicit zero rows.
			dirty := lazyOut.CopyNew()
			requireCtEqual(t, ev.EvaluateLinearTransformInto(dirty, fx.ct, lt), lazyOut,
				"double-hoisted into dirty destination")

			// dst aliasing ct: the input is consumed before dst is written.
			alias := fx.ct.CopyNew()
			requireCtEqual(t, ev.EvaluateLinearTransformInto(alias, alias, lt), lazyOut,
				"double-hoisted into aliased destination")

			expect := ltMatVec(m, fx.z)
			base := ev.EvaluateLinearTransformPerRotation(fx.ct, lt)
			assertClose(t, enc.Decode(fx.decr.Decrypt(ev.Rescale(lazyOut))), expect, 2e-2,
				"double-hoisted decrypts to M·z")
			assertClose(t, enc.Decode(fx.decr.Decrypt(ev.Rescale(base))), expect, 2e-2,
				"per-rotation decrypts to M·z")
		})
	}
}

// TestLinearTransformChain evaluates a dense then a banded transform
// back-to-back (rescaling between), decrypt-validating against M2·(M1·z) —
// the composed-pipeline shape a bootstrapping slot-to-coeff pass uses.
func TestLinearTransformChain(t *testing.T) {
	params := diffParamSets(t)["LogN9-L4-alpha2"]
	n := params.Slots
	rng := rand.New(rand.NewSource(47))
	enc := NewEncoder(params)

	m1 := make([][]complex128, n)
	for r := range m1 {
		m1[r] = randomComplex(rng, n, 1.0)
	}
	// Wrap-around band: main diagonal, two superdiagonals, one "sub".
	m2 := ltMatFromDiags(n, ltRandDiags(rng, n, []int{0, 1, 2, n - 1}))

	lt1, err := NewLinearTransform(enc, m1, params.MaxLevel(), params.Scale)
	if err != nil {
		t.Fatal(err)
	}
	lt2, err := NewLinearTransform(enc, m2, params.MaxLevel()-1, params.Scale)
	if err != nil {
		t.Fatal(err)
	}

	kgen := NewKeyGenerator(params, 42)
	sk := kgen.GenSecretKey()
	rlk := kgen.GenRelinearizationKey(sk)
	steps := append(lt1.Rotations(), lt2.Rotations()...)
	rtk := kgen.GenRotationKeys(sk, steps, false)
	ev := NewEvaluator(params, rlk, rtk)
	encr := NewEncryptor(params, kgen.GenPublicKey(sk), 29)
	decr := NewDecryptor(params, sk)

	z := randomComplex(rng, n, 1.0)
	ct := encr.Encrypt(enc.Encode(z, params.MaxLevel(), params.Scale))

	y1 := ev.Rescale(ev.EvaluateLinearTransform(ct, lt1))
	y2 := ev.Rescale(ev.EvaluateLinearTransform(y1, lt2))

	expect := ltMatVec(m2, ltMatVec(m1, z))
	assertClose(t, enc.Decode(decr.Decrypt(y2)), expect, 5e-2, "chained transforms decrypt to M2·M1·z")
}

// TestLinearTransformStats pins the engine's work accounting to the plan
// shape: the double-hoisted path spends one ModDown per nonzero giant-step
// group plus two to close, against the per-rotation baseline's two per
// keyswitch — same number of key-switch MAC pipelines on both paths.
func TestLinearTransformStats(t *testing.T) {
	params := diffParamSets(t)["LogN9-L4-alpha2"]
	n := params.Slots
	rng := rand.New(rand.NewSource(53))
	enc := NewEncoder(params)

	// diags {0,1,2,17,33} at n1=16: babies {1,2}, groups j ∈ {0,16,32}.
	m := ltMatFromDiags(n, ltRandDiags(rng, n, []int{0, 1, 2, 17, 33}))
	lt, err := NewLinearTransformBSGS(enc, m, params.MaxLevel(), params.Scale, 16)
	if err != nil {
		t.Fatal(err)
	}
	fx := newLtFixture(t, params, lt, enc, rng)

	plan := lt.Plan()
	nzGroups := 0
	for _, g := range plan.groups {
		if g.j != 0 {
			nzGroups++
		}
	}
	if got, want := len(plan.babySteps), 2; got != want {
		t.Fatalf("plan baby steps = %d, want %d", got, want)
	}
	if got, want := len(plan.groups), 3; got != want {
		t.Fatalf("plan groups = %d, want %d", got, want)
	}

	_, dh := fx.ev.EvaluateLinearTransformWithStats(fx.ct, lt)
	_, pr := fx.ev.EvaluateLinearTransformPerRotationWithStats(fx.ct, lt)

	if dh.BabySteps != len(plan.babySteps) || dh.GiantSteps != len(plan.groups) {
		t.Errorf("DH step counts (%d, %d) disagree with plan (%d, %d)",
			dh.BabySteps, dh.GiantSteps, len(plan.babySteps), len(plan.groups))
	}
	if want := nzGroups + 2; dh.ModDownSweeps != want {
		t.Errorf("DH ModDown sweeps = %d, want %d (one per nonzero group + two to close)", dh.ModDownSweeps, want)
	}
	if want := 2 * (len(plan.babySteps) + nzGroups); pr.ModDownSweeps != want {
		t.Errorf("per-rotation ModDown sweeps = %d, want %d", pr.ModDownSweeps, want)
	}
	if dh.ModDownSweeps >= pr.ModDownSweeps {
		t.Errorf("DH ModDown sweeps (%d) not below baseline (%d)", dh.ModDownSweeps, pr.ModDownSweeps)
	}
	if dh.KeySwitches != pr.KeySwitches {
		t.Errorf("key-switch MAC count differs: DH %d, per-rotation %d", dh.KeySwitches, pr.KeySwitches)
	}
	if dh.PlainMACs != pr.PlainMACs || dh.PlainMACs != len(lt.diag) {
		t.Errorf("plain MACs: DH %d, per-rotation %d, want %d", dh.PlainMACs, pr.PlainMACs, len(lt.diag))
	}
}

// TestLinearTransformLevels checks the level plumbing: a ciphertext above
// the transform level is dropped transparently, one below panics.
func TestLinearTransformLevels(t *testing.T) {
	params := diffParamSets(t)["LogN8-L2"]
	n := params.Slots
	rng := rand.New(rand.NewSource(59))
	enc := NewEncoder(params)

	m := ltMatFromDiags(n, ltRandDiags(rng, n, []int{0, 3, 17}))
	level := params.MaxLevel() - 1
	lt, err := NewLinearTransform(enc, m, level, params.Scale)
	if err != nil {
		t.Fatal(err)
	}
	fx := newLtFixture(t, params, lt, enc, rng) // ct at MaxLevel > lt.Level

	got := fx.ev.EvaluateLinearTransform(fx.ct, lt)
	if got.Level != level {
		t.Fatalf("result at level %d, want %d", got.Level, level)
	}
	assertClose(t, fx.enc.Decode(fx.decr.Decrypt(fx.ev.Rescale(got))), ltMatVec(m, fx.z), 1e-2,
		"auto-dropped input decrypts to M·z")

	low := fx.ev.DropLevel(fx.ct, level-1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("transform at level above the ciphertext did not panic")
			}
		}()
		fx.ev.EvaluateLinearTransform(low, lt)
	}()
}

// TestLinearTransformZeroMatrix: the all-zero matrix has an empty plan, no
// rotation requirements, and evaluates to an exact zero ciphertext at the
// product scale.
func TestLinearTransformZeroMatrix(t *testing.T) {
	params := diffParamSets(t)["LogN8-L2"]
	n := params.Slots
	enc := NewEncoder(params)
	m := make([][]complex128, n)
	for r := range m {
		m[r] = make([]complex128, n)
	}
	lt, err := NewLinearTransform(enc, m, params.MaxLevel(), params.Scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(lt.Rotations()) != 0 || len(lt.Plan().GaloisElements()) != 0 {
		t.Fatalf("zero matrix wants rotations %v, galois %v", lt.Rotations(), lt.Plan().GaloisElements())
	}
	rng := rand.New(rand.NewSource(61))
	fx := newLtFixture(t, params, lt, enc, rng)
	got := fx.ev.EvaluateLinearTransform(fx.ct, lt)
	if got.Scale != fx.ct.Scale*lt.Scale {
		t.Fatalf("zero result scale %v, want %v", got.Scale, fx.ct.Scale*lt.Scale)
	}
	for i := range got.C0.Coeffs {
		for j := range got.C0.Coeffs[i] {
			if got.C0.Coeffs[i][j] != 0 || got.C1.Coeffs[i][j] != 0 {
				t.Fatalf("zero-matrix result has nonzero coefficient at limb %d", i)
			}
		}
	}
}

// TestLinearTransformPlanDeterministic: two transforms built from the same
// matrix produce identical plans — same rotation order, group order, and
// Galois layout — despite the diagonal maps' random iteration order.
func TestLinearTransformPlanDeterministic(t *testing.T) {
	params := diffParamSets(t)["LogN8-L2"]
	n := params.Slots
	rng := rand.New(rand.NewSource(67))
	enc := NewEncoder(params)
	m := ltMatFromDiags(n, ltRandDiags(rng, n, []int{0, 1, 5, 17, 18, 33, 100, n - 1}))

	build := func() *LinearTransformPlan {
		lt, err := NewLinearTransform(enc, m, params.MaxLevel(), params.Scale)
		if err != nil {
			t.Fatal(err)
		}
		return lt.Plan()
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a.Rotations(), b.Rotations()) {
		t.Errorf("rotations differ across builds: %v vs %v", a.Rotations(), b.Rotations())
	}
	if !reflect.DeepEqual(a.GaloisElements(), b.GaloisElements()) {
		t.Errorf("galois elements differ across builds")
	}
	if !reflect.DeepEqual(a.babySteps, b.babySteps) {
		t.Errorf("baby steps differ across builds: %v vs %v", a.babySteps, b.babySteps)
	}
	if len(a.groups) != len(b.groups) {
		t.Fatalf("group counts differ: %d vs %d", len(a.groups), len(b.groups))
	}
	for i := range a.groups {
		if a.groups[i].j != b.groups[i].j || len(a.groups[i].terms) != len(b.groups[i].terms) {
			t.Errorf("group %d differs across builds", i)
		}
	}
}

// TestLinearTransformZeroAlloc gates the plan-based destination-passing
// evaluation at zero heap allocations per call on a serial evaluator: the
// engine state, wide accumulators, extended-basis scratch and permutation
// staging must all come from the parameters' pools.
func TestLinearTransformZeroAlloc(t *testing.T) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     9,
		LogQ:     []int{55, 45, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
		Workers:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := params.Slots
	rng := rand.New(rand.NewSource(71))
	enc := NewEncoder(params)
	m := ltMatFromDiags(n, ltRandDiags(rng, n, []int{0, 1, 2, 17, 18, 33}))
	lt, err := NewLinearTransformBSGS(enc, m, params.MaxLevel(), params.Scale, 16)
	if err != nil {
		t.Fatal(err)
	}
	fx := newLtFixture(t, params, lt, enc, rng)
	out := NewCiphertext(params, lt.Level)

	// Warm-up builds the plan, grows the pools and memoizes the Galois
	// permutation tables; steady state must then be allocation-free.
	fx.ev.EvaluateLinearTransformInto(out, fx.ct, lt)
	if n := testing.AllocsPerRun(10, func() {
		fx.ev.EvaluateLinearTransformInto(out, fx.ct, lt)
	}); n != 0 {
		t.Errorf("EvaluateLinearTransformInto allocates %.0f times per run, want 0", n)
	}
}

// FuzzLinearTransformPlan drives plan construction over random sparsity
// patterns and baby-step widths and checks the structural invariants every
// consumer (both evaluation paths, key provisioning, the arch model)
// relies on: sorted deterministic ordering, group/term consistency, and
// exact accounting of the nonzero diagonals.
func FuzzLinearTransformPlan(f *testing.F) {
	params, err := NewParameters(ParametersLiteral{
		LogN:     8,
		LogQ:     []int{50, 40},
		LogP:     []int{51},
		LogScale: 40,
	})
	if err != nil {
		f.Fatal(err)
	}
	n := params.Slots
	enc := NewEncoder(params)

	f.Add(uint8(4), []byte{0, 1, 2, 17, 18})
	f.Add(uint8(0), []byte{})
	f.Add(uint8(7), []byte{255, 3, 129})
	f.Add(uint8(9), []byte{0})

	f.Fuzz(func(t *testing.T, n1Exp uint8, pattern []byte) {
		if len(pattern) > 24 {
			pattern = pattern[:24] // bound encoding work per input
		}
		diagSet := map[int]bool{}
		ds := []int(nil)
		for _, b := range pattern {
			d := int(b) % n
			if !diagSet[d] {
				diagSet[d] = true
				ds = append(ds, d)
			}
		}
		m := ltMatFromDiags(n, ltRandDiags(rand.New(rand.NewSource(int64(len(ds)))), n, ds))

		logN1 := int(n1Exp) % 8 // n = 128 slots: n1 ∈ {1, 2, …, 128}
		n1 := 1 << logN1
		lt, err := NewLinearTransformBSGS(enc, m, params.MaxLevel(), params.Scale, n1)
		if err != nil {
			t.Fatalf("construction rejected valid width %d: %v", n1, err)
		}
		p := lt.Plan()

		for k := 1; k < len(p.rotations); k++ {
			if p.rotations[k-1] >= p.rotations[k] {
				t.Fatalf("rotations not strictly ascending: %v", p.rotations)
			}
		}
		for k := 1; k < len(p.galois); k++ {
			if p.galois[k-1] >= p.galois[k] {
				t.Fatalf("galois elements not strictly ascending: %v", p.galois)
			}
		}
		for _, g := range p.galois {
			if g == 1 {
				t.Fatal("identity Galois element in key requirement set")
			}
		}
		seen := map[int]bool{}
		for k, s := range p.babySteps {
			if s <= 0 || s >= n1 || seen[s] {
				t.Fatalf("bad baby step %d (n1=%d) in %v", s, n1, p.babySteps)
			}
			seen[s] = true
			if k > 0 && p.babySteps[k-1] >= s {
				t.Fatalf("baby steps not sorted: %v", p.babySteps)
			}
		}
		terms := 0
		for gi, g := range p.groups {
			if g.j%n1 != 0 || g.j < 0 || g.j >= n {
				t.Fatalf("group %d has invalid outer step %d", gi, g.j)
			}
			if gi > 0 && p.groups[gi-1].j >= g.j {
				t.Fatal("groups not sorted by outer step")
			}
			if len(g.terms) == 0 {
				t.Fatalf("group j=%d is empty", g.j)
			}
			for ti, term := range g.terms {
				if ti > 0 && g.terms[ti-1].i >= term.i {
					t.Fatalf("group j=%d terms not sorted by inner step", g.j)
				}
				if term.i < 0 || term.i >= n1 {
					t.Fatalf("inner step %d out of range for n1=%d", term.i, n1)
				}
				if term.i == 0 {
					if term.babyIdx != -1 {
						t.Fatalf("identity term carries baby index %d", term.babyIdx)
					}
				} else if term.babyIdx < 0 || term.babyIdx >= len(p.babySteps) || p.babySteps[term.babyIdx] != term.i {
					t.Fatalf("term (j=%d, i=%d) baby index %d inconsistent with %v", g.j, term.i, term.babyIdx, p.babySteps)
				}
				if term.pt == nil || term.ptP == nil {
					t.Fatalf("term (j=%d, i=%d) missing encoded diagonal", g.j, term.i)
				}
				if !diagSet[g.j+term.i] {
					t.Fatalf("plan invented diagonal %d", g.j+term.i)
				}
				terms++
			}
		}
		if terms != len(ds) {
			t.Fatalf("plan covers %d diagonals, matrix has %d", terms, len(ds))
		}
	})
}
