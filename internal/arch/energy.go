package arch

// EnergyModel converts operation counts into energy. Per-operation core
// energies are switching-energy estimates for a 16 nm FPGA datapath; HBM
// and scratchpad costs use the standard pJ/bit figures. Memory access
// dominates — the Fig 12 observation — because every basic operation
// streams multi-megabyte ciphertexts.
type EnergyModel struct {
	// Core energies, picojoules per element-operation.
	MApJ   float64
	MMpJ   float64
	NTTpJ  float64 // per element-pass (one fused stage touch)
	AutopJ float64

	// Memory energies, picojoules per byte.
	HBMpJB     float64
	ScratchpJB float64

	// Static power of the powered-on fabric, watts, charged over the
	// operation's wall time.
	StaticW float64
}

// DefaultEnergy returns the calibrated model.
func DefaultEnergy() EnergyModel {
	return EnergyModel{
		MApJ:       0.9,
		MMpJ:       7.5,
		NTTpJ:      9.0,
		AutopJ:     0.6,
		HBMpJB:     56, // 7 pJ/bit
		ScratchpJB: 1.2,
		// Fabric static power attributed to the accelerator datapath; the
		// board-level remainder is excluded so the dynamic breakdown of
		// Fig 12 stays visible.
		StaticW: 3,
	}
}

// Breakdown is energy per contributor, joules.
type Breakdown struct {
	MA, MM, NTT, Auto float64
	HBM               float64
	Static            float64
}

// Total sums all contributors.
func (b Breakdown) Total() float64 {
	return b.MA + b.MM + b.NTT + b.Auto + b.HBM + b.Static
}

// Energy computes the energy of a profile executed on model m.
// Element-operation counts are recovered from busy cycles × lanes.
func (e EnergyModel) Energy(m *Model, p Profile) Breakdown {
	lanes := m.lanes()
	t := m.Latency(p)
	var b Breakdown
	b.MA = p.Cycles[MA] * lanes * e.MApJ * 1e-12
	b.MM = p.Cycles[MM] * lanes * e.MMpJ * 1e-12
	b.NTT = p.Cycles[NTT] * lanes * e.NTTpJ * 1e-12
	auLanes := lanes
	if m.Cfg.Auto == NaiveAutoCore {
		auLanes = 1 // serial core touches one element per cycle
	}
	b.Auto = p.Cycles[Auto] * auLanes * e.AutopJ * 1e-12
	b.HBM = p.HBMBytes * e.HBMpJB * 1e-12
	b.Static = e.StaticW * t
	return b
}

// EDP is the energy-delay product in joule-seconds.
func (e EnergyModel) EDP(m *Model, p Profile) float64 {
	t := m.Latency(p)
	return e.Energy(m, p).Total() * t
}
