package arch

// Near-data-processing variant. The paper's discussion section proposes
// deploying Poseidon's operator cores next to bulk storage (e.g. a
// SmartSSD) with an even smaller scratchpad: compute throughput drops (the
// FPGA on a storage device is smaller and slower) but data no longer
// crosses the host memory system, so the energy per moved byte falls
// sharply. This preset models that future-work design point so the
// tradeoff is explorable.

// SmartSSD returns a near-data design point: a storage-attached FPGA with
// 128 lanes at 200 MHz behind a 12 GB/s device-internal link.
func SmartSSD() Config {
	return Config{
		Lanes:         128,
		FusionK:       3,
		FreqMHz:       200,
		HBMGBs:        12, // device-internal bandwidth
		HBMEfficiency: 0.9,
		ScratchpadMB:  2.0,
		LimbBytes:     4,
		Auto:          HFAutoCore,
		PipeMA:        4,
		PipeMM:        18,
		PipeNTT:       32,
		PipeAuto:      16,
	}
}

// NDPEnergy returns the energy model for the near-data variant: moving a
// byte inside the device costs ~6× less than crossing HBM + host DRAM.
func NDPEnergy() EnergyModel {
	e := DefaultEnergy()
	e.HBMpJB = 9
	e.StaticW = 6
	return e
}

// WorkingSetBytes estimates the scratchpad residency one basic operation
// needs to avoid spilling intermediates to off-chip memory: the operands,
// the result, and the operation's largest intermediate, in bytes. The
// paper sizes its scratchpad at 8.6 MB — enough for Rescale's full reuse
// (its low bandwidth utilization in Table VII) but deliberately not for
// entire keyswitch working sets, which stream instead.
func (m *Model) WorkingSetBytes(p Profile, limbs int) float64 {
	n := float64(m.Params.N())
	w := float64(m.Cfg.LimbBytes)
	l := float64(limbs)
	alpha := float64(m.Params.Alpha)
	switch p.Name {
	case "HAdd", "HAddPlain", "PMult":
		return 3 * n * l * w // two inputs + one output tile
	case "Rescale":
		return 4 * n * l * w // both components + coefficient-domain copies
	case "NTT", "Automorphism":
		return 2 * n * l * w
	case "Keyswitch", "CMult", "Rotation":
		// One extended digit plus both accumulators must be resident.
		return 3*n*(l+alpha)*w + 2*n*l*w
	default:
		return 2 * n * l * w
	}
}

// FitsScratchpad reports whether the op's working set is scratchpad
// resident at this design point.
func (m *Model) FitsScratchpad(p Profile, limbs int) bool {
	return m.WorkingSetBytes(p, limbs) <= m.Cfg.ScratchpadMB*1e6
}
