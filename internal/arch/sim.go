package arch

import (
	"fmt"
	"sort"

	"poseidon/internal/trace"
)

// KindStat aggregates simulator results per basic-operation kind.
type KindStat struct {
	Kind    trace.Kind
	Count   float64
	Time    float64 // seconds
	Bytes   float64
	Energy  float64 // joules
	MinUtil float64 // lowest per-invocation bandwidth utilization
}

// Report is the result of executing a trace on a design point: everything
// the paper's benchmark figures need.
type Report struct {
	Name    string
	Workers int // evaluator worker count the trace was captured with (0 = unknown)

	TotalTime   float64 // seconds
	TotalBytes  float64
	TotalEnergy float64 // joules
	EDP         float64 // joule·seconds

	ByKind     map[trace.Kind]*KindStat
	ByOperator map[Operator]float64 // seconds of attributed time
	ByTag      map[string]float64   // seconds per workload phase label

	AvgBandwidthUtil float64

	// Mem carries the software run's memory profile through to reports
	// (allocs/op and the arena high-water mark — the working set a real
	// accelerator would pin on chip). Nil when the trace has none.
	Mem *trace.MemStats

	// Fault carries the run's integrity-guard counters (seals, verifies,
	// detected faults) — the software analogue of ECC/scrubbing telemetry
	// on the accelerator. Nil when the trace has none.
	Fault *trace.FaultStats

	// Calib joins measured per-op wall times (from the telemetry layer)
	// with this model's predictions: per-kind measured/modeled ratios and
	// their drift summary. Nil when the run carried no telemetry.
	Calib *trace.CalibStats `json:",omitempty"`
}

// Simulate executes tr on the model with the given energy model.
func Simulate(m *Model, em EnergyModel, tr *trace.Trace) Report {
	rep := Report{
		Name:       tr.Name,
		Workers:    tr.Workers,
		Mem:        tr.Mem,
		Fault:      tr.Fault,
		ByKind:     map[trace.Kind]*KindStat{},
		ByOperator: map[Operator]float64{},
		ByTag:      map[string]float64{},
	}
	for _, op := range tr.Ops {
		prof := m.ProfileFor(op.Kind, op.Limbs)
		t := m.Latency(prof)
		energy := em.Energy(m, prof).Total()
		util := m.BandwidthUtilization(prof)

		st := rep.ByKind[op.Kind]
		if st == nil {
			st = &KindStat{Kind: op.Kind, MinUtil: 2}
			rep.ByKind[op.Kind] = st
		}
		st.Count += op.Count
		st.Time += t * op.Count
		st.Bytes += prof.HBMBytes * op.Count
		st.Energy += energy * op.Count
		if util < st.MinUtil {
			st.MinUtil = util
		}

		shares := m.Shares(prof)
		for o, s := range shares {
			rep.ByOperator[o] += s * t * op.Count
		}

		tag := op.Tag
		if tag == "" {
			tag = "(untagged)"
		}
		rep.ByTag[tag] += t * op.Count

		rep.TotalTime += t * op.Count
		rep.TotalBytes += prof.HBMBytes * op.Count
		rep.TotalEnergy += energy * op.Count
	}
	if rep.TotalTime > 0 {
		rep.AvgBandwidthUtil = rep.TotalBytes / (rep.TotalTime * m.Cfg.HBMGBs * 1e9)
	}
	rep.EDP = rep.TotalEnergy * rep.TotalTime
	return rep
}

// SimulateOverlapped models the double-buffered steady state: with the
// scratchpad ping-ponging between compute and transfer, the memory stream
// of one operation hides behind the compute of its neighbors, so the trace
// takes max(Σ compute, Σ memory) rather than Σ max(compute, memory) — an
// optimistic bound that brackets the per-op roofline of Simulate from
// below. The pair approximates the paper's "fully pipelined" claim.
func SimulateOverlapped(m *Model, em EnergyModel, tr *trace.Trace) (seconds float64) {
	var compute, memory float64
	for _, op := range tr.Ops {
		prof := m.ProfileFor(op.Kind, op.Limbs)
		compute += prof.TotalComputeCycles() / m.Cfg.CyclesPerSec() * op.Count
		memory += prof.HBMBytes / m.Cfg.EffectiveHBM() * op.Count
	}
	if memory > compute {
		return memory
	}
	return compute
}

// ProfileFor maps a trace operation kind to its cost profile.
func (m *Model) ProfileFor(kind trace.Kind, limbs int) Profile {
	switch kind {
	case trace.HAdd:
		return m.HAdd(limbs)
	case trace.HAddPlain:
		return m.HAddPlain(limbs)
	case trace.PMult:
		return m.PMult(limbs)
	case trace.CMult:
		return m.CMult(limbs)
	case trace.Rescale:
		return m.Rescale(limbs)
	case trace.Keyswitch:
		return m.Keyswitch(limbs)
	case trace.Rotation:
		return m.Rotation(limbs)
	case trace.Automorphism:
		return m.AutomorphismOp(limbs)
	case trace.NTTTransform:
		return m.NTTOp(limbs)
	case trace.ModUp:
		return m.ModUp(limbs)
	case trace.ModDown:
		return m.ModDown(limbs)
	case trace.LinTrans:
		return m.LinTrans(limbs)
	}
	panic(fmt.Sprintf("arch: unknown trace kind %v", kind))
}

// KindsByTime returns the per-kind stats sorted by descending time share.
func (r Report) KindsByTime() []*KindStat {
	out := make([]*KindStat, 0, len(r.ByKind))
	for _, st := range r.ByKind {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time > out[j].Time })
	return out
}

// EnergyByContributor re-runs the energy attribution to produce the Fig 12
// breakdown for the whole trace.
func SimulateEnergyBreakdown(m *Model, em EnergyModel, tr *trace.Trace) Breakdown {
	var total Breakdown
	for _, op := range tr.Ops {
		prof := m.ProfileFor(op.Kind, op.Limbs)
		b := em.Energy(m, prof)
		total.MA += b.MA * op.Count
		total.MM += b.MM * op.Count
		total.NTT += b.NTT * op.Count
		total.Auto += b.Auto * op.Count
		total.HBM += b.HBM * op.Count
		total.Static += b.Static * op.Count
	}
	return total
}
