package arch

import (
	"fmt"
	"math"
)

// Operator identifies one of the paper's five operator core families (SBT
// is folded into MM/NTT cycle costs but tracked for resources), plus the
// data-movement pseudo-operator used in the Fig 7 breakdown.
type Operator int

const (
	MA Operator = iota
	MM
	NTT
	Auto
	Mem // HBM exposure not hidden behind compute
	numOperators
)

func (o Operator) String() string {
	switch o {
	case MA:
		return "MA"
	case MM:
		return "MM"
	case NTT:
		return "NTT"
	case Auto:
		return "Automorphism"
	case Mem:
		return "Mem"
	}
	return fmt.Sprintf("Operator(%d)", int(o))
}

// Profile is the cost of one basic FHE operation on the accelerator:
// busy cycles per operator family plus the HBM traffic it generates.
type Profile struct {
	Name     string
	Cycles   [numOperators]float64
	HBMBytes float64
}

// add merges another profile's costs (for composing basic ops).
func (p *Profile) add(o Profile) {
	for i := range p.Cycles {
		p.Cycles[i] += o.Cycles[i]
	}
	p.HBMBytes += o.HBMBytes
}

// scale multiplies all costs by f.
func (p *Profile) scale(f float64) {
	for i := range p.Cycles {
		p.Cycles[i] *= f
	}
	p.HBMBytes *= f
}

// TotalComputeCycles sums core-busy cycles across families.
func (p Profile) TotalComputeCycles() float64 {
	t := 0.0
	for op, c := range p.Cycles {
		if Operator(op) != Mem {
			t += c
		}
	}
	return t
}

// Model evaluates operation costs for one design point and ciphertext
// geometry.
type Model struct {
	Cfg    Config
	Params FHEParams
}

// NewModel validates and builds a cost model.
func NewModel(cfg Config, params FHEParams) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if params.LogN < 3 || params.Limbs < 1 || params.Alpha < 1 {
		return nil, fmt.Errorf("arch: invalid FHE parameters %+v", params)
	}
	return &Model{Cfg: cfg, Params: params}, nil
}

// lanes returns the lane count as float.
func (m *Model) lanes() float64 { return float64(m.Cfg.Lanes) }

// nttPasses is the number of fused NTT phases: ceil(logN / k).
func (m *Model) nttPasses() float64 {
	return math.Ceil(float64(m.Params.LogN) / float64(m.Cfg.FusionK))
}

// elemCycles is the pipelined cost of streaming `elems` element-operations
// through a lane-parallel core family.
func (m *Model) elemCycles(elems float64, pipe int) float64 {
	return elems/m.lanes() + float64(pipe)
}

// nttCycles is the cost of transforming `elems` residues: every fused pass
// streams the full vector once.
func (m *Model) nttCycles(elems float64) float64 {
	return m.nttPasses()*elems/m.lanes() + float64(m.Cfg.PipeNTT)
}

// autoCycles models the automorphism core. HFAuto moves C-element
// sub-vectors through 4 pipelined stages; the naive core resolves one index
// map per cycle — the Table VIII/IX ablation.
func (m *Model) autoCycles(elems float64) float64 {
	if m.Cfg.Auto == NaiveAutoCore {
		return elems + float64(m.Cfg.PipeAuto)
	}
	return 4*elems/m.lanes() + float64(m.Cfg.PipeAuto)
}

// words converts element counts to HBM bytes.
func (m *Model) words(elems float64) float64 {
	return elems * float64(m.Cfg.LimbBytes)
}

// Latency converts a profile into seconds: compute and HBM streaming are
// overlapped (the scratchpad double-buffers transfers), so the operation
// takes the larger of the two.
func (m *Model) Latency(p Profile) float64 {
	tc := p.TotalComputeCycles() / m.Cfg.CyclesPerSec()
	tm := p.HBMBytes / m.Cfg.EffectiveHBM()
	return math.Max(tc, tm)
}

// BandwidthUtilization is the fraction of peak HBM bandwidth the operation
// sustains: bytes moved over the op's wall time at full peak (Table VII).
func (m *Model) BandwidthUtilization(p Profile) float64 {
	t := m.Latency(p)
	if t == 0 {
		return 0
	}
	return p.HBMBytes / (t * m.Cfg.HBMGBs * 1e9)
}

// Shares returns the Fig 7-style time breakdown: each compute family's
// share of busy cycles, with exposed memory time as the Mem share.
func (m *Model) Shares(p Profile) map[Operator]float64 {
	tc := p.TotalComputeCycles() / m.Cfg.CyclesPerSec()
	tm := p.HBMBytes / m.Cfg.EffectiveHBM()
	total := math.Max(tc, tm)
	shares := map[Operator]float64{}
	if total == 0 {
		return shares
	}
	// Compute families share the compute fraction proportionally to their
	// busy cycles; the remainder is exposed memory time.
	computeFrac := math.Min(1, tc/total)
	sum := p.TotalComputeCycles()
	for op := MA; op < Mem; op++ {
		if sum > 0 {
			shares[op] = computeFrac * p.Cycles[op] / sum
		} else {
			shares[op] = 0
		}
	}
	shares[Mem] = 1 - computeFrac
	return shares
}

// --- Basic operation profiles -------------------------------------------
//
// Throughout, limbs is the active limb count (level+1), E = N·limbs is the
// per-polynomial element count, and a ciphertext is two polynomials.

// HAdd is ciphertext-ciphertext homomorphic addition: pure MA over both
// components, streaming both operands in and the sum out.
func (m *Model) HAdd(limbs int) Profile {
	e := float64(m.Params.N() * limbs)
	var p Profile
	p.Name = "HAdd"
	p.Cycles[MA] = m.elemCycles(2*e, m.Cfg.PipeMA)
	p.HBMBytes = m.words(4*e + 2*e)
	return p
}

// HAddPlain is ciphertext-plaintext addition (only C0 is touched).
func (m *Model) HAddPlain(limbs int) Profile {
	e := float64(m.Params.N() * limbs)
	var p Profile
	p.Name = "HAddPlain"
	p.Cycles[MA] = m.elemCycles(e, m.Cfg.PipeMA)
	p.HBMBytes = m.words(2*e + e + 2*e)
	return p
}

// PMult is ciphertext-plaintext multiplication: MM over both components.
func (m *Model) PMult(limbs int) Profile {
	e := float64(m.Params.N() * limbs)
	var p Profile
	p.Name = "PMult"
	p.Cycles[MM] = m.elemCycles(2*e, m.Cfg.PipeMM)
	p.HBMBytes = m.words(2*e + e + 2*e)
	return p
}

// NTTOp is one standalone polynomial transform at the given limb count —
// reported separately in Table IV because of its weight.
func (m *Model) NTTOp(limbs int) Profile {
	e := float64(m.Params.N() * limbs)
	var p Profile
	p.Name = "NTT"
	p.Cycles[NTT] = m.nttCycles(e)
	p.HBMBytes = m.words(2 * e)
	return p
}

// AutomorphismOp is the index-mapping operator on a full ciphertext.
func (m *Model) AutomorphismOp(limbs int) Profile {
	e := float64(m.Params.N() * limbs)
	var p Profile
	p.Name = "Automorphism"
	p.Cycles[Auto] = m.autoCycles(2 * e)
	p.HBMBytes = m.words(4 * e)
	return p
}

// keySwitchProfile is the hybrid keyswitch on a single polynomial at the
// given level: INTT, per-digit RNSconv (ModUp) with MA/MM chains, NTT over
// the extended basis, MAC against the key digits, then ModDown and the
// final transforms. The evaluation keys stream from HBM — the dominant
// traffic.
func (m *Model) keySwitchProfile(limbs int) Profile {
	n := float64(m.Params.N())
	alpha := float64(m.Params.Alpha)
	dnum := float64(m.Params.Dnum(limbs))
	l := float64(limbs)
	e := n * l
	eqp := n * (l + alpha)

	var p Profile
	p.Name = "Keyswitch"

	// INTT of the input polynomial.
	p.Cycles[NTT] += m.nttCycles(e)
	// Per digit: RNSconv (y_j then the extension inner products — MM+MA
	// chains over the target basis), forward NTT of the extended digit,
	// and the MAC against both key components.
	p.Cycles[MM] += dnum * m.elemCycles(n*alpha*(l+alpha), m.Cfg.PipeMM)
	p.Cycles[MA] += dnum * m.elemCycles(n*alpha*(l+alpha), m.Cfg.PipeMA)
	p.Cycles[NTT] += dnum * m.nttCycles(eqp)
	p.Cycles[MM] += dnum * m.elemCycles(2*eqp, m.Cfg.PipeMM)
	p.Cycles[MA] += dnum * m.elemCycles(2*eqp, m.Cfg.PipeMA)
	// ModDown: INTT both accumulators, RNSconv P→Q, subtract, multiply by
	// P^-1, NTT back.
	p.Cycles[NTT] += 2 * m.nttCycles(eqp)
	p.Cycles[MM] += 2 * m.elemCycles(n*alpha*l, m.Cfg.PipeMM)
	p.Cycles[MA] += 2 * m.elemCycles(n*alpha*l, m.Cfg.PipeMA)
	p.Cycles[MM] += 2 * m.elemCycles(e, m.Cfg.PipeMM)
	p.Cycles[MA] += 2 * m.elemCycles(e, m.Cfg.PipeMA)
	p.Cycles[NTT] += 2 * m.nttCycles(e)

	// Traffic: input poly in, two outputs out, and the key digits
	// streamed (2 components × dnum digits × extended basis).
	p.HBMBytes = m.words(e + 2*e + dnum*2*eqp)
	return p
}

// Keyswitch is the standalone basic operation (applied to one ciphertext
// component, as in relinearization or rotation).
func (m *Model) Keyswitch(limbs int) Profile {
	return m.keySwitchProfile(limbs)
}

// CMult is ciphertext-ciphertext multiplication with relinearization:
// the degree-2 tensor product (4 MM + 1 MA over components) followed by a
// keyswitch of d2 and the final additions.
func (m *Model) CMult(limbs int) Profile {
	e := float64(m.Params.N() * limbs)
	var p Profile
	p.Name = "CMult"
	p.Cycles[MM] = m.elemCycles(4*e, m.Cfg.PipeMM)
	p.Cycles[MA] = m.elemCycles(e, m.Cfg.PipeMA)
	p.HBMBytes = m.words(4*e + 2*e)
	p.add(m.keySwitchProfile(limbs))
	// Final accumulation of the keyswitch outputs into (d0, d1).
	p.Cycles[MA] += m.elemCycles(2*e, m.Cfg.PipeMA)
	p.Name = "CMult"
	return p
}

// Rescale divides by the last prime: INTT, the centered correction chain
// (MA+MM per remaining limb), and the forward transform of the result.
func (m *Model) Rescale(limbs int) Profile {
	if limbs < 2 {
		limbs = 2
	}
	n := float64(m.Params.N())
	e := n * float64(limbs)
	eOut := n * float64(limbs-1)
	var p Profile
	p.Name = "Rescale"
	p.Cycles[NTT] = 2*m.nttCycles(e) + 2*m.nttCycles(eOut)
	p.Cycles[MA] = m.elemCycles(2*eOut, m.Cfg.PipeMA)
	p.Cycles[MM] = m.elemCycles(2*eOut, m.Cfg.PipeMM)
	// The dropped-limb correction reuses scratchpad-resident data; only
	// the operands and results move.
	p.HBMBytes = m.words(2*e + 2*eOut)
	return p
}

// Rotation is automorphism on both components plus a keyswitch and the
// final addition.
func (m *Model) Rotation(limbs int) Profile {
	e := float64(m.Params.N() * limbs)
	var p Profile
	p.Name = "Rotation"
	p.Cycles[Auto] = m.autoCycles(2 * e)
	p.HBMBytes = m.words(4 * e)
	p.add(m.keySwitchProfile(limbs))
	p.Cycles[MA] += m.elemCycles(e, m.Cfg.PipeMA)
	p.Name = "Rotation"
	return p
}

// ModUp / ModDown exposed as standalone sub-operations (Eq. 1–3).
func (m *Model) ModUp(limbs int) Profile {
	n := float64(m.Params.N())
	alpha := float64(m.Params.Alpha)
	l := float64(limbs)
	var p Profile
	p.Name = "ModUp"
	p.Cycles[MM] = m.elemCycles(n*alpha*(l+alpha), m.Cfg.PipeMM)
	p.Cycles[MA] = m.elemCycles(n*alpha*(l+alpha), m.Cfg.PipeMA)
	p.HBMBytes = m.words(n*l + n*(l+alpha))
	return p
}

// LinTrans is one giant-step group of a double-hoisted BSGS linear
// transform: the per-diagonal plaintext MACs stay in the extended basis, so
// a group costs roughly one keyswitch pipeline (decompose + MAC + ModDown)
// plus the plaintext multiply-accumulates and the group automorphism and
// final addition. This is a coarse per-group estimate — the software
// evaluator amortizes the baby-step decomposition across groups, which the
// model does not attempt to split out.
func (m *Model) LinTrans(limbs int) Profile {
	e := float64(m.Params.N() * limbs)
	p := m.keySwitchProfile(limbs)
	p.Name = "LinTrans"
	// Two plaintext MACs (both ciphertext components) per group plus the
	// group automorphism and the accumulation into the running sum.
	p.Cycles[MM] += 2 * m.elemCycles(2*e, m.Cfg.PipeMM)
	p.Cycles[MA] += 2 * m.elemCycles(2*e, m.Cfg.PipeMA)
	p.Cycles[Auto] += m.autoCycles(2 * e)
	p.Cycles[MA] += m.elemCycles(2*e, m.Cfg.PipeMA)
	p.HBMBytes += m.words(2*e + 4*e)
	return p
}

// ModDown reduces the extended basis back to Q.
func (m *Model) ModDown(limbs int) Profile {
	n := float64(m.Params.N())
	alpha := float64(m.Params.Alpha)
	l := float64(limbs)
	var p Profile
	p.Name = "ModDown"
	p.Cycles[MM] = m.elemCycles(n*alpha*l+n*l, m.Cfg.PipeMM)
	p.Cycles[MA] = m.elemCycles(n*alpha*l+n*l, m.Cfg.PipeMA)
	p.HBMBytes = m.words(n*(l+alpha) + n*l)
	return p
}
