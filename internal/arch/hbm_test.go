package arch

import (
	"math"
	"testing"
)

func TestU280HBMGeometry(t *testing.T) {
	g := U280HBM()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Channels() != 32 {
		t.Errorf("channels=%d want 32 (2 stacks × 16)", g.Channels())
	}
	// The paper's theoretical bandwidth: ~460 GB/s.
	if gbs := g.PeakGBs(); math.Abs(gbs-460.8) > 1 {
		t.Errorf("peak %.1f GB/s want ≈460", gbs)
	}
}

func TestChannelsTouched(t *testing.T) {
	g := U280HBM()
	cases := []struct {
		bytes float64
		want  int
	}{
		{1, 1},
		{256, 1},
		{257, 2},
		{256 * 32, 32},
		{1e9, 32}, // capped at the channel count
	}
	for _, c := range cases {
		if got := g.ChannelsTouched(c.bytes); got != c.want {
			t.Errorf("ChannelsTouched(%.0f)=%d want %d", c.bytes, got, c.want)
		}
	}
}

func TestTransferSecondsScaling(t *testing.T) {
	g := U280HBM()
	if g.TransferSeconds(0) != 0 {
		t.Error("zero bytes take zero time")
	}
	// Small transfers use one channel; large ones the full array. A 1 MB
	// transfer must run ~32× faster per byte than a 256 B one.
	small := g.TransferSeconds(256) / 256
	large := g.TransferSeconds(1<<20) / (1 << 20)
	ratio := small / large
	if ratio < 28 || ratio > 36 {
		t.Errorf("per-byte speedup %f want ≈32 (full striping)", ratio)
	}
	// Full-array streaming must match the configured effective bandwidth.
	bytes := 1e9
	eff := bytes / g.TransferSeconds(bytes)
	want := g.PeakGBs() * 1e9 * g.StreamEff
	if math.Abs(eff-want)/want > 0.01 {
		t.Errorf("effective bandwidth %.3g B/s want %.3g", eff, want)
	}
}

func TestHBMValidate(t *testing.T) {
	bad := U280HBM()
	bad.Stacks = 0
	if bad.Validate() == nil {
		t.Error("zero stacks should fail")
	}
	bad = U280HBM()
	bad.StreamEff = 1.5
	if bad.Validate() == nil {
		t.Error("efficiency > 1 should fail")
	}
	bad = U280HBM()
	bad.StripeUnitByte = 0
	if bad.Validate() == nil {
		t.Error("zero stripe unit should fail")
	}
}

// The config's flat bandwidth numbers must be consistent with the
// channel-level geometry.
func TestConfigMatchesGeometry(t *testing.T) {
	cfg := U280()
	g := U280HBM()
	if math.Abs(cfg.HBMGBs-g.PeakGBs()) > 2 {
		t.Errorf("config peak %.1f GB/s vs geometry %.1f GB/s", cfg.HBMGBs, g.PeakGBs())
	}
	if math.Abs(cfg.HBMEfficiency-g.StreamEff) > 1e-9 {
		t.Errorf("config efficiency %.2f vs geometry %.2f", cfg.HBMEfficiency, g.StreamEff)
	}
}
