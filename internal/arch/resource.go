package arch

import (
	"math"

	"poseidon/internal/ntt"
)

// Resources counts FPGA primitives.
type Resources struct {
	LUT  int
	FF   int
	DSP  int
	BRAM int // 36Kb blocks
}

// Add sums resource vectors.
func (r Resources) Add(o Resources) Resources {
	return Resources{r.LUT + o.LUT, r.FF + o.FF, r.DSP + o.DSP, r.BRAM + o.BRAM}
}

// Scale multiplies by an integer factor.
func (r Resources) Scale(f int) Resources {
	return Resources{r.LUT * f, r.FF * f, r.DSP * f, r.BRAM * f}
}

// U280Capacity is the Alveo U280 device capacity, the denominator for
// utilization percentages.
var U280Capacity = Resources{LUT: 1303680, FF: 2607360, DSP: 9024, BRAM: 2016}

// CoreResources is the per-family resource model, calibrated at the paper's
// design point (512 lanes, k = 3) and *predicted* elsewhere: the lane and
// k sweeps of Fig 10/11 are genuine model outputs.
//
// The NTT model captures the two competing cost drivers behind the paper's
// k = 3 inflection:
//
//   - phase overhead — small k means more passes (ceil(logN/k)), each
//     needing stage buffering, reduction stations and control, so per-lane
//     cost carries a term ∝ passes;
//   - kernel density — a fused radix-2^k kernel performs 2^k−1 twiddle
//     multiplications per element and must store/mux W(k) twiddles, so
//     per-lane cost also carries terms ∝ (2^k−1)/k and W(k).
//
// Their sum is U-shaped with the minimum near k = 3 (for logN = 16),
// reproducing Fig 10.
type CoreResources struct {
	cfg  Config
	logN int
}

// NewCoreResources builds the model for a design point and ring size.
func NewCoreResources(cfg Config, logN int) *CoreResources {
	return &CoreResources{cfg: cfg, logN: logN}
}

// MACores is the modular-adder array: one comparator-subtractor per lane.
func (c *CoreResources) MACores() Resources {
	perLane := Resources{LUT: 78, FF: 96, DSP: 0, BRAM: 0}
	return perLane.Scale(c.cfg.Lanes)
}

// MMCores is the modular-multiplier array: each lane carries a full
// multiplier; the Barrett reduction multipliers live in the shared SBT.
func (c *CoreResources) MMCores() Resources {
	perLane := Resources{LUT: 214, FF: 342, DSP: 3, BRAM: 0}
	return perLane.Scale(c.cfg.Lanes)
}

// SBTCores is the shared Barrett reduction array serving MM and NTT.
func (c *CoreResources) SBTCores() Resources {
	perLane := Resources{LUT: 121, FF: 168, DSP: 2, BRAM: 0}
	return perLane.Scale(c.cfg.Lanes)
}

// NTTCores is the fused-NTT array for the configured fusion degree.
func (c *CoreResources) NTTCores() Resources {
	return c.NTTCoresAtK(c.cfg.FusionK)
}

// NTTCoresAtK evaluates the NTT array cost at an arbitrary fusion degree
// (the Fig 10 sweep).
func (c *CoreResources) NTTCoresAtK(k int) Resources {
	lanes := float64(c.cfg.Lanes)
	passes := math.Ceil(float64(c.logN) / float64(k))
	passesRef := math.Ceil(float64(c.logN) / 3.0)
	density := float64((int(1)<<uint(k))-1) / float64(k) // twiddle mults per element per stage
	densityRef := 7.0 / 3.0
	w := float64(ntt.FusedBlockCosts(k).Twiddles)
	wRef := 5.0

	// Calibration anchors at k=3, 512 lanes: LUT 280k, FF 352k, DSP 2304,
	// BRAM 640. The phase term carries the larger weight for logic (stage
	// buffering and control replicate per pass); the density and twiddle
	// terms take over at large k, yielding the k=3 minimum.
	phase := passes / passesRef
	dens := density / densityRef
	wScale := w / wRef

	lut := lanes / 512 * (190000*phase + 60000*dens + 30000*wScale)
	ff := lanes / 512 * (240000*phase + 75000*dens + 37000*wScale)
	dsp := lanes / 512 * (1400*phase + 904*dens)
	bram := lanes / 512 * (180*phase + 460*wScale)
	return Resources{LUT: int(lut), FF: int(ff), DSP: int(dsp), BRAM: int(bram)}
}

// AutoCores is the automorphism engine. The naive design resolves a single
// index per cycle (tiny); HFAuto pays sub-vector routing, FIFOs and the
// dual-port BRAM for the dimension switch — the Table VIII comparison.
func (c *CoreResources) AutoCores() Resources {
	if c.cfg.Auto == NaiveAutoCore {
		return Resources{LUT: 196, FF: 88, DSP: 0, BRAM: 1}
	}
	// Calibrated to Table VIII: FF 572, LUT 25,751 per engine at C = 512;
	// routing LUTs scale with C·log2(C) (the permutation network), FFs
	// with C.
	cWidth := float64(c.cfg.Lanes)
	routing := cWidth * math.Log2(math.Max(2, cWidth)) / (512 * 9)
	return Resources{
		LUT:  int(25751 * routing),
		FF:   int(572 * cWidth / 512),
		DSP:  0,
		BRAM: int(48 * cWidth / 512),
	}
}

// AutoLatencyCycles returns the cycles one automorphism of an N-element
// vector takes on the configured core — the Table VIII latency column.
func (c *CoreResources) AutoLatencyCycles(n int) int {
	if c.cfg.Auto == NaiveAutoCore {
		return n
	}
	return 4 * n / c.cfg.Lanes
}

// Total sums all core families plus the memory-system glue (HBM
// controllers, scratchpad interconnect).
func (c *CoreResources) Total() Resources {
	glue := Resources{LUT: 98000, FF: 131000, DSP: 0, BRAM: 320}
	return c.MACores().
		Add(c.MMCores()).
		Add(c.SBTCores()).
		Add(c.NTTCores()).
		Add(c.AutoCores()).
		Add(glue)
}

// Utilization returns the fraction of U280 capacity each primitive uses.
func (r Resources) Utilization() map[string]float64 {
	return map[string]float64{
		"LUT":  float64(r.LUT) / float64(U280Capacity.LUT),
		"FF":   float64(r.FF) / float64(U280Capacity.FF),
		"DSP":  float64(r.DSP) / float64(U280Capacity.DSP),
		"BRAM": float64(r.BRAM) / float64(U280Capacity.BRAM),
	}
}

// NTTTimeAtK estimates the per-NTT execution time (µs) at fusion degree k
// for an N-point, single-limb transform — the Fig 10 bottom-right panel.
// Large fused kernels stretch the critical path, derating the clock.
func (c *CoreResources) NTTTimeAtK(k int) float64 {
	passes := math.Ceil(float64(c.logN) / float64(k))
	n := float64(int(1) << uint(c.logN))
	freq := c.cfg.FreqMHz * 1e6
	if k > 3 {
		freq /= 1 + 0.35*float64(k-3) // deeper combinational fused kernel
	}
	cycles := passes*n/float64(c.cfg.Lanes) + float64(c.cfg.PipeNTT)
	return cycles / freq * 1e6
}
