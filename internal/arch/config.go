// Package arch models the Poseidon accelerator micro-architecture: the five
// operator core families (MA, MM, NTT, Automorphism, SBT), the 512-lane
// datapath, the HBM memory system and on-chip scratchpad, and the analytic
// resource and energy models. The package answers the questions the paper's
// evaluation asks — latency per FHE basic operation, per-operator time
// shares, HBM bandwidth utilization, FPGA resource counts, energy and EDP —
// as functions of the same design parameters the paper sweeps (fusion
// degree k, lane count, automorphism core design).
package arch

import "fmt"

// AutoKind selects the automorphism core design — the Table VIII/IX
// ablation.
type AutoKind int

const (
	// HFAutoCore is the paper's sub-vector automorphism: four pipelined
	// sub-vector stages, C elements per cycle.
	HFAutoCore AutoKind = iota
	// NaiveAutoCore resolves one index mapping per cycle (the
	// "straightforward design" baseline).
	NaiveAutoCore
)

func (a AutoKind) String() string {
	if a == NaiveAutoCore {
		return "Auto"
	}
	return "HFAuto"
}

// Config fixes one accelerator design point.
type Config struct {
	Lanes   int     // vector lanes (paper: 512)
	FusionK int     // NTT fusion degree (paper: 3)
	FreqMHz float64 // datapath clock

	HBMGBs        float64 // peak HBM bandwidth, GB/s (U280: 460)
	HBMEfficiency float64 // achievable fraction of peak on streaming

	ScratchpadMB float64 // on-chip scratchpad (paper: 8.6 MB)
	LimbBytes    int     // bytes per RNS limb word (paper: 4, 32-bit)

	Auto AutoKind

	// Pipeline fill depths per core family, in cycles.
	PipeMA, PipeMM, PipeNTT, PipeAuto int
}

// U280 returns the paper's design point on the Xilinx Alveo U280.
func U280() Config {
	return Config{
		Lanes:         512,
		FusionK:       3,
		FreqMHz:       300,
		HBMGBs:        460,
		HBMEfficiency: 0.85,
		ScratchpadMB:  8.6,
		LimbBytes:     4,
		Auto:          HFAutoCore,
		PipeMA:        4,
		PipeMM:        18,
		PipeNTT:       32,
		PipeAuto:      16,
	}
}

// Validate checks the design point for basic sanity.
func (c Config) Validate() error {
	if c.Lanes < 1 || c.Lanes&(c.Lanes-1) != 0 {
		return fmt.Errorf("arch: lanes=%d must be a power of two", c.Lanes)
	}
	if c.FusionK < 1 || c.FusionK > 6 {
		return fmt.Errorf("arch: fusion k=%d out of range [1,6]", c.FusionK)
	}
	if c.FreqMHz <= 0 || c.HBMGBs <= 0 {
		return fmt.Errorf("arch: frequency and bandwidth must be positive")
	}
	if c.LimbBytes != 4 && c.LimbBytes != 8 {
		return fmt.Errorf("arch: limb width %d bytes unsupported (4 or 8)", c.LimbBytes)
	}
	return nil
}

// EffectiveHBM returns the achievable bandwidth in bytes/second.
func (c Config) EffectiveHBM() float64 {
	return c.HBMGBs * 1e9 * c.HBMEfficiency
}

// CyclesPerSec returns the clock rate in Hz.
func (c Config) CyclesPerSec() float64 { return c.FreqMHz * 1e6 }

// FHEParams describes the ciphertext geometry a workload runs under.
type FHEParams struct {
	LogN  int
	Limbs int // L+1: RNS limbs of a full-level ciphertext
	Alpha int // special primes (keyswitch digit width)
}

// N returns the ring degree.
func (p FHEParams) N() int { return 1 << uint(p.LogN) }

// Dnum returns the keyswitch digit count at the given limb count.
func (p FHEParams) Dnum(limbs int) int {
	return (limbs + p.Alpha - 1) / p.Alpha
}

// PaperParams is the evaluation parameter set used for the Table IV / Fig 7
// experiments (N = 2^16, L = 44, α = 4).
func PaperParams() FHEParams {
	return FHEParams{LogN: 16, Limbs: 45, Alpha: 4}
}
