package arch

import (
	"encoding/json"
	"testing"

	"poseidon/internal/trace"
)

// TestReportCalibJSONRoundTrip proves the calibration block survives the
// Report's JSON encoding unchanged — the benchtelemetry artifact depends on
// these numbers arriving intact.
func TestReportCalibJSONRoundTrip(t *testing.T) {
	rep := Report{
		Name:      "calib-roundtrip",
		TotalTime: 1.5,
		Calib: &trace.CalibStats{
			Workload: "chain",
			PerKind: []trace.KindCalib{
				{Kind: trace.CMult, Name: "CMult", Count: 12, MeasuredSec: 0.024, ModeledSec: 0.006, Ratio: 4.0},
				{Kind: trace.Rescale, Name: "Rescale", Count: 12, MeasuredSec: 0.003, ModeledSec: 0.003, Ratio: 1.0},
			},
			GeomeanRatio: 2.0,
			MinRatio:     1.0,
			MaxRatio:     4.0,
		},
	}

	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Calib == nil {
		t.Fatal("Calib lost in round trip")
	}
	if back.Calib.Workload != "chain" {
		t.Fatalf("workload = %q", back.Calib.Workload)
	}
	if len(back.Calib.PerKind) != 2 {
		t.Fatalf("PerKind = %+v", back.Calib.PerKind)
	}
	for i, kc := range back.Calib.PerKind {
		orig := rep.Calib.PerKind[i]
		if kc != orig {
			t.Fatalf("PerKind[%d] = %+v, want %+v", i, kc, orig)
		}
	}
	if back.Calib.GeomeanRatio != 2.0 || back.Calib.MinRatio != 1.0 || back.Calib.MaxRatio != 4.0 {
		t.Fatalf("drift summary = %+v", back.Calib)
	}

	// A report without calibration must omit the key entirely.
	blob, err = json.Marshal(Report{Name: "no-calib"})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	if _, ok := m["Calib"]; ok {
		t.Fatal("nil Calib should be omitted from JSON")
	}
}
