package arch

import (
	"math"
	"testing"
)

func testModel(t testing.TB) *Model {
	t.Helper()
	m, err := NewModel(U280(), PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	good := U280()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.Lanes = 100
	if bad.Validate() == nil {
		t.Error("non-power-of-two lanes should fail")
	}
	bad = good
	bad.FusionK = 9
	if bad.Validate() == nil {
		t.Error("k out of range should fail")
	}
	bad = good
	bad.LimbBytes = 3
	if bad.Validate() == nil {
		t.Error("odd limb width should fail")
	}
	bad = good
	bad.FreqMHz = 0
	if bad.Validate() == nil {
		t.Error("zero frequency should fail")
	}
}

func TestNewModelRejectsBadParams(t *testing.T) {
	if _, err := NewModel(U280(), FHEParams{LogN: 2, Limbs: 1, Alpha: 1}); err == nil {
		t.Error("tiny LogN should fail")
	}
	if _, err := NewModel(U280(), FHEParams{LogN: 16, Limbs: 0, Alpha: 1}); err == nil {
		t.Error("zero limbs should fail")
	}
}

func TestDnum(t *testing.T) {
	p := FHEParams{LogN: 16, Limbs: 45, Alpha: 4}
	if got := p.Dnum(45); got != 12 {
		t.Errorf("Dnum(45)=%d want 12", got)
	}
	if got := p.Dnum(4); got != 1 {
		t.Errorf("Dnum(4)=%d want 1", got)
	}
	if got := p.Dnum(5); got != 2 {
		t.Errorf("Dnum(5)=%d want 2", got)
	}
}

// Simple ops must be memory-bound, complex ops compute-bound — the Table
// VII observation that simple operations consume the most bandwidth.
func TestBandwidthCharacter(t *testing.T) {
	m := testModel(t)
	l := m.Params.Limbs

	hadd := m.HAdd(l)
	if u := m.BandwidthUtilization(hadd); u < 0.7 {
		t.Errorf("HAdd bandwidth utilization %.2f, want ≥ 0.7 (memory-bound)", u)
	}
	ks := m.Keyswitch(l)
	if u := m.BandwidthUtilization(ks); u > 0.8 {
		t.Errorf("Keyswitch bandwidth utilization %.2f, want < 0.8 (compute-heavy)", u)
	}
	rs := m.Rescale(l)
	if m.BandwidthUtilization(rs) >= m.BandwidthUtilization(hadd) {
		t.Error("Rescale should utilize less bandwidth than HAdd")
	}
}

// Latency ordering must match the paper: HAdd < PMult < Rescale < Rotation
// ≈ Keyswitch < CMult (Table IV inverse throughput).
func TestLatencyOrdering(t *testing.T) {
	m := testModel(t)
	l := m.Params.Limbs
	tHAdd := m.Latency(m.HAdd(l))
	tPMult := m.Latency(m.PMult(l))
	tRescale := m.Latency(m.Rescale(l))
	tKS := m.Latency(m.Keyswitch(l))
	tRot := m.Latency(m.Rotation(l))
	tCMult := m.Latency(m.CMult(l))

	// HAdd and PMult are both memory-bound streamers; HAdd moves slightly
	// more bytes (two full ciphertexts in) so they sit within 2× of each
	// other at the bottom of the ordering.
	if tHAdd > 2*tPMult || tPMult > 2*tHAdd {
		t.Errorf("HAdd (%.3g) and PMult (%.3g) should be comparable", tHAdd, tPMult)
	}
	if !(tPMult < tRescale) {
		t.Errorf("PMult (%.3g) should be < Rescale (%.3g)", tPMult, tRescale)
	}
	if !(tRescale < tKS) {
		t.Errorf("Rescale (%.3g) should be < Keyswitch (%.3g)", tRescale, tKS)
	}
	if !(tKS <= tRot) {
		t.Errorf("Keyswitch (%.3g) should be ≤ Rotation (%.3g)", tKS, tRot)
	}
	if !(tRot <= tCMult*1.2) {
		t.Errorf("Rotation (%.3g) should be ≈≤ CMult (%.3g)", tRot, tCMult)
	}
}

// The naive automorphism core must slow Rotation by roughly an order of
// magnitude (Table IX ablation).
func TestNaiveAutoAblation(t *testing.T) {
	cfg := U280()
	hf, _ := NewModel(cfg, PaperParams())
	cfg.Auto = NaiveAutoCore
	nv, _ := NewModel(cfg, PaperParams())
	l := hf.Params.Limbs

	tHF := hf.Latency(hf.AutomorphismOp(l))
	tNV := nv.Latency(nv.AutomorphismOp(l))
	ratio := tNV / tHF
	if ratio < 5 {
		t.Errorf("naive automorphism only %.1f× slower; expected ≫5×", ratio)
	}
}

// Lane scaling: performance improves with lanes but saturates against the
// bandwidth wall (Fig 11).
func TestLaneScalingSaturates(t *testing.T) {
	params := PaperParams()
	var prev float64
	var speedups []float64
	base := 0.0
	// A benchmark-like mix: memory-bound streamers saturate against the
	// bandwidth wall while the compute-bound ops keep scaling.
	mix := func(m *Model) float64 {
		l := params.Limbs
		return m.Latency(m.CMult(l)) + 10*m.Latency(m.HAdd(l)) +
			10*m.Latency(m.PMult(l)) + m.Latency(m.Rotation(l))
	}
	for _, lanes := range []int{64, 128, 256, 512} {
		cfg := U280()
		cfg.Lanes = lanes
		m, err := NewModel(cfg, params)
		if err != nil {
			t.Fatal(err)
		}
		tt := mix(m)
		if base == 0 {
			base = tt
		}
		if prev != 0 && tt > prev {
			t.Errorf("lanes=%d: latency increased (%.3g > %.3g)", lanes, tt, prev)
		}
		prev = tt
		speedups = append(speedups, base/tt)
	}
	// Speedup from 64→128 must exceed speedup from 256→512 (saturation).
	early := speedups[1] / speedups[0]
	late := speedups[3] / speedups[2]
	if late >= early {
		t.Errorf("lane scaling should saturate: early gain %.2f×, late gain %.2f×", early, late)
	}
}

// Fusion sweep: resources and NTT time must both show the k=3 inflection
// (Fig 10).
func TestFusionInflectionAtK3(t *testing.T) {
	cr := NewCoreResources(U280(), 16)
	lutMin, lutArg := math.MaxFloat64, 0
	timeMin, timeArg := math.MaxFloat64, 0
	for k := 1; k <= 6; k++ {
		r := cr.NTTCoresAtK(k)
		if float64(r.LUT) < lutMin {
			lutMin, lutArg = float64(r.LUT), k
		}
		tm := cr.NTTTimeAtK(k)
		if tm < timeMin {
			timeMin, timeArg = tm, k
		}
	}
	if lutArg != 3 {
		t.Errorf("LUT minimum at k=%d, want 3", lutArg)
	}
	if timeArg != 3 && timeArg != 4 {
		t.Errorf("NTT time minimum at k=%d, want 3 (or 4)", timeArg)
	}
}

func TestResourcesFitU280(t *testing.T) {
	cr := NewCoreResources(U280(), 16)
	total := cr.Total()
	util := total.Utilization()
	for prim, u := range util {
		if u <= 0 || u >= 1 {
			t.Errorf("%s utilization %.2f outside (0,1)", prim, u)
		}
	}
	// DSP should be the most-used primitive (the paper: "Poseidon consumes
	// more DSPs").
	if util["DSP"] <= util["LUT"] || util["DSP"] <= util["BRAM"] {
		t.Errorf("DSP should dominate utilization: %+v", util)
	}
}

func TestAutoCoreResourceAblation(t *testing.T) {
	cfgHF := U280()
	crHF := NewCoreResources(cfgHF, 16)
	cfgNV := U280()
	cfgNV.Auto = NaiveAutoCore
	crNV := NewCoreResources(cfgNV, 16)

	hf := crHF.AutoCores()
	nv := crNV.AutoCores()
	if hf.LUT <= nv.LUT || hf.FF <= nv.FF {
		t.Error("HFAuto must cost more resources than the naive core")
	}
	// Latency flips the other way (Table VIII).
	n := 1 << 16
	if crHF.AutoLatencyCycles(n) >= crNV.AutoLatencyCycles(n) {
		t.Error("HFAuto must be faster than the naive core")
	}
	if got := crHF.AutoLatencyCycles(n); got != 512 {
		t.Errorf("HFAuto latency for N=2^16 at C=512: %d cycles, want 512", got)
	}
}

// Energy: memory access must dominate; among cores, MM and NTT must lead
// (Fig 12).
func TestEnergyBreakdownShape(t *testing.T) {
	m := testModel(t)
	e := DefaultEnergy()
	p := m.CMult(m.Params.Limbs)
	b := e.Energy(m, p)
	total := b.Total()
	if b.HBM < 0.3*total {
		t.Errorf("HBM energy share %.2f, expected dominant", b.HBM/total)
	}
	if b.MM+b.NTT < b.MA+b.Auto {
		t.Error("MM+NTT should dominate core energy")
	}
	if edp := e.EDP(m, p); edp <= 0 {
		t.Error("EDP must be positive")
	}
}

// Shares must sum to 1 and reflect the op structure: HAdd is all MA+Mem,
// PMult all MM+Mem, Rotation includes every family.
func TestShares(t *testing.T) {
	m := testModel(t)
	l := m.Params.Limbs
	for _, p := range []Profile{m.HAdd(l), m.PMult(l), m.CMult(l), m.Rotation(l), m.Rescale(l), m.Keyswitch(l)} {
		s := m.Shares(p)
		sum := 0.0
		for _, v := range s {
			if v < -1e-9 {
				t.Errorf("%s: negative share", p.Name)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: shares sum to %.4f", p.Name, sum)
		}
	}
	hadd := m.Shares(m.HAdd(l))
	if hadd[MM] != 0 || hadd[NTT] != 0 || hadd[Auto] != 0 {
		t.Error("HAdd should only use MA and Mem")
	}
	rot := m.Shares(m.Rotation(l))
	if rot[Auto] == 0 || rot[NTT] == 0 || rot[MM] == 0 || rot[MA] == 0 {
		t.Error("Rotation should exercise all four operator families")
	}
}

// Throughput sanity: the model must land within an order of magnitude of
// the paper's Poseidon column in Table IV.
func TestTableIVBallpark(t *testing.T) {
	m := testModel(t)
	l := m.Params.Limbs
	cases := []struct {
		name  string
		prof  Profile
		paper float64 // ops/s from Table IV
	}{
		{"PMult", m.PMult(l), 13310},
		{"CMult", m.CMult(l), 273},
		{"Keyswitch", m.Keyswitch(l), 312},
		{"Rotation", m.Rotation(l), 302},
		{"Rescale", m.Rescale(l), 3948},
	}
	for _, c := range cases {
		got := 1 / m.Latency(c.prof)
		ratio := got / c.paper
		if ratio < 0.1 || ratio > 10 {
			t.Errorf("%s: model %.0f op/s vs paper %.0f op/s (ratio %.2f) — out of band",
				c.name, got, c.paper, ratio)
		}
	}
}
