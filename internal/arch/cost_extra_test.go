package arch

import (
	"testing"

	"poseidon/internal/trace"
)

func TestProfileArithmetic(t *testing.T) {
	m := testModel(t)
	a := m.HAdd(10)
	b := m.PMult(10)
	sum := a
	sum.Cycles = a.Cycles
	sum.HBMBytes = a.HBMBytes
	sumCopy := sum
	sumCopy.HBMBytes += b.HBMBytes
	if sumCopy.HBMBytes <= a.HBMBytes {
		t.Error("byte accumulation failed")
	}
	if a.TotalComputeCycles() <= 0 {
		t.Error("compute cycles must be positive")
	}
}

func TestModUpModDownProfiles(t *testing.T) {
	m := testModel(t)
	up := m.ModUp(20)
	down := m.ModDown(20)
	for _, p := range []Profile{up, down} {
		if p.Cycles[MM] <= 0 || p.Cycles[MA] <= 0 {
			t.Errorf("%s must use MM and MA", p.Name)
		}
		if p.Cycles[NTT] != 0 || p.Cycles[Auto] != 0 {
			t.Errorf("%s must not use NTT or Auto", p.Name)
		}
		if p.HBMBytes <= 0 {
			t.Errorf("%s must move data", p.Name)
		}
	}
	if up.Name != "ModUp" || down.Name != "ModDown" {
		t.Error("profile names wrong")
	}
}

func TestProfileForCoversAllKinds(t *testing.T) {
	m := testModel(t)
	for _, k := range trace.Kinds() {
		p := m.ProfileFor(k, 10)
		if p.TotalComputeCycles() <= 0 && p.HBMBytes <= 0 {
			t.Errorf("%v: empty profile", k)
		}
	}
}

func TestOperatorStrings(t *testing.T) {
	want := map[Operator]string{
		MA: "MA", MM: "MM", NTT: "NTT", Auto: "Automorphism", Mem: "Mem",
	}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%d: %q want %q", int(op), op.String(), s)
		}
	}
	if Operator(99).String() == "" {
		t.Error("unknown operator should still render")
	}
	if HFAutoCore.String() != "HFAuto" || NaiveAutoCore.String() != "Auto" {
		t.Error("AutoKind strings wrong")
	}
}

func TestLatencyScalesWithLevel(t *testing.T) {
	m := testModel(t)
	for _, mk := range []func(int) Profile{m.HAdd, m.PMult, m.CMult, m.Keyswitch, m.Rotation, m.Rescale, m.NTTOp} {
		lo := m.Latency(mk(5))
		hi := m.Latency(mk(40))
		if hi <= lo {
			t.Errorf("%s: latency must grow with limb count (%.3g vs %.3g)",
				mk(5).Name, lo, hi)
		}
	}
}

func TestRescaleMinimumLimbs(t *testing.T) {
	m := testModel(t)
	// Rescale at 1 limb is clamped to the 2-limb cost, not a panic.
	p := m.Rescale(1)
	if p.TotalComputeCycles() <= 0 {
		t.Error("clamped rescale must still cost something")
	}
}

func TestEnergyBreakdownFields(t *testing.T) {
	m := testModel(t)
	em := DefaultEnergy()
	b := em.Energy(m, m.Rotation(30))
	if b.Auto <= 0 {
		t.Error("rotation must spend automorphism energy")
	}
	if b.Static <= 0 {
		t.Error("static energy must accrue")
	}
	total := b.MA + b.MM + b.NTT + b.Auto + b.HBM + b.Static
	if b.Total() != total {
		t.Error("Total() disagrees with the sum of fields")
	}
}

// Naive automorphism energy accounting uses a single serial core.
func TestNaiveAutoEnergyAccounting(t *testing.T) {
	cfgN := U280()
	cfgN.Auto = NaiveAutoCore
	naive, _ := NewModel(cfgN, PaperParams())
	hf := testModel(t)
	em := DefaultEnergy()

	// Same element count flows through either core design, so automorphism
	// energy (per-element) should be comparable even though cycles differ
	// by the lane factor.
	eN := em.Energy(naive, naive.AutomorphismOp(10)).Auto
	eH := em.Energy(hf, hf.AutomorphismOp(10)).Auto
	ratio := eN / eH
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("auto energy ratio %.2f should be O(1) (same work)", ratio)
	}
}
