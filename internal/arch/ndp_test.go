package arch

import (
	"testing"

	"poseidon/internal/workloads"
)

func TestSmartSSDValidates(t *testing.T) {
	if err := SmartSSD().Validate(); err != nil {
		t.Fatalf("SmartSSD config invalid: %v", err)
	}
}

// The NDP variant must be slower but far more energy-proportional on
// memory-heavy work: its energy per benchmark should drop even though time
// rises.
func TestNDPTradeoff(t *testing.T) {
	hbm, err := NewModel(U280(), PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	ndp, err := NewModel(SmartSSD(), PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	tr := workloads.PackedBootstrapping(workloads.PaperSpec())

	repHBM := Simulate(hbm, DefaultEnergy(), tr)
	repNDP := Simulate(ndp, NDPEnergy(), tr)

	if repNDP.TotalTime <= repHBM.TotalTime {
		t.Errorf("NDP should be slower: %.3g vs %.3g s", repNDP.TotalTime, repHBM.TotalTime)
	}
	// The NDP win is in data movement: bytes cost ~6× less to move, so the
	// memory component of the energy must fall sharply even though the
	// longer runtime accrues more static energy overall.
	bHBM := SimulateEnergyBreakdown(hbm, DefaultEnergy(), tr)
	bNDP := SimulateEnergyBreakdown(ndp, NDPEnergy(), tr)
	if bNDP.HBM >= bHBM.HBM/3 {
		t.Errorf("NDP data-movement energy %.3g J should be ≪ HBM's %.3g J", bNDP.HBM, bHBM.HBM)
	}
}

// The paper's 8.6 MB scratchpad must hold Rescale's working set (enabling
// its low bandwidth utilization) but not a full keyswitch at top level
// (which streams keys instead).
func TestScratchpadSizingRationale(t *testing.T) {
	m, err := NewModel(U280(), PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	l := m.Params.Limbs

	// At a mid-pipeline level the rescale working set is resident.
	midLimbs := 7
	if !m.FitsScratchpad(m.Rescale(midLimbs), midLimbs) {
		t.Error("Rescale at mid level should fit the scratchpad")
	}
	// A full-level keyswitch cannot be resident.
	if m.FitsScratchpad(m.Keyswitch(l), l) {
		t.Error("full-level keyswitch should exceed the scratchpad (it streams)")
	}
	// Working sets must grow with level.
	if m.WorkingSetBytes(m.HAdd(10), 10) >= m.WorkingSetBytes(m.HAdd(40), 40) {
		t.Error("working set must grow with limb count")
	}
}
