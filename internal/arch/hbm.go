package arch

import "fmt"

// HBM channel-level model. The paper's memory system is two HBM2 stacks of
// 16 channels each, every channel 64 bits wide at up to 1800 Mbps — a
// theoretical 460 GB/s. A polynomial vector is striped across channels
// ("we can abstract the multi-channel HBM into a vector memory"), so the
// achievable bandwidth of a transfer depends on how many channels its
// stripe actually touches and on the per-channel streaming efficiency.
type HBMGeometry struct {
	Stacks         int     // HBM2 stacks on the device
	ChannelsPer    int     // channels per stack
	ChannelBits    int     // data width per channel
	GbpsPerPin     float64 // per-pin data rate, Gbps
	StreamEff      float64 // sequential-burst efficiency
	StripeUnitByte int     // bytes of one stripe unit per channel
}

// U280HBM returns the Alveo U280 geometry the paper reports.
func U280HBM() HBMGeometry {
	return HBMGeometry{
		Stacks:         2,
		ChannelsPer:    16,
		ChannelBits:    64,
		GbpsPerPin:     1.8,
		StreamEff:      0.85,
		StripeUnitByte: 256,
	}
}

// Channels is the total channel count.
func (g HBMGeometry) Channels() int { return g.Stacks * g.ChannelsPer }

// PeakBytesPerSec is the aggregate theoretical bandwidth.
func (g HBMGeometry) PeakBytesPerSec() float64 {
	return float64(g.Channels()) * float64(g.ChannelBits) / 8 * g.GbpsPerPin * 1e9 / 8 * 8
}

// PeakGBs is the aggregate bandwidth in GB/s (the paper's "460 GB/s").
func (g HBMGeometry) PeakGBs() float64 {
	// channels × width(bytes) × rate(GT/s): 32 × 8 B × 1.8 G/s = 460.8 GB/s
	return float64(g.Channels()) * float64(g.ChannelBits) / 8 * g.GbpsPerPin
}

// ChannelsTouched reports how many channels a transfer of `bytes` striped
// in StripeUnitByte units occupies (capped at the channel count).
func (g HBMGeometry) ChannelsTouched(bytes float64) int {
	units := int(bytes) / g.StripeUnitByte
	if int(bytes)%g.StripeUnitByte != 0 {
		units++
	}
	if units > g.Channels() {
		return g.Channels()
	}
	if units < 1 {
		return 1
	}
	return units
}

// TransferSeconds models one streaming transfer: bandwidth scales with the
// channels the stripe covers, derated by the streaming efficiency.
func (g HBMGeometry) TransferSeconds(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	chans := float64(g.ChannelsTouched(bytes))
	perChan := float64(g.ChannelBits) / 8 * g.GbpsPerPin * 1e9 * g.StreamEff
	return bytes / (chans * perChan)
}

// Validate sanity-checks the geometry.
func (g HBMGeometry) Validate() error {
	if g.Stacks < 1 || g.ChannelsPer < 1 || g.ChannelBits < 8 {
		return fmt.Errorf("arch: degenerate HBM geometry %+v", g)
	}
	if g.GbpsPerPin <= 0 || g.StreamEff <= 0 || g.StreamEff > 1 {
		return fmt.Errorf("arch: invalid HBM rates %+v", g)
	}
	if g.StripeUnitByte < 1 {
		return fmt.Errorf("arch: invalid stripe unit %d", g.StripeUnitByte)
	}
	return nil
}
