package automorph

import (
	"math/rand"
	"testing"
)

// HFAuto must compose like the group it implements: applying g1 then g2
// equals applying g1·g2 mod 2N.
func TestHFAutoComposition(t *testing.T) {
	n, c := 256, 16
	h, err := NewHFAuto(n, c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(140))
	src := randomVec(rng, n)

	for _, pair := range [][2]uint64{{3, 5}, {5, 25}, {7, uint64(2*n - 1)}, {9, 11}} {
		g1, g2 := pair[0], pair[1]
		tmp := make([]uint64, n)
		twice := make([]uint64, n)
		h.Precompute(g1).Apply(tmp, src, testMod)
		h.Precompute(g2).Apply(twice, tmp, testMod)

		once := make([]uint64, n)
		h.Precompute(g1*g2%uint64(2*n)).Apply(once, src, testMod)
		for i := range once {
			if once[i] != twice[i] {
				t.Fatalf("g1=%d g2=%d: composition mismatch at %d", g1, g2, i)
			}
		}
	}
}

// The inverse Galois element must undo the map (HFAuto is a signed
// permutation, hence invertible).
func TestHFAutoInverse(t *testing.T) {
	n, c := 512, 32
	h, err := NewHFAuto(n, c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(141))
	twoN := uint64(2 * n)
	for _, g := range []uint64{3, 5, 13, 77} {
		gInv := uint64(0)
		for cand := uint64(1); cand < twoN; cand += 2 {
			if cand*g%twoN == 1 {
				gInv = cand
				break
			}
		}
		if gInv == 0 {
			t.Fatalf("no inverse for %d", g)
		}
		src := randomVec(rng, n)
		fwd := make([]uint64, n)
		back := make([]uint64, n)
		h.Precompute(g).Apply(fwd, src, testMod)
		h.Precompute(gInv).Apply(back, fwd, testMod)
		for i := range src {
			if back[i] != src[i] {
				t.Fatalf("g=%d: inverse does not restore index %d", g, i)
			}
		}
	}
}

// Precompute must be reusable across many applications (the paper reuses
// one routing across all RNS limbs and ciphertext components).
func TestMapReuse(t *testing.T) {
	n, c := 128, 8
	h, _ := NewHFAuto(n, c)
	m := h.Precompute(5)
	rng := rand.New(rand.NewSource(142))
	for rep := 0; rep < 5; rep++ {
		src := randomVec(rng, n)
		want := make([]uint64, n)
		Naive(want, src, 5, testMod)
		got := make([]uint64, n)
		m.Apply(got, src, testMod)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("rep %d: reused map diverged", rep)
			}
		}
	}
}
