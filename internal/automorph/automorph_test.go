package automorph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"poseidon/internal/numeric"
)

var testMod = numeric.NewModulus(1073479681)

func randomVec(rng *rand.Rand, n int) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = rng.Uint64() % testMod.Q
	}
	return v
}

func TestNaiveIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := randomVec(rng, 64)
	dst := make([]uint64, 64)
	Naive(dst, src, 1, testMod)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("g=1 should be identity, mismatch at %d", i)
		}
	}
}

func TestNaiveEvenGaloisPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("even Galois element should panic")
		}
	}()
	Naive(make([]uint64, 8), make([]uint64, 8), 4, testMod)
}

// The automorphism must be a ring homomorphism: applying g to the
// negacyclic product equals the product of the images. We verify on
// polynomial evaluation semantics: (sigma_g a)(X) = a(X^g) mod X^N+1.
func TestNaiveIsSubstitution(t *testing.T) {
	n := 16
	rng := rand.New(rand.NewSource(2))
	a := randomVec(rng, n)
	g := uint64(3)
	dst := make([]uint64, n)
	Naive(dst, a, g, testMod)

	// Build a(X^g) by schoolbook substitution with negacyclic wraparound.
	want := make([]uint64, n)
	for i := 0; i < n; i++ {
		e := (i * int(g)) % (2 * n)
		neg := false
		if e >= n {
			e -= n
			neg = true
		}
		v := a[i]
		if neg {
			v = testMod.Neg(v)
		}
		want[e] = testMod.Add(want[e], v)
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("substitution mismatch at %d: %d != %d", i, dst[i], want[i])
		}
	}
}

func TestNaiveComposition(t *testing.T) {
	// sigma_g1 ∘ sigma_g2 = sigma_(g1·g2 mod 2N)
	n := 128
	rng := rand.New(rand.NewSource(3))
	a := randomVec(rng, n)
	g1, g2 := uint64(5), uint64(9)

	tmp := make([]uint64, n)
	d1 := make([]uint64, n)
	Naive(tmp, a, g2, testMod)
	Naive(d1, tmp, g1, testMod)

	d2 := make([]uint64, n)
	Naive(d2, a, g1*g2%(uint64(2*n)), testMod)

	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("composition mismatch at %d", i)
		}
	}
}

func TestNewHFAutoErrors(t *testing.T) {
	if _, err := NewHFAuto(15, 4); err == nil {
		t.Error("non-power-of-two N should error")
	}
	if _, err := NewHFAuto(16, 3); err == nil {
		t.Error("non-power-of-two C should error")
	}
	if _, err := NewHFAuto(16, 32); err == nil {
		t.Error("C > N should error")
	}
}

func TestHFAutoMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{16, 64, 256, 1024, 4096} {
		for _, c := range []int{1, 4, 16, n / 2, n} {
			if c > n || c < 1 {
				continue
			}
			h, err := NewHFAuto(n, c)
			if err != nil {
				t.Fatalf("NewHFAuto(%d,%d): %v", n, c, err)
			}
			for _, g := range []uint64{1, 3, 5, 7, 25, uint64(2*n - 1), uint64(2*n + 3)} {
				src := randomVec(rng, n)
				want := make([]uint64, n)
				Naive(want, src, g, testMod)
				got := make([]uint64, n)
				h.Precompute(g).Apply(got, src, testMod)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("N=%d C=%d g=%d: HFAuto mismatch at index %d (got %d want %d)",
							n, c, g, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// Property: for random odd g and random data, HFAuto equals Naive.
func TestHFAutoEquivalenceProperty(t *testing.T) {
	n, c := 512, 32
	h, err := NewHFAuto(n, c)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, gRaw uint64) bool {
		g := gRaw | 1 // force odd
		rng := rand.New(rand.NewSource(seed))
		src := randomVec(rng, n)
		want := make([]uint64, n)
		got := make([]uint64, n)
		Naive(want, src, g, testMod)
		h.Precompute(g).Apply(got, src, testMod)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHFAutoIsPermutationWithSigns(t *testing.T) {
	// Every source element must appear exactly once in the output, possibly
	// negated: applying to the all-distinct vector 1..N must yield a signed
	// permutation of it.
	n, c := 256, 16
	h, _ := NewHFAuto(n, c)
	src := make([]uint64, n)
	for i := range src {
		src[i] = uint64(i + 1)
	}
	dst := make([]uint64, n)
	h.Precompute(7).Apply(dst, src, testMod)
	seen := make(map[uint64]bool)
	for _, v := range dst {
		orig := v
		if v > testMod.Q/2 {
			orig = testMod.Q - v // undo negation
		}
		if orig == 0 || orig > uint64(n) {
			t.Fatalf("unexpected value %d in output", v)
		}
		if seen[orig] {
			t.Fatalf("duplicate source element %d", orig)
		}
		seen[orig] = true
	}
	if len(seen) != n {
		t.Fatalf("only %d/%d source elements present", len(seen), n)
	}
}

func TestGaloisElementForRotation(t *testing.T) {
	n := 16
	if g := GaloisElementForRotation(0, n); g != 1 {
		t.Errorf("rotation by 0 should be identity, got g=%d", g)
	}
	if g := GaloisElementForRotation(1, n); g != 5 {
		t.Errorf("rotation by 1: g=%d want 5", g)
	}
	if g := GaloisElementForRotation(2, n); g != 25 {
		t.Errorf("rotation by 2: g=%d want 25", g)
	}
	// Rotation by slots (N/2) wraps to identity.
	if g := GaloisElementForRotation(n/2, n); g != 1 {
		t.Errorf("full-cycle rotation: g=%d want 1", g)
	}
	// Negative rotation is the inverse element.
	gPos := GaloisElementForRotation(3, n)
	gNeg := GaloisElementForRotation(-3, n)
	if gPos*gNeg%uint64(2*n) != 1 {
		t.Errorf("g(3)·g(-3) = %d mod 2N, want 1", gPos*gNeg%uint64(2*n))
	}
	if g := GaloisElementConjugate(n); g != uint64(2*n-1) {
		t.Errorf("conjugate element %d want %d", g, 2*n-1)
	}
}

func BenchmarkNaive(b *testing.B) {
	n := 65536
	src := randomVec(rand.New(rand.NewSource(1)), n)
	dst := make([]uint64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Naive(dst, src, 5, testMod)
	}
}

func BenchmarkHFAuto(b *testing.B) {
	n := 65536
	h, _ := NewHFAuto(n, 512)
	m := h.Precompute(5)
	src := randomVec(rand.New(rand.NewSource(1)), n)
	dst := make([]uint64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Apply(dst, src, testMod)
	}
}
