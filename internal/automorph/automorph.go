// Package automorph implements the Galois automorphism X ↦ X^g on
// negacyclic polynomial rings Z_q[X]/(X^N+1), the index-remapping operator
// behind CKKS slot rotation and conjugation.
//
// Two implementations are provided:
//
//   - Naive: the direct per-element index map i ↦ i·g mod N with the
//     negacyclic sign fix-up of Eq. 4 — simple in software, hostile to
//     hardware because consecutive outputs land in arbitrary lanes.
//   - HFAuto: the paper's hardware-friendly reformulation. The length-N
//     vector is viewed as an R×C matrix (C = lane width, R = N/C) and the
//     map factors into a row permutation, a per-column cyclic row shift, a
//     dimension switch, and a column permutation — all sub-vector-granular
//     operations (Section III-B and Fig. 6 of the paper).
//
// Both are bit-exact; property tests enforce equivalence.
package automorph

import (
	"fmt"

	"poseidon/internal/numeric"
)

// Naive applies the automorphism a(X) ↦ a(X^g) mod (X^N+1, q) element by
// element: coefficient i of src contributes ±src[i] to index i·g mod N of
// dst, negated when i·g mod 2N ≥ N. g must be odd; dst and src must not
// alias.
func Naive(dst, src []uint64, g uint64, mod numeric.Modulus) {
	n := uint64(len(src))
	if len(dst) != len(src) {
		panic("automorph: Naive: dst/src length mismatch")
	}
	if g%2 == 0 {
		panic("automorph: Naive: even Galois element")
	}
	twoN := 2 * n
	g %= twoN
	for i := uint64(0); i < n; i++ {
		idx := (i * g) % twoN
		if idx < n {
			dst[idx] = src[i]
		} else {
			dst[idx-n] = mod.Neg(src[i])
		}
	}
}

// HFAuto holds the sub-vector decomposition parameters for a ring degree N
// and lane width C. One HFAuto can serve any odd Galois element via
// Precompute/Apply.
type HFAuto struct {
	N int // ring degree (power of two)
	C int // sub-vector (lane) width, power of two dividing N
	R int // number of sub-vectors, N/C
}

// NewHFAuto validates the decomposition. C must be a power of two dividing
// N; C == N degenerates to a pure column mapping and is allowed.
func NewHFAuto(n, c int) (*HFAuto, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("automorph: N=%d is not a power of two ≥ 2", n)
	}
	if c < 1 || c&(c-1) != 0 {
		return nil, fmt.Errorf("automorph: C=%d is not a power of two ≥ 1", c)
	}
	if n%c != 0 {
		return nil, fmt.Errorf("automorph: C=%d does not divide N=%d", c, n)
	}
	return &HFAuto{N: n, C: c, R: n / c}, nil
}

// Map is the precomputed routing state for one Galois element: everything
// the four pipeline stages need, derived once and reused across all RNS
// limbs and ciphertext components (the paper's "operator reuse").
type Map struct {
	H *HFAuto
	G uint64

	rowDest  []int    // stage 1: row i → row i·g mod R
	rowTag   []uint64 // i·g mod 2R for the sign logic, indexed by dest row
	colShift []int    // stage 2: extra row shift per column, floor(j·g/C) mod R
	colSign  []uint64 // floor(j·g/C) mod 2R per column (sign contribution)
	colDest  []int    // stage 4: column j → column j·g mod C
}

// Precompute builds the routing tables for odd Galois element g.
func (h *HFAuto) Precompute(g uint64) *Map {
	if g%2 == 0 {
		panic("automorph: Precompute: even Galois element")
	}
	twoN := uint64(2 * h.N)
	g %= twoN
	m := &Map{H: h, G: g}
	r := uint64(h.R)
	c := uint64(h.C)

	m.rowDest = make([]int, h.R)
	m.rowTag = make([]uint64, h.R)
	for i := uint64(0); i < r; i++ {
		dest := (i * g) % r
		m.rowDest[i] = int(dest)
		m.rowTag[dest] = (i * g) % (2 * r)
	}
	m.colShift = make([]int, h.C)
	m.colSign = make([]uint64, h.C)
	m.colDest = make([]int, h.C)
	for j := uint64(0); j < c; j++ {
		jg := j * g
		m.colShift[j] = int((jg / c) % r)
		m.colSign[j] = (jg / c) % (2 * r)
		m.colDest[j] = int(jg % c)
	}
	return m
}

// Apply performs the automorphism via the four HFAuto stages. src is read
// as an R×C row-major matrix; dst receives the permuted result. dst and
// src must not alias.
func (m *Map) Apply(dst, src []uint64, mod numeric.Modulus) {
	m.ApplyScratch(dst, src, mod, make([]uint64, m.H.N))
}

// ApplyScratch is Apply with a caller-provided staging buffer of length N,
// letting hot paths (and limb-parallel workers) recycle the stage-1 "FIFO"
// memory instead of allocating per call. scratch must not alias dst or src.
func (m *Map) ApplyScratch(dst, src []uint64, mod numeric.Modulus, scratch []uint64) {
	h := m.H
	if len(src) != h.N || len(dst) != h.N || len(scratch) != h.N {
		panic("automorph: ApplyScratch: dst/src/scratch length mismatch")
	}
	r, c := h.R, h.C
	twoR := uint64(2 * r)

	// Stage 1: row mapping row_i → row_(i·g mod R). We write rows into a
	// staging buffer ("FIFOs" in the hardware) in permuted order.
	stage1 := scratch
	for i := 0; i < r; i++ {
		copy(stage1[m.rowDest[i]*c:(m.rowDest[i]+1)*c], src[i*c:(i+1)*c])
	}

	// Stage 2: per-column cyclic shift by floor(j·g/C) mod R, fused with
	// the negacyclic sign fix-up: the element originating from row i and
	// column j is negated when (i·g + floor(j·g/C)) mod 2R ≥ R.
	//
	// Stage 3: dimension switch — realized here by writing stage-2 output
	// through the transposed access pattern that stage 4 consumes.
	//
	// Stage 4: column mapping column_j → column_(j·g mod C).
	for j := 0; j < c; j++ {
		shift := m.colShift[j]
		destCol := m.colDest[j]
		sj := m.colSign[j]
		for row := 0; row < r; row++ {
			destRow := row + shift
			if destRow >= r {
				destRow -= r
			}
			v := stage1[row*c+j]
			if (m.rowTag[row]+sj)%twoR >= uint64(r) {
				v = mod.Neg(v)
			}
			dst[destRow*c+destCol] = v
		}
	}
}

// GaloisElementForRotation returns the Galois element g = 5^steps mod 2N
// realizing a rotation of the CKKS slot vector by `steps` positions
// (negative steps rotate the other way). N is the ring degree.
func GaloisElementForRotation(steps int, n int) uint64 {
	twoN := uint64(2 * n)
	// Reduce steps modulo the slot count N/2 (the orbit length of 5).
	half := n / 2
	s := ((steps % half) + half) % half
	g := uint64(1)
	base := uint64(5)
	for e := s; e > 0; e >>= 1 {
		if e&1 == 1 {
			g = g * base % twoN
		}
		base = base * base % twoN
	}
	return g
}

// GaloisElementConjugate returns the element 2N−1 realizing complex
// conjugation of the slot vector.
func GaloisElementConjugate(n int) uint64 { return uint64(2*n - 1) }
