package baseline

import (
	"fmt"
	"time"

	"poseidon/internal/ckks"
)

// CPUMeasurement measures this machine's single-thread software throughput
// for the FHE basic operations, using the same operator implementations the
// accelerator model is built on — the "CPU (measured)" column of the
// Table IV reproduction.
type CPUMeasurement struct {
	params *ckks.Parameters
	enc    *ckks.Encoder
	ev     *ckks.Evaluator
	ct1    *ckks.Ciphertext
	ct2    *ckks.Ciphertext
	pt     *ckks.Plaintext
}

// NewCPUMeasurement sets up keys and operands for the given geometry.
// Key generation dominates setup time at large N.
func NewCPUMeasurement(logN int, limbs int, logScale int) (*CPUMeasurement, error) {
	logQ := make([]int, limbs)
	logQ[0] = logScale + 5
	for i := 1; i < limbs; i++ {
		logQ[i] = logScale
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     logN,
		LogQ:     logQ,
		LogP:     []int{logScale + 6, logScale + 6, logScale + 6, logScale + 6},
		LogScale: logScale,
	})
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	kgen := ckks.NewKeyGenerator(params, 1001)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	rlk := kgen.GenRelinearizationKey(sk)
	rtks := kgen.GenRotationKeys(sk, []int{1}, false)
	ev := ckks.NewEvaluator(params, rlk, rtks)
	encr := ckks.NewEncryptor(params, pk, 1002)
	enc := ckks.NewEncoder(params)

	vals := make([]complex128, params.Slots)
	for i := range vals {
		vals[i] = complex(float64(i%7)/7, float64(i%5)/5)
	}
	pt := enc.Encode(vals, params.MaxLevel(), params.Scale)
	m := &CPUMeasurement{
		params: params,
		enc:    enc,
		ev:     ev,
		ct1:    encr.Encrypt(pt),
		ct2:    encr.Encrypt(pt),
		pt:     pt,
	}
	return m, nil
}

// Params exposes the measurement geometry.
func (m *CPUMeasurement) Params() *ckks.Parameters { return m.params }

// timeOp measures ops/sec for fn over reps runs.
func timeOp(reps int, fn func()) float64 {
	start := time.Now()
	for i := 0; i < reps; i++ {
		fn()
	}
	el := time.Since(start).Seconds()
	if el == 0 {
		return 0
	}
	return float64(reps) / el
}

// Measure runs every basic operation reps times and reports throughput.
func (m *CPUMeasurement) Measure(reps int) []OpThroughput {
	platform := "CPU (this machine, 1 thread)"
	var out []OpThroughput
	add := func(op string, ops float64) {
		out = append(out, OpThroughput{Platform: platform, Op: op, OpsPerS: ops, Source: Measured})
	}

	add("HAdd", timeOp(reps, func() { m.ev.Add(m.ct1, m.ct2) }))
	add("PMult", timeOp(reps, func() { m.ev.MulPlain(m.ct1, m.pt) }))
	add("CMult", timeOp(reps, func() { m.ev.MulRelin(m.ct1, m.ct2) }))
	add("Rescale", timeOp(reps, func() { m.ev.Rescale(m.ct1) }))
	add("Rotation", timeOp(reps, func() { m.ev.Rotate(m.ct1, 1) }))
	// Keyswitch: isolate via a rotation minus the automorphism is awkward;
	// measure the exposed KeySwitch on C1 with the relinearization key's
	// switching core by rotating with step 1 — dominated by keyswitching —
	// and NTT via a raw round trip on a full ciphertext copy.
	add("Keyswitch", timeOp(reps, func() { m.ev.Rotate(m.ct1, 1) }))
	add("NTT", timeOp(reps, func() {
		c := m.ct1.C0.CopyNew()
		m.params.RingQ.INTT(c)
		m.params.RingQ.NTT(c)
	}))
	return out
}
