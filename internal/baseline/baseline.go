// Package baseline provides the comparison points of the paper's
// evaluation: the single-thread CPU software baseline (measured live on
// this machine with the same operator algorithms the accelerator models),
// and the literature-reported numbers for the GPU (over100x), FPGA (HEAX,
// Kim et al.) and ASIC (F1+, CraterLake, BTS, ARK) prototypes, which are
// closed systems the paper itself cites by their published results.
package baseline

// Source labels where a number comes from.
type Source int

const (
	// Measured means produced by running this repository's code.
	Measured Source = iota
	// Reported means transcribed from the paper (or the cited paper).
	Reported
)

func (s Source) String() string {
	if s == Measured {
		return "measured"
	}
	return "reported"
}

// OpThroughput is a Table IV row fragment: operations per second for one
// FHE basic operation on one platform.
type OpThroughput struct {
	Platform string
	Op       string
	OpsPerS  float64
	Source   Source
}

// TableIVReported reproduces the paper's Table IV throughput numbers
// (operations per second; slashes in the paper mean "not reported").
func TableIVReported() []OpThroughput {
	rows := []OpThroughput{
		{"CPU (Xeon 6234)", "PMult", 38.14, Reported},
		{"CPU (Xeon 6234)", "CMult", 0.38, Reported},
		{"CPU (Xeon 6234)", "NTT", 9.25, Reported},
		{"CPU (Xeon 6234)", "Keyswitch", 0.4, Reported},
		{"CPU (Xeon 6234)", "Rotation", 0.39, Reported},
		{"CPU (Xeon 6234)", "Rescale", 6.9, Reported},

		{"over100x (GPU)", "PMult", 7407, Reported},
		{"over100x (GPU)", "CMult", 57, Reported},
		{"over100x (GPU)", "Rotation", 61, Reported},
		{"over100x (GPU)", "Rescale", 1574, Reported},

		{"HEAX (FPGA)", "PMult", 4161, Reported},
		{"HEAX (FPGA)", "CMult", 119, Reported},

		{"Poseidon (FPGA)", "PMult", 13310, Reported},
		{"Poseidon (FPGA)", "CMult", 273, Reported},
		{"Poseidon (FPGA)", "NTT", 227, Reported},
		{"Poseidon (FPGA)", "Keyswitch", 312, Reported},
		{"Poseidon (FPGA)", "Rotation", 302, Reported},
		{"Poseidon (FPGA)", "Rescale", 3948, Reported},
	}
	return rows
}

// BenchmarkTime is a Table VI row fragment: benchmark wall time in
// milliseconds on one platform.
type BenchmarkTime struct {
	Platform  string
	Benchmark string
	Millis    float64
	Source    Source
}

// TableVIReported reproduces the paper's full-system comparison
// (benchmark execution time, ms).
func TableVIReported() []BenchmarkTime {
	return []BenchmarkTime{
		{"Poseidon (FPGA)", "LR", 72.98, Reported},
		{"Poseidon (FPGA)", "LSTM", 1846.89, Reported},
		{"Poseidon (FPGA)", "ResNet-20", 2661.23, Reported},
		{"Poseidon (FPGA)", "PackedBootstrapping", 127.45, Reported},

		// Comparator prototypes. The paper's Table VI compares against the
		// numbers these systems' own papers report; the source text of our
		// copy garbles several cells, so values below are reconstructed
		// from the cited papers' headline results and are marked Reported
		// — treat them as order-of-magnitude anchors (see EXPERIMENTS.md).
		{"F1+ (ASIC)", "LR", 639, Reported},
		{"CraterLake (ASIC)", "LR", 119.5, Reported},
		{"BTS (ASIC)", "LR", 28.4, Reported},
		{"ARK (ASIC)", "LR", 7.4, Reported},
		{"over100x (GPU)", "LR", 775, Reported},

		{"CraterLake (ASIC)", "LSTM", 248.4, Reported},
		{"BTS (ASIC)", "LSTM", 1153, Reported},
		{"ARK (ASIC)", "LSTM", 100, Reported},
		{"CraterLake (ASIC)", "ResNet-20", 321.8, Reported},
		{"BTS (ASIC)", "ResNet-20", 1910, Reported},
		{"ARK (ASIC)", "ResNet-20", 125, Reported},
		{"F1+ (ASIC)", "PackedBootstrapping", 1024, Reported},
		{"CraterLake (ASIC)", "PackedBootstrapping", 4.9, Reported},
		{"BTS (ASIC)", "PackedBootstrapping", 58.9, Reported},
		{"ARK (ASIC)", "PackedBootstrapping", 3.5, Reported},
	}
}
