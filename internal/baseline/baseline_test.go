package baseline

import "testing"

func TestReportedTablesWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, row := range TableIVReported() {
		if row.Platform == "" || row.Op == "" || row.OpsPerS <= 0 {
			t.Errorf("bad Table IV row: %+v", row)
		}
		key := row.Platform + "/" + row.Op
		if seen[key] {
			t.Errorf("duplicate Table IV row %s", key)
		}
		seen[key] = true
		if row.Source != Reported {
			t.Errorf("Table IV rows must be literature data: %+v", row)
		}
	}
	seen = map[string]bool{}
	for _, row := range TableVIReported() {
		if row.Platform == "" || row.Benchmark == "" || row.Millis <= 0 {
			t.Errorf("bad Table VI row: %+v", row)
		}
		key := row.Platform + "/" + row.Benchmark
		if seen[key] {
			t.Errorf("duplicate Table VI row %s", key)
		}
		seen[key] = true
	}
}

func TestPaperSpeedupsRecoverable(t *testing.T) {
	// The headline Table IV speedups (Poseidon over CPU) must be
	// recomputable from the stored rows: PMult 349×, CMult 718×,
	// Rescale 572×.
	rows := TableIVReported()
	get := func(platform, op string) float64 {
		for _, r := range rows {
			if r.Platform == platform && r.Op == op {
				return r.OpsPerS
			}
		}
		t.Fatalf("missing row %s/%s", platform, op)
		return 0
	}
	cases := map[string]float64{"PMult": 349, "CMult": 718, "Rescale": 572}
	for op, want := range cases {
		ratio := get("Poseidon (FPGA)", op) / get("CPU (Xeon 6234)", op)
		if ratio < want*0.95 || ratio > want*1.05 {
			t.Errorf("%s speedup %.0f×, paper reports %.0f×", op, ratio, want)
		}
	}
}

func TestCPUMeasurementSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU measurement setup is slow")
	}
	m, err := NewCPUMeasurement(10, 6, 40)
	if err != nil {
		t.Fatal(err)
	}
	rows := m.Measure(3)
	if len(rows) < 6 {
		t.Fatalf("only %d measurements", len(rows))
	}
	byOp := map[string]float64{}
	for _, r := range rows {
		if r.OpsPerS <= 0 {
			t.Errorf("%s: non-positive throughput", r.Op)
		}
		if r.Source != Measured {
			t.Errorf("%s: should be marked measured", r.Op)
		}
		byOp[r.Op] = r.OpsPerS
	}
	// Shape: HAdd must be the fastest op; CMult must be slower than PMult.
	if byOp["HAdd"] < byOp["CMult"] {
		t.Error("HAdd should outpace CMult on CPU")
	}
	if byOp["PMult"] < byOp["CMult"] {
		t.Error("PMult should outpace CMult on CPU")
	}
}
