package numeric

import "fmt"

// IsPrime reports whether n is prime using a deterministic Miller-Rabin
// test. The witness set {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} is
// deterministic for all n < 3.3·10^24, far beyond the 61-bit range used
// here.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	// n-1 = d * 2^s with d odd
	d := n - 1
	s := 0
	for d%2 == 0 {
		d /= 2
		s++
	}
	m := NewModulus(n)
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := m.Pow(a, d)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for r := 1; r < s; r++ {
			x = m.Mul(x, x)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// GenerateNTTPrimes returns count primes of approximately `bitSize` bits
// that are congruent to 1 mod 2N, i.e. NTT-friendly for negacyclic
// transforms of length N. Primes are returned in decreasing order starting
// just below 2^bitSize. It returns an error when the range is exhausted.
func GenerateNTTPrimes(bitSize, logN, count int) ([]uint64, error) {
	if bitSize < 4 || bitSize > MaxModulusBits {
		return nil, fmt.Errorf("numeric: bitSize %d out of range [4,%d]", bitSize, MaxModulusBits)
	}
	if logN < 1 || logN > 20 {
		return nil, fmt.Errorf("numeric: logN %d out of range [1,20]", logN)
	}
	step := uint64(2) << uint(logN) // 2N
	// Start at the largest multiple of 2N below 2^bitSize, plus 1.
	upper := uint64(1) << uint(bitSize)
	cand := (upper/step)*step + 1
	if cand >= upper {
		cand -= step
	}
	lower := uint64(1) << uint(bitSize-1)

	primes := make([]uint64, 0, count)
	for cand > lower {
		if IsPrime(cand) {
			primes = append(primes, cand)
			if len(primes) == count {
				return primes, nil
			}
		}
		if cand < step { // avoid wraparound
			break
		}
		cand -= step
	}
	return nil, fmt.Errorf("numeric: only %d/%d NTT primes of %d bits for logN=%d",
		len(primes), count, bitSize, logN)
}

// PrimitiveRoot returns a generator of the multiplicative group Z_q^* for
// prime q, found by trial over small candidates against the factorization
// of q-1.
func PrimitiveRoot(q uint64) uint64 {
	m := NewModulus(q)
	factors := distinctPrimeFactors(q - 1)
	for g := uint64(2); g < q; g++ {
		ok := true
		for _, f := range factors {
			if m.Pow(g, (q-1)/f) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g
		}
	}
	panic("numeric: no primitive root found (q not prime?)")
}

// RootOfUnity returns a primitive n-th root of unity modulo prime q.
// n must divide q-1.
func RootOfUnity(q, n uint64) uint64 {
	if (q-1)%n != 0 {
		panic(fmt.Sprintf("numeric: %d does not divide q-1=%d", n, q-1))
	}
	m := NewModulus(q)
	g := PrimitiveRoot(q)
	w := m.Pow(g, (q-1)/n)
	// Sanity: w^n = 1 and w^(n/2) != 1 for even n.
	if m.Pow(w, n) != 1 {
		panic("numeric: root-of-unity order check failed")
	}
	if n%2 == 0 && m.Pow(w, n/2) == 1 {
		panic("numeric: root of unity is not primitive")
	}
	return w
}

// distinctPrimeFactors returns the distinct prime factors of n by trial
// division (n ≤ 2^61, adequate for parameter setup).
func distinctPrimeFactors(n uint64) []uint64 {
	var fs []uint64
	for p := uint64(2); p*p <= n; p++ {
		if n%p == 0 {
			fs = append(fs, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}
