package numeric

import "testing"

func TestIsPrimeSmall(t *testing.T) {
	primes := map[uint64]bool{
		0: false, 1: false, 2: true, 3: true, 4: false, 5: true,
		9: false, 25: false, 97: true, 561: false /* Carmichael */, 65537: true,
		998244353: true, 998244351: false,
		1152921504606584833: true,
	}
	for n, want := range primes {
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d)=%v want %v", n, got, want)
		}
	}
}

func TestGenerateNTTPrimes(t *testing.T) {
	for _, tc := range []struct{ bits, logN, count int }{
		{30, 12, 10},
		{32, 13, 8},
		{45, 14, 12},
		{60, 16, 20},
	} {
		ps, err := GenerateNTTPrimes(tc.bits, tc.logN, tc.count)
		if err != nil {
			t.Fatalf("GenerateNTTPrimes(%d,%d,%d): %v", tc.bits, tc.logN, tc.count, err)
		}
		if len(ps) != tc.count {
			t.Fatalf("got %d primes, want %d", len(ps), tc.count)
		}
		seen := map[uint64]bool{}
		twoN := uint64(2) << uint(tc.logN)
		for _, p := range ps {
			if seen[p] {
				t.Errorf("duplicate prime %d", p)
			}
			seen[p] = true
			if !IsPrime(p) {
				t.Errorf("%d is not prime", p)
			}
			if p%twoN != 1 {
				t.Errorf("%d != 1 mod 2N", p)
			}
			if p>>(uint(tc.bits)-1) != 1 {
				t.Errorf("%d is not %d bits", p, tc.bits)
			}
		}
	}
}

func TestGenerateNTTPrimesErrors(t *testing.T) {
	if _, err := GenerateNTTPrimes(3, 12, 1); err == nil {
		t.Error("bitSize too small should error")
	}
	if _, err := GenerateNTTPrimes(62, 12, 1); err == nil {
		t.Error("bitSize too large should error")
	}
	if _, err := GenerateNTTPrimes(30, 0, 1); err == nil {
		t.Error("logN too small should error")
	}
	// Exhaustion: asking for far more 14-bit primes ≡ 1 mod 2^13 than exist.
	if _, err := GenerateNTTPrimes(14, 12, 100); err == nil {
		t.Error("exhausted range should error")
	}
}

func TestPrimitiveRootAndRootOfUnity(t *testing.T) {
	for _, q := range []uint64{17, 97, 65537, 998244353, 1152921504606584833} {
		m := NewModulus(q)
		g := PrimitiveRoot(q)
		// g must have full order q-1: g^((q-1)/f) != 1 for each prime factor f.
		for _, f := range distinctPrimeFactors(q - 1) {
			if m.Pow(g, (q-1)/f) == 1 {
				t.Errorf("q=%d: %d is not a primitive root", q, g)
			}
		}
	}
	// Root of unity orders.
	q := uint64(998244353) // q-1 = 2^23 · 7 · 17
	m := NewModulus(q)
	for _, n := range []uint64{2, 4, 8, 1 << 20} {
		w := RootOfUnity(q, n)
		if m.Pow(w, n) != 1 {
			t.Errorf("w^%d != 1", n)
		}
		if m.Pow(w, n/2) == 1 {
			t.Errorf("order of w divides %d/2", n)
		}
	}
}

func TestRootOfUnityPanicsWhenOrderInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RootOfUnity with non-dividing order should panic")
		}
	}()
	RootOfUnity(17, 5) // 5 does not divide 16
}
