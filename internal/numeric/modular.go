// Package numeric provides the scalar modular-arithmetic foundation that
// every Poseidon operator builds on: Barrett reduction (the paper's shared
// "SBT" operator), Shoup multiplication for hoisted constants, modular
// exponentiation and inversion, primality testing and NTT-friendly prime
// generation.
//
// All moduli are odd integers below 2^61 so that a+b and 4*q never overflow
// a uint64 and a 128-bit product fits in two 64-bit words.
package numeric

import (
	"fmt"
	"math/bits"
)

// MaxModulusBits is the largest supported modulus width. Keeping q < 2^61
// leaves headroom for lazy accumulation (values up to 8q) in NTT kernels.
const MaxModulusBits = 61

// Modulus bundles a prime modulus with the precomputed constants needed for
// Barrett and Shoup reductions. It is immutable after creation and safe for
// concurrent use.
type Modulus struct {
	Q uint64 // the modulus itself

	// BarrettHi/BarrettLo hold floor(2^128 / Q), the 128-bit Barrett
	// constant used to reduce 128-bit products.
	BarrettHi uint64
	BarrettLo uint64

	// QInv is Q^-1 mod 2^64, the REDC constant of the Montgomery multiply
	// path (zero for Q = 2, where no inverse exists and the Montgomery
	// methods are undefined).
	QInv uint64

	// RModQ is 2^64 mod Q — the Montgomery radix residue used by MForm —
	// and RModQShoup its Shoup dual.
	RModQ      uint64
	RModQShoup uint64

	// Bits is the bit length of Q.
	Bits int
}

// NewModulus precomputes reduction constants for q. It panics if q is 0,
// even, or too wide; parameter construction is programmer-controlled, so a
// bad modulus is a bug rather than a runtime condition.
func NewModulus(q uint64) Modulus {
	if q == 0 {
		panic("numeric: zero modulus")
	}
	if q != 2 && q%2 == 0 {
		panic(fmt.Sprintf("numeric: even modulus %d", q))
	}
	if bits.Len64(q) > MaxModulusBits {
		panic(fmt.Sprintf("numeric: modulus %d exceeds %d bits", q, MaxModulusBits))
	}
	hi, lo := barrettConstant(q)
	m := Modulus{Q: q, BarrettHi: hi, BarrettLo: lo, Bits: bits.Len64(q)}
	if q%2 == 1 {
		m.QInv = montgomeryInverse(q)
		_, m.RModQ = bits.Div64(1, 0, q) // 2^64 mod q
		m.RModQShoup = m.ShoupConstant(m.RModQ)
	}
	return m
}

// montgomeryInverse returns q^-1 mod 2^64 for odd q by Newton iteration:
// x_{k+1} = x_k·(2 − q·x_k) doubles the number of correct low bits, and
// x_0 = q is already correct mod 8.
func montgomeryInverse(q uint64) uint64 {
	x := q
	for i := 0; i < 5; i++ {
		x *= 2 - q*x
	}
	return x
}

// barrettConstant returns floor(2^128 / q) as a (hi, lo) pair.
func barrettConstant(q uint64) (hi, lo uint64) {
	// Divide 2^128 - 1 by q, then fix up: floor((2^128-1)/q) equals
	// floor(2^128/q) unless q divides 2^128, impossible for odd q > 1.
	hi, r := bits.Div64(0, ^uint64(0), q) // hi = floor((2^64-1)·2^64 / ... ) step 1
	lo, _ = bits.Div64(r, ^uint64(0), q)
	// (hi,lo) = floor((2^128 - 1)/q). For odd q>1 this equals floor(2^128/q).
	return hi, lo
}

// Add returns (a + b) mod q, assuming a, b < q.
func (m Modulus) Add(a, b uint64) uint64 {
	s := a + b
	if s >= m.Q {
		s -= m.Q
	}
	return s
}

// Sub returns (a - b) mod q, assuming a, b < q.
func (m Modulus) Sub(a, b uint64) uint64 {
	d := a - b
	if d > a { // borrow
		d += m.Q
	}
	return d
}

// Neg returns (-a) mod q, assuming a < q.
func (m Modulus) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return m.Q - a
}

// Mul returns (a * b) mod q using Barrett reduction of the 128-bit product.
func (m Modulus) Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return m.ReduceWide(hi, lo)
}

// ReduceWide reduces a 128-bit value (hi·2^64 + lo) modulo q with Barrett
// reduction. Valid for ANY 128-bit input — the lazy inner-product kernels
// rely on this to fold whole digit sums with one reduction. This is the
// scalar form of the paper's SBT operator.
//
// Correctness: with mu = floor(2^128/q), x·mu/2^128 = x/q − e where
// e = x·(2^128 mod q)/(q·2^128) < 1 for x < 2^128. The full-column sum
// below computes t = floor(x·mu/2^128) exactly (mod 2^64), so t undershoots
// floor(x/q) by at most 1 and the remainder r = x − t·q lies in [0, 2q);
// two conditional subtractions are provably sufficient with a full q of
// margin. Only the low 64 bits of t are needed: r < 2q < 2^64, so the
// 64-bit wraparound computation r = lo − t·q recovers it exactly.
func (m Modulus) ReduceWide(hi, lo uint64) uint64 {
	// x = hi·2^64 + lo, mu = BarrettHi·2^64 + BarrettLo.
	// x·mu = hi·BHi·2^128 + (hi·BLo + lo·BHi)·2^64 + lo·BLo; we need the
	// 2^128 column (the low word of the quotient estimate) plus the carry
	// out of the 2^64 column. Carries out of the 2^128 column and the
	// hi·BHi high word affect only quotient bits ≥ 64, which cancel mod
	// 2^64 in r = lo − t·q.
	mh1, _ := bits.Mul64(lo, m.BarrettLo)
	h2, l2 := bits.Mul64(lo, m.BarrettHi)
	h3, l3 := bits.Mul64(hi, m.BarrettLo)
	l4 := hi * m.BarrettHi

	// Carry out of the 2^64 column: mh1 + l2 + l3.
	s, c1 := bits.Add64(mh1, l2, 0)
	_, c2 := bits.Add64(s, l3, 0)

	// Low word of the quotient estimate.
	t := l4 + h2 + h3 + c1 + c2

	r := lo - t*m.Q
	if r >= m.Q {
		r -= m.Q
	}
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// ShoupConstant returns floor(w·2^64 / q), the hoisted constant for Shoup
// multiplication by the fixed operand w (w < q).
func (m Modulus) ShoupConstant(w uint64) uint64 {
	c, _ := bits.Div64(w, 0, m.Q)
	return c
}

// MulShoup returns (a * w) mod q given the precomputed Shoup constant
// wShoup = floor(w·2^64/q). One multiplication replaces the full Barrett
// sequence; this is how the hardware multiplies by twiddle factors.
func (m Modulus) MulShoup(a, w, wShoup uint64) uint64 {
	hi, _ := bits.Mul64(a, wShoup)
	r := a*w - hi*m.Q
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// Pow returns a^e mod q by square-and-multiply.
func (m Modulus) Pow(a, e uint64) uint64 {
	result := uint64(1)
	base := a % m.Q
	for e > 0 {
		if e&1 == 1 {
			result = m.Mul(result, base)
		}
		base = m.Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns a^-1 mod q for prime q (Fermat). It panics on a == 0.
func (m Modulus) Inv(a uint64) uint64 {
	if a%m.Q == 0 {
		panic("numeric: inverse of zero")
	}
	return m.Pow(a, m.Q-2)
}

// Reduce returns a mod q for arbitrary a.
func (m Modulus) Reduce(a uint64) uint64 {
	if a < m.Q {
		return a
	}
	return a % m.Q
}

// ReduceSigned maps a signed value into [0, q).
func (m Modulus) ReduceSigned(a int64) uint64 {
	r := a % int64(m.Q)
	if r < 0 {
		r += int64(m.Q)
	}
	return uint64(r)
}

// Centered maps a residue in [0, q) to its centered representative in
// (-q/2, q/2].
func (m Modulus) Centered(a uint64) int64 {
	if a > m.Q/2 {
		return int64(a) - int64(m.Q)
	}
	return int64(a)
}
