// Package numeric provides the scalar modular-arithmetic foundation that
// every Poseidon operator builds on: Barrett reduction (the paper's shared
// "SBT" operator), Shoup multiplication for hoisted constants, modular
// exponentiation and inversion, primality testing and NTT-friendly prime
// generation.
//
// All moduli are odd integers below 2^61 so that a+b and 4*q never overflow
// a uint64 and a 128-bit product fits in two 64-bit words.
package numeric

import (
	"fmt"
	"math/bits"
)

// MaxModulusBits is the largest supported modulus width. Keeping q < 2^61
// leaves headroom for lazy accumulation (values up to 8q) in NTT kernels.
const MaxModulusBits = 61

// Modulus bundles a prime modulus with the precomputed constants needed for
// Barrett and Shoup reductions. It is immutable after creation and safe for
// concurrent use.
type Modulus struct {
	Q uint64 // the modulus itself

	// BarrettHi/BarrettLo hold floor(2^128 / Q), the 128-bit Barrett
	// constant used to reduce 128-bit products.
	BarrettHi uint64
	BarrettLo uint64

	// Bits is the bit length of Q.
	Bits int
}

// NewModulus precomputes reduction constants for q. It panics if q is 0,
// even, or too wide; parameter construction is programmer-controlled, so a
// bad modulus is a bug rather than a runtime condition.
func NewModulus(q uint64) Modulus {
	if q == 0 {
		panic("numeric: zero modulus")
	}
	if q != 2 && q%2 == 0 {
		panic(fmt.Sprintf("numeric: even modulus %d", q))
	}
	if bits.Len64(q) > MaxModulusBits {
		panic(fmt.Sprintf("numeric: modulus %d exceeds %d bits", q, MaxModulusBits))
	}
	hi, lo := barrettConstant(q)
	return Modulus{Q: q, BarrettHi: hi, BarrettLo: lo, Bits: bits.Len64(q)}
}

// barrettConstant returns floor(2^128 / q) as a (hi, lo) pair.
func barrettConstant(q uint64) (hi, lo uint64) {
	// Divide 2^128 - 1 by q, then fix up: floor((2^128-1)/q) equals
	// floor(2^128/q) unless q divides 2^128, impossible for odd q > 1.
	hi, r := bits.Div64(0, ^uint64(0), q) // hi = floor((2^64-1)·2^64 / ... ) step 1
	lo, _ = bits.Div64(r, ^uint64(0), q)
	// (hi,lo) = floor((2^128 - 1)/q). For odd q>1 this equals floor(2^128/q).
	return hi, lo
}

// Add returns (a + b) mod q, assuming a, b < q.
func (m Modulus) Add(a, b uint64) uint64 {
	s := a + b
	if s >= m.Q {
		s -= m.Q
	}
	return s
}

// Sub returns (a - b) mod q, assuming a, b < q.
func (m Modulus) Sub(a, b uint64) uint64 {
	d := a - b
	if d > a { // borrow
		d += m.Q
	}
	return d
}

// Neg returns (-a) mod q, assuming a < q.
func (m Modulus) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return m.Q - a
}

// Mul returns (a * b) mod q using Barrett reduction of the 128-bit product.
func (m Modulus) Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return m.ReduceWide(hi, lo)
}

// ReduceWide reduces a 128-bit value (hi·2^64 + lo) modulo q with Barrett
// reduction. The input must be < q·2^64 (always true for products of two
// residues). This is the scalar form of the paper's SBT operator.
func (m Modulus) ReduceWide(hi, lo uint64) uint64 {
	// Estimate t = floor(x / q) via t ≈ floor(x * floor(2^128/q) / 2^128).
	// Only the top 128 bits of the 256-bit product x * mu are needed.
	//
	// x = hi·2^64 + lo, mu = BarrettHi·2^64 + BarrettLo.
	// x·mu = hi·BHi·2^128 + (hi·BLo + lo·BHi)·2^64 + lo·BLo
	mh1, _ := bits.Mul64(lo, m.BarrettLo)
	h2, l2 := bits.Mul64(lo, m.BarrettHi)
	h3, l3 := bits.Mul64(hi, m.BarrettLo)
	h4, l4 := bits.Mul64(hi, m.BarrettHi)

	// Sum the 2^64 column: mh1 + l2 + l3 → carries into the 2^128 column.
	c1 := uint64(0)
	s, carry := bits.Add64(mh1, l2, 0)
	c1 += carry
	s, carry = bits.Add64(s, l3, 0)
	c1 += carry
	_ = s // bits below 2^128 do not contribute to the quotient estimate

	// 2^128 column: l4 + h2 + h3 + c1, carrying into the 2^192 column.
	c2 := uint64(0)
	t, carry := bits.Add64(l4, h2, 0)
	c2 += carry
	t, carry = bits.Add64(t, h3, 0)
	c2 += carry
	t, carry = bits.Add64(t, c1, 0)
	c2 += carry

	qhi := h4 + c2 // 2^192 column (no overflow: mu < 2^128, x < 2^128)

	// t (low) and qhi (high) now hold floor(x·mu / 2^128) = estimated
	// quotient, which may undershoot the true quotient by at most 2.
	// r = x - t*q, computed mod 2^64 (the true remainder fits in 64 bits
	// after at most two conditional subtractions).
	_ = qhi
	r := lo - t*m.Q
	for r >= m.Q {
		r -= m.Q
	}
	return r
}

// ShoupConstant returns floor(w·2^64 / q), the hoisted constant for Shoup
// multiplication by the fixed operand w (w < q).
func (m Modulus) ShoupConstant(w uint64) uint64 {
	c, _ := bits.Div64(w, 0, m.Q)
	return c
}

// MulShoup returns (a * w) mod q given the precomputed Shoup constant
// wShoup = floor(w·2^64/q). One multiplication replaces the full Barrett
// sequence; this is how the hardware multiplies by twiddle factors.
func (m Modulus) MulShoup(a, w, wShoup uint64) uint64 {
	hi, _ := bits.Mul64(a, wShoup)
	r := a*w - hi*m.Q
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// Pow returns a^e mod q by square-and-multiply.
func (m Modulus) Pow(a, e uint64) uint64 {
	result := uint64(1)
	base := a % m.Q
	for e > 0 {
		if e&1 == 1 {
			result = m.Mul(result, base)
		}
		base = m.Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns a^-1 mod q for prime q (Fermat). It panics on a == 0.
func (m Modulus) Inv(a uint64) uint64 {
	if a%m.Q == 0 {
		panic("numeric: inverse of zero")
	}
	return m.Pow(a, m.Q-2)
}

// Reduce returns a mod q for arbitrary a.
func (m Modulus) Reduce(a uint64) uint64 {
	if a < m.Q {
		return a
	}
	return a % m.Q
}

// ReduceSigned maps a signed value into [0, q).
func (m Modulus) ReduceSigned(a int64) uint64 {
	r := a % int64(m.Q)
	if r < 0 {
		r += int64(m.Q)
	}
	return uint64(r)
}

// Centered maps a residue in [0, q) to its centered representative in
// (-q/2, q/2].
func (m Modulus) Centered(a uint64) int64 {
	if a > m.Q/2 {
		return int64(a) - int64(m.Q)
	}
	return int64(a)
}
