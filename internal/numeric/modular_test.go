package numeric

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

var testModuli = []uint64{
	3, 17, 257, 65537,
	1152921504606584833, // 60-bit NTT prime
	2305843009213554689, // 61-bit NTT prime
	1073479681,          // ~30-bit
	998244353,           // classic NTT prime
}

func TestNewModulusPanics(t *testing.T) {
	cases := []uint64{0, 4, 1 << 62}
	for _, q := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewModulus(%d) should panic", q)
				}
			}()
			NewModulus(q)
		}()
	}
}

func TestAddSubNeg(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, q := range testModuli {
		m := NewModulus(q)
		for i := 0; i < 200; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			if got, want := m.Add(a, b), (a%q+b%q)%q; got != want {
				t.Fatalf("q=%d Add(%d,%d)=%d want %d", q, a, b, got, want)
			}
			wantSub := new(big.Int).Mod(new(big.Int).Sub(big.NewInt(0).SetUint64(a), big.NewInt(0).SetUint64(b)), big.NewInt(0).SetUint64(q)).Uint64()
			if got := m.Sub(a, b); got != wantSub {
				t.Fatalf("q=%d Sub(%d,%d)=%d want %d", q, a, b, got, wantSub)
			}
			if got := m.Add(m.Neg(a), a); got != 0 {
				t.Fatalf("q=%d Neg(%d)+%d=%d want 0", q, a, a, got)
			}
		}
	}
}

func TestMulAgainstBig(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, q := range testModuli {
		m := NewModulus(q)
		bq := new(big.Int).SetUint64(q)
		for i := 0; i < 500; i++ {
			a := rng.Uint64() % q
			b := rng.Uint64() % q
			want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
			want.Mod(want, bq)
			if got := m.Mul(a, b); got != want.Uint64() {
				t.Fatalf("q=%d Mul(%d,%d)=%d want %d", q, a, b, got, want.Uint64())
			}
		}
	}
}

func TestMulEdgeCases(t *testing.T) {
	for _, q := range testModuli {
		m := NewModulus(q)
		edge := []uint64{0, 1, q - 1, q / 2, q/2 + 1}
		bq := new(big.Int).SetUint64(q)
		for _, a := range edge {
			for _, b := range edge {
				want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
				want.Mod(want, bq)
				if got := m.Mul(a, b); got != want.Uint64() {
					t.Fatalf("q=%d Mul(%d,%d)=%d want %d", q, a, b, got, want.Uint64())
				}
			}
		}
	}
}

func TestMulShoup(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, q := range testModuli {
		m := NewModulus(q)
		for i := 0; i < 300; i++ {
			a := rng.Uint64() % q
			w := rng.Uint64() % q
			ws := m.ShoupConstant(w)
			if got, want := m.MulShoup(a, w, ws), m.Mul(a, w); got != want {
				t.Fatalf("q=%d MulShoup(%d,%d)=%d want %d", q, a, w, got, want)
			}
		}
	}
}

func TestPowInv(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, q := range testModuli {
		if !IsPrime(q) {
			continue
		}
		m := NewModulus(q)
		for i := 0; i < 100; i++ {
			a := 1 + rng.Uint64()%(q-1)
			inv := m.Inv(a)
			if got := m.Mul(a, inv); got != 1 {
				t.Fatalf("q=%d a=%d: a·a^-1=%d want 1", q, a, got)
			}
		}
		if got := m.Pow(0, 0); got != 1 {
			t.Fatalf("q=%d: 0^0=%d want 1 (empty product)", q, got)
		}
		if got := m.Pow(5%q, 0); got != 1 {
			t.Fatalf("q=%d: a^0=%d want 1", q, got)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	m := NewModulus(17)
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) should panic")
		}
	}()
	m.Inv(0)
}

func TestReduceSignedCentered(t *testing.T) {
	m := NewModulus(97)
	cases := []struct {
		in   int64
		want uint64
	}{{0, 0}, {1, 1}, {-1, 96}, {97, 0}, {-97, 0}, {98, 1}, {-98, 96}, {195, 1}}
	for _, c := range cases {
		if got := m.ReduceSigned(c.in); got != c.want {
			t.Errorf("ReduceSigned(%d)=%d want %d", c.in, got, c.want)
		}
	}
	for a := uint64(0); a < 97; a++ {
		c := m.Centered(a)
		if c <= -49 || c > 48 {
			t.Errorf("Centered(%d)=%d out of (-q/2, q/2]", a, c)
		}
		if m.ReduceSigned(c) != a {
			t.Errorf("Centered(%d) does not round-trip", a)
		}
	}
}

// Property: Barrett reduction agrees with math/big for arbitrary 128-bit
// inputs below q·2^64.
func TestReduceWideProperty(t *testing.T) {
	for _, q := range testModuli {
		m := NewModulus(q)
		bq := new(big.Int).SetUint64(q)
		f := func(hi, lo uint64) bool {
			hi %= q // keep x < q·2^64
			x := new(big.Int).SetUint64(hi)
			x.Lsh(x, 64)
			x.Add(x, new(big.Int).SetUint64(lo))
			want := new(big.Int).Mod(x, bq).Uint64()
			return m.ReduceWide(hi, lo) == want
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("q=%d: %v", q, err)
		}
	}
}

// Property: (a·b)·c == a·(b·c) mod q.
func TestMulAssociativeProperty(t *testing.T) {
	m := NewModulus(1152921504606584833)
	f := func(a, b, c uint64) bool {
		a, b, c = a%m.Q, b%m.Q, c%m.Q
		return m.Mul(m.Mul(a, b), c) == m.Mul(a, m.Mul(b, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: distributivity a·(b+c) == a·b + a·c mod q.
func TestMulDistributiveProperty(t *testing.T) {
	m := NewModulus(2305843009213554689)
	f := func(a, b, c uint64) bool {
		a, b, c = a%m.Q, b%m.Q, c%m.Q
		return m.Mul(a, m.Add(b, c)) == m.Add(m.Mul(a, b), m.Mul(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMulBarrett(b *testing.B) {
	m := NewModulus(1152921504606584833)
	x, y := uint64(123456789123456789)%m.Q, uint64(987654321987654321)%m.Q
	var s uint64
	for i := 0; i < b.N; i++ {
		s = m.Mul(s^x, y)
	}
	sink = s
}

func BenchmarkMulShoup(b *testing.B) {
	m := NewModulus(1152921504606584833)
	w := uint64(987654321987654321) % m.Q
	ws := m.ShoupConstant(w)
	var s uint64
	x := uint64(123456789123456789) % m.Q
	for i := 0; i < b.N; i++ {
		s = m.MulShoup(s^x, w, ws)
	}
	sink = s
}

var sink uint64
