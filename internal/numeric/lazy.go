package numeric

import "math/bits"

// Lazy (redundant) residue arithmetic: operations that return values in
// [0, 2q) or [0, 4q) instead of fully reduced residues, deferring the final
// normalization. This is the software counterpart of the paper's deferred
// "fused TAM" reductions — q < 2^61 (MaxModulusBits) guarantees 4q and all
// lazy sums below fit a uint64 with headroom. The Harvey NTT butterflies
// and the fused inner-product accumulators build on these primitives.

// MulShoupLazy returns a value ≡ a·w (mod q) in [0, 2q) given the
// precomputed Shoup constant wShoup = floor(w·2^64/q) with w < q. Unlike
// MulShoup it skips the final conditional subtraction, removing the only
// data-dependent branch from the butterfly's twiddle multiply. Valid for
// ANY 64-bit a: the quotient estimate floor(a·wShoup/2^64) undershoots
// a·w/q by less than 2, so the true difference lies in [0, 2q) and its
// 64-bit wraparound computation is exact.
func (m Modulus) MulShoupLazy(a, w, wShoup uint64) uint64 {
	hi, _ := bits.Mul64(a, wShoup)
	return a*w - hi*m.Q
}

// ReduceTwoQ normalizes a value in [0, 2q) to [0, q).
func (m Modulus) ReduceTwoQ(a uint64) uint64 {
	if a >= m.Q {
		a -= m.Q
	}
	return a
}

// ReduceFourQ normalizes a value in [0, 4q) to [0, q) with two conditional
// subtractions — the single deferred normalization the lazy forward NTT
// pays per coefficient.
func (m Modulus) ReduceFourQ(a uint64) uint64 {
	twoQ := m.Q << 1
	if a >= twoQ {
		a -= twoQ
	}
	if a >= m.Q {
		a -= m.Q
	}
	return a
}

// MACWide accumulates the 128-bit product a·b onto the accumulator
// (hi, lo), returning the updated pair. Overflow of the 128-bit accumulator
// is the caller's responsibility: with q < 2^61 each product is < 2^122, so
// up to 64 products accumulate without wrapping (64·(2^61−1)^2 < 2^128).
func MACWide(hi, lo, a, b uint64) (uint64, uint64) {
	ph, pl := bits.Mul64(a, b)
	var c uint64
	lo, c = bits.Add64(lo, pl, 0)
	hi += ph + c
	return hi, lo
}

// MaxLazyProducts is the largest number of residue products (q < 2^61)
// that MACWide can accumulate in 128 bits without overflow; accumulators
// that may exceed it must fold (ReduceWide) and restart.
const MaxLazyProducts = 64

// VecMACWide accumulates a[j]·b[j] onto the 128-bit accumulator columns
// (hi[j], lo[j]) — the vector form of MACWide used by the fused keyswitch
// and linear-transform inner products. Pure integer arithmetic, no
// reductions: the caller budgets MaxLazyProducts terms between folds.
// 4×-unrolled over array-pointer blocks like VecMontMul: one bounds check
// per four columns, four independent multiply/carry chains in flight.
func VecMACWide(hi, lo, a, b []uint64) {
	n := len(hi)
	lo = lo[:n]
	a = a[:n]
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		hb := (*[4]uint64)(hi[i:])
		lb := (*[4]uint64)(lo[i:])
		ab := (*[4]uint64)(a[i:])
		bb := (*[4]uint64)(b[i:])
		for j := 0; j < 4; j++ {
			ph, pl := bits.Mul64(ab[j], bb[j])
			var c uint64
			lb[j], c = bits.Add64(lb[j], pl, 0)
			hb[j] += ph + c
		}
	}
	for ; i < n; i++ {
		ph, pl := bits.Mul64(a[i], b[i])
		var c uint64
		lo[i], c = bits.Add64(lo[i], pl, 0)
		hi[i] += ph + c
	}
}

// VecMACWidePair accumulates a0[j]·b[j] into (hi0,lo0) and a1[j]·b[j] into
// (hi1,lo1) in one pass. The shared multiplicand b is loaded once for both
// rows and the two independent carry chains interleave, which hides the
// 64×64-bit multiply latency the single-row kernel exposes — exactly the
// shape of the linear-transform MAC stage, where every plaintext diagonal
// multiplies both ciphertext components. Element-wise the arithmetic is
// identical to two VecMACWide calls.
func VecMACWidePair(hi0, lo0, hi1, lo1, a0, a1, b []uint64) {
	n := len(hi0)
	lo0 = lo0[:n]
	hi1 = hi1[:n]
	lo1 = lo1[:n]
	a0 = a0[:n]
	a1 = a1[:n]
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		h0 := (*[4]uint64)(hi0[i:])
		l0 := (*[4]uint64)(lo0[i:])
		h1 := (*[4]uint64)(hi1[i:])
		l1 := (*[4]uint64)(lo1[i:])
		x0 := (*[4]uint64)(a0[i:])
		x1 := (*[4]uint64)(a1[i:])
		bb := (*[4]uint64)(b[i:])
		for j := 0; j < 4; j++ {
			m := bb[j]
			p0h, p0l := bits.Mul64(x0[j], m)
			p1h, p1l := bits.Mul64(x1[j], m)
			var c uint64
			l0[j], c = bits.Add64(l0[j], p0l, 0)
			h0[j] += p0h + c
			l1[j], c = bits.Add64(l1[j], p1l, 0)
			h1[j] += p1h + c
		}
	}
	for ; i < n; i++ {
		m := b[i]
		p0h, p0l := bits.Mul64(a0[i], m)
		p1h, p1l := bits.Mul64(a1[i], m)
		var c uint64
		lo0[i], c = bits.Add64(lo0[i], p0l, 0)
		hi0[i] += p0h + c
		lo1[i], c = bits.Add64(lo1[i], p1l, 0)
		hi1[i] += p1h + c
	}
}

// VecReduceWide sets out[j] = (hi[j]·2^64 + lo[j]) mod q — the single
// deferred Barrett reduction per coefficient that closes a fused inner
// product. The ReduceWide body is written out with hoisted constants so the
// loop carries no per-element method-call overhead.
func (m Modulus) VecReduceWide(out, hi, lo []uint64) {
	q, bHi, bLo := m.Q, m.BarrettHi, m.BarrettLo
	n := len(out)
	hi = hi[:n]
	lo = lo[:n]
	for j := range out {
		h, l := hi[j], lo[j]
		mh1, _ := bits.Mul64(l, bLo)
		h2, l2 := bits.Mul64(l, bHi)
		h3, l3 := bits.Mul64(h, bLo)
		l4 := h * bHi
		s, c1 := bits.Add64(mh1, l2, 0)
		_, c2 := bits.Add64(s, l3, 0)
		t := l4 + h2 + h3 + c1 + c2
		r := l - t*q
		if r >= q {
			r -= q
		}
		if r >= q {
			r -= q
		}
		out[j] = r
	}
}

// VecReduceWideAdd sets out[j] = (out[j] + (hi[j]·2^64 + lo[j])) mod q —
// VecReduceWide fused with the modular add that folds a reduced accumulator
// bank into a running residue sum, saving one memory pass in the
// giant-step accumulation of double-hoisted linear transforms.
func (m Modulus) VecReduceWideAdd(out, hi, lo []uint64) {
	q, bHi, bLo := m.Q, m.BarrettHi, m.BarrettLo
	n := len(out)
	hi = hi[:n]
	lo = lo[:n]
	for j := range out {
		h, l := hi[j], lo[j]
		mh1, _ := bits.Mul64(l, bLo)
		h2, l2 := bits.Mul64(l, bHi)
		h3, l3 := bits.Mul64(h, bLo)
		l4 := h * bHi
		s, c1 := bits.Add64(mh1, l2, 0)
		_, c2 := bits.Add64(s, l3, 0)
		t := l4 + h2 + h3 + c1 + c2
		r := l - t*q
		if r >= q {
			r -= q
		}
		if r >= q {
			r -= q
		}
		r += out[j]
		if r >= q {
			r -= q
		}
		out[j] = r
	}
}

// VecFoldWide reduces each 128-bit accumulator column to its residue in
// place — lo[j] becomes the column mod q, hi[j] becomes zero — restarting
// the MaxLazyProducts budget while preserving the accumulated value mod q.
func (m Modulus) VecFoldWide(hi, lo []uint64) {
	m.VecReduceWide(lo, hi, lo)
	for j := range hi {
		hi[j] = 0
	}
}

// VecMulShoupAdd sets out[j] = (out[j] + a[j]·w) mod q using the
// precomputed Shoup constant for w — the scalar-multiply-accumulate that
// adds P·σ(c0) onto a running residue sum in the double-hoisted baby-step
// construction. The lazy product lands in [0, 2q); one conditional
// subtraction re-normalizes before the modular add.
func (m Modulus) VecMulShoupAdd(out, a []uint64, w, wShoup uint64) {
	q := m.Q
	n := len(out)
	a = a[:n]
	for j := range out {
		hi, _ := bits.Mul64(a[j], wShoup)
		r := a[j]*w - hi*q
		if r >= q {
			r -= q
		}
		r += out[j]
		if r >= q {
			r -= q
		}
		out[j] = r
	}
}

// VecMulPairSum sets c[j] = (a0[j]·b0[j] + a1[j]·b1[j]) mod q with one fused
// 128-bit accumulation and a single Barrett reduction per coefficient —
// bit-identical to Add(Mul(a0,b0), Mul(a1,b1)). This is the cross-term
// kernel of the degree-2 ciphertext product.
func (m Modulus) VecMulPairSum(c, a0, b0, a1, b1 []uint64) {
	q, bHi, bLo := m.Q, m.BarrettHi, m.BarrettLo
	n := len(c)
	a0 = a0[:n]
	b0 = b0[:n]
	a1 = a1[:n]
	b1 = b1[:n]
	for j := range c {
		hi, lo := bits.Mul64(a0[j], b0[j])
		ph, pl := bits.Mul64(a1[j], b1[j])
		var cy uint64
		lo, cy = bits.Add64(lo, pl, 0)
		hi += ph + cy
		mh1, _ := bits.Mul64(lo, bLo)
		h2, l2 := bits.Mul64(lo, bHi)
		h3, l3 := bits.Mul64(hi, bLo)
		l4 := hi * bHi
		s, c1 := bits.Add64(mh1, l2, 0)
		_, c2 := bits.Add64(s, l3, 0)
		t := l4 + h2 + h3 + c1 + c2
		r := lo - t*q
		if r >= q {
			r -= q
		}
		if r >= q {
			r -= q
		}
		c[j] = r
	}
}
