package numeric

import "math/bits"

// Montgomery multiplication: the elementwise-product path of the lazy
// kernels. REDC with the precomputed q^-1 mod 2^64 replaces the 128-bit
// Barrett sequence (≈5 full multiplications plus a long carry chain) with
// 2 full and 2 low multiplications, roughly halving the scalar cost of
// ring.MulCoeffwise and the encoder/encryptor elementwise loops. All
// methods require odd q (every NTT modulus is an odd prime); they are
// undefined for the degenerate q = 2 modulus.

// MRed returns a·b·2^-64 mod q, fully reduced. Requires a·b < q·2^64
// (satisfied whenever a < 2^63 and b < 2q, in particular for residue
// inputs).
func (m Modulus) MRed(a, b uint64) uint64 {
	r := m.MRedLazy(a, b)
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// MRedLazy is MRed without the final conditional subtraction: the result
// lies in (0, 2q). Same precondition as MRed.
func (m Modulus) MRedLazy(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	red := lo * m.QInv
	h, _ := bits.Mul64(red, m.Q)
	return hi - h + m.Q
}

// MForm lifts a into Montgomery form: a·2^64 mod q, fully reduced.
func (m Modulus) MForm(a uint64) uint64 {
	return m.MulShoup(a, m.RModQ, m.RModQShoup)
}

// MFormLazy lifts a into Montgomery form lazily: result in [0, 2q).
func (m Modulus) MFormLazy(a uint64) uint64 {
	return m.MulShoupLazy(a, m.RModQ, m.RModQShoup)
}

// IMForm drops a out of Montgomery form: a·2^-64 mod q.
func (m Modulus) IMForm(a uint64) uint64 {
	return m.MRed(a, 1)
}

// MontMul returns (a·b) mod q for residues a, b < q: one lazy Shoup
// multiplication lifts b to Montgomery form, one REDC folds the radix back
// out. Bit-identical to Mul (both are the fully reduced residue) at about
// half its scalar cost.
func (m Modulus) MontMul(a, b uint64) uint64 {
	return m.MRed(a, m.MFormLazy(b))
}

// VecMontMul sets c[i] = a[i]·b[i] mod q for residue vectors, bit-identical
// to elementwise Mul. The fused lift-and-REDC body exceeds the compiler's
// inlining budget as a scalar method, so the hot elementwise loops call this
// vector form, which hoists the modulus constants out of the loop and pays
// the method-call overhead once per vector instead of once per element.
// The loop body is 4×-unrolled over array-pointer blocks: the slice-to-array
// conversions pay one bounds check per four elements and give the four
// independent lift/REDC chains to the scheduler at once.
func (m Modulus) VecMontMul(c, a, b []uint64) {
	q, qInv := m.Q, m.QInv
	r, rs := m.RModQ, m.RModQShoup
	n := len(c)
	a = a[:n]
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		cb := (*[4]uint64)(c[i:])
		ab := (*[4]uint64)(a[i:])
		bb := (*[4]uint64)(b[i:])
		for j := 0; j < 4; j++ {
			// Lazy lift: bm ≡ b·2^64 (mod q), bm < 2q.
			bi := bb[j]
			bh, _ := bits.Mul64(bi, rs)
			bm := bi*r - bh*q
			// REDC: a·bm < q·2^63 < q·2^64.
			hi, lo := bits.Mul64(ab[j], bm)
			red := lo * qInv
			h, _ := bits.Mul64(red, q)
			t := hi - h + q
			if t >= q {
				t -= q
			}
			cb[j] = t
		}
	}
	for ; i < n; i++ {
		bi := b[i]
		bh, _ := bits.Mul64(bi, rs)
		bm := bi*r - bh*q
		hi, lo := bits.Mul64(a[i], bm)
		red := lo * qInv
		h, _ := bits.Mul64(red, q)
		t := hi - h + q
		if t >= q {
			t -= q
		}
		c[i] = t
	}
}

// VecMFormLazy sets dst[i] to the lazy Montgomery lift of src[i]:
// dst[i] ≡ src[i]·2^64 (mod q) with dst[i] < 2q. This is EXACTLY the lift
// VecMontMul computes internally for its b operand, hoisted out so callers
// multiplying by the same vector repeatedly (memoized plaintext operands)
// can pay for it once and then use VecMRed/VecMRedAdd.
func (m Modulus) VecMFormLazy(dst, src []uint64) {
	q := m.Q
	r, rs := m.RModQ, m.RModQShoup
	src = src[:len(dst)]
	for i := range dst {
		bi := src[i]
		bh, _ := bits.Mul64(bi, rs)
		dst[i] = bi*r - bh*q
	}
}

// VecMRed sets c[i] = a[i]·bm[i]·2^-64 mod q where bm is a lazy Montgomery
// lift (bm[i] < 2q, e.g. from VecMFormLazy). Composing VecMFormLazy with
// VecMRed is bit-identical to VecMontMul — it is the same code split at the
// same intermediate value.
func (m Modulus) VecMRed(c, a, bm []uint64) {
	q, qInv := m.Q, m.QInv
	a = a[:len(c)]
	bm = bm[:len(c)]
	for i := range c {
		hi, lo := bits.Mul64(a[i], bm[i])
		red := lo * qInv
		h, _ := bits.Mul64(red, q)
		t := hi - h + q
		if t >= q {
			t -= q
		}
		c[i] = t
	}
}

// VecMRedAdd sets c[i] = (c[i] + a[i]·bm[i]·2^-64) mod q for a lazy
// Montgomery-lifted bm — the multiply-accumulate companion of VecMRed,
// bit-identical to VecMontMulAdd after VecMFormLazy.
func (m Modulus) VecMRedAdd(c, a, bm []uint64) {
	q, qInv := m.Q, m.QInv
	a = a[:len(c)]
	bm = bm[:len(c)]
	for i := range c {
		hi, lo := bits.Mul64(a[i], bm[i])
		red := lo * qInv
		h, _ := bits.Mul64(red, q)
		t := hi - h + q
		if t >= q {
			t -= q
		}
		s := c[i] + t
		if s >= q {
			s -= q
		}
		c[i] = s
	}
}

// VecMontMulAdd sets c[i] = (c[i] + a[i]·b[i]) mod q, bit-identical to
// Add(c[i], Mul(a[i], b[i])) — the multiply-accumulate companion of
// VecMontMul.
// Same 4×-unrolled block structure as VecMontMul.
func (m Modulus) VecMontMulAdd(c, a, b []uint64) {
	q, qInv := m.Q, m.QInv
	r, rs := m.RModQ, m.RModQShoup
	n := len(c)
	a = a[:n]
	b = b[:n]
	i := 0
	for ; i+4 <= n; i += 4 {
		cb := (*[4]uint64)(c[i:])
		ab := (*[4]uint64)(a[i:])
		bb := (*[4]uint64)(b[i:])
		for j := 0; j < 4; j++ {
			bi := bb[j]
			bh, _ := bits.Mul64(bi, rs)
			bm := bi*r - bh*q
			hi, lo := bits.Mul64(ab[j], bm)
			red := lo * qInv
			h, _ := bits.Mul64(red, q)
			t := hi - h + q
			if t >= q {
				t -= q
			}
			s := cb[j] + t
			if s >= q {
				s -= q
			}
			cb[j] = s
		}
	}
	for ; i < n; i++ {
		bi := b[i]
		bh, _ := bits.Mul64(bi, rs)
		bm := bi*r - bh*q
		hi, lo := bits.Mul64(a[i], bm)
		red := lo * qInv
		h, _ := bits.Mul64(red, q)
		t := hi - h + q
		if t >= q {
			t -= q
		}
		s := c[i] + t
		if s >= q {
			s -= q
		}
		c[i] = s
	}
}
