package numeric

import (
	"math/big"
	"math/rand"
	"testing"
)

// MulShoupLazy must stay in [0, 2q) and agree with MulShoup modulo q for
// arbitrary 64-bit inputs — including lazy residues just below 2q and 4q,
// which is how the Harvey butterflies feed it.
func TestMulShoupLazyBoundsAndCongruence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, q := range testModuli {
		m := NewModulus(q)
		twoQ, fourQ := 2*q, 4*q
		ws := func(w uint64) uint64 { return m.ShoupConstant(w) }
		inputs := []uint64{0, 1, q - 1, q, twoQ - 1}
		if fourQ > twoQ { // no overflow for q < 2^62
			inputs = append(inputs, fourQ-1)
		}
		for i := 0; i < 200; i++ {
			inputs = append(inputs, rng.Uint64()%fourQ)
		}
		for _, w := range []uint64{0, 1, q - 1, rng.Uint64() % q} {
			c := ws(w)
			for _, a := range inputs {
				lazy := m.MulShoupLazy(a, w, c)
				if lazy >= twoQ {
					t.Fatalf("q=%d MulShoupLazy(%d,%d)=%d ≥ 2q", q, a, w, lazy)
				}
				want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(w))
				want.Mod(want, new(big.Int).SetUint64(q))
				if m.Reduce(lazy) != want.Uint64() {
					t.Fatalf("q=%d MulShoupLazy(%d,%d) incongruent", q, a, w)
				}
			}
		}
	}
}

// The normalization helpers must be exact at every band edge: 0, 1, q−1, q,
// 2q−1, 2q, 4q−1.
func TestReduceBandEdges(t *testing.T) {
	for _, q := range testModuli {
		m := NewModulus(q)
		for _, a := range []uint64{0, 1, q - 1, q, 2*q - 1} {
			if got, want := m.ReduceTwoQ(a), a%q; got != want {
				t.Errorf("q=%d ReduceTwoQ(%d)=%d want %d", q, a, got, want)
			}
		}
		for _, a := range []uint64{0, 1, q - 1, q, 2*q - 1, 2 * q, 3*q - 1, 3 * q, 4*q - 1} {
			if got, want := m.ReduceFourQ(a), a%q; got != want {
				t.Errorf("q=%d ReduceFourQ(%d)=%d want %d", q, a, got, want)
			}
		}
	}
}

// MACWide must accumulate exactly like math/big, up to MaxLazyProducts
// maximal products.
func TestMACWideAgainstBig(t *testing.T) {
	q := uint64(2305843009213554689) // 61-bit: worst case for accumulator headroom
	m := NewModulus(q)
	var hi, lo uint64
	want := new(big.Int)
	aMax, bMax := q-1, q-1
	for i := 0; i < MaxLazyProducts; i++ {
		hi, lo = MACWide(hi, lo, aMax, bMax)
		want.Add(want, new(big.Int).Mul(new(big.Int).SetUint64(aMax), new(big.Int).SetUint64(bMax)))
	}
	got := new(big.Int).Lsh(new(big.Int).SetUint64(hi), 64)
	got.Add(got, new(big.Int).SetUint64(lo))
	if got.Cmp(want) != 0 {
		t.Fatalf("MACWide accumulated %v want %v", got, want)
	}
	// And the single deferred reduction recovers the exact digit sum.
	wantMod := new(big.Int).Mod(want, new(big.Int).SetUint64(q)).Uint64()
	if r := m.ReduceWide(hi, lo); r != wantMod {
		t.Fatalf("ReduceWide(acc)=%d want %d", r, wantMod)
	}
}

// ReduceWide is now valid for ANY 128-bit input (the fused inner-product
// accumulators rely on this), not just products below q·2^64.
func TestReduceWideFullRange(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, q := range testModuli {
		m := NewModulus(q)
		bq := new(big.Int).SetUint64(q)
		check := func(hi, lo uint64) {
			x := new(big.Int).Lsh(new(big.Int).SetUint64(hi), 64)
			x.Add(x, new(big.Int).SetUint64(lo))
			want := new(big.Int).Mod(x, bq).Uint64()
			if got := m.ReduceWide(hi, lo); got != want {
				t.Fatalf("q=%d ReduceWide(%#x,%#x)=%d want %d", q, hi, lo, got, want)
			}
		}
		check(^uint64(0), ^uint64(0)) // 2^128 − 1
		check(^uint64(0), 0)
		check(0, ^uint64(0))
		for i := 0; i < 1000; i++ {
			check(rng.Uint64(), rng.Uint64())
		}
	}
}

// TestReduceWideFixupSubtraction pins the conditional-subtraction fix-up:
// for x just above the largest multiple of q below 2^128, the quotient
// estimate undershoots by exactly 1 and the first of the two guards fires
// (r ∈ [q, 2q)). The sweep also re-proves, against math/big, that the
// estimate never undershoots by 2 — the second guard is pure safety margin,
// consistent with the e < 1 error bound in the ReduceWide comment.
func TestReduceWideFixupSubtraction(t *testing.T) {
	one := big.NewInt(1)
	b128 := new(big.Int).Lsh(one, 128)
	mask := new(big.Int).Sub(new(big.Int).Lsh(one, 64), one)
	for _, q := range testModuli {
		m := NewModulus(q)
		bq := new(big.Int).SetUint64(q)
		mu := new(big.Int).Lsh(new(big.Int).SetUint64(m.BarrettHi), 64)
		mu.Add(mu, new(big.Int).SetUint64(m.BarrettLo))
		k := new(big.Int).Div(new(big.Int).Sub(b128, one), bq)
		fixups := 0
		for s := int64(0); s < 512; s++ {
			x := new(big.Int).Mul(k, bq)
			x.Add(x, big.NewInt(s))
			if x.Cmp(b128) >= 0 {
				break
			}
			// Reference quotient estimate and raw remainder.
			est := new(big.Int).Mul(x, mu)
			est.Rsh(est, 128)
			raw := new(big.Int).Sub(x, new(big.Int).Mul(est, bq))
			if raw.Cmp(new(big.Int).Lsh(bq, 1)) >= 0 {
				t.Fatalf("q=%d x=%v: raw remainder %v ≥ 2q — undershoot-by-1 bound violated", q, x, raw)
			}
			if raw.Cmp(bq) >= 0 {
				fixups++
			}
			hi := new(big.Int).Rsh(x, 64).Uint64()
			lo := new(big.Int).And(x, mask).Uint64()
			want := new(big.Int).Mod(x, bq).Uint64()
			if got := m.ReduceWide(hi, lo); got != want {
				t.Fatalf("q=%d ReduceWide(%#x,%#x)=%d want %d", q, hi, lo, got, want)
			}
		}
		if fixups == 0 {
			t.Errorf("q=%d: sweep never exercised the fix-up subtraction", q)
		}
	}
}

// The vector fused-accumulation kernels must agree with their scalar
// definitions: MaxLazyProducts MACs, a fold in the middle, one deferred
// reduction at the end.
func TestVecWideKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 64
	for _, q := range testModuli {
		m := NewModulus(q)
		hi := make([]uint64, n)
		lo := make([]uint64, n)
		want := make([]*big.Int, n)
		for j := range want {
			want[j] = new(big.Int)
		}
		bq := new(big.Int).SetUint64(q)
		terms := MaxLazyProducts + MaxLazyProducts/2 // forces one fold
		a := make([]uint64, n)
		b := make([]uint64, n)
		for k := 0; k < terms; k++ {
			for j := 0; j < n; j++ {
				a[j] = rng.Uint64() % q
				b[j] = rng.Uint64() % q
			}
			a[0], b[0] = q-1, q-1 // keep one maximal column
			VecMACWide(hi, lo, a, b)
			for j := 0; j < n; j++ {
				want[j].Add(want[j], new(big.Int).Mul(new(big.Int).SetUint64(a[j]), new(big.Int).SetUint64(b[j])))
			}
			if k == MaxLazyProducts-1 {
				m.VecFoldWide(hi, lo)
				for j := range want {
					want[j].Mod(want[j], bq)
				}
			}
		}
		out := make([]uint64, n)
		m.VecReduceWide(out, hi, lo)
		for j := 0; j < n; j++ {
			if w := new(big.Int).Mod(want[j], bq).Uint64(); out[j] != w {
				t.Fatalf("q=%d col %d: fused sum %d want %d", q, j, out[j], w)
			}
		}
	}
}

// VecReduceWideAdd must match Add(out, ReduceWide) column-wise, and
// VecMulShoupAdd must match Add(out, MulShoup), including maximal residues —
// these close the giant-step accumulation of double-hoisted linear
// transforms.
func TestVecWideAddKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	const n = 32
	for _, q := range testModuli {
		m := NewModulus(q)
		hi := make([]uint64, n)
		lo := make([]uint64, n)
		out := make([]uint64, n)
		want := make([]uint64, n)
		for j := 0; j < n; j++ {
			hi[j], lo[j] = rng.Uint64(), rng.Uint64()
			out[j] = rng.Uint64() % q
		}
		hi[0], lo[0], out[0] = ^uint64(0), ^uint64(0), q-1
		for j := 0; j < n; j++ {
			want[j] = m.Add(out[j], m.ReduceWide(hi[j], lo[j]))
		}
		m.VecReduceWideAdd(out, hi, lo)
		for j := 0; j < n; j++ {
			if out[j] != want[j] {
				t.Fatalf("q=%d col %d: VecReduceWideAdd %d want %d", q, j, out[j], want[j])
			}
		}

		a := make([]uint64, n)
		for j := 0; j < n; j++ {
			a[j] = rng.Uint64() % q
			out[j] = rng.Uint64() % q
		}
		a[0], out[0] = q-1, q-1
		w := q - 1
		ws := m.ShoupConstant(w)
		for j := 0; j < n; j++ {
			want[j] = m.Add(out[j], m.Mul(a[j], w))
		}
		m.VecMulShoupAdd(out, a, w, ws)
		for j := 0; j < n; j++ {
			if out[j] != want[j] {
				t.Fatalf("q=%d col %d: VecMulShoupAdd %d want %d", q, j, out[j], want[j])
			}
		}
	}
}

// VecMulPairSum must match Add(Mul, Mul) bit for bit, including maximal
// residues.
func TestVecMulPairSum(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	const n = 32
	for _, q := range testModuli {
		m := NewModulus(q)
		a0 := make([]uint64, n)
		b0 := make([]uint64, n)
		a1 := make([]uint64, n)
		b1 := make([]uint64, n)
		for j := 0; j < n; j++ {
			a0[j], b0[j] = rng.Uint64()%q, rng.Uint64()%q
			a1[j], b1[j] = rng.Uint64()%q, rng.Uint64()%q
		}
		a0[0], b0[0], a1[0], b1[0] = q-1, q-1, q-1, q-1
		c := make([]uint64, n)
		m.VecMulPairSum(c, a0, b0, a1, b1)
		for j := 0; j < n; j++ {
			if want := m.Add(m.Mul(a0[j], b0[j]), m.Mul(a1[j], b1[j])); c[j] != want {
				t.Fatalf("q=%d col %d: pair sum %d want %d", q, j, c[j], want)
			}
		}
	}
}

// The lazy Shoup product plus Harvey-style correction used by the
// butterflies must reproduce bits.Mul64-based reference arithmetic for
// twiddle multiplication at all band edges.
func TestLazyButterflyAlgebra(t *testing.T) {
	for _, q := range testModuli {
		if 4*q < q { // needs 4q headroom
			continue
		}
		m := NewModulus(q)
		w := q - 1 // worst-case twiddle
		ws := m.ShoupConstant(w)
		for _, u := range []uint64{0, 1, q - 1, q, 2*q - 1, 2 * q, 4*q - 1} {
			for _, v := range []uint64{0, 1, q - 1, q, 2*q - 1, 2 * q, 4*q - 1} {
				uu := u
				if uu >= 2*q {
					uu -= 2 * q
				}
				tt := m.MulShoupLazy(v, w, ws)
				x := uu + tt
				y := uu + 2*q - tt
				if x >= 4*q || y >= 4*q {
					t.Fatalf("q=%d butterfly outputs out of 4q band: x=%d y=%d", q, x, y)
				}
				wantX := m.Add(m.Reduce(u), m.Mul(m.Reduce(v), w))
				wantY := m.Sub(m.Reduce(u), m.Mul(m.Reduce(v), w))
				if m.ReduceFourQ(x) != wantX || m.ReduceFourQ(y) != wantY {
					t.Fatalf("q=%d lazy butterfly incongruent at u=%d v=%d", q, u, v)
				}
			}
		}
	}
}

// VecMACWidePair must be element-for-element identical to two VecMACWide
// calls over the shared multiplicand — including odd tail lengths that
// exercise the scalar remainder loop.
func TestVecMACWidePairMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{1, 3, 4, 7, 64, 129} {
		a0 := make([]uint64, n)
		a1 := make([]uint64, n)
		b := make([]uint64, n)
		hi0 := make([]uint64, n)
		lo0 := make([]uint64, n)
		hi1 := make([]uint64, n)
		lo1 := make([]uint64, n)
		wantHi0 := make([]uint64, n)
		wantLo0 := make([]uint64, n)
		wantHi1 := make([]uint64, n)
		wantLo1 := make([]uint64, n)
		for j := 0; j < n; j++ {
			a0[j], a1[j], b[j] = rng.Uint64(), rng.Uint64(), rng.Uint64()
			hi0[j], lo0[j] = rng.Uint64(), rng.Uint64()
			hi1[j], lo1[j] = rng.Uint64(), rng.Uint64()
			wantHi0[j], wantLo0[j] = hi0[j], lo0[j]
			wantHi1[j], wantLo1[j] = hi1[j], lo1[j]
		}
		VecMACWide(wantHi0, wantLo0, a0, b)
		VecMACWide(wantHi1, wantLo1, a1, b)
		VecMACWidePair(hi0, lo0, hi1, lo1, a0, a1, b)
		for j := 0; j < n; j++ {
			if hi0[j] != wantHi0[j] || lo0[j] != wantLo0[j] || hi1[j] != wantHi1[j] || lo1[j] != wantLo1[j] {
				t.Fatalf("n=%d j=%d pair kernel diverges from single-row kernel", n, j)
			}
		}
	}
}
