package numeric

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// oddTestModuli are the moduli the Montgomery path is defined for (all NTT
// moduli are odd primes; q=2 is excluded by construction).
func oddTestModuli() []uint64 {
	var out []uint64
	for _, q := range testModuli {
		if q%2 == 1 {
			out = append(out, q)
		}
	}
	return out
}

// The REDC constant must be the exact inverse of q modulo 2^64.
func TestMontgomeryInverse(t *testing.T) {
	for _, q := range oddTestModuli() {
		m := NewModulus(q)
		if got := q * m.QInv; got != 1 {
			t.Errorf("q=%d: q·QInv = %d mod 2^64, want 1", q, got)
		}
	}
}

// MontMul must be bit-identical to the Barrett Mul for every residue pair —
// this is what licenses swapping it into the ring elementwise loops.
func TestMontMulMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, q := range oddTestModuli() {
		m := NewModulus(q)
		edge := []uint64{0, 1, q - 1, q / 2, q/2 + 1}
		for _, a := range edge {
			for _, b := range edge {
				if got, want := m.MontMul(a, b), m.Mul(a, b); got != want {
					t.Fatalf("q=%d MontMul(%d,%d)=%d want %d", q, a, b, got, want)
				}
			}
		}
		for i := 0; i < 500; i++ {
			a, b := rng.Uint64()%q, rng.Uint64()%q
			if got, want := m.MontMul(a, b), m.Mul(a, b); got != want {
				t.Fatalf("q=%d MontMul(%d,%d)=%d want %d", q, a, b, got, want)
			}
		}
	}
}

// MForm/IMForm are mutual inverses, and MRed in the Montgomery domain
// realizes the ring product: IMForm(MRed(MForm(a), MForm(b))·2^64...) — the
// compact identity is MRed(MForm(a), MForm(b)) == MForm(a·b mod q).
func TestMFormRoundTripAndHomomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, q := range oddTestModuli() {
		m := NewModulus(q)
		for _, a := range []uint64{0, 1, q - 1} {
			if got := m.IMForm(m.MForm(a)); got != a {
				t.Fatalf("q=%d IMForm(MForm(%d))=%d", q, a, got)
			}
		}
		for i := 0; i < 300; i++ {
			a, b := rng.Uint64()%q, rng.Uint64()%q
			if got := m.IMForm(m.MForm(a)); got != a {
				t.Fatalf("q=%d IMForm(MForm(%d))=%d", q, a, got)
			}
			if got, want := m.MRed(m.MForm(a), m.MForm(b)), m.MForm(m.Mul(a, b)); got != want {
				t.Fatalf("q=%d MRed homomorphism broken for (%d,%d)", q, a, b)
			}
		}
	}
}

// MRedLazy stays within its advertised (0, 2q) band and agrees with MRed
// modulo q, including at the residue edges and lazy inputs just below 2q.
func TestMRedLazyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, q := range oddTestModuli() {
		m := NewModulus(q)
		twoQ := 2 * q
		cases := [][2]uint64{
			{0, 0}, {1, 1}, {q - 1, q - 1}, {q - 1, twoQ - 1}, {1, twoQ - 1},
		}
		for i := 0; i < 300; i++ {
			cases = append(cases, [2]uint64{rng.Uint64() % q, rng.Uint64() % twoQ})
		}
		for _, c := range cases {
			a, b := c[0], c[1]
			lazy := m.MRedLazy(a, b)
			if lazy > twoQ {
				t.Fatalf("q=%d MRedLazy(%d,%d)=%d > 2q", q, a, b, lazy)
			}
			if m.Reduce(lazy) != m.MRed(a, b) {
				t.Fatalf("q=%d MRedLazy(%d,%d) incongruent with MRed", q, a, b)
			}
		}
	}
}

// The vector Montgomery kernels (the ring's elementwise path) must be
// bit-identical to the scalar Barrett reference.
func TestVecMontMulMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const n = 33 // odd length: no accidental alignment
	for _, q := range oddTestModuli() {
		m := NewModulus(q)
		a := make([]uint64, n)
		b := make([]uint64, n)
		acc := make([]uint64, n)
		for j := 0; j < n; j++ {
			a[j], b[j], acc[j] = rng.Uint64()%q, rng.Uint64()%q, rng.Uint64()%q
		}
		a[0], b[0] = q-1, q-1
		a[1], b[1] = 0, q-1
		c := make([]uint64, n)
		m.VecMontMul(c, a, b)
		for j := 0; j < n; j++ {
			if want := m.Mul(a[j], b[j]); c[j] != want {
				t.Fatalf("q=%d VecMontMul[%d]=%d want %d", q, j, c[j], want)
			}
		}
		got := append([]uint64(nil), acc...)
		m.VecMontMulAdd(got, a, b)
		for j := 0; j < n; j++ {
			if want := m.Add(acc[j], m.Mul(a[j], b[j])); got[j] != want {
				t.Fatalf("q=%d VecMontMulAdd[%d]=%d want %d", q, j, got[j], want)
			}
		}
	}
}

// Property over full residue range on a 61-bit modulus.
func TestMontMulProperty(t *testing.T) {
	m := NewModulus(2305843009213554689)
	f := func(a, b uint64) bool {
		a, b = a%m.Q, b%m.Q
		return m.MontMul(a, b) == m.Mul(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// FuzzMontgomeryRoundTrip drives the full Montgomery cycle with arbitrary
// 64-bit words: lift, multiply in-domain, drop, and cross-check against the
// Barrett reference with math/big as the arbiter.
func FuzzMontgomeryRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0))
	f.Add(uint64(1), uint64(2305843009213554688))
	f.Add(^uint64(0), uint64(12345))
	f.Fuzz(func(t *testing.T, a, b uint64) {
		for _, q := range []uint64{17, 998244353, 2305843009213554689} {
			m := NewModulus(q)
			ar, br := a%q, b%q
			if got := m.IMForm(m.MForm(ar)); got != ar {
				t.Fatalf("q=%d: MForm/IMForm round trip %d -> %d", q, ar, got)
			}
			got := m.MontMul(ar, br)
			want := new(big.Int).Mul(new(big.Int).SetUint64(ar), new(big.Int).SetUint64(br))
			want.Mod(want, new(big.Int).SetUint64(q))
			if got != want.Uint64() {
				t.Fatalf("q=%d: MontMul(%d,%d)=%d want %v", q, ar, br, got, want)
			}
			if got != m.Mul(ar, br) {
				t.Fatalf("q=%d: MontMul and Mul disagree on (%d,%d)", q, ar, br)
			}
		}
	})
}

func BenchmarkMontMul(b *testing.B) {
	m := NewModulus(1152921504606584833)
	x, y := uint64(123456789123456789)%m.Q, uint64(987654321987654321)%m.Q
	var s uint64
	for i := 0; i < b.N; i++ {
		s = m.MontMul(s^x, y)
	}
	sink = s
}

func BenchmarkMRed(b *testing.B) {
	m := NewModulus(1152921504606584833)
	x := uint64(123456789123456789) % m.Q
	y := m.MForm(uint64(987654321987654321) % m.Q)
	var s uint64
	for i := 0; i < b.N; i++ {
		s = m.MRed(s^x, y)
	}
	sink = s
}
