package numeric

import (
	"math/rand"
	"testing"
)

// The memoized plaintext-multiplication path is VecMFormLazy once plus
// VecMRed per use. That composition must be BIT-IDENTICAL to VecMontMul —
// it is the same arithmetic split at the same intermediate — or memoizing a
// plaintext would change ciphertext bits.
func TestMFormLazyMRedComposesToMontMul(t *testing.T) {
	const n = 256
	rng := rand.New(rand.NewSource(31))
	for _, q := range oddTestModuli() {
		m := NewModulus(q)
		a := make([]uint64, n)
		b := make([]uint64, n)
		for i := range a {
			a[i] = rng.Uint64() % q
			b[i] = rng.Uint64() % q
		}
		// Edge residues in the first slots.
		edge := []uint64{0, 1, q - 1, q / 2}
		copy(a, edge)
		copy(b, []uint64{q - 1, 0, q - 1, 1})

		bm := make([]uint64, n)
		m.VecMFormLazy(bm, b)
		for i, w := range bm {
			if w >= 2*q {
				t.Fatalf("q=%d: lazy Montgomery form out of range at %d: %d >= 2q", q, i, w)
			}
		}

		got := make([]uint64, n)
		want := make([]uint64, n)
		m.VecMRed(got, a, bm)
		m.VecMontMul(want, a, b)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("q=%d: VecMRed∘VecMFormLazy != VecMontMul at %d: %d != %d (a=%d b=%d)",
					q, i, got[i], want[i], a[i], b[i])
			}
		}

		accRed := make([]uint64, n)
		accMul := make([]uint64, n)
		for i := range accRed {
			accRed[i] = rng.Uint64() % q
			accMul[i] = accRed[i]
		}
		m.VecMRedAdd(accRed, a, bm)
		m.VecMontMulAdd(accMul, a, b)
		for i := range accRed {
			if accRed[i] != accMul[i] {
				t.Fatalf("q=%d: VecMRedAdd∘VecMFormLazy != VecMontMulAdd at %d: %d != %d",
					q, i, accRed[i], accMul[i])
			}
		}
	}
}
