package ring

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, pool := range testPools() {
		for _, n := range []int{0, 1, 2, 3, 17, 100, 1000} {
			hits := make([]int32, n)
			pool.ForEach(n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", pool.Workers(), n, i, h)
				}
			}
		}
	}
}

func TestForEachChunkCoversEveryIndexOnce(t *testing.T) {
	for _, pool := range testPools() {
		for _, n := range []int{0, 1, 2, 7, 64, 1000, 4097} {
			hits := make([]int32, n)
			pool.ForEachChunk(n, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", pool.Workers(), n, i, h)
				}
			}
		}
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	for _, pool := range []*Pool{nil, NewPool(4)} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("workers=%d: recovered %v, want \"boom\"", pool.Workers(), r)
				}
			}()
			pool.ForEach(64, func(i int) {
				if i == 13 {
					panic("boom")
				}
			})
		}()
	}
}

// TestForEachNested ensures nested ForEach calls complete rather than
// deadlock when the pool is saturated (inner calls degrade to inline).
func TestForEachNested(t *testing.T) {
	pool := NewPool(2)
	var total atomic.Int64
	pool.ForEach(8, func(i int) {
		pool.ForEach(8, func(j int) {
			total.Add(1)
		})
	})
	if total.Load() != 64 {
		t.Fatalf("nested ForEach ran %d items, want 64", total.Load())
	}
}

// TestForEachConcurrent hammers one shared pool from many goroutines; run
// under -race this proves the claiming counter and semaphore are sound.
func TestForEachConcurrent(t *testing.T) {
	pool := NewPool(4)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum atomic.Int64
			pool.ForEach(100, func(i int) { sum.Add(int64(i)) })
			if sum.Load() != 4950 {
				t.Error("concurrent ForEach lost items")
			}
		}()
	}
	wg.Wait()
}

func TestPoolWorkers(t *testing.T) {
	if w := (*Pool)(nil).Workers(); w != 1 {
		t.Errorf("nil pool workers = %d, want 1", w)
	}
	if w := NewPool(1).Workers(); w != 1 {
		t.Errorf("NewPool(1).Workers() = %d, want 1", w)
	}
	if w := NewPool(7).Workers(); w != 7 {
		t.Errorf("NewPool(7).Workers() = %d, want 7", w)
	}
	if w := NewPool(0).Workers(); w < 1 {
		t.Errorf("NewPool(0).Workers() = %d, want ≥ 1 (GOMAXPROCS)", w)
	}
	if DefaultPool() != DefaultPool() {
		t.Error("DefaultPool must return a stable singleton")
	}
}
