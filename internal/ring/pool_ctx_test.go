package ring

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// ForEachCtx with a live context behaves exactly like ForEach.
func TestForEachCtxRunsAllItems(t *testing.T) {
	p := NewPool(4)
	const n = 1000
	var hits [n]atomic.Int32
	if err := p.ForEachCtx(context.Background(), n, func(i int) {
		hits[i].Add(1)
	}); err != nil {
		t.Fatalf("ForEachCtx: %v", err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("item %d ran %d times, want 1", i, got)
		}
	}
}

// Cancelling the context mid-run stops further claims and surfaces
// context.Canceled; items already started finish normally.
func TestForEachCtxHonorsCancellation(t *testing.T) {
	p := NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	const n = 10_000
	err := p.ForEachCtx(ctx, n, func(i int) {
		if done.Add(1) == 8 {
			cancel()
		}
		time.Sleep(10 * time.Microsecond)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := done.Load(); d >= n {
		t.Fatalf("all %d items ran despite cancellation", n)
	}
}

// A context cancelled before the call runs nothing.
func TestForEachCtxPreCancelled(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		var ran atomic.Int64
		err := p.ForEachCtx(ctx, 100, func(i int) { ran.Add(1) })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if ran.Load() != 0 {
			t.Fatalf("workers=%d: %d items ran under a dead context", workers, ran.Load())
		}
	}
}

// A worker panic is captured and returned as a *WorkerPanicError carrying
// the panicking item's index, value, and stack — not re-raised.
func TestForEachCtxCapturesWorkerPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		err := p.ForEachCtx(context.Background(), 64, func(i int) {
			if i == 13 {
				panic("boom")
			}
		})
		var wp *WorkerPanicError
		if !errors.As(err, &wp) {
			t.Fatalf("workers=%d: err = %v, want *WorkerPanicError", workers, err)
		}
		if wp.Index != 13 || wp.Value != "boom" {
			t.Fatalf("workers=%d: captured %+v, want index 13 value boom", workers, wp)
		}
		if len(wp.Stack) == 0 || !bytes.Contains(wp.Stack, []byte("goroutine")) {
			t.Fatalf("workers=%d: missing stack capture", workers)
		}
	}
}

// A panic outranks a concurrent cancellation: exactly one error comes back
// and it is the panic.
func TestForEachCtxPanicOutranksCancel(t *testing.T) {
	p := NewPool(4)
	ctx, cancel := context.WithCancel(context.Background())
	err := p.ForEachCtx(ctx, 256, func(i int) {
		if i == 3 {
			cancel()
			panic("late")
		}
	})
	var wp *WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("err = %v, want *WorkerPanicError", err)
	}
}

// The legacy ForEach contract is unchanged: the original panic value is
// re-raised on the caller.
func TestForEachStillRethrowsOriginalPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		func() {
			defer func() {
				r := recover()
				if r != "original" {
					t.Fatalf("workers=%d: recovered %v, want the original panic value", workers, r)
				}
			}()
			p.ForEach(32, func(i int) {
				if i == 7 {
					panic("original")
				}
			})
		}()
	}
}
