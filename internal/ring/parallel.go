package ring

import "sync"

// Parallel limb execution. RNS limbs are fully independent, so the
// transforms and element-wise operations parallelize across goroutines
// with bit-identical results — the software counterpart of the
// accelerator's limb-level parallelism.

// forEachLimb runs fn(i) for every limb index in [0, limbs) across up to
// `workers` goroutines. workers ≤ 1 runs inline.
func forEachLimb(limbs, workers int, fn func(i int)) {
	if workers <= 1 || limbs <= 1 {
		for i := 0; i < limbs; i++ {
			fn(i)
		}
		return
	}
	if workers > limbs {
		workers = limbs
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < limbs; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// NTTParallel transforms all limbs to the evaluation domain using up to
// `workers` goroutines. Equivalent to NTT.
func (r *Ring) NTTParallel(p *Poly, workers int) {
	if p.IsNTT {
		panic("ring: NTT on NTT-domain polynomial")
	}
	forEachLimb(len(p.Coeffs), workers, func(i int) {
		r.Tables[i].Forward(p.Coeffs[i])
	})
	p.IsNTT = true
}

// INTTParallel transforms all limbs back to the coefficient domain.
func (r *Ring) INTTParallel(p *Poly, workers int) {
	if !p.IsNTT {
		panic("ring: INTT on coefficient-domain polynomial")
	}
	forEachLimb(len(p.Coeffs), workers, func(i int) {
		r.Tables[i].Inverse(p.Coeffs[i])
	})
	p.IsNTT = false
}

// MulCoeffwiseParallel computes out = a ⊙ b limb-wise across workers.
func (r *Ring) MulCoeffwiseParallel(out, a, b *Poly, workers int) {
	limbs := r.check(out, a, b)
	if !a.IsNTT || !b.IsNTT {
		panic("ring: MulCoeffwiseParallel requires NTT-domain operands")
	}
	forEachLimb(limbs, workers, func(i int) {
		mod := r.Moduli[i]
		oc, ac, bc := out.Coeffs[i], a.Coeffs[i], b.Coeffs[i]
		for j := range oc {
			oc[j] = mod.Mul(ac[j], bc[j])
		}
	})
	out.IsNTT = true
}

// AddParallel computes out = a + b limb-wise across workers.
func (r *Ring) AddParallel(out, a, b *Poly, workers int) {
	limbs := r.check(out, a, b)
	forEachLimb(limbs, workers, func(i int) {
		mod := r.Moduli[i]
		oc, ac, bc := out.Coeffs[i], a.Coeffs[i], b.Coeffs[i]
		for j := range oc {
			oc[j] = mod.Add(ac[j], bc[j])
		}
	})
	out.IsNTT = a.IsNTT
}
