package ring

// Parallel limb execution. RNS limbs are fully independent, so the
// transforms and element-wise operations parallelize across goroutines
// with bit-identical results — the software counterpart of the
// accelerator's limb-level parallelism. Every *Parallel method takes the
// execution Pool to run on; a nil pool (or Workers()==1) degrades to the
// exact serial loop, so the serial methods and their parallel variants are
// the same code path at workers=1.

// NTTParallel transforms all limbs to the evaluation domain using the
// pool's workers. Equivalent to NTT.
func (r *Ring) NTTParallel(p *Poly, pool *Pool) {
	if pool.Workers() <= 1 {
		r.NTT(p)
		return
	}
	if p.IsNTT {
		panic("ring: NTT on NTT-domain polynomial")
	}
	pool.ForEach(len(p.Coeffs), func(i int) {
		r.ForwardLimb(i, p.Coeffs[i])
	})
	p.IsNTT = true
}

// INTTParallel transforms all limbs back to the coefficient domain.
func (r *Ring) INTTParallel(p *Poly, pool *Pool) {
	if pool.Workers() <= 1 {
		r.INTT(p)
		return
	}
	if !p.IsNTT {
		panic("ring: INTT on coefficient-domain polynomial")
	}
	pool.ForEach(len(p.Coeffs), func(i int) {
		r.InverseLimb(i, p.Coeffs[i])
	})
	p.IsNTT = false
}

// MulCoeffwiseParallel computes out = a ⊙ b limb-wise across the pool.
func (r *Ring) MulCoeffwiseParallel(out, a, b *Poly, pool *Pool) {
	if pool.Workers() <= 1 {
		r.MulCoeffwise(out, a, b)
		return
	}
	limbs := r.check(out, a, b)
	if !a.IsNTT || !b.IsNTT {
		panic("ring: MulCoeffwiseParallel requires NTT-domain operands")
	}
	pool.ForEach(limbs, func(i int) {
		r.mulLimb(r.Moduli[i], out.Coeffs[i], a.Coeffs[i], b.Coeffs[i])
	})
	out.IsNTT = true
}

// MulCoeffwiseAddParallel computes out += a ⊙ b limb-wise (NTT domain).
func (r *Ring) MulCoeffwiseAddParallel(out, a, b *Poly, pool *Pool) {
	if pool.Workers() <= 1 {
		r.MulCoeffwiseAdd(out, a, b)
		return
	}
	limbs := r.check(out, a, b)
	if !a.IsNTT || !b.IsNTT {
		panic("ring: MulCoeffwiseAddParallel requires NTT-domain operands")
	}
	pool.ForEach(limbs, func(i int) {
		r.mulAddLimb(r.Moduli[i], out.Coeffs[i], a.Coeffs[i], b.Coeffs[i])
	})
	out.IsNTT = true
}

// AddParallel computes out = a + b limb-wise across the pool.
func (r *Ring) AddParallel(out, a, b *Poly, pool *Pool) {
	if pool.Workers() <= 1 {
		r.Add(out, a, b)
		return
	}
	limbs := r.check(out, a, b)
	pool.ForEach(limbs, func(i int) {
		mod := r.Moduli[i]
		oc, ac, bc := out.Coeffs[i], a.Coeffs[i], b.Coeffs[i]
		for j := range oc {
			oc[j] = mod.Add(ac[j], bc[j])
		}
	})
	out.IsNTT = a.IsNTT
}

// SubParallel computes out = a − b limb-wise across the pool.
func (r *Ring) SubParallel(out, a, b *Poly, pool *Pool) {
	if pool.Workers() <= 1 {
		r.Sub(out, a, b)
		return
	}
	limbs := r.check(out, a, b)
	pool.ForEach(limbs, func(i int) {
		mod := r.Moduli[i]
		oc, ac, bc := out.Coeffs[i], a.Coeffs[i], b.Coeffs[i]
		for j := range oc {
			oc[j] = mod.Sub(ac[j], bc[j])
		}
	})
	out.IsNTT = a.IsNTT
}

// NegParallel computes out = −a limb-wise across the pool.
func (r *Ring) NegParallel(out, a *Poly, pool *Pool) {
	if pool.Workers() <= 1 {
		r.Neg(out, a)
		return
	}
	limbs := r.check(out, a)
	pool.ForEach(limbs, func(i int) {
		mod := r.Moduli[i]
		oc, ac := out.Coeffs[i], a.Coeffs[i]
		for j := range oc {
			oc[j] = mod.Neg(ac[j])
		}
	})
	out.IsNTT = a.IsNTT
}

// MulScalarRNSParallel multiplies limb i by scalars[i] across the pool.
func (r *Ring) MulScalarRNSParallel(out, a *Poly, scalars []uint64, pool *Pool) {
	if pool.Workers() <= 1 {
		r.MulScalarRNS(out, a, scalars)
		return
	}
	limbs := r.check(out, a)
	if len(scalars) < limbs {
		panic("ring: MulScalarRNS: not enough scalars for limb count")
	}
	pool.ForEach(limbs, func(i int) {
		mod := r.Moduli[i]
		s := mod.Reduce(scalars[i])
		ss := mod.ShoupConstant(s)
		oc, ac := out.Coeffs[i], a.Coeffs[i]
		for j := range oc {
			oc[j] = mod.MulShoup(ac[j], s, ss)
		}
	})
	out.IsNTT = a.IsNTT
}

// AutomorphismParallel applies X ↦ X^g to every limb across the pool using
// the shared HFAuto engine (one routing map serves all limbs). The
// polynomial must be in the coefficient domain; dst and src must not alias.
func (r *Ring) AutomorphismParallel(dst, src *Poly, g uint64, pool *Pool) {
	if pool.Workers() <= 1 {
		r.Automorphism(dst, src, g)
		return
	}
	limbs := r.check(dst, src)
	if src.IsNTT {
		panic("ring: Automorphism requires coefficient domain")
	}
	m := r.HF.Get(g) // precompute once, outside the parallel region
	pool.ForEach(limbs, func(i int) {
		stage := r.GetVec()
		m.ApplyScratch(dst.Coeffs[i], src.Coeffs[i], r.Moduli[i], stage)
		r.PutVec(stage)
	})
	dst.IsNTT = false
}

// AutomorphismNTTParallel applies the NTT-domain Galois permutation to
// every limb across the pool. dst and src must not alias.
func (r *Ring) AutomorphismNTTParallel(dst, src *Poly, g uint64, pool *Pool) {
	if pool.Workers() <= 1 {
		r.AutomorphismNTT(dst, src, g)
		return
	}
	limbs := r.check(dst, src)
	if !src.IsNTT {
		panic("ring: AutomorphismNTT requires NTT domain")
	}
	if g%2 == 0 {
		panic("ring: AutomorphismNTT: even Galois element")
	}
	perm := r.nttPermutation(g)
	pool.ForEach(limbs, func(i int) {
		ApplyPermutationNTT(dst.Coeffs[i], src.Coeffs[i], perm)
	})
	dst.IsNTT = true
}
