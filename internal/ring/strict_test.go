package ring

import (
	"math/rand"
	"testing"
)

// withStrict runs f twice — once per kernel mode — and returns the two
// results for comparison, restoring the original mode afterwards.
func withStrict(r *Ring, f func() *Poly) (lazy, strict *Poly) {
	saved := r.StrictKernels()
	defer r.SetStrictKernels(saved)
	r.SetStrictKernels(false)
	lazy = f()
	r.SetStrictKernels(true)
	strict = f()
	return lazy, strict
}

// Every ring operation the lazy kernels rewrote must stay bit-identical to
// the strict reference path, limb for limb, including edge residues.
func TestStrictLazyKernelIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	r := testRing(t, 64, 3)
	q0 := r.Moduli[0].Q

	mkCoeff := func() *Poly {
		p := randPoly(r, rng, 3, false)
		// Pin band edges in limb 0.
		p.Coeffs[0][0] = 0
		p.Coeffs[0][1] = 1
		p.Coeffs[0][2] = q0 - 1
		return p
	}

	t.Run("NTT", func(t *testing.T) {
		src := mkCoeff()
		lazy, strict := withStrict(r, func() *Poly {
			p := src.CopyNew()
			r.NTT(p)
			return p
		})
		if !lazy.Equal(strict) {
			t.Fatal("NTT lazy/strict outputs differ")
		}
	})

	t.Run("INTT", func(t *testing.T) {
		src := mkCoeff()
		src.IsNTT = true
		lazy, strict := withStrict(r, func() *Poly {
			p := src.CopyNew()
			r.INTT(p)
			return p
		})
		if !lazy.Equal(strict) {
			t.Fatal("INTT lazy/strict outputs differ")
		}
	})

	a := mkCoeff()
	b := mkCoeff()
	a.IsNTT, b.IsNTT = true, true

	t.Run("MulCoeffwise", func(t *testing.T) {
		lazy, strict := withStrict(r, func() *Poly {
			out := r.NewPoly(3)
			out.IsNTT = true
			r.MulCoeffwise(out, a, b)
			return out
		})
		if !lazy.Equal(strict) {
			t.Fatal("MulCoeffwise lazy/strict outputs differ")
		}
	})

	t.Run("MulCoeffwiseAdd", func(t *testing.T) {
		acc := mkCoeff()
		acc.IsNTT = true
		lazy, strict := withStrict(r, func() *Poly {
			out := acc.CopyNew()
			r.MulCoeffwiseAdd(out, a, b)
			return out
		})
		if !lazy.Equal(strict) {
			t.Fatal("MulCoeffwiseAdd lazy/strict outputs differ")
		}
	})
}

// The parallel variants dispatch through the same strict toggle; prove
// lazy-parallel == strict-serial at several worker counts.
func TestStrictLazyKernelIdentityParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	r := testRing(t, 64, 4)
	src := randPoly(r, rng, 4, false)
	a := randPoly(r, rng, 4, true)
	b := randPoly(r, rng, 4, true)

	r.SetStrictKernels(true)
	wantNTT := src.CopyNew()
	r.NTT(wantNTT)
	wantMul := r.NewPoly(4)
	wantMul.IsNTT = true
	r.MulCoeffwise(wantMul, a, b)
	r.SetStrictKernels(false)

	for _, workers := range []int{1, 2, 4} {
		pool := NewPool(workers)
		p := src.CopyNew()
		r.NTTParallel(p, pool)
		if !p.Equal(wantNTT) {
			t.Fatalf("workers=%d: lazy NTTParallel != strict NTT", workers)
		}
		out := r.NewPoly(4)
		out.IsNTT = true
		r.MulCoeffwiseParallel(out, a, b, pool)
		if !out.Equal(wantMul) {
			t.Fatalf("workers=%d: lazy MulCoeffwiseParallel != strict MulCoeffwise", workers)
		}
	}
}

// Poly.Equal must distinguish domain flags, limb counts, and coefficients.
func TestPolyEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	r := testRing(t, 32, 2)
	p := randPoly(r, rng, 2, false)
	q := p.CopyNew()
	if !p.Equal(q) {
		t.Fatal("copy should be equal")
	}
	q.IsNTT = true
	if p.Equal(q) {
		t.Fatal("domain flag should break equality")
	}
	q.IsNTT = false
	q.Coeffs[1][7]++
	if p.Equal(q) {
		t.Fatal("coefficient change should break equality")
	}
	short := &Poly{Coeffs: p.Coeffs[:1], IsNTT: p.IsNTT}
	if p.Equal(short) {
		t.Fatal("limb count should break equality")
	}
}
