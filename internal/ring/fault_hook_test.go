package ring

import (
	"math/rand"
	"testing"

	"poseidon/internal/fault"
)

// With no injector installed the transforms are untouched; with one armed,
// an NTT-site bit flip fired mid-transform changes the forward transform of
// exactly the targeted visit, and the injector's visit counters track every
// ForwardLimb/InverseLimb call.
func TestRingInjectionPoints(t *testing.T) {
	r := testRing(t, 64, 3)
	rng := rand.New(rand.NewSource(42))

	clean := randPoly(r, rng, 3, false)
	ref := clean.CopyNew()
	r.NTT(ref)

	// Count visits on a clean pass.
	in := fault.NewInjector(11)
	r.SetFaultInjector(in)
	p := clean.CopyNew()
	r.NTT(p)
	if !p.Equal(ref) {
		t.Fatal("disarmed injector changed the transform")
	}
	visits := in.Stats().VisitsAt(fault.SiteNTT)
	if visits != 3 {
		t.Fatalf("forward visits = %d, want one per limb (3)", visits)
	}

	// Arm a bit flip at the second limb's visit and rerun.
	in.ResetVisits()
	in.ArmAt(fault.SiteNTT, fault.BitFlip, 1)
	p2 := clean.CopyNew()
	r.NTT(p2)
	if in.Stats().Injected != 1 {
		t.Fatal("armed fault did not fire")
	}
	if p2.Equal(ref) {
		t.Fatal("injected bit flip did not change the transform")
	}
	// Only the targeted limb differs.
	for i := range p2.Coeffs {
		differs := false
		for j := range p2.Coeffs[i] {
			if p2.Coeffs[i][j] != ref.Coeffs[i][j] {
				differs = true
				break
			}
		}
		if differs != (i == 1) {
			t.Fatalf("limb %d differs=%v, want corruption confined to limb 1", i, differs)
		}
	}

	// Inverse transforms hit SiteINTT.
	in.ResetVisits()
	q := ref.CopyNew()
	r.INTT(q)
	if got := in.Stats().VisitsAt(fault.SiteINTT); got != 3 {
		t.Fatalf("inverse visits = %d, want 3", got)
	}
	if !q.Equal(clean) {
		t.Fatal("disarmed inverse transform not bit-identical")
	}

	r.SetFaultInjector(nil)
	if r.FaultInjector() != nil {
		t.Fatal("SetFaultInjector(nil) did not clear the hook")
	}
}
