package ring

import (
	"fmt"
	"sync"
)

// poisonWord is the sentinel written over every recycled coefficient when
// poison mode is on. Any code that keeps using a polynomial after Put will
// either read this pattern (loudly wrong values downstream) or overwrite it,
// which the next Get detects and reports as a use-after-put.
const poisonWord = 0xDEADBEEFDEADBEEF

// ArenaStats is a snapshot of the arena's accounting counters. Byte figures
// count coefficient backing storage only (8 bytes per coefficient word).
type ArenaStats struct {
	Gets   uint64 // checkouts (polys + staging vectors)
	Puts   uint64 // returns
	Misses uint64 // checkouts that had to allocate because the free list was empty
	// BytesAllocated is the total backing storage the arena has ever
	// allocated. In a steady-state loop it stops growing: every Get is
	// served from a free list.
	BytesAllocated uint64
	// BytesInUse is the storage currently checked out (Gets minus Puts, in
	// bytes). PeakBytes is its high-water mark — the software analogue of
	// the accelerator's scratchpad occupancy.
	BytesInUse uint64
	PeakBytes  uint64
}

// Arena is a size-classed free list of RNS polynomials: one stack per limb
// count, plus a stack of single-limb staging vectors. It is the software
// stand-in for Poseidon's fixed on-chip scratchpad — every evaluator
// temporary is checked out with Get/GetDirty and returned with Put, so a
// steady-state evaluation loop recirculates the same backing arrays instead
// of allocating.
//
// Unlike sync.Pool, the free lists are deterministic: they are never cleared
// by the garbage collector, and pushing a slice onto a typed stack does not
// box it in an interface. Both properties matter for the zero-allocation
// gates — after warm-up, Get and Put perform no heap allocation.
//
// Safe for concurrent use. Polynomials handed out are exclusively owned by
// the caller until Put; the arena never retains a reference to a checked-out
// poly, so evaluators sharing one arena (e.g. via a common Kit) can never
// observe each other's scratch.
type Arena struct {
	n  int
	mu sync.Mutex
	// classes[c] holds free polys with exactly c+1 limbs. A poly whose limbs
	// were dropped (Rescale/ModDown) re-files under its new, smaller class.
	classes [][]*Poly
	vecs    [][]uint64 // free N-word staging vectors
	poison  bool
	stats   ArenaStats
}

// NewArena creates an arena for degree-n polynomials of 1..maxLimbs limbs.
func NewArena(n, maxLimbs int) *Arena {
	if n < 1 || maxLimbs < 1 {
		panic(fmt.Sprintf("ring: invalid arena geometry n=%d maxLimbs=%d", n, maxLimbs))
	}
	return &Arena{n: n, classes: make([][]*Poly, maxLimbs)}
}

// SetPoison toggles poison mode: returned polynomials are overwritten with a
// sentinel pattern, verified intact on the next checkout, and double-Puts
// panic. Costs a full sweep of each recycled buffer — debug and fuzz use
// only. Safe for concurrent use. Enabling poison retro-fills everything
// already sitting on the free lists, so the mode can be switched on at any
// point in an arena's life without false write-after-Put reports against
// slabs recycled before the switch.
func (a *Arena) SetPoison(on bool) {
	a.mu.Lock()
	if on && !a.poison {
		for _, cl := range a.classes {
			for _, p := range cl {
				for i := range p.Coeffs {
					row := p.Coeffs[i]
					for j := range row {
						row[j] = poisonWord
					}
				}
			}
		}
		for _, v := range a.vecs {
			for j := range v {
				v[j] = poisonWord
			}
		}
	}
	a.poison = on
	a.mu.Unlock()
}

// Poisoned reports whether poison mode is on.
func (a *Arena) Poisoned() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.poison
}

// Stats returns a snapshot of the arena's counters.
func (a *Arena) Stats() ArenaStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// FreeCount reports how many polys of the given limb count sit on the free
// list (primarily for tests).
func (a *Arena) FreeCount(limbs int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if limbs < 1 || limbs > len(a.classes) {
		return 0
	}
	return len(a.classes[limbs-1])
}

// GetDirty checks out a `limbs`-limb polynomial with unspecified contents
// (poison-mode buffers come back filled with the sentinel). Use when every
// coefficient is about to be overwritten; pair with Put.
func (a *Arena) GetDirty(limbs int) *Poly {
	if limbs < 1 || limbs > len(a.classes) {
		panic(fmt.Sprintf("ring: limbs=%d out of range [1,%d]", limbs, len(a.classes)))
	}
	bytes := uint64(limbs) * uint64(a.n) * 8

	a.mu.Lock()
	var p *Poly
	if cl := a.classes[limbs-1]; len(cl) > 0 {
		p = cl[len(cl)-1]
		cl[len(cl)-1] = nil
		a.classes[limbs-1] = cl[:len(cl)-1]
	}
	a.stats.Gets++
	if p == nil {
		a.stats.Misses++
		a.stats.BytesAllocated += bytes
	}
	a.stats.BytesInUse += bytes
	if a.stats.BytesInUse > a.stats.PeakBytes {
		a.stats.PeakBytes = a.stats.BytesInUse
	}
	poison := a.poison
	a.mu.Unlock()

	if p == nil {
		return newPoly(a.n, limbs)
	}
	if poison {
		a.verifyPoison(p.Coeffs, limbs)
	}
	p.IsNTT = false
	return p
}

// Get is GetDirty plus a zero fill.
func (a *Arena) Get(limbs int) *Poly {
	p := a.GetDirty(limbs)
	for i := range p.Coeffs {
		clear(p.Coeffs[i])
	}
	return p
}

// Put returns a polynomial to its size class. The poly must have been
// checked out of this arena (or created by the owning ring for it), must own
// its backing storage — never a prefix view of a live polynomial — and must
// not be referenced afterwards. Polys that lost limbs via DropLimb re-file
// under their current (smaller) class.
func (a *Arena) Put(p *Poly) {
	if p == nil || len(p.Coeffs) == 0 {
		return
	}
	limbs := len(p.Coeffs)
	if limbs > len(a.classes) || len(p.Coeffs[0]) != a.n {
		panic(fmt.Sprintf("ring: foreign poly returned to arena (limbs=%d, row=%d, want n=%d)",
			limbs, len(p.Coeffs[0]), a.n))
	}
	bytes := uint64(limbs) * uint64(a.n) * 8

	a.mu.Lock()
	if a.poison {
		for _, q := range a.classes[limbs-1] {
			if q == p {
				a.mu.Unlock()
				panic("ring: double Put of arena poly")
			}
		}
		for i := range p.Coeffs {
			row := p.Coeffs[i]
			for j := range row {
				row[j] = poisonWord
			}
		}
	}
	a.classes[limbs-1] = append(a.classes[limbs-1], p)
	a.stats.Puts++
	a.stats.BytesInUse -= bytes
	a.mu.Unlock()
}

// GetVec checks out an N-word staging vector (contents unspecified). Pair
// with PutVec.
func (a *Arena) GetVec() []uint64 {
	bytes := uint64(a.n) * 8
	a.mu.Lock()
	var v []uint64
	if n := len(a.vecs); n > 0 {
		v = a.vecs[n-1]
		a.vecs[n-1] = nil
		a.vecs = a.vecs[:n-1]
	}
	a.stats.Gets++
	if v == nil {
		a.stats.Misses++
		a.stats.BytesAllocated += bytes
	}
	a.stats.BytesInUse += bytes
	if a.stats.BytesInUse > a.stats.PeakBytes {
		a.stats.PeakBytes = a.stats.BytesInUse
	}
	poison := a.poison
	a.mu.Unlock()

	if v == nil {
		return make([]uint64, a.n)
	}
	if poison {
		a.verifyPoison([][]uint64{v}, 1)
	}
	return v
}

// PutVec returns a staging vector to the arena.
func (a *Arena) PutVec(v []uint64) {
	if len(v) != a.n {
		return
	}
	a.mu.Lock()
	if a.poison {
		for j := range v {
			v[j] = poisonWord
		}
	}
	a.vecs = append(a.vecs, v)
	a.stats.Puts++
	a.stats.BytesInUse -= uint64(a.n) * 8
	a.mu.Unlock()
}

// verifyPoison panics if any recycled word was overwritten while the buffer
// sat on the free list — evidence that some caller kept writing through a
// reference after Put (use-after-put / aliasing bug).
func (a *Arena) verifyPoison(rows [][]uint64, limbs int) {
	for i := 0; i < limbs; i++ {
		for j, w := range rows[i] {
			if w != poisonWord {
				panic(fmt.Sprintf(
					"ring: arena poison broken at limb %d coeff %d (got %#x): write-after-Put detected",
					i, j, w))
			}
		}
	}
}

// newPoly allocates a fresh limbs×n polynomial in one backing slab.
func newPoly(n, limbs int) *Poly {
	backing := make([]uint64, limbs*n)
	p := &Poly{Coeffs: make([][]uint64, limbs)}
	for i := range p.Coeffs {
		p.Coeffs[i] = backing[i*n : (i+1)*n]
	}
	return p
}
