package ring

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool is the bounded limb-parallel execution engine: the software
// counterpart of the accelerator's 512-lane datapath time-multiplexing its
// operator cores across RNS limbs. Where the hardware hides limb-level
// parallelism inside each operator's lane array, the software hides it
// behind a worker pool that fans independent limbs (or coefficient ranges)
// out across CPUs.
//
// A Pool bounds *concurrency*, not goroutine identity: each ForEach call
// spawns up to Workers−1 short-lived helpers, admitted through a semaphore
// shared by every caller of the same Pool, and the calling goroutine always
// participates in the work. This makes nested or concurrent ForEach calls
// deadlock-free by construction — when the semaphore is exhausted the
// caller simply runs its items inline.
//
// The zero value of *Pool (nil) is valid and executes serially.
type Pool struct {
	workers int
	sem     chan struct{} // admission tokens for helper goroutines
}

// NewPool creates a pool bounded at `workers` concurrent executors.
// workers ≤ 0 selects runtime.GOMAXPROCS(0); workers == 1 is fully serial.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.sem = make(chan struct{}, workers-1)
	}
	return p
}

// Workers reports the pool's concurrency bound. A nil pool is serial.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

var (
	defaultPoolOnce sync.Once
	defaultPool     *Pool
)

// DefaultPool returns the package-level shared pool, sized by
// runtime.GOMAXPROCS at first use. Parameters and evaluators that do not
// override their worker count all draw from this one bounded pool, so the
// process-wide limb-parallelism never exceeds the machine.
func DefaultPool() *Pool {
	defaultPoolOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}

// WorkerPanicError is a panic raised inside a pool worker, captured and
// surfaced as a structured error by ForEachCtx. Index is the item that
// panicked, Value the original panic value, Stack the worker's stack at the
// point of the panic.
type WorkerPanicError struct {
	Index int
	Value any
	Stack []byte
}

// Error formats the captured panic with its item index.
func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("ring: pool worker panic on item %d: %v", e.Index, e.Value)
}

// ForEach runs fn(i) for every i in [0, n), distributing indices across the
// pool's workers, and returns when all items are done. Items are claimed
// from a shared atomic counter, so scheduling is dynamic but each index runs
// exactly once. fn must not depend on execution order; writes to disjoint
// locations give results bit-identical to a serial loop.
//
// Safe for concurrent use, including nested calls (inner calls degrade to
// inline execution when the pool is saturated). A panic inside fn is
// captured and re-raised on the calling goroutine.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if p == nil || p.workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if err := p.forEach(nil, n, fn); err != nil {
		// ctx is nil, so the only possible failure is a captured panic:
		// re-raise the original value on the calling goroutine.
		panic(err.(*WorkerPanicError).Value)
	}
}

// ForEachCtx is ForEach with two hardenings for long-running or fallible
// work: it stops claiming items and returns ctx.Err() once ctx is cancelled
// (items already started run to completion), and a panic inside fn is
// returned as a *WorkerPanicError — with the panicking item's index and
// captured stack — instead of being re-raised. Exactly one error is
// returned even if several workers fail; a captured panic takes precedence
// over cancellation.
func (p *Pool) ForEachCtx(ctx context.Context, n int, fn func(i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return p.forEach(ctx, n, fn)
}

// forEach is the shared executor core. A nil ctx selects the legacy
// ForEach contract (no cancellation checks on the hot path); the returned
// error is then always a *WorkerPanicError or nil.
func (p *Pool) forEach(ctx context.Context, n int, fn func(i int)) error {
	var next atomic.Int64
	var mu sync.Mutex
	var fail error
	loop := func() {
		cur := -1
		defer func() {
			if r := recover(); r != nil {
				e := &WorkerPanicError{Index: cur, Value: r, Stack: debug.Stack()}
				mu.Lock()
				if _, ok := fail.(*WorkerPanicError); !ok {
					fail = e // panics outrank cancellation
				}
				mu.Unlock()
				next.Store(int64(n)) // stop the other executors early
			}
		}()
		for {
			if ctx != nil && ctx.Err() != nil {
				mu.Lock()
				if fail == nil {
					fail = ctx.Err()
				}
				mu.Unlock()
				next.Store(int64(n))
				return
			}
			i := next.Add(1) - 1
			if i >= int64(n) {
				return
			}
			cur = int(i)
			fn(cur)
		}
	}

	if p == nil || p.workers <= 1 || n <= 1 {
		loop()
		return fail
	}

	helpers := p.workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	var wg sync.WaitGroup
	for h := 0; h < helpers; h++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() { <-p.sem; wg.Done() }()
				loop()
			}()
		default:
			// Pool saturated: the caller picks up the slack inline.
		}
	}
	loop()
	wg.Wait()
	return fail
}

// ForEachChunk partitions [0, n) into contiguous ranges and runs
// fn(lo, hi) on each, parallelized like ForEach. Used for operations whose
// unit of independence is the coefficient rather than the limb (RNSconv,
// ModDown, Rescale). Chunk boundaries never affect results: every
// coefficient's arithmetic is self-contained.
func (p *Pool) ForEachChunk(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := p.Workers()
	if w <= 1 || n == 1 {
		fn(0, n)
		return
	}
	// Oversubscribe chunks 4× the worker count so dynamic claiming
	// balances uneven progress without shrinking chunks into cache churn.
	chunks := 4 * w
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	chunks = (n + size - 1) / size
	p.ForEach(chunks, func(c int) {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}
