package ring

import (
	"math/bits"
	"sync"
)

// NTT-domain automorphism. In the evaluation domain the Galois map X ↦ X^g
// is a pure permutation of the point values (no sign fix-up): output slot j
// holds the evaluation at ψ^{e_j·g}, which is input slot i with
// e_i = e_j·g mod 2N, where e_i = 2·brv(i)+1 indexes the bit-reversed CT
// output layout. This enables rotation hoisting: decomposed keyswitch
// digits can be permuted after their (shared) forward NTT.

type nttPermCache struct {
	mu    sync.Mutex
	perms map[uint64][]int
}

var nttPerms nttPermCache

// nttPermutation returns perm with dst[j] = src[perm[j]].
func (r *Ring) nttPermutation(g uint64) []int {
	key := uint64(r.N)<<32 | (g % uint64(2*r.N))
	nttPerms.mu.Lock()
	defer nttPerms.mu.Unlock()
	if nttPerms.perms == nil {
		nttPerms.perms = map[uint64][]int{}
	}
	if p, ok := nttPerms.perms[key]; ok {
		return p
	}
	n := r.N
	logn := uint(r.LogN)
	twoN := uint64(2 * n)
	g %= twoN
	perm := make([]int, n)
	for j := 0; j < n; j++ {
		ej := 2*(bits.Reverse64(uint64(j))>>(64-logn)) + 1
		t := (ej * g) % twoN
		i := bits.Reverse64((t-1)/2) >> (64 - logn)
		perm[j] = int(i)
	}
	nttPerms.perms[key] = perm
	return perm
}

// AutomorphismNTT applies X ↦ X^g to an NTT-domain polynomial as a pure
// slot permutation. dst and src must not alias.
func (r *Ring) AutomorphismNTT(dst, src *Poly, g uint64) {
	limbs := r.check(dst, src)
	if !src.IsNTT {
		panic("ring: AutomorphismNTT requires NTT domain")
	}
	if g%2 == 0 {
		panic("ring: AutomorphismNTT: even Galois element")
	}
	perm := r.nttPermutation(g)
	for i := 0; i < limbs; i++ {
		d, s := dst.Coeffs[i], src.Coeffs[i]
		for j, p := range perm {
			d[j] = s[p]
		}
	}
	dst.IsNTT = true
}

// ApplyPermutationNTT applies a precomputed NTT-domain Galois permutation to
// a raw limb vector (used by the hoisted keyswitch on extended digits).
func ApplyPermutationNTT(dst, src []uint64, perm []int) {
	for j, p := range perm {
		dst[j] = src[p]
	}
}

// NTTGaloisPermutation exposes the permutation for element g (for callers
// operating on raw limb slices).
func (r *Ring) NTTGaloisPermutation(g uint64) []int { return r.nttPermutation(g) }
