package ring

import (
	"math/big"
	"math/rand"
	"testing"

	"poseidon/internal/numeric"
)

func testRing(t testing.TB, n, limbs int) *Ring {
	t.Helper()
	logN := 0
	for 1<<uint(logN) < n {
		logN++
	}
	ps, err := numeric.GenerateNTTPrimes(45, logN, limbs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(n, ps, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func randPoly(r *Ring, rng *rand.Rand, limbs int, isNTT bool) *Poly {
	p := r.NewPoly(limbs)
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = rng.Uint64() % r.Moduli[i].Q
		}
	}
	p.IsNTT = isNTT
	return p
}

func TestNewRingErrors(t *testing.T) {
	if _, err := NewRing(16, nil, 0); err == nil {
		t.Error("empty moduli should error")
	}
	if _, err := NewRing(12, []uint64{97}, 0); err == nil {
		t.Error("non-power-of-two N should error")
	}
	if _, err := NewRing(16, []uint64{97, 97}, 0); err == nil {
		t.Error("duplicate moduli should error")
	}
	if _, err := NewRing(16, []uint64{19}, 0); err == nil {
		t.Error("non-NTT-friendly modulus should error")
	}
}

func TestPolyBasics(t *testing.T) {
	r := testRing(t, 32, 3)
	p := r.NewPoly(3)
	if p.Level() != 2 {
		t.Errorf("level=%d want 2", p.Level())
	}
	rng := rand.New(rand.NewSource(1))
	q := randPoly(r, rng, 3, false)
	cp := q.CopyNew()
	if !cp.Equal(q) {
		t.Error("copy should equal original")
	}
	cp.Coeffs[0][0] ^= 1
	if cp.Equal(q) {
		t.Error("mutated copy should differ")
	}
	cp.Coeffs[0][0] ^= 1
	cp.IsNTT = !cp.IsNTT
	if cp.Equal(q) {
		t.Error("domain flag should participate in equality")
	}
	q.DropLimb()
	if q.Level() != 1 {
		t.Errorf("level after drop=%d want 1", q.Level())
	}
}

func TestAddSubNegRoundTrip(t *testing.T) {
	r := testRing(t, 64, 3)
	rng := rand.New(rand.NewSource(2))
	a := randPoly(r, rng, 3, false)
	b := randPoly(r, rng, 3, false)
	sum := r.NewPoly(3)
	r.Add(sum, a, b)
	back := r.NewPoly(3)
	r.Sub(back, sum, b)
	if !back.Equal(a) {
		t.Error("(a+b)-b != a")
	}
	neg := r.NewPoly(3)
	r.Neg(neg, a)
	zero := r.NewPoly(3)
	r.Add(zero, a, neg)
	for i := range zero.Coeffs {
		for j := range zero.Coeffs[i] {
			if zero.Coeffs[i][j] != 0 {
				t.Fatal("a + (-a) != 0")
			}
		}
	}
}

func TestNTTDomainTracking(t *testing.T) {
	r := testRing(t, 32, 2)
	rng := rand.New(rand.NewSource(3))
	a := randPoly(r, rng, 2, false)
	orig := a.CopyNew()
	r.NTT(a)
	if !a.IsNTT {
		t.Error("IsNTT should be set")
	}
	r.INTT(a)
	if !a.Equal(orig) {
		t.Error("NTT/INTT round trip failed")
	}
	func() {
		defer func() { recover() }()
		r.INTT(a)
		t.Error("INTT on coeff domain should panic")
	}()
}

func TestMulCoeffwiseIsNegacyclicProduct(t *testing.T) {
	r := testRing(t, 16, 2)
	rng := rand.New(rand.NewSource(4))
	a := randPoly(r, rng, 2, false)
	b := randPoly(r, rng, 2, false)

	// Reference: schoolbook negacyclic per limb.
	want := r.NewPoly(2)
	for i := range want.Coeffs {
		copy(want.Coeffs[i], r.Tables[i].NegacyclicConvolution(a.Coeffs[i], b.Coeffs[i]))
	}

	r.NTT(a)
	r.NTT(b)
	c := r.NewPoly(2)
	r.MulCoeffwise(c, a, b)
	r.INTT(c)
	if !c.Equal(want) {
		t.Error("NTT product != schoolbook negacyclic product")
	}
}

func TestMulCoeffwiseAdd(t *testing.T) {
	r := testRing(t, 16, 2)
	rng := rand.New(rand.NewSource(5))
	a := randPoly(r, rng, 2, true)
	b := randPoly(r, rng, 2, true)
	acc := randPoly(r, rng, 2, true)
	want := r.NewPoly(2)
	r.MulCoeffwise(want, a, b)
	r.Add(want, want, acc)
	r.MulCoeffwiseAdd(acc, a, b)
	if !acc.Equal(want) {
		t.Error("MulCoeffwiseAdd mismatch")
	}
}

func TestMulScalar(t *testing.T) {
	r := testRing(t, 16, 3)
	rng := rand.New(rand.NewSource(6))
	a := randPoly(r, rng, 3, false)
	out := r.NewPoly(3)
	r.MulScalar(out, a, 7)
	for i := range out.Coeffs {
		mod := r.Moduli[i]
		for j := range out.Coeffs[i] {
			if out.Coeffs[i][j] != mod.Mul(a.Coeffs[i][j], 7) {
				t.Fatal("MulScalar mismatch")
			}
		}
	}
	scalars := []uint64{3, 5, 11}
	r.MulScalarRNS(out, a, scalars)
	for i := range out.Coeffs {
		mod := r.Moduli[i]
		for j := range out.Coeffs[i] {
			if out.Coeffs[i][j] != mod.Mul(a.Coeffs[i][j], scalars[i]) {
				t.Fatal("MulScalarRNS mismatch")
			}
		}
	}
}

func TestAutomorphismLimbwise(t *testing.T) {
	r := testRing(t, 64, 2)
	rng := rand.New(rand.NewSource(7))
	a := randPoly(r, rng, 2, false)
	dst := r.NewPoly(2)
	r.Automorphism(dst, a, 5)
	// Composing with the inverse Galois element restores the original.
	gInv := uint64(0)
	for g := uint64(1); g < uint64(2*r.N); g += 2 {
		if g*5%uint64(2*r.N) == 1 {
			gInv = g
			break
		}
	}
	back := r.NewPoly(2)
	r.Automorphism(back, dst, gInv)
	if !back.Equal(a) {
		t.Error("automorphism inverse does not restore input")
	}
}

func TestBigCenteredRoundTrip(t *testing.T) {
	r := testRing(t, 8, 3)
	p := r.NewPoly(3)
	vals := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(-1),
		big.NewInt(123456789), big.NewInt(-987654321),
	}
	for j, v := range vals {
		r.SetBigCentered(p, j, v)
	}
	for j, v := range vals {
		if got := r.ToBigCentered(p, j); got.Cmp(v) != 0 {
			t.Errorf("coefficient %d: got %v want %v", j, got, v)
		}
	}
}

func TestCheckPanicsOnMismatch(t *testing.T) {
	r := testRing(t, 16, 3)
	a := r.NewPoly(3)
	b := r.NewPoly(2)
	defer func() {
		if recover() == nil {
			t.Fatal("limb mismatch should panic")
		}
	}()
	r.Add(a, a, b)
}
