package ring

import (
	"math/rand"
	"testing"
)

func TestParallelMatchesSerial(t *testing.T) {
	r := testRing(t, 256, 8)
	rng := rand.New(rand.NewSource(70))

	for _, workers := range []int{1, 2, 4, 16, 100} {
		a := randPoly(r, rng, 8, false)
		b := a.CopyNew()
		r.NTT(a)
		r.NTTParallel(b, workers)
		if !a.Equal(b) {
			t.Fatalf("workers=%d: NTTParallel differs from NTT", workers)
		}
		r.INTT(a)
		r.INTTParallel(b, workers)
		if !a.Equal(b) {
			t.Fatalf("workers=%d: INTTParallel differs from INTT", workers)
		}
	}
}

func TestParallelElementwiseMatchesSerial(t *testing.T) {
	r := testRing(t, 128, 6)
	rng := rand.New(rand.NewSource(71))
	a := randPoly(r, rng, 6, true)
	b := randPoly(r, rng, 6, true)

	want := r.NewPoly(6)
	r.MulCoeffwise(want, a, b)
	got := r.NewPoly(6)
	r.MulCoeffwiseParallel(got, a, b, 4)
	if !got.Equal(want) {
		t.Error("MulCoeffwiseParallel differs from serial")
	}

	r.Add(want, a, b)
	r.AddParallel(got, a, b, 4)
	if !got.Equal(want) {
		t.Error("AddParallel differs from serial")
	}
}

func TestParallelDomainPanics(t *testing.T) {
	r := testRing(t, 32, 2)
	p := r.NewPoly(2)
	p.IsNTT = true
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NTTParallel on NTT-domain input should panic")
			}
		}()
		r.NTTParallel(p, 2)
	}()
	p.IsNTT = false
	func() {
		defer func() {
			if recover() == nil {
				t.Error("INTTParallel on coeff-domain input should panic")
			}
		}()
		r.INTTParallel(p, 2)
	}()
}

func BenchmarkNTTSerialVsParallel(b *testing.B) {
	logN := 13
	n := 1 << logN
	r := testRing(b, n, 16)
	rng := rand.New(rand.NewSource(72))
	p := randPoly(r, rng, 16, false)

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.NTT(p)
			r.INTT(p)
		}
	})
	b.Run("parallel4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.NTTParallel(p, 4)
			r.INTTParallel(p, 4)
		}
	})
}
