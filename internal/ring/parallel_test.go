package ring

import (
	"errors"
	"math/rand"
	"runtime"
	"testing"
)

var errMismatch = errors.New("ring: concurrent op result differs from serial")

// testPools covers the serial degenerate cases and genuinely concurrent
// pools, including one wider than any limb count in these tests.
func testPools() []*Pool {
	return []*Pool{nil, NewPool(1), NewPool(2), NewPool(4), NewPool(16), NewPool(100)}
}

func TestParallelMatchesSerial(t *testing.T) {
	r := testRing(t, 256, 8)
	rng := rand.New(rand.NewSource(70))

	for _, pool := range testPools() {
		a := randPoly(r, rng, 8, false)
		b := a.CopyNew()
		r.NTT(a)
		r.NTTParallel(b, pool)
		if !a.Equal(b) {
			t.Fatalf("workers=%d: NTTParallel differs from NTT", pool.Workers())
		}
		r.INTT(a)
		r.INTTParallel(b, pool)
		if !a.Equal(b) {
			t.Fatalf("workers=%d: INTTParallel differs from INTT", pool.Workers())
		}
	}
}

func TestParallelElementwiseMatchesSerial(t *testing.T) {
	r := testRing(t, 128, 6)
	rng := rand.New(rand.NewSource(71))
	a := randPoly(r, rng, 6, true)
	b := randPoly(r, rng, 6, true)
	scalars := make([]uint64, 6)
	for i := range scalars {
		scalars[i] = rng.Uint64()
	}

	want := r.NewPoly(6)
	got := r.NewPoly(6)
	for _, pool := range testPools() {
		w := pool.Workers()

		r.MulCoeffwise(want, a, b)
		r.MulCoeffwiseParallel(got, a, b, pool)
		if !got.Equal(want) {
			t.Errorf("workers=%d: MulCoeffwiseParallel differs from serial", w)
		}

		r.MulCoeffwiseAdd(want, a, b)
		r.MulCoeffwiseAddParallel(got, a, b, pool)
		if !got.Equal(want) {
			t.Errorf("workers=%d: MulCoeffwiseAddParallel differs from serial", w)
		}

		r.Add(want, a, b)
		r.AddParallel(got, a, b, pool)
		if !got.Equal(want) {
			t.Errorf("workers=%d: AddParallel differs from serial", w)
		}

		r.Sub(want, a, b)
		r.SubParallel(got, a, b, pool)
		if !got.Equal(want) {
			t.Errorf("workers=%d: SubParallel differs from serial", w)
		}

		r.Neg(want, a)
		r.NegParallel(got, a, pool)
		if !got.Equal(want) {
			t.Errorf("workers=%d: NegParallel differs from serial", w)
		}

		r.MulScalarRNS(want, a, scalars)
		r.MulScalarRNSParallel(got, a, scalars, pool)
		if !got.Equal(want) {
			t.Errorf("workers=%d: MulScalarRNSParallel differs from serial", w)
		}
	}
}

func TestParallelAutomorphismMatchesSerial(t *testing.T) {
	r := testRing(t, 128, 5)
	rng := rand.New(rand.NewSource(72))
	src := randPoly(r, rng, 5, false)

	for _, g := range []uint64{1, 5, 25, uint64(2*r.N - 1), 77} {
		want := r.NewPoly(5)
		r.Automorphism(want, src, g)
		for _, pool := range testPools() {
			got := r.NewPoly(5)
			r.AutomorphismParallel(got, src, g, pool)
			if !got.Equal(want) {
				t.Errorf("g=%d workers=%d: AutomorphismParallel differs", g, pool.Workers())
			}
		}
	}

	ntt := src.CopyNew()
	r.NTT(ntt)
	for _, g := range []uint64{5, 25, uint64(2*r.N - 1)} {
		want := r.NewPoly(5)
		r.AutomorphismNTT(want, ntt, g)
		for _, pool := range testPools() {
			got := r.NewPoly(5)
			r.AutomorphismNTTParallel(got, ntt, g, pool)
			if !got.Equal(want) {
				t.Errorf("g=%d workers=%d: AutomorphismNTTParallel differs", g, pool.Workers())
			}
		}
	}
}

func TestParallelDomainPanics(t *testing.T) {
	r := testRing(t, 32, 2)
	pool := NewPool(2)
	p := r.NewPoly(2)
	p.IsNTT = true
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NTTParallel on NTT-domain input should panic")
			}
		}()
		r.NTTParallel(p, pool)
	}()
	p.IsNTT = false
	func() {
		defer func() {
			if recover() == nil {
				t.Error("INTTParallel on coeff-domain input should panic")
			}
		}()
		r.INTTParallel(p, pool)
	}()
}

// TestConcurrentParallelOps exercises shared state under -race: one ring
// (shared NTT tables, HFAuto map cache, scratch pools) and one pool used by
// many goroutines at once.
func TestConcurrentParallelOps(t *testing.T) {
	r := testRing(t, 128, 6)
	pool := NewPool(4)
	rng := rand.New(rand.NewSource(73))
	src := randPoly(r, rng, 6, false)
	want := r.NewPoly(6)
	r.Automorphism(want, src, 5)

	done := make(chan error, 8)
	for goroutine := 0; goroutine < 8; goroutine++ {
		go func(seed int64) {
			local := src.CopyNew()
			dst := r.NewPoly(6)
			r.AutomorphismParallel(dst, local, 5, pool)
			if !dst.Equal(want) {
				done <- errMismatch
				return
			}
			r.NTTParallel(local, pool)
			r.INTTParallel(local, pool)
			if !local.Equal(src) {
				done <- errMismatch
				return
			}
			done <- nil
		}(int64(goroutine))
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestScratchPoolRoundTrip(t *testing.T) {
	r := testRing(t, 64, 4)
	p := r.GetPoly(3)
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			if p.Coeffs[i][j] != 0 {
				t.Fatal("GetPoly must return a zeroed polynomial")
			}
			p.Coeffs[i][j] = 7
		}
	}
	r.PutPoly(p)
	q := r.GetPoly(4)
	for i := range q.Coeffs {
		for j := range q.Coeffs[i] {
			if q.Coeffs[i][j] != 0 {
				t.Fatal("recycled GetPoly must still be zeroed")
			}
		}
	}
	r.PutPoly(q)

	v := r.GetVec()
	if len(v) != r.N {
		t.Fatalf("GetVec length %d, want %d", len(v), r.N)
	}
	r.PutVec(v)
}

func BenchmarkNTTSerialVsParallel(b *testing.B) {
	logN := 13
	n := 1 << logN
	r := testRing(b, n, 16)
	rng := rand.New(rand.NewSource(74))
	p := randPoly(r, rng, 16, false)

	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.NTT(p)
			r.INTT(p)
		}
	})
	pool := NewPool(runtime.GOMAXPROCS(0))
	b.Run("pool", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.NTTParallel(p, pool)
			r.INTTParallel(p, pool)
		}
	})
}
