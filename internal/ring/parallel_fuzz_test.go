package ring

import (
	"math/rand"
	"testing"

	"poseidon/internal/automorph"
)

// FuzzHFAutoParallel drives the limb-parallel HFAuto automorphism path with
// random Galois elements and coefficients and checks it against the naive
// per-element index map i ↦ i·g mod N — including the negacyclic sign
// fix-up (coefficients landing past X^N pick up a minus sign). The two
// implementations are algorithmically unrelated, so agreement here pins
// down both the HFAuto staging algebra and the pool's index distribution.
func FuzzHFAutoParallel(f *testing.F) {
	r := testRing(f, 64, 3)
	pool := NewPool(4)
	twoN := uint64(2 * r.N)

	f.Add(int64(1), uint64(1))        // identity
	f.Add(int64(2), uint64(5))        // rotation generator
	f.Add(int64(3), twoN-1)           // conjugation
	f.Add(int64(4), uint64(25))       // 5^2
	f.Add(int64(5), uint64(1<<63|39)) // large raw element

	f.Fuzz(func(t *testing.T, seed int64, gRaw uint64) {
		g := (gRaw % twoN) | 1 // odd Galois element in [1, 2N)
		rng := rand.New(rand.NewSource(seed))
		src := randPoly(r, rng, 3, false)

		got := r.NewPoly(3)
		r.AutomorphismParallel(got, src, g, pool)

		want := r.NewPoly(3)
		for i := range want.Coeffs {
			automorph.Naive(want.Coeffs[i], src.Coeffs[i], g, r.Moduli[i])
		}

		if !got.Equal(want) {
			t.Fatalf("g=%d seed=%d: parallel HFAuto differs from naive map", g, seed)
		}

		// The serial HFAuto path must agree too (same map cache).
		serial := r.NewPoly(3)
		r.Automorphism(serial, src, g)
		if !serial.Equal(want) {
			t.Fatalf("g=%d seed=%d: serial HFAuto differs from naive map", g, seed)
		}
	})
}
