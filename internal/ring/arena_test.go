package ring

import (
	"math/rand"
	"testing"
)

// The arena must hand back the same backing storage it was given: a
// Get after a Put of the same size class is a recycle, not an allocation.
func TestArenaRecycles(t *testing.T) {
	a := NewArena(64, 4)
	p := a.GetDirty(3)
	base := &p.Coeffs[0][0]
	a.Put(p)
	q := a.GetDirty(3)
	if &q.Coeffs[0][0] != base {
		t.Fatal("arena did not recycle the returned poly")
	}
	st := a.Stats()
	if st.Gets != 2 || st.Puts != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want Gets=2 Puts=1 Misses=1", st)
	}
	if st.BytesAllocated != 3*64*8 {
		t.Fatalf("BytesAllocated = %d, want %d", st.BytesAllocated, 3*64*8)
	}
}

// Size classes are keyed by limb count: a 2-limb poly never serves a 3-limb
// request, and a poly that lost a limb (Rescale/ModDown) re-files under its
// new class.
func TestArenaSizeClasses(t *testing.T) {
	a := NewArena(32, 4)
	p2 := a.GetDirty(2)
	a.Put(p2)
	if a.FreeCount(2) != 1 || a.FreeCount(3) != 0 {
		t.Fatal("free counts do not reflect size classes")
	}
	p3 := a.GetDirty(3)
	if &p3.Coeffs[0][0] == &p2.Coeffs[0][0] {
		t.Fatal("3-limb request served from the 2-limb class")
	}
	p3.DropLimb()
	a.Put(p3)
	if a.FreeCount(2) != 2 {
		t.Fatalf("dropped poly should re-file under class 2, FreeCount(2)=%d", a.FreeCount(2))
	}
}

// Get must zero; GetDirty need not.
func TestArenaGetZeroes(t *testing.T) {
	a := NewArena(16, 2)
	p := a.GetDirty(2)
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = 0xABCD
		}
	}
	a.Put(p)
	q := a.Get(2)
	for i := range q.Coeffs {
		for j, w := range q.Coeffs[i] {
			if w != 0 {
				t.Fatalf("Get returned dirty word at limb %d coeff %d: %#x", i, j, w)
			}
		}
	}
}

// In-use byte accounting must rise on Get, fall on Put, and record the
// high-water mark.
func TestArenaByteAccounting(t *testing.T) {
	a := NewArena(64, 4)
	p1 := a.GetDirty(4)
	p2 := a.GetDirty(2)
	st := a.Stats()
	wantInUse := uint64((4 + 2) * 64 * 8)
	if st.BytesInUse != wantInUse || st.PeakBytes != wantInUse {
		t.Fatalf("in-use accounting: %+v, want BytesInUse=PeakBytes=%d", st, wantInUse)
	}
	a.Put(p1)
	a.Put(p2)
	st = a.Stats()
	if st.BytesInUse != 0 {
		t.Fatalf("BytesInUse = %d after returning everything", st.BytesInUse)
	}
	if st.PeakBytes != wantInUse {
		t.Fatalf("PeakBytes = %d, want high-water %d", st.PeakBytes, wantInUse)
	}
}

// A poly that does not belong to the arena's geometry must be rejected —
// returning a prefix view or another ring's poly would corrupt the free
// lists silently.
func TestArenaForeignPolyPanics(t *testing.T) {
	a := NewArena(32, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Put of a foreign poly did not panic")
		}
	}()
	a.Put(newPoly(16, 2)) // wrong N
}

// Poison mode: writing through a retained reference after Put must be
// caught at the next checkout of that buffer.
func TestArenaPoisonWriteAfterPut(t *testing.T) {
	a := NewArena(32, 2)
	a.SetPoison(true)
	p := a.GetDirty(2)
	a.Put(p)
	p.Coeffs[1][7] = 42 // aliasing bug: the caller kept writing
	defer func() {
		if recover() == nil {
			t.Fatal("write-after-Put was not detected")
		}
	}()
	a.GetDirty(2)
}

// Poison mode: returning the same poly twice must panic rather than serve
// one buffer to two owners.
func TestArenaPoisonDoublePut(t *testing.T) {
	a := NewArena(32, 2)
	a.SetPoison(true)
	p := a.GetDirty(2)
	a.Put(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put was not detected")
		}
	}()
	a.Put(p)
}

// Staging vectors follow the same poison discipline.
func TestArenaVecPoison(t *testing.T) {
	a := NewArena(32, 2)
	a.SetPoison(true)
	v := a.GetVec()
	a.PutVec(v)
	v[3] = 99
	defer func() {
		if recover() == nil {
			t.Fatal("vector write-after-Put was not detected")
		}
	}()
	a.GetVec()
}

// Aliasing fuzz: a random interleaving of checkouts, full overwrites, and
// returns across all size classes, with poison verification on. Every
// checked-out poly is exclusively owned, so however the interleaving goes,
// no poison panic may fire — if one does, the arena leaked a buffer to two
// owners.
func TestArenaAliasingFuzz(t *testing.T) {
	const n = 64
	a := NewArena(n, 5)
	a.SetPoison(true)
	rng := rand.New(rand.NewSource(99))

	type held struct {
		p     *Poly
		stamp uint64
	}
	var live []held
	fill := func(p *Poly, stamp uint64) {
		for i := range p.Coeffs {
			for j := range p.Coeffs[i] {
				p.Coeffs[i][j] = stamp ^ uint64(i<<16) ^ uint64(j)
			}
		}
	}
	check := func(h held) {
		for i := range h.p.Coeffs {
			for j, w := range h.p.Coeffs[i] {
				if w != h.stamp^uint64(i<<16)^uint64(j) {
					t.Fatalf("held poly mutated at limb %d coeff %d: someone else wrote our buffer", i, j)
				}
			}
		}
	}

	for step := 0; step < 5000; step++ {
		if len(live) == 0 || (len(live) < 32 && rng.Intn(2) == 0) {
			limbs := 1 + rng.Intn(5)
			var p *Poly
			if rng.Intn(2) == 0 {
				p = a.Get(limbs)
			} else {
				p = a.GetDirty(limbs)
			}
			h := held{p: p, stamp: rng.Uint64()}
			fill(p, h.stamp)
			live = append(live, h)
		} else {
			k := rng.Intn(len(live))
			check(live[k]) // our exclusive buffer must be untouched
			a.Put(live[k].p)
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	for _, h := range live {
		check(h)
		a.Put(h.p)
	}
	st := a.Stats()
	if st.Gets != st.Puts {
		t.Fatalf("leak: Gets=%d Puts=%d", st.Gets, st.Puts)
	}
	if st.BytesInUse != 0 {
		t.Fatalf("BytesInUse=%d after returning everything", st.BytesInUse)
	}
}
