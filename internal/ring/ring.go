// Package ring provides the RNS polynomial arithmetic layer: polynomials in
// Z_Q[X]/(X^N+1) with Q a product of NTT-friendly primes, stored as one
// residue vector per prime ("limb"). All Poseidon operators — MA, MM,
// NTT/INTT, Automorphism — act limb-wise on this representation.
package ring

import (
	"fmt"
	"math/big"
	"slices"
	"sync"

	"poseidon/internal/automorph"
	"poseidon/internal/fault"
	"poseidon/internal/ntt"
	"poseidon/internal/numeric"
)

// Ring bundles the modulus chain and per-prime NTT tables for degree N.
// Construct once, share everywhere; it is immutable and safe for concurrent
// use.
type Ring struct {
	N      int
	LogN   int
	Moduli []numeric.Modulus
	Tables []*ntt.Table

	// HF is the sub-vector automorphism engine shared by all limbs.
	HF *HFCache

	// arena recycles polynomial scratch (size-classed by limb count) and
	// single N-word staging vectors, keeping the limb-parallel hot paths
	// from churning the GC with per-operation allocations. See Arena.
	arena *Arena

	// strict selects the fully reduced reference kernels (per-butterfly
	// reductions, Barrett elementwise products) instead of the lazy
	// Harvey/Montgomery production kernels. Both paths are bit-identical;
	// the toggle exists for differential testing and before/after
	// benchmarking. See SetStrictKernels.
	strict bool

	// injector, when non-nil, corrupts limbs at the ring's injection points
	// (the datapath loads feeding each NTT/INTT limb transform) according
	// to its armed fault schedule. Nil in production: the hot paths pay one
	// pointer compare. See SetFaultInjector.
	injector *fault.Injector

	// fusionK selects the fused radix-2^k NTT kernels (0 = plain radix-2).
	// fwdPlans/invPlans hold the active per-limb plans; planCache keeps one
	// plan set per fusion degree so toggling k is free after the first build.
	// Strict mode wins over fusion: strict > fused > lazy radix-2. See
	// SetFusionDegree.
	fusionK   int
	fwdPlans  []*ntt.FusedPlan
	invPlans  []*ntt.InverseFusedPlan
	planCache map[int]*fusedPlanSet
}

// fusedPlanSet is one fusion degree's per-limb plan pair.
type fusedPlanSet struct {
	fwd []*ntt.FusedPlan
	inv []*ntt.InverseFusedPlan
}

// HFCache caches precomputed HFAuto routing maps per Galois element.
// Routing is data-independent, so one map serves every limb and ciphertext.
// Safe for concurrent use: lookups take a read lock, first-time builds a
// write lock.
type HFCache struct {
	h    *automorph.HFAuto
	mu   sync.RWMutex
	maps map[uint64]*automorph.Map
}

// NewRing constructs a ring of degree n over the given prime moduli. Every
// modulus must satisfy q ≡ 1 (mod 2n). laneC is the HFAuto sub-vector
// width; pass 0 for the default min(512, n).
func NewRing(n int, moduli []uint64, laneC int) (*Ring, error) {
	if len(moduli) == 0 {
		return nil, fmt.Errorf("ring: empty modulus chain")
	}
	if laneC == 0 {
		laneC = 512
		if laneC > n {
			laneC = n
		}
	}
	r := &Ring{N: n}
	for n>>uint(r.LogN+1) > 0 {
		r.LogN++
	}
	if 1<<uint(r.LogN) != n {
		return nil, fmt.Errorf("ring: N=%d is not a power of two", n)
	}
	seen := map[uint64]bool{}
	for _, q := range moduli {
		if seen[q] {
			return nil, fmt.Errorf("ring: duplicate modulus %d", q)
		}
		seen[q] = true
		tab, err := ntt.NewTable(n, q)
		if err != nil {
			return nil, fmt.Errorf("ring: modulus %d: %w", q, err)
		}
		r.Moduli = append(r.Moduli, tab.Mod)
		r.Tables = append(r.Tables, tab)
	}
	hf, err := automorph.NewHFAuto(n, laneC)
	if err != nil {
		return nil, err
	}
	r.HF = &HFCache{h: hf, maps: make(map[uint64]*automorph.Map)}
	r.arena = NewArena(n, len(moduli))
	return r, nil
}

// Arena exposes the ring's scratch arena (stats, poison mode, direct
// checkout for callers that manage polynomial lifetimes themselves).
func (r *Ring) Arena() *Arena { return r.arena }

// SetStrictKernels selects between the lazy-reduction production kernels
// (default, false) and the strict fully-reduced reference kernels (true) for
// NTT/INTT and the elementwise products. The two paths produce bit-identical
// results; the switch exists so differential tests can prove that identity
// at the evaluator level and so benchmarks can measure both schedules in one
// binary. Call before sharing the ring across goroutines: the flag is read
// without synchronization on every hot path.
func (r *Ring) SetStrictKernels(strict bool) { r.strict = strict }

// StrictKernels reports whether the strict reference kernels are selected.
func (r *Ring) StrictKernels() bool { return r.strict }

// SetFusionDegree selects the fused radix-2^k NTT kernels for every limb
// transform: k in [1, 6] fuses k butterfly stages per memory pass (k=3 is
// the paper's Fig-10 sweet spot and the measured one on amd64 — see
// BENCH_kernels.json); k=0 restores the plain lazy radix-2 kernels. Plans
// are built once per (table, k) on first selection and cached for the life
// of the ring, shared by every evaluator on it; the fused and plain paths
// are bit-identical. Strict mode overrides fusion while set. Like
// SetStrictKernels, call before sharing the ring across goroutines.
func (r *Ring) SetFusionDegree(k int) error {
	if k == 0 {
		r.fusionK, r.fwdPlans, r.invPlans = 0, nil, nil
		return nil
	}
	if set, ok := r.planCache[k]; ok {
		r.fusionK, r.fwdPlans, r.invPlans = k, set.fwd, set.inv
		return nil
	}
	set := &fusedPlanSet{
		fwd: make([]*ntt.FusedPlan, len(r.Tables)),
		inv: make([]*ntt.InverseFusedPlan, len(r.Tables)),
	}
	for i, tab := range r.Tables {
		fwd, err := ntt.NewFusedPlan(tab, k)
		if err != nil {
			return fmt.Errorf("ring: limb %d: %w", i, err)
		}
		inv, err := ntt.NewInverseFusedPlan(tab, k)
		if err != nil {
			return fmt.Errorf("ring: limb %d: %w", i, err)
		}
		set.fwd[i], set.inv[i] = fwd, inv
	}
	if r.planCache == nil {
		r.planCache = make(map[int]*fusedPlanSet)
	}
	r.planCache[k] = set
	r.fusionK, r.fwdPlans, r.invPlans = k, set.fwd, set.inv
	return nil
}

// FusionDegree returns the selected fusion degree (0 = plain radix-2).
func (r *Ring) FusionDegree() int { return r.fusionK }

// SetFaultInjector installs (or, with nil, removes) a fault injector on the
// ring's injection points. Like SetStrictKernels, call before sharing the
// ring across goroutines: the pointer is read without synchronization on
// every hot path (the injector itself is internally locked).
func (r *Ring) SetFaultInjector(in *fault.Injector) { r.injector = in }

// FaultInjector returns the installed injector (nil when faults are off).
func (r *Ring) FaultInjector() *fault.Injector { return r.injector }

// ForwardLimb / InverseLimb dispatch one limb's transform to the selected
// kernel (exported for the evaluator, whose keyswitch pipeline drives
// per-limb transforms directly); mulLimb / mulAddLimb likewise for the elementwise products. All
// serial and parallel ring operations funnel through these four, so the
// strict toggle covers every execution path.
func (r *Ring) ForwardLimb(i int, c []uint64) {
	if r.injector != nil {
		r.injector.OnLimbRead(fault.SiteNTT, i, c)
	}
	switch {
	case r.strict:
		r.Tables[i].ForwardStrict(c)
	case r.fwdPlans != nil:
		r.fwdPlans[i].Forward(c)
	default:
		r.Tables[i].Forward(c)
	}
}

func (r *Ring) InverseLimb(i int, c []uint64) {
	if r.injector != nil {
		r.injector.OnLimbRead(fault.SiteINTT, i, c)
	}
	switch {
	case r.strict:
		r.Tables[i].InverseStrict(c)
	case r.invPlans != nil:
		r.invPlans[i].Inverse(c)
	default:
		r.Tables[i].Inverse(c)
	}
}

func (r *Ring) mulLimb(mod numeric.Modulus, oc, ac, bc []uint64) {
	if r.strict {
		for j := range oc {
			oc[j] = mod.Mul(ac[j], bc[j])
		}
	} else {
		mod.VecMontMul(oc, ac, bc)
	}
}

func (r *Ring) mulAddLimb(mod numeric.Modulus, oc, ac, bc []uint64) {
	if r.strict {
		for j := range oc {
			oc[j] = mod.Add(oc[j], mod.Mul(ac[j], bc[j]))
		}
	} else {
		mod.VecMontMulAdd(oc, ac, bc)
	}
}

// Get returns (building if needed) the routing map for Galois element g.
// Safe for concurrent use.
func (c *HFCache) Get(g uint64) *automorph.Map {
	c.mu.RLock()
	m, ok := c.maps[g]
	c.mu.RUnlock()
	if ok {
		return m
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if m, ok := c.maps[g]; ok {
		return m
	}
	m = c.h.Precompute(g)
	c.maps[g] = m
	return m
}

// Poly is an RNS polynomial: Coeffs[i][j] is coefficient j modulo the i-th
// prime. IsNTT tracks the representation domain. A Poly created at level l
// carries l+1 limbs.
type Poly struct {
	Coeffs [][]uint64
	IsNTT  bool
}

// NewPoly allocates a zero polynomial with `limbs` limbs in a single
// backing array. The result is NOT arena-tracked: use for long-lived values
// (keys, ciphertexts); scratch should come from GetPoly/GetPolyDirty.
func (r *Ring) NewPoly(limbs int) *Poly {
	if limbs < 1 || limbs > len(r.Moduli) {
		panic(fmt.Sprintf("ring: limbs=%d out of range [1,%d]", limbs, len(r.Moduli)))
	}
	return newPoly(r.N, limbs)
}

// GetPoly returns a zeroed `limbs`-limb polynomial drawn from the ring's
// arena. Pair with PutPoly when the value is no longer referenced;
// polynomials that escape to callers should use NewPoly instead. Safe for
// concurrent use.
func (r *Ring) GetPoly(limbs int) *Poly {
	if limbs > len(r.Moduli) {
		panic(fmt.Sprintf("ring: limbs=%d out of range [1,%d]", limbs, len(r.Moduli)))
	}
	return r.arena.Get(limbs)
}

// GetPolyDirty is GetPoly without the zero fill: the contents are
// unspecified. Use when every coefficient is about to be overwritten.
func (r *Ring) GetPolyDirty(limbs int) *Poly {
	if limbs > len(r.Moduli) {
		panic(fmt.Sprintf("ring: limbs=%d out of range [1,%d]", limbs, len(r.Moduli)))
	}
	return r.arena.GetDirty(limbs)
}

// PutPoly returns a polynomial obtained from GetPoly/GetPolyDirty to the
// arena. The poly must not be referenced afterwards, and must own its
// backing array (never a prefix view of a live polynomial).
func (r *Ring) PutPoly(p *Poly) {
	r.arena.Put(p)
}

// GetVec returns an N-word scratch vector from the ring's arena — per-task
// staging space for parallel automorphisms and hoisted keyswitch
// permutations. Pair with PutVec.
func (r *Ring) GetVec() []uint64 {
	return r.arena.GetVec()
}

// PutVec returns a GetVec vector to the arena.
func (r *Ring) PutVec(v []uint64) {
	r.arena.PutVec(v)
}

// Level returns the polynomial's level (limbs − 1).
func (p *Poly) Level() int { return len(p.Coeffs) - 1 }

// CopyNew returns a deep copy of p.
func (p *Poly) CopyNew() *Poly {
	q := &Poly{Coeffs: make([][]uint64, len(p.Coeffs)), IsNTT: p.IsNTT}
	backing := make([]uint64, len(p.Coeffs)*len(p.Coeffs[0]))
	n := len(p.Coeffs[0])
	for i := range p.Coeffs {
		q.Coeffs[i] = backing[i*n : (i+1)*n]
		copy(q.Coeffs[i], p.Coeffs[i])
	}
	return q
}

// Equal reports deep equality including representation domain.
func (p *Poly) Equal(o *Poly) bool {
	if p.IsNTT != o.IsNTT || len(p.Coeffs) != len(o.Coeffs) {
		return false
	}
	for i := range p.Coeffs {
		if !slices.Equal(p.Coeffs[i], o.Coeffs[i]) {
			return false
		}
	}
	return true
}

// DropLimb removes the last limb in place (used by Rescale and ModDown).
func (p *Poly) DropLimb() {
	if len(p.Coeffs) == 1 {
		panic("ring: cannot drop the last limb")
	}
	p.Coeffs = p.Coeffs[:len(p.Coeffs)-1]
}

func (r *Ring) check(ps ...*Poly) int {
	limbs := len(ps[0].Coeffs)
	for _, p := range ps {
		if len(p.Coeffs) != limbs {
			panic(fmt.Sprintf("ring: limb mismatch %d vs %d", len(p.Coeffs), limbs))
		}
		for i := range p.Coeffs {
			if len(p.Coeffs[i]) != r.N {
				panic("ring: coefficient length mismatch")
			}
		}
	}
	return limbs
}

// Add computes out = a + b limb-wise (the MA operator).
func (r *Ring) Add(out, a, b *Poly) {
	limbs := r.check(out, a, b)
	for i := 0; i < limbs; i++ {
		mod := r.Moduli[i]
		oc, ac, bc := out.Coeffs[i], a.Coeffs[i], b.Coeffs[i]
		for j := range oc {
			oc[j] = mod.Add(ac[j], bc[j])
		}
	}
	out.IsNTT = a.IsNTT
}

// Sub computes out = a − b limb-wise.
func (r *Ring) Sub(out, a, b *Poly) {
	limbs := r.check(out, a, b)
	for i := 0; i < limbs; i++ {
		mod := r.Moduli[i]
		oc, ac, bc := out.Coeffs[i], a.Coeffs[i], b.Coeffs[i]
		for j := range oc {
			oc[j] = mod.Sub(ac[j], bc[j])
		}
	}
	out.IsNTT = a.IsNTT
}

// Neg computes out = −a limb-wise.
func (r *Ring) Neg(out, a *Poly) {
	limbs := r.check(out, a)
	for i := 0; i < limbs; i++ {
		mod := r.Moduli[i]
		oc, ac := out.Coeffs[i], a.Coeffs[i]
		for j := range oc {
			oc[j] = mod.Neg(ac[j])
		}
	}
	out.IsNTT = a.IsNTT
}

// MulCoeffwise computes out = a ⊙ b limb-wise (the MM operator). Both
// operands must be in the NTT domain for this to realize a ring product.
func (r *Ring) MulCoeffwise(out, a, b *Poly) {
	limbs := r.check(out, a, b)
	if !a.IsNTT || !b.IsNTT {
		panic("ring: MulCoeffwise requires NTT-domain operands")
	}
	for i := 0; i < limbs; i++ {
		r.mulLimb(r.Moduli[i], out.Coeffs[i], a.Coeffs[i], b.Coeffs[i])
	}
	out.IsNTT = true
}

// MulCoeffwiseAdd computes out += a ⊙ b limb-wise (NTT domain).
func (r *Ring) MulCoeffwiseAdd(out, a, b *Poly) {
	limbs := r.check(out, a, b)
	if !a.IsNTT || !b.IsNTT {
		panic("ring: MulCoeffwiseAdd requires NTT-domain operands")
	}
	for i := 0; i < limbs; i++ {
		r.mulAddLimb(r.Moduli[i], out.Coeffs[i], a.Coeffs[i], b.Coeffs[i])
	}
	out.IsNTT = true
}

// MulScalar computes out = a · scalar, with the scalar reduced per limb.
func (r *Ring) MulScalar(out, a *Poly, scalar uint64) {
	limbs := r.check(out, a)
	for i := 0; i < limbs; i++ {
		mod := r.Moduli[i]
		s := mod.Reduce(scalar)
		ss := mod.ShoupConstant(s)
		oc, ac := out.Coeffs[i], a.Coeffs[i]
		for j := range oc {
			oc[j] = mod.MulShoup(ac[j], s, ss)
		}
	}
	out.IsNTT = a.IsNTT
}

// MulScalarRNS multiplies limb i by scalars[i] (one residue per limb).
func (r *Ring) MulScalarRNS(out, a *Poly, scalars []uint64) {
	limbs := r.check(out, a)
	if len(scalars) < limbs {
		panic("ring: MulScalarRNS: not enough scalars for limb count")
	}
	for i := 0; i < limbs; i++ {
		mod := r.Moduli[i]
		s := mod.Reduce(scalars[i])
		ss := mod.ShoupConstant(s)
		oc, ac := out.Coeffs[i], a.Coeffs[i]
		for j := range oc {
			oc[j] = mod.MulShoup(ac[j], s, ss)
		}
	}
	out.IsNTT = a.IsNTT
}

// NTT transforms all limbs to the evaluation domain in place.
func (r *Ring) NTT(p *Poly) {
	if p.IsNTT {
		panic("ring: NTT on NTT-domain polynomial")
	}
	for i := range p.Coeffs {
		r.ForwardLimb(i, p.Coeffs[i])
	}
	p.IsNTT = true
}

// INTT transforms all limbs back to the coefficient domain in place.
func (r *Ring) INTT(p *Poly) {
	if !p.IsNTT {
		panic("ring: INTT on coefficient-domain polynomial")
	}
	for i := range p.Coeffs {
		r.InverseLimb(i, p.Coeffs[i])
	}
	p.IsNTT = false
}

// Automorphism applies X ↦ X^g to every limb using the shared HFAuto
// engine. The polynomial must be in the coefficient domain. dst and src
// must not alias.
func (r *Ring) Automorphism(dst, src *Poly, g uint64) {
	limbs := r.check(dst, src)
	if src.IsNTT {
		panic("ring: Automorphism requires coefficient domain")
	}
	m := r.HF.Get(g)
	stage := r.GetVec()
	for i := 0; i < limbs; i++ {
		m.ApplyScratch(dst.Coeffs[i], src.Coeffs[i], r.Moduli[i], stage)
	}
	r.PutVec(stage)
	dst.IsNTT = false
}

// ToBigCentered reconstructs coefficient j of p (coefficient domain) as a
// centered big integer via the CRT over the first `limbs` moduli.
func (r *Ring) ToBigCentered(p *Poly, j int) *big.Int {
	limbs := len(p.Coeffs)
	bigQ := big.NewInt(1)
	for i := 0; i < limbs; i++ {
		bigQ.Mul(bigQ, new(big.Int).SetUint64(r.Moduli[i].Q))
	}
	acc := new(big.Int)
	tmp := new(big.Int)
	for i := 0; i < limbs; i++ {
		qi := new(big.Int).SetUint64(r.Moduli[i].Q)
		Qi := new(big.Int).Div(bigQ, qi)
		inv := new(big.Int).ModInverse(Qi, qi)
		tmp.SetUint64(p.Coeffs[i][j])
		tmp.Mul(tmp, inv)
		tmp.Mod(tmp, qi)
		tmp.Mul(tmp, Qi)
		acc.Add(acc, tmp)
	}
	acc.Mod(acc, bigQ)
	half := new(big.Int).Rsh(bigQ, 1)
	if acc.Cmp(half) > 0 {
		acc.Sub(acc, bigQ)
	}
	return acc
}

// SetBigCentered writes big integer v into coefficient j of p across all
// limbs.
func (r *Ring) SetBigCentered(p *Poly, j int, v *big.Int) {
	tmp := new(big.Int)
	for i := range p.Coeffs {
		qi := new(big.Int).SetUint64(r.Moduli[i].Q)
		tmp.Mod(v, qi)
		if tmp.Sign() < 0 {
			tmp.Add(tmp, qi)
		}
		p.Coeffs[i][j] = tmp.Uint64()
	}
}
