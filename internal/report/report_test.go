package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableWrite(t *testing.T) {
	tab := New("Demo", "name", "value")
	tab.AddRow("alpha", 1.5)
	tab.AddRow("beta-long-name", 123456.0)
	tab.AddNote("a footnote with %d arg", 1)

	var buf bytes.Buffer
	tab.Write(&buf)
	out := buf.String()
	for _, want := range []string{"== Demo ==", "name", "alpha", "1.500", "1.23e+05", "note: a footnote with 1 arg"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Column alignment: header and first row should share the separator width.
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatal("too few lines")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.5:     "0.500",
		150:     "150.0",
		1e6:     "1e+06",
		0.00001: "1e-05",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v)=%q want %q", in, got, want)
		}
	}
}

func TestCSV(t *testing.T) {
	tab := New("x", "a", "b")
	tab.AddRow("v,1", "plain")
	tab.AddRow(`qu"ote`, 2.0)
	var buf bytes.Buffer
	tab.CSV(&buf)
	out := buf.String()
	if !strings.Contains(out, `"v,1",plain`) {
		t.Errorf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"qu""ote"`) {
		t.Errorf("quote cell not escaped: %s", out)
	}
}
