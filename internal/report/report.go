// Package report renders experiment results as aligned text tables and CSV,
// the output format of the cmd/poseidon harness.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 100000:
		return fmt.Sprintf("%.3g", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	case av >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// Write renders the table to w.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV renders comma-separated values (quoting cells containing commas).
func (t *Table) CSV(w io.Writer) {
	writeRow := func(cells []string) {
		q := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			q[i] = c
		}
		fmt.Fprintln(w, strings.Join(q, ","))
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
}
