package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	tr := &Trace{Name: "demo", Description: "round trip"}
	tr.AddTagged(HAdd, 10, 3, "phase1")
	tr.Add(CMult, 8, 2.5)
	tr.Add(Rotation, 6, 1)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || back.Description != tr.Description {
		t.Error("metadata lost")
	}
	if len(back.Ops) != len(tr.Ops) {
		t.Fatalf("ops %d want %d", len(back.Ops), len(tr.Ops))
	}
	for i := range tr.Ops {
		if back.Ops[i] != tr.Ops[i] {
			t.Errorf("op %d: %+v != %+v", i, back.Ops[i], tr.Ops[i])
		}
	}
}

func TestReadJSONValidation(t *testing.T) {
	cases := map[string]string{
		"bad kind":       `{"name":"x","ops":[{"kind":"Nope","limbs":1,"count":1}]}`,
		"zero limbs":     `{"name":"x","ops":[{"kind":"HAdd","limbs":0,"count":1}]}`,
		"zero count":     `{"name":"x","ops":[{"kind":"HAdd","limbs":1,"count":0}]}`,
		"negative count": `{"name":"x","ops":[{"kind":"HAdd","limbs":1,"count":-2}]}`,
		"missing name":   `{"ops":[]}`,
		"not json":       `{{{`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadJSONEmptyOps(t *testing.T) {
	tr, err := ReadJSON(strings.NewReader(`{"name":"empty","ops":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalOps() != 0 {
		t.Error("empty trace should have zero ops")
	}
}

// The optional memory profile must survive the JSON round trip and stay
// absent when never set.
func TestJSONMemRoundTrip(t *testing.T) {
	tr := &Trace{Name: "mem", Mem: &MemStats{
		AllocsPerOp:    2.5,
		BytesPerOp:     4096,
		ArenaBytes:     1 << 20,
		PeakArenaBytes: 1 << 19,
	}}
	tr.Add(HAdd, 4, 1)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Mem == nil || *back.Mem != *tr.Mem {
		t.Fatalf("Mem round trip: %+v != %+v", back.Mem, tr.Mem)
	}

	plain := &Trace{Name: "plain"}
	plain.Add(HAdd, 4, 1)
	buf.Reset()
	if err := plain.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\"mem\"") {
		t.Error("mem key serialized for a trace without a memory profile")
	}
	back, err = ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Mem != nil {
		t.Error("Mem materialized from a trace without one")
	}
}

// The optional integrity-guard profile must survive the JSON round trip
// and stay absent when never set.
func TestJSONFaultRoundTrip(t *testing.T) {
	tr := &Trace{Name: "fault", Fault: &FaultStats{
		Seals:           1200,
		Verifies:        2400,
		SpotChecks:      300,
		IntegrityFaults: 7,
		NoiseFlags:      2,
	}}
	tr.Add(CMult, 4, 1)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fault == nil || *back.Fault != *tr.Fault {
		t.Fatalf("Fault round trip: %+v != %+v", back.Fault, tr.Fault)
	}

	plain := &Trace{Name: "plain"}
	plain.Add(CMult, 4, 1)
	buf.Reset()
	if err := plain.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\"fault\"") {
		t.Error("fault key serialized for a trace without a guard profile")
	}
	back, err = ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fault != nil {
		t.Error("Fault materialized from a trace without one")
	}
}
