// Package trace defines operation-level execution traces: sequences of FHE
// basic operations (with their level schedules) that the accelerator model
// executes. Workload generators build traces; the simulator consumes them.
package trace

import "fmt"

// Kind enumerates the FHE basic operations of the paper's Table I.
type Kind int

const (
	HAdd Kind = iota
	HAddPlain
	PMult
	CMult
	Rescale
	Keyswitch
	Rotation
	Automorphism
	NTTTransform
	ModUp
	ModDown
	LinTrans
	numKinds
)

// String returns the paper's name for the operation.
func (k Kind) String() string {
	switch k {
	case HAdd:
		return "HAdd"
	case HAddPlain:
		return "HAddPlain"
	case PMult:
		return "PMult"
	case CMult:
		return "CMult"
	case Rescale:
		return "Rescale"
	case Keyswitch:
		return "Keyswitch"
	case Rotation:
		return "Rotation"
	case Automorphism:
		return "Automorphism"
	case NTTTransform:
		return "NTT"
	case ModUp:
		return "ModUp"
	case ModDown:
		return "ModDown"
	case LinTrans:
		return "LinTrans"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds returns all operation kinds in declaration order.
func Kinds() []Kind {
	ks := make([]Kind, numKinds)
	for i := range ks {
		ks[i] = Kind(i)
	}
	return ks
}

// NumKinds is the number of operation kinds — the index space observers and
// telemetry collectors size their per-kind tables with.
func NumKinds() int { return int(numKinds) }

// kindsByName maps every kind's paper name back to the kind, so observers
// resolving op-name strings pay one map lookup instead of a linear scan.
var kindsByName = func() map[string]Kind {
	m := make(map[string]Kind, numKinds)
	for _, k := range Kinds() {
		m[k.String()] = k
	}
	return m
}()

// KindByName resolves an operation name ("CMult", "Rescale", …) to its kind.
// Unknown names return ok=false; callers decide whether to drop or count
// them.
func KindByName(name string) (Kind, bool) {
	k, ok := kindsByName[name]
	return k, ok
}

// Op is a batch of identical basic operations at one level.
type Op struct {
	Kind  Kind
	Limbs int     // active RNS limbs (level+1) when the op executes
	Count float64 // how many times it runs (fractional for scaled models)
	Tag   string  // optional phase label (e.g. "CoeffToSlot")
}

// MemStats is an optional memory profile of the software run that produced
// a trace. Heap figures come from the Go allocator (testing.AllocsPerRun /
// benchmark -benchmem); arena figures come from the evaluator's polynomial
// arena and bound the scratch working set — the software analogue of the
// accelerator's on-chip scratchpad budget.
type MemStats struct {
	AllocsPerOp    float64 // Go heap allocations per evaluator op (steady state)
	BytesPerOp     float64 // Go heap bytes per evaluator op (steady state)
	ArenaBytes     uint64  // total coefficient storage the arena ever allocated
	PeakArenaBytes uint64  // high-water mark of simultaneously checked-out bytes
}

// FaultStats is an optional integrity-guard profile of the software run
// that produced a trace: how many checksum seals and verifications the
// evaluator performed, how many redundant-limb spot checks ran, and how
// many faults the guards caught — the software analogue of an
// accelerator's ECC/scrubbing counters.
type FaultStats struct {
	Seals           uint64 // integrity seals computed over operator outputs
	Verifies        uint64 // seal verifications at operator input boundaries
	SpotChecks      uint64 // redundant-limb recomputations compared
	IntegrityFaults uint64 // checksum or spot-check mismatches detected
	NoiseFlags      uint64 // operations refused for exhausted noise budget

	// Recovery counters (zero unless a recovery policy was installed):
	// detected faults the evaluator re-executed through, and how that went.
	RetryAttempts uint64 // op re-executions performed by the recovery layer
	Recovered     uint64 // ops that succeeded after ≥1 re-execution
	Unrecoverable uint64 // ops that exhausted their attempt budget
}

// KindCalib is one row of a model-vs-measured calibration: for one basic
// operation kind, how much wall time the software evaluator actually spent
// (summed over all limb counts) against what the accelerator model predicts
// for the same op sequence. Ratio = measured/modeled — the software-vs-
// accelerator speedup the paper's Table VII evaluation is built on.
type KindCalib struct {
	Kind        Kind    `json:"kind"`
	Name        string  `json:"name"`
	Count       uint64  `json:"count"`        // timed op executions joined
	MeasuredSec float64 `json:"measured_sec"` // software wall time (telemetry histograms)
	ModeledSec  float64 `json:"modeled_sec"`  // accelerator model prediction
	Ratio       float64 `json:"ratio"`        // measured / modeled
}

// CalibStats is the calibration summary joining a telemetry snapshot with an
// accelerator model over the same run: per-kind measured/modeled ratios plus
// a drift summary (geomean and spread of the ratios). A geomean far from its
// historical value means either the software or the model drifted.
type CalibStats struct {
	Workload     string      `json:"workload,omitempty"`
	PerKind      []KindCalib `json:"per_kind"`
	GeomeanRatio float64     `json:"geomean_ratio"`
	MinRatio     float64     `json:"min_ratio"`
	MaxRatio     float64     `json:"max_ratio"`
}

// Trace is a named operation sequence. Workers records the limb-parallel
// worker count of the software evaluator the trace was captured on (0 =
// unknown/not captured from a live run), so simulated speedups stay
// attributable to the execution engine that produced the trace. Mem and
// Fault, when present, profile the memory and integrity-guard behavior of
// that same run.
type Trace struct {
	Name        string
	Description string
	Workers     int
	Mem         *MemStats
	Fault       *FaultStats
	Ops         []Op
}

// Add appends count occurrences of kind at the given limb count.
func (t *Trace) Add(kind Kind, limbs int, count float64) {
	t.AddTagged(kind, limbs, count, "")
}

// AddTagged appends with a phase label.
func (t *Trace) AddTagged(kind Kind, limbs int, count float64, tag string) {
	if count <= 0 || limbs < 1 {
		return
	}
	t.Ops = append(t.Ops, Op{Kind: kind, Limbs: limbs, Count: count, Tag: tag})
}

// Append concatenates another trace's operations.
func (t *Trace) Append(o *Trace) {
	t.Ops = append(t.Ops, o.Ops...)
}

// TotalOps sums operation counts.
func (t *Trace) TotalOps() float64 {
	total := 0.0
	for _, op := range t.Ops {
		total += op.Count
	}
	return total
}

// CountByKind aggregates counts per operation kind.
func (t *Trace) CountByKind() map[Kind]float64 {
	m := map[Kind]float64{}
	for _, op := range t.Ops {
		m[op.Kind] += op.Count
	}
	return m
}
