package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON interchange for traces, so workloads can be captured once and
// replayed across design points (the cmd/poseidon-sim flow).

type jsonOp struct {
	Kind  string  `json:"kind"`
	Limbs int     `json:"limbs"`
	Count float64 `json:"count"`
	Tag   string  `json:"tag,omitempty"`
}

type jsonMem struct {
	AllocsPerOp    float64 `json:"allocs_per_op"`
	BytesPerOp     float64 `json:"bytes_per_op"`
	ArenaBytes     uint64  `json:"arena_bytes"`
	PeakArenaBytes uint64  `json:"peak_arena_bytes"`
}

type jsonFault struct {
	Seals           uint64 `json:"seals"`
	Verifies        uint64 `json:"verifies"`
	SpotChecks      uint64 `json:"spot_checks"`
	IntegrityFaults uint64 `json:"integrity_faults"`
	NoiseFlags      uint64 `json:"noise_flags"`
}

type jsonTrace struct {
	Name        string     `json:"name"`
	Description string     `json:"description,omitempty"`
	Workers     int        `json:"workers,omitempty"`
	Mem         *jsonMem   `json:"mem,omitempty"`
	Fault       *jsonFault `json:"fault,omitempty"`
	Ops         []jsonOp   `json:"ops"`
}

// WriteJSON serializes the trace.
func (t *Trace) WriteJSON(w io.Writer) error {
	jt := jsonTrace{Name: t.Name, Description: t.Description, Workers: t.Workers}
	if t.Mem != nil {
		jt.Mem = &jsonMem{
			AllocsPerOp:    t.Mem.AllocsPerOp,
			BytesPerOp:     t.Mem.BytesPerOp,
			ArenaBytes:     t.Mem.ArenaBytes,
			PeakArenaBytes: t.Mem.PeakArenaBytes,
		}
	}
	if t.Fault != nil {
		jt.Fault = &jsonFault{
			Seals:           t.Fault.Seals,
			Verifies:        t.Fault.Verifies,
			SpotChecks:      t.Fault.SpotChecks,
			IntegrityFaults: t.Fault.IntegrityFaults,
			NoiseFlags:      t.Fault.NoiseFlags,
		}
	}
	for _, op := range t.Ops {
		jt.Ops = append(jt.Ops, jsonOp{
			Kind: op.Kind.String(), Limbs: op.Limbs, Count: op.Count, Tag: op.Tag,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// ReadJSON parses a trace, validating kinds, limbs and counts.
func ReadJSON(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if jt.Name == "" {
		return nil, fmt.Errorf("trace: missing name")
	}
	t := &Trace{Name: jt.Name, Description: jt.Description, Workers: jt.Workers}
	if jt.Mem != nil {
		t.Mem = &MemStats{
			AllocsPerOp:    jt.Mem.AllocsPerOp,
			BytesPerOp:     jt.Mem.BytesPerOp,
			ArenaBytes:     jt.Mem.ArenaBytes,
			PeakArenaBytes: jt.Mem.PeakArenaBytes,
		}
	}
	if jt.Fault != nil {
		t.Fault = &FaultStats{
			Seals:           jt.Fault.Seals,
			Verifies:        jt.Fault.Verifies,
			SpotChecks:      jt.Fault.SpotChecks,
			IntegrityFaults: jt.Fault.IntegrityFaults,
			NoiseFlags:      jt.Fault.NoiseFlags,
		}
	}
	for i, op := range jt.Ops {
		kind, ok := KindByName(op.Kind)
		if !ok {
			return nil, fmt.Errorf("trace: op %d: unknown kind %q", i, op.Kind)
		}
		if op.Limbs < 1 {
			return nil, fmt.Errorf("trace: op %d: limbs %d must be ≥ 1", i, op.Limbs)
		}
		if op.Count <= 0 {
			return nil, fmt.Errorf("trace: op %d: count %g must be positive", i, op.Count)
		}
		t.AddTagged(kind, op.Limbs, op.Count, op.Tag)
	}
	return t, nil
}
