package trace

import "testing"

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		HAdd: "HAdd", PMult: "PMult", CMult: "CMult", Rescale: "Rescale",
		Keyswitch: "Keyswitch", Rotation: "Rotation", Automorphism: "Automorphism",
		NTTTransform: "NTT", ModUp: "ModUp", ModDown: "ModDown", HAddPlain: "HAddPlain",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind %d: %q want %q", int(k), k.String(), s)
		}
	}
	if len(Kinds()) != int(numKinds) {
		t.Errorf("Kinds() returned %d entries", len(Kinds()))
	}
}

func TestTraceAdd(t *testing.T) {
	tr := &Trace{Name: "test"}
	tr.Add(HAdd, 10, 3)
	tr.Add(CMult, 10, 2)
	tr.Add(HAdd, 8, 1)
	tr.Add(HAdd, 8, 0)   // dropped: zero count
	tr.Add(PMult, 0, 5)  // dropped: invalid limbs
	tr.Add(PMult, 4, -1) // dropped: negative count

	if got := tr.TotalOps(); got != 6 {
		t.Errorf("TotalOps=%v want 6", got)
	}
	by := tr.CountByKind()
	if by[HAdd] != 4 || by[CMult] != 2 || by[PMult] != 0 {
		t.Errorf("CountByKind wrong: %v", by)
	}
}

func TestTraceAppendAndTags(t *testing.T) {
	a := &Trace{Name: "a"}
	a.AddTagged(Rotation, 5, 2, "CoeffToSlot")
	b := &Trace{Name: "b"}
	b.Add(Rescale, 5, 1)
	a.Append(b)
	if len(a.Ops) != 2 {
		t.Fatalf("ops=%d want 2", len(a.Ops))
	}
	if a.Ops[0].Tag != "CoeffToSlot" {
		t.Errorf("tag lost: %q", a.Ops[0].Tag)
	}
}
