package telemetry

import (
	"context"
	"io"
	"runtime/pprof"
	rttrace "runtime/trace"
)

// Profiling hooks. Two mechanisms cooperate:
//
//   - The evaluator's span path (installed with any SpanObserver) opens a
//     runtime/trace region named after each basic op, so `go tool trace`
//     execution traces attribute time to FHE operators — the software
//     analogue of HF-NTT-style per-operator stall attribution.
//   - Do wraps a workload phase in pprof labels, so CPU flamegraphs can be
//     filtered by workload and phase (`pprof -tagfocus phase=bootstrap`).

// Do runs fn with pprof labels {workload, phase} applied to its goroutine —
// samples taken inside attribute to the labeled workload in pprof output.
// Labels compose with the evaluator's per-op trace regions.
func Do(ctx context.Context, workload, phase string, fn func(context.Context)) {
	pprof.Do(ctx, pprof.Labels("workload", workload, "phase", phase), fn)
}

// StartTrace begins a runtime execution trace written to w; while active,
// every evaluator basic op (under a span observer) appears as a named
// region. Stop with StopTrace.
func StartTrace(w io.Writer) error { return rttrace.Start(w) }

// StopTrace ends the execution trace started with StartTrace.
func StopTrace() { rttrace.Stop() }
