package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// EventLog is the structured JSONL event stream: one line per observed
// span, for offline analysis (latency time series, per-op error
// correlation, trace alignment). Attaching a stream adds an encode + write
// per op, so it is meant for capture sessions, not steady-state serving —
// the histograms stay the zero-allocation path.
type EventLog struct {
	mu sync.Mutex
	w  *bufio.Writer
	n  uint64
}

// StreamTo attaches a JSONL event stream writing to w; a nil w detaches
// the current stream. Returns the attached log (nil when detaching) whose
// Flush should be called when the capture ends.
func (c *Collector) StreamTo(w io.Writer) *EventLog {
	if w == nil {
		c.events.Store(nil)
		return nil
	}
	ev := &EventLog{w: bufio.NewWriter(w)}
	c.events.Store(ev)
	return ev
}

// emit writes one event line. The fields are flat and stable:
// {"ts_ns":…,"op":"CMult","limbs":6,"dur_ns":…,"err":"…"}.
func (e *EventLog) emit(op string, level int, dur time.Duration, err error) {
	ts := time.Now().UnixNano()
	e.mu.Lock()
	defer e.mu.Unlock()
	e.n++
	if err == nil {
		fmt.Fprintf(e.w, `{"ts_ns":%d,"op":%q,"limbs":%d,"dur_ns":%d}`+"\n", ts, op, level+1, dur.Nanoseconds())
		return
	}
	msg := strings.ReplaceAll(err.Error(), `"`, `'`)
	fmt.Fprintf(e.w, `{"ts_ns":%d,"op":%q,"limbs":%d,"dur_ns":%d,"err":%q}`+"\n", ts, op, level+1, dur.Nanoseconds(), msg)
}

// Events reports how many lines have been emitted.
func (e *EventLog) Events() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// Flush drains the buffered writer.
func (e *EventLog) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.w.Flush()
}
