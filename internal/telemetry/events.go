package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EventLog is the structured JSONL event stream: one line per observed
// span, for offline analysis (latency time series, per-op error
// correlation, trace alignment).
//
// The hot path never blocks on the sink: emit formats the line and hands
// it to a background writer through a bounded queue with a non-blocking
// send. A stalled writer (slow disk, wedged pipe) costs the evaluator
// nothing — excess lines are counted in Dropped and discarded. Attaching
// a stream still adds an encode + channel send per op, so it is meant for
// capture sessions, not steady-state serving — the histograms stay the
// zero-allocation path.
type EventLog struct {
	w *bufio.Writer

	ch      chan []byte
	flushCh chan chan error
	quit    chan struct{}
	done    chan struct{}
	closeMu sync.Once

	accepted atomic.Uint64 // lines enqueued for the writer
	dropped  atomic.Uint64 // lines discarded because the queue was full
}

// eventQueueDepth bounds the writer queue: deep enough to ride out write
// latency spikes (a 4k-op burst at ~120 B/line is ~half a megabyte),
// small enough that a wedged sink wastes bounded memory.
const eventQueueDepth = 4096

// StreamTo attaches a JSONL event stream writing to w; a nil w detaches
// (and closes) the current stream. Returns the attached log (nil when
// detaching) whose Flush should be called when the capture ends.
func (c *Collector) StreamTo(w io.Writer) *EventLog {
	var ev *EventLog
	if w != nil {
		ev = &EventLog{
			w:       bufio.NewWriter(w),
			ch:      make(chan []byte, eventQueueDepth),
			flushCh: make(chan chan error),
			quit:    make(chan struct{}),
			done:    make(chan struct{}),
		}
		go ev.run()
	}
	if prev := c.events.Swap(ev); prev != nil {
		prev.Close()
	}
	return ev
}

// emit hands one event line to the writer goroutine without ever
// blocking: a full queue (stalled sink) drops the line and counts it.
// The fields are flat and stable:
// {"ts_ns":…,"op":"CMult","limbs":6,"dur_ns":…,"err":"…"}.
func (e *EventLog) emit(op string, level int, dur time.Duration, err error) {
	ts := time.Now().UnixNano()
	var line []byte
	if err == nil {
		line = fmt.Appendf(nil, `{"ts_ns":%d,"op":%q,"limbs":%d,"dur_ns":%d}`+"\n", ts, op, level+1, dur.Nanoseconds())
	} else {
		msg := strings.ReplaceAll(err.Error(), `"`, `'`)
		line = fmt.Appendf(nil, `{"ts_ns":%d,"op":%q,"limbs":%d,"dur_ns":%d,"err":%q}`+"\n", ts, op, level+1, dur.Nanoseconds(), msg)
	}
	select {
	case e.ch <- line:
		e.accepted.Add(1)
	default:
		e.dropped.Add(1)
	}
}

// run is the writer goroutine: it owns the bufio.Writer entirely, so a
// slow sink stalls only this goroutine.
func (e *EventLog) run() {
	for {
		select {
		case line := <-e.ch:
			e.w.Write(line)
		case ack := <-e.flushCh:
			e.drainQueued()
			ack <- e.w.Flush()
		case <-e.quit:
			e.drainQueued()
			e.w.Flush()
			close(e.done)
			return
		}
	}
}

// drainQueued writes everything currently queued without blocking on the
// channel.
func (e *EventLog) drainQueued() {
	for {
		select {
		case line := <-e.ch:
			e.w.Write(line)
		default:
			return
		}
	}
}

// Events reports how many lines the stream has accepted (excluding
// drops).
func (e *EventLog) Events() uint64 { return e.accepted.Load() }

// Dropped reports how many lines were discarded because the writer could
// not keep up — the observable that proves a stalled sink sheds instead
// of blocking.
func (e *EventLog) Dropped() uint64 { return e.dropped.Load() }

// Flush writes everything queued so far through to the sink. Unlike
// emit, Flush is allowed to block on a slow sink: it is a capture-end
// operation, not a hot-path one. Returns nil on a closed log.
func (e *EventLog) Flush() error {
	ack := make(chan error, 1)
	select {
	case e.flushCh <- ack:
		return <-ack
	case <-e.done:
		return nil
	}
}

// Close drains the queue, flushes the sink, and stops the writer
// goroutine. Idempotent; called automatically when the collector detaches
// the stream.
func (e *EventLog) Close() {
	e.closeMu.Do(func() { close(e.quit) })
	<-e.done
}
