package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"poseidon/internal/arch"
	"poseidon/internal/trace"
)

func TestCollectorObserve(t *testing.T) {
	c := NewCollector("unit")
	c.ObserveSpan("CMult", 5, 100*time.Microsecond, nil)
	c.ObserveSpan("CMult", 5, 200*time.Microsecond, nil)
	c.ObserveSpan("Rescale", 5, 50*time.Microsecond, nil)
	c.Observe("HAdd", 3) // count-only, no timing
	c.Observe("NoSuchOp", 3)
	c.ObserveSpan("HAdd", 3, time.Microsecond, errors.New("boom"))

	snap := c.Snapshot()
	if snap.Workload != "unit" {
		t.Fatalf("workload = %q", snap.Workload)
	}
	if snap.UnknownOps != 1 {
		t.Fatalf("UnknownOps = %d, want 1", snap.UnknownOps)
	}
	if snap.Errors["HAdd"] != 1 {
		t.Fatalf("Errors = %v, want HAdd:1", snap.Errors)
	}
	byKey := map[string]KeyStat{}
	for _, ks := range snap.Keys {
		byKey[ks.Op] = ks
	}
	cm := byKey["CMult"]
	if cm.Ops != 2 || cm.Count != 2 || cm.Limbs != 6 {
		t.Fatalf("CMult stat = %+v", cm)
	}
	if cm.SumNs != uint64(300*time.Microsecond) {
		t.Fatalf("CMult SumNs = %d", cm.SumNs)
	}
	ha := byKey["HAdd"]
	if ha.Ops != 1 || ha.Count != 0 {
		t.Fatalf("HAdd stat = %+v (count-only observe must not add a sample)", ha)
	}
}

func TestCollectorByKind(t *testing.T) {
	c := NewCollector("unit")
	c.ObserveSpan("Rotation", 3, time.Millisecond, nil)
	c.ObserveSpan("Rotation", 7, 3*time.Millisecond, nil)
	agg := c.Snapshot().ByKind()
	rot, ok := agg[trace.Rotation]
	if !ok {
		t.Fatalf("no Rotation aggregate; got %v", agg)
	}
	if rot.Count != 2 || rot.SumNs != uint64(4*time.Millisecond) {
		t.Fatalf("Rotation aggregate = %+v", rot)
	}
	if rot.MaxNs != uint64(3*time.Millisecond) {
		t.Fatalf("Rotation MaxNs = %d", rot.MaxNs)
	}
}

func TestLimbClamp(t *testing.T) {
	c := NewCollector("unit")
	c.ObserveSpan("HAdd", MaxLimbs+100, time.Microsecond, nil) // clamps high
	c.ObserveSpan("HAdd", -5, time.Microsecond, nil)           // clamps low
	snap := c.Snapshot()
	if len(snap.Keys) != 2 {
		t.Fatalf("keys = %+v, want clamped 0 and MaxLimbs rows", snap.Keys)
	}
	if snap.Keys[0].Limbs != 0 || snap.Keys[1].Limbs != MaxLimbs {
		t.Fatalf("clamped limbs = %d, %d", snap.Keys[0].Limbs, snap.Keys[1].Limbs)
	}
}

func TestWritePrometheus(t *testing.T) {
	c := NewCollector("wl")
	c.ObserveSpan("CMult", 5, time.Millisecond, nil)
	c.Observe("BadName", 1)
	var buf bytes.Buffer
	c.Snapshot().WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`poseidon_op_total{workload="wl",op="CMult",limbs="6"} 1`,
		`poseidon_op_latency_seconds{workload="wl",op="CMult",limbs="6",quantile="1"} 0.001`,
		`poseidon_op_latency_seconds_count{workload="wl",op="CMult",limbs="6"} 1`,
		`poseidon_unknown_ops_total{workload="wl"} 1`,
		"# TYPE poseidon_op_latency_seconds summary",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestEventStream(t *testing.T) {
	c := NewCollector("wl")
	var buf bytes.Buffer
	ev := c.StreamTo(&buf)
	c.ObserveSpan("Rescale", 4, 123*time.Microsecond, nil)
	c.ObserveSpan("CMult", 4, 0, errors.New(`bad "input"`))
	if err := ev.Flush(); err != nil {
		t.Fatal(err)
	}
	if ev.Events() != 2 {
		t.Fatalf("Events = %d, want 2", ev.Events())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	var rec struct {
		TsNs  int64  `json:"ts_ns"`
		Op    string `json:"op"`
		Limbs int    `json:"limbs"`
		DurNs int64  `json:"dur_ns"`
		Err   string `json:"err"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if rec.Op != "Rescale" || rec.Limbs != 5 || rec.DurNs != 123000 {
		t.Fatalf("event 0 = %+v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if rec.Err == "" {
		t.Fatalf("event 1 lost the error: %+v", rec)
	}
	// Detach and confirm no more lines arrive.
	c.StreamTo(nil)
	c.ObserveSpan("Rescale", 4, time.Microsecond, nil)
	if ev.Events() != 2 {
		t.Fatalf("detached stream still receiving: %d", ev.Events())
	}
}

func TestCalibrate(t *testing.T) {
	model, err := arch.NewModel(arch.U280(), arch.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCollector("calib")
	// Measured = 2× modeled for CMult, exactly modeled for Rescale.
	cmModeled := model.Latency(model.ProfileFor(trace.CMult, 6))
	rsModeled := model.Latency(model.ProfileFor(trace.Rescale, 6))
	c.ObserveSpan("CMult", 5, time.Duration(2*cmModeled*1e9), nil)
	c.ObserveSpan("Rescale", 5, time.Duration(rsModeled*1e9), nil)

	cs := Calibrate(c.Snapshot(), model)
	if cs.Workload != "calib" {
		t.Fatalf("workload = %q", cs.Workload)
	}
	if len(cs.PerKind) != 2 {
		t.Fatalf("PerKind = %+v, want 2 kinds", cs.PerKind)
	}
	byName := map[string]trace.KindCalib{}
	for _, kc := range cs.PerKind {
		byName[kc.Name] = kc
	}
	cm := byName["CMult"]
	if cm.Count != 1 || cm.ModeledSec == 0 {
		t.Fatalf("CMult calib = %+v", cm)
	}
	// time.Duration truncation costs sub-ns precision; 1% slack is plenty.
	if cm.Ratio < 1.98 || cm.Ratio > 2.02 {
		t.Fatalf("CMult ratio = %g, want ~2", cm.Ratio)
	}
	rs := byName["Rescale"]
	if rs.Ratio < 0.99 || rs.Ratio > 1.01 {
		t.Fatalf("Rescale ratio = %g, want ~1", rs.Ratio)
	}
	if cs.MinRatio > cs.GeomeanRatio || cs.GeomeanRatio > cs.MaxRatio {
		t.Fatalf("drift summary out of order: min %g geomean %g max %g",
			cs.MinRatio, cs.GeomeanRatio, cs.MaxRatio)
	}
}

func TestCalibrateEmpty(t *testing.T) {
	model, err := arch.NewModel(arch.U280(), arch.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	cs := Calibrate(NewCollector("empty").Snapshot(), model)
	if len(cs.PerKind) != 0 || cs.GeomeanRatio != 0 || cs.MinRatio != 0 || cs.MaxRatio != 0 {
		t.Fatalf("empty calibration = %+v", cs)
	}
}

func TestServerEndpoints(t *testing.T) {
	c := NewCollector("http")
	c.ObserveSpan("HAdd", 2, time.Microsecond, nil)
	srv, err := StartServer("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ct := get("/metrics")
	if !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, `poseidon_op_total{workload="http",op="HAdd",limbs="3"} 1`) {
		t.Fatalf("/metrics missing HAdd series:\n%s", body)
	}

	vars, _ := get("/debug/vars")
	if !strings.Contains(vars, "poseidon_telemetry") {
		t.Fatalf("/debug/vars missing poseidon_telemetry:\n%s", vars)
	}

	idx, _ := get("/debug/pprof/")
	if !strings.Contains(idx, "goroutine") {
		t.Fatalf("/debug/pprof/ missing profile index")
	}
}

func TestRecordPathZeroAlloc(t *testing.T) {
	c := NewCollector("alloc")
	// Warm up: materialize the histogram for the key.
	c.ObserveSpan("CMult", 5, time.Microsecond, nil)
	allocs := testing.AllocsPerRun(1000, func() {
		c.ObserveSpan("CMult", 5, time.Microsecond, nil)
	})
	if allocs != 0 {
		t.Fatalf("ObserveSpan allocates %g allocs/op after warm-up, want 0", allocs)
	}
}
