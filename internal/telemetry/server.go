package telemetry

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the optional live-metrics HTTP endpoint:
//
//	/metrics      Prometheus text exposition of the collector
//	/debug/vars   expvar JSON (includes poseidon_telemetry)
//	/debug/pprof  the standard Go profiling handlers
//
// It binds its own listener and mux, so it never pollutes
// http.DefaultServeMux and multiple servers (e.g. in tests) coexist.
type Server struct {
	srv *http.Server
	ln  net.Listener
}

// Route mounts an extra handler on the telemetry mux — how hosts attach
// endpoints the collector itself does not know about (poseidond mounts
// the flight recorder's /debug/requests page this way).
type Route struct {
	Pattern string
	Handler http.Handler
}

// StartServer starts serving the collector's metrics on addr ("host:port";
// use "127.0.0.1:0" to bind an ephemeral port and read it back from Addr).
// The collector is also published to expvar so /debug/vars carries the
// same snapshot. Extra routes are mounted after the built-ins.
func StartServer(addr string, c *Collector, extra ...Route) (*Server, error) {
	c.PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", c.MetricsHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, r := range extra {
		mux.Handle(r.Pattern, r.Handler)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:  ln,
	}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound address (resolves the ephemeral port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its listener immediately, aborting in-flight
// scrapes. Prefer Shutdown for a clean exit.
func (s *Server) Close() error { return s.srv.Close() }

// Shutdown stops accepting new connections and waits for in-flight scrapes
// to complete (or ctx to expire, whichever comes first) before releasing
// the listener — the graceful counterpart of Close, so a host process
// (poseidond, tests) can drain /metrics readers instead of cutting them
// off mid-response and leaking half-written sockets.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }
