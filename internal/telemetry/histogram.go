package telemetry

import (
	"math/bits"
	randv2 "math/rand/v2"
	"sync/atomic"
)

// Log-bucketed latency histogram with lock-free sharded counters.
//
// Bucketing is HDR-style: nanosecond values below 8 get their own bucket
// (indices 0–7); above that, each power-of-two octave is split into 8 linear
// sub-buckets, so relative quantile error is bounded by 1/8 of the value.
// 320 buckets cover up to ~2^41 ns (≈ 36 minutes); anything larger lands in
// the overflow bucket. Boundaries are pure bit arithmetic — no float math,
// no search — so Observe is a handful of instructions plus three atomic
// adds.
//
// Sharding: each histogram holds histShards independent counter banks and a
// recorder picks one with a per-call cheap random draw (runtime fastrand via
// math/rand/v2 — no lock, no goroutine state). Concurrent recorders
// therefore mostly touch different cache lines; readers merge all shards
// into one view at snapshot time. Totals are exact — only the instantaneous
// cross-shard view is approximate.

const (
	histSubBits = 3
	histSub     = 1 << histSubBits // 8 sub-buckets per octave

	// NumBuckets is the bucket count of every latency histogram: the linear
	// [0,8) range plus 8 sub-buckets for each of 39 octaves.
	NumBuckets = histSub * 40

	histShards = 4
)

// bucketOf maps a nanosecond duration to its bucket index.
func bucketOf(ns uint64) int {
	if ns < histSub {
		return int(ns)
	}
	h := bits.Len64(ns) - 1 // position of the highest set bit, ≥ 3
	idx := (h-2)*histSub + int((ns>>(uint(h)-histSubBits))&(histSub-1))
	if idx >= NumBuckets {
		return NumBuckets - 1
	}
	return idx
}

// BucketLow returns the inclusive lower nanosecond boundary of bucket i.
func BucketLow(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	h := i/histSub + 2
	sub := uint64(i % histSub)
	return (histSub + sub) << uint(h-histSubBits)
}

// BucketHigh returns the exclusive upper nanosecond boundary of bucket i
// (the lower boundary of bucket i+1).
func BucketHigh(i int) uint64 {
	if i+1 >= NumBuckets {
		return 1 << 63 // overflow bucket is unbounded in practice
	}
	return BucketLow(i + 1)
}

// histShard is one counter bank. The head counters share a cache line with
// nothing hot from a neighboring shard thanks to the trailing bucket array.
type histShard struct {
	count atomic.Uint64
	sum   atomic.Uint64
	max   atomic.Uint64
	_     [5]uint64 // pad the head counters away from the next shard's tail
	bkt   [NumBuckets]atomic.Uint64
}

// Histogram is a concurrent-safe log-bucketed latency histogram.
type Histogram struct {
	shards [histShards]histShard
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration in nanoseconds.
func (h *Histogram) Observe(ns uint64) {
	s := &h.shards[randv2.Uint32()&(histShards-1)]
	s.count.Add(1)
	s.sum.Add(ns)
	s.bkt[bucketOf(ns)].Add(1)
	for {
		m := s.max.Load()
		if ns <= m || s.max.CompareAndSwap(m, ns) {
			return
		}
	}
}

// HistSnapshot is a merged, immutable view of a histogram.
type HistSnapshot struct {
	Count   uint64
	SumNs   uint64
	MaxNs   uint64
	Buckets [NumBuckets]uint64
}

// Snapshot merges the shards into one consistent-enough view (each counter
// is read atomically; cross-counter skew is bounded by in-flight Observes).
func (h *Histogram) Snapshot() HistSnapshot {
	var out HistSnapshot
	for i := range h.shards {
		s := &h.shards[i]
		out.Count += s.count.Load()
		out.SumNs += s.sum.Load()
		if m := s.max.Load(); m > out.MaxNs {
			out.MaxNs = m
		}
		for b := range s.bkt {
			out.Buckets[b] += s.bkt[b].Load()
		}
	}
	return out
}

// Sub removes an earlier snapshot's samples from this one, leaving the
// window between the two capture points — the building block for sliding
// backpressure signals (the serving layer's windowed p99). MaxNs cannot be
// un-merged, so the window keeps the cumulative maximum: quantile reads
// stay conservative (never under-report), which is the safe direction for
// an overload signal. Counts must come from the same histogram, with o
// captured no later than s.
func (s *HistSnapshot) Sub(o HistSnapshot) {
	s.Count -= o.Count
	s.SumNs -= o.SumNs
	for b := range s.Buckets {
		s.Buckets[b] -= o.Buckets[b]
	}
}

// Merge adds another snapshot's samples into this one.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	s.Count += o.Count
	s.SumNs += o.SumNs
	if o.MaxNs > s.MaxNs {
		s.MaxNs = o.MaxNs
	}
	for b := range s.Buckets {
		s.Buckets[b] += o.Buckets[b]
	}
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) in nanoseconds by linear
// interpolation inside the containing bucket. q ≥ 1 returns the exact
// tracked maximum; an empty snapshot returns 0.
func (s *HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q >= 1 {
		return float64(s.MaxNs)
	}
	if q < 0 {
		q = 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for b := range s.Buckets {
		c := float64(s.Buckets[b])
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			frac := (rank - cum) / c
			lo, hi := float64(BucketLow(b)), float64(BucketHigh(b))
			if m := float64(s.MaxNs); hi > m && m >= lo {
				hi = m // tighten the tail bucket with the exact max
			}
			v := lo + frac*(hi-lo)
			if m := float64(s.MaxNs); v > m {
				v = m
			}
			return v
		}
		cum += c
	}
	return float64(s.MaxNs)
}

// MeanNs returns the exact mean in nanoseconds (sums are tracked exactly).
func (s *HistSnapshot) MeanNs() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}
