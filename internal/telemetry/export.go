package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
)

// Prometheus text exposition (version 0.0.4). Metric families:
//
//	poseidon_op_total{workload,op,limbs}                     counter
//	poseidon_op_latency_seconds{workload,op,limbs,quantile}  summary
//	poseidon_op_latency_seconds_sum/_count{workload,op,limbs}
//	poseidon_op_errors_total{workload,op}                    counter
//	poseidon_unknown_ops_total{workload}                     counter
//	poseidon_uptime_seconds{workload}                        gauge
//
// Cardinality budget: op has at most 11 values (the trace kinds), limbs at
// most MaxLimbs+1 but in practice the modulus-chain depth (≤ ~45 on paper
// parameters), so the op families stay under a few hundred series per
// workload — see DESIGN.md §10.

// WritePrometheus renders the snapshot in Prometheus text format.
func (s *Snapshot) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# HELP poseidon_op_total FHE basic operations executed, by kind and active limb count.\n")
	fmt.Fprintf(w, "# TYPE poseidon_op_total counter\n")
	for _, ks := range s.Keys {
		fmt.Fprintf(w, "poseidon_op_total{workload=%q,op=%q,limbs=\"%d\"} %d\n",
			s.Workload, ks.Op, ks.Limbs, ks.Ops)
	}

	fmt.Fprintf(w, "# HELP poseidon_op_latency_seconds Measured wall time per FHE basic operation.\n")
	fmt.Fprintf(w, "# TYPE poseidon_op_latency_seconds summary\n")
	for _, ks := range s.Keys {
		if ks.Count == 0 {
			continue
		}
		for _, q := range []struct {
			q  string
			ns float64
		}{{"0.5", ks.P50Ns}, {"0.95", ks.P95Ns}, {"0.99", ks.P99Ns}, {"1", float64(ks.MaxNs)}} {
			fmt.Fprintf(w, "poseidon_op_latency_seconds{workload=%q,op=%q,limbs=\"%d\",quantile=%q} %g\n",
				s.Workload, ks.Op, ks.Limbs, q.q, q.ns/1e9)
		}
		fmt.Fprintf(w, "poseidon_op_latency_seconds_sum{workload=%q,op=%q,limbs=\"%d\"} %g\n",
			s.Workload, ks.Op, ks.Limbs, float64(ks.SumNs)/1e9)
		fmt.Fprintf(w, "poseidon_op_latency_seconds_count{workload=%q,op=%q,limbs=\"%d\"} %d\n",
			s.Workload, ks.Op, ks.Limbs, ks.Count)
	}

	if len(s.Errors) > 0 {
		fmt.Fprintf(w, "# HELP poseidon_op_errors_total Failed Try* operations by op name.\n")
		fmt.Fprintf(w, "# TYPE poseidon_op_errors_total counter\n")
		names := make([]string, 0, len(s.Errors))
		for name := range s.Errors {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "poseidon_op_errors_total{workload=%q,op=%q} %d\n", s.Workload, name, s.Errors[name])
		}
	}

	if r := s.Recovery; r != nil {
		fmt.Fprintf(w, "# HELP poseidon_recovery_attempts_total Op re-executions performed by the recovery layer.\n")
		fmt.Fprintf(w, "# TYPE poseidon_recovery_attempts_total counter\n")
		fmt.Fprintf(w, "poseidon_recovery_attempts_total{workload=%q} %d\n", s.Workload, r.Attempts)
		fmt.Fprintf(w, "# HELP poseidon_recovery_recovered_total Ops that succeeded after at least one re-execution.\n")
		fmt.Fprintf(w, "# TYPE poseidon_recovery_recovered_total counter\n")
		fmt.Fprintf(w, "poseidon_recovery_recovered_total{workload=%q} %d\n", s.Workload, r.Recovered)
		fmt.Fprintf(w, "# HELP poseidon_recovery_unrecoverable_total Ops that exhausted their attempt budget still failing integrity.\n")
		fmt.Fprintf(w, "# TYPE poseidon_recovery_unrecoverable_total counter\n")
		fmt.Fprintf(w, "poseidon_recovery_unrecoverable_total{workload=%q} %d\n", s.Workload, r.Unrecoverable)
		fmt.Fprintf(w, "# HELP poseidon_recovery_latency_seconds Wall time from first integrity failure to recovered result.\n")
		fmt.Fprintf(w, "# TYPE poseidon_recovery_latency_seconds summary\n")
		for _, q := range []struct {
			q  string
			ns float64
		}{{"0.5", r.P50Ns}, {"0.95", r.P95Ns}, {"0.99", r.P99Ns}, {"1", float64(r.MaxNs)}} {
			fmt.Fprintf(w, "poseidon_recovery_latency_seconds{workload=%q,quantile=%q} %g\n", s.Workload, q.q, q.ns/1e9)
		}
	}

	fmt.Fprintf(w, "# HELP poseidon_unknown_ops_total Observations dropped for an op name outside the trace kind set.\n")
	fmt.Fprintf(w, "# TYPE poseidon_unknown_ops_total counter\n")
	fmt.Fprintf(w, "poseidon_unknown_ops_total{workload=%q} %d\n", s.Workload, s.UnknownOps)

	fmt.Fprintf(w, "# HELP poseidon_uptime_seconds Seconds since the collector was created.\n")
	fmt.Fprintf(w, "# TYPE poseidon_uptime_seconds gauge\n")
	fmt.Fprintf(w, "poseidon_uptime_seconds{workload=%q} %g\n", s.Workload, s.UptimeSec)
}

// RegisterAux attaches an auxiliary metric writer that runs after the
// collector's own families on every /metrics scrape — how subsystems that
// track state the collector does not (the serving layer's scheduler gauges,
// request-latency summaries) ride the same endpoint. Writers must emit
// complete Prometheus text families and must not block indefinitely.
func (c *Collector) RegisterAux(write func(io.Writer)) {
	c.auxMu.Lock()
	c.aux = append(c.aux, write)
	c.auxMu.Unlock()
}

// MetricsHandler serves the collector in Prometheus text format — mount it
// at /metrics. Auxiliary writers registered with RegisterAux are appended
// to every scrape.
func (c *Collector) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		c.Snapshot().WritePrometheus(w)
		c.auxMu.Lock()
		aux := append(make([]func(io.Writer), 0, len(c.aux)), c.aux...)
		c.auxMu.Unlock()
		for _, write := range aux {
			write(w)
		}
	})
}

// expvar integration: one process-wide "poseidon_telemetry" variable that
// always reflects the most recently published collector, so /debug/vars
// keeps working across collector generations (expvar forbids re-publishing
// a name).
var (
	expvarCurrent atomic.Pointer[Collector]
	expvarOnce    sync.Once
)

// PublishExpvar exposes this collector's snapshot under the
// "poseidon_telemetry" expvar (served at /debug/vars). The most recently
// published collector wins.
func (c *Collector) PublishExpvar() {
	expvarCurrent.Store(c)
	expvarOnce.Do(func() {
		expvar.Publish("poseidon_telemetry", expvar.Func(func() any {
			if cur := expvarCurrent.Load(); cur != nil {
				return cur.Snapshot()
			}
			return nil
		}))
	})
}
