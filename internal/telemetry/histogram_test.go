package telemetry

import (
	"math"
	"sync"
	"testing"
)

// TestBucketBoundaries checks the log-bucket layout invariants: every value
// maps into a bucket whose [low, high) range contains it, boundaries are
// monotone, and the sub-bucket resolution bounds relative error.
func TestBucketBoundaries(t *testing.T) {
	for b := 0; b < NumBuckets; b++ {
		lo, hi := BucketLow(b), BucketHigh(b)
		if hi <= lo {
			t.Fatalf("bucket %d: high %d <= low %d", b, hi, lo)
		}
		if b > 0 && lo != BucketHigh(b-1) {
			t.Fatalf("bucket %d: low %d != previous high %d", b, lo, BucketHigh(b-1))
		}
		if got := bucketOf(lo); got != b {
			t.Fatalf("bucketOf(low=%d) = %d, want %d", lo, got, b)
		}
		if hi-1 >= lo {
			if got := bucketOf(hi - 1); got != b && b != NumBuckets-1 {
				t.Fatalf("bucketOf(high-1=%d) = %d, want %d", hi-1, got, b)
			}
		}
	}
	// Values beyond the table clamp into the last bucket.
	if got := bucketOf(math.MaxUint64); got != NumBuckets-1 {
		t.Fatalf("bucketOf(MaxUint64) = %d, want %d", got, NumBuckets-1)
	}
	// The 3 sub-bits give ≤ 1/8 relative bucket width above the linear range.
	for _, v := range []uint64{100, 1 << 20, 1 << 40, 1<<40 + 12345} {
		b := bucketOf(v)
		lo, hi := BucketLow(b), BucketHigh(b)
		if v < lo || v >= hi {
			t.Fatalf("value %d not in its bucket [%d,%d)", v, lo, hi)
		}
		if rel := float64(hi-lo) / float64(lo); rel > 1.0/8+1e-9 {
			t.Fatalf("bucket %d for %d: relative width %g > 1/8", b, v, rel)
		}
	}
}

func TestHistogramObserveSnapshot(t *testing.T) {
	h := NewHistogram()
	var sum uint64
	for i := uint64(1); i <= 1000; i++ {
		h.Observe(i * 1000)
		sum += i * 1000
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count)
	}
	if s.SumNs != sum {
		t.Fatalf("SumNs = %d, want %d", s.SumNs, sum)
	}
	if s.MaxNs != 1000_000 {
		t.Fatalf("MaxNs = %d, want 1000000", s.MaxNs)
	}
	var total uint64
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != count %d", total, s.Count)
	}
}

func TestHistogramMerge(t *testing.T) {
	h1, h2 := NewHistogram(), NewHistogram()
	for i := uint64(1); i <= 100; i++ {
		h1.Observe(i)
		h2.Observe(i * 1_000_000)
	}
	s := h1.Snapshot()
	s.Merge(h2.Snapshot())
	if s.Count != 200 {
		t.Fatalf("merged Count = %d, want 200", s.Count)
	}
	if s.MaxNs != 100_000_000 {
		t.Fatalf("merged MaxNs = %d, want 100000000", s.MaxNs)
	}
	wantSum := uint64(100*101/2) * (1 + 1_000_000)
	if s.SumNs != wantSum {
		t.Fatalf("merged SumNs = %d, want %d", s.SumNs, wantSum)
	}
}

func TestQuantileEdges(t *testing.T) {
	var empty HistSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %g, want 0", q)
	}

	h := NewHistogram()
	h.Observe(42)
	s := h.Snapshot()
	// A single sample answers every quantile with (about) itself; q≥1 is
	// exact because it returns the tracked max.
	if q := s.Quantile(1.0); q != 42 {
		t.Fatalf("q=1 of single sample = %g, want 42", q)
	}
	if q := s.Quantile(0.5); q < float64(BucketLow(bucketOf(42))) || q > float64(BucketHigh(bucketOf(42))) {
		t.Fatalf("q=0.5 of single sample = %g, outside its bucket", q)
	}
	if q := s.Quantile(-1); q != s.Quantile(0) {
		t.Fatalf("q<0 (%g) should clamp to q=0 (%g)", s.Quantile(-1), s.Quantile(0))
	}

	// Quantiles are monotone in q and bounded by the exact max.
	h2 := NewHistogram()
	for i := uint64(1); i <= 10_000; i++ {
		h2.Observe(i * 997)
	}
	s2 := h2.Snapshot()
	prev := 0.0
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
		v := s2.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone: q=%g gives %g < %g", q, v, prev)
		}
		if v > float64(s2.MaxNs) {
			t.Fatalf("quantile %g = %g exceeds max %d", q, v, s2.MaxNs)
		}
		prev = v
	}
	// The median of 1..10000 (×997) lands near 5000×997 — the log buckets
	// guarantee ≤ ~12.5% relative error.
	med := s2.Quantile(0.5)
	want := 5000.0 * 997
	if math.Abs(med-want)/want > 0.15 {
		t.Fatalf("median = %g, want within 15%% of %g", med, want)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const perG, goroutines = 10_000, 4
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(uint64(i + 1))
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != perG*goroutines {
		t.Fatalf("Count = %d, want %d", s.Count, perG*goroutines)
	}
}
