// Package telemetry is the runtime observability layer of the Poseidon
// reproduction: low-overhead per-operation latency histograms keyed by
// (op kind, limb count), profiling hooks (pprof labels, runtime/trace
// regions — the regions themselves are opened by the evaluator's span
// path), live exporters (Prometheus text format, expvar, an optional HTTP
// endpoint with /debug/pprof), a structured JSONL event stream for offline
// analysis, and a model-vs-measured calibration that joins measured wall
// time with the accelerator model's predictions — the software analogue of
// the comparison Poseidon's Table VII evaluation rests on.
//
// The Collector implements the ckks.SpanObserver interface without
// importing ckks: install it with Eval.SetObserver (or Kit.EnableTelemetry)
// and every basic op's wall time lands in a lock-free sharded histogram.
// When no collector is installed the evaluator's instrumentation is a nil
// check; with one installed, the steady-state record path performs zero
// heap allocations after warm-up — the benchtelemetry subcommand gates the
// chain overhead at ≤2%.
package telemetry

import (
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"poseidon/internal/trace"
)

// MaxLimbs caps the limb-count label dimension: ops at more than MaxLimbs
// limbs are clamped into the top slot, bounding label cardinality at
// kinds × (MaxLimbs+1) regardless of parameter set.
const MaxLimbs = 64

// Collector accumulates per-(kind, limbs) operation counts and latency
// histograms. It is safe for concurrent use by any number of evaluator
// goroutines; the hot path is a map-free table lookup plus atomic adds.
type Collector struct {
	workload string

	// ops counts every observed operation, including count-only
	// observations that carry no timing (legacy Observe callbacks and the
	// trace-parity observes inside fused kernels). hists holds the latency
	// histograms, populated lazily on the first timed span of a key — so
	// the table costs pointers, not histograms, for kinds that never run.
	ops   []atomic.Uint64
	hists []atomic.Pointer[Histogram]

	// unknown counts spans whose op name is not a trace kind (dropped
	// rather than mis-binned); errs counts failed Try* operations by the
	// op name they failed under.
	unknown atomic.Uint64
	errMu   sync.Mutex
	errs    map[string]uint64

	// phases accumulates '/'-tagged engine sub-phase spans (e.g.
	// "LinTrans/giant"): timing detail nested inside ops that are already
	// counted, so they get their own table instead of the kind histograms
	// (and are not "unknown" — a phase name is intentional, not a typo).
	phaseMu sync.Mutex
	phases  map[string]PhaseStat

	// recovery counters (ckks.RecoveryObserver): op re-executions under a
	// recovery policy, their outcomes, and the latency of recovered ops
	// from first failure to final success.
	recAttempts      atomic.Uint64
	recRecovered     atomic.Uint64
	recUnrecoverable atomic.Uint64
	recHist          *Histogram

	events atomic.Pointer[EventLog]
	start  time.Time

	// aux holds auxiliary metric writers appended to every /metrics scrape
	// (see RegisterAux) — the hook the serving layer uses to export its
	// scheduler gauges through the collector's endpoint.
	auxMu sync.Mutex
	aux   []func(io.Writer)
}

// NewCollector creates a collector for a named workload (the `workload`
// label on every exported metric).
func NewCollector(workload string) *Collector {
	n := trace.NumKinds() * (MaxLimbs + 1)
	return &Collector{
		workload: workload,
		ops:      make([]atomic.Uint64, n),
		hists:    make([]atomic.Pointer[Histogram], n),
		errs:     map[string]uint64{},
		phases:   map[string]PhaseStat{},
		recHist:  NewHistogram(),
		start:    time.Now(),
	}
}

// ObserveRecovery implements the ckks.RecoveryObserver interface: one call
// per operation that entered the recovery loop, carrying the number of
// re-executions performed, whether the op eventually succeeded, and the
// wall time from first failure to final outcome. Recovered ops contribute
// a latency sample; unrecoverable ones only count.
func (c *Collector) ObserveRecovery(op string, retries int, recovered bool, dur time.Duration) {
	c.recAttempts.Add(uint64(retries))
	if recovered {
		c.recRecovered.Add(1)
		c.recHist.Observe(uint64(dur))
	} else {
		c.recUnrecoverable.Add(1)
	}
}

// RecoverySnapshot summarizes the recovery counters.
type RecoverySnapshot struct {
	Attempts      uint64  `json:"attempts"`      // re-executions performed
	Recovered     uint64  `json:"recovered"`     // ops recovered by re-execution
	Unrecoverable uint64  `json:"unrecoverable"` // ops that exhausted their budget
	P50Ns         float64 `json:"p50_ns"`        // recovery latency (failure → success)
	P95Ns         float64 `json:"p95_ns"`
	P99Ns         float64 `json:"p99_ns"`
	MaxNs         uint64  `json:"max_ns"`
}

// PhaseStat summarizes one engine sub-phase: how many spans landed under
// the name and their cumulative wall time.
type PhaseStat struct {
	Count uint64 `json:"count"`
	SumNs uint64 `json:"sum_ns"`
}

// phase files a sub-phase observation (dur 0 for count-only callbacks).
func (c *Collector) phase(op string, dur time.Duration) {
	c.phaseMu.Lock()
	ps := c.phases[op]
	ps.Count++
	ps.SumNs += uint64(dur)
	c.phases[op] = ps
	c.phaseMu.Unlock()
}

// Phases returns a copy of the sub-phase table.
func (c *Collector) Phases() map[string]PhaseStat {
	c.phaseMu.Lock()
	defer c.phaseMu.Unlock()
	out := make(map[string]PhaseStat, len(c.phases))
	for k, v := range c.phases {
		out[k] = v
	}
	return out
}

// Workload returns the collector's workload label.
func (c *Collector) Workload() string { return c.workload }

func keyIdx(kind trace.Kind, level int) int {
	limbs := level + 1
	if limbs < 0 {
		limbs = 0
	}
	if limbs > MaxLimbs {
		limbs = MaxLimbs
	}
	return int(kind)*(MaxLimbs+1) + limbs
}

// hist returns the histogram for a key, creating it on first use. The
// create path races benignly: the loser's histogram is dropped before any
// sample lands in it.
func (c *Collector) hist(idx int) *Histogram {
	if h := c.hists[idx].Load(); h != nil {
		return h
	}
	h := NewHistogram()
	if c.hists[idx].CompareAndSwap(nil, h) {
		return h
	}
	return c.hists[idx].Load()
}

// Observe implements the legacy count-only observer callback: the op is
// counted but contributes no latency sample.
func (c *Collector) Observe(op string, level int) {
	kind, ok := trace.KindByName(op)
	if !ok {
		if strings.ContainsRune(op, '/') {
			c.phase(op, 0)
			return
		}
		c.unknown.Add(1)
		return
	}
	c.ops[keyIdx(kind, level)].Add(1)
}

// ObserveSpan implements the timed span observer: successful spans record
// their duration in the key's histogram; failed spans count as errors under
// their op name and contribute no latency sample.
func (c *Collector) ObserveSpan(op string, level int, dur time.Duration, err error) {
	if err != nil {
		c.errMu.Lock()
		c.errs[op]++
		c.errMu.Unlock()
		if ev := c.events.Load(); ev != nil {
			ev.emit(op, level, dur, err)
		}
		return
	}
	kind, ok := trace.KindByName(op)
	if !ok {
		if strings.ContainsRune(op, '/') {
			c.phase(op, dur)
			if ev := c.events.Load(); ev != nil {
				ev.emit(op, level, dur, nil)
			}
			return
		}
		c.unknown.Add(1)
		return
	}
	idx := keyIdx(kind, level)
	c.ops[idx].Add(1)
	c.hist(idx).Observe(uint64(dur))
	if ev := c.events.Load(); ev != nil {
		ev.emit(op, level, dur, nil)
	}
}

// UnknownOps reports how many observations carried an op name outside the
// trace kind set (and were therefore dropped from the histograms).
func (c *Collector) UnknownOps() uint64 { return c.unknown.Load() }

// KeyStat is one (kind, limbs) row of a snapshot: total observed ops, the
// timed-sample summary, and the merged bucket counts.
type KeyStat struct {
	Kind  trace.Kind `json:"kind"`
	Op    string     `json:"op"`
	Limbs int        `json:"limbs"`

	Ops   uint64 `json:"ops"`   // all observations, timed or not
	Count uint64 `json:"count"` // timed latency samples
	SumNs uint64 `json:"sum_ns"`
	MaxNs uint64 `json:"max_ns"`

	P50Ns float64 `json:"p50_ns"`
	P95Ns float64 `json:"p95_ns"`
	P99Ns float64 `json:"p99_ns"`

	Hist HistSnapshot `json:"-"` // merged buckets, for exporters and merges
}

// Snapshot is a consistent-enough point-in-time view of a collector.
type Snapshot struct {
	Workload   string               `json:"workload"`
	UptimeSec  float64              `json:"uptime_sec"`
	Keys       []KeyStat            `json:"keys"`
	UnknownOps uint64               `json:"unknown_ops"`
	Errors     map[string]uint64    `json:"errors,omitempty"`
	Phases     map[string]PhaseStat `json:"phases,omitempty"`
	Recovery   *RecoverySnapshot    `json:"recovery,omitempty"`
}

// Snapshot merges every shard and materializes quantiles. Keys are sorted
// by kind then limb count; keys that never saw an op are omitted.
func (c *Collector) Snapshot() *Snapshot {
	snap := &Snapshot{
		Workload:   c.workload,
		UptimeSec:  time.Since(c.start).Seconds(),
		UnknownOps: c.unknown.Load(),
	}
	for idx := range c.ops {
		ops := c.ops[idx].Load()
		h := c.hists[idx].Load()
		if ops == 0 && h == nil {
			continue
		}
		kind := trace.Kind(idx / (MaxLimbs + 1))
		ks := KeyStat{
			Kind:  kind,
			Op:    kind.String(),
			Limbs: idx % (MaxLimbs + 1),
			Ops:   ops,
		}
		if h != nil {
			hs := h.Snapshot()
			ks.Count, ks.SumNs, ks.MaxNs = hs.Count, hs.SumNs, hs.MaxNs
			ks.P50Ns = hs.Quantile(0.50)
			ks.P95Ns = hs.Quantile(0.95)
			ks.P99Ns = hs.Quantile(0.99)
			ks.Hist = hs
		}
		snap.Keys = append(snap.Keys, ks)
	}
	sort.Slice(snap.Keys, func(i, j int) bool {
		if snap.Keys[i].Kind != snap.Keys[j].Kind {
			return snap.Keys[i].Kind < snap.Keys[j].Kind
		}
		return snap.Keys[i].Limbs < snap.Keys[j].Limbs
	})
	c.errMu.Lock()
	if len(c.errs) > 0 {
		snap.Errors = make(map[string]uint64, len(c.errs))
		for k, v := range c.errs {
			snap.Errors[k] = v
		}
	}
	c.errMu.Unlock()
	if ph := c.Phases(); len(ph) > 0 {
		snap.Phases = ph
	}
	if att, rec, unrec := c.recAttempts.Load(), c.recRecovered.Load(), c.recUnrecoverable.Load(); att+rec+unrec > 0 {
		hs := c.recHist.Snapshot()
		snap.Recovery = &RecoverySnapshot{
			Attempts:      att,
			Recovered:     rec,
			Unrecoverable: unrec,
			P50Ns:         hs.Quantile(0.50),
			P95Ns:         hs.Quantile(0.95),
			P99Ns:         hs.Quantile(0.99),
			MaxNs:         hs.MaxNs,
		}
	}
	return snap
}

// ByKind folds a snapshot's keys over the limb dimension: one merged
// histogram summary per operation kind.
func (s *Snapshot) ByKind() map[trace.Kind]KeyStat {
	out := map[trace.Kind]KeyStat{}
	for _, ks := range s.Keys {
		agg, ok := out[ks.Kind]
		if !ok {
			agg = KeyStat{Kind: ks.Kind, Op: ks.Op, Limbs: -1}
		}
		agg.Ops += ks.Ops
		agg.Count += ks.Count
		agg.SumNs += ks.SumNs
		if ks.MaxNs > agg.MaxNs {
			agg.MaxNs = ks.MaxNs
		}
		agg.Hist.Merge(ks.Hist)
		out[ks.Kind] = agg
	}
	for k, agg := range out {
		agg.P50Ns = agg.Hist.Quantile(0.50)
		agg.P95Ns = agg.Hist.Quantile(0.95)
		agg.P99Ns = agg.Hist.Quantile(0.99)
		out[k] = agg
	}
	return out
}
