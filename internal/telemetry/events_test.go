package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// blockingWriter wedges on every Write until released — the worst-case
// StreamTo sink (full pipe, hung disk).
type blockingWriter struct {
	release chan struct{}
	writes  int
	mu      sync.Mutex
}

func (b *blockingWriter) Write(p []byte) (int, error) {
	<-b.release
	b.mu.Lock()
	b.writes++
	b.mu.Unlock()
	return len(p), nil
}

// A stalled sink must never block the evaluator hot path: every
// ObserveSpan returns promptly and overflow is counted in Dropped, not
// waited for. Run under -race: the emitters, the stalled writer
// goroutine, and the late release all overlap.
func TestEventLogStalledWriterNeverBlocks(t *testing.T) {
	c := NewCollector("test")
	bw := &blockingWriter{release: make(chan struct{})}
	ev := c.StreamTo(bw)

	const goroutines = 8
	const perG = 2048 // 8×2048 ≫ queue depth: guarantees overflow
	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.ObserveSpan("CMult", 3, 12*time.Microsecond, nil)
			}
		}()
	}
	wgDone := make(chan struct{})
	go func() { wg.Wait(); close(wgDone) }()
	select {
	case <-wgDone:
	case <-time.After(30 * time.Second):
		t.Fatal("hot path blocked on a stalled event sink")
	}
	elapsed := time.Since(start)

	total := goroutines * perG
	acc, drop := ev.Events(), ev.Dropped()
	if acc+drop != uint64(total) {
		t.Fatalf("accounting leak: accepted %d + dropped %d != emitted %d", acc, drop, total)
	}
	if drop == 0 {
		t.Fatalf("expected drops against a wedged sink (accepted %d of %d)", acc, total)
	}
	t.Logf("stalled sink: %d emitted in %v, %d accepted, %d dropped", total, elapsed, acc, drop)

	// Release the sink: Close must drain what was queued and stop cleanly.
	close(bw.release)
	c.StreamTo(nil)
	bw.mu.Lock()
	writes := bw.writes
	bw.mu.Unlock()
	if writes == 0 {
		t.Fatal("released sink saw no writes after Close drain")
	}
	// Post-close: the collector no longer routes to the log.
	c.ObserveSpan("CMult", 3, time.Microsecond, nil)
	if got := ev.Events() + ev.Dropped(); got != uint64(total) {
		t.Fatalf("detached stream still counting: %d != %d", got, total)
	}
}

func TestEventLogFlushDeliversQueuedLines(t *testing.T) {
	c := NewCollector("test")
	var buf bytes.Buffer
	var mu sync.Mutex
	ev := c.StreamTo(writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	}))
	c.ObserveSpan("HAdd", 2, time.Millisecond, nil)
	c.ObserveSpan("Rescale", 2, time.Millisecond, errors.New(`bad "scale"`))
	if err := ev.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("flushed %d lines, want 2: %q", len(lines), out)
	}
	if !strings.Contains(lines[0], `"op":"HAdd"`) || !strings.Contains(lines[0], `"limbs":3`) {
		t.Fatalf("line 0 malformed: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"err":"bad 'scale'"`) {
		t.Fatalf("error line lost its message: %s", lines[1])
	}
	if ev.Dropped() != 0 {
		t.Fatalf("dropped %d with a live sink", ev.Dropped())
	}
	c.StreamTo(nil)
	if err := ev.Flush(); err != nil {
		t.Fatalf("Flush on closed log: %v", err)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
