package telemetry

import (
	"math"

	"poseidon/internal/arch"
	"poseidon/internal/trace"
)

// Calibrate joins a telemetry snapshot's measured per-op wall times with the
// accelerator model's predictions: for every kind that executed, measured
// seconds are the histogram sums and modeled seconds are count × the model's
// per-op latency at the same limb count. The per-kind measured/modeled ratio
// says how far this software baseline sits from the modeled accelerator —
// the drift summary (geomean, min, max over kinds) is the one-number health
// check that the cost model and the measured workload still describe the
// same machine.
func Calibrate(snap *Snapshot, model *arch.Model) *trace.CalibStats {
	type acc struct {
		count    uint64
		measured float64
		modeled  float64
	}
	perKind := map[trace.Kind]*acc{}
	for _, ks := range snap.Keys {
		if ks.Count == 0 {
			continue
		}
		a := perKind[ks.Kind]
		if a == nil {
			a = &acc{}
			perKind[ks.Kind] = a
		}
		a.count += ks.Count
		a.measured += float64(ks.SumNs) / 1e9
		a.modeled += float64(ks.Count) * model.Latency(model.ProfileFor(ks.Kind, ks.Limbs))
	}

	cs := &trace.CalibStats{Workload: snap.Workload}
	logSum, nRatio := 0.0, 0
	cs.MinRatio = math.Inf(1)
	cs.MaxRatio = math.Inf(-1)
	for _, k := range trace.Kinds() {
		a := perKind[k]
		if a == nil {
			continue
		}
		kc := trace.KindCalib{
			Kind:        k,
			Name:        k.String(),
			Count:       a.count,
			MeasuredSec: a.measured,
			ModeledSec:  a.modeled,
		}
		if a.measured > 0 && a.modeled > 0 {
			kc.Ratio = a.measured / a.modeled
			logSum += math.Log(kc.Ratio)
			nRatio++
			cs.MinRatio = math.Min(cs.MinRatio, kc.Ratio)
			cs.MaxRatio = math.Max(cs.MaxRatio, kc.Ratio)
		}
		cs.PerKind = append(cs.PerKind, kc)
	}
	if nRatio > 0 {
		cs.GeomeanRatio = math.Exp(logSum / float64(nRatio))
	} else {
		cs.MinRatio, cs.MaxRatio = 0, 0
	}
	return cs
}
