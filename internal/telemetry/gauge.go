package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Scheduler gauges: the serving layer (internal/server) exposes its live
// state — queue depth, dispatch mode, resident tenants, shed counters —
// alongside the per-op histograms. A Gauge is an atomically updated int64;
// a GaugeFunc is sampled at scrape time, for values that live elsewhere
// (channel lengths, arena byte counters) and would be wasteful to mirror
// on every update. Both render through GaugeSet.WritePrometheus, which a
// Collector aux writer (RegisterAux) splices into /metrics.

// Gauge is a single atomically updated metric value. The zero value is
// usable; gauges are normally created through GaugeSet.New so they render
// on scrapes.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Set stores an absolute value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add increments by delta (negative deltas decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one — the counter idiom.
func (g *Gauge) Inc() { g.v.Add(1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// gaugeFunc is a scrape-time sampled metric.
type gaugeFunc struct {
	name string
	help string
	fn   func() float64
}

// GaugeSet is a named collection of gauges with a Prometheus text
// renderer. Safe for concurrent registration and scraping.
type GaugeSet struct {
	mu     sync.Mutex
	gauges []*Gauge
	funcs  []gaugeFunc
}

// NewGaugeSet returns an empty set.
func NewGaugeSet() *GaugeSet { return &GaugeSet{} }

// New registers and returns a gauge. Names should follow Prometheus
// conventions (snake_case, namespaced, e.g. "poseidon_serve_queue_depth").
func (s *GaugeSet) New(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	s.mu.Lock()
	s.gauges = append(s.gauges, g)
	s.mu.Unlock()
	return g
}

// NewFunc registers a gauge sampled by fn at every scrape.
func (s *GaugeSet) NewFunc(name, help string, fn func() float64) {
	s.mu.Lock()
	s.funcs = append(s.funcs, gaugeFunc{name: name, help: help, fn: fn})
	s.mu.Unlock()
}

// WritePrometheus renders every gauge in text exposition format, sorted by
// name so scrapes are deterministic.
func (s *GaugeSet) WritePrometheus(w io.Writer) {
	type row struct {
		name, help string
		v          float64
	}
	s.mu.Lock()
	rows := make([]row, 0, len(s.gauges)+len(s.funcs))
	for _, g := range s.gauges {
		rows = append(rows, row{g.name, g.help, float64(g.Value())})
	}
	for _, f := range s.funcs {
		rows = append(rows, row{f.name, f.help, f.fn()})
	}
	s.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, r := range rows {
		if r.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", r.name, r.help)
		}
		fmt.Fprintf(w, "# TYPE %s gauge\n", r.name)
		fmt.Fprintf(w, "%s %g\n", r.name, r.v)
	}
}
