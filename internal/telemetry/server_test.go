package telemetry

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// Shutdown must drain an in-flight scrape: the response completes with its
// full body, Shutdown does not return before the handler does, and the
// listener is released afterwards.
func TestServerShutdownDrainsInflightScrape(t *testing.T) {
	c := NewCollector("shutdown-test")
	entered := make(chan struct{})
	release := make(chan struct{})
	c.RegisterAux(func(w io.Writer) {
		close(entered)
		<-release
		fmt.Fprintln(w, "poseidon_test_aux 1")
	})

	srv, err := StartServer("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	scrapeDone := make(chan error, 1)
	var body string
	go func() {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			scrapeDone <- err
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		body = string(b)
		scrapeDone <- err
	}()

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("scrape never reached the aux writer")
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// The scrape is still blocked, so Shutdown must still be draining.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a scrape was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-scrapeDone; err != nil {
		t.Fatalf("in-flight scrape failed: %v", err)
	}
	if !strings.Contains(body, "poseidon_test_aux 1") {
		t.Fatalf("drained scrape lost the aux payload:\n%s", body)
	}

	// The listener must be gone: new connections are refused.
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		conn.Close()
		t.Fatal("listener still accepting connections after Shutdown")
	}
}

func TestGaugeSetWritePrometheus(t *testing.T) {
	gs := NewGaugeSet()
	depth := gs.New("poseidon_serve_queue_depth", "Jobs waiting for the dispatcher.")
	shed := gs.New("poseidon_serve_shed_total", "Requests rejected by admission control.")
	gs.NewFunc("poseidon_serve_arena_bytes", "Live arena bytes.", func() float64 { return 12345 })

	depth.Set(7)
	shed.Inc()
	shed.Add(2)
	if got := shed.Value(); got != 3 {
		t.Fatalf("shed = %d, want 3", got)
	}

	var sb strings.Builder
	gs.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"# TYPE poseidon_serve_queue_depth gauge",
		"poseidon_serve_queue_depth 7",
		"poseidon_serve_shed_total 3",
		"poseidon_serve_arena_bytes 12345",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Deterministic ordering: arena < queue_depth < shed.
	if strings.Index(out, "arena_bytes") > strings.Index(out, "queue_depth") ||
		strings.Index(out, "queue_depth") > strings.Index(out, "shed_total") {
		t.Errorf("gauges not sorted by name:\n%s", out)
	}
}

// Aux writers registered on a collector must appear on /metrics scrapes
// after the collector's own families.
func TestCollectorAuxWriters(t *testing.T) {
	c := NewCollector("aux-test")
	c.ObserveSpan("HAdd", 3, 42*time.Microsecond, nil)
	gs := NewGaugeSet()
	gs.New("poseidon_serve_mode", "Dispatch mode.").Set(1)
	c.RegisterAux(gs.WritePrometheus)

	srv, err := StartServer("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	out := string(b)
	opIdx := strings.Index(out, "poseidon_op_total")
	auxIdx := strings.Index(out, "poseidon_serve_mode 1")
	if opIdx < 0 || auxIdx < 0 {
		t.Fatalf("scrape missing op or aux families:\n%s", out)
	}
	if auxIdx < opIdx {
		t.Errorf("aux families should follow collector families:\n%s", out)
	}
}

// Sub must leave exactly the samples observed between two snapshots, so a
// windowed quantile reflects recent traffic, not process lifetime.
func TestHistSnapshotSub(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 1000; i++ {
		h.Observe(1000) // 1µs era
	}
	old := h.Snapshot()
	for i := 0; i < 100; i++ {
		h.Observe(1_000_000) // 1ms era
	}
	cur := h.Snapshot()
	cur.Sub(old)
	if cur.Count != 100 {
		t.Fatalf("window count = %d, want 100", cur.Count)
	}
	p50 := cur.Quantile(0.5)
	if p50 < 500_000 {
		t.Fatalf("windowed p50 = %gns still dominated by pre-window samples", p50)
	}
}
