package server

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"poseidon/internal/ckks"
	"poseidon/internal/telemetry"
	"poseidon/internal/tracing"
)

// Config parameterizes an EvalServer. The zero value of every tunable is
// replaced by the default noted on the field; Params is required.
type Config struct {
	Params *ckks.Parameters

	MaxBatch     int           // max requests per batch (default 16)
	FlushTimeout time.Duration // max wait for a batch to fill (default 2ms)
	QueueDepth   int           // dispatch queue capacity (default 256)
	RegistryCap  int           // resident tenant key sets (default 64)

	// Admission ceilings. A request is rejected with 503 when live arena
	// bytes exceed MaxArenaBytes or the windowed request p99 exceeds
	// MaxP99. Zero disables the respective ceiling.
	MaxArenaBytes int64
	MaxP99        time.Duration
	P99Window     time.Duration // p99 refresh window (default 2s)

	DegradeCooldown time.Duration // ladder decay interval (default 2s)

	// GuardSeed, when non-zero, arms integrity guards on every tenant
	// evaluator; guard trips drive the degradation ladder.
	GuardSeed int64

	// Fault recovery. OpMaxAttempts > 1 installs a ckks.RecoveryPolicy on
	// every tenant evaluator: ops failing with ErrIntegrity re-execute
	// transactionally up to that many total attempts. MaxJobAttempts > 1
	// additionally re-enqueues integrity-failed jobs with exponential
	// backoff (base RetryBackoff, doubled per attempt, capped at 250ms)
	// instead of failing the response; only a job that exhausts the budget
	// trips the degradation ladder. Both default to 1 (off), preserving
	// the zero-allocation steady state.
	OpMaxAttempts  int
	MaxJobAttempts int
	RetryBackoff   time.Duration // default 5ms

	// DefaultDeadline bounds every HTTP evaluation request that does not
	// carry its own X-Poseidon-Deadline header (0 = unbounded). Expiry
	// returns 504 and the scheduler skips the abandoned job.
	DefaultDeadline time.Duration

	// Collector, when set, receives per-op spans from every tenant
	// evaluator and exports the server gauges on its /metrics page.
	Collector *telemetry.Collector

	// Tracer, when set, enables end-to-end request tracing: every request
	// grows a span tree (ingest → queue → exec, with per-op evaluator
	// spans, hoist attribution and retry/backoff children) that is
	// tail-sampled into the tracer's flight recorder on completion. Nil
	// disables tracing entirely — the hot path then pays only nil checks,
	// preserving the zero-allocation steady state.
	Tracer *tracing.Tracer
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.FlushTimeout <= 0 {
		c.FlushTimeout = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.RegistryCap <= 0 {
		c.RegistryCap = 64
	}
	if c.P99Window <= 0 {
		c.P99Window = 2 * time.Second
	}
	if c.DegradeCooldown <= 0 {
		c.DegradeCooldown = 2 * time.Second
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 5 * time.Millisecond
	}
	return c
}

// EvalServer is the multi-tenant evaluation service: a key registry, a
// batching scheduler, and the HTTP surface over both. One EvalServer owns
// one parameter set; every tenant shares its arena and worker pool the way
// the paper's operators share one set of physical kernels.
type EvalServer struct {
	cfg      Config
	params   *ckks.Parameters
	registry *Registry
	sched    *scheduler

	reqHist *telemetry.Histogram // end-to-end request latency

	// windowed p99 cache: refreshed at most once per P99Window by
	// differencing cumulative histogram snapshots.
	p99Mu     chan struct{} // 1-buffered: a non-blocking mutex
	p99Snap   telemetry.HistSnapshot
	p99At     time.Time
	p99Cached atomic.Int64 // ns

	requests    atomic.Uint64
	rejected    atomic.Uint64 // 503s from admission control
	badRequests atomic.Uint64
	opErrors    atomic.Uint64 // admitted requests whose evaluation failed
	timeouts    atomic.Uint64 // requests abandoned at their context deadline
	bytesIn     atomic.Uint64
	bytesOut    atomic.Uint64

	// tracer/sink are nil when tracing is disabled; health is always on.
	tracer *tracing.Tracer
	sink   *tracing.EvalObserver
	health *healthTracker

	gauges *telemetry.GaugeSet
}

// NewEvalServer builds the service and starts its dispatcher.
func NewEvalServer(cfg Config) (*EvalServer, error) {
	if cfg.Params == nil {
		return nil, errors.New("server: Config.Params is required")
	}
	cfg = cfg.withDefaults()
	s := &EvalServer{
		cfg:     cfg,
		params:  cfg.Params,
		reqHist: telemetry.NewHistogram(),
		p99Mu:   make(chan struct{}, 1),
		health:  newHealthTracker(),
	}
	var obs ckks.OpObserver
	if cfg.Collector != nil {
		obs = cfg.Collector
	}
	if cfg.Tracer != nil {
		// The trace sink rides a fanout next to the collector on every
		// tenant evaluator; the scheduler activates it per job so per-op
		// spans land on the right request's tree.
		s.tracer = cfg.Tracer
		s.sink = tracing.NewEvalObserver(cfg.Tracer)
		obs = ckks.Fanout(obs, s.sink)
	}
	s.registry = newRegistry(cfg.Params, cfg.RegistryCap, obs, cfg.GuardSeed, cfg.OpMaxAttempts)
	s.sched = newScheduler(cfg, cfg.Params, s.tracer, s.sink)
	s.initGauges()
	return s, nil
}

// initGauges exports the serving-layer signals next to the evaluator
// histograms on the collector's /metrics page.
func (s *EvalServer) initGauges() {
	g := telemetry.NewGaugeSet()
	g.NewFunc("poseidon_serve_mode", "dispatch mode: 0 batched, 1 serial, 2 shed",
		func() float64 { return float64(s.sched.currentMode()) })
	g.NewFunc("poseidon_serve_queue_depth", "jobs waiting for dispatch",
		func() float64 { return float64(len(s.sched.queue)) })
	g.NewFunc("poseidon_serve_arena_bytes", "live arena bytes (admission signal)",
		func() float64 { return float64(s.params.ArenaStats().BytesInUse) })
	g.NewFunc("poseidon_serve_resident_tenants", "tenant key sets resident in the registry",
		func() float64 { return float64(s.registry.Resident()) })
	g.NewFunc("poseidon_serve_request_p99_seconds", "windowed end-to-end request p99",
		func() float64 { return time.Duration(s.windowedP99()).Seconds() })
	g.NewFunc("poseidon_serve_requests_total", "evaluation requests accepted",
		func() float64 { return float64(s.requests.Load()) })
	g.NewFunc("poseidon_serve_rejected_total", "requests rejected by admission control",
		func() float64 { return float64(s.rejected.Load()) })
	g.NewFunc("poseidon_serve_guard_trips_total", "integrity guard trips observed by the scheduler",
		func() float64 { return float64(s.sched.guardTrips.Load()) })
	g.NewFunc("poseidon_serve_job_retries_total", "integrity-failed jobs re-enqueued by the scheduler",
		func() float64 { return float64(s.sched.jobRetries.Load()) })
	g.NewFunc("poseidon_serve_job_recovered_total", "jobs that succeeded on a retry attempt",
		func() float64 { return float64(s.sched.jobRecovered.Load()) })
	g.NewFunc("poseidon_serve_job_unrecoverable_total", "jobs that exhausted the retry budget",
		func() float64 { return float64(s.sched.jobUnrecoverable.Load()) })
	g.NewFunc("poseidon_serve_timeouts_total", "requests abandoned at their context deadline",
		func() float64 { return float64(s.timeouts.Load()) })
	s.gauges = g
	if s.cfg.Collector != nil {
		s.cfg.Collector.RegisterAux(g.WritePrometheus)
		s.cfg.Collector.RegisterAux(s.health.WritePrometheus)
		if s.tracer != nil && s.tracer.Recorder != nil {
			s.cfg.Collector.RegisterAux(s.writeLatencyMetrics)
		}
	}
}

// Close drains the dispatch queue and stops the dispatcher. In-flight and
// queued requests complete; new ones are refused with ErrOverloaded.
func (s *EvalServer) Close() { s.sched.stop() }

// Shutdown closes the dispatch queue and waits for queued jobs to drain,
// bounded by ctx. On expiry it returns the drain error while the dispatcher
// keeps working in the background; jobs already dispatched still complete
// and deliver their results.
func (s *EvalServer) Shutdown(ctx context.Context) error { return s.sched.stopCtx(ctx) }

// Registry exposes the tenant key registry (tests, in-process embedding).
func (s *EvalServer) Registry() *Registry { return s.registry }

// windowedP99 returns the request p99 over roughly the last P99Window,
// computed by differencing cumulative histogram snapshots. Refresh is
// lazy and non-blocking: concurrent callers read the cached value.
func (s *EvalServer) windowedP99() int64 {
	select {
	case s.p99Mu <- struct{}{}:
	default:
		return s.p99Cached.Load()
	}
	defer func() { <-s.p99Mu }()
	now := time.Now()
	if now.Sub(s.p99At) < s.cfg.P99Window {
		return s.p99Cached.Load()
	}
	cur := s.reqHist.Snapshot()
	win := cur
	win.Sub(s.p99Snap)
	s.p99Snap = cur
	s.p99At = now
	if win.Count == 0 {
		s.p99Cached.Store(0)
		return 0
	}
	p99 := int64(win.Quantile(0.99))
	s.p99Cached.Store(p99)
	return p99
}

// admit applies backpressure before a request touches the evaluator:
// shed mode, the arena-bytes ceiling, and the windowed-p99 ceiling each
// reject with ErrOverloaded (HTTP 503 + Retry-After).
func (s *EvalServer) admit() error {
	if s.sched.currentMode() == modeShed {
		return errOverloadedf("shedding load after integrity guard trips")
	}
	if max := s.cfg.MaxArenaBytes; max > 0 {
		if inUse := int64(s.params.ArenaStats().BytesInUse); inUse > max {
			return errOverloadedf("arena bytes %d over ceiling %d", inUse, max)
		}
	}
	if max := s.cfg.MaxP99; max > 0 {
		if p99 := s.windowedP99(); p99 > int64(max) {
			return errOverloadedf("request p99 %s over ceiling %s", time.Duration(p99), max)
		}
	}
	return nil
}

// Eval runs one decoded request through admission, the registry, and the
// batch scheduler with no deadline. This is the in-process entry point;
// the HTTP handler wraps EvalCtx.
func (s *EvalServer) Eval(req *EvalRequest) (*ckks.Ciphertext, int, error) {
	return s.EvalCtx(context.Background(), req)
}

// EvalCtx is Eval under a caller-supplied context: when ctx expires before
// the job's result is delivered, EvalCtx returns ctx's error immediately
// (the HTTP layer maps DeadlineExceeded to 504) and the scheduler notices
// the abandoned job at dispatch or retry time and skips the evaluation.
// Returns the result ciphertext and the occupancy of the batch that
// carried it.
func (s *EvalServer) EvalCtx(ctx context.Context, req *EvalRequest) (ct *ckks.Ciphertext, batch int, err error) {
	start := time.Now()
	// Adopt the trace the HTTP layer put on the context; in-process
	// callers (soaks, benches, embeddings) get a root minted here so their
	// requests reach the flight recorder too. rt stays nil with tracing
	// off — every span call below degrades to a nil check.
	rt := tracing.From(ctx)
	ownTrace := false
	if rt == nil && s.tracer != nil {
		rt = s.tracer.NewRequest(tracing.NewContext(), "eval")
		ownTrace = true
	}
	if rt != nil {
		rt.Annotate(rt.Root(), "tenant", req.Tenant)
		rt.Annotate(rt.Root(), "op", req.Op.String())
	}
	defer func() {
		s.reqHist.Observe(uint64(time.Since(start).Nanoseconds()))
		switch {
		case err == nil:
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			s.timeouts.Add(1)
		case errors.Is(err, ErrBadRequest), errors.Is(err, ErrOverloaded), errors.Is(err, ErrUnknownTenant):
		default:
			s.opErrors.Add(1)
		}
		if err == nil {
			t0 := time.Now()
			s.health.sample(req.Tenant, ct, s.params)
			if rt != nil && ct != nil {
				rt.AnnotateInt(rt.Root(), "ct_level", int64(ct.Level))
				rt.AnnotateInt(rt.Root(), "noise_budget_bits", int64(ckks.BudgetBits(s.params, ct)))
				// The noise-budget estimate walks the ciphertext; charge it
				// to the tree rather than leaving a coverage gap.
				rt.AddSpan(0, "finalize", time.Since(t0), nil)
			}
		}
		if ownTrace {
			s.tracer.Offer(rt.Finish(statusOf(err), err))
		}
	}()
	ingest := rt.StartSpan(0, "ingest")
	if err := s.validateEval(req); err != nil {
		s.badRequests.Add(1)
		rt.EndSpanErr(ingest, err)
		return nil, 0, err
	}
	if err := s.admit(); err != nil {
		s.rejected.Add(1)
		rt.EndSpanErr(ingest, err)
		return nil, 0, err
	}
	entry, err := s.registry.Acquire(req.Tenant)
	if err != nil {
		rt.EndSpanErr(ingest, err)
		return nil, 0, err
	}
	defer s.registry.Release(entry)

	j := &job{
		entry: entry,
		op:    req.Op,
		steps: req.Steps,
		width: req.Width,
		ctx:   ctx,
		trace: rt,
		done:  make(chan jobResult, 1),
	}
	j.ct = new(ckks.Ciphertext)
	if err := j.ct.UnmarshalBinary(req.Ct); err != nil {
		s.badRequests.Add(1)
		err = fmt.Errorf("%w: ciphertext: %w", ErrBadRequest, err)
		rt.EndSpanErr(ingest, err)
		return nil, 0, err
	}
	if req.Op.twoOperand() {
		j.ct2 = new(ckks.Ciphertext)
		if err := j.ct2.UnmarshalBinary(req.Ct2); err != nil {
			s.badRequests.Add(1)
			err = fmt.Errorf("%w: second ciphertext: %w", ErrBadRequest, err)
			rt.EndSpanErr(ingest, err)
			return nil, 0, err
		}
	}
	if entry.ev.GuardsEnabled() {
		// Seal inputs at ingest so faults corrupting request operands while
		// they sit queued (the serving analogue of resident-HBM corruption)
		// are caught at the operator's input boundary — and so a scheduler
		// retry re-verifies the operands it re-executes from.
		entry.ev.SealIntegrity(j.ct)
		if j.ct2 != nil {
			entry.ev.SealIntegrity(j.ct2)
		}
	}
	if req.Op == OpRotate {
		// Digest the raw bytes so the executor can recognize same-input
		// rotations and share one hoisted decomposition across them.
		j.digest = sha256.Sum256(req.Ct)
		j.hasDigest = true
	}
	rt.EndSpan(ingest)
	j.queueSpan = rt.StartSpan(0, "queue")
	if err := s.sched.enqueue(j); err != nil {
		s.rejected.Add(1)
		rt.EndSpanErr(j.queueSpan, err)
		return nil, 0, err
	}
	select {
	case res := <-j.done:
		// Close the hand-back span the executor opened at delivery: on a
		// loaded machine this goroutine's wake-up lags the result, and
		// that wait is part of the request's wall-clock.
		rt.EndSpan(j.deliverSpan)
		s.requests.Add(1)
		if res.err != nil {
			return nil, res.batch, res.err
		}
		return res.ct, res.batch, nil
	case <-ctx.Done():
		// The job stays queued; the scheduler skips it (or its retry) once
		// it notices the context is dead. Count it as accepted work.
		s.requests.Add(1)
		return nil, 0, fmt.Errorf("server: request deadline: %w", ctx.Err())
	}
}

// validateEval checks the request fields the wire decoder cannot: opcode
// range against the server's parameter set.
func (s *EvalServer) validateEval(req *EvalRequest) error {
	if req.Op <= 0 || req.Op >= opEnd {
		return badf("opcode %d out of range", uint64(req.Op))
	}
	if req.Op == OpInnerSum {
		if req.Width < 1 || req.Width > s.params.Slots {
			return badf("inner-sum width %d outside [1, %d]", req.Width, s.params.Slots)
		}
	}
	if len(req.Ct) == 0 {
		return badf("empty ciphertext")
	}
	if req.Op.twoOperand() && len(req.Ct2) == 0 {
		return badf("%s needs a second ciphertext", req.Op)
	}
	return nil
}

// RegisterKeys decodes and installs a tenant's uploaded key material.
func (s *EvalServer) RegisterKeys(u *KeyUpload) error {
	var rlk *ckks.RelinearizationKey
	if len(u.Relin) > 0 {
		rlk = new(ckks.RelinearizationKey)
		if err := rlk.UnmarshalBinary(u.Relin); err != nil {
			return fmt.Errorf("%w: relinearization key: %w", ErrBadRequest, err)
		}
	}
	var rtk *ckks.RotationKeySet
	if len(u.Rotations) > 0 {
		rtk = new(ckks.RotationKeySet)
		if err := rtk.UnmarshalBinary(u.Rotations); err != nil {
			return fmt.Errorf("%w: rotation key set: %w", ErrBadRequest, err)
		}
	}
	return s.registry.Register(u.Tenant, rlk, rtk)
}

// Stats is a point-in-time summary of the serving layer, exported by
// /v1/health and the bench harness.
type Stats struct {
	Mode           string   `json:"mode"`
	Requests       uint64   `json:"requests"`
	Rejected       uint64   `json:"rejected"`
	BadRequests    uint64   `json:"bad_requests"`
	OpErrors       uint64   `json:"op_errors"`
	Batches        uint64   `json:"batches"`
	Occupancy      []uint64 `json:"occupancy"` // index = batch size; [0] unused
	HoistGroups    uint64   `json:"hoist_groups"`
	HoistShared    uint64   `json:"hoist_shared"` // decompositions saved by sharing
	GuardTrips     uint64   `json:"guard_trips"`
	Timeouts       uint64   `json:"timeouts"`          // requests abandoned at their deadline
	JobRetries     uint64   `json:"job_retries"`       // integrity-failed jobs re-enqueued
	JobRecovered   uint64   `json:"job_recovered"`     // jobs that succeeded on a retry attempt
	JobUnrecovered uint64   `json:"job_unrecoverable"` // jobs that exhausted the attempt budget
	ResidentKeys   int      `json:"resident_keys"`
	Evictions      uint64   `json:"evictions"`
	PinnedSkips    uint64   `json:"pinned_skips"`
	QueueLen       int      `json:"queue_len"`
	ArenaBytes     uint64   `json:"arena_bytes"`
	RequestP99Ns   int64    `json:"request_p99_ns"`
	BytesIn        uint64   `json:"bytes_in"`
	BytesOut       uint64   `json:"bytes_out"`
	MeanBatch      float64  `json:"mean_batch"`
	BatchedFrac    float64  `json:"batched_frac"` // fraction of requests served in batches ≥2
	RequestMeanNs  float64  `json:"request_mean_ns"`
	RequestCount   uint64   `json:"request_count"`
	RequestTotalNs uint64   `json:"request_total_ns"`
}

// Stats snapshots the serving counters.
func (s *EvalServer) Stats() Stats {
	occ := make([]uint64, len(s.sched.occupancy))
	var jobs, batched uint64
	for i := range s.sched.occupancy {
		occ[i] = s.sched.occupancy[i].Load()
		jobs += occ[i] * uint64(i)
		if i >= 2 {
			batched += occ[i] * uint64(i)
		}
	}
	hist := s.reqHist.Snapshot()
	st := Stats{
		Mode:           modeName(s.sched.currentMode()),
		Requests:       s.requests.Load(),
		Rejected:       s.rejected.Load(),
		BadRequests:    s.badRequests.Load(),
		OpErrors:       s.opErrors.Load(),
		Batches:        s.sched.batches.Load(),
		Occupancy:      occ,
		HoistGroups:    s.sched.hoistGroups.Load(),
		HoistShared:    s.sched.hoistShared.Load(),
		GuardTrips:     s.sched.guardTrips.Load(),
		Timeouts:       s.timeouts.Load(),
		JobRetries:     s.sched.jobRetries.Load(),
		JobRecovered:   s.sched.jobRecovered.Load(),
		JobUnrecovered: s.sched.jobUnrecoverable.Load(),
		ResidentKeys:   s.registry.Resident(),
		Evictions:      s.registry.Evictions(),
		PinnedSkips:    s.registry.PinnedSkips(),
		QueueLen:       len(s.sched.queue),
		ArenaBytes:     s.params.ArenaStats().BytesInUse,
		RequestP99Ns:   s.windowedP99(),
		BytesIn:        s.bytesIn.Load(),
		BytesOut:       s.bytesOut.Load(),
		RequestMeanNs:  hist.MeanNs(),
		RequestCount:   hist.Count,
		RequestTotalNs: hist.SumNs,
	}
	if b := st.Batches; b > 0 {
		st.MeanBatch = float64(jobs) / float64(b)
	}
	if jobs > 0 {
		st.BatchedFrac = float64(batched) / float64(jobs)
	}
	return st
}

// maxBodyBytes bounds any request body: the largest legitimate payload is
// a key upload (a rotation key set is tens of switching keys).
const maxBodyBytes = 1 << 30

// Handler returns the HTTP surface: POST /v1/eval, POST /v1/keys,
// GET /v1/health.
func (s *EvalServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/eval", s.handleEval)
	mux.HandleFunc("/v1/keys", s.handleKeys)
	mux.HandleFunc("/v1/health", s.handleHealth)
	return mux
}

// httpStatus maps the typed error surface onto status codes: structural
// rejections are 400, unknown tenants 404, evaluation failures on valid
// envelopes 422, overload 503 (with Retry-After), expired request
// deadlines 504, anything else 500.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ckks.ErrCorrupt),
		errors.Is(err, ckks.ErrInvalidInput),
		errors.Is(err, ckks.ErrKeyMissing),
		errors.Is(err, ckks.ErrScaleMismatch),
		errors.Is(err, ckks.ErrLevelExhausted):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

func (s *EvalServer) fail(w http.ResponseWriter, err error) {
	code := httpStatus(err)
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, err.Error(), code)
}

func (s *EvalServer) handleEval(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	// Resolve the trace context before any work so the ID covers (and is
	// echoed for) every outcome, including malformed requests.
	var rt *tracing.RequestTrace
	if s.tracer != nil {
		tc, err := traceFromRequest(r.Header)
		if err != nil {
			s.badRequests.Add(1)
			s.fail(w, err)
			return
		}
		rt = s.tracer.NewRequest(tc, "http-eval")
		w.Header().Set(tracing.Header, tc.Trace.String())
	}
	err := s.serveEval(w, r, rt)
	if err != nil {
		s.fail(w, err)
	}
	s.tracer.Offer(rt.Finish(statusOf(err), err))
}

// serveEval is handleEval's body behind a single error return so the
// request trace is finished (and tail-sampled into the flight recorder)
// on exactly one path.
func (s *EvalServer) serveEval(w http.ResponseWriter, r *http.Request, rt *tracing.RequestTrace) error {
	dec := rt.StartSpan(0, "decode")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		err = badf("reading body: %v", err)
		rt.EndSpanErr(dec, err)
		return err
	}
	s.bytesIn.Add(uint64(len(body)))
	req, err := DecodeEvalRequest(body)
	if err != nil {
		s.badRequests.Add(1)
		rt.EndSpanErr(dec, err)
		return err
	}
	rt.EndSpan(dec)
	ctx := r.Context()
	deadline := s.cfg.DefaultDeadline
	if h := r.Header.Get("X-Poseidon-Deadline"); h != "" {
		d, err := time.ParseDuration(h)
		if err != nil || d <= 0 {
			s.badRequests.Add(1)
			return badf("X-Poseidon-Deadline %q: want a positive Go duration", h)
		}
		deadline = d
	}
	if deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	ct, batch, err := s.EvalCtx(tracing.With(ctx, rt), req)
	if err != nil {
		return err
	}
	enc := rt.StartSpan(0, "encode")
	out, err := ct.MarshalBinary()
	if err != nil {
		rt.EndSpanErr(enc, err)
		return err
	}
	s.bytesOut.Add(uint64(len(out)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Poseidon-Batch", fmt.Sprint(batch))
	w.Write(out)
	rt.EndSpan(enc)
	return nil
}

func (s *EvalServer) handleKeys(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.fail(w, badf("reading body: %v", err))
		return
	}
	s.bytesIn.Add(uint64(len(body)))
	u, err := DecodeKeyUpload(body)
	if err != nil {
		s.badRequests.Add(1)
		s.fail(w, err)
		return
	}
	if err := s.RegisterKeys(u); err != nil {
		s.fail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *EvalServer) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st)
}
