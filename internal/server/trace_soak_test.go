package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"poseidon/internal/tracing"
)

// The tracing soak: 32 tenants hammer a traced EvalServer concurrently and
// every retained span tree must account for ≥95% of its request's
// wall-clock — the property that makes a trace trustworthy for latency
// attribution. A tree below that bound means some stage ran untraced
// (a gap between spans), which is exactly the blind spot tracing exists
// to eliminate. Sampling keeps every request so the bound is checked on
// the whole population, not a lucky subset.
func TestTraceSoakCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		tenants       = 32
		reqsPerTenant = 24 // 32 × 24 = 768 traced requests
		minCoverage   = 0.95
	)
	params := newServeParams(t, 2)
	tracer := &tracing.Tracer{Recorder: tracing.NewFlightRecorder(2048, 1, 0.95)}
	srv, err := NewEvalServer(Config{
		Params:       params,
		MaxBatch:     8,
		FlushTimeout: 300 * time.Microsecond,
		QueueDepth:   256,
		RegistryCap:  tenants + 1,
		GuardSeed:    0xB0A7,
		Tracer:       tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fixtures := make([]*testTenant, tenants)
	for i := range fixtures {
		fixtures[i] = newTestTenant(t, params, fmt.Sprintf("trace-%02d", i), int64(4000+i*13), []int{1, 2, 4}, true)
		fixtures[i].upload(t, srv)
	}

	var validated atomic.Uint64
	var wg sync.WaitGroup
	for ti := range fixtures {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			tt := fixtures[ti]
			rng := rand.New(rand.NewSource(int64(7000 + ti)))
			ops := []Op{OpAdd, OpSub, OpMulRelin, OpRotate, OpInnerSum}
			for r := 0; r < reqsPerTenant; r++ {
				op := ops[rng.Intn(len(ops))]
				a := randomVec(rng, params.Slots)
				var b []complex128
				req := &EvalRequest{Tenant: tt.name, Op: op, Ct: tt.encryptBytes(t, a)}
				switch {
				case op.twoOperand():
					b = randomVec(rng, params.Slots)
					req.Ct2 = tt.encryptBytes(t, b)
				case op == OpRotate:
					req.Steps = []int{1, 2, 4}[rng.Intn(3)]
				case op == OpInnerSum:
					req.Width = []int{2, 4, 8}[rng.Intn(3)]
				}
				for {
					ct, _, err := srv.Eval(req)
					if errors.Is(err, ErrOverloaded) {
						time.Sleep(time.Millisecond)
						continue
					}
					if err != nil {
						t.Errorf("%s: req %d (%s): %v", tt.name, r, op, err)
						return
					}
					tol := 1e-4
					if op == OpMulRelin || op == OpInnerSum {
						tol = 1e-3
					}
					if e := maxErr(tt.decrypt(ct), expected(op, a, b, req.Steps, req.Width)); e > tol {
						t.Errorf("%s: req %d %s: decrypt mismatch %g > %g", tt.name, r, op, e, tol)
						return
					}
					validated.Add(1)
					break
				}
			}
		}(ti)
	}
	wg.Wait()

	traces := tracer.Recorder.Snapshot()
	total := int(validated.Load())
	if len(traces) != total {
		t.Fatalf("recorder retained %d traces, want all %d (sample_every=1)", len(traces), total)
	}
	// The bound is relative for requests long enough that 5% exceeds the
	// tree's fixed bookkeeping cost. A microseconds-scale request (empty
	// queue, tiny batch) can leave span-boundary bookkeeping unattributed,
	// and on a saturated box the Go scheduler occasionally preempts the
	// requester goroutine inside one of those few-instruction windows,
	// charging a requeue wait (tens of µs here) to no span — a constant
	// noise floor, not a missing stage. Short requests therefore get an
	// absolute cap on unaccounted time instead: ~10× the worst gap
	// observed across thousands of traces, and far below any real stage.
	const maxGapNs = 1_000_000
	var worst float64 = 1
	var below int
	for _, f := range traces {
		cov := f.Coverage()
		if cov < worst {
			worst = cov
		}
		gap := float64(f.DurNs) * (1 - cov)
		if cov < minCoverage && gap > maxGapNs {
			below++
			if below <= 3 {
				t.Errorf("trace %s (%s, %v): span tree covers %.1f%% of wall-clock (%.0fµs unaccounted), want ≥%.0f%%: %+v",
					f.TraceID, f.Name, time.Duration(f.DurNs), 100*cov, gap/1e3, 100*minCoverage, f.Spans)
			}
		}
		if f.Status != 200 {
			t.Errorf("trace %s finished with status %d in an all-success soak", f.TraceID, f.Status)
		}
	}
	if below > 0 {
		t.Fatalf("%d/%d span trees below %.0f%% coverage with >%dµs unaccounted (worst %.1f%%)",
			below, total, 100*minCoverage, maxGapNs/1000, 100*worst)
	}
	t.Logf("%d traces retained, worst coverage %.1f%%", total, 100*worst)
}

// Tail-sampling contract over HTTP: with an aggressive sample rate that
// discards almost every healthy request, every errored and every
// deadline-exceeded request must still be retained, findable by the exact
// trace ID the client sent, and the response must echo that ID back.
func TestTraceTailSamplingKeepsFailures(t *testing.T) {
	params := newServeParams(t, 1)
	tracer := &tracing.Tracer{Recorder: tracing.NewFlightRecorder(256, 1000, 0.95)}
	_, hs, cli := newHTTPFixture(t, Config{Params: params, Tracer: tracer})
	tt := newTestTenant(t, params, "tail", 31, []int{1}, false)
	kgenUpload(t, cli, tt)
	rng := rand.New(rand.NewSource(17))
	ctBytes := tt.encryptBytes(t, randomVec(rng, params.Slots))

	post := func(traceID string, deadline string, body []byte) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/eval", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(tracing.Header, traceID)
		if deadline != "" {
			req.Header.Set("X-Poseidon-Deadline", deadline)
		}
		resp, err := hs.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Failure population: unknown tenant (404), rotation without the key
	// (422), and a deadline no evaluation can meet (504).
	fail := map[string]int{
		"00000000000000000000000000000404": http.StatusNotFound,
		"00000000000000000000000000000422": http.StatusUnprocessableEntity,
		"00000000000000000000000000000504": http.StatusGatewayTimeout,
	}
	for id, want := range fail {
		var resp *http.Response
		switch want {
		case http.StatusNotFound:
			resp = post(id, "", EncodeEvalRequest(&EvalRequest{Tenant: "ghost", Op: OpAdd, Ct: ctBytes, Ct2: ctBytes}))
		case http.StatusUnprocessableEntity:
			resp = post(id, "", EncodeEvalRequest(&EvalRequest{Tenant: "tail", Op: OpRotate, Steps: 3, Ct: ctBytes}))
		case http.StatusGatewayTimeout:
			resp = post(id, "1ns", EncodeEvalRequest(&EvalRequest{Tenant: "tail", Op: OpAdd, Ct: ctBytes, Ct2: ctBytes}))
		}
		if resp.StatusCode != want {
			t.Fatalf("trace %s: status %d, want %d", id, resp.StatusCode, want)
		}
		if got := resp.Header.Get(tracing.Header); got != id {
			t.Fatalf("trace %s: response echoed %q", id, got)
		}
	}
	// Healthy chaff around the failures: at 1/1000 sampling, effectively
	// none of these are kept — the point is that the failures above must
	// survive anyway.
	okBody := EncodeEvalRequest(&EvalRequest{Tenant: "tail", Op: OpRotate, Steps: 1, Ct: ctBytes})
	for i := 0; i < 50; i++ {
		if resp := post("", "", okBody); resp.StatusCode != http.StatusOK {
			t.Fatalf("healthy request %d: status %d", i, resp.StatusCode)
		}
	}

	for id, want := range fail {
		f := tracer.Recorder.Find(id)
		if f == nil {
			t.Fatalf("errored trace %s (status %d) not retained by tail-sampling", id, want)
		}
		if f.Status != want {
			t.Errorf("trace %s: recorded status %d, want %d", id, f.Status, want)
		}
		if f.Keep != "error" {
			t.Errorf("trace %s: keep reason %q, want \"error\"", id, f.Keep)
		}
		if f.Err == "" {
			t.Errorf("trace %s: retained without its error string", id)
		}
	}
	st := tracer.Recorder.Stats()
	if st.KeptError != uint64(len(fail)) {
		t.Errorf("kept_error = %d, want %d", st.KeptError, len(fail))
	}
}

// The client propagates a context-borne trace into the header, keeps it
// constant across its retry attempts, surfaces it in EvalMeta, and stamps
// it into returned errors; OnRetry observes each backoff decision.
func TestClientRetryHookCarriesTrace(t *testing.T) {
	var gotTraces []string
	var mu sync.Mutex
	fh := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		gotTraces = append(gotTraces, r.Header.Get(tracing.Header))
		mu.Unlock()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "overloaded", http.StatusServiceUnavailable)
	})
	hs := httptest.NewServer(fh)
	defer hs.Close()

	var events []RetryEvent
	cli := &Client{
		Base:    hs.URL,
		HTTP:    hs.Client(),
		Retry:   RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond},
		OnRetry: func(ev RetryEvent) { events = append(events, ev) },
		sleep:   func(ctx context.Context, d time.Duration) error { return nil },
	}
	_, meta, err := cli.Eval(&EvalRequest{Tenant: "x", Op: OpNegate, Ct: []byte{1}})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if meta.Trace == "" || !strings.Contains(err.Error(), meta.Trace) {
		t.Fatalf("error %q not stamped with trace %q", err, meta.Trace)
	}
	if len(events) != 2 {
		t.Fatalf("OnRetry fired %d times, want 2 (3 attempts)", len(events))
	}
	for i, ev := range events {
		if ev.Trace != meta.Trace || ev.Attempt != i+1 || !ev.RetryAfter {
			t.Errorf("retry event %d malformed: %+v", i, ev)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(gotTraces) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(gotTraces))
	}
	for i, id := range gotTraces {
		if id != meta.Trace {
			t.Errorf("attempt %d carried trace %q, want %q", i+1, id, meta.Trace)
		}
	}
}
