package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"poseidon/internal/ckks"
)

// Client is a thin typed client over the poseidond HTTP API, used by the
// soak tests and the benchserve load harness. Safe for concurrent use
// (http.Client is).
type Client struct {
	Base string // e.g. "http://127.0.0.1:8080"
	HTTP *http.Client
}

// EvalMeta reports transfer- and scheduling-side facts about one call.
type EvalMeta struct {
	Batch    int // occupancy of the batch the request rode in
	BytesIn  int // request body size
	BytesOut int // response body size
}

func (c *Client) hc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// UploadKeys registers (or rotates) a tenant's key material. Either key
// may be nil.
func (c *Client) UploadKeys(tenant string, rlk *ckks.RelinearizationKey, rtk *ckks.RotationKeySet) error {
	u := &KeyUpload{Tenant: tenant}
	if rlk != nil {
		b, err := rlk.MarshalBinary()
		if err != nil {
			return err
		}
		u.Relin = b
	}
	if rtk != nil {
		b, err := rtk.MarshalBinary()
		if err != nil {
			return err
		}
		u.Rotations = b
	}
	resp, err := c.hc().Post(c.Base+"/v1/keys", "application/octet-stream", bytes.NewReader(EncodeKeyUpload(u)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return statusErr(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Eval sends one evaluation request and decodes the result ciphertext.
func (c *Client) Eval(req *EvalRequest) (*ckks.Ciphertext, EvalMeta, error) {
	body := EncodeEvalRequest(req)
	meta := EvalMeta{BytesIn: len(body)}
	resp, err := c.hc().Post(c.Base+"/v1/eval", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return nil, meta, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, meta, statusErr(resp)
	}
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, meta, err
	}
	meta.BytesOut = len(out)
	if b := resp.Header.Get("X-Poseidon-Batch"); b != "" {
		meta.Batch, _ = strconv.Atoi(b)
	}
	ct := new(ckks.Ciphertext)
	if err := ct.UnmarshalBinary(out); err != nil {
		return nil, meta, err
	}
	return ct, meta, nil
}

// Stats fetches /v1/health raw (callers json.Unmarshal into server.Stats).
func (c *Client) Stats() ([]byte, error) {
	resp, err := c.hc().Get(c.Base + "/v1/health")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, statusErr(resp)
	}
	return io.ReadAll(resp.Body)
}

// statusErr maps an HTTP failure back onto the server's sentinel errors
// so callers keep one errors.Is dispatch for local and remote use.
func statusErr(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	text := bytes.TrimSpace(msg)
	switch resp.StatusCode {
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrUnknownTenant, text)
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s", ErrOverloaded, text)
	case http.StatusBadRequest:
		return fmt.Errorf("%w: %s", ErrBadRequest, text)
	default:
		return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, text)
	}
}
