package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"time"

	"poseidon/internal/ckks"
	"poseidon/internal/tracing"
)

// RetryPolicy bounds the client's response to 503 overload rejections:
// up to MaxAttempts total sends, waiting between them. A rejection
// carrying a Retry-After header is honored exactly (capped at
// MaxBackoff); otherwise the wait is exponential with jitter — uniform
// in [b/2, b] where b doubles from BaseBackoff per retry, capped at
// MaxBackoff. Only overload is retried: the request was never admitted,
// so a resend cannot double-evaluate.
type RetryPolicy struct {
	MaxAttempts int           // total attempts (default 1: no retry)
	BaseBackoff time.Duration // first-retry backoff scale (default 50ms)
	MaxBackoff  time.Duration // backoff and Retry-After cap (default 2s)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 1
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	return p
}

// RetryEvent reports one client-side retry decision: which attempt just
// failed with what, and how long the client will wait before the next
// send. Trace is the request's trace ID (constant across its attempts),
// so client-side retries join against server-side 503 counters and the
// flight recorder.
type RetryEvent struct {
	Trace      string        // 32-hex trace ID the attempts share
	Attempt    int           // the attempt that just failed (1-based)
	Err        error         // the overload rejection that triggered the retry
	Backoff    time.Duration // wait before the next attempt
	RetryAfter bool          // true when the server's Retry-After hint set the wait
}

// Client is a thin typed client over the poseidond HTTP API, used by the
// soak tests and the benchserve load harness. Safe for concurrent use
// (http.Client is).
type Client struct {
	Base  string // e.g. "http://127.0.0.1:8080"
	HTTP  *http.Client
	Retry RetryPolicy // zero value: single-shot, no retry

	// OnRetry, when set, observes every retry decision before its backoff
	// wait begins — retries were previously silent and impossible to
	// correlate with server-side overload. Must be safe for concurrent
	// use when the client is shared.
	OnRetry func(RetryEvent)

	// sleep is the backoff wait, injectable so the retry tests don't
	// spend wall time. nil means wait on a real timer or ctx, whichever
	// fires first.
	sleep func(ctx context.Context, d time.Duration) error
}

func (c *Client) wait(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// EvalMeta reports transfer- and scheduling-side facts about one call.
type EvalMeta struct {
	Batch    int    // occupancy of the batch the request rode in
	BytesIn  int    // request body size
	BytesOut int    // response body size
	Trace    string // trace ID the call carried (echoed by a tracing server)
}

func (c *Client) hc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// UploadKeys registers (or rotates) a tenant's key material. Either key
// may be nil.
func (c *Client) UploadKeys(tenant string, rlk *ckks.RelinearizationKey, rtk *ckks.RotationKeySet) error {
	u := &KeyUpload{Tenant: tenant}
	if rlk != nil {
		b, err := rlk.MarshalBinary()
		if err != nil {
			return err
		}
		u.Relin = b
	}
	if rtk != nil {
		b, err := rtk.MarshalBinary()
		if err != nil {
			return err
		}
		u.Rotations = b
	}
	resp, err := c.hc().Post(c.Base+"/v1/keys", "application/octet-stream", bytes.NewReader(EncodeKeyUpload(u)))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return statusErr(resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// Eval sends one evaluation request and decodes the result ciphertext,
// retrying overload rejections per the client's RetryPolicy.
func (c *Client) Eval(req *EvalRequest) (*ckks.Ciphertext, EvalMeta, error) {
	return c.EvalCtx(context.Background(), req)
}

// EvalCtx is Eval under a caller-supplied context. The context bounds the
// whole retry loop (sends and backoff waits), and its deadline rides to
// the server as X-Poseidon-Deadline so both ends give up together.
//
// Every call carries an X-Poseidon-Trace header — the caller's, when the
// context brought one via tracing.With, else a fresh ID minted here. The
// ID is constant across the call's retries (that is what makes the retry
// burst recognizable as one request server-side), reported in EvalMeta,
// and stamped into every error the call returns.
func (c *Client) EvalCtx(ctx context.Context, req *EvalRequest) (*ckks.Ciphertext, EvalMeta, error) {
	pol := c.Retry.withDefaults()
	body := EncodeEvalRequest(req)
	tc := tracing.From(ctx).Context()
	if !tc.Valid() {
		tc = tracing.NewContext()
	}
	meta := EvalMeta{BytesIn: len(body), Trace: tc.Trace.String()}
	var lastErr error
	for attempt := 1; ; attempt++ {
		ct, retryAfter, err := c.evalOnce(ctx, body, tc, &meta)
		if err == nil {
			return ct, meta, nil
		}
		lastErr = err
		if !errors.Is(err, ErrOverloaded) || attempt >= pol.MaxAttempts {
			return nil, meta, traceErr(err, meta.Trace)
		}
		d := backoff(pol, attempt, retryAfter)
		if c.OnRetry != nil {
			c.OnRetry(RetryEvent{
				Trace:      meta.Trace,
				Attempt:    attempt,
				Err:        err,
				Backoff:    d,
				RetryAfter: retryAfter > 0,
			})
		}
		if werr := c.wait(ctx, d); werr != nil {
			return nil, meta, traceErr(
				fmt.Errorf("%w (giving up after %d attempts: %v)", werr, attempt, lastErr), meta.Trace)
		}
	}
}

// traceErr stamps the request's trace ID onto a client error so a failed
// call can be looked up in the server's flight recorder verbatim.
func traceErr(err error, trace string) error {
	if err == nil || trace == "" {
		return err
	}
	return fmt.Errorf("%w [trace %s]", err, trace)
}

// evalOnce is one send. retryAfter is the server's Retry-After hint
// (0 = none) so the retry loop can honor it.
func (c *Client) evalOnce(ctx context.Context, body []byte, tc tracing.Context, meta *EvalMeta) (*ckks.Ciphertext, time.Duration, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/v1/eval", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	hreq.Header.Set("Content-Type", "application/octet-stream")
	hreq.Header.Set(tracing.Header, tc.Header())
	if dl, ok := ctx.Deadline(); ok {
		if remain := time.Until(dl); remain > 0 {
			hreq.Header.Set("X-Poseidon-Deadline", remain.String())
		}
	}
	resp, err := c.hc().Do(hreq)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var retryAfter time.Duration
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, perr := strconv.Atoi(s); perr == nil && secs > 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, retryAfter, statusErr(resp)
	}
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	meta.BytesOut = len(out)
	if b := resp.Header.Get("X-Poseidon-Batch"); b != "" {
		meta.Batch, _ = strconv.Atoi(b)
	}
	ct := new(ckks.Ciphertext)
	if err := ct.UnmarshalBinary(out); err != nil {
		return nil, 0, err
	}
	return ct, 0, nil
}

// backoff picks the wait before retry number `attempt`: the server's
// Retry-After hint when present, else exponential-with-jitter.
func backoff(pol RetryPolicy, attempt int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		return min(retryAfter, pol.MaxBackoff)
	}
	b := pol.BaseBackoff << uint(attempt-1)
	if b > pol.MaxBackoff || b <= 0 {
		b = pol.MaxBackoff
	}
	// Uniform in [b/2, b]: desynchronizes clients that were rejected by
	// the same overload spike.
	return b/2 + time.Duration(rand.Int63n(int64(b/2)+1))
}

// Stats fetches /v1/health raw (callers json.Unmarshal into server.Stats).
func (c *Client) Stats() ([]byte, error) {
	resp, err := c.hc().Get(c.Base + "/v1/health")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, statusErr(resp)
	}
	return io.ReadAll(resp.Body)
}

// statusErr maps an HTTP failure back onto the server's sentinel errors
// so callers keep one errors.Is dispatch for local and remote use.
func statusErr(resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	text := bytes.TrimSpace(msg)
	switch resp.StatusCode {
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrUnknownTenant, text)
	case http.StatusServiceUnavailable:
		return fmt.Errorf("%w: %s", ErrOverloaded, text)
	case http.StatusBadRequest:
		return fmt.Errorf("%w: %s", ErrBadRequest, text)
	case http.StatusGatewayTimeout:
		return fmt.Errorf("%w: %s", context.DeadlineExceeded, text)
	default:
		return fmt.Errorf("server: HTTP %d: %s", resp.StatusCode, text)
	}
}
