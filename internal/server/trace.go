package server

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"poseidon/internal/ckks"
	"poseidon/internal/tracing"
)

// statusOf maps an EvalCtx outcome to the HTTP status recorded on its
// trace (httpStatus has no success arm — it only ever sees failures).
func statusOf(err error) int {
	if err == nil {
		return 200
	}
	return httpStatus(err)
}

// healthMaxTenants bounds the per-tenant health map: beyond it, samples
// from new tenants are dropped (counted) rather than growing without
// bound under tenant churn.
const healthMaxTenants = 1024

// healthTracker is the ciphertext-health telemetry: per-tenant gauges for
// the result ciphertext's level, scale drift and estimated remaining
// noise budget, sampled at response encode. This is the FHE-specific
// signal no generic tracer carries — a tenant whose circuit is about to
// exhaust its modulus chain (level → 0, budget → 0) or whose scale has
// drifted from Δ (lost precision) is visible here before results decrypt
// to garbage.
type healthTracker struct {
	mu       sync.Mutex
	tenants  map[string]*tenantHealth
	overflow uint64 // samples dropped at the tenant cap
}

type tenantHealth struct {
	level      int
	scaleDrift float64 // log2(ct.Scale / Δ): 0 = on-scale
	budgetBits float64 // estimated remaining noise budget
	samples    uint64
}

func newHealthTracker() *healthTracker {
	return &healthTracker{tenants: map[string]*tenantHealth{}}
}

// sample records one response ciphertext's health. Cost is one map
// lookup and a few float ops — noise next to an FHE op, so it is always
// on once a server has a health tracker.
func (h *healthTracker) sample(tenant string, ct *ckks.Ciphertext, params *ckks.Parameters) {
	if h == nil || ct == nil {
		return
	}
	drift := 0.0
	if ct.Scale > 0 && params.Scale > 0 {
		drift = math.Log2(ct.Scale / params.Scale)
	}
	budget := ckks.BudgetBits(params, ct)
	h.mu.Lock()
	defer h.mu.Unlock()
	th := h.tenants[tenant]
	if th == nil {
		if len(h.tenants) >= healthMaxTenants {
			h.overflow++
			return
		}
		th = &tenantHealth{}
		h.tenants[tenant] = th
	}
	th.level = ct.Level
	th.scaleDrift = drift
	th.budgetBits = budget
	th.samples++
}

// WritePrometheus emits the health families; registered as an aux writer
// on the collector's /metrics page.
func (h *healthTracker) WritePrometheus(w io.Writer) {
	h.mu.Lock()
	names := make([]string, 0, len(h.tenants))
	for name := range h.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	type row struct {
		name string
		th   tenantHealth
	}
	rows := make([]row, 0, len(names))
	for _, name := range names {
		rows = append(rows, row{name, *h.tenants[name]})
	}
	overflow := h.overflow
	h.mu.Unlock()

	if len(rows) == 0 && overflow == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP poseidon_ct_level Level of the tenant's most recent result ciphertext.\n")
	fmt.Fprintf(w, "# TYPE poseidon_ct_level gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "poseidon_ct_level{tenant=%q} %d\n", r.name, r.th.level)
	}
	fmt.Fprintf(w, "# HELP poseidon_ct_scale_drift_bits log2 of the result scale over the default scale (0 = on-scale).\n")
	fmt.Fprintf(w, "# TYPE poseidon_ct_scale_drift_bits gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "poseidon_ct_scale_drift_bits{tenant=%q} %g\n", r.name, r.th.scaleDrift)
	}
	fmt.Fprintf(w, "# HELP poseidon_ct_noise_budget_bits Estimated remaining noise budget of the result ciphertext.\n")
	fmt.Fprintf(w, "# TYPE poseidon_ct_noise_budget_bits gauge\n")
	for _, r := range rows {
		fmt.Fprintf(w, "poseidon_ct_noise_budget_bits{tenant=%q} %g\n", r.name, r.th.budgetBits)
	}
	fmt.Fprintf(w, "# HELP poseidon_ct_health_samples_total Responses sampled for ciphertext health.\n")
	fmt.Fprintf(w, "# TYPE poseidon_ct_health_samples_total counter\n")
	for _, r := range rows {
		fmt.Fprintf(w, "poseidon_ct_health_samples_total{tenant=%q} %d\n", r.name, r.th.samples)
	}
	if overflow > 0 {
		fmt.Fprintf(w, "# HELP poseidon_ct_health_overflow_total Health samples dropped at the tenant cap.\n")
		fmt.Fprintf(w, "# TYPE poseidon_ct_health_overflow_total counter\n")
		fmt.Fprintf(w, "poseidon_ct_health_overflow_total %d\n", overflow)
	}
}

// writeLatencyMetrics emits the end-to-end request latency summary with
// flight-recorder exemplar trace IDs, plus the recorder's own sampling
// counters. Exemplars ride as comment lines in OpenMetrics exemplar
// shape ("# EXEMPLAR family {trace_id=...} value ts") so the page stays
// valid Prometheus text 0.0.4 for parsers that predate exemplars — see
// DESIGN.md §15.
func (s *EvalServer) writeLatencyMetrics(w io.Writer) {
	hist := s.reqHist.Snapshot()
	if hist.Count > 0 {
		fmt.Fprintf(w, "# HELP poseidon_serve_request_duration_seconds End-to-end request latency (exemplar trace IDs attached below).\n")
		fmt.Fprintf(w, "# TYPE poseidon_serve_request_duration_seconds summary\n")
		for _, q := range []float64{0.5, 0.95, 0.99} {
			fmt.Fprintf(w, "poseidon_serve_request_duration_seconds{quantile=\"%g\"} %g\n", q, hist.Quantile(q)/1e9)
		}
		fmt.Fprintf(w, "poseidon_serve_request_duration_seconds_sum %g\n", float64(hist.SumNs)/1e9)
		fmt.Fprintf(w, "poseidon_serve_request_duration_seconds_count %d\n", hist.Count)
		for _, ex := range s.tracer.Recorder.Exemplars() {
			fmt.Fprintf(w, "# EXEMPLAR poseidon_serve_request_duration_seconds_count {trace_id=%q,kind=%q} %g %.3f\n",
				ex.TraceID, ex.Kind, float64(ex.DurNs)/1e9, float64(ex.TimeNs)/1e9)
		}
	}
	st := s.tracer.Recorder.Stats()
	fmt.Fprintf(w, "# HELP poseidon_trace_offered_total Completed request traces offered to the flight recorder.\n")
	fmt.Fprintf(w, "# TYPE poseidon_trace_offered_total counter\n")
	fmt.Fprintf(w, "poseidon_trace_offered_total %d\n", st.Total)
	fmt.Fprintf(w, "# HELP poseidon_trace_kept_total Traces retained by tail-sampling, by reason.\n")
	fmt.Fprintf(w, "# TYPE poseidon_trace_kept_total counter\n")
	fmt.Fprintf(w, "poseidon_trace_kept_total{reason=\"error\"} %d\n", st.KeptError)
	fmt.Fprintf(w, "poseidon_trace_kept_total{reason=\"slow\"} %d\n", st.KeptSlow)
	fmt.Fprintf(w, "poseidon_trace_kept_total{reason=\"sampled\"} %d\n", st.KeptSampled)
	fmt.Fprintf(w, "# HELP poseidon_trace_dropped_total Traces not retained by tail-sampling.\n")
	fmt.Fprintf(w, "# TYPE poseidon_trace_dropped_total counter\n")
	fmt.Fprintf(w, "poseidon_trace_dropped_total %d\n", st.Dropped)
	fmt.Fprintf(w, "# HELP poseidon_trace_slow_threshold_seconds Current slowest-percentile retention threshold.\n")
	fmt.Fprintf(w, "# TYPE poseidon_trace_slow_threshold_seconds gauge\n")
	fmt.Fprintf(w, "poseidon_trace_slow_threshold_seconds %g\n", time.Duration(st.SlowThresholdNs).Seconds())
}

// traceFromRequest resolves the request's trace context: parse the
// X-Poseidon-Trace header when present, mint a context when absent. The
// trace ID is echoed on the response either way so a caller can always
// join its request to the flight recorder.
func traceFromRequest(h http.Header) (tracing.Context, error) {
	if v := h.Get(tracing.Header); v != "" {
		tc, err := tracing.ParseHeader(v)
		if err != nil {
			return tracing.Context{}, badf("%s: %v", tracing.Header, err)
		}
		return tc, nil
	}
	return tracing.NewContext(), nil
}
