package server

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"poseidon/internal/ckks"
)

// newServeParams builds the small parameter set the serving tests share:
// LogN 8 keeps keygen and per-op cost low so the soak test can push
// thousands of requests under -race.
func newServeParams(t testing.TB, workers int) *ckks.Parameters {
	t.Helper()
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     8,
		LogQ:     []int{50, 40, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
		Workers:  workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return params
}

// testTenant is one tenant's client-side crypto state: its own secret key,
// the serialized public evaluation keys it uploads, and the encrypt /
// decrypt endpoints the server never sees.
type testTenant struct {
	name     string
	params   *ckks.Parameters
	enc      *ckks.Encoder
	encr     *ckks.Encryptor
	decr     *ckks.Decryptor
	rlkBytes []byte
	rtkBytes []byte
}

// newTestTenant generates a tenant keyed for the given rotation steps.
func newTestTenant(t testing.TB, params *ckks.Parameters, name string, seed int64, steps []int, conjugate bool) *testTenant {
	t.Helper()
	kgen := ckks.NewKeyGenerator(params, seed)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	rlk := kgen.GenRelinearizationKey(sk)
	rtks := kgen.GenRotationKeys(sk, steps, conjugate)
	rlkBytes, err := rlk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	rtkBytes, err := rtks.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return &testTenant{
		name:     name,
		params:   params,
		enc:      ckks.NewEncoder(params),
		encr:     ckks.NewEncryptor(params, pk, seed+1),
		decr:     ckks.NewDecryptor(params, sk),
		rlkBytes: rlkBytes,
		rtkBytes: rtkBytes,
	}
}

// upload registers the tenant's keys with the server in-process.
func (tt *testTenant) upload(t testing.TB, s *EvalServer) {
	t.Helper()
	if err := s.RegisterKeys(&KeyUpload{Tenant: tt.name, Relin: tt.rlkBytes, Rotations: tt.rtkBytes}); err != nil {
		t.Fatalf("tenant %s: RegisterKeys: %v", tt.name, err)
	}
}

// encryptBytes encrypts z at the top level and serializes the ciphertext.
func (tt *testTenant) encryptBytes(t testing.TB, z []complex128) []byte {
	t.Helper()
	return tt.encryptBytesScale(t, z, tt.params.Scale)
}

// encryptBytesScale encrypts at an explicit scale — scale² mimics a
// post-multiplication ciphertext, the legitimate input to OpRescale.
func (tt *testTenant) encryptBytesScale(t testing.TB, z []complex128, scale float64) []byte {
	t.Helper()
	pt := tt.enc.Encode(z, tt.params.MaxLevel(), scale)
	b, err := tt.encr.Encrypt(pt).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// decrypt decodes a result ciphertext back to slots.
func (tt *testTenant) decrypt(ct *ckks.Ciphertext) []complex128 {
	return tt.enc.Decode(tt.decr.Decrypt(ct))
}

func randomVec(rng *rand.Rand, n int) []complex128 {
	z := make([]complex128, n)
	for i := range z {
		z[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
	}
	return z
}

// maxErr returns the worst slot-wise distance, or +Inf on length mismatch.
func maxErr(got, want []complex128) float64 {
	if len(got) != len(want) {
		return math.Inf(1)
	}
	worst := 0.0
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > worst {
			worst = e
		}
	}
	return worst
}

func assertVecClose(t testing.TB, got, want []complex128, tol float64, msg string) {
	t.Helper()
	if worst := maxErr(got, want); worst > tol {
		t.Fatalf("%s: max error %g > %g", msg, worst, tol)
	}
}

// expected computes the plaintext-side result for an op, mirroring the
// evaluator's slot semantics.
func expected(op Op, a, b []complex128, steps, width int) []complex128 {
	n := len(a)
	out := make([]complex128, n)
	switch op {
	case OpAdd:
		for i := range out {
			out[i] = a[i] + b[i]
		}
	case OpSub:
		for i := range out {
			out[i] = a[i] - b[i]
		}
	case OpMulRelin:
		for i := range out {
			out[i] = a[i] * b[i]
		}
	case OpRescale:
		copy(out, a)
	case OpRotate:
		for i := range out {
			out[i] = a[((i+steps)%n+n)%n]
		}
	case OpConjugate:
		for i := range out {
			out[i] = cmplx.Conj(a[i])
		}
	case OpNegate:
		for i := range out {
			out[i] = -a[i]
		}
	case OpInnerSum:
		// The evaluator's log-step ladder sums width consecutive slots
		// (width a power of two) with rotating wraparound.
		copy(out, a)
		for st := 1; st < width; st <<= 1 {
			next := make([]complex128, n)
			for i := range next {
				next[i] = out[i] + out[(i+st)%n]
			}
			out = next
		}
	}
	return out
}
