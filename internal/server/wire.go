// Package server is the FHE-as-a-service layer of the Poseidon
// reproduction: an HTTP evaluation API over the hardened ckks
// deserializers, a refcounted per-tenant key registry, and a request
// scheduler that batches compatible operations onto the single evaluation
// datapath — the software analogue of the paper's operator
// time-multiplexing (§IV): one execution resource, many interleaved
// request streams, with the expensive shared phase of hoisted rotations
// amortized across a batch.
//
// Endpoints:
//
//	POST /v1/keys    register a tenant's evaluation keys (binary envelope)
//	POST /v1/eval    evaluate one operation (binary envelope in, ciphertext out)
//	GET  /v1/health  scheduler mode, queue depth, stats (JSON)
//	GET  /metrics    Prometheus exposition (when a telemetry collector is attached)
//
// Degradation ladder: batched dispatch → serial dispatch (after an
// integrity-guard trip) → load shedding with Retry-After (repeated trips
// or admission-control pressure), recovering one rung per cooldown.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Sentinel errors of the serving layer. Wire and admission failures wrap
// these; scheme-level failures keep their ckks sentinels (ErrCorrupt,
// ErrKeyMissing, ErrIntegrity, …) so one errors.Is dispatch covers both.
var (
	// ErrBadRequest reports a request envelope that fails structural
	// validation: bad magic, truncation, an unknown opcode, an implausible
	// field. The decoder returns it for every malformed input and never
	// panics (see FuzzServeRequest).
	ErrBadRequest = errors.New("malformed request envelope")

	// ErrUnknownTenant reports an evaluation request for a tenant with no
	// registered keys — possibly evicted from the registry; the client
	// re-uploads and retries.
	ErrUnknownTenant = errors.New("unknown tenant")

	// ErrOverloaded reports admission-control rejection: a full queue,
	// arena bytes or request p99 over their ceilings, or shedding mode.
	// Responses carry Retry-After.
	ErrOverloaded = errors.New("server overloaded")
)

// The request envelope is little-endian binary, mirroring the ciphertext
// wire format (internal/ckks/serialize.go): a magic/version/kind prefix,
// fixed scalar fields, then length-prefixed blobs. Binary rather than
// JSON+base64 keeps the wire cost of a 100 KB ciphertext at a memcpy, so
// serving throughput measures the scheduler, not an encoder.
//
// Eval envelope layout (uint64 little-endian unless noted):
//
//	magic | version | kind=1 | op | steps(int64) | width |
//	tenantLen | tenant… | ct1Len | ct1… | ct2Len | ct2…
//
// Key-upload envelope layout:
//
//	magic | version | kind=2 | tenantLen | tenant… |
//	relinLen | relin… | rotLen | rot…
const (
	envMagic   = 0x3156525345534f50 // "POSESRV1"
	envVersion = 1

	kindEval = 1
	kindKeys = 2

	// maxTenantLen bounds tenant identifiers; maxBlobLen bounds any single
	// length-prefixed payload so hostile envelopes cannot drive huge
	// allocations (the HTTP body cap bounds the total independently).
	maxTenantLen = 64
	maxBlobLen   = 1 << 31

	// maxSteps / maxWidth bound the rotation distance and inner-sum width
	// fields; parameter-dependent validation (width ≤ slot count) happens
	// at admission, where the parameter set is known.
	maxSteps = 1 << 20
	maxWidth = 1 << 20
)

// Op enumerates the operations the evaluation endpoint serves.
type Op uint64

const (
	OpAdd Op = iota + 1
	OpSub
	OpMulRelin
	OpRescale
	OpRotate
	OpConjugate
	OpInnerSum
	OpNegate
	opEnd // sentinel: first invalid opcode
)

var opNames = map[Op]string{
	OpAdd: "add", OpSub: "sub", OpMulRelin: "mulrelin", OpRescale: "rescale",
	OpRotate: "rotate", OpConjugate: "conjugate", OpInnerSum: "innersum", OpNegate: "negate",
}

func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint64(op))
}

// ParseOp maps an operation name back to its opcode.
func ParseOp(s string) (Op, error) {
	for op, name := range opNames {
		if name == s {
			return op, nil
		}
	}
	return 0, badf("unknown operation %q", s)
}

// twoOperand reports whether the op consumes a second ciphertext.
func (op Op) twoOperand() bool { return op == OpAdd || op == OpSub || op == OpMulRelin }

// EvalRequest is one decoded evaluation request. Ciphertexts stay as raw
// serialized bytes here: the handler deserializes them against the
// server's parameter set, and the scheduler hashes Ct to recognize
// same-input rotations it can run through one hoisted decomposition.
type EvalRequest struct {
	Tenant string
	Op     Op
	Steps  int // rotation distance (OpRotate)
	Width  int // inner-sum width (OpInnerSum)
	Ct     []byte
	Ct2    []byte // second operand for add/sub/mulrelin
}

// KeyUpload is one decoded key-registration request. Either key may be
// absent (zero-length): a tenant serving only additions needs neither.
type KeyUpload struct {
	Tenant    string
	Relin     []byte // serialized RelinearizationKey, optional
	Rotations []byte // serialized RotationKeySet, optional
}

// badf builds a structural-rejection error wrapping ErrBadRequest.
func badf(format string, args ...any) error {
	return fmt.Errorf("server: %w: "+format, append([]any{ErrBadRequest}, args...)...)
}

// cursor is a bounds-checked little-endian reader over an envelope.
type cursor struct{ data []byte }

func (c *cursor) u64(what string) (uint64, error) {
	if len(c.data) < 8 {
		return 0, badf("%s truncated", what)
	}
	v := binary.LittleEndian.Uint64(c.data)
	c.data = c.data[8:]
	return v, nil
}

// blob reads a length-prefixed byte field. The returned slice aliases the
// envelope buffer.
func (c *cursor) blob(what string, max uint64) ([]byte, error) {
	n, err := c.u64(what + " length")
	if err != nil {
		return nil, err
	}
	if n > max {
		return nil, badf("%s length %d exceeds cap %d", what, n, max)
	}
	if uint64(len(c.data)) < n {
		return nil, badf("%s payload truncated", what)
	}
	b := c.data[:n]
	c.data = c.data[n:]
	return b, nil
}

// validTenant enforces the tenant-identifier grammar: 1–64 characters of
// [A-Za-z0-9._-]. Identifiers appear in logs and metric labels, so the
// charset is restrictive by design.
func validTenant(s string) error {
	if len(s) == 0 || len(s) > maxTenantLen {
		return badf("tenant name length %d outside [1, %d]", len(s), maxTenantLen)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return badf("tenant name contains invalid byte %#x", c)
		}
	}
	return nil
}

// parsePrefix checks magic/version and returns the envelope kind.
func parsePrefix(c *cursor) (uint64, error) {
	magic, err := c.u64("magic")
	if err != nil {
		return 0, err
	}
	if magic != envMagic {
		return 0, badf("bad magic %#x", magic)
	}
	version, err := c.u64("version")
	if err != nil {
		return 0, err
	}
	if version != envVersion {
		return 0, badf("unsupported version %d", version)
	}
	return c.u64("kind")
}

// DecodeEvalRequest parses an evaluation envelope. Every structural
// failure returns an error wrapping ErrBadRequest; the decoder never
// panics on arbitrary input. Blob fields alias data.
func DecodeEvalRequest(data []byte) (*EvalRequest, error) {
	c := &cursor{data: data}
	kind, err := parsePrefix(c)
	if err != nil {
		return nil, err
	}
	if kind != kindEval {
		return nil, badf("expected eval envelope, found kind %d", kind)
	}
	opw, err := c.u64("op")
	if err != nil {
		return nil, err
	}
	op := Op(opw)
	if op < OpAdd || op >= opEnd {
		return nil, badf("unknown opcode %d", opw)
	}
	stepsw, err := c.u64("steps")
	if err != nil {
		return nil, err
	}
	steps := int(int64(stepsw))
	if steps < -maxSteps || steps > maxSteps {
		return nil, badf("rotation steps %d outside ±%d", steps, maxSteps)
	}
	widthw, err := c.u64("width")
	if err != nil {
		return nil, err
	}
	if widthw > maxWidth {
		return nil, badf("inner-sum width %d exceeds %d", widthw, maxWidth)
	}
	tenant, err := c.blob("tenant", maxTenantLen)
	if err != nil {
		return nil, err
	}
	if err := validTenant(string(tenant)); err != nil {
		return nil, err
	}
	ct, err := c.blob("ciphertext", maxBlobLen)
	if err != nil {
		return nil, err
	}
	if len(ct) == 0 {
		return nil, badf("missing ciphertext operand")
	}
	ct2, err := c.blob("second ciphertext", maxBlobLen)
	if err != nil {
		return nil, err
	}
	if op.twoOperand() && len(ct2) == 0 {
		return nil, badf("%s requires a second ciphertext operand", op)
	}
	if !op.twoOperand() && len(ct2) != 0 {
		return nil, badf("%s takes a single ciphertext operand", op)
	}
	if op == OpInnerSum && widthw == 0 {
		return nil, badf("innersum requires a width")
	}
	if len(c.data) != 0 {
		return nil, badf("%d trailing bytes", len(c.data))
	}
	return &EvalRequest{
		Tenant: string(tenant),
		Op:     op,
		Steps:  steps,
		Width:  int(widthw),
		Ct:     ct,
		Ct2:    ct2,
	}, nil
}

// EncodeEvalRequest renders the envelope for an evaluation request.
func EncodeEvalRequest(r *EvalRequest) []byte {
	buf := make([]byte, 0, 6*8+len(r.Tenant)+3*8+len(r.Ct)+len(r.Ct2))
	buf = binary.LittleEndian.AppendUint64(buf, envMagic)
	buf = binary.LittleEndian.AppendUint64(buf, envVersion)
	buf = binary.LittleEndian.AppendUint64(buf, kindEval)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Op))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(r.Steps)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(r.Width))
	buf = appendBlob(buf, []byte(r.Tenant))
	buf = appendBlob(buf, r.Ct)
	buf = appendBlob(buf, r.Ct2)
	return buf
}

// DecodeKeyUpload parses a key-registration envelope with the same error
// contract as DecodeEvalRequest.
func DecodeKeyUpload(data []byte) (*KeyUpload, error) {
	c := &cursor{data: data}
	kind, err := parsePrefix(c)
	if err != nil {
		return nil, err
	}
	if kind != kindKeys {
		return nil, badf("expected key envelope, found kind %d", kind)
	}
	tenant, err := c.blob("tenant", maxTenantLen)
	if err != nil {
		return nil, err
	}
	if err := validTenant(string(tenant)); err != nil {
		return nil, err
	}
	relin, err := c.blob("relinearization key", maxBlobLen)
	if err != nil {
		return nil, err
	}
	rot, err := c.blob("rotation key set", maxBlobLen)
	if err != nil {
		return nil, err
	}
	if len(relin) == 0 && len(rot) == 0 {
		return nil, badf("key upload carries no keys")
	}
	if len(c.data) != 0 {
		return nil, badf("%d trailing bytes", len(c.data))
	}
	return &KeyUpload{Tenant: string(tenant), Relin: relin, Rotations: rot}, nil
}

// EncodeKeyUpload renders the envelope for a key registration.
func EncodeKeyUpload(u *KeyUpload) []byte {
	buf := make([]byte, 0, 3*8+3*8+len(u.Tenant)+len(u.Relin)+len(u.Rotations))
	buf = binary.LittleEndian.AppendUint64(buf, envMagic)
	buf = binary.LittleEndian.AppendUint64(buf, envVersion)
	buf = binary.LittleEndian.AppendUint64(buf, kindKeys)
	buf = appendBlob(buf, []byte(u.Tenant))
	buf = appendBlob(buf, u.Relin)
	buf = appendBlob(buf, u.Rotations)
	return buf
}

func appendBlob(buf, b []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(b)))
	return append(buf, b...)
}
