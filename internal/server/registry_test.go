package server

import (
	"errors"
	"fmt"
	"testing"
)

func newTestRegistry(t *testing.T, capacity int) *Registry {
	t.Helper()
	return newRegistry(newServeParams(t, 1), capacity, nil, 0, 0)
}

func TestRegistryEvictsLRU(t *testing.T) {
	r := newTestRegistry(t, 2)
	for _, name := range []string{"a", "b", "c"} {
		if err := r.Register(name, nil, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Resident(); got != 2 {
		t.Fatalf("resident = %d, want 2", got)
	}
	if r.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", r.Evictions())
	}
	// "a" was least recently used and must be the one gone.
	if _, err := r.Acquire("a"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("Acquire(a) = %v, want ErrUnknownTenant", err)
	}
	for _, name := range []string{"b", "c"} {
		e, err := r.Acquire(name)
		if err != nil {
			t.Fatalf("Acquire(%s): %v", name, err)
		}
		r.Release(e)
	}
}

func TestRegistryAcquireRefreshesLRU(t *testing.T) {
	r := newTestRegistry(t, 2)
	r.Register("a", nil, nil)
	r.Register("b", nil, nil)
	// Touch "a" so "b" becomes the eviction victim.
	e, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	r.Release(e)
	r.Register("c", nil, nil)
	if _, err := r.Acquire("b"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("Acquire(b) = %v, want ErrUnknownTenant", err)
	}
	if e, err := r.Acquire("a"); err != nil {
		t.Fatalf("Acquire(a): %v", err)
	} else {
		r.Release(e)
	}
}

// A pinned entry must never be evicted: the scan skips it (counting the
// skip) and evicts the next unpinned entry, overflowing the cap when every
// entry is in use.
func TestRegistryNeverEvictsPinned(t *testing.T) {
	r := newTestRegistry(t, 2)
	r.Register("a", nil, nil)
	r.Register("b", nil, nil)
	ea, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	eb, err := r.Acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	// Both entries pinned: registering two more must overflow the cap
	// rather than pull keys out from under the holders.
	r.Register("c", nil, nil)
	if _, err := r.Acquire("a"); err != nil {
		t.Fatalf("pinned entry evicted: %v", err)
	}
	if r.PinnedSkips() == 0 {
		t.Fatal("eviction scan recorded no pinned skips")
	}
	if got := r.Resident(); got != 3 {
		t.Fatalf("resident = %d, want 3 (cap overflow while pinned)", got)
	}
	// After release, the next registration can evict again.
	r.Release(ea)
	r.Release(ea) // second Acquire of "a" above
	r.Release(eb)
	r.Register("d", nil, nil)
	if got := r.Resident(); got > 3 {
		t.Fatalf("resident = %d after unpinning, want eviction back toward cap", got)
	}
}

// Replacing a tenant's keys (rotation) detaches the old entry: holders of
// the old evaluator keep it until they release, new acquires see the new
// one, and releasing the detached entry doesn't corrupt the LRU.
func TestRegistryReplaceKeepsInFlightEntry(t *testing.T) {
	r := newTestRegistry(t, 4)
	r.Register("a", nil, nil)
	old, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	r.Register("a", nil, nil) // key rotation
	fresh, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	if old == fresh {
		t.Fatal("replacement returned the same entry")
	}
	if old.Evaluator() == fresh.Evaluator() {
		t.Fatal("replacement kept the same evaluator")
	}
	r.Release(old)
	r.Release(fresh)
	if got := r.Resident(); got != 1 {
		t.Fatalf("resident = %d, want 1", got)
	}
}

func TestRegistryReleaseWithoutAcquirePanics(t *testing.T) {
	r := newTestRegistry(t, 2)
	r.Register("a", nil, nil)
	e, err := r.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	r.Release(e)
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced Release should panic")
		}
	}()
	r.Release(e)
}

func TestRegistryRejectsBadTenantName(t *testing.T) {
	r := newTestRegistry(t, 2)
	for _, name := range []string{"", "a b", "x/y", string(make([]byte, 65))} {
		if err := r.Register(name, nil, nil); !errors.Is(err, ErrBadRequest) {
			t.Errorf("Register(%q) = %v, want ErrBadRequest", name, err)
		}
	}
}

func TestRegistryChurn(t *testing.T) {
	r := newTestRegistry(t, 4)
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("t%02d", i%8)
		if err := r.Register(name, nil, nil); err != nil {
			t.Fatal(err)
		}
		e, err := r.Acquire(name)
		if err != nil {
			t.Fatal(err)
		}
		r.Release(e)
	}
	if got := r.Resident(); got != 4 {
		t.Fatalf("resident = %d, want cap 4", got)
	}
}
