package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func TestEvalRequestRoundTrip(t *testing.T) {
	cases := []*EvalRequest{
		{Tenant: "alice", Op: OpAdd, Ct: []byte{1, 2, 3}, Ct2: []byte{4, 5}},
		{Tenant: "bob-7", Op: OpRotate, Steps: -3, Ct: []byte{9}},
		{Tenant: "t.x_Y", Op: OpInnerSum, Width: 8, Ct: bytes.Repeat([]byte{7}, 100)},
		{Tenant: "c", Op: OpRescale, Ct: []byte{0}},
	}
	for _, want := range cases {
		got, err := DecodeEvalRequest(EncodeEvalRequest(want))
		if err != nil {
			t.Fatalf("%s: %v", want.Op, err)
		}
		if got.Tenant != want.Tenant || got.Op != want.Op || got.Steps != want.Steps ||
			got.Width != want.Width || !bytes.Equal(got.Ct, want.Ct) || !bytes.Equal(got.Ct2, want.Ct2) {
			t.Fatalf("%s: round trip mismatch: %+v != %+v", want.Op, got, want)
		}
	}
}

func TestKeyUploadRoundTrip(t *testing.T) {
	want := &KeyUpload{Tenant: "alice", Relin: []byte{1, 2}, Rotations: []byte{3}}
	got, err := DecodeKeyUpload(EncodeKeyUpload(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tenant != want.Tenant || !bytes.Equal(got.Relin, want.Relin) || !bytes.Equal(got.Rotations, want.Rotations) {
		t.Fatalf("round trip mismatch: %+v != %+v", got, want)
	}
}

// Every structural defect must be rejected with ErrBadRequest — and never
// a panic. The table walks the failure modes one field at a time.
func TestDecodeEvalRequestRejects(t *testing.T) {
	valid := EncodeEvalRequest(&EvalRequest{Tenant: "alice", Op: OpAdd, Ct: []byte{1}, Ct2: []byte{2}})
	mut := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return f(b)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", mut(func(b []byte) []byte { b[0] ^= 0xff; return b })},
		{"bad version", mut(func(b []byte) []byte { binary.LittleEndian.PutUint64(b[8:], 99); return b })},
		{"wrong kind", EncodeKeyUpload(&KeyUpload{Tenant: "a", Relin: []byte{1}})},
		{"bad opcode", mut(func(b []byte) []byte { binary.LittleEndian.PutUint64(b[24:], 99); return b })},
		{"huge steps", mut(func(b []byte) []byte { binary.LittleEndian.PutUint64(b[32:], 1<<40); return b })},
		{"huge width", mut(func(b []byte) []byte { binary.LittleEndian.PutUint64(b[40:], 1<<40); return b })},
		{"truncated header", valid[:20]},
		{"truncated blob", valid[:len(valid)-1]},
		{"trailing bytes", append(append([]byte(nil), valid...), 0)},
		{"tenant length lies", mut(func(b []byte) []byte { binary.LittleEndian.PutUint64(b[48:], 1<<30); return b })},
		{"bad tenant charset", EncodeEvalRequest(&EvalRequest{Tenant: "a/b", Op: OpAdd, Ct: []byte{1}, Ct2: []byte{2}})},
		{"empty tenant", EncodeEvalRequest(&EvalRequest{Tenant: "", Op: OpAdd, Ct: []byte{1}, Ct2: []byte{2}})},
		{"missing ct", EncodeEvalRequest(&EvalRequest{Tenant: "a", Op: OpAdd, Ct2: []byte{2}})},
		{"missing ct2 for add", EncodeEvalRequest(&EvalRequest{Tenant: "a", Op: OpAdd, Ct: []byte{1}})},
		{"stray ct2 for rotate", EncodeEvalRequest(&EvalRequest{Tenant: "a", Op: OpRotate, Ct: []byte{1}, Ct2: []byte{2}})},
		{"zero-width innersum", EncodeEvalRequest(&EvalRequest{Tenant: "a", Op: OpInnerSum, Ct: []byte{1}})},
	}
	for _, tc := range cases {
		if _, err := DecodeEvalRequest(tc.data); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: got %v, want ErrBadRequest", tc.name, err)
		}
	}
}

func TestDecodeKeyUploadRejects(t *testing.T) {
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"wrong kind", EncodeEvalRequest(&EvalRequest{Tenant: "a", Op: OpRescale, Ct: []byte{1}})},
		{"no keys", EncodeKeyUpload(&KeyUpload{Tenant: "a"})},
		{"bad tenant", EncodeKeyUpload(&KeyUpload{Tenant: "a b", Relin: []byte{1}})},
	}
	for _, tc := range cases {
		if _, err := DecodeKeyUpload(tc.data); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: got %v, want ErrBadRequest", tc.name, err)
		}
	}
}

func TestParseOp(t *testing.T) {
	for op := OpAdd; op < opEnd; op++ {
		back, err := ParseOp(op.String())
		if err != nil || back != op {
			t.Fatalf("ParseOp(%q) = %v, %v", op.String(), back, err)
		}
	}
	if _, err := ParseOp("transmogrify"); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown op name: %v", err)
	}
}

// FuzzServeRequest drives arbitrary bytes — seeded with valid and mutated
// envelopes — through both request decoders: errors always, panics never,
// and anything that decodes must re-encode to an equivalent request.
func FuzzServeRequest(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(EncodeEvalRequest(&EvalRequest{Tenant: "alice", Op: OpAdd, Ct: []byte{1, 2}, Ct2: []byte{3}}))
	f.Add(EncodeEvalRequest(&EvalRequest{Tenant: "bob", Op: OpRotate, Steps: -5, Ct: bytes.Repeat([]byte{9}, 64)}))
	f.Add(EncodeEvalRequest(&EvalRequest{Tenant: "t", Op: OpInnerSum, Width: 4, Ct: []byte{1}}))
	f.Add(EncodeKeyUpload(&KeyUpload{Tenant: "carol", Relin: []byte{7, 7}, Rotations: []byte{8}}))
	// Mutated valid envelopes: flipped kind, truncations, appended junk.
	valid := EncodeEvalRequest(&EvalRequest{Tenant: "dave", Op: OpMulRelin, Ct: []byte{1}, Ct2: []byte{2}})
	trunc := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(trunc)
	f.Add(append(append([]byte(nil), valid...), 0xde, 0xad))
	flip := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(flip[16:], kindKeys)
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeEvalRequest(data); err == nil {
			again, err := DecodeEvalRequest(EncodeEvalRequest(req))
			if err != nil {
				t.Fatalf("re-encode of decoded request rejected: %v", err)
			}
			if again.Tenant != req.Tenant || again.Op != req.Op || again.Steps != req.Steps || again.Width != req.Width {
				t.Fatal("re-encode round trip mismatch")
			}
		} else if !errors.Is(err, ErrBadRequest) {
			t.Fatalf("eval decode error %v does not wrap ErrBadRequest", err)
		}
		if u, err := DecodeKeyUpload(data); err == nil {
			if _, err := DecodeKeyUpload(EncodeKeyUpload(u)); err != nil {
				t.Fatalf("re-encode of decoded upload rejected: %v", err)
			}
		} else if !errors.Is(err, ErrBadRequest) {
			t.Fatalf("key decode error %v does not wrap ErrBadRequest", err)
		}
	})
}
