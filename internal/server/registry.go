package server

import (
	"container/list"
	"fmt"
	"sync"

	"poseidon/internal/ckks"
)

// Registry caches per-tenant evaluation state: the deserialized
// relinearization and rotation keys wrapped in a ready-to-run evaluator.
// Keys are the bulk of a deployment's memory footprint (the paper streams
// them from HBM on every keyswitch), so residency is bounded by an LRU cap
// — but an entry is only evictable while no in-flight request holds it:
// Acquire pins an entry with a reference count, Release unpins it, and the
// eviction scan skips pinned entries, overflowing the cap rather than
// pulling keys out from under a running batch. The soak test drives 32
// tenants through a 16-entry registry and decrypt-validates every response
// to prove that discipline.
type Registry struct {
	mu         sync.Mutex
	params     *ckks.Parameters
	capacity   int
	observer   ckks.OpObserver // installed on every tenant evaluator (telemetry)
	guardSeed  int64           // non-zero arms integrity guards on every tenant evaluator
	opAttempts int             // >1 installs an op-level recovery policy on every tenant evaluator

	entries map[string]*tenantEntry
	lru     *list.List // front = most recently used

	evictions   uint64
	pinnedSkips uint64 // eviction scans that skipped a pinned entry
}

// tenantEntry is one tenant's cached evaluation state. refs counts
// in-flight requests holding the entry; elem is its LRU position, nil once
// the entry has been evicted or replaced (a detached entry stays usable by
// the requests that pinned it — only residency is gone).
type tenantEntry struct {
	name string
	ev   *ckks.Evaluator
	refs int
	elem *list.Element
}

// Evaluator returns the tenant's keyed evaluator.
func (e *tenantEntry) Evaluator() *ckks.Evaluator { return e.ev }

func newRegistry(params *ckks.Parameters, capacity int, observer ckks.OpObserver, guardSeed int64, opAttempts int) *Registry {
	return &Registry{
		params:     params,
		capacity:   capacity,
		observer:   observer,
		guardSeed:  guardSeed,
		opAttempts: opAttempts,
		entries:    map[string]*tenantEntry{},
		lru:        list.New(),
	}
}

// Register installs (or replaces — key rotation) a tenant's keys. Either
// key may be nil; operations needing the missing key fail with
// ErrKeyMissing at evaluation time. Registration may evict the
// least-recently-used unpinned tenants to respect the cap.
func (r *Registry) Register(tenant string, rlk *ckks.RelinearizationKey, rtk *ckks.RotationKeySet) error {
	if err := validTenant(tenant); err != nil {
		return err
	}
	ev := ckks.NewEvaluator(r.params, rlk, rtk)
	if r.guardSeed != 0 {
		ev.EnableGuards(r.guardSeed)
	}
	if r.observer != nil {
		ev.SetObserver(r.observer)
	}
	if r.opAttempts > 1 {
		ev.SetRecoveryPolicy(&ckks.RecoveryPolicy{MaxAttempts: r.opAttempts})
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.entries[tenant]; ok {
		// Replace: detach the old entry from the LRU; requests already
		// pinning it keep their (old-key) evaluator until they release.
		if old.elem != nil {
			r.lru.Remove(old.elem)
			old.elem = nil
		}
	}
	e := &tenantEntry{name: tenant, ev: ev}
	e.elem = r.lru.PushFront(e)
	r.entries[tenant] = e
	r.evictLocked(e)
	return nil
}

// evictLocked trims unpinned least-recently-used entries until the cap is
// met or only pinned entries remain. keep (the entry being registered) is
// exempt: a registration must never evict itself, or a tenant whose peers
// are all pinned could upload keys and still find them gone.
func (r *Registry) evictLocked(keep *tenantEntry) {
	for r.lru.Len() > r.capacity {
		evicted := false
		for el := r.lru.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*tenantEntry)
			if e == keep {
				continue
			}
			if e.refs > 0 {
				r.pinnedSkips++
				continue // never evict a key set a request is using
			}
			r.lru.Remove(el)
			e.elem = nil
			delete(r.entries, e.name)
			r.evictions++
			evicted = true
			break
		}
		if !evicted {
			return // every entry pinned: overflow the cap rather than break a batch
		}
	}
}

// Acquire pins a tenant's entry for the duration of one request and marks
// it most recently used. The caller must Release exactly once.
func (r *Registry) Acquire(tenant string) (*tenantEntry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[tenant]
	if !ok {
		return nil, fmt.Errorf("server: %w: %q has no registered keys", ErrUnknownTenant, tenant)
	}
	e.refs++
	if e.elem != nil {
		r.lru.MoveToFront(e.elem)
	}
	return e, nil
}

// Release unpins an entry acquired with Acquire. If registrations
// overflowed the cap while this entry (or its peers) were pinned, the
// release resumes trimming so the registry converges back to capacity.
func (r *Registry) Release(e *tenantEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.refs <= 0 {
		panic("server: Release without matching Acquire")
	}
	e.refs--
	if r.lru.Len() > r.capacity {
		r.evictLocked(nil)
	}
}

// Resident returns the number of cached tenants.
func (r *Registry) Resident() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Evictions returns how many entries the LRU has dropped.
func (r *Registry) Evictions() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictions
}

// PinnedSkips returns how many times the eviction scan passed over an
// entry because a request held it — the observable for the
// never-evict-in-use invariant.
func (r *Registry) PinnedSkips() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pinnedSkips
}
