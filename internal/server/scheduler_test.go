package server

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"poseidon/internal/ckks"
)

// bareScheduler builds a scheduler without starting its dispatcher so
// batch formation can be driven deterministically from the test.
func bareScheduler(cfg Config) *scheduler {
	cfg = cfg.withDefaults()
	return &scheduler{
		cfg:       cfg,
		queue:     make(chan *job, cfg.QueueDepth),
		done:      make(chan struct{}),
		occupancy: make([]atomic.Uint64, cfg.MaxBatch+1),
	}
}

// levelJob makes a dispatchable job whose only meaningful field is the
// ciphertext level batch formation keys on.
func levelJob(level int) *job {
	return &job{ct: &ckks.Ciphertext{Level: level}, done: make(chan jobResult, 1)}
}

// Batch formation edge cases, table-driven: the level-mismatch split, the
// max-batch cap, and the timeout flush of a partial batch.
func TestCollectEdgeCases(t *testing.T) {
	cases := []struct {
		name        string
		maxBatch    int
		flush       time.Duration
		levels      []int // enqueued in order; collect starts from the first
		wantBatch   int
		wantPending bool
		wantQueued  int // jobs left in the queue after one collect
		wantWait    time.Duration
	}{
		{
			name:     "level mismatch splits the batch",
			maxBatch: 8, flush: time.Second,
			levels:    []int{3, 3, 2, 2},
			wantBatch: 2, wantPending: true, wantQueued: 1,
		},
		{
			name:     "mismatch on second job yields a singleton",
			maxBatch: 8, flush: time.Second,
			levels:    []int{3, 1},
			wantBatch: 1, wantPending: true, wantQueued: 0,
		},
		{
			name:     "max batch size caps collection",
			maxBatch: 4, flush: time.Second,
			levels:    []int{2, 2, 2, 2, 2, 2},
			wantBatch: 4, wantQueued: 2,
		},
		{
			name:     "timeout flushes a partial batch",
			maxBatch: 8, flush: 40 * time.Millisecond,
			levels:    []int{2, 2},
			wantBatch: 2, wantWait: 30 * time.Millisecond,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := bareScheduler(Config{MaxBatch: tc.maxBatch, FlushTimeout: tc.flush, QueueDepth: 64})
			for _, lvl := range tc.levels {
				if err := s.enqueue(levelJob(lvl)); err != nil {
					t.Fatal(err)
				}
			}
			first := <-s.queue
			var pending *job
			start := time.Now()
			batch := s.collect(first, &pending)
			elapsed := time.Since(start)
			if len(batch) != tc.wantBatch {
				t.Fatalf("batch size = %d, want %d", len(batch), tc.wantBatch)
			}
			for _, j := range batch {
				if j.level() != batch[0].level() {
					t.Fatal("mixed levels within one batch")
				}
			}
			if (pending != nil) != tc.wantPending {
				t.Fatalf("pending = %v, want pending %v", pending, tc.wantPending)
			}
			if pending != nil && pending.level() == batch[0].level() {
				t.Fatal("pending job has the batch's level — split for no reason")
			}
			if len(s.queue) != tc.wantQueued {
				t.Fatalf("queued = %d, want %d", len(s.queue), tc.wantQueued)
			}
			if elapsed < tc.wantWait {
				t.Fatalf("collect returned after %v, want at least %v (timeout flush)", elapsed, tc.wantWait)
			}
		})
	}
}

func TestCollectSerialModeSingleton(t *testing.T) {
	s := bareScheduler(Config{MaxBatch: 8, FlushTimeout: time.Second, QueueDepth: 8, DegradeCooldown: time.Minute})
	s.tripGuard() // batched → serial
	for i := 0; i < 3; i++ {
		s.enqueue(levelJob(2))
	}
	var pending *job
	start := time.Now()
	batch := s.collect(<-s.queue, &pending)
	if len(batch) != 1 {
		t.Fatalf("serial-mode batch size = %d, want 1", len(batch))
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("serial-mode collect waited on the flush timer")
	}
}

func TestEnqueueBackpressure(t *testing.T) {
	s := bareScheduler(Config{QueueDepth: 2})
	for i := 0; i < 2; i++ {
		if err := s.enqueue(levelJob(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.enqueue(levelJob(1)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("full queue: %v, want ErrOverloaded", err)
	}
	s.qmu.Lock()
	s.closed = true
	s.qmu.Unlock()
	if err := s.enqueue(levelJob(1)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("closed queue: %v, want ErrOverloaded", err)
	}
}

// The degradation ladder: guard trips escalate batched → serial → shed and
// saturate; each elapsed cooldown decays one rung.
func TestModeLadderEscalationAndDecay(t *testing.T) {
	s := bareScheduler(Config{DegradeCooldown: 40 * time.Millisecond})
	if m := s.currentMode(); m != modeBatched {
		t.Fatalf("initial mode %s", modeName(m))
	}
	s.tripGuard()
	if m := s.currentMode(); m != modeSerial {
		t.Fatalf("after one trip: %s, want serial", modeName(m))
	}
	if s.maxBatchNow() != 1 {
		t.Fatal("serial mode must dispatch singletons")
	}
	s.tripGuard()
	if m := s.currentMode(); m != modeShed {
		t.Fatalf("after two trips: %s, want shed", modeName(m))
	}
	s.tripGuard() // saturates
	if m := s.currentMode(); m != modeShed {
		t.Fatalf("ladder overflowed: %s", modeName(m))
	}
	time.Sleep(55 * time.Millisecond)
	if m := s.currentMode(); m != modeSerial {
		t.Fatalf("after one cooldown: %s, want serial", modeName(m))
	}
	time.Sleep(55 * time.Millisecond)
	if m := s.currentMode(); m != modeBatched {
		t.Fatalf("after two cooldowns: %s, want batched", modeName(m))
	}
	if s.guardTrips.Load() != 3 {
		t.Fatalf("guardTrips = %d, want 3", s.guardTrips.Load())
	}
}

// A guard trip mid-batch degrades the dispatch mode but drops nothing:
// every job of the tripping batch and every job queued behind it still
// gets a response, with post-trip batches dispatched serially.
func TestGuardTripMidBatchDegradesWithoutDropping(t *testing.T) {
	s := bareScheduler(Config{MaxBatch: 8, FlushTimeout: time.Second, QueueDepth: 16, DegradeCooldown: time.Minute})
	var poisoned *job
	s.testExec = func(j *job) error {
		if j == poisoned {
			return fmt.Errorf("%w: injected residue mismatch", ckks.ErrIntegrity)
		}
		return fmt.Errorf("benign: not evaluated in this test")
	}

	jobs := make([]*job, 6)
	for i := range jobs {
		jobs[i] = levelJob(2)
		if err := s.enqueue(jobs[i]); err != nil {
			t.Fatal(err)
		}
	}
	poisoned = jobs[2]

	var pending *job
	batch := s.collect(<-s.queue, &pending)
	if len(batch) != 6 {
		t.Fatalf("batch size = %d, want 6", len(batch))
	}
	s.execBatch(batch)

	for i, j := range jobs {
		select {
		case res := <-j.done:
			if j == poisoned {
				if !errors.Is(res.err, ckks.ErrIntegrity) {
					t.Fatalf("poisoned job error = %v", res.err)
				}
			} else if res.err == nil {
				t.Fatalf("job %d: testExec error swallowed", i)
			}
		default:
			t.Fatalf("job %d dropped: no response delivered", i)
		}
	}
	if m := s.currentMode(); m != modeSerial {
		t.Fatalf("mode after mid-batch trip = %s, want serial", modeName(m))
	}

	// Requests queued after the trip drain serially, none dropped.
	late := []*job{levelJob(2), levelJob(2)}
	for _, j := range late {
		if err := s.enqueue(j); err != nil {
			t.Fatal(err)
		}
	}
	for len(s.queue) > 0 {
		b := s.collect(<-s.queue, &pending)
		if len(b) != 1 {
			t.Fatalf("post-trip batch size = %d, want 1 (serial)", len(b))
		}
		s.execBatch(b)
	}
	for i, j := range late {
		select {
		case <-j.done:
		default:
			t.Fatalf("post-trip job %d dropped", i)
		}
	}
	if got := s.occupancy[1].Load(); got < 2 {
		t.Fatalf("occupancy[1] = %d, want ≥ 2 serial batches", got)
	}
}

// Same-input rotations inside one batch must share a single hoisted
// decomposition, and the shared path must agree with plain rotation.
func TestHoistSharingAcrossBatch(t *testing.T) {
	params := newServeParams(t, 1)
	srv, err := NewEvalServer(Config{
		Params:       params,
		MaxBatch:     8,
		FlushTimeout: 200 * time.Millisecond,
		QueueDepth:   32,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tt := newTestTenant(t, params, "alice", 100, []int{1, 2}, false)
	tt.upload(t, srv)

	z := randomVec(rand.New(rand.NewSource(101)), params.Slots)
	ctBytes := tt.encryptBytes(t, z)

	steps := []int{1, 1, 2, 2}
	results := make([]*ckks.Ciphertext, len(steps))
	var wg sync.WaitGroup
	for i, st := range steps {
		wg.Add(1)
		go func(i, st int) {
			defer wg.Done()
			ct, _, err := srv.Eval(&EvalRequest{Tenant: "alice", Op: OpRotate, Steps: st, Ct: ctBytes})
			if err != nil {
				t.Errorf("rotate %d: %v", st, err)
				return
			}
			results[i] = ct
		}(i, st)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, st := range steps {
		assertVecClose(t, tt.decrypt(results[i]), expected(OpRotate, z, nil, st, 0), 1e-4,
			fmt.Sprintf("shared-hoist rotate %d", st))
	}
	stats := srv.Stats()
	if stats.HoistGroups < 1 || stats.HoistShared < 1 {
		t.Logf("occupancy: %v", stats.Occupancy)
		t.Fatalf("no hoist sharing recorded: groups=%d shared=%d (timing may have split the batch)",
			stats.HoistGroups, stats.HoistShared)
	}
}
