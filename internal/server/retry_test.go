package server

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"poseidon/internal/ckks"
)

// retryServer builds an EvalServer with job retry armed and one tenant
// registered, returning the server and the tenant.
func retryServer(t *testing.T, cfg Config) (*EvalServer, *testTenant) {
	t.Helper()
	params := newServeParams(t, 1)
	cfg.Params = params
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 4
	}
	if cfg.FlushTimeout == 0 {
		cfg.FlushTimeout = time.Millisecond
	}
	if cfg.DegradeCooldown == 0 {
		cfg.DegradeCooldown = time.Minute
	}
	srv, err := NewEvalServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	tt := newTestTenant(t, params, "alice", 300, []int{1}, false)
	tt.upload(t, srv)
	return srv, tt
}

// A job whose first executions fail with ErrIntegrity must be re-enqueued
// and succeed on a later attempt: the caller sees a valid result, the
// retry counters attribute the episode, and — critically — a recovered
// fault does not trip the degradation ladder.
func TestJobRetryRecoversTransientFailure(t *testing.T) {
	srv, tt := retryServer(t, Config{MaxJobAttempts: 3, RetryBackoff: time.Millisecond})
	var fails atomic.Int32
	fails.Store(2) // first two executions fail, third succeeds
	srv.sched.testExec = func(j *job) error {
		if fails.Add(-1) >= 0 {
			return fmt.Errorf("%w: injected residue mismatch", ckks.ErrIntegrity)
		}
		return nil
	}

	z := randomVec(rand.New(rand.NewSource(7)), srv.params.Slots)
	ct, _, err := srv.Eval(&EvalRequest{Tenant: "alice", Op: OpRotate, Steps: 1, Ct: tt.encryptBytes(t, z)})
	if err != nil {
		t.Fatalf("retried job failed: %v", err)
	}
	assertVecClose(t, tt.decrypt(ct), expected(OpRotate, z, nil, 1, 0), 1e-4, "recovered rotate")

	st := srv.Stats()
	if st.JobRetries != 2 || st.JobRecovered != 1 || st.JobUnrecovered != 0 {
		t.Fatalf("stats = retries %d recovered %d unrecoverable %d, want 2/1/0",
			st.JobRetries, st.JobRecovered, st.JobUnrecovered)
	}
	if st.GuardTrips != 0 || st.Mode != "batched" {
		t.Fatalf("recovered fault tripped the ladder: trips %d mode %s", st.GuardTrips, st.Mode)
	}
}

// A job that fails integrity on every attempt must exhaust the budget,
// answer with ErrIntegrity, count as unrecoverable, and trip the ladder
// exactly once.
func TestJobRetryExhaustionTripsLadder(t *testing.T) {
	srv, tt := retryServer(t, Config{MaxJobAttempts: 3, RetryBackoff: time.Millisecond})
	var execs atomic.Int32
	srv.sched.testExec = func(j *job) error {
		execs.Add(1)
		return fmt.Errorf("%w: latched fault", ckks.ErrIntegrity)
	}

	z := randomVec(rand.New(rand.NewSource(8)), srv.params.Slots)
	_, _, err := srv.Eval(&EvalRequest{Tenant: "alice", Op: OpRotate, Steps: 1, Ct: tt.encryptBytes(t, z)})
	if !errors.Is(err, ckks.ErrIntegrity) {
		t.Fatalf("got %v, want ErrIntegrity after exhaustion", err)
	}
	if got := execs.Load(); got != 3 {
		t.Fatalf("job executed %d times, want 3 (MaxJobAttempts)", got)
	}
	st := srv.Stats()
	if st.JobRetries != 2 || st.JobRecovered != 0 || st.JobUnrecovered != 1 {
		t.Fatalf("stats = retries %d recovered %d unrecoverable %d, want 2/0/1",
			st.JobRetries, st.JobRecovered, st.JobUnrecovered)
	}
	if st.GuardTrips != 1 || st.Mode != "serial" {
		t.Fatalf("unrecoverable job must trip once: trips %d mode %s", st.GuardTrips, st.Mode)
	}
}

// With retries off (the default), the first integrity failure answers and
// trips immediately — the pre-recovery contract, unchanged.
func TestJobRetryDisabledFailsFast(t *testing.T) {
	srv, tt := retryServer(t, Config{})
	var execs atomic.Int32
	srv.sched.testExec = func(j *job) error {
		execs.Add(1)
		return fmt.Errorf("%w: latched fault", ckks.ErrIntegrity)
	}
	z := randomVec(rand.New(rand.NewSource(9)), srv.params.Slots)
	_, _, err := srv.Eval(&EvalRequest{Tenant: "alice", Op: OpRotate, Steps: 1, Ct: tt.encryptBytes(t, z)})
	if !errors.Is(err, ckks.ErrIntegrity) {
		t.Fatalf("got %v, want ErrIntegrity", err)
	}
	if execs.Load() != 1 {
		t.Fatalf("job executed %d times with retries off, want 1", execs.Load())
	}
	if st := srv.Stats(); st.JobRetries != 0 || st.GuardTrips != 1 {
		t.Fatalf("stats = %+v, want no retries and one trip", st)
	}
}

// An expired context must abandon the request: EvalCtx returns the
// deadline error while the retry backoff would still be pending, and the
// HTTP layer maps it to 504.
func TestEvalCtxDeadlineAbandonsRetry(t *testing.T) {
	srv, tt := retryServer(t, Config{MaxJobAttempts: 5, RetryBackoff: 200 * time.Millisecond})
	srv.sched.testExec = func(j *job) error {
		return fmt.Errorf("%w: latched fault", ckks.ErrIntegrity)
	}
	z := randomVec(rand.New(rand.NewSource(10)), srv.params.Slots)
	req := &EvalRequest{Tenant: "alice", Op: OpRotate, Steps: 1, Ct: tt.encryptBytes(t, z)}

	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := srv.EvalCtx(ctx, req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if el := time.Since(start); el > 150*time.Millisecond {
		t.Fatalf("EvalCtx held the caller %v past a 40ms deadline", el)
	}
	if srv.Stats().Timeouts != 1 {
		t.Fatalf("timeouts = %d, want 1", srv.Stats().Timeouts)
	}
	if httpStatus(err) != http.StatusGatewayTimeout {
		t.Fatalf("deadline error maps to %d, want 504", httpStatus(err))
	}
}

// Over HTTP, the X-Poseidon-Deadline header bounds the request and expiry
// surfaces as 504; the typed client maps it back to DeadlineExceeded.
func TestHTTPDeadlineReturns504(t *testing.T) {
	srv, tt := retryServer(t, Config{MaxJobAttempts: 5, RetryBackoff: 300 * time.Millisecond})
	srv.sched.testExec = func(j *job) error {
		return fmt.Errorf("%w: latched fault", ckks.ErrIntegrity)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	z := randomVec(rand.New(rand.NewSource(11)), srv.params.Slots)
	req := &EvalRequest{Tenant: "alice", Op: OpRotate, Steps: 1, Ct: tt.encryptBytes(t, z)}

	cl := &Client{Base: hs.URL}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, _, err := cl.EvalCtx(ctx, req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded through the client", err)
	}

	// A malformed deadline header is a 400, not a hang.
	hreq, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/eval", nil)
	hreq.Header.Set("X-Poseidon-Deadline", "soon")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed deadline: status %d, want 400", resp.StatusCode)
	}
}

// A guard trip during cooldown decay restarts the clock: the ladder must
// hold the new rung for a full cooldown from the fresh trip, not resume
// the interrupted countdown.
func TestTripDuringDecayRestartsCooldown(t *testing.T) {
	const cool = 200 * time.Millisecond
	s := bareScheduler(Config{DegradeCooldown: cool})
	s.tripGuard()
	s.tripGuard() // batched → serial → shed
	if m := s.currentMode(); m != modeShed {
		t.Fatalf("after two trips: %s, want shed", modeName(m))
	}
	time.Sleep(cool + 50*time.Millisecond) // one cooldown elapses: shed → serial
	if m := s.currentMode(); m != modeSerial {
		t.Fatalf("after one cooldown: %s, want serial", modeName(m))
	}
	s.tripGuard() // mid-decay trip: serial → shed, cooldown restarts now
	if m := s.currentMode(); m != modeShed {
		t.Fatalf("after mid-decay trip: %s, want shed", modeName(m))
	}
	time.Sleep(cool / 2) // half the fresh cooldown: must still be shed
	if m := s.currentMode(); m != modeShed {
		t.Fatalf("cooldown did not restart: %s at half-cooldown, want shed", modeName(m))
	}
	time.Sleep(cool/2 + 50*time.Millisecond) // fresh cooldown complete: one rung down
	if m := s.currentMode(); m != modeSerial {
		t.Fatalf("after full fresh cooldown: %s, want serial", modeName(m))
	}
}
