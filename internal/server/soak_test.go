package server

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// The multi-tenant soak: 32 tenants hammer one EvalServer concurrently —
// 5k+ requests through a shared parameter set, arena, and worker pool,
// with a 16-entry key registry forcing constant eviction churn and key
// re-upload. Every response is decrypt-validated against a plaintext
// model computed with the issuing tenant's secret key, so any cross-tenant
// state bleed (wrong key, wrong arena buffer, wrong batch slot) surfaces
// as a decryption mismatch, not a silent wrong answer. Run under -race in
// CI; integrity guards are armed throughout.
func TestSoakMultiTenant(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	const (
		tenants       = 32
		reqsPerTenant = 157 // 32 × 157 = 5024 requests
		registryCap   = 16  // < tenants: continuous eviction + re-upload
	)
	params := newServeParams(t, 2)
	srv, err := NewEvalServer(Config{
		Params:       params,
		MaxBatch:     8,
		FlushTimeout: 300 * time.Microsecond,
		QueueDepth:   256,
		RegistryCap:  registryCap,
		GuardSeed:    0xB0A7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	fixtures := make([]*testTenant, tenants)
	for i := range fixtures {
		fixtures[i] = newTestTenant(t, params, fmt.Sprintf("tenant-%02d", i), int64(1000+i*17), []int{1, 2, 4}, true)
		fixtures[i].upload(t, srv)
	}

	var validated atomic.Uint64
	var reuploads atomic.Uint64
	var wg sync.WaitGroup
	for ti := range fixtures {
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			tt := fixtures[ti]
			rng := rand.New(rand.NewSource(int64(9000 + ti)))
			ops := []Op{OpAdd, OpSub, OpMulRelin, OpRotate, OpConjugate, OpNegate, OpInnerSum}
			for r := 0; r < reqsPerTenant; r++ {
				op := ops[rng.Intn(len(ops))]
				a := randomVec(rng, params.Slots)
				var b []complex128
				req := &EvalRequest{Tenant: tt.name, Op: op, Ct: tt.encryptBytes(t, a)}
				switch {
				case op.twoOperand():
					b = randomVec(rng, params.Slots)
					req.Ct2 = tt.encryptBytes(t, b)
				case op == OpRotate:
					req.Steps = []int{1, 2, 4}[rng.Intn(3)]
				case op == OpInnerSum:
					req.Width = []int{2, 4, 8}[rng.Intn(3)]
				}
				for attempt := 0; ; attempt++ {
					ct, batch, err := srv.Eval(req)
					switch {
					case errors.Is(err, ErrUnknownTenant):
						// Evicted by the churn: re-upload and retry — the
						// client-visible cost of the LRU cap.
						if err := srv.RegisterKeys(&KeyUpload{Tenant: tt.name, Relin: tt.rlkBytes, Rotations: tt.rtkBytes}); err != nil {
							t.Errorf("%s: re-upload: %v", tt.name, err)
							return
						}
						reuploads.Add(1)
						continue
					case errors.Is(err, ErrOverloaded):
						if attempt > 1000 {
							t.Errorf("%s: still overloaded after %d attempts", tt.name, attempt)
							return
						}
						time.Sleep(time.Millisecond)
						continue
					case err != nil:
						t.Errorf("%s: req %d (%s): %v", tt.name, r, op, err)
						return
					}
					if batch < 1 {
						t.Errorf("%s: batch occupancy %d", tt.name, batch)
						return
					}
					tol := 1e-4
					if op == OpMulRelin || op == OpInnerSum {
						tol = 1e-3
					}
					if e := maxErr(tt.decrypt(ct), expected(op, a, b, req.Steps, req.Width)); e > tol {
						t.Errorf("%s: req %d %s: decrypt mismatch, max error %g > %g — cross-tenant corruption?",
							tt.name, r, op, e, tol)
						return
					}
					validated.Add(1)
					break
				}
			}
		}(ti)
	}

	// A stats poller races the request path the way a metrics scraper
	// would in production.
	stop := make(chan struct{})
	var pollWg sync.WaitGroup
	pollWg.Add(1)
	go func() {
		defer pollWg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				_ = srv.Stats()
			}
		}
	}()

	wg.Wait()
	close(stop)
	pollWg.Wait()

	if got := validated.Load(); got != tenants*reqsPerTenant {
		t.Fatalf("validated %d responses, want %d — some requests vanished", got, tenants*reqsPerTenant)
	}
	st := srv.Stats()
	if st.GuardTrips != 0 {
		t.Fatalf("integrity guards tripped %d times during the soak", st.GuardTrips)
	}
	if st.Evictions == 0 {
		t.Fatal("no registry evictions: the soak never exercised churn")
	}
	if st.ResidentKeys > registryCap {
		t.Fatalf("resident keys %d exceed cap %d after drain", st.ResidentKeys, registryCap)
	}
	t.Logf("soak: %d validated, %d re-uploads, %d evictions, %d pinned skips, mean batch %.2f, batched frac %.2f",
		validated.Load(), reuploads.Load(), st.Evictions, st.PinnedSkips, st.MeanBatch, st.BatchedFrac)
}
