package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"poseidon/internal/ckks"
	"poseidon/internal/telemetry"
)

func newHTTPFixture(t *testing.T, cfg Config) (*EvalServer, *httptest.Server, *Client) {
	t.Helper()
	if cfg.Params == nil {
		cfg.Params = newServeParams(t, 1)
	}
	srv, err := NewEvalServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs, &Client{Base: hs.URL, HTTP: hs.Client()}
}

// Every operation the API serves, end to end over HTTP: upload real keys,
// post a binary envelope, decrypt-validate the response ciphertext.
func TestHTTPEvalAllOps(t *testing.T) {
	params := newServeParams(t, 1)
	srv, _, cli := newHTTPFixture(t, Config{Params: params})
	_ = srv
	tt := newTestTenant(t, params, "alice", 7, []int{1, 2, 4, -3}, true)
	kgenUpload(t, cli, tt)

	rng := rand.New(rand.NewSource(8))
	a := randomVec(rng, params.Slots)
	b := randomVec(rng, params.Slots)
	aBytes := tt.encryptBytes(t, a)
	bBytes := tt.encryptBytes(t, b)

	cases := []struct {
		op    Op
		steps int
		width int
		tol   float64
	}{
		{op: OpAdd, tol: 1e-4},
		{op: OpSub, tol: 1e-4},
		{op: OpMulRelin, tol: 1e-3},
		{op: OpRescale, tol: 1e-3},
		{op: OpRotate, steps: -3, tol: 1e-4},
		{op: OpConjugate, tol: 1e-4},
		{op: OpNegate, tol: 1e-4},
		{op: OpInnerSum, width: 4, tol: 1e-3},
	}
	// Rescale's legitimate input is a scale² ciphertext: produce one with a
	// server-side multiplication first.
	mulCt, _, err := cli.Eval(&EvalRequest{Tenant: "alice", Op: OpMulRelin, Ct: aBytes, Ct2: bBytes})
	if err != nil {
		t.Fatal(err)
	}
	mulBytes, err := mulCt.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	ab := expected(OpMulRelin, a, b, 0, 0)

	for _, tc := range cases {
		req := &EvalRequest{Tenant: "alice", Op: tc.op, Steps: tc.steps, Width: tc.width, Ct: aBytes}
		if tc.op == OpRescale {
			req.Ct = mulBytes
		}
		if tc.op.twoOperand() {
			req.Ct2 = bBytes
		}
		ct, meta, err := cli.Eval(req)
		if err != nil {
			t.Fatalf("%s: %v", tc.op, err)
		}
		if meta.Batch < 1 {
			t.Fatalf("%s: batch occupancy %d", tc.op, meta.Batch)
		}
		if meta.BytesOut == 0 {
			t.Fatalf("%s: empty response body", tc.op)
		}
		want := expected(tc.op, a, b, tc.steps, tc.width)
		if tc.op == OpRescale {
			want = ab
		}
		assertVecClose(t, tt.decrypt(ct), want, tc.tol, tc.op.String())
	}
}

func kgenUpload(t *testing.T, cli *Client, tt *testTenant) {
	t.Helper()
	resp, err := cli.hc().Post(cli.Base+"/v1/keys", "application/octet-stream",
		bytes.NewReader(EncodeKeyUpload(&KeyUpload{Tenant: tt.name, Relin: tt.rlkBytes, Rotations: tt.rtkBytes})))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("key upload: HTTP %d", resp.StatusCode)
	}
}

// The HTTP status surface: structural garbage is 400, an unknown tenant
// 404, a valid envelope that cannot evaluate 422, overload 503 with
// Retry-After, health always 200.
func TestHTTPStatusMapping(t *testing.T) {
	params := newServeParams(t, 1)
	srv, hs, cli := newHTTPFixture(t, Config{Params: params})
	tt := newTestTenant(t, params, "alice", 9, []int{1}, false)
	kgenUpload(t, cli, tt)
	rng := rand.New(rand.NewSource(10))
	ctBytes := tt.encryptBytes(t, randomVec(rng, params.Slots))

	post := func(body []byte) *http.Response {
		t.Helper()
		resp, err := hs.Client().Post(hs.URL+"/v1/eval", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post([]byte("not an envelope")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: HTTP %d, want 400", resp.StatusCode)
	}
	ghost := EncodeEvalRequest(&EvalRequest{Tenant: "ghost", Op: OpNegate, Ct: ctBytes})
	if resp := post(ghost); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant: HTTP %d, want 404", resp.StatusCode)
	}
	// Valid envelope, truncated ciphertext payload → 400 (decode fails).
	corrupt := EncodeEvalRequest(&EvalRequest{Tenant: "alice", Op: OpNegate, Ct: ctBytes[:len(ctBytes)-7]})
	if resp := post(corrupt); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt ciphertext: HTTP %d, want 400", resp.StatusCode)
	}
	// Rotation with no key for the step → 422 (evaluation failure).
	noKey := EncodeEvalRequest(&EvalRequest{Tenant: "alice", Op: OpRotate, Steps: 7, Ct: ctBytes})
	if resp := post(noKey); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("missing rotation key: HTTP %d, want 422", resp.StatusCode)
	}
	// Shed mode → 503 with Retry-After while the cooldown holds.
	srv.sched.cfg.DegradeCooldown = time.Minute
	srv.sched.tripGuard()
	srv.sched.tripGuard()
	ok := EncodeEvalRequest(&EvalRequest{Tenant: "alice", Op: OpNegate, Ct: ctBytes})
	resp := post(ok)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed mode: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if _, _, err := cli.Eval(&EvalRequest{Tenant: "alice", Op: OpNegate, Ct: ctBytes}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("client 503 mapping: %v, want ErrOverloaded", err)
	}

	hresp, err := hs.Client().Get(hs.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("health: HTTP %d", hresp.StatusCode)
	}
	var st Stats
	if err := json.NewDecoder(hresp.Body).Decode(&st); err != nil {
		t.Fatalf("health JSON: %v", err)
	}
	if st.Mode != "shed" {
		t.Fatalf("health mode = %q, want shed", st.Mode)
	}
	if st.GuardTrips != 2 {
		t.Fatalf("health guard trips = %d, want 2", st.GuardTrips)
	}
}

// Admission ceilings: an absurdly low arena-bytes ceiling rejects with
// 503 before the evaluator is touched.
func TestHTTPArenaBackpressure(t *testing.T) {
	params := newServeParams(t, 1)
	// Warm the arena so BytesInUse is non-zero, then set the ceiling at 1.
	kgen := ckks.NewKeyGenerator(params, 11)
	_ = kgen.GenSecretKey()
	_, _, cli := newHTTPFixture(t, Config{Params: params, MaxArenaBytes: 1})
	tt := newTestTenant(t, params, "alice", 12, []int{1}, false)
	kgenUpload(t, cli, tt)
	rng := rand.New(rand.NewSource(13))
	ctBytes := tt.encryptBytes(t, randomVec(rng, params.Slots))
	_, _, err := cli.Eval(&EvalRequest{Tenant: "alice", Op: OpNegate, Ct: ctBytes})
	if err == nil {
		// The arena may legitimately be empty between requests; only a
		// non-zero floor makes the ceiling trip deterministic.
		if params.ArenaStats().BytesInUse > 1 {
			t.Fatal("arena ceiling exceeded but request admitted")
		}
		t.Skip("arena idle at admission time; ceiling not exercisable here")
	}
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("arena ceiling: %v, want ErrOverloaded", err)
	}
}

// The serving gauges ride the collector's /metrics page.
func TestHTTPMetricsIncludeServeGauges(t *testing.T) {
	params := newServeParams(t, 1)
	col := telemetry.NewCollector("serve-test")
	srv, _, cli := newHTTPFixture(t, Config{Params: params, Collector: col})
	_ = srv
	tt := newTestTenant(t, params, "alice", 14, []int{1}, false)
	kgenUpload(t, cli, tt)
	rng := rand.New(rand.NewSource(15))
	ctBytes := tt.encryptBytes(t, randomVec(rng, params.Slots))
	if _, _, err := cli.Eval(&EvalRequest{Tenant: "alice", Op: OpNegate, Ct: ctBytes}); err != nil {
		t.Fatal(err)
	}

	ms := httptest.NewServer(col.MetricsHandler())
	defer ms.Close()
	resp, err := ms.Client().Get(ms.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	page := buf.String()
	for _, want := range []string{
		"poseidon_serve_mode",
		"poseidon_serve_requests_total 1",
		"poseidon_serve_resident_tenants 1",
		"poseidon_serve_arena_bytes",
	} {
		if !bytes.Contains([]byte(page), []byte(want)) {
			t.Errorf("metrics page missing %q", want)
		}
	}
	// The tenant evaluator observed its op through the collector too.
	if !bytes.Contains([]byte(page), []byte("poseidon_op_count")) && !bytes.Contains([]byte(page), []byte("poseidon_ops")) {
		t.Logf("page:\n%s", page)
	}
}
