package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"poseidon/internal/ckks"
)

// flakyHandler answers /v1/eval with the scripted status codes, then
// serves a valid ciphertext.
type flakyHandler struct {
	t        *testing.T
	script   []int // status codes for the first len(script) requests
	retryHdr string
	body     []byte
	calls    atomic.Int32
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := int(f.calls.Add(1)) - 1
	if n < len(f.script) {
		if f.retryHdr != "" {
			w.Header().Set("Retry-After", f.retryHdr)
		}
		http.Error(w, "scripted failure", f.script[n])
		return
	}
	w.Write(f.body)
}

func flakyCtBytes(t *testing.T) []byte {
	t.Helper()
	params := newServeParams(t, 1)
	ct := ckks.NewCiphertext(params, params.MaxLevel())
	ct.Scale = params.Scale
	b, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// Client retry against a flaky server, table-driven: bounded attempts,
// only-overload-retried, Retry-After honored, exponential jitter bounds.
func TestClientRetryFlakyServer(t *testing.T) {
	ctBytes := flakyCtBytes(t)
	base := 50 * time.Millisecond
	cases := []struct {
		name       string
		script     []int
		retryHdr   string
		policy     RetryPolicy
		wantErr    error
		wantCalls  int32
		wantSleeps int
		checkSleep func(i int, d time.Duration) bool
	}{
		{
			name:      "clean first try needs no retry",
			policy:    RetryPolicy{MaxAttempts: 3},
			wantCalls: 1,
		},
		{
			name:       "two 503s then success",
			script:     []int{503, 503},
			policy:     RetryPolicy{MaxAttempts: 3, BaseBackoff: base},
			wantCalls:  3,
			wantSleeps: 2,
			checkSleep: func(i int, d time.Duration) bool {
				// retry i+1 waits in [b/2, b] with b = base << i
				b := base << uint(i)
				return d >= b/2 && d <= b
			},
		},
		{
			name:       "budget exhausted surfaces ErrOverloaded",
			script:     []int{503, 503, 503},
			policy:     RetryPolicy{MaxAttempts: 3, BaseBackoff: base},
			wantErr:    ErrOverloaded,
			wantCalls:  3,
			wantSleeps: 2, // waits precede attempts 2 and 3; the final failure returns
		},
		{
			name:      "single-shot default does not retry",
			script:    []int{503},
			wantErr:   ErrOverloaded,
			wantCalls: 1,
		},
		{
			name:      "400 is not retried",
			script:    []int{400, 400},
			policy:    RetryPolicy{MaxAttempts: 3},
			wantErr:   ErrBadRequest,
			wantCalls: 1,
		},
		{
			name:       "Retry-After is honored exactly",
			script:     []int{503},
			retryHdr:   "1",
			policy:     RetryPolicy{MaxAttempts: 2, BaseBackoff: base},
			wantCalls:  2,
			wantSleeps: 1,
			checkSleep: func(i int, d time.Duration) bool { return d == time.Second },
		},
		{
			name:       "Retry-After capped at MaxBackoff",
			script:     []int{503},
			retryHdr:   "3600",
			policy:     RetryPolicy{MaxAttempts: 2, BaseBackoff: base, MaxBackoff: 2 * time.Second},
			wantCalls:  2,
			wantSleeps: 1,
			checkSleep: func(i int, d time.Duration) bool { return d == 2*time.Second },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fh := &flakyHandler{t: t, script: tc.script, retryHdr: tc.retryHdr, body: ctBytes}
			hs := httptest.NewServer(fh)
			defer hs.Close()

			var sleeps []time.Duration
			cl := &Client{
				Base:  hs.URL,
				Retry: tc.policy,
				sleep: func(ctx context.Context, d time.Duration) error {
					sleeps = append(sleeps, d)
					return nil // no wall time in tests
				},
			}
			ct, _, err := cl.Eval(&EvalRequest{Tenant: "x", Op: OpNegate, Ct: []byte{1}})
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("got %v, want %v", err, tc.wantErr)
				}
			} else {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if ct == nil {
					t.Fatal("no ciphertext decoded")
				}
			}
			if got := fh.calls.Load(); got != tc.wantCalls {
				t.Fatalf("server saw %d calls, want %d", got, tc.wantCalls)
			}
			if len(sleeps) != tc.wantSleeps {
				t.Fatalf("client slept %d times (%v), want %d", len(sleeps), sleeps, tc.wantSleeps)
			}
			if tc.checkSleep != nil {
				for i, d := range sleeps {
					if !tc.checkSleep(i, d) {
						t.Fatalf("sleep %d = %v out of policy bounds", i, d)
					}
				}
			}
		})
	}
}

// A context cancelled during backoff must abort the retry loop with the
// context's error, not keep hammering the server.
func TestClientRetryContextCancelledDuringBackoff(t *testing.T) {
	fh := &flakyHandler{t: t, script: []int{503, 503, 503, 503}, body: flakyCtBytes(t)}
	hs := httptest.NewServer(fh)
	defer hs.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cl := &Client{
		Base:  hs.URL,
		Retry: RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond},
		sleep: func(ctx context.Context, d time.Duration) error {
			cancel() // the deadline lands mid-backoff
			return ctx.Err()
		},
	}
	_, _, err := cl.EvalCtx(ctx, &EvalRequest{Tenant: "x", Op: OpNegate, Ct: []byte{1}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := fh.calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls after cancel, want 1", got)
	}
}
