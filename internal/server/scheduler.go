package server

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"poseidon/internal/ckks"
	"poseidon/internal/tracing"
)

// The scheduler is the software analogue of the paper's operator
// time-multiplexing: one execution resource (a single dispatcher
// goroutine driving the evaluator) serves many tenant request streams by
// interleaving them in batches. A batch holds requests at the same level
// (same limb count → the same arena size classes stay hot and one
// evaluator pass covers the batch); rotations of the same input
// ciphertext within a batch share one hoisted digit decomposition, the
// dominant cost of a keyswitch. Batch formation waits at most
// FlushTimeout for a batch to fill, flushes early when full, and splits
// on a level mismatch — the mismatched request opens the next batch, it
// is never dropped.

// dispatch modes — the degradation ladder.
const (
	modeBatched int32 = iota // normal: batches up to MaxBatch
	modeSerial               // after a guard trip: one request per batch
	modeShed                 // repeated trips: admission rejects new work
)

func modeName(m int32) string {
	switch m {
	case modeSerial:
		return "serial"
	case modeShed:
		return "shed"
	}
	return "batched"
}

// job is one admitted evaluation request queued for dispatch.
type job struct {
	entry *tenantEntry
	op    Op
	steps int
	width int
	ct    *ckks.Ciphertext
	ct2   *ckks.Ciphertext

	// digest identifies the raw input ciphertext bytes of a rotation so
	// the batch executor can recognize same-input rotations and run them
	// through one hoisted decomposition. Tenant-scoped: requests from
	// different tenants never share (their keys differ).
	digest    [sha256.Size]byte
	hasDigest bool

	// ctx is the request's context (nil = none): an expired job is skipped
	// cheaply by the executor and never re-enqueued by the retry path.
	ctx context.Context
	// attempt counts scheduler-level re-executions of this job after
	// integrity failures (0 = first run).
	attempt int

	// trace is the request's span tree (nil with tracing off; every use is
	// a nil check). queueSpan is the currently-open queue-wait span: opened
	// at enqueue (and re-opened per retry), closed when the dispatcher
	// picks the job up. deliverSpan covers the result hand-back: opened by
	// the executor just before it sends on done, closed by the caller when
	// it receives — on a saturated machine the caller goroutine's wake-up
	// can lag the result by many milliseconds, and that wait is request
	// wall-clock the tree must account for. Both cross goroutines but
	// never concurrently — the enqueue → channel → dispatch edge (and the
	// send → receive edge on done) orders each hand-off.
	trace       *tracing.RequestTrace
	queueSpan   tracing.SpanRef
	deliverSpan tracing.SpanRef

	done chan jobResult // buffered(1): the executor never blocks delivering
}

func (j *job) level() int { return j.ct.Level }

// ctxErr reports the job's context expiry, wrapped for the HTTP layer
// (context.DeadlineExceeded maps to 504).
func (j *job) ctxErr() error {
	if j.ctx == nil {
		return nil
	}
	if err := j.ctx.Err(); err != nil {
		return fmt.Errorf("server: request abandoned: %w", err)
	}
	return nil
}

type jobResult struct {
	ct    *ckks.Ciphertext
	batch int // occupancy of the batch the job rode in
	err   error
}

type scheduler struct {
	cfg    Config
	params *ckks.Parameters

	queue  chan *job
	qmu    sync.RWMutex
	closed bool
	done   chan struct{}

	mode      atomic.Int32
	coolUntil atomic.Int64 // unix nanos; mode decays one rung per elapsed cooldown

	batches     atomic.Uint64
	occupancy   []atomic.Uint64 // index = batch size, [0] unused
	hoistGroups atomic.Uint64   // batches of ≥2 rotations sharing a decomposition
	hoistShared atomic.Uint64   // decompositions saved by sharing
	guardTrips  atomic.Uint64

	// job-level recovery counters: re-enqueues after integrity failures,
	// jobs that eventually succeeded on a retry, and jobs that exhausted
	// the attempt budget (the only ones that trip the degradation ladder).
	jobRetries       atomic.Uint64
	jobRecovered     atomic.Uint64
	jobUnrecoverable atomic.Uint64

	// tracer receives job-retry events; sink is the evaluator-observation
	// bridge the dispatcher activates around each job's evaluator call so
	// per-op spans land on that job's trace. Both nil with tracing off.
	tracer *tracing.Tracer
	sink   *tracing.EvalObserver

	// testExec, when set (tests only), replaces the evaluator call for a
	// job: a non-nil return is delivered as the op's failure. It lets the
	// degradation tests inject a deterministic mid-batch integrity fault
	// without arming the global fault injector.
	testExec func(*job) error
}

func newScheduler(cfg Config, params *ckks.Parameters, tracer *tracing.Tracer, sink *tracing.EvalObserver) *scheduler {
	s := &scheduler{
		cfg:       cfg,
		params:    params,
		queue:     make(chan *job, cfg.QueueDepth),
		done:      make(chan struct{}),
		occupancy: make([]atomic.Uint64, cfg.MaxBatch+1),
		tracer:    tracer,
		sink:      sink,
	}
	go s.run()
	return s
}

// beginExec closes the job's queue-wait span and opens its exec span,
// pointing the evaluator's observation sink at this job's trace. Called
// only from the dispatcher goroutine; nil-safe throughout.
func (s *scheduler) beginExec(j *job, batchSize int) tracing.SpanRef {
	j.trace.EndSpan(j.queueSpan)
	j.queueSpan = 0
	ex := j.trace.StartSpan(0, "exec")
	j.trace.AnnotateInt(ex, "batch", int64(batchSize))
	if j.attempt > 0 {
		j.trace.AnnotateInt(ex, "attempt", int64(j.attempt+1))
	}
	if s.sink != nil && j.trace != nil {
		s.sink.Activate(j.trace, ex)
	}
	return ex
}

// endExec detaches the sink and closes the exec span.
func (s *scheduler) endExec(j *job, ex tracing.SpanRef, err error) {
	if s.sink != nil {
		s.sink.Deactivate()
	}
	j.trace.EndSpanErr(ex, err)
}

// deliver hands the job's outcome back to the waiting caller, opening the
// deliver span the caller closes on receive (EvalCtx). done is buffered,
// so the send never blocks the dispatcher.
func (s *scheduler) deliver(j *job, res jobResult) {
	j.deliverSpan = j.trace.StartSpan(0, "deliver")
	j.done <- res
}

// enqueue admits a job to the dispatch queue without blocking: a full
// queue is backpressure, reported as ErrOverloaded.
func (s *scheduler) enqueue(j *job) error {
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.closed {
		return errOverloadedf("shutting down")
	}
	select {
	case s.queue <- j:
		return nil
	default:
		return errOverloadedf("dispatch queue full (%d)", s.cfg.QueueDepth)
	}
}

// stop closes the queue and waits for the dispatcher to drain every
// admitted job — graceful: queued work completes, new work is refused.
func (s *scheduler) stop() { s.stopCtx(context.Background()) }

// stopCtx is stop with a drain bound: when ctx expires before the
// dispatcher has drained the queue, stopCtx returns the expiry error with
// the dispatcher still running (it keeps draining in the background —
// abandoning it would strand queued requesters on their done channels).
// Jobs parked in retry backoff are not waited for: their re-enqueue fails
// against the closed queue and delivers the original failure.
func (s *scheduler) stopCtx(ctx context.Context) error {
	s.qmu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.qmu.Unlock()
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w (%d jobs still queued)", ctx.Err(), len(s.queue))
	}
}

// currentMode returns the dispatch mode after applying cooldown decay:
// each elapsed DegradeCooldown since the last escalation steps the ladder
// down one rung.
func (s *scheduler) currentMode() int32 {
	now := time.Now().UnixNano()
	for {
		m := s.mode.Load()
		if m == modeBatched {
			return m
		}
		cu := s.coolUntil.Load()
		if now < cu {
			return m
		}
		if s.mode.CompareAndSwap(m, m-1) {
			s.coolUntil.CompareAndSwap(cu, cu+s.cfg.DegradeCooldown.Nanoseconds())
		}
	}
}

// tripGuard escalates the ladder one rung and restarts the cooldown.
func (s *scheduler) tripGuard() {
	s.guardTrips.Add(1)
	for {
		m := s.mode.Load()
		next := m + 1
		if next > modeShed {
			next = modeShed
		}
		if s.mode.CompareAndSwap(m, next) {
			s.coolUntil.Store(time.Now().Add(s.cfg.DegradeCooldown).UnixNano())
			return
		}
	}
}

func (s *scheduler) maxBatchNow() int {
	if s.currentMode() != modeBatched {
		return 1 // degraded: serial dispatch, queued work still drains
	}
	return s.cfg.MaxBatch
}

// run is the dispatcher: one goroutine, one batch at a time — the single
// time-multiplexed datapath.
func (s *scheduler) run() {
	defer close(s.done)
	var pending *job
	for {
		first := pending
		pending = nil
		if first == nil {
			j, ok := <-s.queue
			if !ok {
				return
			}
			first = j
		}
		batch := s.collect(first, &pending)
		s.execBatch(batch)
	}
}

// collect forms one batch: same level throughout, at most maxBatchNow
// jobs, waiting at most FlushTimeout for laggards. A level-mismatched job
// flushes the batch and is carried into the next one via pending.
func (s *scheduler) collect(first *job, pending **job) []*job {
	batch := []*job{first}
	level := first.level()
	max := s.maxBatchNow()
	if max <= 1 {
		return batch
	}
	timer := time.NewTimer(s.cfg.FlushTimeout)
	defer timer.Stop()
	for len(batch) < max {
		select {
		case j, ok := <-s.queue:
			if !ok {
				return batch
			}
			if j.level() != level {
				*pending = j // level mismatch splits the batch; the job opens the next one
				return batch
			}
			batch = append(batch, j)
		case <-timer.C:
			return batch // timeout flush of a partial batch
		}
	}
	return batch
}

// groupKey identifies a hoist-sharing group within a batch: same tenant
// entry, same input ciphertext bytes.
type groupKey struct {
	entry  *tenantEntry
	digest [sha256.Size]byte
}

// execBatch runs every job of a batch, amortizing hoisted-rotation
// decompositions across same-input rotations. An integrity failure
// degrades the dispatch mode but never drops the rest of the batch or the
// queue: remaining jobs still execute (serially, on the next batches).
func (s *scheduler) execBatch(batch []*job) {
	s.batches.Add(1)
	occ := len(batch)
	if occ >= len(s.occupancy) {
		occ = len(s.occupancy) - 1
	}
	s.occupancy[occ].Add(1)

	// Pass 1: find hoist-sharing groups (≥2 rotations of identical input
	// bytes from the same tenant).
	var groups map[groupKey][]*job
	for _, j := range batch {
		if !j.hasDigest {
			continue
		}
		if groups == nil {
			groups = map[groupKey][]*job{}
		}
		k := groupKey{entry: j.entry, digest: j.digest}
		groups[k] = append(groups[k], j)
	}

	// Pass 2: execute in arrival order; a job in a shared group executes
	// the whole group at its first member.
	ran := map[*job]bool{}
	for _, j := range batch {
		if ran[j] {
			continue
		}
		if j.hasDigest {
			k := groupKey{entry: j.entry, digest: j.digest}
			if g := groups[k]; len(g) >= 2 {
				s.execHoistGroup(g, len(batch))
				for _, gj := range g {
					ran[gj] = true
				}
				continue
			}
		}
		s.execOne(j, len(batch))
		ran[j] = true
	}
}

// execHoistGroup runs ≥2 same-input rotations through one shared digit
// decomposition. Any failure of the shared phase falls back to individual
// rotations so a group member never sees a worse outcome than serial
// dispatch.
func (s *scheduler) execHoistGroup(group []*job, batchSize int) {
	ev := group[0].entry.ev
	if s.testExec != nil {
		for _, j := range group {
			s.execOne(j, batchSize)
		}
		return
	}
	lead := group[0]
	lead.trace.EndSpan(lead.queueSpan) // the shared hoist is the leader's first exec work
	hs := lead.trace.StartSpan(0, "hoist")
	lead.trace.AnnotateInt(hs, "group", int64(len(group)))
	h, err := ev.TryHoist(group[0].ct)
	if err != nil {
		lead.trace.EndSpanErr(hs, err)
		// The fallback re-executes each member individually, where the
		// job-retry path applies; with retries off, the failure drives the
		// ladder here as before (execOne sees per-job errors itself).
		if !s.retryEnabled() {
			s.noteErr(err)
		}
		for _, j := range group {
			s.execOne(j, batchSize)
		}
		return
	}
	lead.trace.EndSpan(hs)
	defer h.Release()
	s.hoistGroups.Add(1)
	s.hoistShared.Add(uint64(len(group) - 1))
	for _, j := range group {
		ex := s.beginExec(j, batchSize)
		if j == lead {
			j.trace.Annotate(ex, "hoist", "leader")
		} else {
			j.trace.Annotate(ex, "hoist", "shared")
		}
		res, err := h.TryRotate(j.steps)
		s.endExec(j, ex, err)
		s.finish(j, res, batchSize, err)
	}
}

// execOne runs a single job through its tenant's evaluator.
func (s *scheduler) execOne(j *job, batchSize int) {
	if err := j.ctxErr(); err != nil {
		j.trace.EndSpanErr(j.queueSpan, err) // abandoned while queued
		j.queueSpan = 0
		s.deliver(j, jobResult{batch: batchSize, err: err})
		return
	}
	ex := s.beginExec(j, batchSize)
	var res *ckks.Ciphertext
	var err error
	if s.testExec != nil {
		err = s.testExec(j)
	}
	if err == nil {
		res, err = s.eval(j)
	}
	s.endExec(j, ex, err)
	s.finish(j, res, batchSize, err)
}

func (s *scheduler) retryEnabled() bool { return s.cfg.MaxJobAttempts > 1 }

// finish delivers a job outcome, routing integrity failures through the
// job-retry path first: a retryable job is re-enqueued after a backoff and
// its response deferred; only a job that exhausts the attempt budget (or
// fails for a non-integrity reason) is answered with the error, and only
// that unrecoverable integrity failure trips the degradation ladder — a
// fault the system recovers from is not a reason to shed load.
func (s *scheduler) finish(j *job, res *ckks.Ciphertext, batchSize int, err error) {
	if err == nil {
		if j.attempt > 0 {
			s.jobRecovered.Add(1)
		}
		s.deliver(j, jobResult{ct: res, batch: batchSize})
		return
	}
	if errors.Is(err, ckks.ErrIntegrity) {
		if s.retryJob(j, batchSize, err) {
			return
		}
		s.jobUnrecoverable.Add(1)
		s.tripGuard()
	}
	s.deliver(j, jobResult{batch: batchSize, err: err})
}

// retryJob re-enqueues an integrity-failed job with exponential backoff,
// bounded by MaxJobAttempts and the job's context. The backoff runs on a
// timer so the dispatcher never sleeps; if the re-enqueue races a closed
// or full queue, the original failure is delivered instead of being lost.
func (s *scheduler) retryJob(j *job, batchSize int, cause error) bool {
	if !s.retryEnabled() || j.attempt+1 >= s.cfg.MaxJobAttempts {
		return false
	}
	if j.ctxErr() != nil {
		return false
	}
	j.attempt++
	s.jobRetries.Add(1)
	backoff := s.cfg.RetryBackoff << uint(j.attempt-1)
	if lim := 250 * time.Millisecond; backoff > lim {
		backoff = lim
	}
	var bo tracing.SpanRef
	if j.trace != nil {
		bo = j.trace.StartSpan(0, "backoff")
		j.trace.AnnotateInt(bo, "attempt", int64(j.attempt))
		j.trace.Annotate(bo, "cause", cause.Error())
		s.tracer.Emit(tracing.Event{
			TimeNs:  time.Now().UnixNano(),
			Kind:    "job-retry",
			Trace:   j.trace.TraceID(),
			Layer:   "job",
			Attempt: j.attempt,
			Err:     cause.Error(),
		})
	}
	time.AfterFunc(backoff, func() {
		j.trace.EndSpan(bo)
		j.queueSpan = j.trace.StartSpan(0, "queue")
		if err := s.enqueue(j); err != nil {
			j.trace.EndSpanErr(j.queueSpan, err)
			s.deliver(j, jobResult{batch: batchSize,
				err: fmt.Errorf("%w (retry %d not enqueued: %v)", cause, j.attempt, err)})
		}
	})
	return true
}

func (s *scheduler) eval(j *job) (*ckks.Ciphertext, error) {
	ev := j.entry.ev
	switch j.op {
	case OpAdd:
		return ev.TryAdd(j.ct, j.ct2)
	case OpSub:
		return ev.TrySub(j.ct, j.ct2)
	case OpMulRelin:
		return ev.TryMulRelin(j.ct, j.ct2)
	case OpRescale:
		return ev.TryRescale(j.ct)
	case OpRotate:
		return ev.TryRotate(j.ct, j.steps)
	case OpConjugate:
		return ev.TryConjugate(j.ct)
	case OpNegate:
		out := ckks.NewCiphertext(s.params, j.ct.Level)
		return ev.TryNegInto(out, j.ct)
	case OpInnerSum:
		acc := j.ct
		for st := 1; st < j.width; st <<= 1 {
			rot, err := ev.TryRotate(acc, st)
			if err != nil {
				return nil, err
			}
			sum, err := ev.TryAdd(acc, rot)
			if err != nil {
				return nil, err
			}
			acc = sum
		}
		return acc, nil
	}
	return nil, badf("unexecutable opcode %d", uint64(j.op))
}

// noteErr inspects an op failure: integrity faults drive the degradation
// ladder.
func (s *scheduler) noteErr(err error) {
	if errors.Is(err, ckks.ErrIntegrity) {
		s.tripGuard()
	}
}

func errOverloadedf(format string, args ...any) error {
	return fmt.Errorf("server: %w: "+format, append([]any{ErrOverloaded}, args...)...)
}
