// Package workloads builds the operation traces of the paper's four
// evaluation benchmarks (Table V): HELR logistic regression, LSTM
// inference, ResNet-20 inference, and fully packed bootstrapping. Traces
// are derived from the published structure of each application — iteration
// counts, matrix dimensions, activation degrees, bootstrap placement — so
// the *mix* of basic operations (which drives every breakdown figure)
// matches the real workloads even though absolute counts are
// reconstructions (see EXPERIMENTS.md for the calibration notes).
package workloads

import (
	"math"

	"poseidon/internal/trace"
)

// Spec fixes the ciphertext geometry a trace is generated for.
type Spec struct {
	LogN     int
	MaxLimbs int // limbs at the top of the modulus chain
	Slots    int // usable slots (N/2 for full packing)
}

// PaperSpec is the evaluation geometry (N=2^16, L=44).
func PaperSpec() Spec {
	return Spec{LogN: 16, MaxLimbs: 45, Slots: 1 << 15}
}

// clampLimbs keeps the running level inside [2, max].
func clampLimbs(l, max int) int {
	if l > max {
		return max
	}
	if l < 2 {
		return 2
	}
	return l
}

// bootstrapTrace appends one packed bootstrapping invocation. The
// CoeffToSlot/SlotToCoeff transforms use the standard FFT factorization
// (3 sparse factor matrices, a handful of hoisted rotations each) rather
// than a dense diagonal transform; EvalMod is a BSGS Chebyshev sine
// applied to both coefficient halves. slotsScale < 1 models sparsely
// packed bootstrapping: fewer slots shrink the transforms and the sine's
// slot count but not its degree.
func bootstrapTrace(t *trace.Trace, s Spec, slotsScale float64) {
	// Level schedule: ModRaise headroom at the top, EvalMod mid-pipeline,
	// SlotToCoeff at the bottom. Sparse bootstraps use a shorter effective
	// chain (their noise budget is smaller).
	top, mid, low := 24, 18, 8
	rotsPerFactor := 4.0
	diagsPerFactor := 30.0
	products := 14.0 // EvalMod Chebyshev ciphertext products per half
	switch {
	case slotsScale < 0.05: // very narrow vectors (e.g. a weight vector)
		top, mid, low = 14, 10, 5
		rotsPerFactor, diagsPerFactor, products = 2, 6, 6
	case slotsScale < 0.9:
		top, mid, low = 16, 12, 6
		rotsPerFactor = math.Max(2, rotsPerFactor*math.Sqrt(slotsScale))
		diagsPerFactor = math.Max(6, diagsPerFactor*slotsScale*4)
		products = 9
	}
	top = clampLimbs(top, s.MaxLimbs)
	mid = clampLimbs(mid, s.MaxLimbs)
	low = clampLimbs(low, s.MaxLimbs)

	// --- CoeffToSlot: 3 factor matrices descending from the top.
	for f := 0; f < 3; f++ {
		l := clampLimbs(top-f, s.MaxLimbs)
		t.AddTagged(trace.Rotation, l, rotsPerFactor, "CoeffToSlot")
		t.AddTagged(trace.PMult, l, diagsPerFactor, "CoeffToSlot")
		t.AddTagged(trace.HAdd, l, diagsPerFactor, "CoeffToSlot")
		t.AddTagged(trace.Rescale, l, 1, "CoeffToSlot")
	}
	// Conjugation split into the two real halves.
	t.AddTagged(trace.Rotation, clampLimbs(top-3, s.MaxLimbs), 1, "CoeffToSlot")
	t.AddTagged(trace.HAdd, clampLimbs(top-3, s.MaxLimbs), 2, "CoeffToSlot")

	// --- EvalMod ×2: BSGS Chebyshev sine (≈ degree 250: baby steps,
	// giant steps and recombination products), at the mid-pipeline level.
	for i := 0; i < 2; i++ {
		t.AddTagged(trace.CMult, mid, products, "EvalMod")
		t.AddTagged(trace.PMult, mid, 2.5*products, "EvalMod")
		t.AddTagged(trace.Rescale, mid, 2.5*products, "EvalMod")
		t.AddTagged(trace.HAdd, mid, 3*products, "EvalMod")
	}

	// --- SlotToCoeff at the bottom of the pipeline.
	for f := 0; f < 3; f++ {
		t.AddTagged(trace.Rotation, low, rotsPerFactor, "SlotToCoeff")
		t.AddTagged(trace.PMult, low, diagsPerFactor, "SlotToCoeff")
		t.AddTagged(trace.HAdd, low, diagsPerFactor, "SlotToCoeff")
	}
	t.AddTagged(trace.Rescale, low, 1, "SlotToCoeff")
}

// PackedBootstrapping is benchmark (4): one fully packed bootstrap
// refreshing an exhausted ciphertext from depth L=3 to L=57 headroom.
func PackedBootstrapping(s Spec) *trace.Trace {
	t := &trace.Trace{
		Name:        "PackedBootstrapping",
		Description: "fully packed CKKS bootstrapping (CoeffToSlot → EvalMod ×2 → SlotToCoeff)",
	}
	bootstrapTrace(t, s, 1.0)
	return t
}

// LR is benchmark (1): HELR logistic regression, 10 training iterations at
// multiplicative depth L=38 supported by two sparsely packed bootstraps.
// One iteration: inner products via hoisted rotate-and-sum, a degree-3
// sigmoid approximation, and the gradient update.
func LR(s Spec) *trace.Trace {
	t := &trace.Trace{
		Name:        "LR",
		Description: "HELR logistic regression: 10 iterations, 2 bootstraps, L=38",
	}
	for iter := 0; iter < 10; iter++ {
		// Levels descend across iterations and reset at the refreshes.
		l := clampLimbs(22-4*(iter%5), s.MaxLimbs)
		// Inner product: weights × batch, hoisted rotate-and-sum.
		t.Add(trace.PMult, l, 1)
		t.Add(trace.Rotation, l, 2)
		t.Add(trace.HAdd, l, 3)
		t.Add(trace.Rescale, l, 1)
		// Sigmoid (degree 3): one chained ciphertext product after the
		// squared term is shared with the gradient path.
		t.Add(trace.CMult, clampLimbs(l-1, s.MaxLimbs), 1)
		t.Add(trace.Rescale, clampLimbs(l-1, s.MaxLimbs), 1)
		t.Add(trace.HAddPlain, clampLimbs(l-2, s.MaxLimbs), 1)
		// Gradient: error × features, then the transpose reduction.
		t.Add(trace.CMult, clampLimbs(l-2, s.MaxLimbs), 1)
		t.Add(trace.Rotation, clampLimbs(l-3, s.MaxLimbs), 1)
		t.Add(trace.HAdd, clampLimbs(l-3, s.MaxLimbs), 2)
		t.Add(trace.Rescale, clampLimbs(l-3, s.MaxLimbs), 1)
		// Weight update.
		t.Add(trace.PMult, clampLimbs(l-3, s.MaxLimbs), 1)
		t.Add(trace.HAdd, clampLimbs(l-3, s.MaxLimbs), 1)
		// Mid-training refreshes of the narrow weight vector.
		if iter == 4 || iter == 9 {
			bootstrapTrace(t, s, 0.02)
		}
	}
	return t
}

// LSTM is benchmark (2): 50 recurrent steps of y ← σ(W0·y + W1·x) with
// 128×128 weight matrices (hoisted BSGS diagonal method) and a cubic
// activation; one sparse bootstrap per step (50 total).
func LSTM(s Spec) *trace.Trace {
	t := &trace.Trace{
		Name:        "LSTM",
		Description: "LSTM inference: 50 steps of σ(W0·y + W1·x), 128×128 matrices, 50 bootstraps",
	}
	for step := 0; step < 50; step++ {
		l := clampLimbs(14, s.MaxLimbs) // working level between refreshes
		// Two matrix-vector products (W0·y, W1·x), BSGS with hoisting:
		// 128 diagonals, ~8 distinct rotations each after hoisting.
		for w := 0; w < 2; w++ {
			t.Add(trace.PMult, l, 64)
			t.Add(trace.HAdd, l, 64)
			t.Add(trace.Rotation, l, 5)
			t.Add(trace.Rescale, l, 1)
		}
		t.Add(trace.HAdd, clampLimbs(l-1, s.MaxLimbs), 1)
		// Cubic activation: x·x, then x²·x.
		t.Add(trace.CMult, clampLimbs(l-1, s.MaxLimbs), 2)
		t.Add(trace.Rescale, clampLimbs(l-1, s.MaxLimbs), 2)
		t.Add(trace.HAddPlain, clampLimbs(l-3, s.MaxLimbs), 1)
		// One sparse (128-slot) bootstrap per step keeps the recurrence alive.
		bootstrapTrace(t, s, 128.0/float64(s.Slots))
	}
	return t
}

// ResNet20 is benchmark (3): one encrypted inference. Convolutions run as
// shifted-diagonal multiplications over channel-packed ciphertexts
// (rotations + PMult), activations are square approximations (CMult), with
// bootstraps between residual blocks.
func ResNet20(s Spec) *trace.Trace {
	t := &trace.Trace{
		Name:        "ResNet-20",
		Description: "ResNet-20 encrypted inference: 20 conv layers, square activations, block bootstraps",
	}
	layers := 20
	for layer := 0; layer < layers; layer++ {
		l := clampLimbs(14, s.MaxLimbs)
		// Convolution: 3×3 kernel × channel packing: ~70 rotations and
		// ~200 diagonal plaintext multiplications per layer.
		t.Add(trace.Rotation, l, 85)
		t.Add(trace.PMult, l, 220)
		t.Add(trace.HAdd, l, 220)
		t.Add(trace.Rescale, l, 2)
		// BatchNorm folds into a plaintext multiply; activation x².
		t.Add(trace.PMult, clampLimbs(l-1, s.MaxLimbs), 4)
		t.Add(trace.CMult, clampLimbs(l-1, s.MaxLimbs), 4)
		t.Add(trace.Rescale, clampLimbs(l-1, s.MaxLimbs), 4)
		// Residual add every second layer.
		if layer%2 == 1 {
			t.Add(trace.HAdd, clampLimbs(l-2, s.MaxLimbs), 4)
		}
		// Bootstrap between residual blocks (every ~3 layers).
		if layer%3 == 2 {
			bootstrapTrace(t, s, 0.5)
		}
	}
	// Final pooling + fully connected layer.
	l := clampLimbs(8, s.MaxLimbs)
	t.Add(trace.Rotation, l, 6)
	t.Add(trace.HAdd, l, 6)
	t.Add(trace.PMult, l, 10)
	t.Add(trace.Rescale, l, 1)
	return t
}

// All returns the four paper benchmarks.
func All(s Spec) []*trace.Trace {
	return []*trace.Trace{LR(s), LSTM(s), ResNet20(s), PackedBootstrapping(s)}
}
