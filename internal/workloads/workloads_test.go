package workloads

import (
	"testing"

	"poseidon/internal/arch"
	"poseidon/internal/trace"
)

func TestAllBenchmarksBuild(t *testing.T) {
	for _, tr := range All(PaperSpec()) {
		if tr.Name == "" || tr.Description == "" {
			t.Errorf("trace missing metadata: %+v", tr.Name)
		}
		if len(tr.Ops) == 0 {
			t.Errorf("%s: empty trace", tr.Name)
		}
		for _, op := range tr.Ops {
			if op.Limbs < 1 || op.Limbs > PaperSpec().MaxLimbs {
				t.Errorf("%s: op %v at invalid limbs %d", tr.Name, op.Kind, op.Limbs)
			}
			if op.Count <= 0 {
				t.Errorf("%s: non-positive count", tr.Name)
			}
		}
	}
}

// Keyswitch-bearing operations (CMult, Rotation) must dominate execution
// time in every benchmark — the Fig 8 observation.
func TestKeyswitchDominates(t *testing.T) {
	m, err := arch.NewModel(arch.U280(), arch.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	em := arch.DefaultEnergy()
	for _, tr := range All(PaperSpec()) {
		rep := arch.Simulate(m, em, tr)
		ksTime := 0.0
		for _, k := range []trace.Kind{trace.CMult, trace.Rotation, trace.Keyswitch} {
			if st := rep.ByKind[k]; st != nil {
				ksTime += st.Time
			}
		}
		if frac := ksTime / rep.TotalTime; frac < 0.4 {
			t.Errorf("%s: keyswitch-bearing ops only %.0f%% of time, expected dominant",
				tr.Name, frac*100)
		}
	}
}

// Full-system times must land in the paper's ballpark ordering:
// LR fastest, then PackedBootstrapping, then LSTM and ResNet-20 (Table VI).
func TestBenchmarkOrdering(t *testing.T) {
	m, err := arch.NewModel(arch.U280(), arch.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	em := arch.DefaultEnergy()
	times := map[string]float64{}
	for _, tr := range All(PaperSpec()) {
		times[tr.Name] = arch.Simulate(m, em, tr).TotalTime
	}
	if !(times["LR"] < times["PackedBootstrapping"]) {
		t.Errorf("LR (%.3g) should be faster than PackedBootstrapping (%.3g)",
			times["LR"], times["PackedBootstrapping"])
	}
	if !(times["PackedBootstrapping"] < times["LSTM"]) {
		t.Errorf("PackedBootstrapping (%.3g) should be faster than LSTM (%.3g)",
			times["PackedBootstrapping"], times["LSTM"])
	}
	if !(times["PackedBootstrapping"] < times["ResNet-20"]) {
		t.Errorf("PackedBootstrapping (%.3g) should be faster than ResNet-20 (%.3g)",
			times["PackedBootstrapping"], times["ResNet-20"])
	}
	if !(times["LSTM"] < times["ResNet-20"]) {
		t.Errorf("LSTM (%.3g) should be faster than ResNet-20 (%.3g) as in Table VI",
			times["LSTM"], times["ResNet-20"])
	}
}

// The HFAuto→naive ablation must slow every benchmark substantially
// (Table IX: up to an order of magnitude).
func TestAutoAblationAcrossBenchmarks(t *testing.T) {
	cfg := arch.U280()
	hf, _ := arch.NewModel(cfg, arch.PaperParams())
	cfg.Auto = arch.NaiveAutoCore
	nv, _ := arch.NewModel(cfg, arch.PaperParams())
	em := arch.DefaultEnergy()
	for _, tr := range All(PaperSpec()) {
		tHF := arch.Simulate(hf, em, tr).TotalTime
		tNV := arch.Simulate(nv, em, tr).TotalTime
		if tNV <= tHF {
			t.Errorf("%s: naive automorphism not slower (%.3g vs %.3g)", tr.Name, tNV, tHF)
		}
		if ratio := tNV / tHF; ratio < 1.5 {
			t.Errorf("%s: ablation ratio %.2f too small", tr.Name, ratio)
		}
	}
}

// Phase tags must partition the bootstrap trace time, with EvalMod the
// dominant phase (as in the bootstrapping literature).
func TestBootstrapPhaseBreakdown(t *testing.T) {
	m, _ := arch.NewModel(arch.U280(), arch.PaperParams())
	em := arch.DefaultEnergy()
	rep := arch.Simulate(m, em, PackedBootstrapping(PaperSpec()))

	sum := 0.0
	for _, v := range rep.ByTag {
		sum += v
	}
	if d := (sum - rep.TotalTime) / rep.TotalTime; d > 1e-9 || d < -1e-9 {
		t.Errorf("phase times sum %.6g != total %.6g", sum, rep.TotalTime)
	}
	if rep.ByTag["EvalMod"] <= rep.ByTag["SlotToCoeff"] {
		t.Error("EvalMod should dominate SlotToCoeff")
	}
	for _, phase := range []string{"CoeffToSlot", "EvalMod", "SlotToCoeff"} {
		if rep.ByTag[phase] <= 0 {
			t.Errorf("phase %s missing from breakdown", phase)
		}
	}
}

// The overlapped (double-buffered) bound must never exceed the per-op
// roofline total, and must be at least the larger single resource total.
func TestSimulateOverlappedBounds(t *testing.T) {
	m, _ := arch.NewModel(arch.U280(), arch.PaperParams())
	em := arch.DefaultEnergy()
	for _, tr := range All(PaperSpec()) {
		perOp := arch.Simulate(m, em, tr).TotalTime
		overlapped := arch.SimulateOverlapped(m, em, tr)
		if overlapped > perOp*(1+1e-12) {
			t.Errorf("%s: overlapped %.4g > per-op %.4g", tr.Name, overlapped, perOp)
		}
		if overlapped <= 0 {
			t.Errorf("%s: overlapped time must be positive", tr.Name)
		}
	}
}

func TestSimulateReportConsistency(t *testing.T) {
	m, _ := arch.NewModel(arch.U280(), arch.PaperParams())
	em := arch.DefaultEnergy()
	tr := PackedBootstrapping(PaperSpec())
	rep := arch.Simulate(m, em, tr)

	// Per-kind times must sum to the total.
	sum := 0.0
	for _, st := range rep.ByKind {
		sum += st.Time
	}
	if diff := (sum - rep.TotalTime) / rep.TotalTime; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("kind times sum %.6g != total %.6g", sum, rep.TotalTime)
	}
	// Sorted view matches content.
	ks := rep.KindsByTime()
	for i := 1; i < len(ks); i++ {
		if ks[i].Time > ks[i-1].Time {
			t.Error("KindsByTime not sorted")
		}
	}
	if rep.EDP <= 0 || rep.TotalEnergy <= 0 || rep.AvgBandwidthUtil <= 0 {
		t.Error("report totals must be positive")
	}
	if rep.AvgBandwidthUtil > 1 {
		t.Errorf("average bandwidth utilization %.2f > 1", rep.AvgBandwidthUtil)
	}

	// Energy breakdown matches total.
	b := arch.SimulateEnergyBreakdown(m, em, tr)
	if diff := (b.Total() - rep.TotalEnergy) / rep.TotalEnergy; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("energy breakdown %.6g != total %.6g", b.Total(), rep.TotalEnergy)
	}
}
