package machine

import (
	"fmt"
	"math/rand"
	"testing"

	"poseidon/internal/arch"
	"poseidon/internal/isa"
	"poseidon/internal/numeric"
)

func benchMachine(b *testing.B, n, limbs int) *Machine {
	b.Helper()
	logN := 0
	for 1<<uint(logN) < n {
		logN++
	}
	ps, err := numeric.GenerateNTTPrimes(45, logN, limbs)
	if err != nil {
		b.Fatal(err)
	}
	cfg := arch.U280()
	m, err := New(cfg, n, ps)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkMachineHAdd measures the functional datapath executing the HAdd
// operator program.
func BenchmarkMachineHAdd(b *testing.B) {
	n, limbs := 4096, 4
	m := benchMachine(b, n, limbs)
	rng := rand.New(rand.NewSource(1))
	for _, comp := range []string{"c0", "c1"} {
		for l := 0; l < limbs; l++ {
			m.WriteHBM("a."+comp, l, randVec(rng, n, m.Moduli[l].Q))
			m.WriteHBM("b."+comp, l, randVec(rng, n, m.Moduli[l].Q))
		}
	}
	p := isa.CompileHAdd(limbs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineKeySwitch measures the full keyswitch program — the
// heaviest operator pipeline — with synthetic key digits.
func BenchmarkMachineKeySwitch(b *testing.B) {
	n := 1024
	logN := 10
	qs, err := numeric.GenerateNTTPrimes(45, logN, 3)
	if err != nil {
		b.Fatal(err)
	}
	pp, err := numeric.GenerateNTTPrimes(46, logN, 2)
	if err != nil {
		b.Fatal(err)
	}
	cfg := arch.U280()
	m, err := New(cfg, n, append(append([]uint64{}, qs...), pp...))
	if err != nil {
		b.Fatal(err)
	}
	level := 2
	rng := rand.New(rand.NewSource(2))
	for l := 0; l <= level; l++ {
		m.WriteHBM("d2", l, randVec(rng, n, m.Moduli[l].Q))
	}
	ks := isa.NewKeySwitchConstants(m.Moduli[:3], m.Moduli[3:], level)
	for d := 0; d < len(ks.DigitLo); d++ {
		for t := 0; t <= level; t++ {
			m.WriteHBM(fmt.Sprintf("key.b%d", d), t, randVec(rng, n, m.Moduli[t].Q))
			m.WriteHBM(fmt.Sprintf("key.a%d", d), t, randVec(rng, n, m.Moduli[t].Q))
		}
		for j := 0; j < 2; j++ {
			m.WriteHBM(fmt.Sprintf("key.b%d", d), 3+j, randVec(rng, n, m.Moduli[3+j].Q))
			m.WriteHBM(fmt.Sprintf("key.a%d", d), 3+j, randVec(rng, n, m.Moduli[3+j].Q))
		}
	}
	p := isa.CompileKeySwitch(ks, "d2", "key")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}
