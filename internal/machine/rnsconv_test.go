package machine

import (
	"math/big"
	"math/rand"
	"testing"

	"poseidon/internal/arch"
	"poseidon/internal/isa"
	"poseidon/internal/numeric"
)

// buildChain returns a machine over [src..., dst...] moduli.
func convMachine(t *testing.T, n, srcLen, dstLen int) (*Machine, []numeric.Modulus, []numeric.Modulus) {
	t.Helper()
	logN := 0
	for 1<<uint(logN) < n {
		logN++
	}
	ps, err := numeric.GenerateNTTPrimes(40, logN, srcLen)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := numeric.GenerateNTTPrimes(45, logN, dstLen)
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.U280()
	cfg.Lanes = 64
	m, err := New(cfg, n, append(append([]uint64{}, ps...), pd...))
	if err != nil {
		t.Fatal(err)
	}
	return m, m.Moduli[:srcLen], m.Moduli[srcLen:]
}

// The RNSconv program (approximate conversion, the hardware form of Fig 4)
// must produce x + e·B for a small non-negative overflow e < srcLen.
func TestProgramRNSConv(t *testing.T) {
	n := 32
	m, src, dst := convMachine(t, n, 3, 2)
	consts := isa.NewRNSConvConstants(src, dst)

	B := big.NewInt(1)
	for _, s := range src {
		B.Mul(B, new(big.Int).SetUint64(s.Q))
	}
	rng := rand.New(rand.NewSource(1))
	xs := make([]*big.Int, n)
	in := make([][]uint64, len(src))
	for j := range in {
		in[j] = make([]uint64, n)
	}
	for t2 := 0; t2 < n; t2++ {
		x := new(big.Int).Rand(rng, B)
		xs[t2] = x
		for j, s := range src {
			in[j][t2] = new(big.Int).Mod(x, new(big.Int).SetUint64(s.Q)).Uint64()
		}
	}
	for j := range in {
		m.WriteHBM("x", j, in[j])
	}
	st, err := m.Run(isa.CompileRNSConv(consts, "x", "y"))
	if err != nil {
		t.Fatal(err)
	}
	// Only MM and MA cycles — the cascaded-core claim of Fig 4.
	if st.Cycles[isa.NTT] != 0 || st.Cycles[isa.Auto] != 0 {
		t.Error("RNSconv must use only MM and MA cores")
	}
	if st.Cycles[isa.MMul] == 0 || st.Cycles[isa.MAdd] == 0 {
		t.Error("RNSconv should exercise both MM and MA")
	}

	for i, d := range dst {
		out, err := m.ReadHBM("y", len(src)+i)
		if err != nil {
			t.Fatal(err)
		}
		qi := new(big.Int).SetUint64(d.Q)
		for t2 := 0; t2 < n; t2++ {
			got := new(big.Int).SetUint64(out[t2])
			ok := false
			for e := int64(0); e < int64(len(src)); e++ {
				want := new(big.Int).Add(xs[t2], new(big.Int).Mul(big.NewInt(e), B))
				want.Mod(want, qi)
				if got.Cmp(want) == 0 {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("dst %d coeff %d: result is not x + e·B for small e", i, t2)
			}
		}
	}
}

// ModUp must pass the source limbs through and extend the rest.
func TestProgramModUp(t *testing.T) {
	n := 16
	m, src, dst := convMachine(t, n, 2, 2)
	consts := isa.NewRNSConvConstants(src, dst)
	rng := rand.New(rand.NewSource(2))
	for j, s := range src {
		m.WriteHBM("x", j, randVec(rng, n, s.Q))
	}
	if _, err := m.Run(isa.CompileModUp(consts, "x", "up")); err != nil {
		t.Fatal(err)
	}
	for j := range src {
		in, _ := m.ReadHBM("x", j)
		out, err := m.ReadHBM("up", j)
		if err != nil {
			t.Fatal(err)
		}
		for i := range out {
			if out[i] != in[i] {
				t.Fatalf("limb %d: ModUp must pass source limbs through", j)
			}
		}
	}
	for i := range dst {
		if _, err := m.ReadHBM("up", len(src)+i); err != nil {
			t.Fatalf("extended limb %d missing: %v", i, err)
		}
	}
}

// ModDown must divide by P with bounded error: for x = P·y + r (small r),
// the program returns y + ε with |ε| ≤ len(P) (approximate conversion
// overflow plus rounding).
func TestProgramModDown(t *testing.T) {
	n := 16
	// Machine layout [Q..., P...]: Q = dst role, P = src role of the
	// conversion, so build with srcLen = |Q| first.
	logN := 4
	qs, err := numeric.GenerateNTTPrimes(45, logN, 3)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := numeric.GenerateNTTPrimes(46, logN, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.U280()
	cfg.Lanes = 64
	m, err := New(cfg, n, append(append([]uint64{}, qs...), pp...))
	if err != nil {
		t.Fatal(err)
	}
	q := m.Moduli[:3]
	p := m.Moduli[3:]
	md := isa.NewModDownConstants(q, p)

	P := big.NewInt(1)
	for _, s := range p {
		P.Mul(P, new(big.Int).SetUint64(s.Q))
	}
	Q := big.NewInt(1)
	for _, s := range q {
		Q.Mul(Q, new(big.Int).SetUint64(s.Q))
	}

	rng := rand.New(rand.NewSource(3))
	ys := make([]*big.Int, n)
	inQ := make([][]uint64, len(q))
	inP := make([][]uint64, len(p))
	for i := range inQ {
		inQ[i] = make([]uint64, n)
	}
	for i := range inP {
		inP[i] = make([]uint64, n)
	}
	for t2 := 0; t2 < n; t2++ {
		y := new(big.Int).Rand(rng, new(big.Int).Rsh(Q, 2))
		ys[t2] = y
		x := new(big.Int).Mul(P, y)
		x.Add(x, big.NewInt(int64(rng.Intn(50))))
		for i, s := range q {
			inQ[i][t2] = new(big.Int).Mod(x, new(big.Int).SetUint64(s.Q)).Uint64()
		}
		for i, s := range p {
			inP[i][t2] = new(big.Int).Mod(x, new(big.Int).SetUint64(s.Q)).Uint64()
		}
	}
	for i := range inQ {
		m.WriteHBM("aq", i, inQ[i])
	}
	for i := range inP {
		m.WriteHBM("ap", 3+i, inP[i])
	}
	if _, err := m.Run(isa.CompileModDown(md, "aq", "ap", "out")); err != nil {
		t.Fatal(err)
	}

	// Compose the output over Q and compare against y with slack for the
	// approximate conversion (the extra e·P folds into ±len(P) on y).
	for t2 := 0; t2 < n; t2++ {
		acc := new(big.Int)
		for i, s := range q {
			out, _ := m.ReadHBM("out", i)
			qi := new(big.Int).SetUint64(s.Q)
			Qi := new(big.Int).Div(Q, qi)
			inv := new(big.Int).ModInverse(new(big.Int).Mod(Qi, qi), qi)
			term := new(big.Int).SetUint64(out[t2])
			term.Mul(term, inv).Mod(term, qi).Mul(term, Qi)
			acc.Add(acc, term)
		}
		acc.Mod(acc, Q)
		diff := new(big.Int).Sub(acc, ys[t2])
		if diff.CmpAbs(big.NewInt(int64(len(p)+1))) > 0 {
			t.Fatalf("coeff %d: ModDown error %v exceeds the approximate-conversion bound", t2, diff)
		}
	}
}
