package machine

import (
	"math/rand"
	"testing"

	"poseidon/internal/arch"
	"poseidon/internal/automorph"
	"poseidon/internal/isa"
	"poseidon/internal/numeric"
)

func testMachine(t testing.TB, n, limbs int) *Machine {
	t.Helper()
	logN := 0
	for 1<<uint(logN) < n {
		logN++
	}
	ps, err := numeric.GenerateNTTPrimes(45, logN, limbs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.U280()
	cfg.Lanes = 64 // small machine for tests
	m, err := New(cfg, n, ps)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func randVec(rng *rand.Rand, n int, q uint64) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = rng.Uint64() % q
	}
	return v
}

func TestMachineRejectsBadPrograms(t *testing.T) {
	m := testMachine(t, 64, 2)
	// Undefined register read.
	p := &isa.Program{Name: "bad", NumReg: 2, Instrs: []isa.Instr{
		{Op: isa.MAdd, Dst: 1, A: 0, B: 0, Limb: 0},
	}}
	if _, err := m.Run(p); err == nil {
		t.Error("undefined register should error")
	}
	// Missing HBM symbol.
	b := isa.NewBuilder("missing")
	b.Load("nope.m", 0)
	if _, err := m.Run(b.Build()); err == nil {
		t.Error("missing HBM symbol should error")
	}
	// Limb out of range.
	p2 := &isa.Program{Name: "limb", NumReg: 1, Instrs: []isa.Instr{
		{Op: isa.Load, Dst: 0, Limb: 9, Sym: "x"},
	}}
	if _, err := m.Run(p2); err == nil {
		t.Error("limb out of range should error")
	}
}

// The HAdd program must compute exactly what the reference modular addition
// computes, while charging only MA cycles.
func TestProgramHAdd(t *testing.T) {
	n, limbs := 128, 3
	m := testMachine(t, n, limbs)
	rng := rand.New(rand.NewSource(1))
	for _, comp := range []string{"c0", "c1"} {
		for l := 0; l < limbs; l++ {
			m.WriteHBM("a."+comp, l, randVec(rng, n, m.Moduli[l].Q))
			m.WriteHBM("b."+comp, l, randVec(rng, n, m.Moduli[l].Q))
		}
	}
	st, err := m.Run(isa.CompileHAdd(limbs))
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range []string{"c0", "c1"} {
		for l := 0; l < limbs; l++ {
			a, _ := m.ReadHBM("a."+comp, l)
			b, _ := m.ReadHBM("b."+comp, l)
			out, err := m.ReadHBM("out."+comp, l)
			if err != nil {
				t.Fatal(err)
			}
			for i := range out {
				if out[i] != m.Moduli[l].Add(a[i], b[i]) {
					t.Fatalf("%s limb %d index %d: wrong sum", comp, l, i)
				}
			}
		}
	}
	if st.Cycles[isa.MMul] != 0 || st.Cycles[isa.NTT] != 0 || st.Cycles[isa.Auto] != 0 {
		t.Error("HAdd must use only the MA core")
	}
	if st.Cycles[isa.MAdd] == 0 {
		t.Error("HAdd must charge MA cycles")
	}
	// Traffic: 2 loads + 1 store per component per limb.
	wantBytes := float64(2*limbs*3*n) * float64(m.Cfg.LimbBytes)
	if st.HBMBytes != wantBytes {
		t.Errorf("HBM bytes %.0f want %.0f", st.HBMBytes, wantBytes)
	}
}

// The PMult program must agree with reference modular multiplication.
func TestProgramPMult(t *testing.T) {
	n, limbs := 64, 2
	m := testMachine(t, n, limbs)
	rng := rand.New(rand.NewSource(2))
	for l := 0; l < limbs; l++ {
		m.WriteHBM("a.c0", l, randVec(rng, n, m.Moduli[l].Q))
		m.WriteHBM("a.c1", l, randVec(rng, n, m.Moduli[l].Q))
		m.WriteHBM("pt.m", l, randVec(rng, n, m.Moduli[l].Q))
	}
	if _, err := m.Run(isa.CompilePMult(limbs)); err != nil {
		t.Fatal(err)
	}
	for _, comp := range []string{"c0", "c1"} {
		for l := 0; l < limbs; l++ {
			a, _ := m.ReadHBM("a."+comp, l)
			pt, _ := m.ReadHBM("pt.m", l)
			out, _ := m.ReadHBM("out."+comp, l)
			for i := range out {
				if out[i] != m.Moduli[l].Mul(a[i], pt[i]) {
					t.Fatalf("%s limb %d: wrong product", comp, l)
				}
			}
		}
	}
}

// The NTT program must match the reference table transform bit-exactly
// (the machine uses the fused plan internally).
func TestProgramNTT(t *testing.T) {
	n, limbs := 256, 2
	m := testMachine(t, n, limbs)
	rng := rand.New(rand.NewSource(3))
	want := make([][]uint64, limbs)
	for l := 0; l < limbs; l++ {
		v := randVec(rng, n, m.Moduli[l].Q)
		m.WriteHBM("a.m", l, v)
		want[l] = append([]uint64(nil), v...)
		m.tables[l].Forward(want[l])
	}
	st, err := m.Run(isa.CompileNTT(limbs))
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < limbs; l++ {
		out, _ := m.ReadHBM("out.m", l)
		for i := range out {
			if out[i] != want[l][i] {
				t.Fatalf("limb %d index %d: NTT mismatch", l, i)
			}
		}
	}
	// NTT cycles must reflect the fused pass count.
	passes := float64(m.plans[0].Passes())
	wantCycles := passes * float64(n) / float64(m.Cfg.Lanes) * float64(limbs)
	if st.Cycles[isa.NTT] != wantCycles {
		t.Errorf("NTT cycles %.1f want %.1f", st.Cycles[isa.NTT], wantCycles)
	}
}

// The automorphism program must match the naive reference map.
func TestProgramAutomorphism(t *testing.T) {
	n, limbs := 128, 2
	m := testMachine(t, n, limbs)
	rng := rand.New(rand.NewSource(4))
	g := uint64(5)
	want := make(map[string][][]uint64)
	for _, comp := range []string{"c0", "c1"} {
		want[comp] = make([][]uint64, limbs)
		for l := 0; l < limbs; l++ {
			v := randVec(rng, n, m.Moduli[l].Q)
			m.WriteHBM("a."+comp, l, v)
			ref := make([]uint64, n)
			automorph.Naive(ref, v, g, m.Moduli[l])
			want[comp][l] = ref
		}
	}
	if _, err := m.Run(isa.CompileAutomorphism(limbs, g)); err != nil {
		t.Fatal(err)
	}
	for _, comp := range []string{"c0", "c1"} {
		for l := 0; l < limbs; l++ {
			out, _ := m.ReadHBM("out."+comp, l)
			for i := range out {
				if out[i] != want[comp][l][i] {
					t.Fatalf("%s limb %d: automorphism mismatch", comp, l)
				}
			}
		}
	}
}

// The rescale program must divide by the last prime with rounding, matching
// the rns.Rescaler reference within ±1.
func TestProgramRescale(t *testing.T) {
	n, limbs := 64, 3
	m := testMachine(t, n, limbs)
	rng := rand.New(rand.NewSource(5))

	last := limbs - 1
	qlast := m.Moduli[last]
	qlInv := make([]uint64, limbs-1)
	for l := 0; l < limbs-1; l++ {
		qlInv[l] = m.Moduli[l].Inv(m.Moduli[l].Reduce(qlast.Q))
	}

	// Coefficient-domain input (NTT-domain ciphertext in HBM, so the
	// program INTTs first): build random NTT-domain data, and prepare the
	// host-side centered last-limb vectors the program consumes.
	for _, comp := range []string{"c0", "c1"} {
		coeffs := make([][]uint64, limbs)
		for l := 0; l < limbs; l++ {
			coeffs[l] = randVec(rng, n, m.Moduli[l].Q)
		}
		// The shared value must be consistent across limbs for rescale to
		// mean anything: use the same small integers embedded everywhere.
		for i := 0; i < n; i++ {
			v := int64(rng.Intn(1 << 20))
			for l := 0; l < limbs; l++ {
				coeffs[l][i] = m.Moduli[l].ReduceSigned(v)
			}
		}
		for l := 0; l < limbs; l++ {
			nttv := append([]uint64(nil), coeffs[l]...)
			m.tables[l].Forward(nttv)
			m.WriteHBM("a."+comp, l, nttv)
		}
		// Host prepares centered last-limb residues per surviving modulus.
		half := qlast.Q >> 1
		for l := 0; l < limbs-1; l++ {
			cent := make([]uint64, n)
			qlModQi := m.Moduli[l].Reduce(qlast.Q)
			for i := 0; i < n; i++ {
				c := m.Moduli[l].Reduce(coeffs[last][i])
				if coeffs[last][i] > half {
					c = m.Moduli[l].Sub(c, qlModQi)
				}
				cent[i] = c
			}
			m.WriteHBM("a."+comp+".last", l, cent)
		}
	}

	if _, err := m.Run(isa.CompileRescale(limbs, qlInv)); err != nil {
		t.Fatal(err)
	}
	// The embedded value v rescales to round(v/q_last) ≈ 0 for v < 2^20
	// (q_last is 45 bits), so every output coefficient must be 0 or ±1
	// after INTT.
	for _, comp := range []string{"c0", "c1"} {
		for l := 0; l < limbs-1; l++ {
			out, _ := m.ReadHBM("out."+comp, l)
			coeff := append([]uint64(nil), out...)
			m.tables[l].Inverse(coeff)
			for i, v := range coeff {
				c := m.Moduli[l].Centered(v)
				if c < -1 || c > 1 {
					t.Fatalf("%s limb %d index %d: rescale result %d, want ≈0", comp, l, i, c)
				}
			}
		}
	}
}

func TestMachineTimeAgreesWithModelShape(t *testing.T) {
	// The ISA machine's HAdd must be memory-bound like the analytic model.
	n, limbs := 4096, 4
	m := testMachine(t, n, limbs)
	rng := rand.New(rand.NewSource(6))
	for _, comp := range []string{"c0", "c1"} {
		for l := 0; l < limbs; l++ {
			m.WriteHBM("a."+comp, l, randVec(rng, n, m.Moduli[l].Q))
			m.WriteHBM("b."+comp, l, randVec(rng, n, m.Moduli[l].Q))
		}
	}
	st, err := m.Run(isa.CompileHAdd(limbs))
	if err != nil {
		t.Fatal(err)
	}
	tc := st.TotalCoreCycles() / m.Cfg.CyclesPerSec()
	tm := st.HBMBytes / m.Cfg.EffectiveHBM()
	if tm <= tc {
		t.Skip("HAdd compute-bound at this small lane count — expected for tiny configs")
	}
	if m.Seconds(st) != tm {
		t.Error("memory-bound op should take the memory time")
	}
}

func TestScratchpadOverflowDetected(t *testing.T) {
	cfg := arch.U280()
	cfg.ScratchpadMB = 0.001 // 1 KB — too small for any vector
	ps, err := numeric.GenerateNTTPrimes(45, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, 256, ps)
	if err != nil {
		t.Fatal(err)
	}
	m.WriteHBM("a.c0", 0, make([]uint64, 256))
	b := isa.NewBuilder("overflow")
	b.Load("a.c0", 0)
	if _, err := m.Run(b.Build()); err == nil {
		t.Error("scratchpad overflow should error")
	}
}

func TestProgramOpCounts(t *testing.T) {
	p := isa.CompileHAdd(3)
	counts := p.OpCounts()
	if counts[isa.Load] != 12 || counts[isa.MAdd] != 6 || counts[isa.Store] != 6 {
		t.Errorf("HAdd op counts wrong: %v", counts)
	}
	if got := isa.CompilePMult(2).OpCounts()[isa.MMul]; got != 4 {
		t.Errorf("PMult MMul count %d want 4", got)
	}
}
