package machine

import (
	"fmt"
	"math/cmplx"
	"math/rand"
	"testing"

	"poseidon/internal/arch"
	"poseidon/internal/ckks"
	"poseidon/internal/isa"
)

// CMult with relinearization executed entirely on the datapath must agree
// with the software evaluator and decrypt to the slot-wise product.
func TestMachineFullCMult(t *testing.T) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     9,
		LogQ:     []int{50, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	kgen := ckks.NewKeyGenerator(params, 90)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	rlk := kgen.GenRelinearizationKey(sk)
	enc := ckks.NewEncoder(params)
	encr := ckks.NewEncryptor(params, pk, 91)
	decr := ckks.NewDecryptor(params, sk)

	rng := rand.New(rand.NewSource(92))
	z1 := make([]complex128, params.Slots)
	z2 := make([]complex128, params.Slots)
	for i := range z1 {
		z1[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		z2[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	ct1 := encr.Encrypt(enc.Encode(z1, params.MaxLevel(), params.Scale))
	ct2 := encr.Encrypt(enc.Encode(z2, params.MaxLevel(), params.Scale))
	level := ct1.Level

	cfg := arch.U280()
	cfg.Lanes = 64
	chain := append(append([]uint64{}, params.Q...), params.P...)
	m, err := New(cfg, params.N, chain)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l <= level; l++ {
		m.WriteHBM("a.c0", l, ct1.C0.Coeffs[l])
		m.WriteHBM("a.c1", l, ct1.C1.Coeffs[l])
		m.WriteHBM("b.c0", l, ct2.C0.Coeffs[l])
		m.WriteHBM("b.c1", l, ct2.C1.Coeffs[l])
	}
	lq := len(params.Q)
	for d := range rlk.B {
		bSym := fmt.Sprintf("rlk.b%d", d)
		aSym := fmt.Sprintf("rlk.a%d", d)
		for l := 0; l <= level; l++ {
			m.WriteHBM(bSym, l, rlk.B[d].Q.Coeffs[l])
			m.WriteHBM(aSym, l, rlk.A[d].Q.Coeffs[l])
		}
		for j := 0; j < params.Alpha(); j++ {
			m.WriteHBM(bSym, lq+j, rlk.B[d].P.Coeffs[j])
			m.WriteHBM(aSym, lq+j, rlk.A[d].P.Coeffs[j])
		}
	}

	ks := isa.NewKeySwitchConstants(m.Moduli[:lq], m.Moduli[lq:], level)
	st, err := m.Run(isa.CompileCMult(ks, "rlk"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles[isa.Auto] != 0 {
		t.Error("CMult must not use the automorphism core")
	}

	out := &ckks.Ciphertext{
		C0:    newNTTPoly(params, level+1),
		C1:    newNTTPoly(params, level+1),
		Scale: ct1.Scale * ct2.Scale,
		Level: level,
	}
	for l := 0; l <= level; l++ {
		v0, err := m.ReadHBM("out.c0", l)
		if err != nil {
			t.Fatal(err)
		}
		v1, err := m.ReadHBM("out.c1", l)
		if err != nil {
			t.Fatal(err)
		}
		copy(out.C0.Coeffs[l], v0)
		copy(out.C1.Coeffs[l], v1)
	}
	got := enc.Decode(decr.Decrypt(out))
	worst := 0.0
	for i := range z1 {
		if e := cmplx.Abs(got[i] - z1[i]*z2[i]); e > worst {
			worst = e
		}
	}
	t.Logf("machine-executed CMult: max slot error %.3e", worst)
	if worst > 1e-3 {
		t.Errorf("machine CMult error %g too large", worst)
	}
}
