// Package machine executes operator-level ISA programs on a functional
// model of the Poseidon datapath: real residue arithmetic through the MA,
// MM, NTT and Automorphism cores, a capacity-checked scratchpad, and an
// HBM traffic/cycle account that matches the analytic model in
// internal/arch. Running a program yields both the correct data and the
// cost the hardware would pay — the executable form of the paper's Fig 2.
package machine

import (
	"fmt"

	"poseidon/internal/arch"
	"poseidon/internal/automorph"
	"poseidon/internal/isa"
	"poseidon/internal/ntt"
	"poseidon/internal/numeric"
)

// Stats is the temporal account of one program execution.
type Stats struct {
	Cycles       map[isa.Opcode]float64 // busy cycles per opcode class
	HBMBytes     float64
	PeakSpad     int // peak scratchpad bytes in use
	Instructions int
	MaxLimbs     int // widest limb index touched + 1: the program's RNS width
}

// TotalCoreCycles sums non-memory cycles.
func (s Stats) TotalCoreCycles() float64 {
	t := 0.0
	for op, c := range s.Cycles {
		if op != isa.Load && op != isa.Store {
			t += c
		}
	}
	return t
}

// Machine is one datapath instance bound to a modulus chain.
type Machine struct {
	Cfg    arch.Config
	N      int
	Moduli []numeric.Modulus

	tables []*ntt.Table
	plans  []*ntt.FusedPlan
	hf     *automorph.HFAuto
	maps   map[uint64]*automorph.Map

	// hbm[sym][limb] is an off-chip resident vector.
	hbm map[string][][]uint64
}

// New builds a machine of ring degree n over the given NTT-friendly prime
// chain, with the datapath parameters of cfg (lanes become the HFAuto
// sub-vector width, clamped to n).
func New(cfg arch.Config, n int, moduli []uint64) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{Cfg: cfg, N: n, hbm: map[string][][]uint64{}, maps: map[uint64]*automorph.Map{}}
	for _, q := range moduli {
		tab, err := ntt.NewTable(n, q)
		if err != nil {
			return nil, fmt.Errorf("machine: %w", err)
		}
		m.tables = append(m.tables, tab)
		plan, err := ntt.NewFusedPlan(tab, cfg.FusionK)
		if err != nil {
			return nil, err
		}
		m.plans = append(m.plans, plan)
		m.Moduli = append(m.Moduli, tab.Mod)
	}
	c := cfg.Lanes
	if c > n {
		c = n
	}
	hf, err := automorph.NewHFAuto(n, c)
	if err != nil {
		return nil, err
	}
	m.hf = hf
	return m, nil
}

// WriteHBM installs (or replaces) an off-chip vector for symbol sym, limb l.
// The data is copied.
func (m *Machine) WriteHBM(sym string, limb int, data []uint64) {
	if len(data) != m.N {
		panic(fmt.Sprintf("machine: vector length %d != N=%d", len(data), m.N))
	}
	vs := m.hbm[sym]
	for len(vs) <= limb {
		vs = append(vs, nil)
	}
	vs[limb] = append([]uint64(nil), data...)
	m.hbm[sym] = vs
}

// ReadHBM returns a copy of an off-chip vector.
func (m *Machine) ReadHBM(sym string, limb int) ([]uint64, error) {
	vs, ok := m.hbm[sym]
	if !ok || limb >= len(vs) || vs[limb] == nil {
		return nil, fmt.Errorf("machine: HBM symbol %q limb %d not present", sym, limb)
	}
	return append([]uint64(nil), vs[limb]...), nil
}

// Run executes a program, returning its cost account. Functional results
// land in HBM via the program's STORE instructions.
func (m *Machine) Run(p *isa.Program) (Stats, error) {
	st := Stats{Cycles: map[isa.Opcode]float64{}}
	regs := make([][]uint64, p.NumReg)
	lanes := float64(m.Cfg.Lanes)
	elems := float64(m.N)
	wordBytes := float64(m.Cfg.LimbBytes)
	live := 0
	touch := func(r isa.Reg) error {
		if int(r) >= len(regs) || regs[r] == nil {
			return fmt.Errorf("machine: read of undefined register r%d", r)
		}
		return nil
	}
	define := func(r isa.Reg, v []uint64) {
		if regs[r] == nil {
			live += m.N * m.Cfg.LimbBytes
			if live > st.PeakSpad {
				st.PeakSpad = live
			}
		}
		regs[r] = v
	}

	spadCap := int(m.Cfg.ScratchpadMB * 1e6)
	for idx, in := range p.Instrs {
		st.Instructions++
		if in.Limb < 0 || in.Limb >= len(m.Moduli) {
			return st, fmt.Errorf("machine: instr %d: limb %d out of range", idx, in.Limb)
		}
		if in.Limb+1 > st.MaxLimbs {
			st.MaxLimbs = in.Limb + 1
		}
		mod := m.Moduli[in.Limb]
		switch in.Op {
		case isa.Load:
			v, err := m.ReadHBM(in.Sym, in.Limb)
			if err != nil {
				return st, fmt.Errorf("machine: instr %d: %w", idx, err)
			}
			define(in.Dst, v)
			st.HBMBytes += elems * wordBytes
			st.Cycles[isa.Load] += elems / lanes
		case isa.Store:
			if err := touch(in.A); err != nil {
				return st, err
			}
			m.WriteHBM(in.Sym, in.Limb, regs[in.A])
			st.HBMBytes += elems * wordBytes
			st.Cycles[isa.Store] += elems / lanes
		case isa.MAdd, isa.MSub, isa.MMul:
			if err := touch(in.A); err != nil {
				return st, err
			}
			if err := touch(in.B); err != nil {
				return st, err
			}
			out := make([]uint64, m.N)
			a, bb := regs[in.A], regs[in.B]
			switch in.Op {
			case isa.MAdd:
				for i := range out {
					out[i] = mod.Add(a[i], bb[i])
				}
			case isa.MSub:
				for i := range out {
					out[i] = mod.Sub(a[i], bb[i])
				}
			case isa.MMul:
				for i := range out {
					out[i] = mod.Mul(a[i], bb[i])
				}
			}
			define(in.Dst, out)
			st.Cycles[in.Op] += elems / lanes
		case isa.MMulScalar:
			if err := touch(in.A); err != nil {
				return st, err
			}
			out := make([]uint64, m.N)
			s := mod.Reduce(in.Imm)
			ss := mod.ShoupConstant(s)
			for i, v := range regs[in.A] {
				out[i] = mod.MulShoup(v, s, ss)
			}
			define(in.Dst, out)
			st.Cycles[isa.MMul] += elems / lanes
		case isa.NTT:
			if err := touch(in.A); err != nil {
				return st, err
			}
			out := append([]uint64(nil), regs[in.A]...)
			m.plans[in.Limb].Forward(out)
			define(in.Dst, out)
			st.Cycles[isa.NTT] += float64(m.plans[in.Limb].Passes()) * elems / lanes
		case isa.INTT:
			if err := touch(in.A); err != nil {
				return st, err
			}
			out := append([]uint64(nil), regs[in.A]...)
			m.tables[in.Limb].Inverse(out)
			define(in.Dst, out)
			st.Cycles[isa.NTT] += float64(m.plans[in.Limb].Passes()) * elems / lanes
		case isa.Auto:
			if err := touch(in.A); err != nil {
				return st, err
			}
			am, ok := m.maps[in.Imm]
			if !ok {
				am = m.hf.Precompute(in.Imm)
				m.maps[in.Imm] = am
			}
			out := make([]uint64, m.N)
			am.Apply(out, regs[in.A], mod)
			define(in.Dst, out)
			if m.Cfg.Auto == arch.NaiveAutoCore {
				st.Cycles[isa.Auto] += elems
			} else {
				st.Cycles[isa.Auto] += 4 * elems / lanes
			}
		case isa.Copy:
			if err := touch(in.A); err != nil {
				return st, err
			}
			define(in.Dst, append([]uint64(nil), regs[in.A]...))
		default:
			return st, fmt.Errorf("machine: instr %d: unknown opcode %v", idx, in.Op)
		}
		if st.PeakSpad > spadCap {
			return st, fmt.Errorf("machine: instr %d: scratchpad overflow (%d B > %d B) — program needs tiling",
				idx, st.PeakSpad, spadCap)
		}
	}
	return st, nil
}

// Seconds converts the stats into wall time under the machine's clock and
// bandwidth, overlapping compute with HBM streaming like arch.Model.
func (m *Machine) Seconds(st Stats) float64 {
	tc := st.TotalCoreCycles() / m.Cfg.CyclesPerSec()
	tm := st.HBMBytes / m.Cfg.EffectiveHBM()
	if tm > tc {
		return tm
	}
	return tc
}

// SecondsParallel models the same program replicated across `workers`
// datapath instances, one residue limb per instance. Core cycles divide by
// the effective parallel width min(workers, MaxLimbs) — limbs are the unit
// of parallelism, so extra workers beyond the RNS width sit idle, exactly
// like the software evaluator's limb-parallel pool. HBM bandwidth is a
// shared resource: the memory stream does not speed up, so it remains the
// floor. workers ≤ 1 (or an empty program) degenerates to Seconds.
func (m *Machine) SecondsParallel(st Stats, workers int) float64 {
	w := workers
	if st.MaxLimbs > 0 && w > st.MaxLimbs {
		w = st.MaxLimbs
	}
	if w < 1 {
		w = 1
	}
	tc := st.TotalCoreCycles() / m.Cfg.CyclesPerSec() / float64(w)
	tm := st.HBMBytes / m.Cfg.EffectiveHBM()
	if tm > tc {
		return tm
	}
	return tc
}
