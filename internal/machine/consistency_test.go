package machine

import (
	"math"
	"math/rand"
	"testing"

	"poseidon/internal/arch"
	"poseidon/internal/isa"
	"poseidon/internal/numeric"
)

// The analytic cost model (internal/arch) and the executed ISA programs
// must agree on the work a basic operation performs: same HBM bytes, and
// core cycles within the pipeline-fill constants the analytic model adds.
func TestModelMatchesMachineHAdd(t *testing.T) {
	logN, limbs := 10, 4
	n := 1 << logN
	ps, err := numeric.GenerateNTTPrimes(45, logN, limbs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.U280()
	m, err := New(cfg, n, ps)
	if err != nil {
		t.Fatal(err)
	}
	model, err := arch.NewModel(cfg, arch.FHEParams{LogN: logN, Limbs: limbs, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	for _, comp := range []string{"c0", "c1"} {
		for l := 0; l < limbs; l++ {
			m.WriteHBM("a."+comp, l, randVec(rng, n, m.Moduli[l].Q))
			m.WriteHBM("b."+comp, l, randVec(rng, n, m.Moduli[l].Q))
		}
	}
	st, err := m.Run(isa.CompileHAdd(limbs))
	if err != nil {
		t.Fatal(err)
	}
	prof := model.HAdd(limbs)

	if st.HBMBytes != prof.HBMBytes {
		t.Errorf("HBM bytes: machine %.0f, model %.0f", st.HBMBytes, prof.HBMBytes)
	}
	// MA cycles: model adds a pipeline-fill constant; otherwise equal.
	machMA := st.Cycles[isa.MAdd] + st.Cycles[isa.MSub]
	diff := prof.Cycles[arch.MA] - machMA
	if diff < 0 || diff > float64(cfg.PipeMA)+1 {
		t.Errorf("MA cycles: machine %.1f, model %.1f", machMA, prof.Cycles[arch.MA])
	}
}

func TestModelMatchesMachineNTT(t *testing.T) {
	logN, limbs := 10, 3
	n := 1 << logN
	ps, err := numeric.GenerateNTTPrimes(45, logN, limbs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := arch.U280()
	m, err := New(cfg, n, ps)
	if err != nil {
		t.Fatal(err)
	}
	model, err := arch.NewModel(cfg, arch.FHEParams{LogN: logN, Limbs: limbs, Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for l := 0; l < limbs; l++ {
		m.WriteHBM("a.m", l, randVec(rng, n, m.Moduli[l].Q))
	}
	st, err := m.Run(isa.CompileNTT(limbs))
	if err != nil {
		t.Fatal(err)
	}
	prof := model.NTTOp(limbs)

	// NTT cycles: passes·elems/lanes on both sides (modulo pipeline fill).
	diff := math.Abs(prof.Cycles[arch.NTT] - st.Cycles[isa.NTT])
	if diff > float64(cfg.PipeNTT)+1 {
		t.Errorf("NTT cycles: machine %.1f, model %.1f", st.Cycles[isa.NTT], prof.Cycles[arch.NTT])
	}
	if st.HBMBytes != prof.HBMBytes {
		t.Errorf("HBM bytes: machine %.0f, model %.0f", st.HBMBytes, prof.HBMBytes)
	}
}
