package machine

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"poseidon/internal/arch"
	"poseidon/internal/ckks"
	"poseidon/internal/isa"
	"poseidon/internal/ring"
)

// End-to-end: encrypt with the CKKS library, ship the ciphertext limbs to
// the modeled accelerator, execute the HAdd operator program on the
// datapath, read the result back and decrypt it. This closes the loop the
// paper's Fig 1/2 describe — host ↔ HBM ↔ operator cores — with real
// cryptographic data.
func TestMachineExecutesRealCiphertexts(t *testing.T) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     9,
		LogQ:     []int{50, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	kgen := ckks.NewKeyGenerator(params, 70)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	enc := ckks.NewEncoder(params)
	encr := ckks.NewEncryptor(params, pk, 71)
	decr := ckks.NewDecryptor(params, sk)

	rng := rand.New(rand.NewSource(72))
	z1 := make([]complex128, params.Slots)
	z2 := make([]complex128, params.Slots)
	for i := range z1 {
		z1[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
		z2[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	ct1 := encr.Encrypt(enc.Encode(z1, params.MaxLevel(), params.Scale))
	ct2 := encr.Encrypt(enc.Encode(z2, params.MaxLevel(), params.Scale))

	// The accelerator over the same modulus chain.
	cfg := arch.U280()
	cfg.Lanes = 64
	m, err := New(cfg, params.N, params.Q)
	if err != nil {
		t.Fatal(err)
	}
	limbs := params.MaxLevel() + 1
	for l := 0; l < limbs; l++ {
		m.WriteHBM("a.c0", l, ct1.C0.Coeffs[l])
		m.WriteHBM("a.c1", l, ct1.C1.Coeffs[l])
		m.WriteHBM("b.c0", l, ct2.C0.Coeffs[l])
		m.WriteHBM("b.c1", l, ct2.C1.Coeffs[l])
	}
	st, err := m.Run(isa.CompileHAdd(limbs))
	if err != nil {
		t.Fatal(err)
	}
	if m.Seconds(st) <= 0 {
		t.Error("execution must take time")
	}

	// Rebuild the result ciphertext from the accelerator's HBM.
	out := &ckks.Ciphertext{
		C0:    newNTTPoly(params, limbs),
		C1:    newNTTPoly(params, limbs),
		Scale: ct1.Scale,
		Level: ct1.Level,
	}
	for l := 0; l < limbs; l++ {
		c0, err := m.ReadHBM("out.c0", l)
		if err != nil {
			t.Fatal(err)
		}
		c1, err := m.ReadHBM("out.c1", l)
		if err != nil {
			t.Fatal(err)
		}
		copy(out.C0.Coeffs[l], c0)
		copy(out.C1.Coeffs[l], c1)
	}

	got := enc.Decode(decr.Decrypt(out))
	worst := 0.0
	for i := range z1 {
		if e := cmplx.Abs(got[i] - (z1[i] + z2[i])); e > worst {
			worst = e
		}
	}
	if worst > 1e-6 {
		t.Errorf("accelerator HAdd decrypted with error %g", worst)
	}
}

func newNTTPoly(params *ckks.Parameters, limbs int) *ring.Poly {
	p := params.RingQ.NewPoly(limbs)
	p.IsNTT = true
	return p
}

// The automorphism program applied to a real ciphertext's components must
// produce the rotated plaintext after the (host-side) keyswitch — here we
// only check the automorphism semantics by applying it to both components
// and decrypting under the automorphed secret (the hardware's view).
func TestMachineAutomorphismSemantics(t *testing.T) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     9,
		LogQ:     []int{50, 40},
		LogP:     []int{51},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	kgen := ckks.NewKeyGenerator(params, 73)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	enc := ckks.NewEncoder(params)
	encr := ckks.NewEncryptor(params, pk, 74)

	rng := rand.New(rand.NewSource(75))
	z := make([]complex128, params.Slots)
	for i := range z {
		z[i] = complex(rng.Float64()*2-1, 0)
	}
	ct := encr.Encrypt(enc.Encode(z, params.MaxLevel(), params.Scale))

	cfg := arch.U280()
	cfg.Lanes = 64
	m, err := New(cfg, params.N, params.Q)
	if err != nil {
		t.Fatal(err)
	}
	limbs := params.MaxLevel() + 1
	// The hardware automorphism operates in the coefficient domain.
	c0 := ct.C0.CopyNew()
	c1 := ct.C1.CopyNew()
	params.RingQ.INTT(c0)
	params.RingQ.INTT(c1)
	for l := 0; l < limbs; l++ {
		m.WriteHBM("a.c0", l, c0.Coeffs[l])
		m.WriteHBM("a.c1", l, c1.Coeffs[l])
	}
	g := uint64(5) // rotation by one slot
	if _, err := m.Run(isa.CompileAutomorphism(limbs, g)); err != nil {
		t.Fatal(err)
	}

	// Decrypt under σ_g(s): m' = σ(c0) + σ(c1)·σ(s) = σ(m).
	out0 := params.RingQ.NewPoly(limbs)
	out1 := params.RingQ.NewPoly(limbs)
	for l := 0; l < limbs; l++ {
		v0, _ := m.ReadHBM("out.c0", l)
		v1, _ := m.ReadHBM("out.c1", l)
		copy(out0.Coeffs[l], v0)
		copy(out1.Coeffs[l], v1)
	}
	params.RingQ.NTT(out0)
	params.RingQ.NTT(out1)

	skG := sk.Value.Q.CopyNew()
	params.RingQ.INTT(skG)
	skGAuto := params.RingQ.NewPoly(len(params.Q))
	params.RingQ.Automorphism(skGAuto, skG, g)
	params.RingQ.NTT(skGAuto)

	msg := params.RingQ.NewPoly(limbs)
	msg.IsNTT = true
	params.RingQ.MulCoeffwise(msg, out1, &ring.Poly{Coeffs: skGAuto.Coeffs[:limbs], IsNTT: true})
	params.RingQ.Add(msg, msg, out0)

	got := enc.Decode(&ckks.Plaintext{Value: msg, Scale: ct.Scale, Level: ct.Level})
	worst := 0.0
	n := params.Slots
	for i := range z {
		want := z[(i+1)%n] // g=5 rotates slots by one
		if e := cmplx.Abs(got[i] - want); e > worst {
			worst = e
		}
	}
	if worst > 1e-5 {
		t.Errorf("machine automorphism semantics error %g", worst)
	}
}
