package machine

import (
	"fmt"
	"math/cmplx"
	"math/rand"
	"testing"

	"poseidon/internal/arch"
	"poseidon/internal/automorph"
	"poseidon/internal/ckks"
	"poseidon/internal/isa"
)

// The flagship cross-layer test: an entire Rotation — automorphism plus the
// full hybrid keyswitch — executes as one ISA program on the modeled
// datapath, operating on a real ciphertext with real rotation keys, and the
// result decrypts to the rotated plaintext. Every arithmetic step runs on
// the five operator cores.
func TestMachineFullRotation(t *testing.T) {
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     9,
		LogQ:     []int{50, 40, 40},
		LogP:     []int{51, 51},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	kgen := ckks.NewKeyGenerator(params, 80)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	enc := ckks.NewEncoder(params)
	encr := ckks.NewEncryptor(params, pk, 81)
	decr := ckks.NewDecryptor(params, sk)

	steps := 1
	g := automorph.GaloisElementForRotation(steps, params.N)
	rtks := kgen.GenRotationKeys(sk, []int{steps}, false)
	key := rtks.Keys[g]

	rng := rand.New(rand.NewSource(82))
	z := make([]complex128, params.Slots)
	for i := range z {
		z[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	ct := encr.Encrypt(enc.Encode(z, params.MaxLevel(), params.Scale))
	level := ct.Level

	// Machine over [Q..., P...].
	cfg := arch.U280()
	cfg.Lanes = 64
	chain := append(append([]uint64{}, params.Q...), params.P...)
	m, err := New(cfg, params.N, chain)
	if err != nil {
		t.Fatal(err)
	}

	// Ship the ciphertext (coefficient domain — the datapath's automorphism
	// and RNSconv operate there).
	c0 := ct.C0.CopyNew()
	c1 := ct.C1.CopyNew()
	params.RingQ.INTT(c0)
	params.RingQ.INTT(c1)
	for l := 0; l <= level; l++ {
		m.WriteHBM("a.c0", l, c0.Coeffs[l])
		m.WriteHBM("a.c1", l, c1.Coeffs[l])
	}
	// Stream the rotation key digits: Q part at machine limbs 0..|Q|-1,
	// P part at |Q|...
	lq := len(params.Q)
	for d := range key.B {
		bSym := fmt.Sprintf("rk.b%d", d)
		aSym := fmt.Sprintf("rk.a%d", d)
		for l := 0; l <= level; l++ {
			m.WriteHBM(bSym, l, key.B[d].Q.Coeffs[l])
			m.WriteHBM(aSym, l, key.A[d].Q.Coeffs[l])
		}
		for j := 0; j < params.Alpha(); j++ {
			m.WriteHBM(bSym, lq+j, key.B[d].P.Coeffs[j])
			m.WriteHBM(aSym, lq+j, key.A[d].P.Coeffs[j])
		}
	}

	ks := isa.NewKeySwitchConstants(m.Moduli[:lq], m.Moduli[lq:], level)
	prog := isa.CompileRotation(ks, g, "rk")
	st, err := m.Run(prog)
	if err != nil {
		t.Fatal(err)
	}
	// The program must exercise all four operator families.
	for _, op := range []isa.Opcode{isa.MAdd, isa.MMul, isa.NTT, isa.Auto} {
		if st.Cycles[op] == 0 {
			t.Errorf("rotation program should use %v cycles", op)
		}
	}

	// Rebuild and decrypt.
	out := &ckks.Ciphertext{
		C0:    newNTTPoly(params, level+1),
		C1:    newNTTPoly(params, level+1),
		Scale: ct.Scale,
		Level: level,
	}
	for l := 0; l <= level; l++ {
		v0, err := m.ReadHBM("out.c0", l)
		if err != nil {
			t.Fatal(err)
		}
		v1, err := m.ReadHBM("out.c1", l)
		if err != nil {
			t.Fatal(err)
		}
		copy(out.C0.Coeffs[l], v0)
		copy(out.C1.Coeffs[l], v1)
	}
	got := enc.Decode(decr.Decrypt(out))

	worst := 0.0
	n := params.Slots
	for i := range z {
		want := z[(i+steps)%n]
		if e := cmplx.Abs(got[i] - want); e > worst {
			worst = e
		}
	}
	t.Logf("machine-executed rotation: max slot error %.3e", worst)
	if worst > 1e-3 {
		t.Errorf("machine rotation error %g too large", worst)
	}

	// And it must agree with the software evaluator's rotation.
	ev := ckks.NewEvaluator(params, nil, rtks)
	sw := enc.Decode(decr.Decrypt(ev.Rotate(ct, steps)))
	worst = 0
	for i := range sw {
		if e := cmplx.Abs(got[i] - sw[i]); e > worst {
			worst = e
		}
	}
	if worst > 1e-3 {
		t.Errorf("machine vs software rotation differ by %g", worst)
	}
}
