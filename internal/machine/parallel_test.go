package machine

import (
	"math/rand"
	"testing"

	"poseidon/internal/isa"
)

// Tests for the limb-parallel cost model: SecondsParallel divides core
// cycles across workers up to the program's RNS width (limbs are the unit
// of parallelism, matching the software evaluator's pool), while the shared
// HBM stream never speeds up.

// runNTTProgram executes an NTT over `limbs` limbs and returns its stats —
// a compute-heavy program where parallelism actually shows.
func runNTTProgram(t *testing.T, limbs int) (*Machine, Stats) {
	t.Helper()
	n := 1024
	m := testMachine(t, n, limbs)
	rng := rand.New(rand.NewSource(9))
	for l := 0; l < limbs; l++ {
		m.WriteHBM("a.m", l, randVec(rng, n, m.Moduli[l].Q))
	}
	st, err := m.Run(isa.CompileNTT(limbs))
	if err != nil {
		t.Fatal(err)
	}
	return m, st
}

func TestStatsTracksMaxLimbs(t *testing.T) {
	for _, limbs := range []int{1, 3, 4} {
		_, st := runNTTProgram(t, limbs)
		if st.MaxLimbs != limbs {
			t.Errorf("limbs=%d: MaxLimbs=%d", limbs, st.MaxLimbs)
		}
	}
}

func TestSecondsParallelScalesWithWorkers(t *testing.T) {
	const limbs = 4
	m, st := runNTTProgram(t, limbs)

	serial := m.SecondsParallel(st, 1)
	if serial != m.Seconds(st) {
		t.Fatalf("workers=1 must equal Seconds: %g vs %g", serial, m.Seconds(st))
	}
	// Nonsense worker counts degenerate to serial.
	if m.SecondsParallel(st, 0) != serial || m.SecondsParallel(st, -3) != serial {
		t.Error("workers ≤ 0 should degenerate to the serial time")
	}

	tm := st.HBMBytes / m.Cfg.EffectiveHBM()
	prev := serial
	for w := 2; w <= limbs; w++ {
		tw := m.SecondsParallel(st, w)
		if tw > prev {
			t.Errorf("workers=%d: time %g worse than %d workers' %g", w, tw, w-1, prev)
		}
		if tw < tm {
			t.Errorf("workers=%d: time %g beat the HBM floor %g — bandwidth is shared", w, tw, tm)
		}
		prev = tw
	}

	// Workers beyond the RNS width sit idle: no further speedup.
	if at, over := m.SecondsParallel(st, limbs), m.SecondsParallel(st, 100); over != at {
		t.Errorf("workers beyond MaxLimbs changed the time: %g vs %g", over, at)
	}

	// If compute-bound at 1 worker, check the division is exact until either
	// the limb count or the memory floor binds.
	tc := st.TotalCoreCycles() / m.Cfg.CyclesPerSec()
	if tc > tm {
		want := tc / 2
		if want < tm {
			want = tm
		}
		if got := m.SecondsParallel(st, 2); got != want {
			t.Errorf("workers=2: %g want %g", got, want)
		}
	}
}

func TestSecondsParallelMemoryBoundUnchanged(t *testing.T) {
	// HAdd is memory-bound on realistic configs: extra workers must not
	// change the modeled time at all.
	const limbs = 4
	n := 4096
	m := testMachine(t, n, limbs)
	rng := rand.New(rand.NewSource(12))
	for _, comp := range []string{"c0", "c1"} {
		for l := 0; l < limbs; l++ {
			m.WriteHBM("a."+comp, l, randVec(rng, n, m.Moduli[l].Q))
			m.WriteHBM("b."+comp, l, randVec(rng, n, m.Moduli[l].Q))
		}
	}
	st, err := m.Run(isa.CompileHAdd(limbs))
	if err != nil {
		t.Fatal(err)
	}
	tc := st.TotalCoreCycles() / m.Cfg.CyclesPerSec()
	tm := st.HBMBytes / m.Cfg.EffectiveHBM()
	if tm <= tc {
		t.Skip("HAdd compute-bound at this config — memory-floor check not applicable")
	}
	for _, w := range []int{1, 2, limbs, 64} {
		if got := m.SecondsParallel(st, w); got != tm {
			t.Errorf("workers=%d: %g want memory floor %g", w, got, tm)
		}
	}
}
